GO ?= go

.PHONY: build test test-race vet fmt-check doc-lint fuzz-short scenarios scenarios-short e14-short e15-short e16-short e18-short e19-short e20-short bench bench-json experiments example-recovery check all

all: check

build:
	$(GO) build ./...

# Package tests. The rpc/txn/core/scenario binaries run under the
# internal/leakcheck TestMain guard: any heartbeat, lease-reaper, notifier,
# or transport goroutine still alive after the tests fails the package.
test:
	$(GO) test ./...

# Race-detector pass over every package — the same command CI runs.
test-race:
	$(GO) test -race ./...

# Fuzz smoke: run each fuzz target for 10s (the committed seed corpora run
# as plain tests under `make test` too).
fuzz-short:
	$(GO) test -fuzz=FuzzDeltaApply -fuzztime=10s -run XXX ./internal/binenc
	$(GO) test -fuzz=FuzzWALFrameDecode -fuzztime=10s -run XXX ./internal/wal
	$(GO) test -fuzz=FuzzSnapshotDecode -fuzztime=10s -run XXX ./internal/repo
	$(GO) test -fuzz=FuzzReplFrameDecode -fuzztime=10s -run XXX ./internal/repl

# Short scenario matrix (the CI gate): every fault class once, full oracle
# suite, fault-point coverage written to out/SCENARIO_COVERAGE.txt.
scenarios-short:
	SCENARIO_COVERAGE_OUT=$(CURDIR)/out/SCENARIO_COVERAGE.txt \
		$(GO) test ./internal/scenario -count=1 -v -run TestScenarioMatrixShort

# Long scenario matrix: every checkpoint-protocol point under racing
# checkpoints, every 2PC point over both transports, multi-seed mixed chaos
# and the 8-workstation scale-out.
scenarios:
	CONCORD_SCENARIOS_LONG=1 SCENARIO_COVERAGE_OUT=$(CURDIR)/out/SCENARIO_COVERAGE.txt \
		$(GO) test ./internal/scenario -count=1 -v -timeout 30m

vet:
	$(GO) vet ./...

# Doc-comment lint (dependency-free equivalent of revive's exported-comment
# rule, doclint_test.go): package docs everywhere, doc comments on every
# exported identifier, CONCORD-layer statements in the level packages.
doc-lint:
	$(GO) test . -run 'TestEveryPackageHasDocComment|TestLayerStatedInLevelPackages|TestExportedIdentifiersAreDocumented' -count=1

# E14 acceptance bounds (NotModified = O(hash) bytes, delta >= 5x smaller
# than full) in short mode — one mid-size configuration.
e14-short:
	$(GO) test ./internal/experiments -run TestE14CacheDeltaBounds -count=1 -v

# E15 acceptance bounds (MVCC read path: >=1.3x CI throughput floor, >=50%
# fewer allocs/op vs the locked+clone baseline) in short mode.
e15-short:
	$(GO) test ./internal/experiments -run TestE15ReadScalingBounds -count=1 -v

# E16 acceptance bounds (sharded write path: >=2x aggregate checkin
# throughput at 8 writer DAs vs the SerializedWrites baseline; pipelined
# replay beats serial replay on a 64k-op history) in short mode.
e16-short:
	$(GO) test ./internal/experiments -run TestE16WriteScalingBounds -count=1 -v -timeout 20m

# E18 acceptance bounds (multiplexed wire protocol: >=2x aggregate e2e
# checkout throughput at 8 workstations over real sockets vs the
# connect-per-call baseline) in short mode.
e18-short:
	$(GO) test ./internal/experiments -run TestE18WireBounds -count=1 -v

# E19 acceptance bounds (non-quiescent checkpointing: p99 checkin latency
# while checkpoints loop stays within 1.5x of steady state) in short mode.
e19-short:
	$(GO) test ./internal/experiments -run TestE19CheckpointLatencyBounds -count=1 -v

# E20 acceptance bounds (warm-standby replication: sync-replicated checkin
# p99 within 1.5x of unreplicated; client-driven takeover after a primary
# kill within 2x the heartbeat period) in short mode.
e20-short:
	$(GO) test ./internal/experiments -run 'TestE20ReplicationLatencyBounds|TestE20FailoverTakeoverBound' -count=1 -v

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# All benchmark suites (root package plus wal/repo/experiments and the rest
# of internal/); -run XXX skips the unit tests.
bench:
	$(GO) test -bench . -benchtime 1s -run XXX ./...

# Machine-readable perf record: re-run E15, E16, E18, E19 and E20 and refresh
# the committed BENCH_*.json files (CI uploads them as artifacts on every
# push).
bench-json:
	$(GO) run ./cmd/concordbench -json out/BENCH_E15.json E15
	$(GO) run ./cmd/concordbench -json out/BENCH_E16.json E16
	$(GO) run ./cmd/concordbench -json out/BENCH_E18.json E18
	$(GO) run ./cmd/concordbench -json out/BENCH_E19.json E19
	$(GO) run ./cmd/concordbench -json out/BENCH_E20.json E20

# Regenerate every experiment table (E1-E16, E18-E20); EXPERIMENTS.md records
# the paper-vs-measured outcomes.
experiments:
	$(GO) run ./cmd/concordbench

# Run the live restart choreography (CI runs this on every push so the
# checkpointed recovery path stays exercised end-to-end).
example-recovery:
	$(GO) run ./examples/recovery

check: fmt-check vet doc-lint test fuzz-short
