// Package fault is the named fault-point registry used by CONCORD's
// chaos/scenario harness. Production code threads a *Registry through its
// options and calls At("pkg:point-name") at interesting places — before a
// checkpoint marker is forced, after a 2PC vote is logged, before a callback
// is delivered. An unarmed registry (or a nil one) is inert: At returns nil
// and only counts the traversal. Tests arm points with an error to simulate
// a crash or fault exactly there, and read back hit/fire counters to report
// injection coverage.
//
// Point names follow "owner:event" (e.g. "wal:before-mark",
// "rpc:2pc-prepare-vote-logged"); owners export their names as constants so
// the scenario matrix can enumerate the full catalog.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is the default error delivered by an armed fault point when
// the test does not need a more specific one.
var ErrInjected = errors.New("fault: injected failure")

// arming is the pending behavior for one point.
type arming struct {
	skip  int   // traversals to let pass before firing
	count int   // remaining fires; < 0 means every traversal
	err   error // error delivered when the point fires
}

// Registry maps named fault points to armed behaviors and counts
// traversals. All methods are safe for concurrent use and safe on a nil
// receiver, so packages can thread a registry unconditionally.
type Registry struct {
	mu    sync.Mutex
	armed map[string]*arming
	hits  map[string]uint64
	fired map[string]uint64
}

// New returns an empty registry with nothing armed.
func New() *Registry {
	return &Registry{
		armed: make(map[string]*arming),
		hits:  make(map[string]uint64),
		fired: make(map[string]uint64),
	}
}

// At records a traversal of point and returns the armed error if the point
// is due to fire, nil otherwise. Call it at the injection site.
func (r *Registry) At(point string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hits[point]++
	a := r.armed[point]
	if a == nil {
		return nil
	}
	if a.skip > 0 {
		a.skip--
		return nil
	}
	if a.count == 0 {
		return nil
	}
	if a.count > 0 {
		a.count--
	}
	r.fired[point]++
	return a.err
}

// Arm makes point fire err on every subsequent traversal until Disarm.
func (r *Registry) Arm(point string, err error) {
	r.armAs(point, &arming{count: -1, err: err})
}

// ArmOnce makes point fire err exactly once, on its next traversal.
func (r *Registry) ArmOnce(point string, err error) {
	r.armAs(point, &arming{count: 1, err: err})
}

// ArmAfter makes point let skip traversals pass and then fire err once —
// the "crash on the N-th checkpoint" idiom.
func (r *Registry) ArmAfter(point string, skip int, err error) {
	r.armAs(point, &arming{skip: skip, count: 1, err: err})
}

func (r *Registry) armAs(point string, a *arming) {
	if r == nil {
		return
	}
	if a.err == nil {
		a.err = fmt.Errorf("%w at %s", ErrInjected, point)
	}
	r.mu.Lock()
	r.armed[point] = a
	r.mu.Unlock()
}

// Disarm removes any pending behavior for point. Counters are kept.
func (r *Registry) Disarm(point string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.armed, point)
	r.mu.Unlock()
}

// DisarmAll removes every pending behavior, keeping the counters — used
// between the fault phase and the recovery phase of a scenario.
func (r *Registry) DisarmAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.armed = make(map[string]*arming)
	r.mu.Unlock()
}

// Hits reports how many times point was traversed (armed or not).
func (r *Registry) Hits(point string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[point]
}

// Fired reports how many times point actually delivered its armed error.
func (r *Registry) Fired(point string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired[point]
}

// PointStats is one row of a coverage Snapshot.
type PointStats struct {
	// Point is the fault-point name.
	Point string
	// Hits counts traversals of the point.
	Hits uint64
	// Fired counts traversals that delivered an injected error.
	Fired uint64
}

// Snapshot returns per-point counters sorted by point name, for coverage
// reports.
func (r *Registry) Snapshot() []PointStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PointStats, 0, len(r.hits))
	for p, h := range r.hits {
		out = append(out, PointStats{Point: p, Hits: h, Fired: r.fired[p]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// Report renders a coverage table over the union of known and observed
// points: one "point hits fired" line each, with never-traversed known
// points listed as zero so silent loss of injection coverage is visible.
func (r *Registry) Report(known []string) string {
	seen := make(map[string]bool, len(known))
	rows := make([]PointStats, 0, len(known))
	for _, s := range r.Snapshot() {
		seen[s.Point] = true
		rows = append(rows, s)
	}
	for _, p := range known {
		if !seen[p] {
			seen[p] = true
			rows = append(rows, PointStats{Point: p})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Point < rows[j].Point })
	var b strings.Builder
	b.WriteString("point\thits\tfired\n")
	for _, s := range rows {
		fmt.Fprintf(&b, "%s\t%d\t%d\n", s.Point, s.Hits, s.Fired)
	}
	return b.String()
}
