package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if err := r.At("x"); err != nil {
		t.Fatalf("nil At = %v", err)
	}
	r.Arm("x", nil)
	r.ArmOnce("x", nil)
	r.ArmAfter("x", 2, nil)
	r.Disarm("x")
	r.DisarmAll()
	if r.Hits("x") != 0 || r.Fired("x") != 0 {
		t.Fatal("nil counters nonzero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil Snapshot not nil")
	}
}

func TestUnarmedCountsHits(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		if err := r.At("wal:before-mark"); err != nil {
			t.Fatalf("unarmed At = %v", err)
		}
	}
	if got := r.Hits("wal:before-mark"); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
	if got := r.Fired("wal:before-mark"); got != 0 {
		t.Fatalf("fired = %d, want 0", got)
	}
}

func TestArmOnceFiresExactlyOnce(t *testing.T) {
	r := New()
	boom := errors.New("boom")
	r.ArmOnce("p", boom)
	if err := r.At("p"); !errors.Is(err, boom) {
		t.Fatalf("first At = %v", err)
	}
	if err := r.At("p"); err != nil {
		t.Fatalf("second At = %v", err)
	}
	if r.Fired("p") != 1 || r.Hits("p") != 2 {
		t.Fatalf("fired=%d hits=%d", r.Fired("p"), r.Hits("p"))
	}
}

func TestArmFiresEveryTimeUntilDisarm(t *testing.T) {
	r := New()
	r.Arm("p", nil)
	for i := 0; i < 2; i++ {
		if err := r.At("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("At #%d = %v", i, err)
		}
	}
	r.Disarm("p")
	if err := r.At("p"); err != nil {
		t.Fatalf("post-disarm At = %v", err)
	}
	if r.Fired("p") != 2 {
		t.Fatalf("fired = %d", r.Fired("p"))
	}
}

func TestArmAfterSkips(t *testing.T) {
	r := New()
	r.ArmAfter("p", 2, nil)
	for i := 0; i < 2; i++ {
		if err := r.At("p"); err != nil {
			t.Fatalf("skipped At #%d = %v", i, err)
		}
	}
	if err := r.At("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third At = %v", err)
	}
	if err := r.At("p"); err != nil {
		t.Fatalf("fourth At = %v", err)
	}
}

func TestDisarmAllKeepsCounters(t *testing.T) {
	r := New()
	r.ArmOnce("a", nil)
	r.Arm("b", nil)
	_ = r.At("a")
	r.DisarmAll()
	if err := r.At("b"); err != nil {
		t.Fatalf("post-DisarmAll At = %v", err)
	}
	if r.Fired("a") != 1 {
		t.Fatal("DisarmAll dropped counters")
	}
}

func TestReportListsKnownZeroPoints(t *testing.T) {
	r := New()
	r.ArmOnce("seen", nil)
	_ = r.At("seen")
	rep := r.Report([]string{"seen", "never"})
	if !strings.Contains(rep, "seen\t1\t1") {
		t.Fatalf("report missing seen row:\n%s", rep)
	}
	if !strings.Contains(rep, "never\t0\t0") {
		t.Fatalf("report missing zero row:\n%s", rep)
	}
}

func TestConcurrentAt(t *testing.T) {
	r := New()
	r.ArmAfter("p", 50, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = r.At("p")
			}
		}()
	}
	wg.Wait()
	if r.Hits("p") != 800 {
		t.Fatalf("hits = %d", r.Hits("p"))
	}
	if r.Fired("p") != 1 {
		t.Fatalf("fired = %d", r.Fired("p"))
	}
}
