package script

import (
	"strings"
	"sync"
	"testing"
)

func TestParBranchesJournalIndependently(t *testing.T) {
	store := newMemStore()
	var mu sync.Mutex
	count := map[string]int{}
	runner := func(_ *Ctx, op Op, _ map[string]string) (string, error) {
		mu.Lock()
		count[op.Name]++
		mu.Unlock()
		return op.Name, nil
	}
	s := Par{Branches: []Node{
		Seq{Steps: []Node{dopOp("a1"), dopOp("a2")}},
		Seq{Steps: []Node{dopOp("b1"), dopOp("b2")}},
		dopOp("c"),
	}}
	dm, err := NewDesignManager(Config{DA: "par-da", Script: s, Store: store, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Run(); err != nil {
		t.Fatal(err)
	}
	// Re-run: everything replays from the journal, nothing re-executes.
	if err := dm.Run(); err != nil {
		t.Fatal(err)
	}
	for op, n := range count {
		if n != 1 {
			t.Errorf("op %s executed %d times (journal collision across branches?)", op, n)
		}
	}
	if dm.JournaledOps() != 5 {
		t.Fatalf("journaled ops = %d, want 5", dm.JournaledOps())
	}
}

func TestOpenRegionEnforcesConstraints(t *testing.T) {
	// A designer trying to run "assembly" inside an open region before
	// "synth" happened must be stopped by runtime constraint checking.
	cs := &ConstraintSet{Precedences: []Precedence{{Before: "synth", After: "assembly"}}}
	d := &scriptedDesigner{open: []Op{dopOp("assembly")}}
	e := NewEngine("da", nil, d, (&recordingRunner{}).run, nil, cs)
	err := e.Run(Seq{Steps: []Node{Open{Name: "free"}}})
	if err == nil || !strings.Contains(err.Error(), "constraint violated") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoopJournalReplaysIterationCount(t *testing.T) {
	store := newMemStore()
	r1 := &recordingRunner{}
	d1 := &scriptedDesigner{loops: []bool{true, true, false}}
	s := Loop{Name: "iter", Body: dopOp("work")}
	dm1, err := NewDesignManager(Config{DA: "loop-da", Script: s, Store: store, Designer: d1, Runner: r1.run})
	if err != nil {
		t.Fatal(err)
	}
	if err := dm1.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r1.names()) != 3 {
		t.Fatalf("iterations = %d", len(r1.names()))
	}
	// Recovery: a fresh DM with no designer decisions left must replay
	// exactly 3 iterations from the journal and run nothing.
	r2 := &recordingRunner{}
	dm2, err := NewDesignManager(Config{DA: "loop-da", Store: store, Designer: &scriptedDesigner{}, Runner: r2.run})
	if err != nil {
		t.Fatal(err)
	}
	if err := dm2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r2.names()) != 0 {
		t.Fatalf("recovered run re-executed %v", r2.names())
	}
	run, replayed := dm2.Engine().Stats()
	if run != 0 || replayed != 3 {
		t.Fatalf("stats = (%d, %d), want (0, 3)", run, replayed)
	}
}

func TestNestedAltInsideLoop(t *testing.T) {
	r := &recordingRunner{}
	d := &scriptedDesigner{
		alts:  []int{0, 1, 0},
		loops: []bool{true, true, false},
	}
	s := Loop{Name: "l", Body: Alt{Name: "m", Branches: []Node{dopOp("left"), dopOp("right")}}}
	e := NewEngine("da", nil, d, r.run, nil, nil)
	if err := e.Run(s); err != nil {
		t.Fatal(err)
	}
	got := r.names()
	want := []string{"left", "right", "left"}
	if len(got) != len(want) {
		t.Fatalf("ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ops = %v, want %v", got, want)
		}
	}
}

func TestEventsDuringLongScriptProcessedBetweenOps(t *testing.T) {
	var seen []string
	rules := []Rule{{
		Name:  "tracker",
		Event: "Ping",
		Action: func(c *Ctx, ev Event) error {
			seen = append(seen, ev.Data["n"])
			return nil
		},
	}}
	var e *Engine
	runner := func(_ *Ctx, op Op, _ map[string]string) (string, error) {
		// An event arrives while an op is executing; the rule must fire
		// before the next op.
		if op.Name == "first" {
			e.PostEvent(Event{Name: "Ping", Data: map[string]string{"n": "1"}})
		}
		if op.Name == "second" && len(seen) == 0 {
			t.Error("event not processed before second op")
		}
		return "", nil
	}
	e = NewEngine("da", nil, nil, runner, rules, nil)
	if err := e.Run(Seq{Steps: []Node{dopOp("first"), dopOp("second")}}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("rule fired %d times", len(seen))
	}
}

func TestRunWithoutRunner(t *testing.T) {
	e := NewEngine("da", nil, nil, nil, nil, nil)
	if err := e.Run(dopOp("x")); err != ErrNoRunner {
		t.Fatalf("err = %v", err)
	}
}
