package script

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// memStore is a volatile MetaStore for tests.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) PutMeta(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), value...)
	return nil
}

func (s *memStore) GetMeta(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		return nil, errors.New("not found")
	}
	return v, nil
}

func (s *memStore) ListMeta(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

func (s *memStore) DeleteMeta(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// recordingRunner logs executed operations.
type recordingRunner struct {
	mu   sync.Mutex
	ops  []string
	fail map[string]error
}

func (r *recordingRunner) run(_ *Ctx, op Op, params map[string]string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.fail[op.Name]; err != nil {
		return "", err
	}
	rec := op.Name
	if in := params["input"]; in != "" {
		rec += "(" + in + ")"
	}
	r.ops = append(r.ops, rec)
	return "out:" + op.Name, nil
}

func (r *recordingRunner) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.ops...)
}

// scriptedDesigner replays canned decisions.
type scriptedDesigner struct {
	mu       sync.Mutex
	alts     []int
	loops    []bool
	open     []Op
	altCalls int
}

func (d *scriptedDesigner) ChooseAlternative(_, _ string, _ []string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.altCalls++
	if len(d.alts) == 0 {
		return 0, nil
	}
	c := d.alts[0]
	d.alts = d.alts[1:]
	return c, nil
}

func (d *scriptedDesigner) ContinueLoop(_, _ string, _ int) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.loops) == 0 {
		return false, nil
	}
	c := d.loops[0]
	d.loops = d.loops[1:]
	return c, nil
}

func (d *scriptedDesigner) NextOpenStep(_, _ string, _ int) (Op, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.open) == 0 {
		return Op{}, true, nil
	}
	op := d.open[0]
	d.open = d.open[1:]
	return op, false, nil
}

func dopOp(name string) Op { return Op{Name: name, IsDOP: true} }

func TestSeqExecutesInOrderWithDataFlow(t *testing.T) {
	r := &recordingRunner{}
	s := Seq{Steps: []Node{
		dopOp("synth"),
		Op{Name: "plan", IsDOP: true, Params: map[string]string{"input": "$last"}},
	}}
	e := NewEngine("da1", nil, nil, r.run, nil, nil)
	if err := e.Run(s); err != nil {
		t.Fatal(err)
	}
	got := r.names()
	if len(got) != 2 || got[0] != "synth" || got[1] != "plan(out:synth)" {
		t.Fatalf("ops = %v", got)
	}
}

func TestAltFollowsDesignerChoice(t *testing.T) {
	r := &recordingRunner{}
	d := &scriptedDesigner{alts: []int{2}}
	s := Alt{Name: "method", Labels: []string{"a", "b", "c"}, Branches: []Node{
		dopOp("opA"), dopOp("opB"), dopOp("opC"),
	}}
	e := NewEngine("da1", nil, d, r.run, nil, nil)
	if err := e.Run(s); err != nil {
		t.Fatal(err)
	}
	if got := r.names(); len(got) != 1 || got[0] != "opC" {
		t.Fatalf("ops = %v", got)
	}
}

func TestAltOutOfRangeChoice(t *testing.T) {
	d := &scriptedDesigner{alts: []int{9}}
	e := NewEngine("da1", nil, d, (&recordingRunner{}).run, nil, nil)
	err := e.Run(Alt{Name: "x", Branches: []Node{dopOp("a")}})
	if err == nil || !strings.Contains(err.Error(), "choice 9") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoopIterations(t *testing.T) {
	r := &recordingRunner{}
	d := &scriptedDesigner{loops: []bool{true, true, false}}
	s := Loop{Name: "refine", Body: dopOp("sizing")}
	e := NewEngine("da1", nil, d, r.run, nil, nil)
	if err := e.Run(s); err != nil {
		t.Fatal(err)
	}
	if got := r.names(); len(got) != 3 {
		t.Fatalf("iterations = %d, want 3", len(got))
	}
}

func TestLoopMaxBound(t *testing.T) {
	r := &recordingRunner{}
	d := &scriptedDesigner{loops: []bool{true, true, true, true, true}}
	s := Loop{Name: "refine", Body: dopOp("sizing"), Max: 2}
	e := NewEngine("da1", nil, d, r.run, nil, nil)
	if err := e.Run(s); err != nil {
		t.Fatal(err)
	}
	if got := r.names(); len(got) != 2 {
		t.Fatalf("iterations = %d, want 2 (Max)", len(got))
	}
}

func TestOpenRegionDesignerSteps(t *testing.T) {
	r := &recordingRunner{}
	d := &scriptedDesigner{open: []Op{dopOp("extra1"), dopOp("extra2")}}
	s := Seq{Steps: []Node{dopOp("synth"), Open{Name: "free"}, dopOp("assembly")}}
	e := NewEngine("da1", nil, d, r.run, nil, nil)
	if err := e.Run(s); err != nil {
		t.Fatal(err)
	}
	got := r.names()
	want := []string{"synth", "extra1", "extra2", "assembly"}
	if len(got) != len(want) {
		t.Fatalf("ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ops = %v, want %v", got, want)
		}
	}
}

func TestParRunsAllBranches(t *testing.T) {
	r := &recordingRunner{}
	s := Par{Branches: []Node{dopOp("b0"), dopOp("b1"), dopOp("b2")}}
	e := NewEngine("da1", nil, nil, r.run, nil, nil)
	if err := e.Run(s); err != nil {
		t.Fatal(err)
	}
	got := r.names()
	if len(got) != 3 {
		t.Fatalf("ops = %v", got)
	}
	seen := make(map[string]bool)
	for _, o := range got {
		seen[o] = true
	}
	if !seen["b0"] || !seen["b1"] || !seen["b2"] {
		t.Fatalf("branches missing: %v", got)
	}
}

func TestRuntimePrecedenceConstraint(t *testing.T) {
	cs := &ConstraintSet{Precedences: []Precedence{{Before: "synth", After: "assembly"}}}
	r := &recordingRunner{}
	e := NewEngine("da1", nil, nil, r.run, nil, cs)
	err := e.Run(Seq{Steps: []Node{dopOp("assembly")}})
	if err == nil || !strings.Contains(err.Error(), "constraint violated") {
		t.Fatalf("err = %v", err)
	}
	// With synth first it passes.
	e2 := NewEngine("da1", nil, nil, r.run, nil, cs)
	if err := e2.Run(Seq{Steps: []Node{dopOp("synth"), dopOp("assembly")}}); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeSuccessionConstraint(t *testing.T) {
	cs := &ConstraintSet{Successions: []Succession{{First: "padframe", Then: "chipplan"}}}
	r := &recordingRunner{}
	e := NewEngine("da1", nil, nil, r.run, nil, cs)
	err := e.Run(Seq{Steps: []Node{dopOp("padframe"), dopOp("sizing")}})
	if err == nil || !strings.Contains(err.Error(), "must follow") {
		t.Fatalf("err = %v", err)
	}
	e2 := NewEngine("da1", nil, nil, r.run, nil, cs)
	if err := e2.Run(Seq{Steps: []Node{dopOp("padframe"), dopOp("chipplan")}}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticValidation(t *testing.T) {
	cs := &ConstraintSet{Precedences: []Precedence{{Before: "synth", After: "assembly"}}}
	// Violating script: assembly can run before synth in branch 1.
	bad := Alt{Name: "x", Branches: []Node{
		Seq{Steps: []Node{dopOp("synth"), dopOp("assembly")}},
		Seq{Steps: []Node{dopOp("assembly")}},
	}}
	if err := cs.Validate(bad); err == nil {
		t.Fatal("static check accepted violating script")
	}
	good := Seq{Steps: []Node{dopOp("synth"), Alt{Name: "y", Branches: []Node{
		dopOp("assembly"), dopOp("sizing"),
	}}}}
	if err := cs.Validate(good); err != nil {
		t.Fatalf("good script rejected: %v", err)
	}
	// Open regions are accepted (runtime enforcement still applies).
	open := Seq{Steps: []Node{Open{Name: "o"}, dopOp("assembly")}}
	if err := cs.Validate(open); err != nil {
		t.Fatalf("open script rejected: %v", err)
	}
}

func TestECARuleFiresOnEvent(t *testing.T) {
	r := &recordingRunner{}
	var fired []string
	rules := []Rule{
		{
			Name:  "on-require",
			Event: "Require",
			Condition: func(c *Ctx, ev Event) bool {
				return ev.Data["dov"] != ""
			},
			Action: func(c *Ctx, ev Event) error {
				fired = append(fired, "propagate:"+ev.Data["dov"])
				c.SetVar("propagated", ev.Data["dov"])
				return nil
			},
		},
	}
	e := NewEngine("da1", nil, nil, r.run, rules, nil)
	e.PostEvent(Event{Name: "Require", Data: map[string]string{"dov": "v7"}})
	e.PostEvent(Event{Name: "Require", Data: map[string]string{}}) // condition false
	e.PostEvent(Event{Name: "Unrelated"})
	if err := e.Run(Seq{Steps: []Node{dopOp("a")}}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "propagate:v7" {
		t.Fatalf("fired = %v", fired)
	}
	ctx := &Ctx{DA: "da1", e: e}
	if ctx.Var("propagated") != "v7" {
		t.Fatal("rule did not set variable")
	}
}

func TestRuleActionCanStopScript(t *testing.T) {
	r := &recordingRunner{}
	rules := []Rule{{
		Name:  "stop-on-withdraw",
		Event: "Withdraw",
		Action: func(c *Ctx, ev Event) error {
			c.Stop()
			return nil
		},
	}}
	e := NewEngine("da1", nil, nil, r.run, rules, nil)
	e.PostEvent(Event{Name: "Withdraw"})
	err := e.Run(Seq{Steps: []Node{dopOp("a"), dopOp("b")}})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if len(r.names()) != 0 {
		t.Fatalf("ops ran after stop: %v", r.names())
	}
}

func TestRuleActionErrorAborts(t *testing.T) {
	rules := []Rule{{
		Name:   "bad",
		Event:  "E",
		Action: func(*Ctx, Event) error { return errors.New("rule exploded") },
	}}
	e := NewEngine("da1", nil, nil, (&recordingRunner{}).run, rules, nil)
	e.PostEvent(Event{Name: "E"})
	err := e.Run(dopOp("a"))
	if err == nil || !strings.Contains(err.Error(), "rule exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestDesignManagerRecovery(t *testing.T) {
	store := newMemStore()
	s := Seq{Steps: []Node{
		dopOp("synth"),
		Alt{Name: "method", Labels: []string{"fast", "slow"}, Branches: []Node{dopOp("fastplan"), dopOp("slowplan")}},
		dopOp("route"),
		dopOp("assembly"),
	}}
	// First incarnation fails at route (simulating a crash mid-script).
	r1 := &recordingRunner{fail: map[string]error{"route": errors.New("workstation crash")}}
	d1 := &scriptedDesigner{alts: []int{1}}
	dm1, err := NewDesignManager(Config{DA: "da1", Script: s, Store: store, Designer: d1, Runner: r1.run})
	if err != nil {
		t.Fatal(err)
	}
	if err := dm1.Run(); err == nil {
		t.Fatal("expected crash error")
	}
	if got := r1.names(); len(got) != 2 || got[1] != "slowplan" {
		t.Fatalf("first run ops = %v", got)
	}
	if dm1.JournaledOps() != 2 {
		t.Fatalf("journaled ops = %d, want 2", dm1.JournaledOps())
	}

	// Second incarnation: no script passed (loaded from store), designer
	// has no decisions left (the alt choice must come from the journal).
	r2 := &recordingRunner{}
	d2 := &scriptedDesigner{}
	dm2, err := NewDesignManager(Config{DA: "da1", Store: store, Designer: d2, Runner: r2.run})
	if err != nil {
		t.Fatal(err)
	}
	if err := dm2.Run(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got := r2.names()
	if len(got) != 2 || got[0] != "route" || got[1] != "assembly" {
		t.Fatalf("resumed ops = %v (completed ops must not re-run)", got)
	}
	if d2.altCalls != 0 {
		t.Fatalf("designer re-asked %d times; decisions must replay from journal", d2.altCalls)
	}
	run, replayed := dm2.Engine().Stats()
	if run != 2 || replayed != 2 {
		t.Fatalf("stats = (%d run, %d replayed), want (2, 2)", run, replayed)
	}
}

func TestDesignManagerResetJournal(t *testing.T) {
	store := newMemStore()
	r := &recordingRunner{}
	dm, err := NewDesignManager(Config{
		DA: "da1", Script: Seq{Steps: []Node{dopOp("a"), dopOp("b")}},
		Store: store, Runner: r.run,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dm.ResetJournal(); err != nil {
		t.Fatal(err)
	}
	if dm.JournaledOps() != 0 {
		t.Fatalf("journal not empty after reset: %d", dm.JournaledOps())
	}
	// Restart from the beginning (specification change, Sect. 5.3).
	if err := dm.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.names(); len(got) != 4 {
		t.Fatalf("ops = %v, want a,b,a,b", got)
	}
}

func TestDesignManagerStopAndResume(t *testing.T) {
	store := newMemStore()
	r := &recordingRunner{}
	blocker := make(chan struct{})
	started := make(chan struct{})
	runner := func(ctx *Ctx, op Op, params map[string]string) (string, error) {
		if op.Name == "slow" {
			close(started)
			<-blocker
		}
		return r.run(ctx, op, params)
	}
	dm, err := NewDesignManager(Config{
		DA: "da1", Script: Seq{Steps: []Node{dopOp("slow"), dopOp("after")}},
		Store: store, Runner: runner,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- dm.Run() }()
	<-started // the slow op is executing: Stop lands before "after"
	dm.Stop()
	close(blocker)
	err = <-done
	// Stop lands either between slow and after (ErrStopped) — "after" must
	// not have run.
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	for _, op := range r.names() {
		if op == "after" {
			t.Fatal("op after stop executed")
		}
	}
	// Resume completes the remainder.
	if err := dm.Run(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got := r.names()
	if got[len(got)-1] != "after" {
		t.Fatalf("ops = %v", got)
	}
}

func TestNewDesignManagerRejectsViolatingScript(t *testing.T) {
	cs := &ConstraintSet{Precedences: []Precedence{{Before: "synth", After: "assembly"}}}
	_, err := NewDesignManager(Config{
		DA: "da1", Script: dopOp("assembly"), Runner: (&recordingRunner{}).run, Constraints: cs,
	})
	if err == nil {
		t.Fatal("violating script accepted")
	}
}

func TestNewDesignManagerConfigErrors(t *testing.T) {
	if _, err := NewDesignManager(Config{Script: dopOp("a"), Runner: (&recordingRunner{}).run}); err == nil {
		t.Fatal("missing DA accepted")
	}
	if _, err := NewDesignManager(Config{DA: "x", Script: dopOp("a")}); !errors.Is(err, ErrNoRunner) {
		t.Fatalf("missing runner = %v", err)
	}
	if _, err := NewDesignManager(Config{DA: "x", Runner: (&recordingRunner{}).run}); err == nil {
		t.Fatal("missing script accepted")
	}
}

func TestScriptEncodeDecodeRoundTrip(t *testing.T) {
	s := Seq{Steps: []Node{
		dopOp("synth"),
		Alt{Name: "m", Labels: []string{"x"}, Branches: []Node{Loop{Name: "l", Body: dopOp("sizing"), Max: 3}}},
		Par{Branches: []Node{dopOp("p1"), Open{Name: "o"}}},
	}}
	data, err := EncodeScript(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeScript(data)
	if err != nil {
		t.Fatal(err)
	}
	ops := got.Ops()
	if len(ops) != 3 || ops[0] != "synth" || ops[1] != "sizing" || ops[2] != "p1" {
		t.Fatalf("Ops after round trip = %v", ops)
	}
}

func TestOpsEnumeration(t *testing.T) {
	s := Seq{Steps: []Node{dopOp("a"), Par{Branches: []Node{dopOp("b"), Alt{Branches: []Node{dopOp("c")}}}}}}
	ops := s.Ops()
	want := map[string]bool{"a": true, "b": true, "c": true}
	if len(ops) != 3 {
		t.Fatalf("Ops = %v", ops)
	}
	for _, o := range ops {
		if !want[o] {
			t.Fatalf("unexpected op %q", o)
		}
	}
}

func TestVarAccessConcurrent(t *testing.T) {
	e := NewEngine("da1", nil, nil, func(ctx *Ctx, op Op, _ map[string]string) (string, error) {
		ctx.SetVar("k:"+op.Name, op.Name)
		return ctx.Var("k:" + op.Name), nil
	}, nil, nil)
	branches := make([]Node, 8)
	for i := range branches {
		branches[i] = dopOp(fmt.Sprintf("op%d", i))
	}
	if err := e.Run(Par{Branches: branches}); err != nil {
		t.Fatal(err)
	}
	run, _ := e.Stats()
	if run != 8 {
		t.Fatalf("run = %d", run)
	}
}
