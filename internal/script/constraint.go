package script

import (
	"fmt"
)

// Precedence requires that a DOP of type After must not be applied before a
// DOP of type Before has successfully completed (Sect. 4.2: "chip assembly
// must not be applied before structure synthesis").
type Precedence struct {
	Before, After string
}

// Succession requires that once a DOP of type First completes, the next DOP
// executed must be of type Then (Sect. 4.2: "pad frame editor followed by
// chip planner").
type Succession struct {
	First, Then string
}

// ConstraintSet holds the dependencies of a design application domain. The
// constraints hold for all DAs of the domain: scripts must not contradict
// them and the engine enforces them at run time.
type ConstraintSet struct {
	// Precedences are before/after requirements.
	Precedences []Precedence
	// Successions are must-follow requirements.
	Successions []Succession
}

// checkRuntime verifies that running op next is legal given the set of
// completed DOP names and the previously executed DOP.
func (c *ConstraintSet) checkRuntime(op string, isDOP bool, completed map[string]int, lastDOP string) error {
	if c == nil || !isDOP {
		return nil
	}
	for _, p := range c.Precedences {
		if p.After == op && completed[p.Before] == 0 {
			return fmt.Errorf("script: constraint violated: %q requires completed %q", op, p.Before)
		}
	}
	for _, s := range c.Successions {
		if s.First == lastDOP && op != s.Then {
			return fmt.Errorf("script: constraint violated: %q must follow %q, got %q", s.Then, s.First, op)
		}
	}
	return nil
}

// Validate statically checks a script against the constraint set. The check
// is conservative: it explores every alternative branch and treats loops as
// a single iteration; Open regions admit arbitrary operations and are
// accepted (run-time enforcement still applies). An error identifies the
// first contradiction found.
func (c *ConstraintSet) Validate(n Node) error {
	if c == nil || n == nil {
		return nil
	}
	// states: sets of (completed set, lastDOP) after executing the prefix.
	type state struct {
		done map[string]bool
		last string
		open bool // an Open region occurred: later precedences unprovable
	}
	clone := func(s state) state {
		d := make(map[string]bool, len(s.done))
		for k := range s.done {
			d[k] = true
		}
		return state{done: d, last: s.last, open: s.open}
	}
	var walk func(n Node, in []state) ([]state, error)
	applyOp := func(op Op, in []state) ([]state, error) {
		out := make([]state, 0, len(in))
		for _, s := range in {
			if op.IsDOP {
				for _, p := range c.Precedences {
					if p.After == op.Name && !s.done[p.Before] && !s.open {
						return nil, fmt.Errorf("script: static check: %q can run before %q", op.Name, p.Before)
					}
				}
				for _, su := range c.Successions {
					if su.First == s.last && op.Name != su.Then {
						return nil, fmt.Errorf("script: static check: %q follows %q, want %q", op.Name, su.First, su.Then)
					}
				}
			}
			ns := clone(s)
			if op.IsDOP {
				ns.done[op.Name] = true
				ns.last = op.Name
			}
			out = append(out, ns)
		}
		return out, nil
	}
	walk = func(n Node, in []state) ([]state, error) {
		switch t := n.(type) {
		case Op:
			return applyOp(t, in)
		case Seq:
			cur := in
			var err error
			for _, st := range t.Steps {
				cur, err = walk(st, cur)
				if err != nil {
					return nil, err
				}
			}
			return cur, nil
		case Alt:
			var out []state
			for _, b := range t.Branches {
				res, err := walk(b, in)
				if err != nil {
					return nil, err
				}
				out = append(out, res...)
			}
			return out, nil
		case Loop:
			// One iteration suffices for precedence collection; a second
			// pass catches succession violations across iterations.
			once, err := walk(t.Body, in)
			if err != nil {
				return nil, err
			}
			if _, err := walk(t.Body, once); err != nil {
				return nil, err
			}
			return once, nil
		case Par:
			// Conservative: validate each branch independently from the
			// joint entry states; afterwards all branch effects merge.
			merged := make([]state, 0, len(in))
			for _, s := range in {
				merged = append(merged, clone(s))
			}
			for _, b := range t.Branches {
				res, err := walk(b, in)
				if err != nil {
					return nil, err
				}
				for i := range merged {
					for _, r := range res {
						for k := range r.done {
							merged[i].done[k] = true
						}
					}
					merged[i].last = "" // interleaving unknown
				}
			}
			return merged, nil
		case Open:
			out := make([]state, 0, len(in))
			for _, s := range in {
				ns := clone(s)
				ns.open = true
				ns.last = "" // designer may have run anything
				out = append(out, ns)
			}
			return out, nil
		default:
			return nil, fmt.Errorf("script: unknown node type %T", n)
		}
	}
	start := []state{{done: make(map[string]bool)}}
	_, err := walk(n, start)
	return err
}
