// Package script implements CONCORD's Design Control (DC) level — the
// design flow management (DFM) layer, between the cooperation layer above
// and design object management (DOM) below: the organization of design-tool
// applications within one design activity (Sect. 4.2) and the design
// manager (DM) enforcing it (Sect. 5.3).
//
// Three mechanisms combine to specify a DA's work flow:
//
//   - scripts: templates of valid DOP execution sequences, with sequences,
//     parallel branches, alternative paths, iterations and "open" regions
//     that leave degrees of freedom to the designer (Fig. 6),
//   - constraints: domain-wide precedence/succession dependencies between
//     DOP types that every script and execution must observe,
//   - ECA rules: (event, condition, action) triples reacting to
//     asynchronously occurring cooperation events.
//
// The engine journals every operation start/finish and every designer
// decision to a persistent store, giving the recoverable script executions
// of Sect. 5.3: after a workstation crash the DM replays the journal to the
// exact position reached and continues forward (minimum loss of work).
package script

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// Node is a work-flow script fragment. The concrete node types are Op, Seq,
// Par, Alt, Loop and Open.
type Node interface {
	node()
	// Ops reports every operation name that can occur in the fragment.
	Ops() []string
}

// Op invokes a single operation: a design operation (tool execution, IsDOP
// true) or a specific DA operation such as Evaluate or Propagate (IsDOP
// false).
type Op struct {
	// Name identifies the operation; the runner binds it to behaviour.
	Name string
	// IsDOP marks design operations (subject to domain constraints).
	IsDOP bool
	// Params carry static arguments. The special value "$last" is
	// replaced with the previous operation's result at execution time —
	// the identification of a DOV flowing between DOPs (Sect. 4.2).
	Params map[string]string
}

func (Op) node() {}

// Ops implements Node.
func (o Op) Ops() []string { return []string{o.Name} }

// Seq executes steps in order.
type Seq struct {
	Steps []Node
}

func (Seq) node() {}

// Ops implements Node.
func (s Seq) Ops() []string {
	var out []string
	for _, st := range s.Steps {
		out = append(out, st.Ops()...)
	}
	return out
}

// Par executes branches concurrently and joins them (branches for parallel
// actions, Sect. 4.2).
type Par struct {
	Branches []Node
}

func (Par) node() {}

// Ops implements Node.
func (p Par) Ops() []string {
	var out []string
	for _, b := range p.Branches {
		out = append(out, b.Ops()...)
	}
	return out
}

// Alt lets the designer choose one of several alternative paths (Fig. 6b).
type Alt struct {
	// Name labels the decision for the designer and the journal.
	Name string
	// Labels describe the branches (parallel to Branches).
	Labels []string
	// Branches are the alternative continuations.
	Branches []Node
}

func (Alt) node() {}

// Ops implements Node.
func (a Alt) Ops() []string {
	var out []string
	for _, b := range a.Branches {
		out = append(out, b.Ops()...)
	}
	return out
}

// Loop repeats its body while the designer (or the Max bound) decides to
// iterate — the designer-driven re-iterations of chip planning (Sect. 3).
type Loop struct {
	// Name labels the iteration decision.
	Name string
	// Body is executed at least once.
	Body Node
	// Max bounds the iterations (0 = unbounded, designer decides).
	Max int
}

func (Loop) node() {}

// Ops implements Node.
func (l Loop) Ops() []string { return l.Body.Ops() }

// Open is a partially undetermined script region ("open", Fig. 6a): the
// designer performs any sequence of intermediate operations before declaring
// the region done.
type Open struct {
	// Name labels the region for the designer and the journal.
	Name string
}

func (Open) node() {}

// Ops implements Node.
func (Open) Ops() []string { return nil }

func init() {
	gob.Register(Op{})
	gob.Register(Seq{})
	gob.Register(Par{})
	gob.Register(Alt{})
	gob.Register(Loop{})
	gob.Register(Open{})
}

// EncodeScript serializes a script for persistent storage (the persistent
// script the DM relies on for recovery, Sect. 5.3).
func EncodeScript(n Node) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&n); err != nil {
		return nil, fmt.Errorf("script: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeScript deserializes a script produced by EncodeScript.
func DecodeScript(data []byte) (Node, error) {
	var n Node
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&n); err != nil {
		return nil, fmt.Errorf("script: decode: %w", err)
	}
	if n == nil {
		return nil, errors.New("script: decoded nil script")
	}
	return n, nil
}
