package script

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Errors reported by the engine.
var (
	// ErrStopped interrupts script execution (external event or designer
	// intervention); the journal keeps the position for a later resume.
	ErrStopped = errors.New("script: execution stopped")
	// ErrNoRunner rejects execution without an operation runner.
	ErrNoRunner = errors.New("script: no operation runner configured")
)

// MetaStore is the persistent store for scripts and execution journals. It
// matches the metadata interface of the design data repository (the paper
// keeps DM context data in the server DBMS, Sect. 5.1).
type MetaStore interface {
	PutMeta(key string, value []byte) error
	GetMeta(key string) ([]byte, error)
	ListMeta(prefix string) []string
	DeleteMeta(key string) error
}

// Runner executes one operation of a script. params arrive with "$last"
// already substituted by the preceding operation's result. The returned
// string is the operation's result (typically a DOV identifier plus status
// information — the only data flowing between DOPs, Sect. 4.2).
type Runner func(ctx *Ctx, op Op, params map[string]string) (string, error)

// Designer supplies the creative decisions a script leaves open (Sect. 4.2).
// Implementations are interactive in a real deployment and policy-driven in
// simulation.
type Designer interface {
	// ChooseAlternative picks a branch of an Alt node.
	ChooseAlternative(da, decision string, labels []string) (int, error)
	// ContinueLoop decides whether a Loop body runs another iteration.
	ContinueLoop(da, loop string, iteration int) (bool, error)
	// NextOpenStep yields the next operation of an Open region, or
	// done=true to close the region.
	NextOpenStep(da, region string, step int) (op Op, done bool, err error)
}

// AutoDesigner is the default non-interactive policy: first alternative,
// no loop repetitions, empty open regions.
type AutoDesigner struct{}

// ChooseAlternative implements Designer.
func (AutoDesigner) ChooseAlternative(_, _ string, _ []string) (int, error) { return 0, nil }

// ContinueLoop implements Designer.
func (AutoDesigner) ContinueLoop(_, _ string, _ int) (bool, error) { return false, nil }

// NextOpenStep implements Designer.
func (AutoDesigner) NextOpenStep(_, _ string, _ int) (Op, bool, error) { return Op{}, true, nil }

// Event is an asynchronously occurring cooperation event delivered to a DA
// (Propose, Require, specification changes, withdrawals...).
type Event struct {
	// Name selects the ECA rules to fire.
	Name string
	// Data carries event parameters.
	Data map[string]string
}

// Rule is an (event, condition, action) triple: "WHEN Require IF (required
// DOV available) THEN Propagate" (Sect. 4.2).
type Rule struct {
	// Name labels the rule in diagnostics.
	Name string
	// Event is the triggering event name.
	Event string
	// Condition gates the action; nil means always.
	Condition func(*Ctx, Event) bool
	// Action reacts to the event. Returning an error stops the script.
	Action func(*Ctx, Event) error
}

// Ctx is the execution context handed to runners, rules and conditions.
type Ctx struct {
	// DA is the owning design activity.
	DA string
	e  *Engine
}

// Var reads an execution variable.
func (c *Ctx) Var(name string) string {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	return c.e.vars[name]
}

// SetVar writes an execution variable.
func (c *Ctx) SetVar(name, value string) {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	c.e.vars[name] = value
}

// Stop interrupts script execution at the next operation boundary.
func (c *Ctx) Stop() { c.e.stop.Store(true) }

// Completed reports how many times the named operation has completed.
func (c *Ctx) Completed(op string) int {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	return c.e.completed[op]
}

// PostEvent enqueues a follow-up event (rules may chain).
func (c *Ctx) PostEvent(ev Event) { c.e.PostEvent(ev) }

// journalEntry is one durable record of the execution journal.
type journalEntry struct {
	Kind   string // "start", "op", "alt", "loop", "open"
	Result string
	Choice int
	Cont   bool
	Op     Op
	Done   bool
}

// Engine executes one script with journaled, resumable progress.
type Engine struct {
	da          string
	store       MetaStore
	designer    Designer
	runner      Runner
	rules       []Rule
	constraints *ConstraintSet

	mu        sync.Mutex
	vars      map[string]string
	completed map[string]int
	lastDOP   string
	events    []Event
	stop      atomic.Bool
	// opsRun counts live (non-replayed) operation executions.
	opsRun int
	// opsReplayed counts journal-satisfied operations.
	opsReplayed int
}

// NewEngine builds an engine. store and designer may be nil (volatile
// execution, auto decisions).
func NewEngine(da string, store MetaStore, designer Designer, runner Runner, rules []Rule, constraints *ConstraintSet) *Engine {
	if designer == nil {
		designer = AutoDesigner{}
	}
	return &Engine{
		da:          da,
		store:       store,
		designer:    designer,
		runner:      runner,
		rules:       rules,
		constraints: constraints,
		vars:        make(map[string]string),
		completed:   make(map[string]int),
	}
}

// PostEvent enqueues an external cooperation event; matching ECA rules fire
// at the next operation boundary.
func (e *Engine) PostEvent(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, ev)
}

// Stats reports (live, replayed) operation counts.
func (e *Engine) Stats() (run, replayed int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.opsRun, e.opsReplayed
}

// ClearStop re-arms a stopped engine for resumption.
func (e *Engine) ClearStop() { e.stop.Store(false) }

// Var reads an execution variable (rule outcomes, op results).
func (e *Engine) Var(name string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.vars[name]
}

func (e *Engine) journalKey(path string) string {
	return "dm/" + e.da + "/j/" + path
}

func (e *Engine) readEntry(path string) (*journalEntry, bool) {
	if e.store == nil {
		return nil, false
	}
	data, err := e.store.GetMeta(e.journalKey(path))
	if err != nil {
		return nil, false
	}
	var ent journalEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ent); err != nil {
		return nil, false
	}
	return &ent, true
}

func (e *Engine) writeEntry(path string, ent journalEntry) error {
	if e.store == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ent); err != nil {
		return fmt.Errorf("script: journal encode: %w", err)
	}
	return e.store.PutMeta(e.journalKey(path), buf.Bytes())
}

// drainEvents fires ECA rules for queued events. Rule actions run in event
// order; an action error aborts execution.
func (e *Engine) drainEvents(ctx *Ctx) error {
	for {
		e.mu.Lock()
		if len(e.events) == 0 {
			e.mu.Unlock()
			return nil
		}
		ev := e.events[0]
		e.events = e.events[1:]
		rules := e.rules
		e.mu.Unlock()
		for _, r := range rules {
			if r.Event != ev.Name {
				continue
			}
			if r.Condition != nil && !r.Condition(ctx, ev) {
				continue
			}
			if err := r.Action(ctx, ev); err != nil {
				return fmt.Errorf("script: rule %q: %w", r.Name, err)
			}
		}
	}
}

// Run executes the script from the beginning, replaying any journaled
// progress first. It returns ErrStopped when interrupted; calling Run again
// resumes from the journal.
func (e *Engine) Run(n Node) error {
	if e.runner == nil {
		return ErrNoRunner
	}
	ctx := &Ctx{DA: e.da, e: e}
	_, err := e.exec(ctx, n, "r", "")
	return err
}

// checkpoint runs between operations: event rules, then the stop flag.
func (e *Engine) checkpoint(ctx *Ctx) error {
	if err := e.drainEvents(ctx); err != nil {
		return err
	}
	if e.stop.Load() {
		return ErrStopped
	}
	return nil
}

// exec walks the script. path uniquely identifies the node instance
// (iterations included) and keys the journal. last is the preceding result
// in the sequential flow; the fragment's final result is returned.
func (e *Engine) exec(ctx *Ctx, n Node, path, last string) (string, error) {
	switch t := n.(type) {
	case Op:
		return e.execOp(ctx, t, path, last)
	case Seq:
		cur := last
		for i, st := range t.Steps {
			res, err := e.exec(ctx, st, fmt.Sprintf("%s.%d", path, i), cur)
			if err != nil {
				return "", err
			}
			cur = res
		}
		return cur, nil
	case Par:
		var wg sync.WaitGroup
		errs := make([]error, len(t.Branches))
		for i := range t.Branches {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = e.exec(ctx, t.Branches[i], fmt.Sprintf("%s.p%d", path, i), last)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return "", err
			}
		}
		return "", nil
	case Alt:
		if err := e.checkpoint(ctx); err != nil {
			return "", err
		}
		key := path + ":alt"
		choice := -1
		if ent, ok := e.readEntry(key); ok {
			choice = ent.Choice
		} else {
			c, err := e.designer.ChooseAlternative(e.da, t.Name, t.Labels)
			if err != nil {
				return "", fmt.Errorf("script: alternative %q: %w", t.Name, err)
			}
			choice = c
			if err := e.writeEntry(key, journalEntry{Kind: "alt", Choice: c}); err != nil {
				return "", err
			}
		}
		if choice < 0 || choice >= len(t.Branches) {
			return "", fmt.Errorf("script: alternative %q: choice %d of %d branches", t.Name, choice, len(t.Branches))
		}
		return e.exec(ctx, t.Branches[choice], fmt.Sprintf("%s.a%d", path, choice), last)
	case Loop:
		cur := last
		for iter := 0; ; iter++ {
			res, err := e.exec(ctx, t.Body, fmt.Sprintf("%s.i%d", path, iter), cur)
			if err != nil {
				return "", err
			}
			cur = res
			if t.Max > 0 && iter+1 >= t.Max {
				return cur, nil
			}
			key := fmt.Sprintf("%s:it%d", path, iter)
			var cont bool
			if ent, ok := e.readEntry(key); ok {
				cont = ent.Cont
			} else {
				if err := e.checkpoint(ctx); err != nil {
					return "", err
				}
				c, err := e.designer.ContinueLoop(e.da, t.Name, iter)
				if err != nil {
					return "", fmt.Errorf("script: loop %q: %w", t.Name, err)
				}
				cont = c
				if err := e.writeEntry(key, journalEntry{Kind: "loop", Cont: c}); err != nil {
					return "", err
				}
			}
			if !cont {
				return cur, nil
			}
		}
	case Open:
		cur := last
		for step := 0; ; step++ {
			key := fmt.Sprintf("%s:step%d", path, step)
			var op Op
			var done bool
			if ent, ok := e.readEntry(key); ok {
				op, done = ent.Op, ent.Done
			} else {
				if err := e.checkpoint(ctx); err != nil {
					return "", err
				}
				o, d, err := e.designer.NextOpenStep(e.da, t.Name, step)
				if err != nil {
					return "", fmt.Errorf("script: open region %q: %w", t.Name, err)
				}
				op, done = o, d
				if err := e.writeEntry(key, journalEntry{Kind: "open", Op: o, Done: d}); err != nil {
					return "", err
				}
			}
			if done {
				return cur, nil
			}
			res, err := e.execOp(ctx, op, fmt.Sprintf("%s.s%d", path, step), cur)
			if err != nil {
				return "", err
			}
			cur = res
		}
	default:
		return "", fmt.Errorf("script: unknown node type %T", n)
	}
}

// execOp runs (or replays) a single operation.
func (e *Engine) execOp(ctx *Ctx, op Op, path, last string) (string, error) {
	if ent, ok := e.readEntry(path); ok && ent.Kind == "op" {
		// Journal hit: the operation completed in a previous incarnation.
		e.mu.Lock()
		e.completed[op.Name]++
		if op.IsDOP {
			e.lastDOP = op.Name
		}
		e.opsReplayed++
		e.mu.Unlock()
		return ent.Result, nil
	}
	if err := e.checkpoint(ctx); err != nil {
		return "", err
	}
	e.mu.Lock()
	err := e.constraints.checkRuntime(op.Name, op.IsDOP, e.completed, e.lastDOP)
	e.mu.Unlock()
	if err != nil {
		return "", err
	}
	// Substitute $last in parameters (data flow between DOPs).
	params := make(map[string]string, len(op.Params))
	for k, v := range op.Params {
		params[k] = strings.ReplaceAll(v, "$last", last)
	}
	// "A log entry capturing all DOP parameters is written for each start
	// and finish of a DOP execution" (Sect. 5.3).
	if err := e.writeEntry(path+":start", journalEntry{Kind: "start", Op: op}); err != nil {
		return "", err
	}
	result, err := e.runner(ctx, op, params)
	if err != nil {
		return "", fmt.Errorf("script: op %q: %w", op.Name, err)
	}
	if err := e.writeEntry(path, journalEntry{Kind: "op", Result: result}); err != nil {
		return "", err
	}
	e.mu.Lock()
	e.completed[op.Name]++
	if op.IsDOP {
		e.lastDOP = op.Name
	}
	e.opsRun++
	e.mu.Unlock()
	return result, nil
}

// DesignManager enforces the work flow within one DA and handles external
// cooperation events (Sect. 5.3). It persists its script and journal in the
// MetaStore so a workstation crash recovers to the last consistent position.
type DesignManager struct {
	da     string
	store  MetaStore
	script Node
	engine *Engine
}

// Config assembles a DesignManager.
type Config struct {
	// DA is the owning design activity identifier.
	DA string
	// Script is the work-flow template. When the store already holds a
	// persistent script for the DA (recovery), the stored script wins.
	Script Node
	// Store persists script and journal; nil disables recovery.
	Store MetaStore
	// Designer answers open decisions; nil uses AutoDesigner.
	Designer Designer
	// Runner executes operations. Required.
	Runner Runner
	// Rules are the DA's ECA rules.
	Rules []Rule
	// Constraints are the domain dependencies; the script is statically
	// validated against them.
	Constraints *ConstraintSet
}

// NewDesignManager validates the script against the domain constraints,
// persists it, and prepares an engine (resuming any journaled execution).
func NewDesignManager(cfg Config) (*DesignManager, error) {
	if cfg.DA == "" {
		return nil, errors.New("script: DesignManager needs a DA")
	}
	if cfg.Runner == nil {
		return nil, ErrNoRunner
	}
	scriptNode := cfg.Script
	if cfg.Store != nil {
		key := "dm/" + cfg.DA + "/script"
		if data, err := cfg.Store.GetMeta(key); err == nil {
			stored, err := DecodeScript(data)
			if err != nil {
				return nil, err
			}
			scriptNode = stored
		} else if scriptNode != nil {
			data, err := EncodeScript(scriptNode)
			if err != nil {
				return nil, err
			}
			if err := cfg.Store.PutMeta(key, data); err != nil {
				return nil, err
			}
		}
	}
	if scriptNode == nil {
		return nil, errors.New("script: no script given or stored")
	}
	if err := cfg.Constraints.Validate(scriptNode); err != nil {
		return nil, err
	}
	return &DesignManager{
		da:     cfg.DA,
		store:  cfg.Store,
		script: scriptNode,
		engine: NewEngine(cfg.DA, cfg.Store, cfg.Designer, cfg.Runner, cfg.Rules, cfg.Constraints),
	}, nil
}

// DA returns the owning design activity identifier.
func (dm *DesignManager) DA() string { return dm.da }

// Script returns the (possibly recovered) work-flow template.
func (dm *DesignManager) Script() Node { return dm.script }

// Engine exposes the underlying engine (statistics, variables).
func (dm *DesignManager) Engine() *Engine { return dm.engine }

// Run executes the script to completion, resuming from the journal if a
// previous incarnation made progress. ErrStopped indicates interruption.
func (dm *DesignManager) Run() error {
	dm.engine.ClearStop()
	return dm.engine.Run(dm.script)
}

// PostEvent delivers an external cooperation event to the DA's rules.
func (dm *DesignManager) PostEvent(ev Event) { dm.engine.PostEvent(ev) }

// Stop interrupts the running script at the next operation boundary.
func (dm *DesignManager) Stop() { dm.engine.stop.Store(true) }

// ResetJournal discards journaled progress: the DA execution "has to be
// restarted from the beginning" after a specification change (Sect. 5.3).
// The persistent script survives.
func (dm *DesignManager) ResetJournal() error {
	if dm.store == nil {
		dm.engine = NewEngine(dm.da, dm.store, dm.engine.designer, dm.engine.runner, dm.engine.rules, dm.engine.constraints)
		return nil
	}
	keys := dm.store.ListMeta("dm/" + dm.da + "/j/")
	sort.Strings(keys)
	for _, k := range keys {
		if err := dm.store.DeleteMeta(k); err != nil {
			return err
		}
	}
	dm.engine = NewEngine(dm.da, dm.store, dm.engine.designer, dm.engine.runner, dm.engine.rules, dm.engine.constraints)
	return nil
}

// JournaledOps reports how many operation-completion entries the persistent
// journal holds (diagnostics for recovery tests).
func (dm *DesignManager) JournaledOps() int {
	if dm.store == nil {
		return 0
	}
	n := 0
	for _, k := range dm.store.ListMeta("dm/" + dm.da + "/j/") {
		if !strings.Contains(k, ":") {
			n++
		}
	}
	return n
}
