package rpc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"concord/internal/binenc"
	"concord/internal/fault"
	"concord/internal/wal"
)

// Two-phase commit: CONCORD requires client-TM and server-TM to "accomplish
// a two-phase-commit protocol for all their critical interactions"
// (Sect. 5.2), and suggests the X/OPEN protocol with presumed-abort style
// optimizations for LAN communication (Sect. 6, [SBCM93]).
//
// The engine here is presumed-abort: the coordinator force-logs only commit
// decisions; absence of a decision record means abort. Participants
// force-log their prepare vote and resolve in-doubt transactions by asking
// the coordinator after a crash.

// Vote is a participant's answer to prepare.
type Vote uint8

// Votes.
const (
	// VoteCommit signals readiness to commit.
	VoteCommit Vote = iota + 1
	// VoteAbort refuses the transaction.
	VoteAbort
)

// Resource is a local resource manager joining 2PC transactions.
type Resource interface {
	// Prepare must persist everything needed to commit later and return
	// VoteCommit, or release and return VoteAbort.
	Prepare(txid string) (Vote, error)
	// Commit finalizes a prepared transaction. It must be idempotent.
	Commit(txid string) error
	// Abort rolls a transaction back. It must be idempotent and tolerate
	// unknown txids (presumed abort).
	Abort(txid string) error
}

// Outcome is the decided fate of a distributed transaction.
type Outcome uint8

// Outcomes.
const (
	// OutcomeCommitted means all participants prepared and the decision
	// was logged.
	OutcomeCommitted Outcome = iota + 1
	// OutcomeAborted means some participant refused or was unreachable.
	OutcomeAborted
)

// String returns the outcome name.
func (o Outcome) String() string {
	if o == OutcomeCommitted {
		return "committed"
	}
	return "aborted"
}

// Coordinator log record types.
const (
	recDecisionCommit wal.RecordType = 0x21
	recDecisionEnd    wal.RecordType = 0x22
)

// Fault points traversed by the 2PC engine and the notifier (the scenario
// harness arms them to simulate crashes at protocol steps).
const (
	// FaultDecisionLogged fires in the coordinator after the commit
	// decision is durable, before any participant hears it — the classic
	// in-doubt window on the participant side.
	FaultDecisionLogged = "rpc:2pc-decision-logged"
	// FaultPrepareVoteLogged fires in the participant after its commit
	// vote is durable, before the vote reaches the coordinator — the
	// reply is lost and the participant stays in doubt.
	FaultPrepareVoteLogged = "rpc:2pc-prepare-vote-logged"
	// FaultCommitApply fires in the participant when the commit decision
	// arrives, before the resource applies it — committed at the
	// coordinator, unapplied at the participant until Resolve.
	FaultCommitApply = "rpc:2pc-commit-apply"
	// FaultNotifyDrop fires on every callback enqueue; when armed the
	// notification is dropped (best-effort channel, counted in Stats).
	FaultNotifyDrop = "rpc:notify-drop"
)

// FaultPoints lists every fault point owned by this package, for coverage
// reports.
var FaultPoints = []string{
	FaultDecisionLogged,
	FaultPrepareVoteLogged,
	FaultCommitApply,
	FaultNotifyDrop,
}

// Coordinator drives presumed-abort 2PC over a Client. The decision log may
// be nil for volatile (test) coordinators.
type Coordinator struct {
	client *Client
	log    *wal.Log

	// Faults is the fault-point registry traversed at FaultDecisionLogged
	// (nil-safe). Set it before the first Commit; tests only.
	Faults *fault.Registry

	mu        sync.Mutex
	decisions map[string]Outcome
	// ended marks committed transactions every participant has acknowledged
	// (decision-end logged): ResendDecisions skips them so a failover resend
	// only re-delivers the genuinely unacknowledged tail.
	ended map[string]bool
	// Stats counts protocol messages for the E10 experiment.
	stats Stats
}

// Stats counts 2PC protocol messages.
type Stats struct {
	Prepares, Commits, Aborts, Retries int
}

// NewCoordinator returns a coordinator using client for participant calls
// and log (optional) for durable commit decisions.
func NewCoordinator(client *Client, log *wal.Log) (*Coordinator, error) {
	c := &Coordinator{client: client, log: log, decisions: make(map[string]Outcome), ended: make(map[string]bool)}
	if log != nil {
		err := log.Replay(func(r wal.Record) error {
			switch r.Type {
			case recDecisionCommit:
				c.decisions[string(r.Payload)] = OutcomeCommitted
			case recDecisionEnd:
				delete(c.decisions, string(r.Payload))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stats returns a copy of the protocol message counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Outcome reports the logged fate of txid. Unknown transactions are aborted
// by presumption.
func (c *Coordinator) Outcome(txid string) Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	if o, ok := c.decisions[txid]; ok {
		return o
	}
	return OutcomeAborted
}

// Methods used on participant endpoints.
const (
	MethodPrepare = "2pc/prepare"
	MethodCommit  = "2pc/commit"
	MethodAbort   = "2pc/abort"
)

// Commit runs the protocol for txid across the participant addresses.
// On any prepare failure the transaction aborts. The returned outcome is
// durable before participants learn it.
func (c *Coordinator) Commit(txid string, participants []string) (Outcome, error) {
	// Phase 1: prepare.
	allPrepared := true
	for _, p := range participants {
		c.mu.Lock()
		c.stats.Prepares++
		c.mu.Unlock()
		resp, err := c.client.Call(p, MethodPrepare, []byte(txid))
		if err != nil || string(resp) != "commit" {
			allPrepared = false
			break
		}
	}
	if !allPrepared {
		// Presumed abort: no forced log write needed.
		c.abortAll(txid, participants)
		return OutcomeAborted, nil
	}
	// Decision: force-log commit.
	if c.log != nil {
		if _, err := c.log.Append(recDecisionCommit, "coordinator", []byte(txid)); err != nil {
			// Cannot make the decision durable: abort is the safe fate.
			c.abortAll(txid, participants)
			return OutcomeAborted, fmt.Errorf("rpc: 2pc decision log: %w", err)
		}
	}
	c.mu.Lock()
	c.decisions[txid] = OutcomeCommitted
	c.mu.Unlock()
	if err := c.Faults.At(FaultDecisionLogged); err != nil {
		// Simulated coordinator death between the durable decision and
		// phase 2: the transaction IS committed; participants stay in
		// doubt until they Resolve against the decision log.
		return OutcomeCommitted, fmt.Errorf("rpc: 2pc after decision: %w", err)
	}
	// Phase 2: commit.
	var firstErr error
	for _, p := range participants {
		c.mu.Lock()
		c.stats.Commits++
		c.mu.Unlock()
		if _, err := c.client.Call(p, MethodCommit, []byte(txid)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rpc: 2pc commit at %s: %w", p, err)
		}
	}
	if firstErr == nil {
		if c.log != nil {
			// All acks in: the decision record may be forgotten.
			c.log.Append(recDecisionEnd, "coordinator", []byte(txid)) //nolint:errcheck // cleanup only
		}
		c.mu.Lock()
		c.ended[txid] = true
		c.mu.Unlock()
	}
	// The transaction is committed even if some participant is temporarily
	// unreachable; it will learn the outcome on recovery (Resolve).
	return OutcomeCommitted, firstErr
}

// ResendDecisions re-delivers every committed, not-yet-acknowledged decision
// to addr: the client-driven half of in-doubt resolution after a failover.
// The participant endpoint moved to the promoted standby, whose replicated
// vote log knows the prepared branches but never heard phase 2 from the dead
// primary's window — pushing the durable outcomes re-applies them (Commit is
// idempotent, so branches the old server already applied and replicated are
// harmless re-deliveries). Successful re-deliveries are acknowledged with a
// decision-end record exactly as in Commit.
func (c *Coordinator) ResendDecisions(addr string) error {
	c.mu.Lock()
	pending := make([]string, 0, len(c.decisions))
	for txid, o := range c.decisions {
		if o == OutcomeCommitted && !c.ended[txid] {
			pending = append(pending, txid)
		}
	}
	c.mu.Unlock()
	sort.Strings(pending)
	var firstErr error
	for _, txid := range pending {
		c.mu.Lock()
		c.stats.Commits++
		c.stats.Retries++
		c.mu.Unlock()
		if _, err := c.client.Call(addr, MethodCommit, []byte(txid)); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("rpc: 2pc resend at %s: %w", addr, err)
			}
			continue
		}
		if c.log != nil {
			c.log.Append(recDecisionEnd, "coordinator", []byte(txid)) //nolint:errcheck // cleanup only
		}
		c.mu.Lock()
		c.ended[txid] = true
		c.mu.Unlock()
	}
	return firstErr
}

func (c *Coordinator) abortAll(txid string, participants []string) {
	for _, p := range participants {
		c.mu.Lock()
		c.stats.Aborts++
		c.mu.Unlock()
		c.client.Call(p, MethodAbort, []byte(txid)) //nolint:errcheck // best effort; presumed abort
	}
}

// Participant adapts a Resource to the 2PC wire protocol with a persistent
// vote log. Register its Handler on the transport address the coordinator
// calls.
type Participant struct {
	res Resource
	log *wal.Log

	// Faults is the fault-point registry traversed at FaultPrepareVoteLogged
	// and FaultCommitApply (nil-safe). Set it before serving; tests only.
	Faults *fault.Registry

	// ckMu orders vote/done log records against checkpoint snapshots: state
	// changes hold it for read across (log append + map update), Checkpoint
	// holds it for write, so a snapshot can never miss a vote whose record
	// lies below the new low-water mark. Lock order: ckMu before mu.
	ckMu     sync.RWMutex
	mu       sync.Mutex
	prepared map[string]bool
	done     map[string]bool
}

// Participant log record types.
const (
	recVotePrepared wal.RecordType = 0x31
	recTxDone       wal.RecordType = 0x32
	// recPartSnap carries the full prepared/done state at its LSN; replay
	// rebuilds from the latest one plus the records after it. Checkpoint
	// writes it immediately before moving the log's low-water mark.
	recPartSnap wal.RecordType = 0x33
)

// NewParticipant wraps res. log (optional) makes prepare votes durable so
// in-doubt transactions survive a participant crash.
func NewParticipant(res Resource, log *wal.Log) (*Participant, error) {
	p := &Participant{res: res, log: log, prepared: make(map[string]bool), done: make(map[string]bool)}
	if log != nil {
		err := log.Replay(func(r wal.Record) error {
			switch r.Type {
			case recPartSnap:
				prepared, done, err := decodePartSnap(r.Payload)
				if err != nil {
					return err
				}
				p.prepared, p.done = prepared, done
			case recVotePrepared:
				p.prepared[string(r.Payload)] = true
			case recTxDone:
				delete(p.prepared, string(r.Payload))
				p.done[string(r.Payload)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// encodePartSnap serializes the prepared and done transaction-ID sets.
func encodePartSnap(prepared, done map[string]bool) []byte {
	w := binenc.NewWriter(64 + 16*(len(prepared)+len(done)))
	w.Strs(sortedKeys(prepared))
	w.Strs(sortedKeys(done))
	return w.Bytes()
}

func decodePartSnap(data []byte) (prepared, done map[string]bool, err error) {
	r := binenc.NewReader(data)
	prepared, done = make(map[string]bool), make(map[string]bool)
	for _, tx := range r.Strs() {
		prepared[tx] = true
	}
	for _, tx := range r.Strs() {
		done[tx] = true
	}
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("rpc: participant snapshot: %w", err)
	}
	return prepared, done, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Checkpoint compacts the participant log: it writes one snapshot record
// holding the current prepared/done sets and moves the log's low-water mark
// to just below it, so recovery replays the snapshot plus the records after
// it instead of the whole vote history. In-doubt transactions (prepared,
// unresolved) are preserved verbatim.
func (p *Participant) Checkpoint() error {
	if p.log == nil {
		return nil
	}
	p.ckMu.Lock()
	defer p.ckMu.Unlock()
	p.mu.Lock()
	payload := encodePartSnap(p.prepared, p.done)
	p.mu.Unlock()
	// No state change can append between here and the snapshot record (we
	// hold ckMu), so the record's LSN is exactly the current tail and the
	// mark below it covers every earlier vote.
	mark := wal.LSN(p.log.Size())
	if _, err := p.log.Append(recPartSnap, "participant", payload); err != nil {
		return fmt.Errorf("rpc: participant checkpoint: %w", err)
	}
	return p.log.Checkpoint(mark)
}

// InDoubt lists transactions prepared but not yet resolved, sorted order not
// guaranteed.
func (p *Participant) InDoubt() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.prepared))
	for tx := range p.prepared {
		out = append(out, tx)
	}
	return out
}

// Handler returns the transport handler speaking the 2PC protocol.
func (p *Participant) Handler() Handler {
	return func(method string, payload []byte) ([]byte, error) {
		txid := string(payload)
		switch method {
		case MethodPrepare:
			return p.prepare(txid)
		case MethodCommit:
			return p.commit(txid)
		case MethodAbort:
			return p.abort(txid)
		default:
			return nil, fmt.Errorf("rpc: participant: unknown method %q", method)
		}
	}
}

func (p *Participant) prepare(txid string) ([]byte, error) {
	p.mu.Lock()
	if p.done[txid] {
		p.mu.Unlock()
		return nil, errors.New("rpc: participant: transaction already resolved")
	}
	if p.prepared[txid] {
		p.mu.Unlock()
		return []byte("commit"), nil // idempotent re-prepare
	}
	p.mu.Unlock()

	vote, err := p.res.Prepare(txid)
	if err != nil || vote != VoteCommit {
		return []byte("abort"), nil
	}
	p.ckMu.RLock()
	defer p.ckMu.RUnlock()
	if p.log != nil {
		if _, err := p.log.Append(recVotePrepared, txid, []byte(txid)); err != nil {
			// Vote not durable: refuse to promise.
			p.res.Abort(txid) //nolint:errcheck // best effort
			return []byte("abort"), nil
		}
	}
	p.mu.Lock()
	p.prepared[txid] = true
	p.mu.Unlock()
	if err := p.Faults.At(FaultPrepareVoteLogged); err != nil {
		// Simulated participant death after the durable vote: the reply
		// never reaches the coordinator, which aborts by presumption; the
		// vote stays in doubt here until Resolve.
		return nil, err
	}
	return []byte("commit"), nil
}

func (p *Participant) commit(txid string) ([]byte, error) {
	if err := p.Faults.At(FaultCommitApply); err != nil {
		// Simulated participant death on arrival of the commit decision:
		// the resource never applies it; Resolve re-delivers after restart.
		return nil, err
	}
	if err := p.res.Commit(txid); err != nil {
		return nil, err
	}
	p.finish(txid)
	return []byte("ok"), nil
}

func (p *Participant) abort(txid string) ([]byte, error) {
	if err := p.res.Abort(txid); err != nil {
		return nil, err
	}
	p.finish(txid)
	return []byte("ok"), nil
}

func (p *Participant) finish(txid string) {
	p.ckMu.RLock()
	defer p.ckMu.RUnlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.log != nil && p.prepared[txid] {
		// The done record is pure cleanup: if it never becomes durable the
		// transaction is merely re-resolved against the coordinator at the
		// next recovery (commit/abort are idempotent). Reserve it and let
		// the next forced write or Close carry it, instead of stalling the
		// commit acknowledgement on an extra fsync.
		p.log.AppendAsync(recTxDone, txid, []byte(txid)) //nolint:errcheck // cleanup only
	}
	delete(p.prepared, txid)
	p.done[txid] = true
}

// Resolve settles every in-doubt transaction after a participant restart by
// asking the coordinator for the durable outcome (presumed abort: unknown
// means aborted).
func (p *Participant) Resolve(outcome func(txid string) Outcome) error {
	var firstErr error
	for _, txid := range p.InDoubt() {
		var err error
		if outcome(txid) == OutcomeCommitted {
			_, err = p.commit(txid)
		} else {
			_, err = p.abort(txid)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SplitList splits a comma-separated participant list (CLI convenience).
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
