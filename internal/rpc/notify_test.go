package rpc

import (
	"sync"
	"testing"
)

func TestNotifierDeliversInOrder(t *testing.T) {
	trans := NewInProc(FaultPlan{})
	defer trans.Close()
	var mu sync.Mutex
	var got []string
	if err := trans.Serve("sink", func(method string, payload []byte) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, method+":"+string(payload))
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	client := NewClient(trans, "n1")
	client.Backoff = 0
	n := NewNotifier(client, 8)
	defer n.Close()
	// The handler sees enveloped payloads; strip via Dedup-free manual
	// check is unnecessary — we only assert delivery count and order of
	// methods here.
	n.Notify("sink", "m/a", []byte("1"))
	n.Notify("sink", "m/b", []byte("2"))
	n.Notify("sink", "m/c", []byte("3"))
	n.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("delivered %d notifications, want 3", len(got))
	}
	for i, want := range []string{"m/a", "m/b", "m/c"} {
		if got[i][:3] != want {
			t.Fatalf("notification %d = %q, want method %q", i, got[i], want)
		}
	}
	sent, dropped, failed := n.Stats()
	if sent != 3 || dropped != 0 || failed != 0 {
		t.Fatalf("stats sent=%d dropped=%d failed=%d", sent, dropped, failed)
	}
}

func TestNotifierNeverBlocksOnSlowTarget(t *testing.T) {
	trans := NewInProc(FaultPlan{})
	defer trans.Close()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	if err := trans.Serve("slow", func(string, []byte) ([]byte, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	client := NewClient(trans, "n2")
	client.Backoff = 0
	client.Retries = 1
	n := NewNotifier(client, 2)
	defer n.Close()
	// Wedge the worker on the first delivery, then overrun the queue: the
	// excess must drop immediately — Notify never blocks the producer
	// (the server's commit path).
	n.Notify("slow", "m", nil)
	<-started
	for i := 0; i < 10; i++ {
		n.Notify("slow", "m", nil)
	}
	close(release)
	n.Flush()
	sent, dropped, _ := n.Stats()
	if dropped < 8 {
		t.Fatalf("queue cap 2 wedged: dropped=%d, want >= 8", dropped)
	}
	if sent+dropped != 11 {
		t.Fatalf("sent=%d + dropped=%d != 11", sent, dropped)
	}
	// And an unreachable target fails fast without blocking anyone.
	n.Notify("void", "m", nil)
	n.Flush()
	if _, _, failed := n.Stats(); failed != 1 {
		t.Fatalf("failed=%d after pushing to an unreachable address", failed)
	}
}

func TestNotifierCloseIsIdempotentAndDropsLate(t *testing.T) {
	trans := NewInProc(FaultPlan{})
	defer trans.Close()
	client := NewClient(trans, "n3")
	client.Backoff = 0
	n := NewNotifier(client, 2)
	n.Close()
	n.Close() // double close must not panic
	n.Notify("anywhere", "m", nil)
	if _, dropped, _ := n.Stats(); dropped != 1 {
		t.Fatalf("post-close notify not dropped: %d", dropped)
	}
	n.Flush() // must return immediately on a closed notifier
}
