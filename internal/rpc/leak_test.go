package rpc

import (
	"os"
	"testing"

	"concord/internal/leakcheck"
)

// TestMain guards the package against leaked background goroutines: server
// accept loops, connection readers, and the notifier drain must terminate
// when the transports the tests build are closed.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
