package rpc

import (
	"container/list"
	"sync"
	"time"
)

// Default bounds for the deduplication memo. Retries arrive within a short
// window of the first delivery (the Client gives up after Retries×MaxBackoff),
// so the memo only needs to cover the recent past; these defaults hold tens
// of thousands of responses without letting a long-lived server grow without
// bound.
const (
	// DefaultDedupEntries caps the number of memoized responses.
	DefaultDedupEntries = 1 << 16
	// DefaultDedupBytes caps the memoized response bytes (keys included).
	DefaultDedupBytes = 64 << 20
)

// dedupEntry is one request ID's slot: in flight until done is closed, then
// a memoized result linked into the LRU.
type dedupEntry struct {
	key  string
	done chan struct{} // closed once resp/err are valid
	resp []byte
	err  error
	cost int           // bytes charged against MaxBytes
	elem *list.Element // nil while in flight (in-flight entries are not evictable)
}

// Deduper gives a handler at-most-once execution per request ID, the server
// half of the exactly-once contract (Client retries with a stable ID, the
// Deduper memoizes the first outcome).
//
// Two properties matter beyond plain memoization:
//
//   - Single flight: a duplicate that arrives while the first delivery is
//     still executing does not run the handler a second time — it waits for
//     the in-flight execution and returns its memoized result. (The naive
//     check-then-execute version had a window where concurrent duplicates
//     both executed, which is precisely the double-apply the layer exists to
//     prevent.)
//   - Bounded memory: completed results live in an LRU capped by MaxEntries
//     and MaxBytes; the oldest results are evicted first. In-flight entries
//     are never evicted. An evicted ID that is redelivered re-executes, so
//     the bounds must comfortably exceed the client retry horizon — the
//     defaults do by orders of magnitude.
type Deduper struct {
	// MaxEntries caps memoized results (default DefaultDedupEntries).
	MaxEntries int
	// MaxBytes caps memoized bytes, responses plus keys (default
	// DefaultDedupBytes).
	MaxBytes int

	h DeadlineHandler
	// fence, when set, is consulted with the envelope's epoch stamp before
	// the first execution of each request; a non-nil result (ErrStaleEpoch)
	// is memoized exactly like a handler error, so retries of a fenced
	// request stay fenced. See DedupDeadlineFenced.
	fence   func(clientEpoch uint64) error
	mu      sync.Mutex
	entries map[string]*dedupEntry
	lru     *list.List // front = most recently used; completed entries only
	bytes   int
	evicted uint64
}

// NewDeduper wraps h with a bounded exactly-once memo. Non-positive limits
// select the defaults.
func NewDeduper(h Handler, maxEntries, maxBytes int) *Deduper {
	return NewDeadlineDeduper(func(_ time.Time, method string, payload []byte) ([]byte, error) {
		return h(method, payload)
	}, maxEntries, maxBytes)
}

// NewDeadlineDeduper is NewDeduper for a deadline-aware inner handler: the
// per-call deadline passes through the memo untouched (a duplicate delivery
// returns the memoized result regardless of its own deadline).
func NewDeadlineDeduper(h DeadlineHandler, maxEntries, maxBytes int) *Deduper {
	if maxEntries <= 0 {
		maxEntries = DefaultDedupEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultDedupBytes
	}
	return &Deduper{
		MaxEntries: maxEntries,
		MaxBytes:   maxBytes,
		h:          h,
		entries:    make(map[string]*dedupEntry),
		lru:        list.New(),
	}
}

// DedupStats is a snapshot of the memo for observability and tests.
type DedupStats struct {
	// Entries counts memoized and in-flight request IDs.
	Entries int
	// Bytes is the memoized cost currently charged against MaxBytes.
	Bytes int
	// Evicted counts results dropped by the LRU bounds since creation.
	Evicted uint64
}

// Stats returns a snapshot of the memo.
func (d *Deduper) Stats() DedupStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DedupStats{Entries: len(d.entries), Bytes: d.bytes, Evicted: d.evicted}
}

// Handle is the wrapped Handler: it decodes the request envelope and executes
// the inner handler at most once per (method, request ID).
func (d *Deduper) Handle(method string, env []byte) ([]byte, error) {
	return d.HandleDeadline(time.Time{}, method, env)
}

// HandleDeadline is Handle with the transport-propagated per-call deadline,
// forwarded to the inner handler on first execution.
func (d *Deduper) HandleDeadline(deadline time.Time, method string, env []byte) ([]byte, error) {
	reqID, epoch, payload, err := decodeEnvelopeEpoch(env)
	if err != nil {
		return nil, err
	}
	key := method + "\x00" + reqID
	d.mu.Lock()
	if e, ok := d.entries[key]; ok {
		if e.elem != nil {
			d.lru.MoveToFront(e.elem)
			d.mu.Unlock()
			return e.resp, e.err
		}
		// In flight: wait for the first delivery's outcome instead of
		// executing again.
		d.mu.Unlock()
		<-e.done
		return e.resp, e.err
	}
	e := &dedupEntry{key: key, done: make(chan struct{})}
	d.entries[key] = e
	d.mu.Unlock()

	if d.fence != nil {
		if ferr := d.fence(epoch); ferr != nil {
			e.err = ferr
		} else {
			e.resp, e.err = d.h(deadline, method, payload)
		}
	} else {
		e.resp, e.err = d.h(deadline, method, payload)
	}

	d.mu.Lock()
	e.cost = len(e.key) + len(e.resp)
	d.bytes += e.cost
	e.elem = d.lru.PushFront(e)
	for d.lru.Len() > d.MaxEntries || d.bytes > d.MaxBytes {
		back := d.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*dedupEntry)
		d.lru.Remove(back)
		delete(d.entries, old.key)
		d.bytes -= old.cost
		d.evicted++
	}
	d.mu.Unlock()
	close(e.done)
	return e.resp, e.err
}
