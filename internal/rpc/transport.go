// Package rpc provides the communication substrate of CONCORD's
// workstation/server architecture (Sect. 5.1): message transports, a
// reliable ("transactional RPC") client achieving exactly-once effects over
// unreliable delivery, and a presumed-abort two-phase commit engine with
// persistent coordinator and participant logs (Sects. 5.2, 5.5, 6 and
// [GR93, SBCM93]).
//
// Two transports are provided: an in-process transport with deterministic
// fault injection (drop, duplicate, delay) for simulation and tests, and a
// TCP transport (stdlib net + gob) for real LAN deployment via cmd/concordd.
package rpc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Handler serves a single method invocation.
//
// Ownership: the payload slice is only valid for the duration of the call —
// reliable clients frame requests in pooled envelope buffers that are
// recycled once the call returns. A handler that retains payload bytes
// beyond its return (e.g. staging them for a later commit) must copy them.
// Response slices, by contrast, are retained by the deduplication layer and
// must not be recycled by the handler.
type Handler func(method string, payload []byte) ([]byte, error)

// DeadlineHandler is a Handler that also receives the per-call deadline
// propagated from the caller (zero when the caller set no budget). Handlers
// use it to bound server-side work — e.g. lock waits — to time the caller is
// still willing to spend, instead of discovering the abandonment only when
// the response hits a dead wire. The payload/response ownership rules of
// Handler apply unchanged.
type DeadlineHandler func(deadline time.Time, method string, payload []byte) ([]byte, error)

// Transport delivers single request/response attempts. Delivery may fail;
// the Client layers retries and deduplication on top.
type Transport interface {
	// Call performs one unreliable request attempt against addr.
	Call(addr, method string, payload []byte) ([]byte, error)
	// Serve registers the handler for addr. It replaces any previous
	// handler for that address.
	Serve(addr string, h Handler) error
	// Close releases transport resources.
	Close() error
}

// BudgetCaller is implemented by transports that can attach a per-call time
// budget: the call fails once the budget elapses, and the budget travels to
// the peer so the serving DeadlineHandler sees the matching deadline. A
// budget of 0 means "no per-call bound" (the transport's defaults apply).
type BudgetCaller interface {
	// CallBudget performs one request attempt bounded by budget.
	CallBudget(addr, method string, payload []byte, budget time.Duration) ([]byte, error)
}

// DeadlineServer is implemented by transports that deliver per-call
// deadlines to their handlers.
type DeadlineServer interface {
	// ServeDeadline registers a deadline-aware handler for addr.
	ServeDeadline(addr string, h DeadlineHandler) error
}

// ServeWithDeadline registers h at addr, threading per-call deadlines when
// the transport supports them and degrading to zero deadlines otherwise.
func ServeWithDeadline(t Transport, addr string, h DeadlineHandler) error {
	if ds, ok := t.(DeadlineServer); ok {
		return ds.ServeDeadline(addr, h)
	}
	return t.Serve(addr, func(method string, payload []byte) ([]byte, error) {
		return h(time.Time{}, method, payload)
	})
}

// Transport-level errors.
var (
	ErrUnreachable = errors.New("rpc: address unreachable")
	ErrDropped     = errors.New("rpc: message dropped")
	// ErrRemote wraps an application-level error returned by a handler.
	ErrRemote = errors.New("rpc: remote error")
)

// FaultPlan configures deterministic fault injection on the in-process
// transport. Probabilities are in [0, 1].
type FaultPlan struct {
	// DropRequest is the probability a request vanishes before delivery.
	DropRequest float64
	// DropResponse is the probability the response vanishes after the
	// handler has executed (the dangerous case for exactly-once).
	DropResponse float64
	// Duplicate is the probability a delivered request is executed twice.
	Duplicate float64
	// Seed makes the fault sequence reproducible.
	Seed int64
}

// InProc is an in-process transport with fault injection. The zero value is
// not usable; create one with NewInProc.
type InProc struct {
	mu       sync.RWMutex
	handlers map[string]DeadlineHandler
	plan     FaultPlan
	rng      *rand.Rand
	rngMu    sync.Mutex
	closed   bool
	// Partitioned addresses are unreachable until healed.
	partitioned map[string]bool
}

// NewInProc returns an in-process transport with the given fault plan.
func NewInProc(plan FaultPlan) *InProc {
	return &InProc{
		handlers:    make(map[string]DeadlineHandler),
		plan:        plan,
		rng:         rand.New(rand.NewSource(plan.Seed)),
		partitioned: make(map[string]bool),
	}
}

// Serve registers a handler for addr (called with zero deadlines; use
// ServeDeadline for deadline propagation).
func (t *InProc) Serve(addr string, h Handler) error {
	return t.ServeDeadline(addr, func(_ time.Time, method string, payload []byte) ([]byte, error) {
		return h(method, payload)
	})
}

// ServeDeadline registers a deadline-aware handler for addr: calls made with
// CallBudget deliver their deadline to h.
func (t *InProc) ServeDeadline(addr string, h DeadlineHandler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("rpc: transport closed")
	}
	t.handlers[addr] = h
	return nil
}

// Partition makes addr unreachable (simulated crash or network partition).
func (t *InProc) Partition(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned[addr] = true
}

// Heal reconnects addr.
func (t *InProc) Heal(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.partitioned, addr)
}

func (t *InProc) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Float64() < p
}

// Call delivers one request attempt, subject to the fault plan.
func (t *InProc) Call(addr, method string, payload []byte) ([]byte, error) {
	return t.CallBudget(addr, method, payload, 0)
}

// CallBudget delivers one request attempt with a per-call time budget: the
// handler receives the matching deadline (zero when budget is 0). The
// in-process exchange itself is synchronous, so the budget bounds handler
// work via the propagated deadline rather than by killing the call.
func (t *InProc) CallBudget(addr, method string, payload []byte, budget time.Duration) ([]byte, error) {
	t.mu.RLock()
	h, ok := t.handlers[addr]
	part := t.partitioned[addr]
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return nil, errors.New("rpc: transport closed")
	}
	if !ok || part {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	if t.chance(t.plan.DropRequest) {
		return nil, fmt.Errorf("%w: request to %s/%s", ErrDropped, addr, method)
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	if t.chance(t.plan.Duplicate) {
		// Execute twice; the first response is discarded. Exactly-once
		// handlers must tolerate this.
		h(deadline, method, payload) //nolint:errcheck // duplicated delivery
	}
	resp, err := h(deadline, method, payload)
	if err != nil {
		// Both sentinels stay unwrappable: callers branch on ErrRemote to
		// stop retrying, and on the application error underneath (e.g.
		// txn.ErrCheckinFailed, lock.ErrDeadlock) to decide how to react.
		return nil, fmt.Errorf("%w: %w", ErrRemote, err)
	}
	if t.chance(t.plan.DropResponse) {
		return nil, fmt.Errorf("%w: response from %s/%s", ErrDropped, addr, method)
	}
	return resp, nil
}

// Close shuts the transport down.
func (t *InProc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	t.handlers = make(map[string]DeadlineHandler)
	return nil
}

// Client is a reliable caller: it retries failed attempts with the same
// request ID so that a deduplicating server executes the request exactly
// once even when responses are lost ("transactional RPC", Sect. 5.3).
type Client struct {
	t Transport
	// Retries bounds the attempts per call (default 8).
	Retries int
	// Backoff is the pause before the first retry (default 1ms; 0 disables
	// sleeping entirely, which in-proc tests rely on). Subsequent retries
	// double the pause up to MaxBackoff, with ±25% jitter so a fleet of
	// workstations retrying against a restarting server does not stampede
	// in lockstep.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 100ms).
	MaxBackoff time.Duration
	// Epoch, when set, stamps every request envelope with the caller's
	// current replication epoch (DESIGN.md §5.4): epoch-fenced servers
	// compare it against their own term and refuse interactions that would
	// cross a failover boundary with ErrStaleEpoch. Nil (or a returned 0)
	// leaves requests unstamped, which fenced servers always serve.
	Epoch func() uint64

	mu       sync.Mutex
	seq      uint64
	id       string
	attempts uint64
}

// Attempts reports the total transport attempts made (including retries);
// the difference to the logical call count is the loss-recovery overhead.
func (c *Client) Attempts() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// NewClient wraps a transport in a reliable caller. id must be unique among
// clients sharing a server (it prefixes request IDs).
func NewClient(t Transport, id string) *Client {
	return &Client{t: t, Retries: 8, Backoff: time.Millisecond, id: id}
}

// nextRequestID returns a client-unique request identifier.
func (c *Client) nextRequestID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return fmt.Sprintf("%s#%d", c.id, c.seq)
}

// envelopePool recycles request framing buffers: every reliable call frames
// its payload into an envelope, and under multi-workstation load that was
// one allocation (plus a payload-sized copy into fresh memory) per RPC.
// Safe because transports hand the envelope to the peer synchronously and
// handlers must not retain payloads (see Handler).
var envelopePool = sync.Pool{New: func() any { return new(envelope) }}

// envelope is a pooled framing buffer.
type envelope struct{ buf []byte }

// maxPooledEnvelopeBytes caps what a released envelope may park in the pool
// (bulk payload transfers should not pin worst-case memory).
const maxPooledEnvelopeBytes = 256 << 10

// Call invokes method at addr reliably. Application-level errors (ErrRemote)
// are returned immediately; transport losses are retried.
func (c *Client) Call(addr, method string, payload []byte) ([]byte, error) {
	return c.CallBudget(addr, method, payload, 0)
}

// ErrBudgetExceeded reports a reliable call abandoned because its time
// budget ran out across attempts (the per-attempt failure is wrapped).
var ErrBudgetExceeded = errors.New("rpc: call budget exceeded")

// CallBudget is Call with an end-to-end time budget covering every attempt
// and backoff: no retry starts past the deadline, and on budget-aware
// transports each attempt carries the remaining budget to the server, whose
// handlers bound their own work by it (deadline propagation). budget 0 is
// plain Call.
func (c *Client) CallBudget(addr, method string, payload []byte, budget time.Duration) ([]byte, error) {
	var epoch uint64
	if c.Epoch != nil {
		epoch = c.Epoch()
	}
	e := envelopePool.Get().(*envelope)
	e.buf = appendEnvelopeEpoch(e.buf[:0], c.nextRequestID(), epoch, payload)
	defer func() {
		if cap(e.buf) > maxPooledEnvelopeBytes {
			e.buf = nil
		}
		envelopePool.Put(e)
	}()
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	bc, budgeted := c.t.(BudgetCaller)
	var lastErr error
	retries := c.Retries
	if retries <= 0 {
		retries = 8
	}
	for i := 0; i < retries; i++ {
		remaining := time.Duration(0)
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				if lastErr == nil {
					lastErr = fmt.Errorf("%w: %s/%s within %v", ErrBudgetExceeded, addr, method, budget)
				}
				return nil, fmt.Errorf("%w: %s/%s: %w", ErrBudgetExceeded, addr, method, lastErr)
			}
		}
		c.mu.Lock()
		c.attempts++
		c.mu.Unlock()
		var resp []byte
		var err error
		if budgeted {
			resp, err = bc.CallBudget(addr, method, e.buf, remaining)
		} else {
			resp, err = c.t.Call(addr, method, e.buf)
		}
		if err == nil {
			return resp, nil
		}
		if errors.Is(err, ErrRemote) {
			return nil, err
		}
		lastErr = err
		if d := c.backoffFor(i); d > 0 {
			time.Sleep(d)
		}
	}
	return nil, fmt.Errorf("rpc: call %s/%s failed after %d attempts: %w", addr, method, retries, lastErr)
}

// backoffFor computes the pause after failed attempt number attempt (zero
// based): Backoff doubled per attempt, capped at MaxBackoff, with ±25%
// jitter. Backoff <= 0 disables sleeping.
func (c *Client) backoffFor(attempt int) time.Duration {
	if c.Backoff <= 0 {
		return 0
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = 100 * time.Millisecond
	}
	d := c.Backoff
	for i := 0; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	// Jitter in [0.75d, 1.25d): desynchronizes retry storms without
	// changing the expected pause.
	j := d / 4
	if j > 0 {
		d = d - j + time.Duration(rand.Int63n(int64(2*j)))
	}
	return d
}

// envEpochFlag marks an envelope whose request ID is followed by an 8-byte
// big-endian replication epoch. It rides the high bit of the u16 ID-length
// field, so epoch-free envelopes are byte-identical to the v1 framing —
// unstamped clients and fenced servers interoperate without negotiation.
// Request IDs are "<client>#<seq>", far below the remaining 15 bits.
const envEpochFlag = 0x8000

// appendEnvelope frames a request ID and payload onto dst (allocation-free
// when dst has capacity).
func appendEnvelope(dst []byte, reqID string, payload []byte) []byte {
	return appendEnvelopeEpoch(dst, reqID, 0, payload)
}

// appendEnvelopeEpoch is appendEnvelope with a replication-epoch stamp;
// epoch 0 means unstamped and produces the v1 framing.
func appendEnvelopeEpoch(dst []byte, reqID string, epoch uint64, payload []byte) []byte {
	field := len(reqID)
	if epoch > 0 {
		field |= envEpochFlag
	}
	dst = append(dst, byte(field>>8), byte(field))
	dst = append(dst, reqID...)
	if epoch > 0 {
		dst = append(dst,
			byte(epoch>>56), byte(epoch>>48), byte(epoch>>40), byte(epoch>>32),
			byte(epoch>>24), byte(epoch>>16), byte(epoch>>8), byte(epoch))
	}
	return append(dst, payload...)
}

// decodeEnvelope splits a framed request, discarding any epoch stamp.
func decodeEnvelope(env []byte) (reqID string, payload []byte, err error) {
	reqID, _, payload, err = decodeEnvelopeEpoch(env)
	return reqID, payload, err
}

// decodeEnvelopeEpoch splits a framed request; epoch is 0 when the envelope
// carries no stamp.
func decodeEnvelopeEpoch(env []byte) (reqID string, epoch uint64, payload []byte, err error) {
	if len(env) < 2 {
		return "", 0, nil, errors.New("rpc: short envelope")
	}
	field := int(env[0])<<8 | int(env[1])
	n := field &^ envEpochFlag
	rest := env[2:]
	if len(rest) < n {
		return "", 0, nil, errors.New("rpc: truncated envelope")
	}
	reqID, rest = string(rest[:n]), rest[n:]
	if field&envEpochFlag != 0 {
		if len(rest) < 8 {
			return "", 0, nil, errors.New("rpc: truncated envelope epoch")
		}
		epoch = uint64(rest[0])<<56 | uint64(rest[1])<<48 | uint64(rest[2])<<40 | uint64(rest[3])<<32 |
			uint64(rest[4])<<24 | uint64(rest[5])<<16 | uint64(rest[6])<<8 | uint64(rest[7])
		rest = rest[8:]
	}
	return reqID, epoch, rest, nil
}

// Dedup wraps a handler with at-most-once execution per request ID: repeated
// deliveries return the memoized first response. Combined with Client
// retries this yields exactly-once effects. See Deduper for the mechanism
// and the memo bounds; Dedup uses the default limits.
func Dedup(h Handler) Handler {
	return NewDeduper(h, DefaultDedupEntries, DefaultDedupBytes).Handle
}

// DedupDeadline is Dedup for a deadline-aware handler chain: the per-call
// deadline flows through the memo to h on first execution.
func DedupDeadline(h DeadlineHandler) DeadlineHandler {
	return NewDeadlineDeduper(h, DefaultDedupEntries, DefaultDedupBytes).HandleDeadline
}

// DedupDeadlineFenced is DedupDeadline with epoch fencing: before each
// request's first execution, fence is consulted with the epoch stamped on
// the envelope (0 when unstamped) and a non-nil result refuses the call
// without running h. The refusal is memoized like any handler error, so
// client retries of a fenced request never slip through. Use EpochFence for
// the standard stale-node rule.
func DedupDeadlineFenced(h DeadlineHandler, fence func(clientEpoch uint64) error) DeadlineHandler {
	d := NewDeadlineDeduper(h, DefaultDedupEntries, DefaultDedupBytes)
	d.fence = fence
	return d.HandleDeadline
}
