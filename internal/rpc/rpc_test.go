package rpc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestInProcBasicCall(t *testing.T) {
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	if err := tr.Serve("server", func(m string, p []byte) ([]byte, error) {
		return []byte("echo:" + m + ":" + string(p)), nil
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := tr.Call("server", "ping", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping:hi" {
		t.Fatalf("resp = %q", resp)
	}
	if _, err := tr.Call("ghost", "ping", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unknown addr = %v", err)
	}
}

func TestInProcPartition(t *testing.T) {
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	tr.Serve("s", func(string, []byte) ([]byte, error) { return []byte("ok"), nil })
	tr.Partition("s")
	if _, err := tr.Call("s", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned = %v", err)
	}
	tr.Heal("s")
	if _, err := tr.Call("s", "m", nil); err != nil {
		t.Fatalf("healed = %v", err)
	}
}

func TestRemoteErrorNotRetried(t *testing.T) {
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	var calls atomic.Int32
	tr.Serve("s", Dedup(func(string, []byte) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("boom")
	}))
	c := NewClient(tr, "c1")
	c.Backoff = 0
	_, err := c.Call("s", "m", nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler called %d times; application errors must not retry", calls.Load())
	}
}

func TestExactlyOnceUnderLoss(t *testing.T) {
	// 30% request loss + 30% response loss + duplicates: the counter must
	// still increment exactly once per logical call.
	tr := NewInProc(FaultPlan{DropRequest: 0.3, DropResponse: 0.3, Duplicate: 0.2, Seed: 42})
	defer tr.Close()
	var counter atomic.Int64
	tr.Serve("s", Dedup(func(m string, p []byte) ([]byte, error) {
		counter.Add(1)
		return []byte("done"), nil
	}))
	c := NewClient(tr, "c1")
	c.Backoff = 0
	c.Retries = 200
	const calls = 50
	for i := 0; i < calls; i++ {
		if _, err := c.Call("s", "incr", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if counter.Load() != calls {
		t.Fatalf("effects = %d, want %d (exactly-once violated)", counter.Load(), calls)
	}
}

func TestDedupMemoizesErrors(t *testing.T) {
	var calls atomic.Int32
	h := Dedup(func(string, []byte) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("always fails")
	})
	env := appendEnvelope(nil, "req-1", nil)
	h("m", env) //nolint:errcheck
	h("m", env) //nolint:errcheck
	if calls.Load() != 1 {
		t.Fatalf("handler executed %d times for same request ID", calls.Load())
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, tc := range []struct{ id, payload string }{
		{"a#1", "payload"},
		{"", ""},
		{strings.Repeat("x", 300), "p"},
	} {
		env := appendEnvelope(nil, tc.id, []byte(tc.payload))
		id, p, err := decodeEnvelope(env)
		if err != nil {
			t.Fatalf("decode(%q): %v", tc.id, err)
		}
		if id != tc.id || string(p) != tc.payload {
			t.Fatalf("round trip (%q, %q) -> (%q, %q)", tc.id, tc.payload, id, p)
		}
	}
	if _, _, err := decodeEnvelope([]byte{9}); err == nil {
		t.Fatal("short envelope accepted")
	}
	if _, _, err := decodeEnvelope([]byte{0, 10, 'a'}); err == nil {
		t.Fatal("truncated envelope accepted")
	}
}

func TestTCPTransport(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", func(m string, p []byte) ([]byte, error) {
		if m == "fail" {
			return nil, errors.New("nope")
		}
		return append([]byte("got:"), p...), nil
	}); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	cli := NewTCP()
	defer cli.Close()
	resp, err := cli.Call(addr, "do", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "got:x" {
		t.Fatalf("resp = %q", resp)
	}
	if _, err := cli.Call(addr, "fail", nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("remote error = %v", err)
	}
	if _, err := cli.Call("127.0.0.1:1", "do", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unreachable = %v", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", func(m string, p []byte) ([]byte, error) {
		return p, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli := NewTCP()
	defer cli.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			msg := fmt.Sprintf("m%d", n)
			resp, err := cli.Call(addr, "echo", []byte(msg))
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			if string(resp) != msg {
				t.Errorf("resp = %q, want %q", resp, msg)
			}
		}(i)
	}
	wg.Wait()
}

func TestSplitList(t *testing.T) {
	got := SplitList(" a , b ,, c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SplitList = %v", got)
	}
	if SplitList("") != nil {
		t.Fatal("empty list should be nil")
	}
}

// TestAppendEnvelopeZeroAllocs pins the pooled request framing: with a
// destination of adequate capacity (what the envelope pool provides at
// steady state), framing allocates nothing.
func TestAppendEnvelopeZeroAllocs(t *testing.T) {
	payload := make([]byte, 256)
	dst := make([]byte, 0, 2+16+len(payload))
	if n := testing.AllocsPerRun(200, func() {
		env := appendEnvelope(dst[:0], "client#000042", payload)
		if len(env) != 2+13+len(payload) {
			t.Fatalf("framed %d bytes", len(env))
		}
	}); n != 0 {
		t.Fatalf("appendEnvelope allocates %v per op, want 0", n)
	}
}

// TestPooledEnvelopeIsolation drives two reliable calls back to back whose
// handler stashes what it sees: because handlers must copy retained
// payloads (Handler contract) and the client recycles envelopes, the second
// call must not clobber data the first call's handler copied.
func TestPooledEnvelopeIsolation(t *testing.T) {
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	var copies [][]byte
	h := func(method string, payload []byte) ([]byte, error) {
		copies = append(copies, append([]byte(nil), payload...)) // contract: copy
		return []byte("ok"), nil
	}
	if err := tr.Serve("srv", Dedup(h)); err != nil {
		t.Fatal(err)
	}
	c := NewClient(tr, "iso")
	c.Backoff = 0
	if _, err := c.Call("srv", "m", []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("srv", "m", []byte("payload-TWO")); err != nil {
		t.Fatal(err)
	}
	if string(copies[0]) != "payload-one" || string(copies[1]) != "payload-TWO" {
		t.Fatalf("handler copies corrupted across pooled envelopes: %q %q", copies[0], copies[1])
	}
}
