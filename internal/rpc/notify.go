package rpc

import (
	"sync"

	"concord/internal/fault"
)

// Notifier is the server→workstation callback channel (DESIGN.md §4): a
// bounded queue drained by one background worker that pushes fire-and-forget
// notifications through a reliable Client. Producers (the server-TM's
// checkin-commit and status-promotion paths) never block on a slow, dead or
// partitioned workstation — when the queue is full the notification is
// counted and dropped.
//
// Best-effort delivery is sufficient by design: callbacks steer workstation
// caches toward freshness, they never carry correctness. Every cache use is
// revalidated by content hash at the server, so a lost callback costs at
// most one redundant transfer, never a stale read.
type Notifier struct {
	client *Client

	mu     sync.Mutex
	faults *fault.Registry
	idle   *sync.Cond // signaled when processed or closed advances
	ch     chan notification
	closed bool
	done   chan struct{}

	enqueued, processed   uint64
	sent, dropped, failed uint64
	// lost counts per-address notifications that never arrived (dropped
	// before enqueue or failed in delivery). The server-TM's checkout
	// negotiation reads it (DroppedAt) to detect workstations whose
	// invalidation stream has holes and force a cache-epoch bump.
	lost map[string]uint64
}

type notification struct {
	addr, method string
	payload      []byte
}

// DefaultNotifyQueue is the queue capacity used when NewNotifier gets 0.
const DefaultNotifyQueue = 256

// NewNotifier starts a notifier pushing through client. queue bounds the
// number of undelivered notifications held (0 = DefaultNotifyQueue).
func NewNotifier(client *Client, queue int) *Notifier {
	if queue <= 0 {
		queue = DefaultNotifyQueue
	}
	n := &Notifier{
		client: client,
		ch:     make(chan notification, queue),
		done:   make(chan struct{}),
		lost:   make(map[string]uint64),
	}
	n.idle = sync.NewCond(&n.mu)
	go n.run()
	return n
}

func (n *Notifier) run() {
	defer close(n.done)
	for msg := range n.ch {
		_, err := n.client.Call(msg.addr, msg.method, msg.payload)
		n.mu.Lock()
		if err != nil {
			n.failed++
			n.lost[msg.addr]++
		} else {
			n.sent++
		}
		n.processed++
		n.idle.Broadcast()
		n.mu.Unlock()
	}
	n.mu.Lock()
	n.idle.Broadcast()
	n.mu.Unlock()
}

// SetFaults installs the fault-point registry traversed at FaultNotifyDrop
// on every Notify; an armed point drops the notification (counted in Stats
// like a queue-full drop). Tests only.
func (n *Notifier) SetFaults(reg *fault.Registry) {
	n.mu.Lock()
	n.faults = reg
	n.mu.Unlock()
}

// Notify enqueues one notification. It never blocks: a full queue, a closed
// notifier or an armed FaultNotifyDrop point drops the message (counted in
// Stats).
func (n *Notifier) Notify(addr, method string, payload []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.faults.At(FaultNotifyDrop) != nil {
		n.dropped++
		n.lost[addr]++
		return
	}
	select {
	case n.ch <- notification{addr: addr, method: method, payload: payload}:
		n.enqueued++
	default:
		n.dropped++
		n.lost[addr]++
	}
}

// DroppedAt reports how many notifications destined for addr were lost
// (dropped before enqueue or failed in delivery) since creation. The counter
// is monotonic — callers detect new holes in addr's invalidation stream by
// comparing against the last value they acted on.
func (n *Notifier) DroppedAt(addr string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lost[addr]
}

// Flush blocks until every notification enqueued before the call has been
// attempted (tests and orderly handover; delivery stays best-effort).
func (n *Notifier) Flush() {
	n.mu.Lock()
	defer n.mu.Unlock()
	target := n.enqueued
	for n.processed < target && !n.closed {
		n.idle.Wait()
	}
}

// Close stops the worker after draining already-enqueued notifications.
// Notify after Close drops.
func (n *Notifier) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.ch)
	n.mu.Unlock()
	<-n.done
}

// Stats reports delivered, dropped (queue full or closed) and failed
// (transport gave up) notification counts.
func (n *Notifier) Stats() (sent, dropped, failed uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.dropped, n.failed
}
