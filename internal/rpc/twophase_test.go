package rpc

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"concord/internal/wal"
)

// memResource is a test resource with observable state.
type memResource struct {
	mu        sync.Mutex
	prepared  map[string]bool
	committed map[string]bool
	aborted   map[string]bool
	// failPrepare forces abort votes.
	failPrepare bool
}

func newMemResource() *memResource {
	return &memResource{
		prepared:  make(map[string]bool),
		committed: make(map[string]bool),
		aborted:   make(map[string]bool),
	}
}

func (r *memResource) Prepare(txid string) (Vote, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failPrepare {
		return VoteAbort, nil
	}
	r.prepared[txid] = true
	return VoteCommit, nil
}

func (r *memResource) Commit(txid string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.committed[txid] = true
	return nil
}

func (r *memResource) Abort(txid string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aborted[txid] = true
	return nil
}

func (r *memResource) state(txid string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.committed[txid]:
		return "committed"
	case r.aborted[txid]:
		return "aborted"
	case r.prepared[txid]:
		return "prepared"
	default:
		return "none"
	}
}

func setup2PC(t *testing.T, plan FaultPlan, n int) (*Coordinator, []*memResource, []string, *InProc) {
	t.Helper()
	tr := NewInProc(plan)
	t.Cleanup(func() { tr.Close() })
	resources := make([]*memResource, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		resources[i] = newMemResource()
		p, err := NewParticipant(resources[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = "part" + string(rune('0'+i))
		if err := tr.Serve(addrs[i], Dedup(p.Handler())); err != nil {
			t.Fatal(err)
		}
	}
	client := NewClient(tr, "coord")
	client.Backoff = 0
	client.Retries = 100
	coord, err := NewCoordinator(client, nil)
	if err != nil {
		t.Fatal(err)
	}
	return coord, resources, addrs, tr
}

func TestTwoPhaseCommitHappyPath(t *testing.T) {
	coord, resources, addrs, _ := setup2PC(t, FaultPlan{}, 3)
	out, err := coord.Commit("tx1", addrs)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeCommitted {
		t.Fatalf("outcome = %s", out)
	}
	for i, r := range resources {
		if r.state("tx1") != "committed" {
			t.Errorf("participant %d state = %s", i, r.state("tx1"))
		}
	}
}

func TestTwoPhaseAbortOnRefusal(t *testing.T) {
	coord, resources, addrs, _ := setup2PC(t, FaultPlan{}, 3)
	resources[1].failPrepare = true
	out, err := coord.Commit("tx1", addrs)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeAborted {
		t.Fatalf("outcome = %s", out)
	}
	for i, r := range resources {
		if r.state("tx1") == "committed" {
			t.Errorf("participant %d committed an aborted transaction", i)
		}
	}
	if coord.Outcome("tx1") != OutcomeAborted {
		t.Error("coordinator remembers a commit for aborted tx")
	}
}

func TestTwoPhaseAbortOnUnreachable(t *testing.T) {
	coord, resources, addrs, tr := setup2PC(t, FaultPlan{}, 3)
	// Keep retries small so the unreachable participant fails fast.
	coord.client.Retries = 2
	tr.Partition(addrs[2])
	out, err := coord.Commit("tx1", addrs)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeAborted {
		t.Fatalf("outcome = %s", out)
	}
	if resources[0].state("tx1") == "committed" {
		t.Error("participant 0 committed despite abort")
	}
}

func TestTwoPhaseCommitUnderMessageLoss(t *testing.T) {
	coord, resources, addrs, _ := setup2PC(t, FaultPlan{DropRequest: 0.2, DropResponse: 0.2, Seed: 7}, 3)
	for i := 0; i < 10; i++ {
		txid := "tx" + string(rune('a'+i))
		out, err := coord.Commit(txid, addrs)
		if err != nil {
			t.Fatalf("%s: %v", txid, err)
		}
		if out != OutcomeCommitted {
			t.Fatalf("%s outcome = %s", txid, out)
		}
		for j, r := range resources {
			if r.state(txid) != "committed" {
				t.Fatalf("%s participant %d = %s", txid, j, r.state(txid))
			}
		}
	}
	if coord.Stats().Prepares < 30 {
		t.Error("stats not counting prepares")
	}
}

func TestParticipantRecoveryInDoubt(t *testing.T) {
	dir := t.TempDir()
	plog, err := wal.Open(filepath.Join(dir, "p.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	res := newMemResource()
	p, err := NewParticipant(res, plog)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare tx1 but never resolve it (coordinator "crashes").
	if resp, err := p.Handler()(MethodPrepare, []byte("tx1")); err != nil || string(resp) != "commit" {
		t.Fatalf("prepare = %q, %v", resp, err)
	}
	plog.Close()

	// Participant restarts: the vote must be recovered as in-doubt.
	plog2, err := wal.Open(filepath.Join(dir, "p.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer plog2.Close()
	res2 := newMemResource()
	p2, err := NewParticipant(res2, plog2)
	if err != nil {
		t.Fatal(err)
	}
	doubt := p2.InDoubt()
	if len(doubt) != 1 || doubt[0] != "tx1" {
		t.Fatalf("InDoubt = %v", doubt)
	}
	// Resolve against a coordinator that decided commit.
	if err := p2.Resolve(func(string) Outcome { return OutcomeCommitted }); err != nil {
		t.Fatal(err)
	}
	if res2.state("tx1") != "committed" {
		t.Fatalf("after resolve = %s", res2.state("tx1"))
	}
	if len(p2.InDoubt()) != 0 {
		t.Fatal("still in doubt after resolve")
	}
}

func TestParticipantResolvePresumedAbort(t *testing.T) {
	res := newMemResource()
	p, err := NewParticipant(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Handler()(MethodPrepare, []byte("tx1")); err != nil {
		t.Fatal(err)
	}
	// Coordinator has no record: presumed abort.
	if err := p.Resolve(func(string) Outcome { return OutcomeAborted }); err != nil {
		t.Fatal(err)
	}
	if res.state("tx1") != "aborted" {
		t.Fatalf("state = %s", res.state("tx1"))
	}
}

func TestCoordinatorDecisionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	clog, err := wal.Open(filepath.Join(dir, "c.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	res := newMemResource()
	p, err := NewParticipant(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Serve("p0", Dedup(p.Handler()))
	client := NewClient(tr, "coord")
	client.Backoff = 0
	coord, err := NewCoordinator(client, clog)
	if err != nil {
		t.Fatal(err)
	}
	// Partition the participant between phases by making commit fail: we
	// simulate by partitioning after prepare. Simplest: partition now and
	// use a 2-participant trick is complex — instead verify the decision
	// record durability directly.
	out, err := coord.Commit("tx-durable", []string{"p0"})
	if err != nil || out != OutcomeCommitted {
		t.Fatalf("commit: %s, %v", out, err)
	}
	clog.Close()

	clog2, err := wal.Open(filepath.Join(dir, "c.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer clog2.Close()
	coord2, err := NewCoordinator(client, clog2)
	if err != nil {
		t.Fatal(err)
	}
	// All acks arrived, so the decision record was garbage-collected and
	// presumed abort applies to the *finished* transaction — that is fine
	// because no participant is in doubt. Now test the unacked path.
	_ = coord2

	// Unacked commit: partition participant during phase 2.
	res2 := newMemResource()
	p2, err := NewParticipant(res2, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Serve("p1", Dedup(p2.Handler()))
	fail := NewClient(tr, "coord2")
	fail.Backoff = 0
	fail.Retries = 1
	coord3, err := NewCoordinator(fail, clog2)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare succeeds, then we partition before phase 2 completes. We
	// can't hook between phases, so emulate: prepare via handler directly,
	// then force the decision log, then ask outcome after "restart".
	if _, err := p2.Handler()(MethodPrepare, []byte("tx-indoubt")); err != nil {
		t.Fatal(err)
	}
	tr.Partition("p1")
	out, _ = coord3.Commit("tx-indoubt", []string{"p1"})
	if out != OutcomeAborted {
		// With the participant partitioned at prepare, coordinator aborts;
		// the participant stays prepared (in doubt) and must resolve to
		// abort by presumption.
		t.Fatalf("outcome = %s", out)
	}
	tr.Heal("p1")
	if err := p2.Resolve(coord3.Outcome); err != nil {
		t.Fatal(err)
	}
	if res2.state("tx-indoubt") != "aborted" {
		t.Fatalf("in-doubt resolution = %s", res2.state("tx-indoubt"))
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeCommitted.String() != "committed" || OutcomeAborted.String() != "aborted" {
		t.Fatal("outcome names wrong")
	}
}

func TestParticipantUnknownMethod(t *testing.T) {
	p, err := NewParticipant(newMemResource(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Handler()("bogus", []byte("tx")); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestPrepareAfterResolveRejected(t *testing.T) {
	p, err := NewParticipant(newMemResource(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handler()
	if _, err := h(MethodPrepare, []byte("tx")); err != nil {
		t.Fatal(err)
	}
	if _, err := h(MethodCommit, []byte("tx")); err != nil {
		t.Fatal(err)
	}
	if _, err := h(MethodPrepare, []byte("tx")); err == nil {
		t.Fatal("re-prepare of resolved transaction accepted")
	}
}

func TestVoteAbortErrorFromResource(t *testing.T) {
	res := newMemResource()
	p, err := NewParticipant(&erroringResource{memResource: res}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.Handler()(MethodPrepare, []byte("tx"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "abort" {
		t.Fatalf("resp = %q, want abort vote on resource error", resp)
	}
}

type erroringResource struct{ *memResource }

func (e *erroringResource) Prepare(string) (Vote, error) {
	return VoteAbort, errors.New("resource broken")
}

// TestParticipantCheckpointPreservesInDoubt runs a batch of resolved
// transactions plus one in-doubt, compacts the participant log, crashes, and
// verifies the recovered participant still knows the in-doubt vote (and the
// resolved set — a finished transaction must not re-prepare) while the log
// on disk shrank to the snapshot record.
func TestParticipantCheckpointPreservesInDoubt(t *testing.T) {
	dir := t.TempDir()
	plog, err := wal.Open(filepath.Join(dir, "p.wal"), wal.Options{SyncOnAppend: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	res := newMemResource()
	p, err := NewParticipant(res, plog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		txid := fmt.Sprintf("tx-%02d", i)
		if resp, err := p.Handler()(MethodPrepare, []byte(txid)); err != nil || string(resp) != "commit" {
			t.Fatalf("prepare %s: %q, %v", txid, resp, err)
		}
		if _, err := p.Handler()(MethodCommit, []byte(txid)); err != nil {
			t.Fatal(err)
		}
	}
	if resp, err := p.Handler()(MethodPrepare, []byte("tx-open")); err != nil || string(resp) != "commit" {
		t.Fatalf("prepare tx-open: %q, %v", resp, err)
	}
	before := plog.DiskBytes()
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := plog.DiskBytes(); after >= before {
		t.Fatalf("participant log %d -> %d bytes: checkpoint compacted nothing", before, after)
	}

	// Crash: abandon the log without Close and recover from disk.
	plog2, err := wal.Open(filepath.Join(dir, "p.wal"), wal.Options{SyncOnAppend: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer plog2.Close()
	res2 := newMemResource()
	p2, err := NewParticipant(res2, plog2)
	if err != nil {
		t.Fatal(err)
	}
	if doubt := p2.InDoubt(); len(doubt) != 1 || doubt[0] != "tx-open" {
		t.Fatalf("InDoubt after checkpoint+crash = %v, want [tx-open]", doubt)
	}
	// A resolved transaction stays resolved across the compaction.
	if _, err := p2.Handler()(MethodPrepare, []byte("tx-00")); err == nil {
		t.Fatal("finished transaction re-prepared after checkpoint")
	}
	// The coordinator logged a commit for the open transaction: resolution
	// must commit it.
	if err := p2.Resolve(func(string) Outcome { return OutcomeCommitted }); err != nil {
		t.Fatal(err)
	}
	if res2.state("tx-open") != "committed" {
		t.Fatalf("in-doubt resolution after checkpoint = %s, want committed", res2.state("tx-open"))
	}
}
