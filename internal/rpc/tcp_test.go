package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startEcho serves h on a fresh loopback listener and returns its address.
func startEcho(t *testing.T, h Handler) (*TCP, string) {
	t.Helper()
	srv := NewTCP()
	if err := srv.Serve("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	return srv, addr
}

// TestTCPDedupExactlyOnceOverSockets redelivers the same framed request over
// real sockets: the Dedup-wrapped handler must execute once and memoize the
// response, which is what makes client retries exactly-once end to end.
func TestTCPDedupExactlyOnceOverSockets(t *testing.T) {
	var calls atomic.Int64
	_, addr := startEcho(t, Dedup(func(m string, p []byte) ([]byte, error) {
		calls.Add(1)
		return append([]byte("r:"), p...), nil
	}))
	cli := NewTCP()
	defer cli.Close()
	env := appendEnvelope(nil, "ws1#42", []byte("payload"))
	var first []byte
	for i := 0; i < 3; i++ {
		resp, err := cli.Call(addr, "stage", env)
		if err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		if i == 0 {
			first = resp
		} else if !bytes.Equal(resp, first) {
			t.Fatalf("delivery %d returned %q, first returned %q", i, resp, first)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("handler ran %d times for one request ID, want exactly once", n)
	}
	// A different request ID is a fresh call.
	if _, err := cli.Call(addr, "stage", appendEnvelope(nil, "ws1#43", []byte("p"))); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("handler ran %d times after a second request ID, want 2", n)
	}
}

// TestTCPErrorChainFlattens pins the documented error-chain semantics of the
// socket transport: a wrapped server-side cause cannot cross the wire as a
// matchable chain — the client gets ErrRemote with the full rendered text,
// and sentinel matching against the remote cause must fail.
func TestTCPErrorChainFlattens(t *testing.T) {
	sentinel := errors.New("checkin failed")
	_, addr := startEcho(t, func(m string, p []byte) ([]byte, error) {
		return nil, fmt.Errorf("server-tm: stage %q: %w", p, sentinel)
	})
	cli := NewTCP()
	defer cli.Close()
	_, err := cli.Call(addr, "stage", []byte("v7"))
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if errors.Is(err, sentinel) {
		t.Fatal("server-side sentinel survived the socket; the chain must flatten to text")
	}
	for _, part := range []string{"server-tm", `"v7"`, "checkin failed"} {
		if !strings.Contains(err.Error(), part) {
			t.Fatalf("flattened error %q lost the remote detail %q", err, part)
		}
	}
}

// TestTCPLargePayloadRoundTrip pushes a multi-megabyte payload through one
// call in each direction (full checkouts of big objects take this path).
func TestTCPLargePayloadRoundTrip(t *testing.T) {
	_, addr := startEcho(t, func(m string, p []byte) ([]byte, error) {
		out := make([]byte, len(p))
		copy(out, p)
		return out, nil
	})
	cli := NewTCP()
	defer cli.Close()
	big := make([]byte, 3<<20)
	rand.New(rand.NewSource(1)).Read(big)
	resp, err := cli.Call(addr, "echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload corrupted in transit")
	}
}

// TestTCPCallTimeout bounds a stalled exchange: a handler that never answers
// within CallTimeout must surface as a retriable transport loss (ErrDropped),
// not hang the caller.
func TestTCPCallTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, addr := startEcho(t, func(m string, p []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	cli := NewTCP()
	defer cli.Close()
	cli.CallTimeout = 150 * time.Millisecond
	start := time.Now()
	_, err := cli.Call(addr, "stall", nil)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("stalled call = %v, want ErrDropped", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", took)
	}
}

// TestTCPClientRetriesThenFails drives the reliable Client over sockets
// against a dead port: every attempt must be made and the final error must
// still expose the transport cause.
func TestTCPClientRetriesThenFails(t *testing.T) {
	cli := NewClient(NewTCP(), "ws1")
	cli.Retries = 3
	cli.Backoff = 0
	_, err := cli.Call("127.0.0.1:1", "do", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable after retries", err)
	}
	if cli.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", cli.Attempts())
	}
}

// TestTCPServeAfterClose pins the lifecycle: a closed transport refuses new
// listeners and drops existing ones.
func TestTCPServeAfterClose(t *testing.T) {
	srv := NewTCP()
	if err := srv.Serve("127.0.0.1:0", func(m string, p []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0", func(m string, p []byte) ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
	cli := NewTCP()
	defer cli.Close()
	if _, err := cli.Call(addr, "do", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to closed listener = %v, want ErrUnreachable", err)
	}
}
