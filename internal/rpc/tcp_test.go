package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startEcho serves h on a fresh loopback listener and returns its address.
func startEcho(t *testing.T, h Handler) (*TCP, string) {
	t.Helper()
	srv := NewTCP()
	if err := srv.Serve("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	return srv, addr
}

// TestTCPDedupExactlyOnceOverSockets redelivers the same framed request over
// real sockets: the Dedup-wrapped handler must execute once and memoize the
// response, which is what makes client retries exactly-once end to end.
func TestTCPDedupExactlyOnceOverSockets(t *testing.T) {
	var calls atomic.Int64
	_, addr := startEcho(t, Dedup(func(m string, p []byte) ([]byte, error) {
		calls.Add(1)
		return append([]byte("r:"), p...), nil
	}))
	cli := NewTCP()
	defer cli.Close()
	env := appendEnvelope(nil, "ws1#42", []byte("payload"))
	var first []byte
	for i := 0; i < 3; i++ {
		resp, err := cli.Call(addr, "stage", env)
		if err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		if i == 0 {
			first = resp
		} else if !bytes.Equal(resp, first) {
			t.Fatalf("delivery %d returned %q, first returned %q", i, resp, first)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("handler ran %d times for one request ID, want exactly once", n)
	}
	// A different request ID is a fresh call.
	if _, err := cli.Call(addr, "stage", appendEnvelope(nil, "ws1#43", []byte("p"))); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("handler ran %d times after a second request ID, want 2", n)
	}
}

// errTestWire is a sentinel registered for the wire-code tests; the code sits
// far above the application range so it can never collide with real codes.
var errTestWire = errors.New("rpc-test: wire sentinel")

func init() { RegisterWireError(1<<40, errTestWire) }

// TestTCPErrorCodePreservesSentinel pins the wire error-code contract: a
// server-side chain matching a registered sentinel reaches the client as an
// error that still matches that sentinel via errors.Is — identical to the
// in-process transport — while keeping the full rendered remote text, and an
// unregistered cause degrades to text-only (ErrRemote plus message).
func TestTCPErrorCodePreservesSentinel(t *testing.T) {
	unregistered := errors.New("private cause")
	_, addr := startEcho(t, func(m string, p []byte) ([]byte, error) {
		if m == "coded" {
			return nil, fmt.Errorf("server-tm: stage %q: %w", p, errTestWire)
		}
		return nil, fmt.Errorf("server-tm: stage %q: %w", p, unregistered)
	})
	cli := NewTCP()
	defer cli.Close()

	_, err := cli.Call(addr, "coded", []byte("v7"))
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if !errors.Is(err, errTestWire) {
		t.Fatalf("registered sentinel lost over the wire: %v", err)
	}
	for _, part := range []string{"server-tm", `"v7"`, "wire sentinel"} {
		if !strings.Contains(err.Error(), part) {
			t.Fatalf("remote error %q lost the detail %q", err, part)
		}
	}

	_, err = cli.Call(addr, "uncoded", []byte("v8"))
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if errors.Is(err, unregistered) {
		t.Fatal("unregistered sentinel cannot survive the socket")
	}
	if !strings.Contains(err.Error(), "private cause") {
		t.Fatalf("remote error %q lost the rendered cause", err)
	}
}

// TestTCPLargePayloadRoundTrip pushes a multi-megabyte payload through one
// call in each direction (full checkouts of big objects take this path).
func TestTCPLargePayloadRoundTrip(t *testing.T) {
	_, addr := startEcho(t, func(m string, p []byte) ([]byte, error) {
		out := make([]byte, len(p))
		copy(out, p)
		return out, nil
	})
	cli := NewTCP()
	defer cli.Close()
	big := make([]byte, 3<<20)
	rand.New(rand.NewSource(1)).Read(big)
	resp, err := cli.Call(addr, "echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload corrupted in transit")
	}
}

// TestTCPCallTimeout bounds a stalled exchange: a handler that never answers
// within CallTimeout must surface as a retriable transport loss (ErrDropped),
// not hang the caller.
func TestTCPCallTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, addr := startEcho(t, func(m string, p []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	cli := NewTCP()
	defer cli.Close()
	cli.CallTimeout = 150 * time.Millisecond
	start := time.Now()
	_, err := cli.Call(addr, "stall", nil)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("stalled call = %v, want ErrDropped", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", took)
	}
}

// TestTCPClientRetriesThenFails drives the reliable Client over sockets
// against a dead port: every attempt must be made and the final error must
// still expose the transport cause.
func TestTCPClientRetriesThenFails(t *testing.T) {
	cli := NewClient(NewTCP(), "ws1")
	cli.Retries = 3
	cli.Backoff = 0
	_, err := cli.Call("127.0.0.1:1", "do", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable after retries", err)
	}
	if cli.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", cli.Attempts())
	}
}

// TestTCPListenBoundAddr pins the addressing fix: Listen returns the bound
// address of the listener it started, and Addr deterministically reports the
// first listener regardless of how many endpoints the transport serves.
func TestTCPListenBoundAddr(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	h := func(tag string) Handler {
		return func(m string, p []byte) ([]byte, error) { return []byte(tag), nil }
	}
	first, err := srv.Listen("127.0.0.1:0", h("a"))
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for _, tag := range []string{"b", "c", "d"} {
		a, err := srv.Listen("127.0.0.1:0", h(tag))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for i := 0; i < 10; i++ {
		if got := srv.Addr(); got != first {
			t.Fatalf("Addr() = %q, want first listener %q every time", got, first)
		}
	}
	cli := NewTCP()
	defer cli.Close()
	for i, tag := range []string{"b", "c", "d"} {
		resp, err := cli.Call(addrs[i], "ping", nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != tag {
			t.Fatalf("listener %s answered %q: Listen returned the wrong bound address", addrs[i], resp)
		}
	}
}

// TestTCPPipelinedInterleave proves the multiplexing: with a single pooled
// connection, a fast call issued behind a slow one completes first — requests
// pipeline and responses correlate by ID instead of queuing head-of-line.
func TestTCPPipelinedInterleave(t *testing.T) {
	release := make(chan struct{})
	_, addr := startEcho(t, func(m string, p []byte) ([]byte, error) {
		if m == "slow" {
			<-release
		}
		return []byte(m), nil
	})
	cli := NewTCP()
	defer cli.Close()
	cli.PoolSize = 1
	slowDone := make(chan error, 1)
	go func() {
		_, err := cli.Call(addr, "slow", nil)
		slowDone <- err
	}()
	// The fast call must complete while the slow one is still parked.
	fastOK := make(chan error, 1)
	go func() {
		_, err := cli.Call(addr, "fast", nil)
		fastOK <- err
	}()
	select {
	case err := <-fastOK:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast call blocked behind slow call on the shared connection")
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestTCPConnectPerCall exercises the E18 ablation baseline: same frames,
// one freshly dialed connection per call, including a chunked payload.
func TestTCPConnectPerCall(t *testing.T) {
	_, addr := startEcho(t, func(m string, p []byte) ([]byte, error) {
		out := make([]byte, len(p))
		copy(out, p)
		return out, nil
	})
	cli := NewTCP()
	defer cli.Close()
	cli.ConnectPerCall = true
	big := make([]byte, 600<<10) // forces several chunks at the default grain
	rand.New(rand.NewSource(7)).Read(big)
	resp, err := cli.Call(addr, "echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("payload corrupted in connect-per-call mode")
	}
	if _, err := cli.Call(addr, "echo", []byte("small")); err != nil {
		t.Fatal(err)
	}
}

// TestTCPPooledConnSurvivesServerRestart kills the server under a client
// holding pooled connections and restarts it on the same port: the reliable
// Client must ride out the dead connections (ErrDropped/ErrUnreachable are
// retriable) and succeed against the new incarnation.
func TestTCPPooledConnSurvivesServerRestart(t *testing.T) {
	h := Dedup(func(m string, p []byte) ([]byte, error) { return append([]byte("ok:"), p...), nil })
	srv := NewTCP()
	addr, err := srv.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	trans := NewTCP()
	defer trans.Close()
	cli := NewClient(trans, "ws1")
	cli.Backoff = time.Millisecond
	if _, err := cli.Call(addr, "do", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := NewTCP()
	defer srv2.Close()
	if _, err := srv2.Listen(addr, h); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	resp, err := cli.Call(addr, "do", []byte("again"))
	if err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	if string(resp) != "ok:again" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestTCPServeAfterClose pins the lifecycle: a closed transport refuses new
// listeners and drops existing ones.
func TestTCPServeAfterClose(t *testing.T) {
	srv := NewTCP()
	if err := srv.Serve("127.0.0.1:0", func(m string, p []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0", func(m string, p []byte) ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
	cli := NewTCP()
	defer cli.Close()
	if _, err := cli.Call(addr, "do", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to closed listener = %v, want ErrUnreachable", err)
	}
}
