package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"concord/internal/binenc"
)

// TCP is the socket transport of the LAN workstation/server deployment
// (Sect. 5.1, cmd/concordd). It speaks a multiplexed binary wire protocol
// (DESIGN.md §5.2): each peer pair shares a small pool of persistent
// connections carrying length-prefixed binenc frames, every frame tagged
// with a connection-local request ID so responses correlate to pipelined
// requests in any order, and payloads larger than ChunkBytes travel as
// chunk sequences — a multi-MiB checkout never monopolizes the connection,
// small calls interleave between its chunks.
//
// Application errors cross the wire as a numeric code plus the rendered
// message (see RegisterWireError), so transport sentinels and registered
// application sentinels unwrap with errors.Is exactly as over the
// in-process transport.
//
// ConnectPerCall restores the seed behaviour — one freshly dialed
// connection per call, same frame format — as the ablation baseline of
// experiment E18.
type TCP struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a whole request/response exchange (default 10s).
	// A timed-out call kills its connection: correlation state for the
	// stalled exchange cannot be trusted further.
	CallTimeout time.Duration
	// ChunkBytes caps the payload bytes per frame (default
	// DefaultChunkBytes); larger payloads are split so the connection
	// stays fair under multiplexing.
	ChunkBytes int
	// PoolSize is the number of persistent connections kept per peer
	// (default DefaultPoolSize). Calls round-robin over the pool.
	PoolSize int
	// ConnectPerCall dials one connection per call instead of pooling —
	// the seed transport's behaviour, kept as the E18 ablation baseline.
	ConnectPerCall bool

	mu        sync.Mutex
	listeners []net.Listener // in Serve order; Addr reports the first
	srvConns  map[net.Conn]struct{}
	pools     map[string]*connPool
	closed    bool
}

// Wire defaults and frame layout bounds.
const (
	// DefaultChunkBytes is the default per-frame payload cap (large
	// transfers are chunked at this grain).
	DefaultChunkBytes = 256 << 10
	// DefaultPoolSize is the default persistent-connection count per peer.
	DefaultPoolSize = 2
	// maxFrameSlack bounds the non-chunk portion of a frame (ids, method,
	// error message); a received frame may be at most ChunkBytes+slack.
	maxFrameSlack = 64 << 10
	// maxWireErrMsg truncates outgoing error messages so a pathological
	// rendered error cannot produce an oversized frame.
	maxWireErrMsg = 32 << 10
)

// Frame kinds (first body byte).
const (
	frameRequest  byte = 1
	frameResponse byte = 2
)

// NewTCP returns a TCP transport with default timeouts.
func NewTCP() *TCP {
	return &TCP{
		DialTimeout: 2 * time.Second,
		CallTimeout: 10 * time.Second,
		srvConns:    make(map[net.Conn]struct{}),
		pools:       make(map[string]*connPool),
	}
}

func (t *TCP) chunkBytes() int {
	if t.ChunkBytes > 0 {
		return t.ChunkBytes
	}
	return DefaultChunkBytes
}

func (t *TCP) maxFrame() int { return t.chunkBytes() + maxFrameSlack }

func (t *TCP) poolSize() int {
	if t.PoolSize > 0 {
		return t.PoolSize
	}
	return DefaultPoolSize
}

// Serve starts listening on addr (host:port; :0 picks a free port) and
// dispatches connections to h. Use Listen when the caller needs the bound
// address of this specific listener.
func (t *TCP) Serve(addr string, h Handler) error {
	_, err := t.Listen(addr, h)
	return err
}

// ServeDeadline is Serve for a deadline-aware handler: the per-call budget
// carried by request frames reaches h as an absolute deadline.
func (t *TCP) ServeDeadline(addr string, h DeadlineHandler) error {
	_, err := t.ListenDeadline(addr, h)
	return err
}

// Listen starts a listener on addr and returns its bound address — the
// deterministic way to discover a port-zero binding when the transport
// serves several endpoints (multi-listener topologies of the scenario
// harness).
func (t *TCP) Listen(addr string, h Handler) (string, error) {
	return t.ListenDeadline(addr, func(_ time.Time, method string, payload []byte) ([]byte, error) {
		return h(method, payload)
	})
}

// ListenDeadline is Listen for a deadline-aware handler.
func (t *TCP) ListenDeadline(addr string, h DeadlineHandler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return "", errors.New("rpc: transport closed")
	}
	t.listeners = append(t.listeners, ln)
	t.mu.Unlock()
	go t.acceptLoop(ln, h)
	return ln.Addr().String(), nil
}

// Addr returns the bound address of the first listener started on this
// transport (deterministic under multiple listeners; prefer the address
// returned by Listen for any but the first). Empty when none is serving.
func (t *TCP) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.listeners) == 0 {
		return ""
	}
	return t.listeners[0].Addr().String()
}

func (t *TCP) acceptLoop(ln net.Listener, h DeadlineHandler) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.srvConns[conn] = struct{}{}
		t.mu.Unlock()
		go t.serveConn(conn, h)
	}
}

// partialReq accumulates the chunks of one in-flight inbound request.
type partialReq struct {
	method string
	// deadline is the caller's propagated deadline (zero = no budget),
	// decoded from the first chunk's budget field.
	deadline time.Time
	buf      []byte
}

// serveConn runs the server half of one persistent connection: a read loop
// reassembling chunked requests and one goroutine per complete request, so a
// slow handler never stalls requests pipelined behind it.
func (t *TCP) serveConn(conn net.Conn, h DeadlineHandler) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.srvConns, conn)
		t.mu.Unlock()
	}()
	fw := &frameWriter{conn: conn, bw: bufio.NewWriter(conn)}
	partials := make(map[uint64]*partialReq)
	br := bufio.NewReader(conn)
	var buf []byte
	for {
		var err error
		buf, err = binenc.ReadFrame(br, buf, t.maxFrame())
		if err != nil {
			return // peer gone or garbage; the connection is done
		}
		r := binenc.NewReader(buf)
		kind := r.Byte()
		id := r.U64()
		last := r.Bool()
		method := r.Str()
		budgetMs := r.U64()
		if r.Err() != nil || kind != frameRequest {
			return // protocol violation: no resync possible
		}
		chunk := buf[len(buf)-r.Remaining():]
		p := partials[id]
		if p == nil {
			p = &partialReq{method: method}
			if budgetMs > 0 {
				p.deadline = time.Now().Add(time.Duration(budgetMs) * time.Millisecond)
			}
			partials[id] = p
		}
		p.buf = append(p.buf, chunk...)
		if !last {
			continue
		}
		delete(partials, id)
		go t.serveRequest(fw, id, p, h)
	}
}

// serveRequest executes the handler and writes the (possibly chunked)
// response. Write access to the shared connection is serialized per frame by
// the frameWriter, so concurrent responses interleave at chunk granularity;
// every response write carries a deadline so a stuck peer can never pin
// handler goroutines forever.
func (t *TCP) serveRequest(fw *frameWriter, id uint64, p *partialReq, h DeadlineHandler) {
	resp, herr := h(p.deadline, p.method, p.buf)
	// Response writes are bounded by the call deadline when the client set
	// one (a late response is worthless to it anyway) and by CallTimeout
	// otherwise.
	wd := p.deadline
	if wd.IsZero() && t.CallTimeout > 0 {
		wd = time.Now().Add(t.CallTimeout)
	}
	if herr != nil {
		msg := herr.Error()
		if len(msg) > maxWireErrMsg {
			msg = msg[:maxWireErrMsg]
		}
		w := binenc.GetWriter(64 + len(msg))
		w.Byte(frameResponse)
		w.U64(id)
		w.Bool(true) // last
		w.Bool(true) // isErr
		w.U64(wireCodeOf(herr))
		w.Str(msg)
		fw.writeFrame(w.Bytes(), wd) //nolint:errcheck // peer may be gone
		w.Free()
		return
	}
	fw.writeChunked(frameResponse, id, "", 0, resp, t.chunkBytes(), wd) //nolint:errcheck // peer may be gone
}

// frameWriter serializes frame writes on a shared connection. Each frame
// write sets (or clears) the connection write deadline under the lock, so
// per-call deadlines on a multiplexed connection never leak between calls —
// the fix for the connection-wide SetDeadline of the seed transport.
type frameWriter struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
}

// writeFrame writes one frame under the lock, bounded by deadline (zero =
// unbounded).
func (fw *frameWriter) writeFrame(frame []byte, deadline time.Time) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.conn != nil {
		fw.conn.SetWriteDeadline(deadline) //nolint:errcheck // best effort
	}
	err := binenc.WriteFrame(fw.bw, frame)
	if err == nil {
		err = fw.bw.Flush()
	}
	return err
}

// writeChunked frames payload as one or more frames of at most chunk body
// bytes, taking the write lock per frame so other calls interleave between
// chunks. Request frames carry method and the remaining budget (ms, 0 = no
// bound) on the first chunk; response frames carry the ok-path error fields
// (isErr=false, code 0, empty message) on every chunk. deadline bounds each
// frame write.
func (fw *frameWriter) writeChunked(kind byte, id uint64, method string, budgetMs uint64, payload []byte, chunk int, deadline time.Time) error {
	w := binenc.GetWriter(64 + min(len(payload), chunk))
	defer w.Free()
	rest := payload
	first := true
	for {
		n := min(chunk, len(rest))
		last := n == len(rest)
		w.Reset()
		w.Byte(kind)
		w.U64(id)
		w.Bool(last)
		if kind == frameRequest {
			if first {
				w.Str(method)
				w.U64(budgetMs)
			} else {
				w.Str("")
				w.U64(0)
			}
		} else {
			w.Bool(false) // isErr
			w.U64(0)
			w.Str("")
		}
		w.Raw(rest[:n])
		if err := fw.writeFrame(w.Bytes(), deadline); err != nil {
			return err
		}
		rest = rest[n:]
		first = false
		if last {
			return nil
		}
	}
}

// connPool is the set of persistent connections to one peer.
type connPool struct {
	mu    sync.Mutex
	conns []*muxConn
	next  int
}

// pendingCall is one in-flight request awaiting its response frames.
type pendingCall struct {
	done    chan struct{}
	buf     []byte
	isErr   bool
	errCode uint64
	errMsg  string
	failure error // transport-level failure (connection death, timeout)
}

// muxConn is one persistent multiplexed client connection: a background read
// loop correlates response frames to pending requests by ID while callers
// pipeline requests through the shared writer.
type muxConn struct {
	conn net.Conn
	fw   *frameWriter

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingCall
	dead    bool
}

func newMuxConn(conn net.Conn, maxFrame int) *muxConn {
	c := &muxConn{
		conn:    conn,
		fw:      &frameWriter{conn: conn, bw: bufio.NewWriter(conn)},
		pending: make(map[uint64]*pendingCall),
	}
	go c.readLoop(maxFrame)
	return c
}

func (c *muxConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// fail kills the connection: every pending call completes with err and
// later roundTrips refuse it. Idempotent.
func (c *muxConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	pending := c.pending
	c.pending = make(map[uint64]*pendingCall)
	c.mu.Unlock()
	c.conn.Close()
	for _, p := range pending {
		p.failure = err
		close(p.done)
	}
}

func (c *muxConn) readLoop(maxFrame int) {
	br := bufio.NewReader(c.conn)
	var buf []byte
	for {
		var err error
		buf, err = binenc.ReadFrame(br, buf, maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("%w: recv: %v", ErrDropped, err))
			return
		}
		r := binenc.NewReader(buf)
		kind := r.Byte()
		id := r.U64()
		last := r.Bool()
		isErr := r.Bool()
		errCode := r.U64()
		errMsg := r.Str()
		if r.Err() != nil || kind != frameResponse {
			c.fail(fmt.Errorf("%w: recv: malformed response frame", ErrDropped))
			return
		}
		chunk := buf[len(buf)-r.Remaining():]
		c.mu.Lock()
		p := c.pending[id]
		if p == nil {
			c.mu.Unlock()
			continue // late response of a timed-out call; drop
		}
		p.buf = append(p.buf, chunk...)
		if !last {
			c.mu.Unlock()
			continue
		}
		delete(c.pending, id)
		c.mu.Unlock()
		if isErr {
			p.isErr, p.errCode, p.errMsg = true, errCode, errMsg
		}
		close(p.done)
	}
}

// roundTrip performs one pipelined request/response exchange. timeout is the
// whole-exchange bound — request writes (per frame, via the shared
// frameWriter, so one stuck call never wedges calls pipelined on the same
// connection) and the response wait both count against it. budgetMs > 0
// additionally travels to the server as the caller's deadline.
func (c *muxConn) roundTrip(method string, payload []byte, timeout time.Duration, budgetMs uint64, chunk int) ([]byte, error) {
	p := &pendingCall{done: make(chan struct{})}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: connection closed", ErrDropped)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = p
	c.mu.Unlock()

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := c.fw.writeChunked(frameRequest, id, method, budgetMs, payload, chunk, deadline); err != nil {
		c.fail(fmt.Errorf("%w: send: %v", ErrDropped, err))
		return nil, fmt.Errorf("%w: send: %v", ErrDropped, err)
	}
	var timer <-chan time.Time
	if !deadline.IsZero() {
		tm := time.NewTimer(time.Until(deadline))
		defer tm.Stop()
		timer = tm.C
	}
	select {
	case <-p.done:
	case <-timer:
		// The exchange is stuck; the connection's correlation state cannot
		// be trusted further (the stale response may still arrive).
		c.fail(fmt.Errorf("%w: call timed out", ErrDropped))
		return nil, fmt.Errorf("%w: %s timed out after %v", ErrDropped, method, timeout)
	}
	if p.failure != nil {
		return nil, p.failure
	}
	if p.isErr {
		return nil, newRemoteError(p.errCode, p.errMsg)
	}
	return p.buf, nil
}

// getConn returns a pooled connection to addr, dialing a new one while the
// pool is below PoolSize. Dead connections are pruned on the way.
func (t *TCP) getConn(addr string) (*muxConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("rpc: transport closed")
	}
	p := t.pools[addr]
	if p == nil {
		p = &connPool{}
		t.pools[addr] = p
	}
	t.mu.Unlock()

	p.mu.Lock()
	alive := p.conns[:0]
	for _, c := range p.conns {
		if !c.isDead() {
			alive = append(alive, c)
		}
	}
	p.conns = alive
	if len(p.conns) >= t.poolSize() {
		c := p.conns[p.next%len(p.conns)]
		p.next++
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	// Dial outside the pool lock so a slow or dead peer never blocks calls
	// that could proceed on an existing connection.
	d := net.Dialer{Timeout: t.DialTimeout}
	nc, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrUnreachable, addr, err)
	}
	c := newMuxConn(nc, t.maxFrame())
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		c.fail(errors.New("rpc: transport closed"))
		return nil, errors.New("rpc: transport closed")
	}
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
	return c, nil
}

// Call performs one request attempt against addr over a pooled multiplexed
// connection (or a fresh one in ConnectPerCall mode). Transport losses
// return ErrDropped/ErrUnreachable (the reliable Client retries those);
// application errors return a chain matching ErrRemote and any registered
// sentinel of the remote cause.
func (t *TCP) Call(addr, method string, payload []byte) ([]byte, error) {
	return t.CallBudget(addr, method, payload, 0)
}

// CallBudget is Call with a per-call time budget: it bounds this attempt
// (overriding CallTimeout) and travels in the request frames so the serving
// DeadlineHandler sees the matching deadline. budget 0 falls back to
// CallTimeout with no propagated deadline.
func (t *TCP) CallBudget(addr, method string, payload []byte, budget time.Duration) ([]byte, error) {
	timeout := t.CallTimeout
	var budgetMs uint64
	if budget > 0 {
		timeout = budget
		// Round up: a 300µs budget must not travel as 0 ("no bound").
		budgetMs = uint64((budget + time.Millisecond - 1) / time.Millisecond)
	}
	if t.ConnectPerCall {
		return t.callOneShot(addr, method, payload, timeout, budgetMs)
	}
	c, err := t.getConn(addr)
	if err != nil {
		return nil, err
	}
	return c.roundTrip(method, payload, timeout, budgetMs, t.chunkBytes())
}

// callOneShot is the ablation baseline: dial, exchange one request/response
// in the same frame format, close. The connection is private to the call, so
// a whole-connection deadline here IS the per-call timer.
func (t *TCP) callOneShot(addr, method string, payload []byte, timeout time.Duration, budgetMs uint64) ([]byte, error) {
	d := net.Dialer{Timeout: t.DialTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck // best effort
	}
	fw := &frameWriter{bw: bufio.NewWriter(conn)}
	if err := fw.writeChunked(frameRequest, 1, method, budgetMs, payload, t.chunkBytes(), time.Time{}); err != nil {
		return nil, fmt.Errorf("%w: send: %v", ErrDropped, err)
	}
	br := bufio.NewReader(conn)
	var resp, buf []byte
	for {
		buf, err = binenc.ReadFrame(br, buf, t.maxFrame())
		if err != nil {
			return nil, fmt.Errorf("%w: recv: %v", ErrDropped, err)
		}
		r := binenc.NewReader(buf)
		kind := r.Byte()
		_ = r.U64() // id (single exchange)
		last := r.Bool()
		isErr := r.Bool()
		errCode := r.U64()
		errMsg := r.Str()
		if r.Err() != nil || kind != frameResponse {
			return nil, fmt.Errorf("%w: recv: malformed response frame", ErrDropped)
		}
		resp = append(resp, buf[len(buf)-r.Remaining():]...)
		if !last {
			continue
		}
		if isErr {
			return nil, newRemoteError(errCode, errMsg)
		}
		return resp, nil
	}
}

// Close stops all listeners, drops every server-side connection and kills
// the client-side pools.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	listeners := t.listeners
	t.listeners = nil
	conns := make([]net.Conn, 0, len(t.srvConns))
	for c := range t.srvConns {
		conns = append(conns, c)
	}
	pools := t.pools
	t.pools = make(map[string]*connPool)
	t.mu.Unlock()
	for _, ln := range listeners {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, p := range pools {
		p.mu.Lock()
		cs := p.conns
		p.conns = nil
		p.mu.Unlock()
		for _, c := range cs {
			c.fail(errors.New("rpc: transport closed"))
		}
	}
	return nil
}
