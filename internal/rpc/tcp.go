package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// tcpRequest is the wire format of one TCP call.
type tcpRequest struct {
	Method  string
	Payload []byte
}

// tcpResponse is the wire format of one TCP reply.
type tcpResponse struct {
	Payload []byte
	Err     string
}

// TCP is a Transport over real sockets: each registered address is a
// listening endpoint; each Call opens one connection, exchanges one
// gob-encoded request/response pair, and closes. Suitable for the LAN
// workstation/server deployment of cmd/concordd.
type TCP struct {
	mu        sync.Mutex
	listeners map[string]net.Listener
	closed    bool
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a whole request/response exchange (default 10s).
	CallTimeout time.Duration
}

// NewTCP returns a TCP transport.
func NewTCP() *TCP {
	return &TCP{
		listeners:   make(map[string]net.Listener),
		DialTimeout: 2 * time.Second,
		CallTimeout: 10 * time.Second,
	}
}

// Serve starts listening on addr (host:port; :0 picks a free port — use
// Addr to discover it) and dispatches connections to h.
func (t *TCP) Serve(addr string, h Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return errors.New("rpc: transport closed")
	}
	t.listeners[ln.Addr().String()] = ln
	t.mu.Unlock()
	go t.acceptLoop(ln, h)
	return nil
}

// Addr returns the bound address of the most recently started listener that
// matches the given port-zero address pattern; with a single listener it
// returns that listener's address.
func (t *TCP) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	for a := range t.listeners {
		return a
	}
	return ""
}

func (t *TCP) acceptLoop(ln net.Listener, h Handler) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.serveConn(conn, h)
	}
}

func (t *TCP) serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	if t.CallTimeout > 0 {
		conn.SetDeadline(time.Now().Add(t.CallTimeout)) //nolint:errcheck
	}
	var req tcpRequest
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	resp := tcpResponse{}
	payload, err := h(req.Method, req.Payload)
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.Payload = payload
	}
	gob.NewEncoder(conn).Encode(&resp) //nolint:errcheck // peer may be gone
}

// Call performs one request attempt against addr.
func (t *TCP) Call(addr, method string, payload []byte) ([]byte, error) {
	d := net.Dialer{Timeout: t.DialTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	if t.CallTimeout > 0 {
		conn.SetDeadline(time.Now().Add(t.CallTimeout)) //nolint:errcheck
	}
	if err := gob.NewEncoder(conn).Encode(&tcpRequest{Method: method, Payload: payload}); err != nil {
		return nil, fmt.Errorf("%w: send: %w", ErrDropped, err)
	}
	var resp tcpResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("%w: recv: %w", ErrDropped, err)
	}
	if resp.Err != "" {
		// The error chain cannot cross a socket; the remote cause survives
		// as text only (in-process transports preserve the full chain).
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Err)
	}
	return resp.Payload, nil
}

// Close stops all listeners.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for _, ln := range t.listeners {
		ln.Close()
	}
	t.listeners = make(map[string]net.Listener)
	return nil
}
