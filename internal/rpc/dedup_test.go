package rpc

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDedupConcurrentDuplicatesSingleFlight delivers the same request ID from
// many goroutines at once while the handler is deliberately slow: the handler
// must run exactly once and every delivery must observe the same response.
// This is the race the seed Dedup lost — it released its lock before invoking
// the handler, so concurrent duplicates both found no memo and both executed.
// Run under -race.
func TestDedupConcurrentDuplicatesSingleFlight(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	h := Dedup(func(m string, p []byte) ([]byte, error) {
		calls.Add(1)
		<-gate // hold every concurrent duplicate in the in-flight window
		return append([]byte("r:"), p...), nil
	})
	const workers = 32
	env := appendEnvelope(nil, "ws1#7", []byte("payload"))
	var wg sync.WaitGroup
	responses := make([][]byte, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = h("stage", env)
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let every worker reach the deduper
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("handler ran %d times for %d concurrent duplicates, want exactly 1", n, workers)
	}
	for i := range responses {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("worker %d saw %q, worker 0 saw %q", i, responses[i], responses[0])
		}
	}
}

// TestDedupConcurrentDistinctIDs hammers the deduper with distinct IDs from
// many goroutines — the common load shape — to shake out lock ordering under
// -race and verify each ID executes once.
func TestDedupConcurrentDistinctIDs(t *testing.T) {
	var calls atomic.Int64
	h := Dedup(func(m string, p []byte) ([]byte, error) {
		calls.Add(1)
		return p, nil
	})
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := appendEnvelope(nil, fmt.Sprintf("ws%d#%d", i%8, i), []byte("x"))
			for j := 0; j < 3; j++ { // redeliveries of the same ID
				if _, err := h("m", env); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	if c := calls.Load(); c != n {
		t.Fatalf("handler ran %d times for %d distinct IDs, want %d", c, n, n)
	}
}

// TestDedupEntryBoundEvictsOldest fills the memo past MaxEntries and checks
// LRU order: the oldest IDs re-execute on redelivery, the newest stay
// memoized, and the stats reflect the bound.
func TestDedupEntryBoundEvictsOldest(t *testing.T) {
	var calls atomic.Int64
	d := NewDeduper(func(m string, p []byte) ([]byte, error) {
		calls.Add(1)
		return p, nil
	}, 4, 0)
	env := func(i int) []byte { return appendEnvelope(nil, fmt.Sprintf("ws1#%d", i), []byte("v")) }
	for i := 0; i < 6; i++ { // IDs 0..5; 0 and 1 fall off the back
		if _, err := d.Handle("m", env(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want the bound 4", st.Entries)
	}
	if st.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", st.Evicted)
	}
	if _, err := d.Handle("m", env(5)); err != nil { // newest: memoized
		t.Fatal(err)
	}
	if c := calls.Load(); c != 6 {
		t.Fatalf("redelivery of a memoized ID re-executed (calls = %d, want 6)", c)
	}
	if _, err := d.Handle("m", env(0)); err != nil { // evicted: re-executes
		t.Fatal(err)
	}
	if c := calls.Load(); c != 7 {
		t.Fatalf("redelivery of an evicted ID did not re-execute (calls = %d, want 7)", c)
	}
}

// TestDedupByteBoundEvicts bounds the memo by response bytes.
func TestDedupByteBoundEvicts(t *testing.T) {
	d := NewDeduper(func(m string, p []byte) ([]byte, error) {
		return make([]byte, 1000), nil
	}, 0, 2500)
	for i := 0; i < 5; i++ {
		env := appendEnvelope(nil, fmt.Sprintf("ws1#%d", i), nil)
		if _, err := d.Handle("m", env); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Bytes > 2500 {
		t.Fatalf("memo holds %d bytes, bound is 2500", st.Bytes)
	}
	if st.Evicted == 0 {
		t.Fatal("byte bound never evicted")
	}
	if st.Entries > 2 {
		t.Fatalf("entries = %d, want ≤2 under the byte bound", st.Entries)
	}
}

// TestDedupLRUTouchOnRedelivery verifies redelivery refreshes recency: an ID
// kept warm by retries survives eviction pressure that removes colder ones.
func TestDedupLRUTouchOnRedelivery(t *testing.T) {
	var calls atomic.Int64
	d := NewDeduper(func(m string, p []byte) ([]byte, error) {
		calls.Add(1)
		return p, nil
	}, 3, 0)
	env := func(i int) []byte { return appendEnvelope(nil, fmt.Sprintf("ws1#%d", i), []byte("v")) }
	for i := 0; i < 3; i++ {
		d.Handle("m", env(i)) //nolint:errcheck
	}
	d.Handle("m", env(0)) //nolint:errcheck // touch 0: now 1 is the coldest
	d.Handle("m", env(3)) //nolint:errcheck // evicts 1, not 0
	before := calls.Load()
	d.Handle("m", env(0)) //nolint:errcheck
	if calls.Load() != before {
		t.Fatal("touched ID was evicted; LRU must evict the coldest")
	}
	d.Handle("m", env(1)) //nolint:errcheck
	if calls.Load() != before+1 {
		t.Fatal("coldest ID survived; eviction order is not LRU")
	}
}
