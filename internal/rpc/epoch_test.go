package rpc

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/fault"
)

// TestEnvelopeEpochRoundTrip pins the v2 framing: stamped envelopes carry the
// epoch losslessly, epoch-0 envelopes are byte-identical to v1, and a v1
// decoder path (decodeEnvelope) still reads stamped envelopes' ID+payload.
func TestEnvelopeEpochRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		id, payload string
		epoch       uint64
	}{
		{"a#1", "payload", 0},
		{"a#1", "payload", 1},
		{"ws7#99", "", 7},
		{"", "p", 1<<64 - 1},
	} {
		env := appendEnvelopeEpoch(nil, tc.id, tc.epoch, []byte(tc.payload))
		id, ep, p, err := decodeEnvelopeEpoch(env)
		if err != nil {
			t.Fatalf("decode(%q, %d): %v", tc.id, tc.epoch, err)
		}
		if id != tc.id || ep != tc.epoch || string(p) != tc.payload {
			t.Fatalf("round trip (%q, %d, %q) -> (%q, %d, %q)", tc.id, tc.epoch, tc.payload, id, ep, p)
		}
		// The legacy decoder must still split ID and payload.
		id2, p2, err := decodeEnvelope(env)
		if err != nil || id2 != tc.id || string(p2) != tc.payload {
			t.Fatalf("legacy decode of stamped envelope: (%q, %q, %v)", id2, p2, err)
		}
		if tc.epoch == 0 {
			v1 := appendEnvelope(nil, tc.id, []byte(tc.payload))
			if string(env) != string(v1) {
				t.Fatal("epoch-0 envelope differs from v1 framing")
			}
		}
	}
	// A stamped envelope truncated inside the epoch bytes must be refused.
	env := appendEnvelopeEpoch(nil, "a#1", 5, nil)
	if _, _, _, err := decodeEnvelopeEpoch(env[:len(env)-3]); err == nil {
		t.Fatal("truncated epoch accepted")
	}
}

// TestClientStampsEpoch wires Client.Epoch and checks the server-side deduper
// surfaces the stamp to its fence.
func TestClientStampsEpoch(t *testing.T) {
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	var seen atomic.Uint64
	h := DedupDeadlineFenced(func(_ time.Time, method string, payload []byte) ([]byte, error) {
		return []byte("ok"), nil
	}, func(clientEpoch uint64) error {
		seen.Store(clientEpoch)
		return nil
	})
	if err := ServeWithDeadline(tr, "s", h); err != nil {
		t.Fatal(err)
	}
	c := NewClient(tr, "ws1")
	c.Epoch = func() uint64 { return 42 }
	if _, err := c.Call("s", "m", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 42 {
		t.Fatalf("fence saw epoch %d, want 42", seen.Load())
	}
}

// TestEpochFenceRejectsDeposed drives the full fencing rule: a client that
// has witnessed a newer epoch is refused with ErrStaleEpoch at a server stuck
// on the old term, the refusal is memoized across retries, and clients at or
// below the server's term (including unstamped ones) are served.
func TestEpochFenceRejectsDeposed(t *testing.T) {
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	var serverEpoch atomic.Uint64
	serverEpoch.Store(3)
	var execs atomic.Int64
	h := DedupDeadlineFenced(func(_ time.Time, method string, payload []byte) ([]byte, error) {
		execs.Add(1)
		return []byte("ok"), nil
	}, EpochFence(serverEpoch.Load))
	if err := ServeWithDeadline(tr, "s", h); err != nil {
		t.Fatal(err)
	}
	var clientEpoch atomic.Uint64
	c := NewClient(tr, "ws1")
	c.Epoch = clientEpoch.Load

	for _, e := range []uint64{0, 2, 3} {
		clientEpoch.Store(e)
		if _, err := c.Call("s", "m", nil); err != nil {
			t.Fatalf("epoch %d vs server 3: %v", e, err)
		}
	}
	if execs.Load() != 3 {
		t.Fatalf("handler ran %d times, want 3", execs.Load())
	}
	clientEpoch.Store(4) // the client rejoined a promoted standby
	_, err := c.Call("s", "m", nil)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed server served a fenced call: %v", err)
	}
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("fencing refusal should surface as a remote error: %v", err)
	}
	if execs.Load() != 3 {
		t.Fatalf("handler ran behind the fence (%d executions)", execs.Load())
	}
}

// TestNotifierDroppedAt checks the per-address loss counter sees both drop
// paths: queue-full/fault drops before enqueue and delivery failures.
func TestNotifierDroppedAt(t *testing.T) {
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	if err := tr.Serve("up", func(string, []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	cli := NewClient(tr, "srv")
	cli.Retries, cli.Backoff = 1, 0
	n := NewNotifier(cli, 4)
	defer n.Close()
	n.Notify("up", "cb/ping", nil)
	n.Notify("down", "cb/ping", nil) // no handler: delivery fails
	n.Flush()
	if got := n.DroppedAt("up"); got != 0 {
		t.Fatalf("DroppedAt(up) = %d, want 0", got)
	}
	if got := n.DroppedAt("down"); got != 1 {
		t.Fatalf("DroppedAt(down) = %d, want 1", got)
	}
	n.Close()
	n.Notify("down", "cb/ping", nil) // closed: dropped before enqueue
	if got := n.DroppedAt("down"); got != 2 {
		t.Fatalf("DroppedAt(down) after closed drop = %d, want 2", got)
	}
}

// TestResendDecisions simulates the failover handoff: a commit decision is
// durable but phase 2 dies against the old address; ResendDecisions pushes
// the outcome to the new address, acknowledges it, and a second resend is a
// no-op. Branches fully acknowledged by the original Commit are never resent.
func TestResendDecisions(t *testing.T) {
	tr := NewInProc(FaultPlan{})
	defer tr.Close()
	commits := make(map[string]map[string]int) // addr -> txid -> commits seen
	serve := func(addr string) {
		commits[addr] = make(map[string]int)
		m := commits[addr]
		if err := tr.Serve(addr, Dedup(func(method string, payload []byte) ([]byte, error) {
			switch method {
			case MethodPrepare:
				return []byte("commit"), nil
			case MethodCommit:
				m[string(payload)]++
				return []byte("ok"), nil
			}
			return []byte("ok"), nil
		})); err != nil {
			t.Fatal(err)
		}
	}
	serve("old")
	cli := NewClient(tr, "coord")
	cli.Retries, cli.Backoff = 1, 0
	co, err := NewCoordinator(cli, nil)
	if err != nil {
		t.Fatal(err)
	}

	if o, err := co.Commit("tx-acked", []string{"old"}); err != nil || o != OutcomeCommitted {
		t.Fatalf("commit tx-acked: %v %v", o, err)
	}
	// Decision logged, then the participant dies before phase 2 reaches it.
	co.Faults = fault.New()
	co.Faults.Arm(FaultDecisionLogged, fmt.Errorf("crash"))
	if o, _ := co.Commit("tx-indoubt", []string{"old"}); o != OutcomeCommitted {
		t.Fatalf("in-doubt commit outcome = %v", o)
	}
	co.Faults.Disarm(FaultDecisionLogged)

	serve("new") // the promoted standby's participant endpoint
	if err := co.ResendDecisions("new"); err != nil {
		t.Fatal(err)
	}
	if commits["new"]["tx-indoubt"] != 1 || commits["new"]["tx-acked"] != 0 {
		t.Fatalf("resend delivered %v", commits["new"])
	}
	if err := co.ResendDecisions("new"); err != nil {
		t.Fatal(err)
	}
	if commits["new"]["tx-indoubt"] != 1 {
		t.Fatal("acknowledged resend was re-delivered")
	}
	if co.Outcome("tx-indoubt") != OutcomeCommitted {
		t.Fatal("resend forgot the durable outcome")
	}
}
