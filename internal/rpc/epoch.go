package rpc

import "errors"

// Replication-epoch fencing (DESIGN.md §5.4). Failover bumps a durable,
// monotonic epoch; clients stamp it on every envelope (Client.Epoch) and an
// epoch-fenced server compares the stamp against its own term before the
// handler runs. A workstation that has rejoined the promoted standby carries
// the new epoch, so the deposed primary — still on the old term — refuses its
// requests instead of accepting writes the rest of the cluster will never
// see. The stale side of a partition fences itself out; no split-brain.

// ErrStaleEpoch reports an interaction refused by epoch fencing: the server's
// replication epoch is behind the caller's, meaning a failover the server has
// not witnessed already deposed it (or, on the replication stream, a deposed
// primary is shipping to a promoted standby). The condition is permanent for
// the deposed node — callers must not retry against the same address.
var ErrStaleEpoch = errors.New("rpc: stale replication epoch (node deposed by failover)")

// init registers the fencing sentinel under its stable wire code (range
// 100–119: rpc/repl; see internal/txn/errcodes.go for the full map).
func init() { RegisterWireError(100, ErrStaleEpoch) }

// EpochFence returns a fence callback for DedupDeadlineFenced that compares
// the client's stamped epoch against the server's current term: a stamp
// ahead of current() means the caller has witnessed a failover this server
// has not — the server is deposed and the call is refused with ErrStaleEpoch.
// Stamps at or below the server's term are served (an old stamp only means
// the client has not rejoined yet; its requests are still valid at the
// current primary), as are unstamped requests (epoch 0, pre-failover
// clients).
func EpochFence(current func() uint64) func(uint64) error {
	return func(clientEpoch uint64) error {
		if clientEpoch > current() {
			return ErrStaleEpoch
		}
		return nil
	}
}
