package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// startDeadlineEcho serves a deadline-aware handler on a fresh loopback
// listener and returns its address.
func startDeadlineEcho(t *testing.T, h DeadlineHandler) (*TCP, string) {
	t.Helper()
	srv := NewTCP()
	if _, err := srv.ListenDeadline("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

// TestTCPBudgetPropagatesDeadline pins the wire contract: a per-call budget
// travels in the request frame and surfaces as an absolute deadline at the
// server handler; a call without a budget surfaces a zero deadline.
func TestTCPBudgetPropagatesDeadline(t *testing.T) {
	type seen struct {
		method   string
		deadline time.Time
	}
	got := make(chan seen, 2)
	_, addr := startDeadlineEcho(t, func(deadline time.Time, m string, p []byte) ([]byte, error) {
		got <- seen{method: m, deadline: deadline}
		return p, nil
	})
	cli := NewTCP()
	defer cli.Close()

	before := time.Now()
	if _, err := cli.CallBudget(addr, "budgeted", nil, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	s := <-got
	if s.deadline.IsZero() {
		t.Fatal("budgeted call arrived with a zero deadline")
	}
	if s.deadline.Before(before.Add(time.Second)) || s.deadline.After(before.Add(10*time.Second)) {
		t.Fatalf("propagated deadline %v not ~2s after %v", s.deadline, before)
	}
	if _, err := cli.Call(addr, "unbudgeted", nil); err != nil {
		t.Fatal(err)
	}
	if s := <-got; !s.deadline.IsZero() {
		t.Fatalf("unbudgeted call arrived with deadline %v, want zero", s.deadline)
	}
}

// TestTCPPerCallBudgetOnSharedConn pins the per-call timer contract on one
// multiplexed connection: a tight-budget call expiring must neither be
// stretched to the generous CallTimeout nor poison the connection deadline
// for a concurrent call that is still inside its own budget. (The seed
// design set conn.SetDeadline per call on the shared connection, so one
// call's deadline clobbered every other in flight.)
func TestTCPPerCallBudgetOnSharedConn(t *testing.T) {
	stall := make(chan struct{})
	defer close(stall)
	_, addr := startDeadlineEcho(t, func(_ time.Time, m string, p []byte) ([]byte, error) {
		switch m {
		case "stall":
			<-stall // never answers inside any budget
		case "wait":
			time.Sleep(300 * time.Millisecond)
		}
		return []byte(m), nil
	})
	cli := NewTCP()
	defer cli.Close()
	cli.PoolSize = 1 // force every call onto the same mux connection
	cli.CallTimeout = 10 * time.Second

	stallErr := make(chan error, 1)
	go func() {
		_, err := cli.CallBudget(addr, "stall", nil, 150*time.Millisecond)
		stallErr <- err
	}()
	// The wait call outlives the stalled call's expiry by design: if the
	// 150ms deadline leaked onto the shared connection, this read would be
	// killed with it.
	waitErr := make(chan error, 1)
	go func() {
		_, err := cli.CallBudget(addr, "wait", nil, 5*time.Second)
		waitErr <- err
	}()
	select {
	case err := <-stallErr:
		if !errors.Is(err, ErrDropped) {
			t.Fatalf("stalled budgeted call = %v, want ErrDropped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tight budget did not expire the stalled call")
	}
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("concurrent call inside its own budget failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent call starved after a neighbour's budget expired")
	}
}

// TestTCPSharedConnBudgetRace hammers one multiplexed connection with mixed
// tight and generous budgets; run under -race it proves the per-call write
// deadlines and pending-call bookkeeping never step on each other.
func TestTCPSharedConnBudgetRace(t *testing.T) {
	_, addr := startDeadlineEcho(t, func(_ time.Time, m string, p []byte) ([]byte, error) {
		if m == "slow" {
			time.Sleep(50 * time.Millisecond)
		}
		return p, nil
	})
	cli := NewTCP()
	defer cli.Close()
	cli.PoolSize = 1
	cli.CallTimeout = 10 * time.Second

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("p%d", i))
			var err error
			var resp []byte
			if i%3 == 0 {
				// Tight budget on a slow method: expiry is acceptable,
				// corruption of a neighbour's call is not.
				_, err = cli.CallBudget(addr, "slow", payload, 5*time.Millisecond)
				if err != nil {
					return
				}
			} else {
				resp, err = cli.CallBudget(addr, "fast", payload, 5*time.Second)
				if err != nil {
					t.Errorf("fast call %d: %v", i, err)
					return
				}
				if string(resp) != string(payload) {
					t.Errorf("fast call %d echoed %q", i, resp)
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestClientBudgetCapsRetries pins the reliable Client's end-to-end budget:
// retries against a dead address stop once the budget is exhausted, with the
// ErrBudgetExceeded sentinel wrapping the transport cause.
func TestClientBudgetCapsRetries(t *testing.T) {
	tcp := NewTCP()
	defer tcp.Close()
	cli := NewClient(tcp, "ws-budget")
	cli.Retries = 1000
	cli.Backoff = 10 * time.Millisecond
	start := time.Now()
	_, err := cli.CallBudget("127.0.0.1:1", "m", nil, 200*time.Millisecond)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("exhausted budget = %v, want ErrBudgetExceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("budgeted retries ran %v, budget not enforced", took)
	}
}
