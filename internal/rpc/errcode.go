package rpc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Wire error codes: the in-process transport hands the handler's error chain
// to the caller intact, so callers branch on application sentinels
// (txn.ErrCheckinFailed, lock.ErrDeadlock, ...) with errors.Is. A socket
// cannot carry a Go error chain — the seed TCP transport flattened it to
// text, which silently changed caller behaviour between deployments. The
// multiplexed wire therefore carries a numeric error *code* alongside the
// rendered message: the server maps the chain to the first registered
// sentinel it matches, and the client re-attaches that sentinel (plus
// ErrRemote) under the textual error, so errors.Is behaves identically over
// sockets and in-proc for every registered sentinel.
//
// Packages owning wire-visible sentinels register them at init time with
// RegisterWireError (internal/txn registers its own plus the lock and
// version sentinels its handlers surface). Code 0 is reserved for
// "unregistered": the message still travels, only sentinel matching degrades.

// wireErrMu guards the registry; registration happens at init time, lookups
// on every remote error.
var wireErrMu sync.RWMutex

// wireErrByCode maps code → sentinel for client-side reconstruction.
var wireErrByCode = make(map[uint64]error)

// wireErrOrdered lists registered (code, sentinel) pairs sorted by code, the
// deterministic matching order for server-side chain classification.
var wireErrOrdered []wireErrEntry

type wireErrEntry struct {
	code     uint64
	sentinel error
}

// RegisterWireError registers a sentinel error under a stable nonzero wire
// code so it survives the TCP transport as an unwrappable chain member.
// Codes must be process-wide unique and stable across releases (they are the
// wire contract); re-registering a code or a sentinel panics, which surfaces
// collisions at init time.
func RegisterWireError(code uint64, sentinel error) {
	if code == 0 {
		panic("rpc: wire error code 0 is reserved")
	}
	if sentinel == nil {
		panic("rpc: nil wire error sentinel")
	}
	wireErrMu.Lock()
	defer wireErrMu.Unlock()
	if prev, dup := wireErrByCode[code]; dup {
		panic(fmt.Sprintf("rpc: wire error code %d already registered for %q", code, prev))
	}
	for _, e := range wireErrOrdered {
		if errors.Is(sentinel, e.sentinel) {
			panic(fmt.Sprintf("rpc: wire error %q already registered under code %d", sentinel, e.code))
		}
	}
	wireErrByCode[code] = sentinel
	wireErrOrdered = append(wireErrOrdered, wireErrEntry{code: code, sentinel: sentinel})
	sort.Slice(wireErrOrdered, func(i, j int) bool { return wireErrOrdered[i].code < wireErrOrdered[j].code })
}

// wireCodeOf classifies a handler error chain for the wire: the lowest
// registered code whose sentinel the chain matches, or 0 when none does.
func wireCodeOf(err error) uint64 {
	wireErrMu.RLock()
	defer wireErrMu.RUnlock()
	for _, e := range wireErrOrdered {
		if errors.Is(err, e.sentinel) {
			return e.code
		}
	}
	return 0
}

// wireSentinel resolves a received code back to its sentinel (nil for 0 or
// an unknown code — e.g. a peer release that registers more sentinels).
func wireSentinel(code uint64) error {
	if code == 0 {
		return nil
	}
	wireErrMu.RLock()
	defer wireErrMu.RUnlock()
	return wireErrByCode[code]
}

// remoteError is an application error received over the socket transport:
// the rendered remote text plus the unwrap targets reconstructed from the
// wire code. It matches ErrRemote always and the coded sentinel when one was
// registered, mirroring the in-process chain
// fmt.Errorf("%w: %w", ErrRemote, err).
type remoteError struct {
	msg      string
	sentinel error // nil when the code was 0/unknown
}

// newRemoteError builds the client-side error for a remote failure.
func newRemoteError(code uint64, msg string) error {
	return &remoteError{msg: msg, sentinel: wireSentinel(code)}
}

// Error renders the error with the same shape as the in-process chain.
func (e *remoteError) Error() string { return ErrRemote.Error() + ": " + e.msg }

// Unwrap exposes ErrRemote and, when the wire carried a registered code, the
// application sentinel, so errors.Is works identically to in-proc.
func (e *remoteError) Unwrap() []error {
	if e.sentinel == nil {
		return []error{ErrRemote}
	}
	return []error{ErrRemote, e.sentinel}
}
