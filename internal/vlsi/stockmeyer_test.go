package vlsi

import (
	"math"
	"testing"
	"testing/quick"
)

// TestStockmeyerNoWorseThanNaive: the combined shape function's best area is
// never worse than naively stacking the min-area shapes (Stockmeyer's
// combination explores all compatible pairs, which includes the naive one).
func TestStockmeyerNoWorseThanNaive(t *testing.T) {
	prop := func(a1, a2 uint8) bool {
		areaA := float64(a1%50) + 4
		areaB := float64(a2%50) + 4
		sfA := GenerateShapes(areaA, 6)
		sfB := GenerateShapes(areaB, 6)
		minA, err := sfA.MinArea()
		if err != nil {
			return false
		}
		minB, err := sfB.MinArea()
		if err != nil {
			return false
		}
		for _, cut := range []Cut{CutVertical, CutHorizontal} {
			var naive Shape
			if cut == CutVertical {
				naive = Shape{W: minA.W + minB.W, H: math.Max(minA.H, minB.H)}
			} else {
				naive = Shape{W: math.Max(minA.W, minB.W), H: minA.H + minB.H}
			}
			combined := Combine(sfA, sfB, cut)
			best, err := combined.MinArea()
			if err != nil {
				return false
			}
			if best.Area() > naive.Area()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCombinedShapesContainChildren: every combined shape is large enough to
// hold one shape of each child under the cut direction.
func TestCombinedShapesContainChildren(t *testing.T) {
	sfA := GenerateShapes(20, 4)
	sfB := GenerateShapes(30, 4)
	for _, cut := range []Cut{CutVertical, CutHorizontal} {
		c := Combine(sfA, sfB, cut)
		for _, s := range c.Shapes {
			// There must exist child shapes (sa, sb) fitting inside s.
			fits := false
			for _, sa := range sfA.Shapes {
				for _, sb := range sfB.Shapes {
					if cut == CutVertical &&
						sa.W+sb.W <= s.W+1e-9 && math.Max(sa.H, sb.H) <= s.H+1e-9 {
						fits = true
					}
					if cut == CutHorizontal &&
						math.Max(sa.W, sb.W) <= s.W+1e-9 && sa.H+sb.H <= s.H+1e-9 {
						fits = true
					}
				}
			}
			if !fits {
				t.Fatalf("combined shape %v cannot hold any child pair (%s cut)", s, cut)
			}
		}
	}
}

// TestSizingRealizesChosenOutline: after top-down sizing, the placed
// children exactly tile the chosen outline dimension along the cut.
func TestSizingRealizesChosenOutline(t *testing.T) {
	nl := &Netlist{Name: "x", Instances: []Instance{
		{Name: "a", Kind: "cell", Area: 12},
		{Name: "b", Kind: "cell", Area: 20},
		{Name: "c", Kind: "cell", Area: 8},
	}, Nets: []Net{{Name: "n", Pins: []string{"a", "b", "c"}}}}
	fp, err := PlanChip(nl, Interface{Cell: "x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var placedArea float64
	for _, p := range fp.Placements {
		placedArea += p.Rect.Area()
	}
	// Slicing floorplans may leave slack, but placements never exceed the
	// outline and must cover the cells' total area.
	if placedArea > fp.Area()+1e-6 {
		t.Fatalf("placed %g > outline %g", placedArea, fp.Area())
	}
	if placedArea < 40-1e-6 {
		t.Fatalf("placed %g < total cell area 40", placedArea)
	}
}
