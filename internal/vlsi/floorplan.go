package vlsi

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Rect is a placed rectangle.
type Rect struct {
	// X, Y is the lower-left corner.
	X, Y float64
	// W, H are width and height.
	W, H float64
}

// Area returns W*H.
func (r Rect) Area() float64 { return r.W * r.H }

// Center returns the rectangle's center point.
func (r Rect) Center() (float64, float64) { return r.X + r.W/2, r.Y + r.H/2 }

// Interface is the floorplan interface description of a cell under design:
// the non-functional requirements handed to the chip planner (shape/area
// limits and pin positions, Sect. 3).
type Interface struct {
	// Cell names the cell under design (CUD).
	Cell string
	// MaxW, MaxH bound the CUD's bounding box (0 = unconstrained).
	MaxW, MaxH float64
	// Pins is the number of pins on the CUD's frame.
	Pins int
}

// Placement is one placed subcell of a floorplan.
type Placement struct {
	// Name is the subcell name.
	Name string
	// Rect is the assigned region.
	Rect Rect
}

// Floorplan is the output of the chip planner: placed subcells, the chosen
// outline and the global-routing estimate (the floorplan contents of
// Fig. 3).
type Floorplan struct {
	// Cell names the planned cell.
	Cell string
	// Outline is the chosen bounding shape.
	Outline Shape
	// Placements are the subcell regions.
	Placements []Placement
	// WireLength is the estimated total routed net length.
	WireLength float64
	// CutNets counts nets crossing the top-level partition.
	CutNets int
}

// Area returns the outline area.
func (f *Floorplan) Area() float64 { return f.Outline.Area() }

// slicingNode is a node of the slicing tree built by recursive
// bipartitioning.
type slicingNode struct {
	leaf     string // instance name for leaves
	cut      Cut
	from, to *slicingNode
	sf       ShapeFunction
	// chosen shape after top-down sizing
	chosen Shape
}

// Bipartition splits the instances of a netlist into two balanced groups
// minimizing the number of cut nets: a deterministic greedy min-cut
// heuristic (area-balanced seeding followed by gain-driven swaps, in the
// spirit of Kernighan-Lin).
func Bipartition(nl *Netlist) (left, right []string, cut int) {
	if len(nl.Instances) == 0 {
		return nil, nil, 0
	}
	left, right = Repartition(nl) // balanced seed
	inLeft := make(map[string]bool, len(left))
	for _, n := range left {
		inLeft[n] = true
	}
	area := make(map[string]float64, len(nl.Instances))
	for _, in := range nl.Instances {
		area[in.Name] = in.Area
	}
	cutCount := func() int {
		c := 0
		for _, net := range nl.Nets {
			hasL, hasR := false, false
			for _, p := range net.Pins {
				if inLeft[p] {
					hasL = true
				} else {
					hasR = true
				}
			}
			if hasL && hasR {
				c++
			}
		}
		return c
	}
	totalArea := nl.TotalArea()
	balanced := func() bool {
		var la float64
		for n, l := range inLeft {
			if l {
				la += area[n]
			}
		}
		return la >= totalArea*0.25 && la <= totalArea*0.75
	}
	// Greedy single-move improvement passes.
	names := make([]string, 0, len(nl.Instances))
	for _, in := range nl.Instances {
		names = append(names, in.Name)
	}
	sort.Strings(names)
	best := cutCount()
	for pass := 0; pass < 4; pass++ {
		improved := false
		for _, n := range names {
			inLeft[n] = !inLeft[n]
			if c := cutCount(); c < best && balanced() {
				best = c
				improved = true
			} else {
				inLeft[n] = !inLeft[n]
			}
		}
		if !improved {
			break
		}
	}
	left, right = nil, nil
	for _, n := range names {
		if inLeft[n] {
			left = append(left, n)
		} else {
			right = append(right, n)
		}
	}
	return left, right, best
}

// buildSlicingTree recursively bipartitions the netlist into a slicing tree,
// alternating cut directions.
func buildSlicingTree(nl *Netlist, names []string, cut Cut, shapes map[string]ShapeFunction) *slicingNode {
	if len(names) == 1 {
		return &slicingNode{leaf: names[0], sf: shapes[names[0]]}
	}
	sub := subNetlist(nl, names)
	l, r, _ := Bipartition(sub)
	if len(l) == 0 || len(r) == 0 {
		// Degenerate partition: split lexicographically.
		sort.Strings(names)
		mid := len(names) / 2
		l, r = names[:mid], names[mid:]
	}
	next := CutVertical
	if cut == CutVertical {
		next = CutHorizontal
	}
	from := buildSlicingTree(nl, l, next, shapes)
	to := buildSlicingTree(nl, r, next, shapes)
	return &slicingNode{
		cut:  cut,
		from: from,
		to:   to,
		sf:   Combine(from.sf, to.sf, cut),
	}
}

// subNetlist projects a netlist onto a subset of instances.
func subNetlist(nl *Netlist, names []string) *Netlist {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	out := &Netlist{Name: nl.Name}
	for _, in := range nl.Instances {
		if keep[in.Name] {
			out.Instances = append(out.Instances, in)
		}
	}
	for _, net := range nl.Nets {
		var pins []string
		for _, p := range net.Pins {
			if keep[p] {
				pins = append(pins, p)
			}
		}
		if len(pins) >= 2 {
			out.Nets = append(out.Nets, Net{Name: net.Name, Pins: pins})
		}
	}
	return out
}

// size performs the top-down shape assignment after Stockmeyer combination:
// given the chosen shape of a node, pick child shapes realizing it.
func (n *slicingNode) size(target Shape) {
	n.chosen = target
	if n.leaf != "" {
		return
	}
	bestErr := math.Inf(1)
	var bf, bt Shape
	for _, sa := range n.from.sf.Shapes {
		for _, sb := range n.to.sf.Shapes {
			var s Shape
			if n.cut == CutVertical {
				s = Shape{W: sa.W + sb.W, H: math.Max(sa.H, sb.H)}
			} else {
				s = Shape{W: math.Max(sa.W, sb.W), H: sa.H + sb.H}
			}
			e := math.Abs(s.W-target.W) + math.Abs(s.H-target.H)
			if e < bestErr {
				bestErr = e
				bf, bt = sa, sb
			}
		}
	}
	n.from.size(bf)
	n.to.size(bt)
}

// place assigns concrete rectangles top-down (dimensioning).
func (n *slicingNode) place(x, y float64, out *[]Placement) {
	if n.leaf != "" {
		*out = append(*out, Placement{Name: n.leaf, Rect: Rect{X: x, Y: y, W: n.chosen.W, H: n.chosen.H}})
		return
	}
	n.from.place(x, y, out)
	if n.cut == CutVertical {
		n.to.place(x+n.from.chosen.W, y, out)
	} else {
		n.to.place(x, y+n.from.chosen.H, out)
	}
}

// PlanChip runs the chip-planner toolbox (tool 5, Fig. 3) on a cell under
// design: bipartitioning builds a slicing tree over the netlist, sizing
// combines the subcell shape functions (Stockmeyer) and picks the best
// outline within the interface bounds, dimensioning assigns concrete
// rectangles, and global routing estimates the wiring. shapes supplies the
// shape function of each subcell; missing entries are generated from the
// instance's area estimate.
func PlanChip(nl *Netlist, iface Interface, shapes map[string]ShapeFunction) (*Floorplan, error) {
	if nl == nil || len(nl.Instances) == 0 {
		return nil, errors.New("vlsi: empty netlist")
	}
	full := make(map[string]ShapeFunction, len(nl.Instances))
	for _, in := range nl.Instances {
		if sf, ok := shapes[in.Name]; ok && !sf.Empty() {
			full[in.Name] = sf
		} else {
			area := in.Area
			if area <= 0 {
				area = 1
			}
			full[in.Name] = GenerateShapes(area, 5)
		}
	}
	names := make([]string, 0, len(nl.Instances))
	for _, in := range nl.Instances {
		names = append(names, in.Name)
	}
	sort.Strings(names)
	root := buildSlicingTree(nl, names, CutVertical, full)
	outline, err := root.sf.Best(iface.MaxW, iface.MaxH)
	if err != nil {
		return nil, fmt.Errorf("vlsi: %s: %w", iface.Cell, err)
	}
	root.size(outline)
	var placements []Placement
	root.place(0, 0, &placements)
	sort.Slice(placements, func(i, j int) bool { return placements[i].Name < placements[j].Name })

	fp := &Floorplan{Cell: iface.Cell, Outline: outline, Placements: placements}
	_, _, cut := Bipartition(nl)
	fp.CutNets = cut
	fp.WireLength = RouteEstimate(nl, fp)
	return fp, nil
}
