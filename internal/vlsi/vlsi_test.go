package vlsi

import (
	"math"
	"testing"
	"testing/quick"

	"concord/internal/catalog"
)

func TestSynthesizeSimpleAdder(t *testing.T) {
	// MODULE add BEGIN c <= a + b END (Fig. 2 behaviour example).
	nl, err := Synthesize(Behavior{Name: "add", Assigns: []Assign{{Target: "c", Expr: "a + b"}}})
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, in := range nl.Instances {
		kinds[in.Kind]++
	}
	if kinds["add"] != 1 || kinds["in"] != 2 || kinds["out"] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	if len(nl.Nets) < 3 {
		t.Fatalf("nets = %d, want >= 3", len(nl.Nets))
	}
	if nl.TotalArea() <= 0 {
		t.Fatal("zero total area")
	}
}

func TestSynthesizeChainedExpression(t *testing.T) {
	nl, err := Synthesize(Behavior{Name: "mac", Assigns: []Assign{
		{Target: "y", Expr: "a * b + c"},
		{Target: "z", Expr: "y2 & m"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, in := range nl.Instances {
		kinds[in.Kind]++
	}
	if kinds["mul"] != 1 || kinds["add"] != 1 || kinds["and"] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(Behavior{}); err == nil {
		t.Error("unnamed behaviour accepted")
	}
	if _, err := Synthesize(Behavior{Name: "x", Assigns: []Assign{{Target: "", Expr: "a"}}}); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := Synthesize(Behavior{Name: "x", Assigns: []Assign{{Target: "y", Expr: ""}}}); err == nil {
		t.Error("empty expression accepted")
	}
	if _, err := Synthesize(Behavior{Name: "x", Assigns: []Assign{{Target: "y", Expr: "a +"}}}); err == nil {
		t.Error("dangling operator accepted")
	}
}

func TestShapeFunctionNormalization(t *testing.T) {
	sf := NewShapeFunction(
		Shape{W: 2, H: 8},
		Shape{W: 4, H: 4},
		Shape{W: 4, H: 6}, // dominated by 4x4
		Shape{W: 8, H: 2},
		Shape{W: 10, H: 3}, // dominated by 8x2
		Shape{W: 0, H: 5},  // degenerate
	)
	if len(sf.Shapes) != 3 {
		t.Fatalf("staircase = %v", sf.Shapes)
	}
	for i := 1; i < len(sf.Shapes); i++ {
		if sf.Shapes[i].W <= sf.Shapes[i-1].W || sf.Shapes[i].H >= sf.Shapes[i-1].H {
			t.Fatalf("not a staircase: %v", sf.Shapes)
		}
	}
}

func TestGenerateShapesPreservesArea(t *testing.T) {
	sf := GenerateShapes(64, 7)
	if sf.Empty() {
		t.Fatal("empty shape function")
	}
	for _, s := range sf.Shapes {
		if math.Abs(s.Area()-64) > 1e-9 {
			t.Fatalf("shape %v area %g, want 64", s, s.Area())
		}
	}
	if GenerateShapes(-1, 5).Empty() != true {
		t.Fatal("negative area should give empty function")
	}
}

func TestCombineStockmeyer(t *testing.T) {
	a := NewShapeFunction(Shape{W: 2, H: 4}, Shape{W: 4, H: 2})
	b := NewShapeFunction(Shape{W: 2, H: 2})
	v := Combine(a, b, CutVertical)
	// Vertical: widths add, heights max → candidates (4, 4), (6, 2).
	if len(v.Shapes) != 2 {
		t.Fatalf("vertical combine = %v", v.Shapes)
	}
	if v.Shapes[0].W != 4 || v.Shapes[0].H != 4 || v.Shapes[1].W != 6 || v.Shapes[1].H != 2 {
		t.Fatalf("vertical combine = %v", v.Shapes)
	}
	h := Combine(a, b, CutHorizontal)
	// Horizontal: heights add, widths max → (2, 6), (4, 4).
	if len(h.Shapes) != 2 || h.Shapes[0].W != 2 || h.Shapes[0].H != 6 {
		t.Fatalf("horizontal combine = %v", h.Shapes)
	}
	// Combining with an empty function is the identity.
	if got := Combine(a, ShapeFunction{}, CutVertical); len(got.Shapes) != len(a.Shapes) {
		t.Fatal("combine with empty lost shapes")
	}
}

func TestBestShapeRespectsBounds(t *testing.T) {
	sf := NewShapeFunction(Shape{W: 2, H: 8}, Shape{W: 4, H: 4}, Shape{W: 8, H: 2})
	s, err := sf.Best(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.W != 4 || s.H != 4 {
		t.Fatalf("Best(5,5) = %v", s)
	}
	if _, err := sf.Best(1, 1); err == nil {
		t.Fatal("impossible bound accepted")
	}
	s, err = sf.Best(0, 0) // unconstrained → min area
	if err != nil || s.Area() != 16 {
		t.Fatalf("Best(0,0) = %v, %v", s, err)
	}
}

func TestBipartitionBalancedAndDeterministic(t *testing.T) {
	nl := &Netlist{Name: "m"}
	for i := 0; i < 8; i++ {
		nl.Instances = append(nl.Instances, Instance{Name: string(rune('a' + i)), Kind: "cell", Area: 10})
	}
	// Two clusters {a..d}, {e..h} densely connected internally, one
	// cross net: min cut should separate the clusters.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			nl.Nets = append(nl.Nets,
				Net{Name: "l", Pins: []string{string(rune('a' + i)), string(rune('a' + j))}},
				Net{Name: "r", Pins: []string{string(rune('e' + i)), string(rune('e' + j))}})
		}
	}
	nl.Nets = append(nl.Nets, Net{Name: "x", Pins: []string{"a", "e"}})
	l1, r1, cut1 := Bipartition(nl)
	l2, r2, cut2 := Bipartition(nl)
	if cut1 != cut2 || len(l1) != len(l2) || len(r1) != len(r2) {
		t.Fatal("bipartition not deterministic")
	}
	if cut1 > 1 {
		t.Fatalf("cut = %d, want <= 1 (clusters separable)", cut1)
	}
	if len(l1) != 4 || len(r1) != 4 {
		t.Fatalf("partition sizes = %d/%d", len(l1), len(r1))
	}
}

func TestPlanChipProducesLegalFloorplan(t *testing.T) {
	// Cell O with subcells A..D (the Fig. 5 scenario).
	nl := &Netlist{
		Name: "O",
		Instances: []Instance{
			{Name: "A", Kind: "cell", Area: 40},
			{Name: "B", Kind: "cell", Area: 30},
			{Name: "C", Kind: "cell", Area: 20},
			{Name: "D", Kind: "cell", Area: 10},
		},
		Nets: []Net{
			{Name: "n1", Pins: []string{"A", "B"}},
			{Name: "n2", Pins: []string{"B", "C"}},
			{Name: "n3", Pins: []string{"C", "D"}},
			{Name: "n4", Pins: []string{"A", "D"}},
		},
	}
	fp, err := PlanChip(nl, Interface{Cell: "O", MaxW: 30, MaxH: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Placements) != 4 {
		t.Fatalf("placements = %d", len(fp.Placements))
	}
	if fp.Outline.W > 30 || fp.Outline.H > 30 {
		t.Fatalf("outline %v exceeds interface bounds", fp.Outline)
	}
	// Total placed area must be at least the sum of the smallest shape
	// areas (no cell vanishes).
	if fp.Area() < 100 {
		t.Fatalf("outline area %g < total cell area 100", fp.Area())
	}
	// Placements stay within the outline (small epsilon for float noise).
	for _, p := range fp.Placements {
		if p.Rect.X < -1e-9 || p.Rect.Y < -1e-9 ||
			p.Rect.X+p.Rect.W > fp.Outline.W+1e-6 || p.Rect.Y+p.Rect.H > fp.Outline.H+1e-6 {
			t.Fatalf("placement %v outside outline %v", p, fp.Outline)
		}
	}
	// No pairwise overlaps.
	for i := range fp.Placements {
		for j := i + 1; j < len(fp.Placements); j++ {
			a, b := fp.Placements[i].Rect, fp.Placements[j].Rect
			if a.X < b.X+b.W-1e-6 && b.X < a.X+a.W-1e-6 &&
				a.Y < b.Y+b.H-1e-6 && b.Y < a.Y+a.H-1e-6 {
				t.Fatalf("placements overlap: %v vs %v", fp.Placements[i], fp.Placements[j])
			}
		}
	}
	if fp.WireLength <= 0 {
		t.Fatal("no wiring estimated")
	}
}

func TestPlanChipImpossibleBounds(t *testing.T) {
	nl := &Netlist{Name: "O", Instances: []Instance{{Name: "A", Kind: "cell", Area: 100}}}
	if _, err := PlanChip(nl, Interface{Cell: "O", MaxW: 2, MaxH: 2}, nil); err == nil {
		t.Fatal("impossible interface accepted")
	}
	if _, err := PlanChip(&Netlist{}, Interface{}, nil); err == nil {
		t.Fatal("empty netlist accepted")
	}
}

func TestRepartitionBalances(t *testing.T) {
	nl := &Netlist{Name: "m", Instances: []Instance{
		{Name: "big", Area: 50}, {Name: "m1", Area: 20}, {Name: "m2", Area: 20}, {Name: "m3", Area: 10},
	}}
	a, b := Repartition(nl)
	var areaA, areaB float64
	areas := map[string]float64{"big": 50, "m1": 20, "m2": 20, "m3": 10}
	for _, n := range a {
		areaA += areas[n]
	}
	for _, n := range b {
		areaB += areas[n]
	}
	if math.Abs(areaA-areaB) > 10 {
		t.Fatalf("imbalance: %g vs %g", areaA, areaB)
	}
}

func TestPadFrame(t *testing.T) {
	pf := EditPadFrame("chip", Shape{W: 100, H: 50}, 12, 2)
	if len(pf.Pads) != 12 {
		t.Fatalf("pads = %d", len(pf.Pads))
	}
	for _, p := range pf.Pads {
		if p.X < -1e-9 || p.Y < -1e-9 || p.X+p.W > 100+1e-9 || p.Y+p.H > 50+1e-9 {
			t.Fatalf("pad %v outside die", p)
		}
	}
	if got := EditPadFrame("c", Shape{}, 4, 1); len(got.Pads) != 0 {
		t.Fatal("degenerate outline produced pads")
	}
}

func TestCellSynthesisAndAssembly(t *testing.T) {
	fp, err := PlanChip(&Netlist{
		Name: "O",
		Instances: []Instance{
			{Name: "A", Kind: "cell", Area: 16},
			{Name: "B", Kind: "cell", Area: 16},
		},
		Nets: []Net{{Name: "n", Pins: []string{"A", "B"}}},
	}, Interface{Cell: "O"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := make(map[string]*MaskLayout)
	for _, p := range fp.Placements {
		cells[p.Name] = SynthesizeCell(p.Name, Shape{W: p.Rect.W, H: p.Rect.H})
	}
	pf := EditPadFrame("O", fp.Outline, 8, 1)
	ml := AssembleChip(fp, pf, cells)
	if ml.Cell != "O" || ml.Area() != fp.Area() {
		t.Fatalf("layout = %+v", ml)
	}
	wantRects := len(fp.Placements) + len(pf.Pads)
	for _, c := range cells {
		wantRects += len(c.Rects)
	}
	if len(ml.Rects) != wantRects {
		t.Fatalf("rects = %d, want %d", len(ml.Rects), wantRects)
	}
	if ml.Layers < 3 {
		t.Fatalf("layers = %d", ml.Layers)
	}
}

func TestGenerateHierarchy(t *testing.T) {
	chip := GenerateHierarchy(7, "chip", 3, 3)
	// 1 + 3 + 9 + 27 cells.
	if chip.Count() != 40 {
		t.Fatalf("count = %d, want 40", chip.Count())
	}
	levels := make(map[Level]int)
	chip.Walk(func(c *Cell) { levels[c.Level]++ })
	if levels[LevelChip] != 1 || levels[LevelModule] != 3 || levels[LevelBlock] != 9 || levels[LevelStdCell] != 27 {
		t.Fatalf("levels = %v", levels)
	}
	chip.Walk(func(c *Cell) {
		if len(c.Children) > 0 && c.Netlist == nil {
			t.Fatalf("cell %s without netlist", c.Name)
		}
		if c.AreaEstimate <= 0 {
			t.Fatalf("cell %s without area", c.Name)
		}
	})
	// Determinism.
	again := GenerateHierarchy(7, "chip", 3, 3)
	if again.AreaEstimate != chip.AreaEstimate {
		t.Fatal("hierarchy generation not deterministic")
	}
	shapes := ShapesForChildren(chip, 5)
	if len(shapes) != 3 {
		t.Fatalf("shapes = %d", len(shapes))
	}
}

func TestObjectConversions(t *testing.T) {
	cat := catalog.New()
	if err := RegisterCatalog(cat); err != nil {
		t.Fatal(err)
	}
	nl, err := Synthesize(Behavior{Name: "add", Assigns: []Assign{{Target: "c", Expr: "a + b"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(NetlistToObject(nl)); err != nil {
		t.Fatalf("netlist object: %v", err)
	}
	fp, err := PlanChip(&Netlist{
		Name:      "O",
		Instances: []Instance{{Name: "A", Kind: "cell", Area: 9}, {Name: "B", Kind: "cell", Area: 9}},
		Nets:      []Net{{Name: "n", Pins: []string{"A", "B"}}},
	}, Interface{Cell: "O"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	obj := FloorplanToObject(fp)
	if err := cat.Validate(obj); err != nil {
		t.Fatalf("floorplan object: %v", err)
	}
	if catalog.NumAttr(obj, "area") != fp.Area() {
		t.Fatal("area attribute mismatch")
	}
	ml := AssembleChip(fp, nil, nil)
	if err := cat.Validate(LayoutToObject(ml)); err != nil {
		t.Fatalf("layout object: %v", err)
	}
	// Part-of relations along the design plane.
	for _, sub := range []string{DOTCell, DOTStdCell, DOTFloorplan, DOTNetlist, DOTLayout} {
		ok, err := cat.IsPartOf(sub, DOTChip)
		if err != nil || !ok {
			t.Fatalf("IsPartOf(%s, chip) = %t, %v", sub, ok, err)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if DomainBehavior.String() != "behavior" || DomainMaskLayout.String() != "mask layout" {
		t.Error("domain names wrong")
	}
	if LevelChip.String() != "chip" || LevelStdCell.String() != "stdcell" {
		t.Error("level names wrong")
	}
	if ToolChipPlanner.String() != "chip planner toolbox" || Tool(99).String() != "tool(99)" {
		t.Error("tool names wrong")
	}
	if CutVertical.String() != "vertical" || CutHorizontal.String() != "horizontal" {
		t.Error("cut names wrong")
	}
}

// Property: PlanChip outlines always contain all placements without
// overlap, for random netlists.
func TestQuickFloorplanLegality(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		count := int(n%6) + 2
		nl := &Netlist{Name: "q"}
		areas := []float64{4, 9, 16, 25, 36}
		for i := 0; i < count; i++ {
			nl.Instances = append(nl.Instances, Instance{
				Name: string(rune('a' + i)), Kind: "cell",
				Area: areas[(uint64(seed)+uint64(i)*7)%uint64(len(areas))],
			})
		}
		for i := 1; i < count; i++ {
			nl.Nets = append(nl.Nets, Net{
				Name: string(rune('m' + i)),
				Pins: []string{string(rune('a' + i - 1)), string(rune('a' + i))},
			})
		}
		fp, err := PlanChip(nl, Interface{Cell: "q"}, nil)
		if err != nil {
			return false
		}
		if len(fp.Placements) != count {
			return false
		}
		for i := range fp.Placements {
			r := fp.Placements[i].Rect
			if r.X < -1e-9 || r.Y < -1e-9 || r.X+r.W > fp.Outline.W+1e-6 || r.Y+r.H > fp.Outline.H+1e-6 {
				return false
			}
			for j := i + 1; j < len(fp.Placements); j++ {
				b := fp.Placements[j].Rect
				if r.X < b.X+b.W-1e-6 && b.X < r.X+r.W-1e-6 &&
					r.Y < b.Y+b.H-1e-6 && b.Y < r.Y+r.H-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: shape-function combination preserves the staircase invariant.
func TestQuickCombineStaircase(t *testing.T) {
	prop := func(areasA, areasB []uint8) bool {
		mk := func(areas []uint8) ShapeFunction {
			var shapes []Shape
			for _, a := range areas {
				area := float64(a%60) + 1
				shapes = append(shapes, Shape{W: math.Sqrt(area), H: math.Sqrt(area)},
					Shape{W: math.Sqrt(area) * 2, H: math.Sqrt(area) / 2})
			}
			return NewShapeFunction(shapes...)
		}
		a, b := mk(areasA), mk(areasB)
		for _, cut := range []Cut{CutVertical, CutHorizontal} {
			c := Combine(a, b, cut)
			for i := 1; i < len(c.Shapes); i++ {
				if c.Shapes[i].W <= c.Shapes[i-1].W || c.Shapes[i].H >= c.Shapes[i-1].H {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
