// Package vlsi implements the design substrate of CONCORD's sample design
// process — the domain instantiation of the design object management (DOM)
// layer, below DFM and the cooperation layer: the PLAYOUT-style VLSI
// methodology of Sect. 3 [Zi86]. It provides
// the design plane (four domains × a four-level cell hierarchy, Fig. 2), the
// data types flowing between design tools (behaviours, netlists, shape
// functions, floorplans, mask layouts), and executable stand-ins for the
// seven tools of Fig. 2 — including the chip-planner toolbox of Fig. 3
// (bipartitioning, sizing, dimensioning, global routing).
//
// The algorithms are real: structure synthesis walks a behaviour expression
// tree, floorplan sizing runs Stockmeyer's shape-function combination on a
// slicing tree, bipartitioning is a seeded min-cut heuristic, and global
// routing uses BFS shortest paths on a grid graph. They produce measurable
// quality (area, aspect ratio, wire length) so that SPEC features at the AC
// level are meaningful.
package vlsi

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Domain is one of the four design domains of the design plane (Fig. 2).
type Domain uint8

// Design domains.
const (
	DomainBehavior Domain = iota + 1
	DomainStructure
	DomainFloorPlan
	DomainMaskLayout
)

// String returns the domain name.
func (d Domain) String() string {
	switch d {
	case DomainBehavior:
		return "behavior"
	case DomainStructure:
		return "structure"
	case DomainFloorPlan:
		return "floor plan"
	case DomainMaskLayout:
		return "mask layout"
	default:
		return fmt.Sprintf("domain(%d)", uint8(d))
	}
}

// Level is a level of the design object hierarchy (Fig. 2).
type Level uint8

// Hierarchy levels.
const (
	LevelChip Level = iota + 1
	LevelModule
	LevelBlock
	LevelStdCell
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case LevelChip:
		return "chip"
	case LevelModule:
		return "module"
	case LevelBlock:
		return "block"
	case LevelStdCell:
		return "stdcell"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Tool numbers the design tools exactly as Fig. 2 does.
type Tool uint8

// The seven design tools of Fig. 2.
const (
	ToolStructureSynthesis Tool = 1
	ToolRepartitioning     Tool = 2
	ToolShapeFunction      Tool = 3
	ToolPadFrameEditor     Tool = 4
	ToolChipPlanner        Tool = 5
	ToolCellSynthesis      Tool = 6
	ToolChipAssembly       Tool = 7
)

// String returns the tool name.
func (t Tool) String() string {
	switch t {
	case ToolStructureSynthesis:
		return "structure synthesis"
	case ToolRepartitioning:
		return "repartitioning"
	case ToolShapeFunction:
		return "shape function generator"
	case ToolPadFrameEditor:
		return "pad frame editor"
	case ToolChipPlanner:
		return "chip planner toolbox"
	case ToolCellSynthesis:
		return "cell synthesis"
	case ToolChipAssembly:
		return "chip assembly"
	default:
		return fmt.Sprintf("tool(%d)", uint8(t))
	}
}

// Behavior is the functional specification of a circuit: a module of
// assignments over input signals ("MODULE add BEGIN c <= a + b END").
type Behavior struct {
	// Name names the module under design.
	Name string
	// Assigns are the behavioural assignments in order.
	Assigns []Assign
}

// Assign is one behavioural assignment: Target <= Expr.
type Assign struct {
	// Target is the output signal.
	Target string
	// Expr is an infix expression over signals with operators + - * & |.
	Expr string
}

// Netlist is the structural description: component instances connected by
// nets (the module and net list of Fig. 3).
type Netlist struct {
	// Name names the described cell.
	Name string
	// Instances are the components.
	Instances []Instance
	// Nets connect instance pins.
	Nets []Net
}

// Instance is one component of a netlist.
type Instance struct {
	// Name is unique within the netlist.
	Name string
	// Kind is the component type (adder, mult, and, or, reg, ...).
	Kind string
	// Area is the estimated cell area.
	Area float64
}

// Net is an electrical connection between instances.
type Net struct {
	// Name identifies the net (typically the signal name).
	Name string
	// Pins are the connected instance names.
	Pins []string
}

// operator area estimates per component kind.
var kindArea = map[string]float64{
	"add": 16, "sub": 16, "mul": 64, "and": 4, "or": 4, "buf": 2, "reg": 8, "in": 1, "out": 1,
}

var opKind = map[byte]string{'+': "add", '-': "sub", '*': "mul", '&': "and", '|': "or"}

// Synthesize performs structure synthesis (tool 1): it translates a
// behaviour into a netlist by building one component per operator
// application and one net per signal. The synthesis is deterministic.
func Synthesize(b Behavior) (*Netlist, error) {
	if b.Name == "" {
		return nil, errors.New("vlsi: behaviour needs a name")
	}
	nl := &Netlist{Name: b.Name}
	netPins := make(map[string][]string) // signal → pins
	seen := make(map[string]bool)
	addInstance := func(name, kind string) {
		if seen[name] {
			return
		}
		seen[name] = true
		nl.Instances = append(nl.Instances, Instance{Name: name, Kind: kind, Area: kindArea[kind]})
	}
	gate := 0
	for _, as := range b.Assigns {
		if as.Target == "" {
			return nil, errors.New("vlsi: assignment without target")
		}
		// Parse "x op y op z" left-associatively.
		toks := tokenize(as.Expr)
		if len(toks) == 0 {
			return nil, fmt.Errorf("vlsi: empty expression for %s", as.Target)
		}
		if len(toks)%2 == 0 {
			return nil, fmt.Errorf("vlsi: malformed expression %q", as.Expr)
		}
		cur := toks[0]
		addInstance("in:"+cur, "in")
		netPins[cur] = append(netPins[cur], "in:"+cur)
		for i := 1; i < len(toks); i += 2 {
			op := toks[i]
			rhs := toks[i+1]
			kind, ok := opKind[op[0]]
			if !ok || len(op) != 1 {
				return nil, fmt.Errorf("vlsi: unknown operator %q", op)
			}
			addInstance("in:"+rhs, "in")
			gate++
			g := fmt.Sprintf("%s%d", kind, gate)
			addInstance(g, kind)
			netPins[cur] = append(netPins[cur], g)
			netPins[rhs] = append(netPins[rhs], "in:"+rhs, g)
			// Intermediate signal feeds the next stage.
			cur = fmt.Sprintf("%s.t%d", as.Target, gate)
			netPins[cur] = append(netPins[cur], g)
		}
		addInstance("out:"+as.Target, "out")
		netPins[cur] = append(netPins[cur], "out:"+as.Target)
	}
	signals := make([]string, 0, len(netPins))
	for s := range netPins {
		signals = append(signals, s)
	}
	sort.Strings(signals)
	for _, s := range signals {
		pins := dedup(netPins[s])
		if len(pins) >= 2 {
			nl.Nets = append(nl.Nets, Net{Name: s, Pins: pins})
		}
	}
	return nl, nil
}

func tokenize(expr string) []string {
	var toks []string
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(expr); i++ {
		c := expr[i]
		switch {
		case c == ' ' || c == '\t':
			flush()
		case opKind[c] != "":
			flush()
			toks = append(toks, string(c))
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return toks
}

func dedup(xs []string) []string {
	sort.Strings(xs)
	out := xs[:0]
	var prev string
	for i, x := range xs {
		if i == 0 || x != prev {
			out = append(out, x)
		}
		prev = x
	}
	return out
}

// TotalArea sums the component area estimates.
func (nl *Netlist) TotalArea() float64 {
	var sum float64
	for _, inst := range nl.Instances {
		sum += inst.Area
	}
	return sum
}

// Repartition (tool 2) rebalances instances between two named groups so the
// area difference is minimized, returning the two groups (deterministic
// greedy longest-processing-time assignment).
func Repartition(nl *Netlist) (groupA, groupB []string) {
	insts := append([]Instance(nil), nl.Instances...)
	sort.Slice(insts, func(i, j int) bool {
		if insts[i].Area != insts[j].Area {
			return insts[i].Area > insts[j].Area
		}
		return insts[i].Name < insts[j].Name
	})
	var areaA, areaB float64
	for _, in := range insts {
		if areaA <= areaB {
			groupA = append(groupA, in.Name)
			areaA += in.Area
		} else {
			groupB = append(groupB, in.Name)
			areaB += in.Area
		}
	}
	return groupA, groupB
}
