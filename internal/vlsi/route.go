package vlsi

import (
	"math"
	"sort"
)

// RouteEstimate performs global routing (part of the chip-planner toolbox):
// every net is routed on a uniform grid over the floorplan outline between
// the centers of its pins' placements using BFS shortest paths with a
// congestion penalty; the total routed length is returned.
func RouteEstimate(nl *Netlist, fp *Floorplan) float64 {
	if fp.Outline.W <= 0 || fp.Outline.H <= 0 {
		return 0
	}
	const gridN = 16
	cellW := fp.Outline.W / gridN
	cellH := fp.Outline.H / gridN
	pos := make(map[string][2]int, len(fp.Placements))
	for _, p := range fp.Placements {
		cx, cy := p.Rect.Center()
		gx := clampInt(int(cx/cellW), 0, gridN-1)
		gy := clampInt(int(cy/cellH), 0, gridN-1)
		pos[p.Name] = [2]int{gx, gy}
	}
	use := make([]int, gridN*gridN)
	var total float64
	// Deterministic net order.
	nets := append([]Net(nil), nl.Nets...)
	sort.Slice(nets, func(i, j int) bool { return nets[i].Name < nets[j].Name })
	for _, net := range nets {
		var pins [][2]int
		for _, p := range net.Pins {
			if g, ok := pos[p]; ok {
				pins = append(pins, g)
			}
		}
		if len(pins) < 2 {
			continue
		}
		// Route a chain pin[0] → pin[1] → ... (Steiner approximation).
		for i := 1; i < len(pins); i++ {
			length := routeBFS(pins[i-1], pins[i], use, gridN)
			total += length * math.Hypot(cellW, cellH) / math.Sqrt2
		}
	}
	return total
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// routeBFS finds a congestion-aware shortest path and marks its usage,
// returning the path length in grid steps (weighted by congestion).
func routeBFS(from, to [2]int, use []int, n int) float64 {
	if from == to {
		return 0
	}
	type node struct{ x, y int }
	dist := make([]float64, n*n)
	prev := make([]int, n*n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	idx := func(x, y int) int { return y*n + x }
	start := idx(from[0], from[1])
	dist[start] = 0
	// Dijkstra with a simple frontier scan (grids are small).
	visited := make([]bool, n*n)
	for {
		best := -1
		bd := math.Inf(1)
		for i, d := range dist {
			if !visited[i] && d < bd {
				bd = d
				best = i
			}
		}
		if best < 0 {
			return 0 // unreachable (cannot happen on a full grid)
		}
		if best == idx(to[0], to[1]) {
			break
		}
		visited[best] = true
		bx, by := best%n, best/n
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := bx+d[0], by+d[1]
			if nx < 0 || ny < 0 || nx >= n || ny >= n {
				continue
			}
			ni := idx(nx, ny)
			w := 1 + 0.25*float64(use[ni]) // congestion penalty
			if dist[best]+w < dist[ni] {
				dist[ni] = dist[best] + w
				prev[ni] = best
			}
		}
	}
	// Walk back, marking usage.
	length := 0.0
	cur := idx(to[0], to[1])
	for cur != start && cur >= 0 {
		use[cur]++
		length++
		cur = prev[cur]
	}
	return length
}

// PadFrame is the result of the pad frame editor (tool 4): pad positions on
// the chip boundary.
type PadFrame struct {
	// Cell names the framed chip.
	Cell string
	// Pads are the placed pads in clockwise order starting at the lower
	// left corner.
	Pads []Rect
}

// EditPadFrame distributes n pads of the given size evenly around the
// outline boundary (tool 4).
func EditPadFrame(cell string, outline Shape, n int, padSize float64) *PadFrame {
	pf := &PadFrame{Cell: cell}
	if n <= 0 || outline.W <= 0 || outline.H <= 0 {
		return pf
	}
	perimeter := 2 * (outline.W + outline.H)
	step := perimeter / float64(n)
	for i := 0; i < n; i++ {
		d := step * float64(i)
		var x, y float64
		switch {
		case d < outline.W: // bottom edge
			x, y = d, 0
		case d < outline.W+outline.H: // right edge
			x, y = outline.W-padSize, d-outline.W
		case d < 2*outline.W+outline.H: // top edge
			x, y = 2*outline.W+outline.H-d-padSize, outline.H-padSize
		default: // left edge
			x, y = 0, perimeter-d-padSize
		}
		pf.Pads = append(pf.Pads, Rect{X: x, Y: y, W: padSize, H: padSize})
	}
	return pf
}

// MaskLayout is the physical realization of a cell (domain mask layout).
type MaskLayout struct {
	// Cell names the realized cell.
	Cell string
	// Outline is the die outline.
	Outline Shape
	// Rects are the geometry rectangles (subcell outlines, pads, wiring
	// tracks).
	Rects []Rect
	// Layers counts distinct mask layers used.
	Layers int
}

// Area returns the die area.
func (m *MaskLayout) Area() float64 { return m.Outline.Area() }

// SynthesizeCell performs cell synthesis (tool 6): a standard cell's mask
// layout generated from its chosen shape — one diffusion rectangle per unit
// of area on a two-layer grid.
func SynthesizeCell(name string, shape Shape) *MaskLayout {
	ml := &MaskLayout{Cell: name, Outline: shape, Layers: 2}
	cols := int(math.Max(1, math.Round(shape.W)))
	rows := int(math.Max(1, math.Round(shape.H)))
	// Cap geometry generation for huge cells.
	if cols*rows > 4096 {
		scale := math.Sqrt(4096 / float64(cols*rows))
		cols = int(float64(cols) * scale)
		rows = int(float64(rows) * scale)
	}
	cw := shape.W / float64(cols)
	rh := shape.H / float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ml.Rects = append(ml.Rects, Rect{X: float64(c) * cw, Y: float64(r) * rh, W: cw * 0.8, H: rh * 0.8})
		}
	}
	return ml
}

// AssembleChip performs chip assembly (tool 7): it merges the floorplan, the
// pad frame and the subcell layouts into the final chip mask layout.
func AssembleChip(fp *Floorplan, pf *PadFrame, cells map[string]*MaskLayout) *MaskLayout {
	ml := &MaskLayout{Cell: fp.Cell, Outline: fp.Outline, Layers: 3}
	for _, p := range fp.Placements {
		ml.Rects = append(ml.Rects, p.Rect)
		if sub, ok := cells[p.Name]; ok {
			// Translate subcell geometry into place.
			sx := p.Rect.W / math.Max(sub.Outline.W, 1e-9)
			sy := p.Rect.H / math.Max(sub.Outline.H, 1e-9)
			for _, r := range sub.Rects {
				ml.Rects = append(ml.Rects, Rect{
					X: p.Rect.X + r.X*sx, Y: p.Rect.Y + r.Y*sy,
					W: r.W * sx, H: r.H * sy,
				})
			}
			if sub.Layers+1 > ml.Layers {
				ml.Layers = sub.Layers + 1
			}
		}
	}
	if pf != nil {
		ml.Rects = append(ml.Rects, pf.Pads...)
	}
	return ml
}
