package vlsi

import (
	"errors"
	"math"
	"sort"
)

// Shape is one realizable bounding box of a cell.
type Shape struct {
	// W and H are width and height.
	W, H float64
}

// Area returns W*H.
func (s Shape) Area() float64 { return s.W * s.H }

// Aspect returns H/W (0 for degenerate shapes).
func (s Shape) Aspect() float64 {
	if s.W == 0 {
		return 0
	}
	return s.H / s.W
}

// ShapeFunction is the set of realizable shapes of a cell: a staircase of
// (width, height) alternatives, sorted by increasing width with strictly
// decreasing height (dominated points pruned). Shape functions are the
// "estimated information about subcells" that chip planning consumes
// (Sect. 3, tool 3 of Fig. 2).
type ShapeFunction struct {
	// Shapes is the normalized staircase.
	Shapes []Shape
}

// NewShapeFunction normalizes a set of candidate shapes into a staircase.
func NewShapeFunction(shapes ...Shape) ShapeFunction {
	sf := ShapeFunction{Shapes: append([]Shape(nil), shapes...)}
	sf.normalize()
	return sf
}

// GenerateShapes builds the shape function of a leaf cell from its area
// (tool 3): candidate aspect ratios between 1:4 and 4:1 in n steps.
func GenerateShapes(area float64, n int) ShapeFunction {
	if n < 1 {
		n = 1
	}
	if area <= 0 {
		return ShapeFunction{}
	}
	shapes := make([]Shape, 0, n)
	for i := 0; i < n; i++ {
		// aspect from 4 down to 1/4, geometrically spaced
		t := float64(i) / float64(max(n-1, 1))
		aspect := 4 * math.Pow(1.0/16.0, t) // 4 → 0.25
		w := math.Sqrt(area / aspect)
		shapes = append(shapes, Shape{W: w, H: area / w})
	}
	return NewShapeFunction(shapes...)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// normalize sorts by width and prunes dominated shapes (same or larger
// width with same or larger height).
func (sf *ShapeFunction) normalize() {
	sort.Slice(sf.Shapes, func(i, j int) bool {
		if sf.Shapes[i].W != sf.Shapes[j].W {
			return sf.Shapes[i].W < sf.Shapes[j].W
		}
		return sf.Shapes[i].H < sf.Shapes[j].H
	})
	// With widths ascending, a shape is on the staircase iff its height is
	// strictly below every height seen so far (otherwise some narrower or
	// equal-width shape with smaller-or-equal height dominates it).
	out := sf.Shapes[:0]
	minH := math.Inf(1)
	for _, s := range sf.Shapes {
		if s.W <= 0 || s.H <= 0 {
			continue
		}
		if s.H < minH {
			out = append(out, s)
			minH = s.H
		}
	}
	sf.Shapes = out
}

// Empty reports whether the function offers no shape.
func (sf ShapeFunction) Empty() bool { return len(sf.Shapes) == 0 }

// MinArea returns the smallest-area shape.
func (sf ShapeFunction) MinArea() (Shape, error) {
	if sf.Empty() {
		return Shape{}, errors.New("vlsi: empty shape function")
	}
	best := sf.Shapes[0]
	for _, s := range sf.Shapes[1:] {
		if s.Area() < best.Area() {
			best = s
		}
	}
	return best, nil
}

// Best returns the shape minimizing area subject to an optional bounding box
// (0 means unconstrained).
func (sf ShapeFunction) Best(maxW, maxH float64) (Shape, error) {
	var best Shape
	found := false
	for _, s := range sf.Shapes {
		if maxW > 0 && s.W > maxW {
			continue
		}
		if maxH > 0 && s.H > maxH {
			continue
		}
		if !found || s.Area() < best.Area() {
			best = s
			found = true
		}
	}
	if !found {
		return Shape{}, errors.New("vlsi: no shape fits the bounding box")
	}
	return best, nil
}

// Cut is a slicing direction.
type Cut uint8

// Slicing directions.
const (
	// CutVertical places children side by side (widths add).
	CutVertical Cut = iota + 1
	// CutHorizontal stacks children (heights add).
	CutHorizontal
)

// String returns the cut name.
func (c Cut) String() string {
	if c == CutVertical {
		return "vertical"
	}
	return "horizontal"
}

// Combine merges two shape functions under a slicing cut using Stockmeyer's
// algorithm: each pair of compatible shapes yields a combined candidate;
// dominated candidates are pruned. For a vertical cut widths add and heights
// max; for a horizontal cut heights add and widths max.
func Combine(a, b ShapeFunction, cut Cut) ShapeFunction {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	var shapes []Shape
	for _, sa := range a.Shapes {
		for _, sb := range b.Shapes {
			var s Shape
			if cut == CutVertical {
				s = Shape{W: sa.W + sb.W, H: math.Max(sa.H, sb.H)}
			} else {
				s = Shape{W: math.Max(sa.W, sb.W), H: sa.H + sb.H}
			}
			shapes = append(shapes, s)
		}
	}
	return NewShapeFunction(shapes...)
}
