package vlsi

import (
	"fmt"
	"math/rand"

	"concord/internal/catalog"
)

// DOT names registered by RegisterCatalog.
const (
	DOTChip      = "chip"
	DOTCell      = "cell"
	DOTStdCell   = "stdcell"
	DOTFloorplan = "floorplan"
	DOTNetlist   = "netlist"
	DOTLayout    = "masklayout"
)

// NewCatalog returns a fresh catalog pre-loaded with the VLSI design object
// types.
func NewCatalog() *catalog.Catalog {
	cat := catalog.New()
	if err := RegisterCatalog(cat); err != nil {
		panic(err) // registration of static schemas cannot fail
	}
	return cat
}

// RegisterCatalog registers the VLSI design object types: the four-level
// cell hierarchy of Fig. 2 (chip ⊃ cell ⊃ stdcell) plus the domain artefact
// types (netlist, floorplan, mask layout) nested under them so delegation
// legality (part-of) follows the design plane.
func RegisterCatalog(cat *catalog.Catalog) error {
	dots := []*catalog.DOT{
		{
			Name: DOTStdCell,
			Attrs: []catalog.AttrDef{
				{Name: "name", Kind: catalog.KindString, Required: true},
				{Name: "area", Kind: catalog.KindFloat, Bounded: true, Min: 0, Max: 1e12},
			},
		},
		{
			Name: DOTNetlist,
			Attrs: []catalog.AttrDef{
				{Name: "cell", Kind: catalog.KindString, Required: true},
				{Name: "instances", Kind: catalog.KindInt},
				{Name: "nets", Kind: catalog.KindInt},
				{Name: "area", Kind: catalog.KindFloat},
				{Name: "data", Kind: catalog.KindString},
			},
		},
		{
			Name: DOTFloorplan,
			Attrs: []catalog.AttrDef{
				{Name: "cell", Kind: catalog.KindString, Required: true},
				{Name: "area", Kind: catalog.KindFloat, Bounded: true, Min: 0, Max: 1e12},
				{Name: "width", Kind: catalog.KindFloat},
				{Name: "height", Kind: catalog.KindFloat},
				{Name: "aspect", Kind: catalog.KindFloat},
				{Name: "wirelength", Kind: catalog.KindFloat},
				{Name: "cutnets", Kind: catalog.KindInt},
				{Name: "placements", Kind: catalog.KindInt},
				{Name: "step", Kind: catalog.KindInt},
			},
		},
		{
			Name: DOTLayout,
			Attrs: []catalog.AttrDef{
				{Name: "cell", Kind: catalog.KindString, Required: true},
				{Name: "area", Kind: catalog.KindFloat},
				{Name: "rects", Kind: catalog.KindInt},
				{Name: "layers", Kind: catalog.KindInt},
			},
		},
		{
			Name: DOTCell,
			Attrs: []catalog.AttrDef{
				{Name: "name", Kind: catalog.KindString, Required: true},
				{Name: "area", Kind: catalog.KindFloat},
			},
			Components: []catalog.ComponentDef{
				{Name: "subcells", DOT: DOTStdCell},
				{Name: "netlists", DOT: DOTNetlist},
				{Name: "floorplans", DOT: DOTFloorplan},
				{Name: "layouts", DOT: DOTLayout},
			},
		},
		{
			Name: DOTChip,
			Attrs: []catalog.AttrDef{
				{Name: "name", Kind: catalog.KindString, Required: true},
				{Name: "area", Kind: catalog.KindFloat},
			},
			Components: []catalog.ComponentDef{
				{Name: "cells", DOT: DOTCell},
				{Name: "netlists", DOT: DOTNetlist},
				{Name: "floorplans", DOT: DOTFloorplan},
				{Name: "layouts", DOT: DOTLayout},
			},
		},
	}
	for _, d := range dots {
		if err := cat.Register(d); err != nil {
			return err
		}
	}
	return nil
}

// FloorplanToObject converts a floorplan into a repository object of type
// "floorplan".
func FloorplanToObject(fp *Floorplan) *catalog.Object {
	return catalog.NewObject(DOTFloorplan).
		Set("cell", catalog.Str(fp.Cell)).
		Set("area", catalog.Float(fp.Area())).
		Set("width", catalog.Float(fp.Outline.W)).
		Set("height", catalog.Float(fp.Outline.H)).
		Set("aspect", catalog.Float(fp.Outline.Aspect())).
		Set("wirelength", catalog.Float(fp.WireLength)).
		Set("cutnets", catalog.Int(int64(fp.CutNets))).
		Set("placements", catalog.Int(int64(len(fp.Placements))))
}

// NetlistToObject converts a netlist into a repository object of type
// "netlist". The structural data is carried as an opaque rendering; the
// numeric summary attributes drive features.
func NetlistToObject(nl *Netlist) *catalog.Object {
	return catalog.NewObject(DOTNetlist).
		Set("cell", catalog.Str(nl.Name)).
		Set("instances", catalog.Int(int64(len(nl.Instances)))).
		Set("nets", catalog.Int(int64(len(nl.Nets)))).
		Set("area", catalog.Float(nl.TotalArea())).
		Set("data", catalog.Str(renderNetlist(nl)))
}

func renderNetlist(nl *Netlist) string {
	s := nl.Name + ";"
	for _, in := range nl.Instances {
		s += fmt.Sprintf("%s:%s:%.1f,", in.Name, in.Kind, in.Area)
	}
	s += ";"
	for _, n := range nl.Nets {
		s += n.Name + ":"
		for i, p := range n.Pins {
			if i > 0 {
				s += "|"
			}
			s += p
		}
		s += ","
	}
	return s
}

// LayoutToObject converts a mask layout into a repository object.
func LayoutToObject(ml *MaskLayout) *catalog.Object {
	return catalog.NewObject(DOTLayout).
		Set("cell", catalog.Str(ml.Cell)).
		Set("area", catalog.Float(ml.Area())).
		Set("rects", catalog.Int(int64(len(ml.Rects)))).
		Set("layers", catalog.Int(int64(ml.Layers)))
}

// Cell is a node of the design object hierarchy (Fig. 2 right-hand side).
type Cell struct {
	// Name names the cell.
	Name string
	// Level is the hierarchy level.
	Level Level
	// AreaEstimate is the initial area budget.
	AreaEstimate float64
	// Children are the subcells.
	Children []*Cell
	// Netlist is the structural description of this cell over its
	// children (nil before structure synthesis).
	Netlist *Netlist
}

// Walk visits the cell and its subcells depth-first.
func (c *Cell) Walk(fn func(*Cell)) {
	if c == nil {
		return
	}
	fn(c)
	for _, ch := range c.Children {
		ch.Walk(fn)
	}
}

// Count returns the number of cells in the subtree.
func (c *Cell) Count() int {
	n := 0
	c.Walk(func(*Cell) { n++ })
	return n
}

// GenerateHierarchy builds a deterministic random cell hierarchy of the
// given fanout and depth (depth 3 yields the chip→module→block→stdcell
// hierarchy of Fig. 2) with a netlist at every non-leaf cell connecting its
// children. The rand seed makes workloads reproducible.
func GenerateHierarchy(seed int64, name string, fanout, depth int) *Cell {
	rng := rand.New(rand.NewSource(seed))
	var build func(name string, level Level, d int) *Cell
	build = func(name string, level Level, d int) *Cell {
		c := &Cell{Name: name, Level: level}
		if d == 0 {
			c.AreaEstimate = 2 + rng.Float64()*14
			return c
		}
		nl := &Netlist{Name: name}
		for i := 0; i < fanout; i++ {
			child := build(fmt.Sprintf("%s.%c", name, 'A'+i), level+1, d-1)
			c.Children = append(c.Children, child)
			c.AreaEstimate += child.AreaEstimate
			nl.Instances = append(nl.Instances, Instance{Name: child.Name, Kind: "cell", Area: child.AreaEstimate})
		}
		// Random nets between children: fanout+2 two-pin nets plus one
		// global net.
		for i := 0; i < fanout+2; i++ {
			a := c.Children[rng.Intn(len(c.Children))].Name
			b := c.Children[rng.Intn(len(c.Children))].Name
			if a != b {
				nl.Nets = append(nl.Nets, Net{Name: fmt.Sprintf("%s.n%d", name, i), Pins: []string{a, b}})
			}
		}
		var all []string
		for _, ch := range c.Children {
			all = append(all, ch.Name)
		}
		nl.Nets = append(nl.Nets, Net{Name: name + ".clk", Pins: all})
		c.Netlist = nl
		return c
	}
	return build(name, LevelChip, depth)
}

// ShapesForChildren generates the shape functions of a cell's children
// (tool 3 applied per subcell).
func ShapesForChildren(c *Cell, alternatives int) map[string]ShapeFunction {
	out := make(map[string]ShapeFunction, len(c.Children))
	for _, ch := range c.Children {
		out[ch.Name] = GenerateShapes(ch.AreaEstimate, alternatives)
	}
	return out
}
