// Package leakcheck is a dependency-free goroutine-leak guard for test
// binaries. The failure-lifecycle layer runs background goroutines all over
// the stack — ClientTM heartbeats, the ServerTM lease reaper, the notifier
// drain, transport accept loops — and every one of them must terminate when
// its owner shuts down. Main wraps testing.M: after the package's tests
// finish it polls until no goroutine is still executing this module's code,
// and fails the binary with a full stack dump of the survivors otherwise.
//
// The check is stack-based rather than count-based so runtime and testing
// internals (GC workers, test output pumps) never produce false positives:
// only goroutines with a concord frame on their stack count as leaks.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies this module's frames in a goroutine stack dump.
const modulePrefix = "concord/internal/"

// DefaultTimeout bounds how long Check waits for stragglers to exit.
// Shutdown paths signal background goroutines without joining them (e.g.
// ClientTM.Crash), so the guard polls rather than asserting instantly.
const DefaultTimeout = 5 * time.Second

// Check polls until no goroutine other than the caller is executing code
// from this module, or timeout passes. It returns "" on success and the
// stack dump of the leaked goroutines otherwise.
func Check(timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	for {
		leaked := moduleGoroutines()
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			return strings.Join(leaked, "\n\n")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Main runs the package's tests and then the leak check, returning the exit
// code for os.Exit. A leak fails the binary even when every test passed:
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
func Main(m *testing.M) int {
	code := m.Run()
	if dump := Check(DefaultTimeout); dump != "" {
		fmt.Fprintf(os.Stderr, "leakcheck: goroutines still running module code after tests:\n\n%s\n", dump)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// moduleGoroutines returns the stack records of every goroutine (other than
// the calling one) with a frame inside this module.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	records := strings.Split(string(buf), "\n\n")
	var out []string
	for i, r := range records {
		if i == 0 {
			continue // the calling goroutine
		}
		if strings.Contains(r, "testing.(*M).Run(") {
			// The TestMain goroutine: parked in the test runner while a
			// test calls Check directly, with the package's TestMain (a
			// module frame) below it on the stack.
			continue
		}
		if strings.Contains(r, modulePrefix) {
			out = append(out, r)
		}
	}
	return out
}
