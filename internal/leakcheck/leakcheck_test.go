package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCheckCleanWhenNoModuleGoroutines passes on an idle process: the only
// goroutines alive are runtime/testing internals and the caller.
func TestCheckCleanWhenNoModuleGoroutines(t *testing.T) {
	if dump := Check(100 * time.Millisecond); dump != "" {
		t.Fatalf("clean process reported leaks:\n%s", dump)
	}
}

// TestCheckCatchesModuleGoroutine plants a goroutine parked inside module
// code and asserts the guard names it, then releases it and asserts the
// guard goes clean again.
func TestCheckCatchesModuleGoroutine(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); parkInModule(release) }()
	dump := ""
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if dump = Check(10 * time.Millisecond); dump != "" {
			break
		}
	}
	if dump == "" {
		t.Fatal("guard missed a goroutine parked in module code")
	}
	if !strings.Contains(dump, "parkInModule") {
		t.Fatalf("leak dump does not name the parked frame:\n%s", dump)
	}
	close(release)
	<-done
	if dump := Check(time.Second); dump != "" {
		t.Fatalf("guard still reports leaks after release:\n%s", dump)
	}
}

// parkInModule blocks inside a module frame until released. It is a named
// function (not a closure) so the leak dump carries a recognizable symbol.
func parkInModule(release <-chan struct{}) {
	<-release
}
