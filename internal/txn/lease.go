package txn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"concord/internal/binenc"
)

// Workstation failure lifecycle (DESIGN.md §5.3). A workstation's first
// Begin-of-DOP opens a lease-based session with the server-TM; a heartbeat
// goroutine on the client-TM renews it. When a workstation falls silent for
// LeaseTTL (crash, partition, power-off — indistinguishable from here), the
// server-side reaper reclaims its *volatile* footprint: staged-but-unprepared
// checkin branches are presumed-abort discarded, derivation and short locks
// of its DOPs are bulk-released (queued waiters evicted, blocked designers
// promoted), and its cache-callback registrations are dropped so the notifier
// stops burning retries on a dead endpoint.
//
// Durable long-transaction state deliberately survives: persisted DOP
// contexts (client log), checked-out DOV history, scope grants, and —
// critically — *prepared* checkin branches. A prepared branch may correspond
// to a durable commit decision in the dead workstation's coordinator log, and
// ServerTM.Commit treats an unknown transaction as already-committed, so
// reaping it would silently lose a committed checkin. Prepared branches stay
// pinned until the recovered coordinator resolves them.
//
// A recovered workstation calls Rejoin with the DOPs restored from its log:
// the lease is re-established and the registrations re-created (Begin is
// idempotent), after which processing resumes at the last recovery point.

// Lease/health RPC methods (served by the server-TM alongside the DOP
// protocol).
const (
	// MethodHeartbeat renews a workstation lease; payload is the raw
	// workstation ID. Answers ErrNoLease when the server holds no lease —
	// the cue for the client to Rejoin.
	MethodHeartbeat = "tm/heartbeat"
	// MethodRejoin re-establishes a lease and re-registers recovered DOPs
	// after a workstation restart or a reaped lease.
	MethodRejoin = "tm/rejoin"
	// MethodHealth reports the server's degradation mode (repo.Health) so
	// workstations and operators can distinguish read-only degradation from
	// full fail-stop.
	MethodHealth = "tm/health"
)

// ErrNoLease reports an operation under an expired or never-established
// workstation lease. Clients react by re-joining, not by retrying.
var ErrNoLease = errors.New("txn: no lease for workstation")

// Fault points of the lease lifecycle.
const (
	// FaultLeaseExpired fires at the start of every reaper pass; arming it
	// makes the pass skip (a delayed reaper), widening the window in which
	// an expired workstation's locks are still held.
	FaultLeaseExpired = "txn:lease-expired"
	// FaultHeartbeatDrop fires on every heartbeat; arming it refuses the
	// renewal, simulating heartbeat loss without a real partition.
	FaultHeartbeatDrop = "txn:heartbeat-drop"
)

// DefaultLeaseTTL is the lease lifetime when ServerTM.LeaseTTL is unset.
// Workstations heartbeat at a fraction of this (core defaults to TTL/4).
const DefaultLeaseTTL = 10 * time.Second

// wsLease is one workstation's session: its expiry and the DOPs opened under
// it (the reclamation unit when it expires).
type wsLease struct {
	expires time.Time
	dops    map[string]bool
}

// touchLease creates or renews the lease of ws and, when dop is non-empty,
// records the DOP under it.
func (s *ServerTM) touchLease(ws, dop string) {
	if ws == "" {
		return
	}
	ttl := s.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	l, ok := s.leases[ws]
	if !ok {
		l = &wsLease{dops: make(map[string]bool)}
		s.leases[ws] = l
	}
	l.expires = time.Now().Add(ttl)
	if dop != "" {
		l.dops[dop] = true
	}
}

// Heartbeat renews the lease of ws. ErrNoLease (a registered wire sentinel)
// tells the workstation the server no longer knows it — it must Rejoin.
func (s *ServerTM) Heartbeat(ws string) error {
	if err := s.Faults.At(FaultHeartbeatDrop); err != nil {
		return err
	}
	if ws == "" {
		return fmt.Errorf("%w: empty workstation ID", ErrNoLease)
	}
	ttl := s.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	l, ok := s.leases[ws]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoLease, ws)
	}
	l.expires = time.Now().Add(ttl)
	return nil
}

// Rejoin re-establishes the lease of a recovered workstation and re-registers
// the DOPs it restored from its recovery log (Begin is idempotent, so a
// Rejoin racing a never-expired lease is harmless).
func (s *ServerTM) Rejoin(m rejoinMsg) error {
	if m.WS == "" {
		return fmt.Errorf("%w: rejoin without workstation ID", ErrNoLease)
	}
	s.touchLease(m.WS, "")
	for _, p := range m.DOPs {
		if err := s.beginWS(p.DOP, p.DA, m.WS); err != nil {
			return err
		}
	}
	return nil
}

// HasLease reports whether ws currently holds a lease (diagnostics, tests).
func (s *ServerTM) HasLease(ws string) bool {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	_, ok := s.leases[ws]
	return ok
}

// dropDOPFromLease forgets a DOP's lease membership (End-of-DOP).
func (s *ServerTM) dropDOPFromLease(ws, dop string) {
	if ws == "" {
		return
	}
	s.leaseMu.Lock()
	if l, ok := s.leases[ws]; ok {
		delete(l.dops, dop)
	}
	s.leaseMu.Unlock()
}

// StartLeaseReaper launches the background reaper, expiring silent leases
// every LeaseTTL/4. Idempotent; StopLeaseReaper (or nothing at all — tests
// may drive ReapExpiredLeases directly) shuts it down.
func (s *ServerTM) StartLeaseReaper() {
	s.leaseMu.Lock()
	if s.reapStop != nil {
		s.leaseMu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.reapStop, s.reapDone = stop, done
	s.leaseMu.Unlock()
	ttl := s.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	go func() {
		defer close(done)
		t := time.NewTicker(ttl / 4)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.ReapExpiredLeases()
			}
		}
	}()
}

// StopLeaseReaper stops the background reaper and waits for it to exit.
func (s *ServerTM) StopLeaseReaper() {
	s.leaseMu.Lock()
	stop, done := s.reapStop, s.reapDone
	s.reapStop, s.reapDone = nil, nil
	s.leaseMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ReapExpiredLeases runs one reaper pass synchronously and returns the number
// of workstations reclaimed. Exported so tests and scenarios can force expiry
// handling deterministically instead of sleeping through reaper ticks.
func (s *ServerTM) ReapExpiredLeases() int {
	if err := s.Faults.At(FaultLeaseExpired); err != nil {
		return 0 // simulated reaper delay: skip the pass
	}
	now := time.Now()
	type victim struct {
		ws   string
		dops []string
	}
	var victims []victim
	s.leaseMu.Lock()
	for ws, l := range s.leases {
		if now.After(l.expires) {
			v := victim{ws: ws, dops: make([]string, 0, len(l.dops))}
			for dop := range l.dops {
				v.dops = append(v.dops, dop)
			}
			sort.Strings(v.dops)
			victims = append(victims, v)
			delete(s.leases, ws)
		}
	}
	s.leaseMu.Unlock()
	for _, v := range victims {
		s.reapWorkstation(v.ws, v.dops)
	}
	return len(victims)
}

// reapWorkstation reclaims the volatile footprint of a dead workstation:
// presumed-abort of its unprepared staged branches, bulk lock release with
// waiter eviction per DOP, DOP deregistration, and cache-callback removal.
// Prepared branches are pinned (see the package comment above).
func (s *ServerTM) reapWorkstation(ws string, dops []string) {
	dopSet := make(map[string]bool, len(dops))
	for _, d := range dops {
		dopSet[d] = true
	}
	// Presumed abort: unprepared staged branches vanish with their owner.
	// Their stage records are durable only from Prepare on, but the persist
	// happens just before the promise, so delete defensively.
	var orphaned []string
	for i := range s.staged {
		sh := &s.staged[i]
		sh.mu.Lock()
		for txid, sc := range sh.m {
			if dopSet[sc.dop] && !sc.prepared {
				delete(sh.m, txid)
				orphaned = append(orphaned, txid)
			}
		}
		sh.mu.Unlock()
	}
	for _, txid := range orphaned {
		s.repo.DeleteMeta(stagedMetaPrefix + txid) //nolint:errcheck // cleanup
	}
	for _, dop := range dops {
		sh := s.dopShard(dop)
		sh.mu.Lock()
		delete(sh.m, dop)
		sh.mu.Unlock()
		// ReleaseOwner (not ReleaseAll): a handler goroutine of the dead
		// workstation may still be queued on a lock; eviction unblocks it
		// and promotes live waiters.
		s.locks.ReleaseOwner(dop)
	}
	s.cdir.dropWS(ws)
}

// HealthInfo reports the repository degradation mode plus the replication
// role (MethodHealth backend). Without a repl reporter the server presents as
// a standalone primary at epoch 0.
func (s *ServerTM) HealthInfo() healthResp {
	h := s.repo.Health()
	out := healthResp{Mode: h.Mode, Cause: h.Cause, Role: "primary"}
	if f := s.replInfo.Load(); f != nil {
		out.Role, out.Epoch, out.LagRecords, out.LagBytes = (*f)()
	}
	return out
}

// SetReplInfo installs the replication reporter consulted by MethodHealth:
// the server's role ("primary", "standby" or "promoting"), its fencing epoch,
// and the shipping lag in records and bytes. core wires it to the repl
// sender (primary) or receiver (standby); nil keeps the standalone default.
func (s *ServerTM) SetReplInfo(f func() (role string, epoch, lagRecords, lagBytes uint64)) {
	if f == nil {
		s.replInfo.Store(nil)
		return
	}
	s.replInfo.Store(&f)
}

// EncodeHealthInfo encodes a MethodHealth answer from the given record.
// Standby sites use it to answer health probes before a full server-TM
// exists at their address.
func EncodeHealthInfo(h ServerHealthInfo) []byte {
	return healthResp{
		Mode: h.Mode, Cause: h.Cause, Role: h.Role,
		Epoch: h.Epoch, LagRecords: h.LagRecords, LagBytes: h.LagBytes,
	}.encode()
}

// dopPair names one DOP registration a rejoining workstation restores.
type dopPair struct {
	DOP string
	DA  string
}

// rejoinMsg re-establishes a workstation session after restart or reap.
type rejoinMsg struct {
	WS   string
	DOPs []dopPair
}

func (m rejoinMsg) encode() []byte {
	w := binenc.NewWriter(32 + 32*len(m.DOPs))
	w.Str(m.WS)
	w.U64(uint64(len(m.DOPs)))
	for _, p := range m.DOPs {
		w.Str(p.DOP)
		w.Str(p.DA)
	}
	return w.Bytes()
}

func decodeRejoin(data []byte) (rejoinMsg, error) {
	r := binenc.NewReader(data)
	m := rejoinMsg{WS: r.Str()}
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		m.DOPs = append(m.DOPs, dopPair{DOP: r.Str(), DA: r.Str()})
	}
	return m, wireErr(r)
}

// healthResp is the MethodHealth answer: the server's degradation mode
// ("ok", "degraded" or "failstop") with the latched cause, and (wire rev 4)
// its replication role, fencing epoch and shipping lag.
type healthResp struct {
	Mode  string
	Cause string
	// Role is "primary", "standby" or "promoting" ("primary" when the
	// server runs unreplicated).
	Role string
	// Epoch is the replication fencing term the server serves under.
	Epoch uint64
	// LagRecords / LagBytes measure how far the standby trails (as seen from
	// a primary's sender; zero on a standby and in sync steady state).
	LagRecords uint64
	LagBytes   uint64
}

func (m healthResp) encode() []byte {
	w := binenc.NewWriter(64 + len(m.Cause))
	w.Str(m.Mode)
	w.Str(m.Cause)
	w.Str(m.Role)
	w.U64(m.Epoch)
	w.U64(m.LagRecords)
	w.U64(m.LagBytes)
	return w.Bytes()
}

func decodeHealth(data []byte) (healthResp, error) {
	r := binenc.NewReader(data)
	m := healthResp{Mode: r.Str(), Cause: r.Str(), Role: r.Str()}
	m.Epoch = r.U64()
	m.LagRecords = r.U64()
	m.LagBytes = r.U64()
	return m, wireErr(r)
}
