package txn

import (
	"os"
	"testing"

	"concord/internal/leakcheck"
)

// TestMain guards the package against leaked background goroutines: client
// heartbeat loops and the server-side lease reaper must terminate when the
// stacks the tests build are torn down.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
