package txn

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/rpc"
	"concord/internal/version"
)

// bigObject builds a floorplan whose encoding is roughly size bytes, with a
// tag mixed in so distinct objects differ.
func bigObject(tag string, size int) *catalog.Object {
	payload := strings.Repeat(tag+"-0123456789abcdef", size/(len(tag)+17)+1)
	return catalog.NewObject("floorplan").
		Set("cell", catalog.Str(payload[:size])).
		Set("area", catalog.Float(100))
}

// seedBig installs a large root version.
func (s *stack) seedBig(t *testing.T, id string, size int) version.ID {
	t.Helper()
	v := &version.DOV{ID: version.ID(id), DOT: "floorplan", DA: "da1",
		Object: bigObject(id, size), Status: version.StatusWorking}
	if err := s.repo.Checkin(v, true); err != nil {
		t.Fatal(err)
	}
	if err := s.scopes.Own("da1", id); err != nil {
		t.Fatal(err)
	}
	return version.ID(id)
}

// wireCallbacks connects the server's invalidation push to a client cache
// the way core does, returning the notifier for flushing.
func (s *stack) wireCallbacks(t *testing.T, tm *ClientTM, addr string) *rpc.Notifier {
	t.Helper()
	if err := s.trans.Serve(addr, rpc.Dedup(tm.Cache().Handler())); err != nil {
		t.Fatal(err)
	}
	tm.SetCallbackAddr(addr)
	cb := rpc.NewClient(s.trans, "srv-cb-"+addr)
	cb.Backoff = 0
	n := rpc.NewNotifier(cb, 0)
	t.Cleanup(n.Close)
	s.server.SetNotifier(n)
	s.repo.SetChangeHook(s.server.VersionChanged)
	return n
}

func TestRecheckoutNotModified(t *testing.T) {
	s := newStack(t, "")
	const size = 64 << 10
	v0 := s.seedBig(t, "big0", size)

	dop1, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	first, err := dop1.Checkout(v0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := dop1.Abort(); err != nil {
		t.Fatal(err)
	}
	before := s.tm.WireStats()
	if before.FullCheckouts != 1 || before.NotModified != 0 {
		t.Fatalf("first checkout stats: %+v", before)
	}

	dop2, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	second, err := dop2.Checkout(v0, false)
	if err != nil {
		t.Fatal(err)
	}
	after := s.tm.WireStats()
	if after.NotModified != 1 {
		t.Fatalf("re-checkout was not NotModified: %+v", after)
	}
	// O(hash) bytes: the response carries metadata + hash, no payload.
	respBytes := after.CheckoutBytesIn - before.CheckoutBytesIn
	if respBytes > 1024 {
		t.Fatalf("NotModified response was %d bytes for a %d-byte object", respBytes, size)
	}
	e1, _ := catalog.EncodeObject(first)
	e2, _ := catalog.EncodeObject(second)
	if !bytes.Equal(e1, e2) {
		t.Fatal("cached re-checkout returned different content")
	}
}

func TestCheckinShipsVerifiedDelta(t *testing.T) {
	s := newStack(t, "")
	const size = 64 << 10
	v0 := s.seedBig(t, "big0", size)

	dop, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(99)) // small edit to a large object
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	newID, err := dop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}
	st := s.tm.WireStats()
	if st.DeltaCheckins != 1 {
		t.Fatalf("checkin did not ship a delta: %+v", st)
	}
	if st.CheckinBytesOut*5 > uint64(size) {
		t.Fatalf("delta checkin shipped %d bytes for a %d-byte object (want ≥ 5x smaller)", st.CheckinBytesOut, size)
	}
	// Content hash asserted on both ends: what the server installed equals
	// the workspace byte-for-byte.
	stored, err := s.repo.Get(newID)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, _ := catalog.EncodeObject(obj)
	gotEnc, _ := catalog.EncodeObject(stored.Object)
	if !bytes.Equal(wantEnc, gotEnc) {
		t.Fatal("server-side reconstruction differs from the workspace")
	}
}

func TestCheckoutDeltaAgainstCachedRelative(t *testing.T) {
	s := newStack(t, "")
	const size = 64 << 10
	v0 := s.seedBig(t, "big0", size)

	// ws1 derives v1 from v0 with a small edit.
	dop, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(42))
	dop.SetWorkspace(obj) //nolint:errcheck
	v1, err := dop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}

	// ws2 holds v0 and then checks out v1: the payload must travel as a
	// delta against its cached v0.
	client2 := rpc.NewClient(s.trans, "ws2")
	client2.Backoff = 0
	tm2, _, err := NewClientTM("ws2", client2, serverAddr, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tm2.Close() })
	dop2, err := tm2.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop2.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}
	mid := tm2.WireStats()
	got, err := dop2.Checkout(v1, false)
	if err != nil {
		t.Fatal(err)
	}
	st := tm2.WireStats()
	if st.DeltaCheckouts != 1 {
		t.Fatalf("second checkout was not a delta: %+v", st)
	}
	if in := st.CheckoutBytesIn - mid.CheckoutBytesIn; in*5 > uint64(size) {
		t.Fatalf("delta checkout transferred %d bytes for a %d-byte object", in, size)
	}
	wantEnc, _ := catalog.EncodeObject(obj)
	gotEnc, _ := catalog.EncodeObject(got)
	if !bytes.Equal(wantEnc, gotEnc) {
		t.Fatal("delta checkout reconstructed wrong content")
	}
}

func TestCallbackSupersessionAndStatus(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedBig(t, "big0", 8<<10)
	n := s.wireCallbacks(t, s.tm, "cb/ws1")

	dop, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}
	if s.server.CacheRegistrations() == 0 {
		t.Fatal("checkout did not register the workstation cache")
	}

	// Another workstation derives v1 from v0: ws1's cached v0 must learn it
	// was superseded.
	client2 := rpc.NewClient(s.trans, "ws2")
	client2.Backoff = 0
	tm2, _, err := NewClientTM("ws2", client2, serverAddr, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tm2.Close() })
	dop2, err := tm2.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dop2.Checkout(v0, true)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(7))
	dop2.SetWorkspace(obj) //nolint:errcheck
	v1, err := dop2.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if by := s.tm.Cache().SupersededBy(v0); by != v1 {
		t.Fatalf("cached %s superseded by %q, want %s", v0, by, v1)
	}

	// A status promotion refreshes the cached record in place…
	if err := s.repo.SetStatus(v0, version.StatusPropagated); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if st, ok := s.tm.Cache().Status(v0); !ok || st != version.StatusPropagated {
		t.Fatalf("cached status = %v (ok=%t), want propagated", st, ok)
	}
	// …and an invalidation evicts it.
	if err := s.repo.SetStatus(v0, version.StatusInvalid); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if _, ok := s.tm.Cache().Status(v0); ok {
		t.Fatal("invalid version still cached after callback")
	}
}

// TestInvalidationRacingCheckout hammers checkouts of a version while its
// status flips concurrently (each flip pushing a callback). The cache must
// neither corrupt state nor fail a checkout; when the dust settles, a fresh
// checkout serves the server's current truth.
func TestInvalidationRacingCheckout(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedBig(t, "big0", 16<<10)
	n := s.wireCallbacks(t, s.tm, "cb/ws1")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := version.StatusWorking
			if i%2 == 1 {
				st = version.StatusPropagated
			}
			if err := s.repo.SetStatus(v0, st); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	for round := 0; round < 60; round++ {
		dop, err := s.tm.Begin(fmt.Sprintf("race-%d", round), "da1")
		if err != nil {
			t.Fatal(err)
		}
		obj, err := dop.Checkout(v0, false)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		enc, _ := catalog.EncodeObject(obj)
		want, _, err := s.repo.EncodedObject(v0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, want) {
			t.Fatalf("round %d: checkout content diverged from repository", round)
		}
		if err := dop.Abort(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	n.Flush()

	// Quiesced: one more checkout must serve the repository's current
	// status (NotModified responses refresh it under the server's lock).
	cur, err := s.repo.Get(v0)
	if err != nil {
		t.Fatal(err)
	}
	dop, err := s.tm.Begin("race-final", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.tm.Cache().Status(v0); !ok || st != cur.Status {
		t.Fatalf("cached status %v after quiesce, repository has %v", st, cur.Status)
	}
}

// TestRestartStaleCacheEpoch crashes a workstation whose cache holds v0,
// changes the world while it is down (missed callbacks), and restarts it:
// the new incarnation must bump its epoch, ignore callbacks addressed to the
// old one, and serve fresh state on its first checkout.
func TestRestartStaleCacheEpoch(t *testing.T) {
	dir := t.TempDir()
	s := newStack(t, dir)
	v0 := s.seedBig(t, "big0", 32<<10)

	dop, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}
	oldEpoch := s.tm.Cache().Epoch()
	s.tm.Crash()

	// While the workstation is down: v0 is promoted (the callback is lost).
	if err := s.repo.SetStatus(v0, version.StatusFinal); err != nil {
		t.Fatal(err)
	}

	// Restart: same disk, fresh incarnation.
	client2 := rpc.NewClient(s.trans, "ws1@2")
	client2.Backoff = 0
	tm2, _, err := NewClientTM("ws1", client2, serverAddr, dir+"/ws1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tm2.Close() })
	if got := tm2.Cache().Epoch(); got != oldEpoch+1 {
		t.Fatalf("epoch after restart = %d, want %d", got, oldEpoch+1)
	}
	if tm2.Cache().Len() == 0 {
		t.Fatal("persisted cache entries were not recovered")
	}
	// A callback addressed to the dead incarnation must be ignored.
	tm2.Cache().apply(invalidateMsg{Epoch: oldEpoch, Entries: []invalidation{
		{DOV: v0, Kind: invStatus, Status: version.StatusInvalid},
	}})
	if tm2.Cache().Len() == 0 {
		t.Fatal("stale-epoch callback was applied")
	}

	// First checkout after restart: payload satisfied from the cache
	// (NotModified — the bytes never changed), status refreshed to Final.
	// (An explicit DOP id: the crashed DOP was recovered and owns dop-0001.)
	dop2, err := tm2.Begin("ws1/restart-dop", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop2.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}
	st := tm2.WireStats()
	if st.NotModified != 1 {
		t.Fatalf("restart re-checkout stats: %+v", st)
	}
	if got, ok := tm2.Cache().Status(v0); !ok || got != version.StatusFinal {
		t.Fatalf("stale cache served status %v after restart, want final", got)
	}
}

// TestDeltaWrongBaseHardFails sends checkin deltas with a lying base hash
// and with content that does not match its declared hash: the server must
// refuse with ErrDeltaBase (observable through the RPC error chain) and the
// repository must stay untouched.
func TestDeltaWrongBaseHardFails(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedBig(t, "big0", 8<<10)
	before := s.repo.DOVCount()

	client := rpc.NewClient(s.trans, "evil")
	client.Backoff = 0
	if _, err := client.Call(serverAddr, MethodBegin, beginMsg{DOP: "evil/dop", DA: "da1"}.encode()); err != nil {
		t.Fatal(err)
	}
	baseEnc, baseHash, err := s.repo.EncodedObject(v0)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := catalog.EncodeObject(bigObject("target", 8<<10))
	delta := binenc.Delta(baseEnc, target)

	lyingHash := append([]byte(nil), baseHash...)
	lyingHash[0] ^= 0xFF
	cases := []stageMsg{
		// Wrong base hash: claims a base the server's bytes don't match.
		{DOP: "evil/dop", TxID: "tx-a", Root: true, Hash: catalog.HashEncoded(target),
			DOV:    dovWire{ID: "evil-a", DOT: "floorplan", DA: "da1"},
			BaseID: v0, BaseHash: lyingHash, Delta: delta},
		// Right base, but declared content hash disagrees with the
		// reconstruction.
		{DOP: "evil/dop", TxID: "tx-b", Root: true, Hash: lyingHash,
			DOV:    dovWire{ID: "evil-b", DOT: "floorplan", DA: "da1"},
			BaseID: v0, BaseHash: baseHash, Delta: delta},
		// Unknown base version.
		{DOP: "evil/dop", TxID: "tx-c", Root: true, Hash: catalog.HashEncoded(target),
			DOV:    dovWire{ID: "evil-c", DOT: "floorplan", DA: "da1"},
			BaseID: "no-such-dov", BaseHash: baseHash, Delta: delta},
		// Full form whose payload does not match its declared hash.
		{DOP: "evil/dop", TxID: "tx-d", Root: true, Hash: lyingHash,
			DOV: dovWire{ID: "evil-d", DOT: "floorplan", DA: "da1", Object: target}},
	}
	for _, m := range cases {
		_, err := client.Call(serverAddr, MethodStage, m.encode())
		if !errors.Is(err, rpc.ErrRemote) {
			t.Fatalf("%s: err = %v, want remote error", m.TxID, err)
		}
		if !errors.Is(err, ErrDeltaBase) {
			t.Fatalf("%s: err = %v, want ErrDeltaBase in the chain", m.TxID, err)
		}
	}
	if got := s.repo.DOVCount(); got != before {
		t.Fatalf("corrupt deltas changed the repository: %d -> %d DOVs", before, got)
	}
	// And nothing is staged for any of the refused transactions.
	for _, tx := range []string{"tx-a", "tx-b", "tx-c", "tx-d"} {
		if vote, _ := s.server.Prepare(tx); vote != rpc.VoteAbort {
			t.Fatalf("%s: refused stage still prepared", tx)
		}
	}
}

// TestCheckinErrorChainUnwraps asserts the %w chain end-to-end: an
// application-level refusal during staging surfaces the original sentinel
// through transport, client retry layer and client-TM wrapping.
func TestCheckinErrorChainUnwraps(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)

	// Stage for a DOP the server has never heard of.
	client := rpc.NewClient(s.trans, "stray")
	client.Backoff = 0
	obj, _ := catalog.EncodeObject(bigObject("x", 256))
	_, err := client.Call(serverAddr, MethodStage, stageMsg{
		DOP: "ghost/dop", TxID: "tx-ghost", Root: true,
		DOV: dovWire{ID: "gv", DOT: "floorplan", DA: "da1", Object: obj},
	}.encode())
	if !errors.Is(err, ErrUnknownDOP) {
		t.Fatalf("stage for unknown DOP: err = %v, want ErrUnknownDOP in chain", err)
	}

	// A server-refused checkin (schema violation at prepare) surfaces
	// ErrCheckinFailed from DOP.Checkin.
	dop, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}
	bad := catalog.NewObject("floorplan").Set("area", catalog.Float(50)) // missing required "cell"
	dop.SetWorkspace(bad)                                                //nolint:errcheck
	if _, err := dop.Checkin(version.StatusWorking, false); !errors.Is(err, ErrCheckinFailed) {
		t.Fatalf("refused checkin: err = %v, want ErrCheckinFailed", err)
	}

	// A transport-level failure keeps its cause too: partition the server.
	s.trans.Partition(serverAddr)
	dop.SetWorkspace(bigObject("y", 256)) //nolint:errcheck
	_, err = dop.Checkin(version.StatusWorking, false)
	if !errors.Is(err, rpc.ErrUnreachable) {
		t.Fatalf("partitioned checkin: err = %v, want ErrUnreachable in chain", err)
	}
	s.trans.Heal(serverAddr)
}

// TestCacheDirBounded pins the server-side registration bound: a
// workstation registering far more versions than its cache can hold must
// not grow the directory past maxRegsPerWS (oldest evicted first), keeping
// server memory O(workstations) rather than O(history).
func TestCacheDirBounded(t *testing.T) {
	d := newCacheDir()
	n := maxRegsPerWS + 500
	for i := 0; i < n; i++ {
		d.register("ws1", "cb/ws1", 1, version.ID(fmt.Sprintf("v%05d", i)))
	}
	if got := d.registrations(); got != maxRegsPerWS {
		t.Fatalf("registrations = %d, want bound %d", got, maxRegsPerWS)
	}
	// Oldest evicted, newest kept.
	if regs := d.collect([]invalidation{{DOV: "v00000"}}); len(regs) != 0 {
		t.Fatal("oldest registration survived the bound")
	}
	if regs := d.collect([]invalidation{{DOV: version.ID(fmt.Sprintf("v%05d", n-1))}}); len(regs) != 1 {
		t.Fatal("newest registration missing")
	}
	// drop() clears both indexes.
	for i := 0; i < n; i++ {
		d.drop(version.ID(fmt.Sprintf("v%05d", i)))
	}
	if got := d.registrations(); got != 0 {
		t.Fatalf("registrations after drop-all = %d", got)
	}
}

// TestCacheEvictionBounded fills the cache past its limit and checks LRU
// eviction keeps it bounded without breaking checkouts.
func TestCacheEvictionBounded(t *testing.T) {
	s := newStack(t, "")
	s.tm.Cache().MaxEntries = 4
	for i := 0; i < 10; i++ {
		s.seedBig(t, fmt.Sprintf("v%02d", i), 2<<10)
	}
	for i := 0; i < 10; i++ {
		dop, err := s.tm.Begin("", "da1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dop.Checkout(version.ID(fmt.Sprintf("v%02d", i)), false); err != nil {
			t.Fatal(err)
		}
		if err := dop.Abort(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.tm.Cache().Len(); got > 4 {
		t.Fatalf("cache holds %d entries, limit 4", got)
	}
	// Evicted versions simply refetch in full.
	dop, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout("v00", false); err != nil {
		t.Fatal(err)
	}
}
