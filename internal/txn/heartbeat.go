package txn

import (
	"errors"
	"sort"
	"time"

	"concord/internal/rpc"
)

// Workstation half of the lease lifecycle: a heartbeat goroutine renews the
// session the workstation's Begin-of-DOP calls opened. A heartbeat answered
// with ErrNoLease means the server forgot us — it restarted (leases are
// volatile) or the reaper reclaimed an expired lease — and the loop reacts by
// Rejoining with the DOPs currently registered, restoring the session without
// designer intervention.

// DefaultHeartbeatDivisor derives the heartbeat period from the server's
// lease TTL when the caller does not choose one: TTL/4 survives two lost
// heartbeats and a retry before the lease expires.
const DefaultHeartbeatDivisor = 4

// StartHeartbeat launches the lease-renewal goroutine, sending a heartbeat
// every `every`. Idempotent while running; StopHeartbeat ends it. Heartbeats
// ride the deadline-propagating call path with a budget of one period — a
// renewal that cannot make it in time is worthless, so it must not occupy the
// wire longer than that.
func (tm *ClientTM) StartHeartbeat(every time.Duration) {
	if every <= 0 {
		every = DefaultLeaseTTL / DefaultHeartbeatDivisor
	}
	tm.mu.Lock()
	if tm.hbStop != nil {
		tm.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	tm.hbStop, tm.hbDone = stop, done
	tm.mu.Unlock()
	go tm.heartbeatLoop(every, stop, done)
}

// StopHeartbeat signals the heartbeat goroutine and waits for it to exit.
func (tm *ClientTM) StopHeartbeat() {
	stop, done := tm.signalHeartbeatStop()
	if stop {
		<-done
	}
}

// signalHeartbeatStop closes the stop channel without waiting (Crash must
// not block on an in-flight heartbeat call). Returns whether a loop was
// running and its done channel.
func (tm *ClientTM) signalHeartbeatStop() (bool, chan struct{}) {
	tm.mu.Lock()
	stop, done := tm.hbStop, tm.hbDone
	tm.hbStop, tm.hbDone = nil, nil
	tm.mu.Unlock()
	if stop == nil {
		return false, nil
	}
	close(stop)
	return true, done
}

func (tm *ClientTM) heartbeatLoop(every time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		err := tm.heartbeat(every)
		switch {
		case err == nil:
		case errors.Is(err, ErrNoLease):
			tm.Rejoin() //nolint:errcheck // best-effort; retried next tick
		case errors.Is(err, rpc.ErrStaleEpoch):
			// The server we heartbeat is on an older fencing term than one
			// this workstation has witnessed: a deposed primary. Move over.
			tm.Failover() //nolint:errcheck // best-effort; retried next tick
		case !errors.Is(err, rpc.ErrRemote):
			// No answer inside a whole budgeted (internally retried) call:
			// the primary is unreachable. Promote the standby and take over;
			// without one the error is transient and the next tick retries.
			tm.Failover() //nolint:errcheck // best-effort; retried next tick
		}
	}
}

// heartbeat sends one lease renewal with a tight per-call budget.
func (tm *ClientTM) heartbeat(budget time.Duration) error {
	_, err := tm.client.CallBudget(tm.server(), MethodHeartbeat, []byte(tm.id), budget)
	return err
}

// Rejoin re-establishes the workstation's lease and re-registers every DOP
// this client-TM holds (recovered ones included) with the server. Safe to
// call at any time — Begin is idempotent server-side.
func (tm *ClientTM) Rejoin() error {
	tm.mu.Lock()
	m := rejoinMsg{WS: tm.id, DOPs: make([]dopPair, 0, len(tm.dops))}
	for _, d := range tm.dops {
		m.DOPs = append(m.DOPs, dopPair{DOP: d.id, DA: d.da})
	}
	tm.mu.Unlock()
	sort.Slice(m.DOPs, func(i, j int) bool { return m.DOPs[i].DOP < m.DOPs[j].DOP })
	_, err := tm.client.Call(tm.server(), MethodRejoin, m.encode())
	return err
}

// ServerHealth asks the server for its degradation mode: Mode is "ok",
// "degraded" (read-only: checkouts serve, mutations refused with
// repo.ErrDegraded) or "failstop", with the latched cause alongside.
func (tm *ClientTM) ServerHealth() (mode, cause string, err error) {
	h, err := tm.ServerHealthFull()
	if err != nil {
		return "", "", err
	}
	return h.Mode, h.Cause, nil
}

// ServerHealthInfo is the full MethodHealth answer: degradation mode and
// cause, plus the replication role, fencing epoch and shipping lag.
type ServerHealthInfo struct {
	Mode, Cause string
	// Role is "primary", "standby" or "promoting".
	Role string
	// Epoch is the fencing term the server serves under.
	Epoch uint64
	// LagRecords / LagBytes measure how far its standby trails.
	LagRecords, LagBytes uint64
}

// ServerHealthFull asks the server for its full health record and adopts its
// fencing epoch (the stamp that fences a later deposed primary off).
func (tm *ClientTM) ServerHealthFull() (ServerHealthInfo, error) {
	resp, err := tm.client.Call(tm.server(), MethodHealth, nil)
	if err != nil {
		return ServerHealthInfo{}, err
	}
	h, err := decodeHealth(resp)
	if err != nil {
		return ServerHealthInfo{}, err
	}
	tm.noteEpoch(h.Epoch)
	return ServerHealthInfo{
		Mode: h.Mode, Cause: h.Cause, Role: h.Role,
		Epoch: h.Epoch, LagRecords: h.LagRecords, LagBytes: h.LagBytes,
	}, nil
}
