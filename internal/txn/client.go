package txn

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/repl"
	"concord/internal/rpc"
	"concord/internal/version"
	"concord/internal/wal"
)

// Client-side WAL record types (the "workstation disk").
const (
	recCtxSnapshot wal.RecordType = 0x41
	recDOPEnd      wal.RecordType = 0x42
)

// DOP phases.
type Phase uint8

// Phases of a DOP at the client-TM.
const (
	// PhaseActive is the normal processing phase.
	PhaseActive Phase = iota + 1
	// PhaseSuspended marks a DOP parked by Suspend; only Resume is legal.
	PhaseSuspended
	// PhaseCommitted marks a successfully ended DOP.
	PhaseCommitted
	// PhaseAborted marks a rolled-back DOP.
	PhaseAborted
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseActive:
		return "active"
	case PhaseSuspended:
		return "suspended"
	case PhaseCommitted:
		return "committed"
	case PhaseAborted:
		return "aborted"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// Errors reported by the client-TM.
var (
	ErrDOPNotActive    = errors.New("txn: DOP not active")
	ErrNoSavepoint     = errors.New("txn: unknown savepoint")
	ErrNothingToCommit = errors.New("txn: DOP derived no result")
	ErrCheckinFailed   = errors.New("txn: checkin aborted by server")
)

// ctxSnapshot is the durable DOP context: "the current state of the design
// data and information about the state of the application program
// implementing the DOP" (Sect. 5.2, fn. 1).
type ctxSnapshot struct {
	DOP        string
	DA         string
	Phase      Phase
	Inputs     []version.ID
	InputData  map[version.ID][]byte
	Workspace  []byte // encoded working object; nil if none
	Savepoints []namedSnapshot
	Checkins   int
	// Tag distinguishes automatic recovery points from user savepoints in
	// diagnostics.
	Tag string
}

type namedSnapshot struct {
	Name      string
	Workspace []byte
}

// DOP is a design operation: a long-lived ACID transaction processing design
// object versions in checkout → process → checkin steps (Sect. 4.3).
type DOP struct {
	tm *ClientTM

	mu        sync.Mutex
	id        string
	da        string
	phase     Phase
	inputs    []version.ID
	inputData map[version.ID]*catalog.Object
	workspace *catalog.Object
	saves     []namedSnapshot
	checkins  int
	// lastResult is the ID of the most recent successfully checked-in DOV.
	lastResult version.ID
}

// ID returns the DOP identifier.
func (d *DOP) ID() string { return d.id }

// DA returns the owning design activity identifier.
func (d *DOP) DA() string { return d.da }

// Phase returns the current lifecycle phase.
func (d *DOP) Phase() Phase {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.phase
}

// Inputs returns the checked-out version IDs in checkout order.
func (d *DOP) Inputs() []version.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]version.ID(nil), d.inputs...)
}

// LastResult returns the ID of the most recently checked-in DOV ("a handle
// to the DOP's design data", Sect. 5.3).
func (d *DOP) LastResult() version.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastResult
}

// WireStats counts this client-TM's checkout/checkin wire traffic: how many
// transfers the workstation cache downgraded to NotModified handshakes or
// deltas, and the payload bytes that actually crossed the LAN. E14 reads it.
type WireStats struct {
	// Checkouts is the total checkout count; the next three partition it.
	Checkouts, NotModified, DeltaCheckouts, FullCheckouts uint64
	// CheckoutBytesOut / CheckoutBytesIn are request and response payload
	// bytes of checkout calls.
	CheckoutBytesOut, CheckoutBytesIn uint64
	// Checkins is the total staged-checkin count; the next two partition it.
	Checkins, DeltaCheckins, FullCheckins uint64
	// CheckinBytesOut is the staged payload bytes shipped (2PC control
	// messages are O(1) and not counted).
	CheckinBytesOut uint64
}

// ClientTM is the workstation half of the transaction manager. It manages
// the internal structure of DOPs and persists their contexts so that a
// workstation crash rolls back only to the most recent recovery point, not
// to the beginning of the long-lived DOP (Sect. 5.2). Its ObjectCache keeps
// checked-out and checked-in payloads on the workstation so repeated
// transfers shrink to NotModified handshakes or deltas (DESIGN.md §4).
type ClientTM struct {
	id         string
	client     *rpc.Client
	serverAddr string
	coord      *rpc.Coordinator
	log        *wal.Log
	cache      *ObjectCache
	// OpBudget is the per-call time budget for bulk transfers (checkout,
	// staged checkin) — generous, since multi-MiB payloads are legitimate
	// (DefaultOpBudget when zero). Propagated to the server, where it
	// bounds lock waits; heartbeats use their own tight budget instead.
	OpBudget time.Duration

	// srvEpoch is the highest server fencing epoch this workstation has
	// witnessed (health answers, failover promotions). The rpc client stamps
	// it on every call, so a deposed primary refuses this workstation with
	// rpc.ErrStaleEpoch instead of serving split-brain state.
	srvEpoch atomic.Uint64

	mu     sync.Mutex
	dops   map[string]*DOP
	seq    uint64
	cbAddr string
	stats  WireStats
	// standby is the warm-standby server address ("" = no failover target);
	// serverAddr switches to it when Failover promotes it.
	standby string
	// hbStop/hbDone are the heartbeat goroutine's lifecycle channels
	// (nil while no heartbeat runs); see heartbeat.go.
	hbStop chan struct{}
	hbDone chan struct{}
}

// NewClientTM opens a client-TM writing its recovery data under dir (the
// workstation disk; empty disables persistence). The checkout cache lives
// under dir/cache — persistent across workstation crashes, with the epoch
// bump on every open retiring the previous incarnation's callback
// registrations; with dir empty the cache is volatile. Returns the TM and
// any DOP contexts recovered from a previous incarnation, restored at their
// most recent recovery points.
func NewClientTM(id string, client *rpc.Client, serverAddr, dir string) (*ClientTM, []*DOP, error) {
	tm := &ClientTM{
		id:         id,
		client:     client,
		serverAddr: serverAddr,
		dops:       make(map[string]*DOP),
	}
	if client.Epoch == nil {
		// Stamp every call with the highest fencing epoch this workstation
		// has witnessed (the client is per-workstation in every deployment;
		// an already-wired client is left alone).
		client.Epoch = tm.srvEpoch.Load
	}
	cacheDir := ""
	if dir != "" {
		cacheDir = filepath.Join(dir, "cache")
	}
	cache, err := OpenObjectCache(cacheDir)
	if err != nil {
		return nil, nil, err
	}
	tm.cache = cache
	var coordLog *wal.Log
	if dir != "" {
		l, err := wal.Open(filepath.Join(dir, "client-tm.wal"), wal.Options{SyncOnAppend: true})
		if err != nil {
			return nil, nil, err
		}
		tm.log = l
		cl, err := wal.Open(filepath.Join(dir, "client-coord.wal"), wal.Options{SyncOnAppend: true})
		if err != nil {
			l.Close()
			return nil, nil, err
		}
		coordLog = cl
	}
	coord, err := rpc.NewCoordinator(client, coordLog)
	if err != nil {
		return nil, nil, err
	}
	tm.coord = coord
	recovered, err := tm.recover()
	if err != nil {
		return nil, nil, err
	}
	return tm, recovered, nil
}

// Close stops the heartbeat (waiting for the goroutine to exit) and releases
// the client log.
func (tm *ClientTM) Close() error {
	tm.StopHeartbeat()
	if tm.log != nil {
		return tm.log.Close()
	}
	return nil
}

// Coordinator exposes the 2PC coordinator (for in-doubt resolution by a
// restarting server participant).
func (tm *ClientTM) Coordinator() *rpc.Coordinator { return tm.coord }

// Cache exposes the workstation object cache.
func (tm *ClientTM) Cache() *ObjectCache { return tm.cache }

// SetCallbackAddr names the transport address on which this workstation
// serves MethodInvalidate (the cache's Handler); the server-TM registers it
// with every checkout and checkin so invalidations find their way back.
// Empty (the default) leaves callbacks off — the cache still works, it just
// never hears about remote changes before its next revalidation.
func (tm *ClientTM) SetCallbackAddr(addr string) {
	tm.mu.Lock()
	tm.cbAddr = addr
	tm.mu.Unlock()
}

// SetStandbyAddr names the warm-standby server this workstation may fail
// over to ("" disables failover). The heartbeat loop drives the takeover
// automatically when the primary falls silent; Failover runs it on demand.
func (tm *ClientTM) SetStandbyAddr(addr string) {
	tm.mu.Lock()
	tm.standby = addr
	tm.mu.Unlock()
}

// server resolves the server address calls go to right now (it switches from
// the primary to the promoted standby on failover).
func (tm *ClientTM) server() string {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.serverAddr
}

// ServerAddr reports the server address this workstation currently talks to.
func (tm *ClientTM) ServerAddr() string { return tm.server() }

// KnownEpoch reports the highest server fencing epoch witnessed so far.
func (tm *ClientTM) KnownEpoch() uint64 { return tm.srvEpoch.Load() }

// noteEpoch raises the witnessed fencing epoch (monotonic).
func (tm *ClientTM) noteEpoch(e uint64) {
	for {
		cur := tm.srvEpoch.Load()
		if e <= cur || tm.srvEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Failover performs the client-driven takeover (DESIGN.md §5.4): promote the
// warm standby (idempotent — concurrent workstations race harmlessly), adopt
// its bumped fencing epoch (every later call stamps it, fencing the deposed
// primary off), switch this client-TM to the new address, re-establish the
// session (Rejoin re-registers every live DOP), and re-deliver any commit
// decisions the old primary never acknowledged so in-doubt checkin branches
// recovered from the replicated participant log resolve. The heartbeat loop
// calls it when the primary stops answering; it is safe to call directly.
func (tm *ClientTM) Failover() error {
	tm.mu.Lock()
	standby, cur := tm.standby, tm.serverAddr
	tm.mu.Unlock()
	if standby == "" || standby == cur {
		return errors.New("txn: failover: no standby configured")
	}
	resp, err := tm.client.CallBudget(standby, repl.MethodPromote, nil, tm.opBudget())
	if err != nil {
		return fmt.Errorf("txn: failover: promote standby: %w", err)
	}
	r := binenc.NewReader(resp)
	epoch := r.U64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("txn: failover: promote response: %w", err)
	}
	tm.noteEpoch(epoch)
	tm.mu.Lock()
	if tm.serverAddr == cur {
		tm.serverAddr = standby
		tm.standby = ""
	}
	addr := tm.serverAddr
	tm.mu.Unlock()
	if err := tm.Rejoin(); err != nil {
		return fmt.Errorf("txn: failover: rejoin at %s: %w", addr, err)
	}
	if err := tm.coord.ResendDecisions(addr); err != nil {
		return fmt.Errorf("txn: failover: resend decisions to %s: %w", addr, err)
	}
	return nil
}

// DefaultOpBudget is the bulk-transfer call budget when OpBudget is unset.
const DefaultOpBudget = 30 * time.Second

// opBudget resolves the bulk-transfer budget.
func (tm *ClientTM) opBudget() time.Duration {
	if tm.OpBudget > 0 {
		return tm.OpBudget
	}
	return DefaultOpBudget
}

// WireStats returns a snapshot of the wire-traffic counters.
func (tm *ClientTM) WireStats() WireStats {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.stats
}

// recover rebuilds DOP contexts from the client log.
func (tm *ClientTM) recover() ([]*DOP, error) {
	if tm.log == nil {
		return nil, nil
	}
	latest := make(map[string]*ctxSnapshot)
	ended := make(map[string]bool)
	err := tm.log.Replay(func(r wal.Record) error {
		switch r.Type {
		case recCtxSnapshot:
			var snap ctxSnapshot
			if err := decode(r.Payload, &snap); err != nil {
				return err
			}
			latest[snap.DOP] = &snap
		case recDOPEnd:
			ended[r.Owner] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(latest))
	for n := range latest {
		if !ended[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []*DOP
	for _, n := range names {
		snap := latest[n]
		d, err := tm.restore(snap)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func (tm *ClientTM) restore(snap *ctxSnapshot) (*DOP, error) {
	d := &DOP{
		tm:       tm,
		id:       snap.DOP,
		da:       snap.DA,
		phase:    snap.Phase,
		inputs:   snap.Inputs,
		saves:    snap.Savepoints,
		checkins: snap.Checkins,
	}
	d.inputData = make(map[version.ID]*catalog.Object, len(snap.InputData))
	for id, data := range snap.InputData {
		obj, err := catalog.DecodeObject(data)
		if err != nil {
			return nil, err
		}
		d.inputData[id] = obj
	}
	if snap.Workspace != nil {
		obj, err := catalog.DecodeObject(snap.Workspace)
		if err != nil {
			return nil, err
		}
		d.workspace = obj
	}
	tm.mu.Lock()
	tm.dops[d.id] = d
	tm.mu.Unlock()
	return d, nil
}

// Begin starts a new DOP for a design activity (Begin-of-DOP). The
// identifier must be unique per workstation; pass "" to auto-generate.
func (tm *ClientTM) Begin(dopID, da string) (*DOP, error) {
	tm.mu.Lock()
	if dopID == "" {
		tm.seq++
		dopID = fmt.Sprintf("%s/dop-%04d", tm.id, tm.seq)
	}
	if _, dup := tm.dops[dopID]; dup {
		tm.mu.Unlock()
		return nil, fmt.Errorf("txn: DOP %s already exists on this workstation", dopID)
	}
	tm.mu.Unlock()

	payload := beginMsg{DOP: dopID, DA: da, WS: tm.id}.encode()
	if _, err := tm.client.Call(tm.server(), MethodBegin, payload); err != nil {
		return nil, err
	}
	d := &DOP{
		tm:        tm,
		id:        dopID,
		da:        da,
		phase:     PhaseActive,
		inputData: make(map[version.ID]*catalog.Object),
	}
	tm.mu.Lock()
	tm.dops[dopID] = d
	tm.mu.Unlock()
	return d, nil
}

// Reattach re-registers a recovered DOP with the server-TM (idempotent at
// the server) so processing can continue after a workstation restart.
func (tm *ClientTM) Reattach(d *DOP) error {
	_, err := tm.client.Call(tm.server(), MethodBegin, beginMsg{DOP: d.id, DA: d.da, WS: tm.id}.encode())
	return err
}

// Crash drops all volatile client-TM state without notifying the server,
// simulating a workstation crash (Sect. 5.2 failure model). The client log
// stays on disk for the next incarnation. The heartbeat goroutine is
// signalled but not waited for (a crash is immediate); with no renewals
// arriving, the server-side lease expires and the reaper reclaims the
// workstation's footprint.
func (tm *ClientTM) Crash() {
	tm.signalHeartbeatStop()
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.dops = make(map[string]*DOP)
	if tm.log != nil {
		tm.log.Close()
	}
}

// snapshotLocked captures the DOP context for the recovery log.
// d.mu must be held.
func (d *DOP) snapshotLocked(tag string) (*ctxSnapshot, error) {
	snap := &ctxSnapshot{
		DOP:        d.id,
		DA:         d.da,
		Phase:      d.phase,
		Inputs:     append([]version.ID(nil), d.inputs...),
		InputData:  make(map[version.ID][]byte, len(d.inputData)),
		Savepoints: append([]namedSnapshot(nil), d.saves...),
		Checkins:   d.checkins,
		Tag:        tag,
	}
	for id, obj := range d.inputData {
		data, err := catalog.EncodeObject(obj)
		if err != nil {
			return nil, err
		}
		snap.InputData[id] = data
	}
	if d.workspace != nil {
		data, err := catalog.EncodeObject(d.workspace)
		if err != nil {
			return nil, err
		}
		snap.Workspace = data
	}
	return snap, nil
}

// recoveryPointLocked persists the context ("recovery points are chosen
// automatically by the system after appropriate events", Sect. 5.2).
func (d *DOP) recoveryPointLocked(tag string) error {
	if d.tm.log == nil {
		return nil
	}
	snap, err := d.snapshotLocked(tag)
	if err != nil {
		return err
	}
	data, err := encode(snap)
	if err != nil {
		return err
	}
	_, err = d.tm.log.Append(recCtxSnapshot, d.id, data)
	return err
}

// Checkout loads a DOV from the repository into the DOP context and returns
// a mutable copy. With derive set, a long derivation lock prevents
// concurrent derivation of the same version. A recovery point is taken
// automatically after the checkout "to avoid duplicate requests of a DOV
// from the server in the case of a failure" (Sect. 5.2).
//
// The transfer itself is cache-negotiated (DESIGN.md §4): when the
// workstation cache holds the version, the server answers NotModified; when
// it holds a relative, the payload travels as a delta. Every reconstruction
// is verified against the server's content hash, and a cache miss mid-race
// (an invalidation dropping the entry between request and response) falls
// back to one cache-blind refetch.
func (d *DOP) Checkout(dov version.ID, derive bool) (*catalog.Object, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.phase != PhaseActive {
		return nil, fmt.Errorf("%w: %s is %s", ErrDOPNotActive, d.id, d.phase)
	}
	obj, err := d.fetch(dov, derive, true)
	if err != nil {
		return nil, err
	}
	d.inputs = append(d.inputs, dov)
	d.inputData[dov] = obj
	if err := d.recoveryPointLocked("post-checkout"); err != nil {
		return nil, err
	}
	return obj.Clone(), nil
}

// fetch performs one cache-negotiated checkout transfer. useCache false runs
// the degenerate (always-full) protocol — the retry path after a cache race
// and the behaviour of cacheless clients. d.mu must be held.
func (d *DOP) fetch(dov version.ID, derive, useCache bool) (*catalog.Object, error) {
	tm := d.tm
	m := checkoutMsg{DOP: d.id, DA: d.da, DOV: dov, Derive: derive}
	if useCache && tm.cache != nil {
		tm.mu.Lock()
		m.WS, m.CBAddr = tm.id, tm.cbAddr
		tm.mu.Unlock()
		m.Epoch = tm.cache.Epoch()
		if id, h, ok := tm.cache.BestBase(d.da, dov); ok {
			m.BaseID, m.BaseHash = id, h
		}
	}
	// Encode into a pooled writer: the reliable client frames the payload
	// into its own (pooled) envelope, so the message bytes are dead once
	// Call returns.
	pw := binenc.GetWriter(96)
	m.encodeInto(pw)
	outBytes := uint64(len(pw.Bytes()))
	resp, err := tm.client.CallBudget(tm.server(), MethodCheckout, pw.Bytes(), tm.opBudget())
	pw.Free()
	tm.mu.Lock()
	tm.stats.Checkouts++
	tm.stats.CheckoutBytesOut += outBytes
	tm.stats.CheckoutBytesIn += uint64(len(resp))
	tm.mu.Unlock()
	if err != nil {
		return nil, err
	}
	cr, err := decodeCheckoutResp(resp)
	if err != nil {
		return nil, err
	}
	if cr.BumpEpoch && tm.cache != nil {
		// The server lost invalidations destined for this workstation; the
		// cache incarnation ends before any of its (possibly stale) entries
		// can serve this response. NotModified/delta answers then miss their
		// base and fall back to the cache-blind refetch below.
		tm.cache.BumpEpoch()
	}
	count := func(field *uint64) {
		tm.mu.Lock()
		*field++
		tm.mu.Unlock()
	}
	switch cr.Mode {
	case coFull:
		count(&tm.stats.FullCheckouts)
		obj, err := catalog.DecodeObject(cr.DOV.Object)
		if err != nil {
			return nil, err
		}
		if tm.cache != nil {
			tm.cache.Put(dovMeta{
				ID: cr.DOV.ID, DOT: cr.DOV.DOT, DA: cr.DOV.DA,
				Parents: cr.DOV.Parents, Status: cr.DOV.Status, Fulfilled: cr.DOV.Fulfilled,
			}, cr.Hash, cr.DOV.Object)
		}
		return obj, nil
	case coNotModified:
		count(&tm.stats.NotModified)
		_, hash, enc, ok := tm.cache.Lookup(dov)
		if !ok || !bytes.Equal(hash, cr.Hash) {
			// The entry vanished or changed underneath the in-flight call
			// (concurrent invalidation). Refetch cache-blind; derivation
			// locks are owner-reentrant, so re-running the checkout with
			// the same DOP is safe.
			if useCache {
				return d.fetch(dov, derive, false)
			}
			return nil, fmt.Errorf("txn: checkout %s: NotModified without a cached copy", dov)
		}
		obj, err := catalog.DecodeObject(enc)
		if err != nil {
			return nil, err
		}
		// Refresh the volatile metadata (status, fulfilled features) the
		// server just served under its lock.
		tm.cache.Put(cr.Meta, cr.Hash, enc)
		return obj, nil
	case coDelta:
		count(&tm.stats.DeltaCheckouts)
		_, baseHash, baseEnc, ok := tm.cache.Lookup(cr.BaseID)
		if !ok {
			if useCache {
				return d.fetch(dov, derive, false)
			}
			return nil, fmt.Errorf("txn: checkout %s: delta against evicted base %s", dov, cr.BaseID)
		}
		enc, err := binenc.ApplyDelta(baseEnc, cr.Delta)
		if err == nil && !bytes.Equal(catalog.HashEncoded(enc), cr.Hash) {
			err = fmt.Errorf("txn: checkout %s: delta reconstruction does not match server hash (base %s, hash %x)", dov, cr.BaseID, baseHash[:4])
		}
		if err != nil {
			// Never trust a failed reconstruction; one cache-blind refetch
			// resolves races, otherwise surface the fault.
			if useCache {
				return d.fetch(dov, derive, false)
			}
			return nil, err
		}
		obj, err := catalog.DecodeObject(enc)
		if err != nil {
			return nil, err
		}
		tm.cache.Put(cr.Meta, cr.Hash, enc)
		return obj, nil
	default:
		return nil, fmt.Errorf("txn: checkout %s: unknown response mode %d", dov, cr.Mode)
	}
}

// Input returns a copy of a previously checked-out object (reference
// locality: tools re-read inputs from the DOP context, not the server).
func (d *DOP) Input(dov version.ID) (*catalog.Object, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	obj, ok := d.inputData[dov]
	if !ok {
		return nil, fmt.Errorf("%w: %s not checked out by %s", version.ErrUnknownDOV, dov, d.id)
	}
	return obj.Clone(), nil
}

// SetWorkspace installs the design tool's current working object.
func (d *DOP) SetWorkspace(obj *catalog.Object) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.phase != PhaseActive {
		return fmt.Errorf("%w: %s is %s", ErrDOPNotActive, d.id, d.phase)
	}
	d.workspace = obj
	return nil
}

// Workspace returns the current working object (nil if none). The returned
// object is the live workspace: tools mutate it in place.
func (d *DOP) Workspace() *catalog.Object {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.workspace
}

// Save marks an intermediate state the designer may wish to return to
// (Sect. 4.3). The savepoint is persisted with the context.
func (d *DOP) Save(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.phase != PhaseActive {
		return fmt.Errorf("%w: %s is %s", ErrDOPNotActive, d.id, d.phase)
	}
	if name == "" {
		return errors.New("txn: savepoint needs a name")
	}
	var ws []byte
	if d.workspace != nil {
		data, err := catalog.EncodeObject(d.workspace)
		if err != nil {
			return err
		}
		ws = data
	}
	// Replace an existing savepoint of the same name.
	replaced := false
	for i := range d.saves {
		if d.saves[i].Name == name {
			d.saves[i].Workspace = ws
			replaced = true
			break
		}
	}
	if !replaced {
		d.saves = append(d.saves, namedSnapshot{Name: name, Workspace: ws})
	}
	return d.recoveryPointLocked("savepoint:" + name)
}

// Restore performs a user-initiated partial rollback to the named savepoint,
// wiping out everything changed since (Sect. 4.3).
func (d *DOP) Restore(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.phase != PhaseActive {
		return fmt.Errorf("%w: %s is %s", ErrDOPNotActive, d.id, d.phase)
	}
	for _, sp := range d.saves {
		if sp.Name != name {
			continue
		}
		if sp.Workspace == nil {
			d.workspace = nil
			return nil
		}
		obj, err := catalog.DecodeObject(sp.Workspace)
		if err != nil {
			return err
		}
		d.workspace = obj
		return nil
	}
	return fmt.Errorf("%w: %q in %s", ErrNoSavepoint, name, d.id)
}

// Savepoints returns the savepoint names in creation order.
func (d *DOP) Savepoints() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.saves))
	for i, sp := range d.saves {
		out[i] = sp.Name
	}
	return out
}

// Suspend parks the DOP so it can survive days-long interruptions; the
// context is persisted so the state after Resume equals the state at
// Suspend (Sect. 4.3).
func (d *DOP) Suspend() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.phase != PhaseActive {
		return fmt.Errorf("%w: %s is %s", ErrDOPNotActive, d.id, d.phase)
	}
	d.phase = PhaseSuspended
	return d.recoveryPointLocked("suspend")
}

// Resume reactivates a suspended DOP.
func (d *DOP) Resume() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.phase != PhaseSuspended {
		return fmt.Errorf("txn: Resume: %s is %s, want suspended", d.id, d.phase)
	}
	d.phase = PhaseActive
	return d.recoveryPointLocked("resume")
}

// Checkin propagates the workspace back to the repository as a new DOV
// derived from the checked-out inputs, committed atomically between
// client-TM and server-TM by two-phase commit (Sect. 5.2). root adopts the
// version as a derivation-graph root (initial DOV0 without local parents).
// On success the new version's ID is returned and recorded as LastResult.
func (d *DOP) Checkin(status version.Status, root bool) (version.ID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.phase != PhaseActive {
		return "", fmt.Errorf("%w: %s is %s", ErrDOPNotActive, d.id, d.phase)
	}
	if d.workspace == nil {
		return "", fmt.Errorf("%w: %s", ErrNothingToCommit, d.id)
	}
	d.checkins++
	newID := version.ID(fmt.Sprintf("%s/v%d", d.id, d.checkins))
	txid := fmt.Sprintf("%s/ci%d", d.id, d.checkins)

	objData, err := catalog.EncodeObject(d.workspace)
	if err != nil {
		return "", err
	}
	hash := catalog.HashEncoded(objData)
	var parents []version.ID
	if !root {
		parents = append([]version.ID(nil), d.inputs...)
	}
	tm := d.tm
	msg := stageMsg{
		DOP:  d.id,
		TxID: txid,
		DOV: dovWire{
			ID: newID, DOT: d.workspace.Type, DA: d.da,
			Parents: parents, Object: objData, Status: status,
		},
		Root: root,
		Hash: hash,
	}
	deltaShipped := false
	if tm.cache != nil {
		tm.mu.Lock()
		msg.WS, msg.CBAddr = tm.id, tm.cbAddr
		tm.mu.Unlock()
		msg.Epoch = tm.cache.Epoch()
		// Ship the workspace as a delta against a cached relative — the
		// most recent input is usually the version this one was derived
		// from — whenever that is actually smaller. The server reapplies
		// the delta and verifies the content hash before staging.
		if baseID, baseHash, baseEnc, ok := d.checkinBase(); ok {
			if delta := binenc.Delta(baseEnc, objData); len(delta) < len(objData) {
				msg.DOV.Object = nil
				msg.BaseID, msg.BaseHash, msg.Delta = baseID, baseHash, delta
				deltaShipped = true
			}
		}
	}
	pw := binenc.GetWriter(192 + len(msg.DOV.Object) + len(msg.Delta))
	msg.encodeInto(pw)
	tm.mu.Lock()
	tm.stats.Checkins++
	tm.stats.CheckinBytesOut += uint64(len(pw.Bytes()))
	if deltaShipped {
		tm.stats.DeltaCheckins++
	} else {
		tm.stats.FullCheckins++
	}
	tm.mu.Unlock()
	// The stage handler copies anything it retains (rpc.Handler contract),
	// so the pooled message buffer is safe to recycle after the call.
	// Resolve the server once: stage and 2PC must target the same
	// incarnation, and a failover between them is resolved by the
	// coordinator's decision resend, not by splitting this checkin.
	srv := tm.server()
	_, err = tm.client.CallBudget(srv, MethodStage, pw.Bytes(), tm.opBudget())
	pw.Free()
	if err != nil {
		d.checkins--
		return "", fmt.Errorf("txn: stage checkin %s: %w", txid, err)
	}
	outcome, err := tm.coord.Commit(txid, []string{srv})
	if err != nil {
		return "", fmt.Errorf("txn: commit checkin %s: %w", txid, err)
	}
	if outcome != rpc.OutcomeCommitted {
		// "Checkin failure": the server refused (e.g. integrity
		// constraints); the DM or designer decides how to react
		// (Sect. 5.2).
		return "", fmt.Errorf("%w: transaction %s", ErrCheckinFailed, txid)
	}
	if tm.cache != nil {
		// The new version's bytes are already here; cache them so the next
		// checkout of this version is a NotModified handshake.
		tm.cache.Put(dovMeta{
			ID: newID, DOT: d.workspace.Type, DA: d.da,
			Parents: parents, Status: status,
		}, hash, objData)
	}
	d.lastResult = newID
	if err := d.recoveryPointLocked("post-checkin"); err != nil {
		return newID, err
	}
	return newID, nil
}

// checkinBase picks the delta base for a checkin: the most recently checked
// out input still cached (the likeliest derivation parent), falling back to
// the cache's best entry for this DA. d.mu must be held.
func (d *DOP) checkinBase() (version.ID, []byte, []byte, bool) {
	for i := len(d.inputs) - 1; i >= 0; i-- {
		if _, hash, enc, ok := d.tm.cache.Lookup(d.inputs[i]); ok {
			return d.inputs[i], hash, enc, true
		}
	}
	id, _, ok := d.tm.cache.BestBase(d.da, "")
	if !ok {
		return "", nil, nil, false
	}
	_, hash, enc, ok := d.tm.cache.Lookup(id)
	if !ok {
		return "", nil, nil, false
	}
	return id, hash, enc, true
}

// Commit ends the DOP successfully (End-of-DOP): the server releases all
// locks, and the client removes its savepoints and recovery points.
func (d *DOP) Commit() error {
	return d.end(PhaseCommitted)
}

// Abort ends the DOP unsuccessfully, discarding the volatile context. DOVs
// already checked in by earlier Checkin calls remain (they are committed
// transactions of their own 2PC rounds).
func (d *DOP) Abort() error {
	return d.end(PhaseAborted)
}

func (d *DOP) end(final Phase) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.phase == PhaseCommitted || d.phase == PhaseAborted {
		return fmt.Errorf("%w: %s is %s", ErrDOPNotActive, d.id, d.phase)
	}
	if _, err := d.tm.client.Call(d.tm.server(), MethodAbortDOP, []byte(d.id)); err != nil {
		return err
	}
	d.phase = final
	d.saves = nil
	d.inputData = make(map[version.ID]*catalog.Object)
	d.workspace = nil
	if d.tm.log != nil {
		if _, err := d.tm.log.Append(recDOPEnd, d.id, []byte(final.String())); err != nil {
			return err
		}
	}
	d.tm.mu.Lock()
	delete(d.tm.dops, d.id)
	d.tm.mu.Unlock()
	return nil
}

// HandOver transfers the DOP's in-memory design state to a succeeding DOP
// of the same DA without a round trip through the repository — "in quite a
// number of cases the in-memory data structure can be handed over from one
// DOP to the succeeding DOP" (Sect. 5.1, fn. 1). The receiving DOP obtains
// the workspace, the checked-out inputs and the derivation parents; the
// handing-over DOP keeps its context untouched.
func (d *DOP) HandOver(next *DOP) error {
	if next == nil {
		return errors.New("txn: HandOver needs a successor DOP")
	}
	if d == next {
		return errors.New("txn: cannot hand over to self")
	}
	// Lock ordering by ID avoids deadlock between concurrent handovers.
	first, second := d, next
	if first.id > second.id {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	if d.da != next.da {
		return fmt.Errorf("txn: HandOver across DAs (%s → %s)", d.da, next.da)
	}
	if d.phase != PhaseActive || next.phase != PhaseActive {
		return fmt.Errorf("%w: handover between %s and %s", ErrDOPNotActive, d.phase, next.phase)
	}
	if d.workspace != nil {
		next.workspace = d.workspace.Clone()
	}
	for id, obj := range d.inputData {
		if _, exists := next.inputData[id]; !exists {
			next.inputData[id] = obj.Clone()
			next.inputs = append(next.inputs, id)
		}
	}
	return next.recoveryPointLocked("handover")
}

// ReleaseDerivationLock gives up the derivation lock on an input version
// before DOP end.
func (d *DOP) ReleaseDerivationLock(dov version.ID) error {
	_, err := d.tm.client.Call(d.tm.server(), MethodRelease, releaseMsg{DOP: d.id, DOV: dov}.encode())
	return err
}
