package txn

import (
	"errors"
	"strings"
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
)

// stack bundles a full in-process TE-level deployment.
type stack struct {
	cat    *catalog.Catalog
	repo   *repo.Repository
	locks  *lock.Manager
	scopes *lock.ScopeTable
	server *ServerTM
	trans  *rpc.InProc
	tm     *ClientTM
	dir    string
}

const serverAddr = "server"

func newStack(t *testing.T, dir string) *stack {
	t.Helper()
	cat := catalog.New()
	if err := cat.Register(&catalog.DOT{
		Name: "floorplan",
		Attrs: []catalog.AttrDef{
			{Name: "cell", Kind: catalog.KindString, Required: true},
			{Name: "area", Kind: catalog.KindFloat, Bounded: true, Min: 0, Max: 1e12},
		},
	}); err != nil {
		t.Fatal(err)
	}
	var repoDir string
	if dir != "" {
		repoDir = dir + "/server"
	}
	r, err := repo.Open(cat, repo.Options{Dir: repoDir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	locks := lock.NewManager()
	scopes := lock.NewScopeTable()
	server := NewServerTM(r, locks, scopes)
	server.LockTimeout = 300 * time.Millisecond
	participant, err := rpc.NewParticipant(server, nil)
	if err != nil {
		t.Fatal(err)
	}
	trans := rpc.NewInProc(rpc.FaultPlan{})
	t.Cleanup(func() { trans.Close() })
	if err := rpc.ServeWithDeadline(trans, serverAddr, rpc.DedupDeadline(server.DeadlineHandler(participant))); err != nil {
		t.Fatal(err)
	}
	tm := newTM(t, trans, dir)
	return &stack{cat: cat, repo: r, locks: locks, scopes: scopes, server: server, trans: trans, tm: tm, dir: dir}
}

func newTM(t *testing.T, trans *rpc.InProc, dir string) *ClientTM {
	t.Helper()
	client := rpc.NewClient(trans, "ws1")
	client.Backoff = 0
	var tmDir string
	if dir != "" {
		tmDir = dir + "/ws1"
	}
	tm, recovered, err := NewClientTM("ws1", client, serverAddr, tmDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh TM recovered %d DOPs", len(recovered))
	}
	t.Cleanup(func() { tm.Close() })
	return tm
}

// seedDOV installs an initial version into da1's graph and scope.
func (s *stack) seedDOV(t *testing.T, id string, area float64) version.ID {
	t.Helper()
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(area))
	v := &version.DOV{ID: version.ID(id), DOT: "floorplan", DA: "da1", Object: obj, Status: version.StatusWorking}
	if err := s.repo.Checkin(v, true); err != nil {
		t.Fatal(err)
	}
	if err := s.scopes.Own("da1", id); err != nil {
		t.Fatal(err)
	}
	return version.ID(id)
}

func TestDOPHappyPath(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)

	dop, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatal(err)
	}
	// Tool processing: improve the floorplan.
	obj.Set("area", catalog.Float(80))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	newID, err := dop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	if dop.Phase() != PhaseCommitted {
		t.Fatalf("phase = %s", dop.Phase())
	}
	// Derived DOV persisted with correct derivation edge and payload.
	got, err := s.repo.Get(newID)
	if err != nil {
		t.Fatal(err)
	}
	if catalog.NumAttr(got.Object, "area") != 80 {
		t.Fatalf("area = %g", catalog.NumAttr(got.Object, "area"))
	}
	g, _ := s.repo.Graph("da1")
	ok, err := g.IsAncestor(v0, newID)
	if err != nil || !ok {
		t.Fatalf("derivation edge missing: %t, %v", ok, err)
	}
	// New DOV joined the DA's scope.
	if owner, _ := s.scopes.Owner(string(newID)); owner != "da1" {
		t.Fatalf("scope owner = %s", owner)
	}
	// Derivation lock released after DOP end.
	if s.locks.Holds(dop.ID(), "dov/"+string(v0)) != 0 {
		t.Fatal("derivation lock survived commit")
	}
	if s.server.ActiveDOPs() != 0 {
		t.Fatal("server still tracks ended DOP")
	}
}

func TestCheckoutScopeDenied(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)
	if err := s.repo.CreateGraph("da2"); err != nil {
		t.Fatal(err)
	}
	dop, err := s.tm.Begin("", "da2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, false); err == nil || !strings.Contains(err.Error(), "scope") {
		t.Fatalf("checkout outside scope = %v", err)
	}
}

func TestDerivationLockConflict(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)
	dop1, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop1.Checkout(v0, true); err != nil {
		t.Fatal(err)
	}
	dop2, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	// Second derivation checkout must be refused while dop1 holds D.
	if _, err := dop2.Checkout(v0, true); err == nil {
		t.Fatal("second derivation checkout succeeded")
	}
	// Plain read is still allowed under a derivation lock.
	if _, err := dop2.Checkout(v0, false); err != nil {
		t.Fatalf("read under D lock: %v", err)
	}
	// After dop1 aborts, dop2 can derive.
	if err := dop1.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := dop2.Checkout(v0, true); err != nil {
		t.Fatalf("derive after abort: %v", err)
	}
}

func TestExplicitDerivationLockRelease(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)
	dop1, _ := s.tm.Begin("", "da1")
	if _, err := dop1.Checkout(v0, true); err != nil {
		t.Fatal(err)
	}
	if err := dop1.ReleaseDerivationLock(v0); err != nil {
		t.Fatal(err)
	}
	dop2, _ := s.tm.Begin("", "da1")
	if _, err := dop2.Checkout(v0, true); err != nil {
		t.Fatalf("derive after explicit release: %v", err)
	}
	// Releasing twice reports not-held.
	if err := dop1.ReleaseDerivationLock(v0); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestCheckinValidationFailure(t *testing.T) {
	s := newStack(t, "")
	dop, _ := s.tm.Begin("", "da1")
	// Violates the area bound: server must vote abort in prepare.
	bad := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(-1))
	if err := dop.SetWorkspace(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkin(version.StatusWorking, true); !errors.Is(err, ErrCheckinFailed) {
		t.Fatalf("bad checkin = %v, want ErrCheckinFailed", err)
	}
	if s.repo.DOVCount() != 0 {
		t.Fatal("rejected DOV stored")
	}
	// The designer fixes the data; the retried checkin succeeds.
	good := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(50))
	if err := dop.SetWorkspace(good); err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkin(version.StatusWorking, true); err != nil {
		t.Fatalf("retry after fix: %v", err)
	}
}

func TestCheckinParentOutsideScopeRejected(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)
	dop, _ := s.tm.Begin("", "da1")
	if _, err := dop.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}
	// Strip the scope after checkout: prepare must notice.
	s.scopes.ReleaseDA("da1")
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(10))
	dop.SetWorkspace(obj) //nolint:errcheck
	if _, err := dop.Checkin(version.StatusWorking, false); !errors.Is(err, ErrCheckinFailed) {
		t.Fatalf("checkin with out-of-scope parent = %v", err)
	}
}

func TestSavepointsAndRestore(t *testing.T) {
	s := newStack(t, "")
	dop, _ := s.tm.Begin("", "da1")
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(100))
	dop.SetWorkspace(obj) //nolint:errcheck
	if err := dop.Save("before-resize"); err != nil {
		t.Fatal(err)
	}
	dop.Workspace().Set("area", catalog.Float(42))
	if err := dop.Save("after-resize"); err != nil {
		t.Fatal(err)
	}
	dop.Workspace().Set("area", catalog.Float(7))
	if err := dop.Restore("before-resize"); err != nil {
		t.Fatal(err)
	}
	if got := catalog.NumAttr(dop.Workspace(), "area"); got != 100 {
		t.Fatalf("area after restore = %g, want 100", got)
	}
	if err := dop.Restore("after-resize"); err != nil {
		t.Fatal(err)
	}
	if got := catalog.NumAttr(dop.Workspace(), "area"); got != 42 {
		t.Fatalf("area after second restore = %g, want 42", got)
	}
	if err := dop.Restore("ghost"); !errors.Is(err, ErrNoSavepoint) {
		t.Fatalf("ghost restore = %v", err)
	}
	sps := dop.Savepoints()
	if len(sps) != 2 || sps[0] != "before-resize" {
		t.Fatalf("Savepoints = %v", sps)
	}
}

func TestSuspendResume(t *testing.T) {
	s := newStack(t, "")
	dop, _ := s.tm.Begin("", "da1")
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(33))
	dop.SetWorkspace(obj) //nolint:errcheck
	if err := dop.Suspend(); err != nil {
		t.Fatal(err)
	}
	if dop.Phase() != PhaseSuspended {
		t.Fatalf("phase = %s", dop.Phase())
	}
	// No processing while suspended.
	if err := dop.SetWorkspace(obj); !errors.Is(err, ErrDOPNotActive) {
		t.Fatalf("SetWorkspace while suspended = %v", err)
	}
	if err := dop.Save("x"); !errors.Is(err, ErrDOPNotActive) {
		t.Fatalf("Save while suspended = %v", err)
	}
	if err := dop.Suspend(); err == nil {
		t.Fatal("double suspend accepted")
	}
	if err := dop.Resume(); err != nil {
		t.Fatal(err)
	}
	// State after resume equals state at suspend.
	if got := catalog.NumAttr(dop.Workspace(), "area"); got != 33 {
		t.Fatalf("area after resume = %g", got)
	}
	if err := dop.Resume(); err == nil {
		t.Fatal("resume of active DOP accepted")
	}
}

func TestWorkstationCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newStack(t, dir)
	v0 := s.seedDOV(t, "v0", 100)

	dop, err := s.tm.Begin("dop-crash", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(55))
	dop.SetWorkspace(obj) //nolint:errcheck
	if err := dop.Save("progress"); err != nil {
		t.Fatal(err)
	}
	// Workstation crashes: volatile state gone, log survives.
	s.tm.Crash()

	client := rpc.NewClient(s.trans, "ws1r")
	client.Backoff = 0
	tm2, recovered, err := NewClientTM("ws1", client, serverAddr, dir+"/ws1")
	if err != nil {
		t.Fatal(err)
	}
	defer tm2.Close()
	if len(recovered) != 1 {
		t.Fatalf("recovered %d DOPs, want 1", len(recovered))
	}
	rdop := recovered[0]
	if rdop.ID() != "dop-crash" || rdop.DA() != "da1" {
		t.Fatalf("recovered DOP = %s/%s", rdop.ID(), rdop.DA())
	}
	// Context restored at the most recent recovery point (the savepoint).
	if got := catalog.NumAttr(rdop.Workspace(), "area"); got != 55 {
		t.Fatalf("workspace after recovery = %g, want 55", got)
	}
	inputs := rdop.Inputs()
	if len(inputs) != 1 || inputs[0] != v0 {
		t.Fatalf("inputs after recovery = %v", inputs)
	}
	// No duplicate checkout needed: the input data is in the context.
	if _, err := rdop.Input(v0); err != nil {
		t.Fatalf("Input after recovery: %v", err)
	}
	// Reattach and finish the DOP.
	if err := tm2.Reattach(rdop); err != nil {
		t.Fatal(err)
	}
	newID, err := rdop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatalf("checkin after recovery: %v", err)
	}
	if err := rdop.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := s.repo.Get(newID)
	if err != nil {
		t.Fatal(err)
	}
	if catalog.NumAttr(got.Object, "area") != 55 {
		t.Fatal("work since last recovery point was not preserved")
	}
}

func TestCommittedDOPNotRecovered(t *testing.T) {
	dir := t.TempDir()
	s := newStack(t, dir)
	dop, _ := s.tm.Begin("dop-done", "da1")
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(1))
	dop.SetWorkspace(obj) //nolint:errcheck
	if _, err := dop.Checkin(version.StatusFinal, true); err != nil {
		t.Fatal(err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	s.tm.Crash()
	client := rpc.NewClient(s.trans, "ws1r")
	client.Backoff = 0
	tm2, recovered, err := NewClientTM("ws1", client, serverAddr, dir+"/ws1")
	if err != nil {
		t.Fatal(err)
	}
	defer tm2.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered %d ended DOPs", len(recovered))
	}
}

func TestConcurrentCheckinsSameDA(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)
	const n = 6
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			dop, err := s.tm.Begin("", "da1")
			if err != nil {
				errc <- err
				return
			}
			obj, err := dop.Checkout(v0, false)
			if err != nil {
				errc <- err
				return
			}
			obj.Set("area", catalog.Float(float64(50)))
			if err := dop.SetWorkspace(obj); err != nil {
				errc <- err
				return
			}
			if _, err := dop.Checkin(version.StatusWorking, false); err != nil {
				errc <- err
				return
			}
			errc <- dop.Commit()
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	g, _ := s.repo.Graph("da1")
	if g.Len() != n+1 {
		t.Fatalf("graph len = %d, want %d", g.Len(), n+1)
	}
	if !g.Acyclic() {
		t.Fatal("derivation graph corrupted by concurrency")
	}
	kids := g.Children(v0)
	if len(kids) != n {
		t.Fatalf("children of v0 = %d, want %d", len(kids), n)
	}
}

func TestCheckinWithoutWorkspace(t *testing.T) {
	s := newStack(t, "")
	dop, _ := s.tm.Begin("", "da1")
	if _, err := dop.Checkin(version.StatusWorking, true); !errors.Is(err, ErrNothingToCommit) {
		t.Fatalf("empty checkin = %v", err)
	}
}

func TestOperationsAfterEndRejected(t *testing.T) {
	s := newStack(t, "")
	dop, _ := s.tm.Begin("", "da1")
	if err := dop.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout("v0", false); !errors.Is(err, ErrDOPNotActive) {
		t.Fatalf("checkout after abort = %v", err)
	}
	if err := dop.Commit(); !errors.Is(err, ErrDOPNotActive) {
		t.Fatalf("commit after abort = %v", err)
	}
	if err := dop.Abort(); !errors.Is(err, ErrDOPNotActive) {
		t.Fatalf("double abort = %v", err)
	}
}

func TestBeginDuplicateDOPID(t *testing.T) {
	s := newStack(t, "")
	if _, err := s.tm.Begin("dup", "da1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tm.Begin("dup", "da1"); err == nil {
		t.Fatal("duplicate DOP id accepted")
	}
}

func TestPhaseStrings(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseActive:    "active",
		PhaseSuspended: "suspended",
		PhaseCommitted: "committed",
		PhaseAborted:   "aborted",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %s", p, p.String())
		}
	}
}
