package txn

import (
	"sync"

	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
)

// cacheDir is the server-TM's registry of workstation cache contents: which
// workstation holds which version, at which callback address, under which
// cache epoch. Checkout and checkin register entries; version-change events
// from the repository fan out as callback invalidations to every registered
// workstation (DESIGN.md §4).
//
// The registry is volatile by design. After a server crash it starts empty —
// workstation caches keep their entries and simply re-register on their next
// checkout, and because cache reads are always hash-revalidated at the
// server, the lost registrations cost at most missed (best-effort anyway)
// callbacks, never stale reads. Nothing here touches the checkpoint
// invariants of DESIGN.md §3.5.
type cacheDir struct {
	mu    sync.Mutex
	byVer map[version.ID]map[string]cacheReg
	// byWS mirrors byVer per workstation with a registration clock, so the
	// per-workstation bound below can evict oldest-first.
	byWS  map[string]map[version.ID]uint64
	clock uint64
}

// cacheReg is one workstation's registration.
type cacheReg struct {
	addr  string
	epoch uint64
}

// maxRegsPerWS bounds the registrations kept per workstation. Client caches
// hold at most DefaultCacheEntries versions (LRU), so tracking a couple of
// multiples of that keeps every useful callback while keeping server memory
// O(workstations), not O(history) — the same bounded-by-live-state
// discipline §3.5 applies to disk.
const maxRegsPerWS = 2 * DefaultCacheEntries

func newCacheDir() *cacheDir {
	return &cacheDir{
		byVer: make(map[version.ID]map[string]cacheReg),
		byWS:  make(map[string]map[version.ID]uint64),
	}
}

// register records that workstation ws (callback addr, cache epoch) holds
// id. A registration from a newer epoch replaces its predecessor, so
// callbacks never chase a dead incarnation for long; per workstation the
// oldest registration is evicted beyond maxRegsPerWS (its client-side entry
// has long been LRU-evicted too, so the lost callback would have been a
// no-op).
func (d *cacheDir) register(ws, addr string, epoch uint64, id version.ID) {
	if ws == "" || addr == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	regs, ok := d.byVer[id]
	if !ok {
		regs = make(map[string]cacheReg)
		d.byVer[id] = regs
	}
	if cur, ok := regs[ws]; ok && epoch < cur.epoch {
		return
	}
	regs[ws] = cacheReg{addr: addr, epoch: epoch}
	seen, ok := d.byWS[ws]
	if !ok {
		seen = make(map[version.ID]uint64)
		d.byWS[ws] = seen
	}
	d.clock++
	seen[id] = d.clock
	for len(seen) > maxRegsPerWS {
		var victim version.ID
		var oldest uint64
		for v, c := range seen {
			if victim == "" || c < oldest {
				victim, oldest = v, c
			}
		}
		d.unregisterLocked(ws, victim)
	}
}

// unregisterLocked removes one (ws, id) registration. d.mu must be held.
func (d *cacheDir) unregisterLocked(ws string, id version.ID) {
	if seen, ok := d.byWS[ws]; ok {
		delete(seen, id)
		if len(seen) == 0 {
			delete(d.byWS, ws)
		}
	}
	if regs, ok := d.byVer[id]; ok {
		delete(regs, ws)
		if len(regs) == 0 {
			delete(d.byVer, id)
		}
	}
}

// dropWS forgets every registration of workstation ws (lease expiry: the
// endpoint is dead, so queued callbacks to it would only burn notifier
// retries). The workstation's cache keeps its entries and re-registers on
// its next checkout after Rejoin.
func (d *cacheDir) dropWS(ws string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id := range d.byWS[ws] {
		if regs, ok := d.byVer[id]; ok {
			delete(regs, ws)
			if len(regs) == 0 {
				delete(d.byVer, id)
			}
		}
	}
	delete(d.byWS, ws)
}

// drop forgets every registration of id (after an invalidating push the
// clients drop their entries too).
func (d *cacheDir) drop(id version.ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for ws := range d.byVer[id] {
		if seen, ok := d.byWS[ws]; ok {
			delete(seen, id)
			if len(seen) == 0 {
				delete(d.byWS, ws)
			}
		}
	}
	delete(d.byVer, id)
}

// registrations reports the total registration count (diagnostics, tests).
func (d *cacheDir) registrations() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, regs := range d.byVer {
		n += len(regs)
	}
	return n
}

// wsTarget groups one workstation's pending invalidations. When the same
// workstation is registered under different epochs for different versions,
// the newest epoch wins (the client ignores callbacks for any other).
type wsTarget struct {
	addr    string
	epoch   uint64
	entries []invalidation
}

// collect gathers, per registered workstation, the invalidation entries for
// a set of affected versions.
func (d *cacheDir) collect(pairs []invalidation) map[string]*wsTarget {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]*wsTarget)
	for _, inv := range pairs {
		for ws, reg := range d.byVer[inv.DOV] {
			t, ok := out[ws]
			if !ok {
				t = &wsTarget{addr: reg.addr, epoch: reg.epoch}
				out[ws] = t
			} else if reg.epoch > t.epoch {
				t.addr, t.epoch = reg.addr, reg.epoch
			}
			t.entries = append(t.entries, inv)
		}
	}
	return out
}

// SetNotifier installs the callback channel used to push cache
// invalidations to workstations (core wires an rpc.Notifier over the
// workstation/server transport). Nil disables pushes; registrations are
// still tracked so a notifier can be attached later.
func (s *ServerTM) SetNotifier(n *rpc.Notifier) {
	s.notifier.Store(n)
}

// VersionChanged is the repository change hook (repo.SetChangeHook): it
// translates version mutations into cache invalidations and pushes them to
// every registered workstation. Checkins supersede their parents; status
// updates refresh (or, for StatusInvalid, evict) the version itself.
func (s *ServerTM) VersionChanged(ev repo.ChangeEvent) {
	n := s.notifier.Load()
	if n == nil {
		return
	}
	var pairs []invalidation
	switch ev.Kind {
	case repo.ChangeCheckin:
		for _, p := range ev.Parents {
			pairs = append(pairs, invalidation{DOV: p, Kind: invSuperseded, By: ev.ID})
		}
	case repo.ChangeStatus:
		pairs = append(pairs, invalidation{DOV: ev.ID, Kind: invStatus, Status: ev.Status})
	}
	if len(pairs) == 0 {
		return
	}
	targets := s.cdir.collect(pairs)
	for _, t := range targets {
		n.Notify(t.addr, MethodInvalidate, invalidateMsg{Epoch: t.epoch, Entries: t.entries}.encode())
	}
	if ev.Kind == repo.ChangeStatus && ev.Status == version.StatusInvalid {
		s.cdir.drop(ev.ID)
	}
}
