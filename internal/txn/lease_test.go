package txn

import (
	"errors"
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/fault"
	"concord/internal/rpc"
	"concord/internal/version"
)

// newSecondTM attaches another workstation's client-TM to an existing stack.
func newSecondTM(t *testing.T, s *stack, ws string) *ClientTM {
	t.Helper()
	client := rpc.NewClient(s.trans, ws)
	client.Backoff = 0
	tm, recovered, err := NewClientTM(ws, client, serverAddr, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh TM recovered %d DOPs", len(recovered))
	}
	t.Cleanup(func() { tm.Close() })
	return tm
}

func TestLeaseEstablishedByBeginAndRenewedByHeartbeat(t *testing.T) {
	s := newStack(t, "")
	if s.server.HasLease("ws1") {
		t.Fatal("lease exists before any Begin")
	}
	if _, err := s.tm.Begin("d1", "da1"); err != nil {
		t.Fatal(err)
	}
	if !s.server.HasLease("ws1") {
		t.Fatal("Begin did not establish a workstation lease")
	}
	if err := s.server.Heartbeat("ws1"); err != nil {
		t.Fatalf("heartbeat under a live lease: %v", err)
	}
	if err := s.server.Heartbeat("ghost"); !errors.Is(err, ErrNoLease) {
		t.Fatalf("heartbeat for unknown workstation = %v, want ErrNoLease", err)
	}
	// The client-side heartbeat travels the wire and decodes the sentinel.
	if err := s.tm.heartbeat(time.Second); err != nil {
		t.Fatalf("wire heartbeat: %v", err)
	}
}

func TestReaperReclaimsExpiredWorkstation(t *testing.T) {
	s := newStack(t, "")
	s.server.LeaseTTL = 40 * time.Millisecond
	v0 := s.seedDOV(t, "v0", 100)

	dop, err := s.tm.Begin("d1", "da1")
	if err != nil {
		t.Fatal(err)
	}
	// Hold the derivation lock on v0 and stage (but never prepare) a branch.
	if _, err := dop.Checkout(v0, true); err != nil {
		t.Fatal(err)
	}
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(50))
	orphan := &version.DOV{ID: "vorphan", DOT: "floorplan", DA: "da1", Object: obj, Status: version.StatusWorking}
	if err := s.server.Stage("d1", "tx-orphan", orphan, true, nil); err != nil {
		t.Fatal(err)
	}

	time.Sleep(80 * time.Millisecond)
	if n := s.server.ReapExpiredLeases(); n != 1 {
		t.Fatalf("reaped %d workstations, want 1", n)
	}
	if s.server.HasLease("ws1") {
		t.Fatal("lease survived the reaper")
	}
	if err := s.server.Heartbeat("ws1"); !errors.Is(err, ErrNoLease) {
		t.Fatalf("heartbeat after reap = %v, want ErrNoLease", err)
	}
	// Presumed abort: the unprepared staged branch is gone.
	sh := s.server.stagedShard("tx-orphan")
	sh.mu.Lock()
	_, still := sh.m["tx-orphan"]
	sh.mu.Unlock()
	if still {
		t.Fatal("unprepared staged branch survived the reap")
	}
	// The derivation lock was bulk-released: a second workstation acquires
	// it well inside the 300ms lock timeout instead of queueing forever.
	tm2 := newSecondTM(t, s, "ws2")
	dop2, err := tm2.Begin("d2", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop2.Checkout(v0, true); err != nil {
		t.Fatalf("second workstation could not derive after reap: %v", err)
	}
}

func TestPreparedBranchPinnedAcrossReap(t *testing.T) {
	s := newStack(t, "")
	s.server.LeaseTTL = 40 * time.Millisecond
	if err := s.server.beginWS("d1", "da1", "wsx"); err != nil {
		t.Fatal(err)
	}
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(60))
	v := &version.DOV{ID: "vpin", DOT: "floorplan", DA: "da1", Object: obj, Status: version.StatusWorking}
	if err := s.server.Stage("d1", "tx-pin", v, true, nil); err != nil {
		t.Fatal(err)
	}
	if vote, err := s.server.Prepare("tx-pin"); err != nil || vote != rpc.VoteCommit {
		t.Fatalf("Prepare = (%v, %v), want VoteCommit", vote, err)
	}

	time.Sleep(80 * time.Millisecond)
	if n := s.server.ReapExpiredLeases(); n != 1 {
		t.Fatalf("reaped %d workstations, want 1", n)
	}
	// The prepared branch is pinned: the dead coordinator's log may hold a
	// durable COMMIT, so the recovered workstation must be able to land it.
	if err := s.server.Commit("tx-pin"); err != nil {
		t.Fatalf("Commit of prepared branch after reap: %v", err)
	}
	if ok, err := s.repo.Exists("vpin"); err != nil || !ok {
		t.Fatalf("committed version missing after reap (ok=%t err=%v)", ok, err)
	}
}

func TestRejoinRestoresSessionAndResumesDOP(t *testing.T) {
	s := newStack(t, "")
	s.server.LeaseTTL = 40 * time.Millisecond
	v0 := s.seedDOV(t, "v0", 100)
	dop, err := s.tm.Begin("d1", "da1")
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(80 * time.Millisecond)
	if n := s.server.ReapExpiredLeases(); n != 1 {
		t.Fatalf("reaped %d workstations, want 1", n)
	}
	if err := s.tm.Rejoin(); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if !s.server.HasLease("ws1") {
		t.Fatal("Rejoin did not re-establish the lease")
	}
	// The re-registered DOP completes a full checkout → modify → checkin.
	obj, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatalf("checkout after rejoin: %v", err)
	}
	obj.Set("area", catalog.Float(80))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	newID, err := dop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatalf("checkin after rejoin: %v", err)
	}
	if ok, err := s.repo.Exists(newID); err != nil || !ok {
		t.Fatalf("checked-in version missing after rejoin (ok=%t err=%v)", ok, err)
	}
}

func TestHeartbeatLoopRenewsAndAutoRejoins(t *testing.T) {
	s := newStack(t, "")
	s.server.LeaseTTL = 60 * time.Millisecond
	if _, err := s.tm.Begin("d1", "da1"); err != nil {
		t.Fatal(err)
	}
	s.tm.StartHeartbeat(15 * time.Millisecond)
	defer s.tm.StopHeartbeat()

	// Renewal: the reaper finds nothing to reclaim while heartbeats flow.
	time.Sleep(150 * time.Millisecond)
	if n := s.server.ReapExpiredLeases(); n != 0 {
		t.Fatalf("reaper reclaimed %d live workstations", n)
	}
	// Forget the lease server-side (as a server restart would): the next
	// heartbeat sees ErrNoLease and the loop re-joins on its own.
	s.server.leaseMu.Lock()
	delete(s.server.leases, "ws1")
	s.server.leaseMu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for !s.server.HasLease("ws1") {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop did not auto-rejoin after lease loss")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHeartbeatDropFaultExpiresLease(t *testing.T) {
	s := newStack(t, "")
	s.server.LeaseTTL = 50 * time.Millisecond
	s.server.Faults = fault.New()
	if _, err := s.tm.Begin("d1", "da1"); err != nil {
		t.Fatal(err)
	}
	s.server.Faults.Arm(FaultHeartbeatDrop, errors.New("injected heartbeat loss"))
	if err := s.server.Heartbeat("ws1"); err == nil {
		t.Fatal("armed heartbeat-drop point did not refuse the renewal")
	}
	time.Sleep(100 * time.Millisecond)
	// An armed lease-expired point delays the reaper pass.
	s.server.Faults.Arm(FaultLeaseExpired, errors.New("injected reaper delay"))
	if n := s.server.ReapExpiredLeases(); n != 0 {
		t.Fatalf("delayed reaper pass reclaimed %d workstations", n)
	}
	s.server.Faults.Disarm(FaultLeaseExpired)
	if n := s.server.ReapExpiredLeases(); n != 1 {
		t.Fatalf("reaped %d workstations, want 1", n)
	}
}

func TestEndDOPDropsLeaseMembership(t *testing.T) {
	s := newStack(t, "")
	s.server.LeaseTTL = 40 * time.Millisecond
	v0 := s.seedDOV(t, "v0", 100)
	dop, err := s.tm.Begin("d1", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, true); err != nil {
		t.Fatal(err)
	}
	if err := dop.Abort(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	// The lease itself still expires, but its DOP set is empty: the reap
	// must not touch anything on behalf of the ended DOP.
	if n := s.server.ReapExpiredLeases(); n != 1 {
		t.Fatalf("reaped %d workstations, want 1", n)
	}
}

func TestHealthRPCReportsOK(t *testing.T) {
	s := newStack(t, "")
	mode, cause, err := s.tm.ServerHealth()
	if err != nil {
		t.Fatalf("ServerHealth: %v", err)
	}
	if mode != "ok" || cause != "" {
		t.Fatalf("health = (%q, %q), want (ok, \"\")", mode, cause)
	}
}

// TestCheckoutBudgetBoundsLockWait pins deadline propagation end to end: the
// client's per-call budget travels the wire and caps the server-side
// derivation-lock wait, so a short budget fails fast even when the server's
// own LockTimeout is generous.
func TestCheckoutBudgetBoundsLockWait(t *testing.T) {
	s := newStack(t, "")
	s.server.LockTimeout = 5 * time.Second
	v0 := s.seedDOV(t, "v0", 100)
	dop, err := s.tm.Begin("d1", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, true); err != nil {
		t.Fatal(err)
	}
	tm2 := newSecondTM(t, s, "ws2")
	tm2.OpBudget = 100 * time.Millisecond
	dop2, err := tm2.Begin("d2", "da1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := dop2.Checkout(v0, true); err == nil {
		t.Fatal("conflicting derivation succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budgeted checkout took %v; the 100ms budget did not bound the 5s lock wait", elapsed)
	}
}
