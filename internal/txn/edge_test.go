package txn

import (
	"errors"
	"testing"

	"concord/internal/catalog"
	"concord/internal/rpc"
	"concord/internal/version"
)

func TestCheckoutUnknownDOV(t *testing.T) {
	s := newStack(t, "")
	s.scopes.GrantUse("da1", "ghost") // in scope but not stored
	dop, _ := s.tm.Begin("", "da1")
	if _, err := dop.Checkout("ghost", false); err == nil {
		t.Fatal("checkout of missing DOV succeeded")
	}
	// A failed derive-checkout must not leave a dangling derivation lock.
	if _, err := dop.Checkout("ghost", true); err == nil {
		t.Fatal("derive checkout of missing DOV succeeded")
	}
	if got := s.locks.Holds(dop.ID(), "dov/ghost"); got != 0 {
		t.Fatalf("dangling lock mode %s", got)
	}
}

func TestMultipleCheckinsOneDOP(t *testing.T) {
	// "Stepwise improvement": a DOP may check in several successive states.
	s := newStack(t, "")
	dop, _ := s.tm.Begin("", "da1")
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(100))
	dop.SetWorkspace(obj) //nolint:errcheck
	v1, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(90))
	v2, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Fatal("checkins produced the same version ID")
	}
	if dop.LastResult() != v2 {
		t.Fatalf("LastResult = %s, want %s", dop.LastResult(), v2)
	}
	if s.repo.DOVCount() != 2 {
		t.Fatalf("DOV count = %d", s.repo.DOVCount())
	}
}

func TestSavepointRestoreNilWorkspace(t *testing.T) {
	s := newStack(t, "")
	dop, _ := s.tm.Begin("", "da1")
	// Savepoint before any workspace exists.
	if err := dop.Save("empty"); err != nil {
		t.Fatal(err)
	}
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(1))
	dop.SetWorkspace(obj) //nolint:errcheck
	if err := dop.Restore("empty"); err != nil {
		t.Fatal(err)
	}
	if dop.Workspace() != nil {
		t.Fatal("restore to pre-workspace state should clear workspace")
	}
}

func TestSavepointOverwriteSameName(t *testing.T) {
	s := newStack(t, "")
	dop, _ := s.tm.Begin("", "da1")
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(10))
	dop.SetWorkspace(obj) //nolint:errcheck
	if err := dop.Save("sp"); err != nil {
		t.Fatal(err)
	}
	dop.Workspace().Set("area", catalog.Float(20))
	if err := dop.Save("sp"); err != nil {
		t.Fatal(err)
	}
	dop.Workspace().Set("area", catalog.Float(30))
	if err := dop.Restore("sp"); err != nil {
		t.Fatal(err)
	}
	if got := catalog.NumAttr(dop.Workspace(), "area"); got != 20 {
		t.Fatalf("area = %g, want 20 (latest save wins)", got)
	}
	if len(dop.Savepoints()) != 1 {
		t.Fatalf("savepoints = %v", dop.Savepoints())
	}
}

func TestSuspendedDOPSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s := newStack(t, dir)
	dop, err := s.tm.Begin("susp-dop", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(7))
	dop.SetWorkspace(obj) //nolint:errcheck
	if err := dop.Suspend(); err != nil {
		t.Fatal(err)
	}
	s.tm.Crash()
	rec := newTMAt(t, s, dir)
	if len(rec) != 1 {
		t.Fatalf("recovered %d", len(rec))
	}
	rdop := rec[0]
	if rdop.Phase() != PhaseSuspended {
		t.Fatalf("phase = %s, want suspended preserved", rdop.Phase())
	}
	if err := rdop.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := catalog.NumAttr(rdop.Workspace(), "area"); got != 7 {
		t.Fatalf("area after resume = %g", got)
	}
}

// newTMAt opens a second client-TM incarnation against the same directory,
// returning the recovered DOP contexts. The RPC client id differs from the
// first incarnation's so request IDs never collide in the dedup cache.
func newTMAt(t *testing.T, s *stack, dir string) []*DOP {
	t.Helper()
	client := rpc.NewClient(s.trans, "ws1-incarnation-2")
	client.Backoff = 0
	tm, recovered, err := NewClientTM("ws1", client, serverAddr, dir+"/ws1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tm.Close() })
	return recovered
}

func TestDerivationFromUsageVisibleForeignDOV(t *testing.T) {
	// The paper's cross-DA case: "the DOPs were initiated by multiple DAs
	// with the shared DOV derived in one DA and with the other DAs being
	// authorized to read this DOV due to established usage relationships.
	// ... the DOPs ... derive separate new versions that make it to their
	// own DAs' derivation graphs" (Sect. 5.2).
	s := newStack(t, "")
	v0 := s.seedDOV(t, "shared", 100)
	if err := s.repo.CreateGraph("da2"); err != nil {
		t.Fatal(err)
	}
	// Usage grant: da2 may read da1's version.
	s.scopes.GrantUse("da2", string(v0))

	dop, err := s.tm.Begin("", "da2")
	if err != nil {
		t.Fatal(err)
	}
	in, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatalf("checkout of usage-visible DOV: %v", err)
	}
	in.Set("area", catalog.Float(80))
	dop.SetWorkspace(in) //nolint:errcheck
	id, err := dop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatalf("checkin derived from foreign DOV: %v", err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	// The derived version lives in da2's graph with the foreign parent
	// recorded; da1's graph is untouched.
	g2, _ := s.repo.Graph("da2")
	if !g2.Contains(id) {
		t.Fatal("derived version not in da2's graph")
	}
	got, _ := s.repo.Get(id)
	if len(got.Parents) != 1 || got.Parents[0] != v0 {
		t.Fatalf("parents = %v", got.Parents)
	}
	g1, _ := s.repo.Graph("da1")
	if g1.Contains(id) {
		t.Fatal("derived version leaked into da1's graph")
	}
	// Write conflicts are prevented: graphs stay disjoint and acyclic.
	if err := s.repo.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseLockUnknownDOP(t *testing.T) {
	s := newStack(t, "")
	if err := s.server.ReleaseDerivationLock("ghost-dop", "v"); err == nil {
		t.Fatal("release for unknown DOP accepted")
	}
	if _, err := s.server.Checkout("ghost-dop", "v", false); !errors.Is(err, ErrUnknownDOP) {
		t.Fatalf("checkout for unknown DOP = %v", err)
	}
}

// TestCommitScopeOwnershipFailureRetries pins the post-checkin tail contract
// of ServerTM.Commit: once the version is durably installed, a scope-
// ownership failure is surfaced as an error while the staged entry is
// retained, so a retried Commit converges through the idempotent duplicate
// path instead of losing the tail (or double-installing the version).
func TestCommitScopeOwnershipFailureRetries(t *testing.T) {
	s := newStack(t, "")
	if err := s.server.Begin("dop1", "da1"); err != nil {
		t.Fatal(err)
	}
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(42))
	v := &version.DOV{ID: "vtail", DOT: "floorplan", DA: "da1", Object: obj, Status: version.StatusWorking}
	if err := s.server.Stage("dop1", "txtail", v, true, nil); err != nil {
		t.Fatal(err)
	}
	// A foreign owner on the version's ID makes scopes.Own fail after the
	// checkin has already committed.
	if err := s.scopes.Own("intruder", "vtail"); err != nil {
		t.Fatal(err)
	}
	err := s.server.Commit("txtail")
	if err == nil {
		t.Fatal("Commit succeeded although scope ownership failed")
	}
	if ok, rerr := s.repo.Exists("vtail"); rerr != nil || !ok {
		t.Fatalf("version must be durably installed despite the tail failure (ok=%t err=%v)", ok, rerr)
	}
	// The retry re-runs only the tail (still failing while the intruder
	// holds the ID) and must not report a duplicate-DOV error.
	if err := s.server.Commit("txtail"); err == nil {
		t.Fatal("retry succeeded although the intruder still owns the ID")
	} else if errors.Is(err, version.ErrDuplicateDOV) {
		t.Fatalf("retry surfaced the duplicate install instead of the tail failure: %v", err)
	}
	// Once the conflict clears, the retried Commit converges: ownership
	// lands with the version's DA and the staged entry is consumed.
	s.scopes.ReleaseDA("intruder")
	if err := s.server.Commit("txtail"); err != nil {
		t.Fatalf("Commit after conflict cleared: %v", err)
	}
	if owner, ok := s.scopes.Owner("vtail"); !ok || owner != "da1" {
		t.Fatalf("owner = %q/%t, want da1", owner, ok)
	}
	if s.repo.DOVCount() != 1 {
		t.Fatalf("DOV count = %d, want 1 (no double install)", s.repo.DOVCount())
	}
	// Idempotence after completion: a late duplicate Commit is a no-op.
	if err := s.server.Commit("txtail"); err != nil {
		t.Fatalf("late duplicate Commit: %v", err)
	}
}
