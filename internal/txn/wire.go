// Package txn implements CONCORD's Tool Execution (TE) level: design
// operations (DOPs) as long-lived ACID transactions managed by a split
// transaction manager (Sects. 4.3, 5.2). In CONCORD's layer terms it is the
// transactional access path of design object management (DOM) — the level
// that moves design object versions between the server repository and the
// workstations, below the design flow management (DFM) and cooperation
// layers.
//
// The server-TM resides with the design data repository: it handles
// checkout/checkin, short locks protecting the derivation graphs, long
// derivation locks, and the durable installation of new DOVs. The client-TM
// resides on the workstation: it manages the internal structure of DOPs —
// savepoints (Save/Restore), Suspend/Resume, and automatic recovery points
// that bound the work lost in a workstation crash. All critical
// client-TM/server-TM interactions (Begin-of-DOP, checkout, checkin,
// End-of-DOP) run over transactional RPC, with checkin committed by a
// two-phase commit between the two TM halves.
//
// Checkout/checkin traffic is volume-optimized by a workstation object cache
// (ObjectCache, DESIGN.md §4): re-checkouts of cached versions transfer a
// NotModified acknowledgement, related versions travel as binenc deltas
// against a cached base, and checkins ship deltas the server applies and
// verifies by content hash before anything is staged. The server pushes
// callback invalidations to registered caches when versions change; the
// cooperative read path itself stays server-mediated (every checkout
// revalidates at the server under CM rules), so callbacks steer freshness
// without ever carrying correctness.
package txn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"concord/internal/binenc"
	"concord/internal/version"
)

// RPC method names served by the server-TM, plus the cache-invalidation
// callback method served by every workstation (DESIGN.md §4).
const (
	MethodBegin    = "tm/begin"
	MethodCheckout = "tm/checkout"
	MethodStage    = "tm/stage"
	MethodAbortDOP = "tm/abort-dop"
	MethodRelease  = "tm/release-lock"
	// MethodInvalidate is pushed server→workstation when a version another
	// DA can see changes (checkin supersession, status promotion or
	// invalidation); the workstation's ObjectCache serves it.
	MethodInvalidate = "cache/invalidate"
)

// beginMsg registers a DOP with the server-TM. WS (wire rev 3) names the
// workstation whose lease the DOP is opened under ("" = no session tracking,
// the pre-lease behaviour).
type beginMsg struct {
	DOP string
	DA  string
	WS  string
}

// checkoutMsg requests a DOV for processing. Beyond identifying the version,
// it negotiates the workstation cache (wire rev 2): the client names a base
// version it holds (proved by content hash) so the server can answer
// NotModified or ship a delta, and identifies its cache incarnation so the
// server can register it for callback invalidations.
type checkoutMsg struct {
	DOP string
	DA  string
	DOV version.ID
	// Derive acquires a long derivation lock preventing concurrent
	// checkout-for-derivation of the same version.
	Derive bool
	// WS identifies the workstation cache for callback registration
	// ("" disables caching for this checkout).
	WS string
	// CBAddr is the transport address serving MethodInvalidate on the
	// workstation ("" = no callbacks wanted).
	CBAddr string
	// Epoch is the workstation cache incarnation (bumped on every restart);
	// the server replaces registrations of older epochs.
	Epoch uint64
	// BaseID names a version whose canonical payload encoding the client
	// holds in its cache ("" = none; cold cache or no plausible base).
	BaseID version.ID
	// BaseHash is the content hash of that cached encoding; the server
	// only uses the base if the hash matches its own, so a divergent or
	// corrupt client cache degrades to a full transfer, never to wrong data.
	BaseHash []byte
}

// Checkout response modes (wire rev 2).
const (
	// coFull carries the complete DOV (cold cache, or delta not worthwhile).
	coFull byte = 1
	// coNotModified says the client's cached payload for the requested
	// version is current; only refreshed metadata travels.
	coNotModified byte = 2
	// coDelta carries a binenc delta from the offered base to the target.
	coDelta byte = 3
)

// checkoutResp is the server's answer to a checkout.
type checkoutResp struct {
	Mode byte
	// DOV is set in coFull mode.
	DOV dovWire
	// Meta carries the payload-free version record in coNotModified and
	// coDelta modes (the client re-attaches the payload from its cache or
	// the delta).
	Meta dovMeta
	// Hash is the content hash of the target's canonical payload encoding
	// (all modes; the client verifies reconstruction against it).
	Hash []byte
	// BaseID echoes the delta base (coDelta only).
	BaseID version.ID
	// Delta is the binenc edit script base→target (coDelta only).
	Delta []byte
	// BumpEpoch (wire rev 4) orders the workstation to retire its cache
	// incarnation: the server's notifier dropped invalidations destined for
	// this workstation's callback endpoint, so cached metadata may be stale.
	BumpEpoch bool
}

// dovMeta is a version record without its payload.
type dovMeta struct {
	ID        version.ID
	DOT       string
	DA        string
	Parents   []version.ID
	Status    version.Status
	Fulfilled []string
}

// stageMsg transfers a derived DOV to the server ahead of the checkin 2PC.
// Wire rev 2 adds delta shipping: when BaseID is set, DOV.Object is empty and
// the payload travels as Delta against the named base; Hash always carries
// the content hash of the full canonical encoding, which the server verifies
// before anything is staged or logged.
type stageMsg struct {
	DOP  string
	TxID string
	// DOV carries the version record; Object is nil in delta form.
	DOV dovWire
	// Root adopts the version as a graph root (initial DOV0).
	Root bool
	// Hash is the content hash of the full payload encoding ("" pre-rev-2
	// semantics: no verification — kept decodable for staged records).
	Hash []byte
	// BaseID / BaseHash / Delta are the delta form (BaseID == "" = full).
	BaseID   version.ID
	BaseHash []byte
	Delta    []byte
	// WS / CBAddr / Epoch register the committing workstation's cache for
	// the new version (it retains the bytes it just shipped).
	WS     string
	CBAddr string
	Epoch  uint64
}

// Cache-invalidation kinds (server→workstation callbacks).
const (
	// invStatus: the version's lifecycle status changed; the cached record
	// must be refreshed (or dropped when the status is invalid).
	invStatus byte = 1
	// invSuperseded: a new version was checked in over this one; the entry
	// stays useful as a delta base but is no longer the tip of its line.
	invSuperseded byte = 2
)

// invalidation is one entry of an invalidateMsg.
type invalidation struct {
	DOV  version.ID
	Kind byte
	// Status is the new lifecycle status (invStatus).
	Status version.Status
	// By is the superseding version (invSuperseded).
	By version.ID
}

// invalidateMsg is the callback payload pushed to a workstation cache.
type invalidateMsg struct {
	// Epoch is the cache incarnation the registration was made under; a
	// restarted cache ignores callbacks addressed to its predecessor.
	Epoch   uint64
	Entries []invalidation
}

// dovWire is the wire representation of a version.
type dovWire struct {
	ID        version.ID
	DOT       string
	DA        string
	Parents   []version.ID
	Object    []byte
	Status    version.Status
	Fulfilled []string
}

// releaseMsg drops a derivation lock early (e.g. on DOP abort path).
type releaseMsg struct {
	DOP string
	DOV version.ID
}

// The wire messages use the hand-rolled binenc format: they are exchanged
// on every DOP operation, and gob's per-message engine compilation dominated
// the server CPU profile under multi-workstation load. The client-TM's
// context snapshots (ctxSnapshot) stay on gob — they are written at
// recovery-point frequency, not per RPC.

func (m beginMsg) encode() []byte {
	w := binenc.NewWriter(48)
	w.Str(m.DOP)
	w.Str(m.DA)
	w.Str(m.WS)
	return w.Bytes()
}

// encodeInto variants write into caller-supplied (usually pooled) writers:
// the client-TM encodes checkout and stage messages on every DOP operation,
// and with the writer pool those encodes stop allocating. Server→client
// responses stay on encode() — the rpc deduplication layer retains response
// buffers, so they must own fresh memory.

func decodeBegin(data []byte) (beginMsg, error) {
	r := binenc.NewReader(data)
	m := beginMsg{DOP: r.Str(), DA: r.Str(), WS: r.Str()}
	return m, wireErr(r)
}

func (m checkoutMsg) encodeInto(w *binenc.Writer) {
	w.Str(m.DOP)
	w.Str(m.DA)
	w.Str(string(m.DOV))
	w.Bool(m.Derive)
	w.Str(m.WS)
	w.Str(m.CBAddr)
	w.U64(m.Epoch)
	w.Str(string(m.BaseID))
	w.Blob(m.BaseHash)
}

func (m checkoutMsg) encode() []byte {
	w := binenc.NewWriter(96)
	m.encodeInto(w)
	return w.Bytes()
}

func decodeCheckout(data []byte) (checkoutMsg, error) {
	r := binenc.NewReader(data)
	m := checkoutMsg{DOP: r.Str(), DA: r.Str(), DOV: version.ID(r.Str()), Derive: r.Bool()}
	m.WS = r.Str()
	m.CBAddr = r.Str()
	m.Epoch = r.U64()
	m.BaseID = version.ID(r.Str())
	m.BaseHash = r.Blob()
	return m, wireErr(r)
}

func (m dovMeta) encodeInto(w *binenc.Writer) {
	w.Str(string(m.ID))
	w.Str(m.DOT)
	w.Str(m.DA)
	w.U64(uint64(len(m.Parents)))
	for _, p := range m.Parents {
		w.Str(string(p))
	}
	w.Byte(byte(m.Status))
	w.Strs(m.Fulfilled)
}

func decodeDOVMeta(r *binenc.Reader) dovMeta {
	m := dovMeta{ID: version.ID(r.Str()), DOT: r.Str(), DA: r.Str()}
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		m.Parents = append(m.Parents, version.ID(r.Str()))
	}
	m.Status = version.Status(r.Byte())
	m.Fulfilled = r.Strs()
	return m
}

func (m checkoutResp) encode() []byte {
	w := binenc.NewWriter(128 + len(m.DOV.Object) + len(m.Delta))
	w.Byte(m.Mode)
	switch m.Mode {
	case coFull:
		m.DOV.encodeInto(w)
		w.Blob(m.Hash)
	case coNotModified:
		m.Meta.encodeInto(w)
		w.Blob(m.Hash)
	case coDelta:
		m.Meta.encodeInto(w)
		w.Blob(m.Hash)
		w.Str(string(m.BaseID))
		w.Blob(m.Delta)
	}
	w.Bool(m.BumpEpoch)
	return w.Bytes()
}

func decodeCheckoutResp(data []byte) (checkoutResp, error) {
	r := binenc.NewReader(data)
	m := checkoutResp{Mode: r.Byte()}
	switch m.Mode {
	case coFull:
		m.DOV = decodeDOVWire(r)
		m.Hash = r.Blob()
	case coNotModified:
		m.Meta = decodeDOVMeta(r)
		m.Hash = r.Blob()
	case coDelta:
		m.Meta = decodeDOVMeta(r)
		m.Hash = r.Blob()
		m.BaseID = version.ID(r.Str())
		m.Delta = r.Blob()
	default:
		if r.Err() == nil {
			return m, fmt.Errorf("txn: decode checkout response: unknown mode 0x%02x", m.Mode)
		}
		return m, wireErr(r)
	}
	m.BumpEpoch = r.Bool()
	return m, wireErr(r)
}

func (m invalidateMsg) encode() []byte {
	w := binenc.NewWriter(32 + 48*len(m.Entries))
	w.U64(m.Epoch)
	w.U64(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.Str(string(e.DOV))
		w.Byte(e.Kind)
		w.Byte(byte(e.Status))
		w.Str(string(e.By))
	}
	return w.Bytes()
}

func decodeInvalidate(data []byte) (invalidateMsg, error) {
	r := binenc.NewReader(data)
	m := invalidateMsg{Epoch: r.U64()}
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		m.Entries = append(m.Entries, invalidation{
			DOV: version.ID(r.Str()), Kind: r.Byte(),
			Status: version.Status(r.Byte()), By: version.ID(r.Str()),
		})
	}
	return m, wireErr(r)
}

func (m releaseMsg) encode() []byte {
	w := binenc.NewWriter(32)
	w.Str(m.DOP)
	w.Str(string(m.DOV))
	return w.Bytes()
}

func decodeRelease(data []byte) (releaseMsg, error) {
	r := binenc.NewReader(data)
	m := releaseMsg{DOP: r.Str(), DOV: version.ID(r.Str())}
	return m, wireErr(r)
}

func (v dovWire) encodeInto(w *binenc.Writer) {
	w.Str(string(v.ID))
	w.Str(v.DOT)
	w.Str(v.DA)
	w.U64(uint64(len(v.Parents)))
	for _, p := range v.Parents {
		w.Str(string(p))
	}
	w.Blob(v.Object)
	w.Byte(byte(v.Status))
	w.Strs(v.Fulfilled)
}

func decodeDOVWire(r *binenc.Reader) dovWire {
	v := dovWire{ID: version.ID(r.Str()), DOT: r.Str(), DA: r.Str()}
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		v.Parents = append(v.Parents, version.ID(r.Str()))
	}
	v.Object = r.Blob()
	v.Status = version.Status(r.Byte())
	v.Fulfilled = r.Strs()
	return v
}

func (m stageMsg) encodeInto(w *binenc.Writer) {
	w.Str(m.DOP)
	w.Str(m.TxID)
	m.DOV.encodeInto(w)
	w.Bool(m.Root)
	w.Blob(m.Hash)
	w.Str(string(m.BaseID))
	w.Blob(m.BaseHash)
	w.Blob(m.Delta)
	w.Str(m.WS)
	w.Str(m.CBAddr)
	w.U64(m.Epoch)
}

func (m stageMsg) encode() []byte {
	w := binenc.NewWriter(192 + len(m.DOV.Object) + len(m.Delta))
	m.encodeInto(w)
	return w.Bytes()
}

func decodeStage(data []byte) (stageMsg, error) {
	r := binenc.NewReader(data)
	m := stageMsg{DOP: r.Str(), TxID: r.Str()}
	m.DOV = decodeDOVWire(r)
	m.Root = r.Bool()
	m.Hash = r.Blob()
	m.BaseID = version.ID(r.Str())
	m.BaseHash = r.Blob()
	m.Delta = r.Blob()
	m.WS = r.Str()
	m.CBAddr = r.Str()
	m.Epoch = r.U64()
	return m, wireErr(r)
}

func wireErr(r *binenc.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("txn: decode: %w", err)
	}
	return nil
}

// encode gob-encodes a non-hot message (client recovery snapshots).
func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("txn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decode gob-decodes a non-hot message.
func decode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("txn: decode: %w", err)
	}
	return nil
}
