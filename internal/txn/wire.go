// Package txn implements CONCORD's Tool Execution (TE) level: design
// operations (DOPs) as long-lived ACID transactions managed by a split
// transaction manager (Sects. 4.3, 5.2).
//
// The server-TM resides with the design data repository: it handles
// checkout/checkin, short locks protecting the derivation graphs, long
// derivation locks, and the durable installation of new DOVs. The client-TM
// resides on the workstation: it manages the internal structure of DOPs —
// savepoints (Save/Restore), Suspend/Resume, and automatic recovery points
// that bound the work lost in a workstation crash. All critical
// client-TM/server-TM interactions (Begin-of-DOP, checkout, checkin,
// End-of-DOP) run over transactional RPC, with checkin committed by a
// two-phase commit between the two TM halves.
package txn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"concord/internal/binenc"
	"concord/internal/version"
)

// RPC method names served by the server-TM.
const (
	MethodBegin    = "tm/begin"
	MethodCheckout = "tm/checkout"
	MethodStage    = "tm/stage"
	MethodAbortDOP = "tm/abort-dop"
	MethodRelease  = "tm/release-lock"
)

// beginMsg registers a DOP with the server-TM.
type beginMsg struct {
	DOP string
	DA  string
}

// checkoutMsg requests a DOV for processing.
type checkoutMsg struct {
	DOP string
	DA  string
	DOV version.ID
	// Derive acquires a long derivation lock preventing concurrent
	// checkout-for-derivation of the same version.
	Derive bool
}

// stageMsg transfers a derived DOV to the server ahead of the checkin 2PC.
type stageMsg struct {
	DOP  string
	TxID string
	// DOV carries the gob-encoded version record.
	DOV dovWire
	// Root adopts the version as a graph root (initial DOV0).
	Root bool
}

// dovWire is the wire representation of a version.
type dovWire struct {
	ID        version.ID
	DOT       string
	DA        string
	Parents   []version.ID
	Object    []byte
	Status    version.Status
	Fulfilled []string
}

// releaseMsg drops a derivation lock early (e.g. on DOP abort path).
type releaseMsg struct {
	DOP string
	DOV version.ID
}

// The wire messages use the hand-rolled binenc format: they are exchanged
// on every DOP operation, and gob's per-message engine compilation dominated
// the server CPU profile under multi-workstation load. The client-TM's
// context snapshots (ctxSnapshot) stay on gob — they are written at
// recovery-point frequency, not per RPC.

func (m beginMsg) encode() []byte {
	w := binenc.NewWriter(32)
	w.Str(m.DOP)
	w.Str(m.DA)
	return w.Bytes()
}

func decodeBegin(data []byte) (beginMsg, error) {
	r := binenc.NewReader(data)
	m := beginMsg{DOP: r.Str(), DA: r.Str()}
	return m, wireErr(r)
}

func (m checkoutMsg) encode() []byte {
	w := binenc.NewWriter(48)
	w.Str(m.DOP)
	w.Str(m.DA)
	w.Str(string(m.DOV))
	w.Bool(m.Derive)
	return w.Bytes()
}

func decodeCheckout(data []byte) (checkoutMsg, error) {
	r := binenc.NewReader(data)
	m := checkoutMsg{DOP: r.Str(), DA: r.Str(), DOV: version.ID(r.Str()), Derive: r.Bool()}
	return m, wireErr(r)
}

func (m releaseMsg) encode() []byte {
	w := binenc.NewWriter(32)
	w.Str(m.DOP)
	w.Str(string(m.DOV))
	return w.Bytes()
}

func decodeRelease(data []byte) (releaseMsg, error) {
	r := binenc.NewReader(data)
	m := releaseMsg{DOP: r.Str(), DOV: version.ID(r.Str())}
	return m, wireErr(r)
}

func (v dovWire) encodeInto(w *binenc.Writer) {
	w.Str(string(v.ID))
	w.Str(v.DOT)
	w.Str(v.DA)
	w.U64(uint64(len(v.Parents)))
	for _, p := range v.Parents {
		w.Str(string(p))
	}
	w.Blob(v.Object)
	w.Byte(byte(v.Status))
	w.Strs(v.Fulfilled)
}

func decodeDOVWire(r *binenc.Reader) dovWire {
	v := dovWire{ID: version.ID(r.Str()), DOT: r.Str(), DA: r.Str()}
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		v.Parents = append(v.Parents, version.ID(r.Str()))
	}
	v.Object = r.Blob()
	v.Status = version.Status(r.Byte())
	v.Fulfilled = r.Strs()
	return v
}

func (m stageMsg) encode() []byte {
	w := binenc.NewWriter(128 + len(m.DOV.Object))
	w.Str(m.DOP)
	w.Str(m.TxID)
	m.DOV.encodeInto(w)
	w.Bool(m.Root)
	return w.Bytes()
}

func decodeStage(data []byte) (stageMsg, error) {
	r := binenc.NewReader(data)
	m := stageMsg{DOP: r.Str(), TxID: r.Str()}
	m.DOV = decodeDOVWire(r)
	m.Root = r.Bool()
	return m, wireErr(r)
}

func encodeDOVWire(v dovWire) []byte {
	w := binenc.NewWriter(96 + len(v.Object))
	v.encodeInto(w)
	return w.Bytes()
}

func decodeDOVWireBytes(data []byte) (dovWire, error) {
	r := binenc.NewReader(data)
	v := decodeDOVWire(r)
	return v, wireErr(r)
}

func wireErr(r *binenc.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("txn: decode: %w", err)
	}
	return nil
}

// encode gob-encodes a non-hot message (client recovery snapshots).
func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("txn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decode gob-decodes a non-hot message.
func decode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("txn: decode: %w", err)
	}
	return nil
}
