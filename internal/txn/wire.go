// Package txn implements CONCORD's Tool Execution (TE) level: design
// operations (DOPs) as long-lived ACID transactions managed by a split
// transaction manager (Sects. 4.3, 5.2).
//
// The server-TM resides with the design data repository: it handles
// checkout/checkin, short locks protecting the derivation graphs, long
// derivation locks, and the durable installation of new DOVs. The client-TM
// resides on the workstation: it manages the internal structure of DOPs —
// savepoints (Save/Restore), Suspend/Resume, and automatic recovery points
// that bound the work lost in a workstation crash. All critical
// client-TM/server-TM interactions (Begin-of-DOP, checkout, checkin,
// End-of-DOP) run over transactional RPC, with checkin committed by a
// two-phase commit between the two TM halves.
package txn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"concord/internal/version"
)

// RPC method names served by the server-TM.
const (
	MethodBegin    = "tm/begin"
	MethodCheckout = "tm/checkout"
	MethodStage    = "tm/stage"
	MethodAbortDOP = "tm/abort-dop"
	MethodRelease  = "tm/release-lock"
)

// beginMsg registers a DOP with the server-TM.
type beginMsg struct {
	DOP string
	DA  string
}

// checkoutMsg requests a DOV for processing.
type checkoutMsg struct {
	DOP string
	DA  string
	DOV version.ID
	// Derive acquires a long derivation lock preventing concurrent
	// checkout-for-derivation of the same version.
	Derive bool
}

// stageMsg transfers a derived DOV to the server ahead of the checkin 2PC.
type stageMsg struct {
	DOP  string
	TxID string
	// DOV carries the gob-encoded version record.
	DOV dovWire
	// Root adopts the version as a graph root (initial DOV0).
	Root bool
}

// dovWire is the wire representation of a version.
type dovWire struct {
	ID        version.ID
	DOT       string
	DA        string
	Parents   []version.ID
	Object    []byte
	Status    version.Status
	Fulfilled []string
}

// releaseMsg drops a derivation lock early (e.g. on DOP abort path).
type releaseMsg struct {
	DOP string
	DOV version.ID
}

// encode gob-encodes a wire message.
func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("txn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decode gob-decodes a wire message.
func decode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("txn: decode: %w", err)
	}
	return nil
}
