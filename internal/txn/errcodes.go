package txn

import (
	"concord/internal/catalog"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
)

// Wire error codes for the sentinels that cross the workstation/server
// boundary. The rpc package cannot import the packages owning these
// sentinels (it sits below them), so the registration lives here, in the
// package that assembles the server-TM handlers whose errors travel.
//
// The codes are the wire contract: stable across releases, never reused.
// Allocations so far:
//
//	1–19    txn
//	20–39   lock
//	40–59   version
//	60–79   catalog
//	80–99   repo
//	100–119 rpc/repl (registered by the rpc package itself: 100 is
//	        rpc.ErrStaleEpoch, the failover fencing sentinel)
func init() {
	rpc.RegisterWireError(1, ErrUnknownDOP)
	rpc.RegisterWireError(2, ErrNotStaged)
	rpc.RegisterWireError(3, ErrDeltaBase)
	rpc.RegisterWireError(4, ErrCheckinFailed)
	rpc.RegisterWireError(5, ErrNothingToCommit)
	rpc.RegisterWireError(6, ErrNoLease)

	rpc.RegisterWireError(20, lock.ErrDeadlock)
	rpc.RegisterWireError(21, lock.ErrTimeout)
	rpc.RegisterWireError(22, lock.ErrNotHeld)
	rpc.RegisterWireError(23, lock.ErrScopeDenied)
	rpc.RegisterWireError(24, lock.ErrScopeOwned)
	rpc.RegisterWireError(25, lock.ErrOwnerEvicted)

	rpc.RegisterWireError(40, version.ErrUnknownDOV)
	rpc.RegisterWireError(41, version.ErrDuplicateDOV)

	rpc.RegisterWireError(60, catalog.ErrUnknownDOT)

	rpc.RegisterWireError(80, repo.ErrDegraded)
	rpc.RegisterWireError(81, repo.ErrFollower)
}
