package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"concord/internal/catalog"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
)

// Errors reported by the server-TM.
var (
	ErrUnknownDOP = errors.New("txn: unknown DOP")
	ErrNotStaged  = errors.New("txn: no staged DOV for transaction")
)

// ServerTM is the server half of the transaction manager: it guards the
// design data repository, controls concurrent access to DOVs, and installs
// derived versions atomically (Sect. 5.2).
type ServerTM struct {
	repo   *repo.Repository
	locks  *lock.Manager
	scopes *lock.ScopeTable
	// LockTimeout bounds lock waits (default 5s).
	LockTimeout time.Duration

	mu     sync.Mutex
	dops   map[string]*serverDOP
	staged map[string]*stagedCheckin
}

type serverDOP struct {
	da string
	// derivationLocks tracks D locks held on behalf of the DOP.
	derivationLocks map[version.ID]bool
}

type stagedCheckin struct {
	dop string
	dov *version.DOV
	// raw is the encoded stageMsg as received from the wire; Prepare
	// persists it verbatim instead of re-encoding the version.
	raw      []byte
	root     bool
	prepared bool
}

// NewServerTM builds a server-TM over the repository, lock manager and scope
// table (the latter shared with the cooperation manager). Checkin
// transactions that were prepared (vote logged, staged DOV persisted) before
// a server crash are recovered so the coordinator can resolve them.
func NewServerTM(r *repo.Repository, lm *lock.Manager, st *lock.ScopeTable) *ServerTM {
	s := &ServerTM{
		repo:        r,
		locks:       lm,
		scopes:      st,
		LockTimeout: 5 * time.Second,
		dops:        make(map[string]*serverDOP),
		staged:      make(map[string]*stagedCheckin),
	}
	for _, key := range r.ListMeta(stagedMetaPrefix) {
		data, err := r.GetMeta(key)
		if err != nil {
			continue
		}
		m, err := decodeStage(data)
		if err != nil {
			continue
		}
		v, err := wireToDOV(m.DOV)
		if err != nil {
			continue
		}
		s.staged[m.TxID] = &stagedCheckin{dop: m.DOP, dov: v, root: m.Root, prepared: true}
	}
	return s
}

// stagedMetaPrefix keys persisted prepared-but-unresolved checkins.
const stagedMetaPrefix = "tm/staged/"

// Repo exposes the underlying repository (for server-side managers).
func (s *ServerTM) Repo() *repo.Repository { return s.repo }

// Scopes exposes the scope table (shared with the cooperation manager).
func (s *ServerTM) Scopes() *lock.ScopeTable { return s.scopes }

// Begin registers a DOP for a DA (Begin-of-DOP, Sect. 5.2).
func (s *ServerTM) Begin(dop, da string) error {
	if dop == "" || da == "" {
		return errors.New("txn: Begin needs DOP and DA identifiers")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, dup := s.dops[dop]; dup {
		if cur.da == da {
			return nil // idempotent re-attach after workstation recovery
		}
		return fmt.Errorf("txn: DOP %s already registered for DA %s", dop, cur.da)
	}
	s.dops[dop] = &serverDOP{da: da, derivationLocks: make(map[version.ID]bool)}
	return nil
}

// Checkout reads a DOV for the DOP. The version must lie in the DOP's DA
// scope; with derive set a long derivation lock is acquired so no other DOP
// can check the version out for derivation concurrently (Sect. 5.2). A
// short S lock protects the read itself.
func (s *ServerTM) Checkout(dop string, dov version.ID, derive bool) (*version.DOV, error) {
	s.mu.Lock()
	st, ok := s.dops[dop]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDOP, dop)
	}
	if err := s.scopes.CheckAccess(st.da, string(dov)); err != nil {
		return nil, err
	}
	res := "dov/" + string(dov)
	if derive {
		if err := s.locks.Acquire(dop, res, lock.D, s.LockTimeout); err != nil {
			return nil, err
		}
		s.mu.Lock()
		st.derivationLocks[dov] = true
		s.mu.Unlock()
	} else {
		if err := s.locks.Acquire(dop, res, lock.S, s.LockTimeout); err != nil {
			return nil, err
		}
		defer s.locks.Release(dop, res) //nolint:errcheck // short lock
	}
	v, err := s.repo.Get(dov)
	if err != nil {
		if derive {
			s.releaseDerivation(dop, dov)
		}
		return nil, err
	}
	return v, nil
}

func (s *ServerTM) releaseDerivation(dop string, dov version.ID) {
	s.locks.Release(dop, "dov/"+string(dov)) //nolint:errcheck // may already be gone
	s.mu.Lock()
	if st, ok := s.dops[dop]; ok {
		delete(st.derivationLocks, dov)
	}
	s.mu.Unlock()
}

// ReleaseDerivationLock drops a derivation lock before DOP end (used when a
// designer abandons an input version).
func (s *ServerTM) ReleaseDerivationLock(dop string, dov version.ID) error {
	s.mu.Lock()
	st, ok := s.dops[dop]
	if ok {
		ok = st.derivationLocks[dov]
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: derivation lock on %s by %s", lock.ErrNotHeld, dov, dop)
	}
	s.releaseDerivation(dop, dov)
	return nil
}

// Stage receives a derived DOV ahead of the checkin two-phase commit. The
// version is validated at prepare time. raw, if non-nil, is the encoded
// stageMsg exactly as received; Prepare persists it without re-encoding.
func (s *ServerTM) Stage(dop, txid string, v *version.DOV, root bool, raw []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.dops[dop]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDOP, dop)
	}
	if v.DA == "" {
		v.DA = st.da
		raw = nil // the wire form lacks the DA; fall back to re-encoding
	}
	s.staged[txid] = &stagedCheckin{dop: dop, dov: v, raw: raw, root: root}
	return nil
}

// Prepare implements rpc.Resource: validate the staged DOV (schema
// consistency plus parent-scope membership) and promise to commit.
func (s *ServerTM) Prepare(txid string) (rpc.Vote, error) {
	s.mu.Lock()
	sc, ok := s.staged[txid]
	s.mu.Unlock()
	if !ok {
		return rpc.VoteAbort, fmt.Errorf("%w: %s", ErrNotStaged, txid)
	}
	v := sc.dov
	if v.Object == nil || v.Object.Type != v.DOT {
		return rpc.VoteAbort, nil
	}
	if err := s.repo.Catalog().Validate(v.Object); err != nil {
		return rpc.VoteAbort, nil //nolint:nilerr // vote conveys the refusal
	}
	if !sc.root {
		for _, p := range v.Parents {
			if !s.scopes.InScope(v.DA, string(p)) {
				return rpc.VoteAbort, nil
			}
		}
	}
	// Persist the staged version before promising: a prepared checkin must
	// survive a server crash so the coordinator's decision can be applied
	// at recovery. The wire payload is reused verbatim when possible.
	stageData := sc.raw
	if stageData == nil {
		objData, err := catalog.EncodeObject(v.Object)
		if err != nil {
			return rpc.VoteAbort, nil //nolint:nilerr // vote conveys the refusal
		}
		stageData = stageMsg{
			DOP: sc.dop, TxID: txid, Root: sc.root,
			DOV: dovWire{ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents, Object: objData, Status: v.Status, Fulfilled: v.Fulfilled},
		}.encode()
	}
	if err := s.repo.PutMeta(stagedMetaPrefix+txid, stageData); err != nil {
		return rpc.VoteAbort, nil //nolint:nilerr // durability failed: refuse
	}
	s.mu.Lock()
	sc.prepared = true
	s.mu.Unlock()
	return rpc.VoteCommit, nil
}

// Commit implements rpc.Resource: install the staged DOV durably. A short X
// lock on the DA's derivation graph serializes concurrent checkins of DOPs
// of the same DA ("the TM has to protect the proliferation of the DA's
// derivation graph ... employing a locking protocol based on short locks",
// Sect. 5.2).
func (s *ServerTM) Commit(txid string) error {
	s.mu.Lock()
	sc, ok := s.staged[txid]
	s.mu.Unlock()
	if !ok {
		return nil // idempotent: already committed and cleaned up
	}
	v := sc.dov
	graphRes := "graph/" + v.DA
	if err := s.locks.Acquire(sc.dop, graphRes, lock.X, s.LockTimeout); err != nil {
		return err
	}
	defer s.locks.Release(sc.dop, graphRes) //nolint:errcheck // short lock

	// CheckinCleanup installs the DOV and drops the staged record in one
	// commit batch. A duplicate DOV means a previous incarnation already
	// installed it (crash between checkin and staged-record cleanup);
	// Commit must be idempotent, so treat it as success and only clean up.
	err := s.repo.CheckinCleanup(v, sc.root, stagedMetaPrefix+txid)
	if errors.Is(err, version.ErrDuplicateDOV) {
		s.repo.DeleteMeta(stagedMetaPrefix + txid) //nolint:errcheck // cleanup
		err = nil
	}
	if err != nil {
		return err
	}
	if err := s.scopes.Own(v.DA, string(v.ID)); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.staged, txid)
	s.mu.Unlock()
	return nil
}

// Abort implements rpc.Resource: discard the staged DOV (presumed abort:
// unknown transactions are fine).
func (s *ServerTM) Abort(txid string) error {
	s.repo.DeleteMeta(stagedMetaPrefix + txid) //nolint:errcheck // cleanup
	s.mu.Lock()
	delete(s.staged, txid)
	s.mu.Unlock()
	return nil
}

// EndDOP finishes a DOP at the server: releases its derivation locks and
// forgets its registration. Used by both commit and abort paths ("the
// server-TM is firstly asked to release the derivation locks held",
// Sect. 5.2).
func (s *ServerTM) EndDOP(dop string) {
	s.mu.Lock()
	st, ok := s.dops[dop]
	if ok {
		delete(s.dops, dop)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	for dov := range st.derivationLocks {
		s.locks.Release(dop, "dov/"+string(dov)) //nolint:errcheck // cleanup
	}
	s.locks.ReleaseAll(dop)
}

// ActiveDOPs returns the registered DOP count (diagnostics).
func (s *ServerTM) ActiveDOPs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dops)
}

// Handler returns the transport handler exposing the server-TM protocol:
// Begin-of-DOP, checkout, staging, derivation-lock release, DOP end and the
// 2PC participant methods.
func (s *ServerTM) Handler(participant *rpc.Participant) rpc.Handler {
	return func(method string, payload []byte) ([]byte, error) {
		switch method {
		case MethodBegin:
			m, err := decodeBegin(payload)
			if err != nil {
				return nil, err
			}
			return nil, s.Begin(m.DOP, m.DA)
		case MethodCheckout:
			m, err := decodeCheckout(payload)
			if err != nil {
				return nil, err
			}
			v, err := s.Checkout(m.DOP, m.DOV, m.Derive)
			if err != nil {
				return nil, err
			}
			return encodeDOV(v)
		case MethodStage:
			m, err := decodeStage(payload)
			if err != nil {
				return nil, err
			}
			v, err := wireToDOV(m.DOV)
			if err != nil {
				return nil, err
			}
			return nil, s.Stage(m.DOP, m.TxID, v, m.Root, payload)
		case MethodRelease:
			m, err := decodeRelease(payload)
			if err != nil {
				return nil, err
			}
			return nil, s.ReleaseDerivationLock(m.DOP, m.DOV)
		case MethodAbortDOP:
			s.EndDOP(string(payload))
			return nil, nil
		case rpc.MethodPrepare, rpc.MethodCommit, rpc.MethodAbort:
			return participant.Handler()(method, payload)
		default:
			return nil, fmt.Errorf("txn: server-TM: unknown method %q", method)
		}
	}
}

// encodeDOV converts a version to its wire form.
func encodeDOV(v *version.DOV) ([]byte, error) {
	obj, err := catalog.EncodeObject(v.Object)
	if err != nil {
		return nil, err
	}
	return encodeDOVWire(dovWire{
		ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents,
		Object: obj, Status: v.Status, Fulfilled: v.Fulfilled,
	}), nil
}

// wireToDOV converts the wire form back to a version.
func wireToDOV(w dovWire) (*version.DOV, error) {
	obj, err := catalog.DecodeObject(w.Object)
	if err != nil {
		return nil, err
	}
	return &version.DOV{
		ID: w.ID, DOT: w.DOT, DA: w.DA, Parents: w.Parents,
		Object: obj, Status: w.Status, Fulfilled: w.Fulfilled,
	}, nil
}
