package txn

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/fault"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
)

// Fault points traversed by the server-TM's 2PC resource hooks (the
// scenario harness arms them to simulate crashes at protocol steps).
const (
	// FaultStagePersisted fires in Prepare after the staged DOV is durable
	// in the repository, before the commit vote is promised.
	FaultStagePersisted = "txn:stage-persisted"
	// FaultCheckinInstalled fires in Commit after the DOV is durably
	// installed, before the post-checkin tail (scope ownership, cache
	// registration, staged-entry cleanup) — the retained-staged-entry
	// retry window.
	FaultCheckinInstalled = "txn:checkin-installed"
)

// FaultPoints lists every fault point owned by this package, for coverage
// reports.
var FaultPoints = []string{FaultStagePersisted, FaultCheckinInstalled, FaultLeaseExpired, FaultHeartbeatDrop}

// Errors reported by the server-TM.
var (
	ErrUnknownDOP = errors.New("txn: unknown DOP")
	ErrNotStaged  = errors.New("txn: no staged DOV for transaction")
	// ErrDeltaBase reports a delta checkin whose base or reconstructed
	// content failed hash verification. It is a hard failure: nothing is
	// staged, nothing is logged — a wrong base must never corrupt the
	// repository (DESIGN.md §4).
	ErrDeltaBase = errors.New("txn: checkin delta failed hash verification")
)

// ServerTM is the server half of the transaction manager: it guards the
// design data repository, controls concurrent access to DOVs, and installs
// derived versions atomically (Sect. 5.2).
//
// Admission state is sharded (DESIGN.md §3.6): DOP registrations hash over
// dopShards and staged checkins over stagedShards, so checkouts and checkins
// of distinct DOPs/transactions never contend on one TM mutex — the TE-level
// counterpart of the sharded lock manager beneath it.
type ServerTM struct {
	repo   *repo.Repository
	locks  *lock.Manager
	scopes *lock.ScopeTable
	// cdir tracks which workstation caches hold which versions (DESIGN.md
	// §4); volatile, rebuilt by re-registration after a server restart.
	cdir *cacheDir
	// LockTimeout bounds lock waits (default 5s).
	LockTimeout time.Duration
	// LeaseTTL is the workstation lease lifetime (DefaultLeaseTTL when
	// zero). A workstation silent for this long is reclaimed by the reaper.
	LeaseTTL time.Duration
	// Faults is the fault-point registry traversed at the txn fault points
	// (nil-safe). Set before serving; tests only.
	Faults *fault.Registry

	dops     [tmShards]dopShard
	staged   [tmShards]stagedShard
	notifier atomic.Pointer[rpc.Notifier]
	// replInfo reports role/epoch/lag for MethodHealth (SetReplInfo).
	replInfo atomic.Pointer[func() (string, uint64, uint64, uint64)]

	// bumpMu guards bumpAcked: per callback address, the notifier loss count
	// already answered with a cache-epoch bump (DESIGN.md §4 reconnect fix).
	bumpMu    sync.Mutex
	bumpAcked map[string]uint64

	// leaseMu guards the lease table and the reaper lifecycle fields.
	leaseMu  sync.Mutex
	leases   map[string]*wsLease
	reapStop chan struct{}
	reapDone chan struct{}
}

// tmShards is the admission fan-out. Shard count beyond the workstation
// count buys nothing; 16 comfortably covers the multi-workstation scenarios
// while keeping the struct small.
const tmShards = 16

// dopShard holds the DOP registrations hashing onto it. Its mutex also
// guards the derivationLocks sets of those DOPs.
type dopShard struct {
	mu sync.Mutex
	m  map[string]*serverDOP
}

// stagedShard holds the staged checkins whose transaction IDs hash onto it.
type stagedShard struct {
	mu sync.Mutex
	m  map[string]*stagedCheckin
}

// tmHash hashes an identifier onto a shard (FNV-1a, allocation-free).
func tmHash(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h % tmShards
}

func (s *ServerTM) dopShard(dop string) *dopShard        { return &s.dops[tmHash(dop)] }
func (s *ServerTM) stagedShard(txid string) *stagedShard { return &s.staged[tmHash(txid)] }

type serverDOP struct {
	da string
	// ws is the workstation whose lease the DOP lives under ("" for direct
	// API use without a session).
	ws string
	// derivationLocks tracks D locks held on behalf of the DOP. Guarded by
	// the owning dopShard's mutex.
	derivationLocks map[version.ID]bool
}

type stagedCheckin struct {
	dop string
	dov *version.DOV
	// raw is the encoded stageMsg as received from the wire; Prepare
	// persists it verbatim instead of re-encoding the version. Delta-form
	// stage messages are expanded before staging, so raw (and with it every
	// durable staged record) is always full-form — recovery never needs a
	// delta base (§3.5 invariants untouched).
	raw      []byte
	root     bool
	prepared bool
	// ws/cbAddr/epoch register the committing workstation's cache for the
	// new version once Commit installs it.
	ws     string
	cbAddr string
	epoch  uint64
}

// NewServerTM builds a server-TM over the repository, lock manager and scope
// table (the latter shared with the cooperation manager). Checkin
// transactions that were prepared (vote logged, staged DOV persisted) before
// a server crash are recovered so the coordinator can resolve them.
func NewServerTM(r *repo.Repository, lm *lock.Manager, st *lock.ScopeTable) *ServerTM {
	s := &ServerTM{
		repo:        r,
		locks:       lm,
		scopes:      st,
		cdir:        newCacheDir(),
		LockTimeout: 5 * time.Second,
		leases:      make(map[string]*wsLease),
		bumpAcked:   make(map[string]uint64),
	}
	for i := range s.dops {
		s.dops[i].m = make(map[string]*serverDOP)
	}
	for i := range s.staged {
		s.staged[i].m = make(map[string]*stagedCheckin)
	}
	for _, key := range r.ListMeta(stagedMetaPrefix) {
		data, err := r.GetMeta(key)
		if err != nil {
			continue
		}
		m, err := decodeStage(data)
		if err != nil {
			continue
		}
		v, err := wireToDOV(m.DOV)
		if err != nil {
			continue
		}
		sh := s.stagedShard(m.TxID)
		sh.m[m.TxID] = &stagedCheckin{dop: m.DOP, dov: v, root: m.Root, prepared: true}
	}
	return s
}

// stagedMetaPrefix keys persisted prepared-but-unresolved checkins.
const stagedMetaPrefix = "tm/staged/"

// Repo exposes the underlying repository (for server-side managers).
func (s *ServerTM) Repo() *repo.Repository { return s.repo }

// Scopes exposes the scope table (shared with the cooperation manager).
func (s *ServerTM) Scopes() *lock.ScopeTable { return s.scopes }

// Begin registers a DOP for a DA (Begin-of-DOP, Sect. 5.2).
func (s *ServerTM) Begin(dop, da string) error {
	return s.beginWS(dop, da, "")
}

// beginWS is Begin plus the workstation session: a non-empty ws opens (or
// renews) the workstation's lease and records the DOP under it for
// reclamation on expiry.
func (s *ServerTM) beginWS(dop, da, ws string) error {
	if dop == "" || da == "" {
		return errors.New("txn: Begin needs DOP and DA identifiers")
	}
	sh := s.dopShard(dop)
	sh.mu.Lock()
	if cur, dup := sh.m[dop]; dup {
		if cur.da == da {
			// Idempotent re-attach after workstation recovery; adopt the
			// (possibly new) session.
			cur.ws = ws
			sh.mu.Unlock()
			s.touchLease(ws, dop)
			return nil
		}
		sh.mu.Unlock()
		return fmt.Errorf("txn: DOP %s already registered for DA %s", dop, cur.da)
	}
	sh.m[dop] = &serverDOP{da: da, ws: ws, derivationLocks: make(map[version.ID]bool)}
	sh.mu.Unlock()
	s.touchLease(ws, dop)
	return nil
}

// lookupDOP fetches a registration under its shard lock.
func (s *ServerTM) lookupDOP(dop string) (*serverDOP, bool) {
	sh := s.dopShard(dop)
	sh.mu.Lock()
	st, ok := sh.m[dop]
	sh.mu.Unlock()
	return st, ok
}

// Checkout reads a DOV for the DOP. The version must lie in the DOP's DA
// scope; with derive set a long derivation lock is acquired so no other DOP
// can check the version out for derivation concurrently (Sect. 5.2). A
// short S lock protects the read itself.
func (s *ServerTM) Checkout(dop string, dov version.ID, derive bool) (*version.DOV, error) {
	v, _, _, err := s.checkoutEnc(dop, dov, derive, time.Time{})
	return v, err
}

// lockBudget bounds a lock wait by LockTimeout and, when the caller
// propagated a deadline, by the time it is still willing to spend — there is
// no point winning a lock for a caller that already hung up. An expired
// deadline yields 0, which lock.Acquire treats as "do not wait".
func (s *ServerTM) lockBudget(deadline time.Time) time.Duration {
	to := s.LockTimeout
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem < to {
			to = rem
		}
		if to < 0 {
			to = 0
		}
	}
	return to
}

// checkoutEnc is Checkout plus the canonical payload encoding and content
// hash of the version (memoized in the repository), which the wire layer
// needs for the NotModified/delta negotiation. deadline bounds lock waits
// (zero = LockTimeout only).
func (s *ServerTM) checkoutEnc(dop string, dov version.ID, derive bool, deadline time.Time) (*version.DOV, []byte, []byte, error) {
	st, ok := s.lookupDOP(dop)
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %s", ErrUnknownDOP, dop)
	}
	if err := s.scopes.CheckAccess(st.da, string(dov)); err != nil {
		return nil, nil, nil, err
	}
	res := "dov/" + string(dov)
	if derive {
		if err := s.locks.Acquire(dop, res, lock.D, s.lockBudget(deadline)); err != nil {
			return nil, nil, nil, err
		}
		sh := s.dopShard(dop)
		sh.mu.Lock()
		st.derivationLocks[dov] = true
		sh.mu.Unlock()
	} else {
		if err := s.locks.Acquire(dop, res, lock.S, s.lockBudget(deadline)); err != nil {
			return nil, nil, nil, err
		}
		defer s.locks.Release(dop, res) //nolint:errcheck // short lock
	}
	v, err := s.repo.Get(dov)
	if err == nil {
		var enc, hash []byte
		if enc, hash, err = s.repo.EncodedObject(dov); err == nil {
			return v, enc, hash, nil
		}
	}
	if derive {
		s.releaseDerivation(dop, dov)
	}
	return nil, nil, nil, err
}

// checkoutWire serves one MethodCheckout call: perform the checkout, record
// the workstation's cache registration, and answer in the cheapest mode the
// client's offered base allows — NotModified (it already holds the target),
// a binenc delta (it holds a verified relative), or the full DOV. When the
// workstation's callback endpoint has lost invalidations since its last
// negotiation, the answer additionally orders a cache-epoch bump.
func (s *ServerTM) checkoutWire(m checkoutMsg, deadline time.Time) ([]byte, error) {
	v, enc, hash, err := s.checkoutEnc(m.DOP, m.DOV, m.Derive, deadline)
	if err != nil {
		return nil, err
	}
	s.cdir.register(m.WS, m.CBAddr, m.Epoch, m.DOV)
	resp := checkoutResp{Hash: hash, BumpEpoch: s.noteCallbackLoss(m.CBAddr)}
	meta := dovMeta{ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents, Status: v.Status, Fulfilled: v.Fulfilled}
	switch {
	case m.BaseID == m.DOV && bytes.Equal(m.BaseHash, hash):
		resp.Mode, resp.Meta = coNotModified, meta
	default:
		if m.BaseID != "" {
			baseEnc, baseHash, err := s.repo.EncodedObject(m.BaseID)
			if err == nil && bytes.Equal(baseHash, m.BaseHash) {
				if delta := binenc.Delta(baseEnc, enc); len(delta) < len(enc) {
					resp.Mode, resp.Meta = coDelta, meta
					resp.BaseID, resp.Delta = m.BaseID, delta
					return resp.encode(), nil
				}
			}
			// Unknown base, divergent hash or incompressible pair: fall
			// through to a full transfer — the client's offer is advisory.
		}
		resp.Mode = coFull
		resp.DOV = dovWire{
			ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents,
			Object: enc, Status: v.Status, Fulfilled: v.Fulfilled,
		}
	}
	return resp.encode(), nil
}

// noteCallbackLoss reports whether addr's callback endpoint has dropped
// invalidations since the last checkout negotiation consumed the count. A
// true answer travels exactly once per loss increment: the workstation bumps
// its cache epoch, retiring metadata the lost callbacks should have refreshed
// (the stale-invalidation window of DESIGN.md §4).
func (s *ServerTM) noteCallbackLoss(addr string) bool {
	if addr == "" {
		return false
	}
	n := s.notifier.Load()
	if n == nil {
		return false
	}
	d := n.DroppedAt(addr)
	if d == 0 {
		return false
	}
	s.bumpMu.Lock()
	defer s.bumpMu.Unlock()
	if d <= s.bumpAcked[addr] {
		return false
	}
	s.bumpAcked[addr] = d
	return true
}

func (s *ServerTM) releaseDerivation(dop string, dov version.ID) {
	s.locks.Release(dop, "dov/"+string(dov)) //nolint:errcheck // may already be gone
	sh := s.dopShard(dop)
	sh.mu.Lock()
	if st, ok := sh.m[dop]; ok {
		delete(st.derivationLocks, dov)
	}
	sh.mu.Unlock()
}

// ReleaseDerivationLock drops a derivation lock before DOP end (used when a
// designer abandons an input version).
func (s *ServerTM) ReleaseDerivationLock(dop string, dov version.ID) error {
	sh := s.dopShard(dop)
	sh.mu.Lock()
	st, ok := sh.m[dop]
	if ok {
		ok = st.derivationLocks[dov]
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: derivation lock on %s by %s", lock.ErrNotHeld, dov, dop)
	}
	s.releaseDerivation(dop, dov)
	return nil
}

// Stage receives a derived DOV ahead of the checkin two-phase commit. The
// version is validated at prepare time. raw, if non-nil, is the encoded
// stageMsg exactly as received; Prepare persists it without re-encoding.
func (s *ServerTM) Stage(dop, txid string, v *version.DOV, root bool, raw []byte) error {
	return s.stage(dop, txid, v, root, raw, "", "", 0)
}

// stage is Stage plus the committing workstation's cache identity, which
// Commit registers for the new version (the workstation retains the bytes it
// just shipped, so its next checkout of this version is a NotModified).
func (s *ServerTM) stage(dop, txid string, v *version.DOV, root bool, raw []byte, ws, cbAddr string, epoch uint64) error {
	st, ok := s.lookupDOP(dop)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDOP, dop)
	}
	if v.DA == "" {
		v.DA = st.da
		raw = nil // the wire form lacks the DA; fall back to re-encoding
	}
	sh := s.stagedShard(txid)
	sh.mu.Lock()
	sh.m[txid] = &stagedCheckin{dop: dop, dov: v, raw: raw, root: root, ws: ws, cbAddr: cbAddr, epoch: epoch}
	sh.mu.Unlock()
	return nil
}

// expandStage resolves a wire stage message to its full form: delta-encoded
// payloads are reconstructed from the named base and every content hash is
// verified before anything reaches the staging table. A mismatch is a hard
// ErrDeltaBase failure — wrong bases must never corrupt the repository.
// It returns the full payload encoding and whether the message arrived in
// delta form (in which case the caller must not reuse the wire bytes as the
// durable staged record).
func (s *ServerTM) expandStage(m *stageMsg) (wasDelta bool, err error) {
	if m.BaseID == "" {
		if len(m.Hash) > 0 && !bytes.Equal(catalog.HashEncoded(m.DOV.Object), m.Hash) {
			return false, fmt.Errorf("%w: full payload of %s does not match its declared hash", ErrDeltaBase, m.DOV.ID)
		}
		return false, nil
	}
	if len(m.Hash) == 0 {
		return true, fmt.Errorf("%w: delta checkin of %s carries no content hash", ErrDeltaBase, m.DOV.ID)
	}
	baseEnc, baseHash, err := s.repo.EncodedObject(m.BaseID)
	if err != nil {
		return true, fmt.Errorf("%w: base %s: %w", ErrDeltaBase, m.BaseID, err)
	}
	if !bytes.Equal(baseHash, m.BaseHash) {
		return true, fmt.Errorf("%w: base %s hash diverges from the client's", ErrDeltaBase, m.BaseID)
	}
	full, err := binenc.ApplyDelta(baseEnc, m.Delta)
	if err != nil {
		return true, fmt.Errorf("%w: %w", ErrDeltaBase, err)
	}
	if !bytes.Equal(catalog.HashEncoded(full), m.Hash) {
		return true, fmt.Errorf("%w: reconstructed %s does not match its declared hash", ErrDeltaBase, m.DOV.ID)
	}
	m.DOV.Object = full
	m.BaseID, m.BaseHash, m.Delta = "", nil, nil
	return true, nil
}

// Prepare implements rpc.Resource: validate the staged DOV (schema
// consistency plus parent-scope membership) and promise to commit.
func (s *ServerTM) Prepare(txid string) (rpc.Vote, error) {
	sh := s.stagedShard(txid)
	sh.mu.Lock()
	sc, ok := sh.m[txid]
	sh.mu.Unlock()
	if !ok {
		return rpc.VoteAbort, fmt.Errorf("%w: %s", ErrNotStaged, txid)
	}
	v := sc.dov
	if v.Object == nil || v.Object.Type != v.DOT {
		return rpc.VoteAbort, nil
	}
	if err := s.repo.Catalog().Validate(v.Object); err != nil {
		return rpc.VoteAbort, nil //nolint:nilerr // vote conveys the refusal
	}
	if !sc.root {
		for _, p := range v.Parents {
			if !s.scopes.InScope(v.DA, string(p)) {
				return rpc.VoteAbort, nil
			}
		}
	}
	// Persist the staged version before promising: a prepared checkin must
	// survive a server crash so the coordinator's decision can be applied
	// at recovery. The wire payload is reused verbatim when possible.
	stageData := sc.raw
	if stageData == nil {
		objData, err := catalog.EncodeObject(v.Object)
		if err != nil {
			return rpc.VoteAbort, nil //nolint:nilerr // vote conveys the refusal
		}
		stageData = stageMsg{
			DOP: sc.dop, TxID: txid, Root: sc.root,
			DOV: dovWire{ID: v.ID, DOT: v.DOT, DA: v.DA, Parents: v.Parents, Object: objData, Status: v.Status, Fulfilled: v.Fulfilled},
		}.encode()
	}
	if err := s.repo.PutMeta(stagedMetaPrefix+txid, stageData); err != nil {
		return rpc.VoteAbort, nil //nolint:nilerr // durability failed: refuse
	}
	if err := s.Faults.At(FaultStagePersisted); err != nil {
		// Simulated server death after the durable stage: the staged
		// record survives restart and is resolved against the coordinator.
		return rpc.VoteAbort, err
	}
	sh.mu.Lock()
	cur, still := sh.m[txid]
	if still && cur == sc {
		sc.prepared = true
	}
	sh.mu.Unlock()
	if !still || cur != sc {
		// The lease reaper presumed-abort discarded the entry between the
		// durable stage and the promise (its owner's lease expired
		// mid-prepare). Voting commit now would promise a branch the server
		// no longer tracks — and an unknown txid reads as already-committed
		// at Commit — so withdraw the stage record and refuse.
		s.repo.DeleteMeta(stagedMetaPrefix + txid) //nolint:errcheck // cleanup
		return rpc.VoteAbort, nil
	}
	return rpc.VoteCommit, nil
}

// Commit implements rpc.Resource: install the staged DOV durably. A short X
// lock on the DA's derivation graph serializes concurrent checkins of DOPs
// of the same DA ("the TM has to protect the proliferation of the DA's
// derivation graph ... employing a locking protocol based on short locks",
// Sect. 5.2).
func (s *ServerTM) Commit(txid string) error {
	sh := s.stagedShard(txid)
	sh.mu.Lock()
	sc, ok := sh.m[txid]
	sh.mu.Unlock()
	if !ok {
		return nil // idempotent: already committed and cleaned up
	}
	v := sc.dov
	graphRes := "graph/" + v.DA
	if err := s.locks.Acquire(sc.dop, graphRes, lock.X, s.LockTimeout); err != nil {
		return err
	}
	defer s.locks.Release(sc.dop, graphRes) //nolint:errcheck // short lock

	// CheckinCleanup installs the DOV and drops the staged record in one
	// commit batch. A duplicate DOV means a previous incarnation already
	// installed it (crash between checkin and staged-record cleanup, or a
	// retry after a post-checkin tail failure below); Commit must be
	// idempotent, so treat it as success and only clean up.
	err := s.repo.CheckinCleanup(v, sc.root, stagedMetaPrefix+txid)
	if errors.Is(err, version.ErrDuplicateDOV) {
		s.repo.DeleteMeta(stagedMetaPrefix + txid) //nolint:errcheck // cleanup
		err = nil
	}
	if err != nil {
		return err
	}
	if err := s.Faults.At(FaultCheckinInstalled); err != nil {
		// Simulated server death inside the retained-staged-entry window:
		// the DOV is durably installed, the staged record survives, and a
		// retried Commit converges through the duplicate path above.
		return err
	}
	// Post-checkin tail. The version is durably installed from here on, so
	// a failure must not read as "commit rolled back" — it can only mean
	// "commit incomplete, retry". Scope ownership gates every later
	// checkout of the version (Sect. 5.4), so its failure is surfaced to
	// the coordinator while the staged entry is RETAINED: a retried Commit
	// re-enters through the idempotent duplicate path above and re-runs
	// exactly this tail until it converges.
	if err := s.scopes.Own(v.DA, string(v.ID)); err != nil {
		return fmt.Errorf("txn: checkin %s durably installed but scope ownership failed (commit retry converges): %w", txid, err)
	}
	// Cache registration is best-effort by design: losing it costs one
	// NotModified optimization, never correctness — every checkout
	// revalidates content hashes server-side (DESIGN.md §4).
	s.cdir.register(sc.ws, sc.cbAddr, sc.epoch, v.ID)
	sh.mu.Lock()
	delete(sh.m, txid)
	sh.mu.Unlock()
	return nil
}

// CacheRegistrations reports the number of live workstation cache
// registrations (diagnostics, tests).
func (s *ServerTM) CacheRegistrations() int { return s.cdir.registrations() }

// Abort implements rpc.Resource: discard the staged DOV (presumed abort:
// unknown transactions are fine).
func (s *ServerTM) Abort(txid string) error {
	s.repo.DeleteMeta(stagedMetaPrefix + txid) //nolint:errcheck // cleanup
	sh := s.stagedShard(txid)
	sh.mu.Lock()
	delete(sh.m, txid)
	sh.mu.Unlock()
	return nil
}

// EndDOP finishes a DOP at the server: releases its derivation locks and
// forgets its registration. Used by both commit and abort paths ("the
// server-TM is firstly asked to release the derivation locks held",
// Sect. 5.2).
func (s *ServerTM) EndDOP(dop string) {
	sh := s.dopShard(dop)
	sh.mu.Lock()
	st, ok := sh.m[dop]
	var held []version.ID
	var ws string
	if ok {
		delete(sh.m, dop)
		ws = st.ws
		// Snapshot under the shard lock: a checkout racing EndDOP may still
		// hold st and write its lock set.
		held = make([]version.ID, 0, len(st.derivationLocks))
		for dov := range st.derivationLocks {
			held = append(held, dov)
		}
	}
	sh.mu.Unlock()
	if !ok {
		return
	}
	s.dropDOPFromLease(ws, dop)
	for _, dov := range held {
		s.locks.Release(dop, "dov/"+string(dov)) //nolint:errcheck // cleanup
	}
	s.locks.ReleaseAll(dop)
}

// ActiveDOPs returns the registered DOP count (diagnostics).
func (s *ServerTM) ActiveDOPs() int {
	n := 0
	for i := range s.dops {
		sh := &s.dops[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Handler returns the transport handler exposing the server-TM protocol
// with no deadline propagation (handlers see zero deadlines). Prefer
// DeadlineHandler on transports that deliver per-call budgets.
func (s *ServerTM) Handler(participant *rpc.Participant) rpc.Handler {
	dh := s.DeadlineHandler(participant)
	return func(method string, payload []byte) ([]byte, error) {
		return dh(time.Time{}, method, payload)
	}
}

// DeadlineHandler returns the transport handler exposing the server-TM
// protocol: Begin-of-DOP, checkout, staging, derivation-lock release, DOP
// end, the lease lifecycle (heartbeat, rejoin, health) and the 2PC
// participant methods. The per-call deadline propagated by the transport
// bounds lock waits, so a generous bulk-checkout budget and a tight
// heartbeat budget get exactly the server-side patience they asked for.
func (s *ServerTM) DeadlineHandler(participant *rpc.Participant) rpc.DeadlineHandler {
	return func(deadline time.Time, method string, payload []byte) ([]byte, error) {
		switch method {
		case MethodBegin:
			m, err := decodeBegin(payload)
			if err != nil {
				return nil, err
			}
			return nil, s.beginWS(m.DOP, m.DA, m.WS)
		case MethodHeartbeat:
			return nil, s.Heartbeat(string(payload))
		case MethodRejoin:
			m, err := decodeRejoin(payload)
			if err != nil {
				return nil, err
			}
			return nil, s.Rejoin(m)
		case MethodHealth:
			return s.HealthInfo().encode(), nil
		case MethodCheckout:
			m, err := decodeCheckout(payload)
			if err != nil {
				return nil, err
			}
			return s.checkoutWire(m, deadline)
		case MethodStage:
			m, err := decodeStage(payload)
			if err != nil {
				return nil, err
			}
			wasDelta, err := s.expandStage(&m)
			if err != nil {
				return nil, err
			}
			v, err := wireToDOV(m.DOV)
			if err != nil {
				return nil, err
			}
			var raw []byte
			if !wasDelta {
				// Copy before retaining: transport buffers are only valid for
				// the duration of the call (the client pools its envelope;
				// see rpc.Handler), and this staged record outlives it.
				raw = append([]byte(nil), payload...)
			}
			// Delta-form wire bytes are never retained; Prepare re-encodes.
			return nil, s.stage(m.DOP, m.TxID, v, m.Root, raw, m.WS, m.CBAddr, m.Epoch)
		case MethodRelease:
			m, err := decodeRelease(payload)
			if err != nil {
				return nil, err
			}
			return nil, s.ReleaseDerivationLock(m.DOP, m.DOV)
		case MethodAbortDOP:
			s.EndDOP(string(payload))
			return nil, nil
		case rpc.MethodPrepare, rpc.MethodCommit, rpc.MethodAbort:
			return participant.Handler()(method, payload)
		default:
			return nil, fmt.Errorf("txn: server-TM: unknown method %q", method)
		}
	}
}

// wireToDOV converts the wire form back to a version.
func wireToDOV(w dovWire) (*version.DOV, error) {
	obj, err := catalog.DecodeObject(w.Object)
	if err != nil {
		return nil, err
	}
	return &version.DOV{
		ID: w.ID, DOT: w.DOT, DA: w.DA, Parents: w.Parents,
		Object: obj, Status: w.Status, Fulfilled: w.Fulfilled,
	}, nil
}
