package txn

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/rpc"
	"concord/internal/version"
)

// ObjectCache is the workstation checkout cache (DESIGN.md §4): canonical
// payload encodings of design object versions this workstation has seen,
// keyed by version ID and proved current by content hash. The client-TM uses
// it to answer re-checkouts with a NotModified handshake, to offer delta
// bases for checkout and checkin, and to absorb the server's callback
// invalidations.
//
// The cache is an optimization layer only. Every checkout still goes to the
// server (cooperative reads stay under CM rules), which revalidates the
// offered hash — so a stale, corrupt or crash-resurrected cache can cost
// extra bytes, never correctness. That property is what lets entries persist
// across workstation crashes and invalidations stay best-effort.
type ObjectCache struct {
	dir string // "" = volatile

	mu      sync.Mutex
	epoch   uint64
	entries map[version.ID]*cacheEntry
	clock   uint64
	// MaxEntries bounds the cache; the least recently used entry is evicted
	// (set before concurrent use; DefaultCacheEntries when 0).
	MaxEntries int

	invalidations, supersessions uint64
}

// cacheEntry is one cached version.
type cacheEntry struct {
	Meta dovMeta
	// Hash is the content hash of Enc.
	Hash []byte
	// Enc is the canonical payload encoding (catalog.EncodeObject output).
	Enc []byte
	// Superseded names the newest version known to derive from this one
	// ("" = tip as far as this workstation knows).
	Superseded version.ID
	// used is the LRU clock value of the last touch.
	used uint64
}

// DefaultCacheEntries bounds an ObjectCache unless MaxEntries overrides it.
const DefaultCacheEntries = 128

// cacheFileMagic tags persisted cache entries.
const cacheFileMagic = 0xCA

// epochFile holds the incarnation counter inside the cache directory.
const epochFile = "EPOCH"

// OpenObjectCache opens (or creates) a cache under dir; "" keeps it
// volatile. Opening bumps the cache epoch — the incarnation counter that
// lets the server retire callback registrations of previous lives and lets
// this cache ignore callbacks addressed to them. Entries persisted by
// earlier incarnations are loaded (and revalidated against their stored
// hash); entries that fail validation are discarded.
func OpenObjectCache(dir string) (*ObjectCache, error) {
	c := &ObjectCache{dir: dir, entries: make(map[version.ID]*cacheEntry)}
	if dir == "" {
		c.epoch = 1
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("txn: open cache: %w", err)
	}
	prev, ok := readEpoch(filepath.Join(dir, epochFile))
	if !ok && hasEntryFiles(dir) {
		// The epoch marker is gone but entries exist: the incarnation
		// ordering is lost, so flush rather than guess. (Entries would
		// still be hash-revalidated; this just keeps epochs honest.)
		clearEntryFiles(dir)
	}
	c.epoch = prev + 1
	if err := writeEpoch(filepath.Join(dir, epochFile), c.epoch); err != nil {
		return nil, fmt.Errorf("txn: open cache: %w", err)
	}
	c.loadEntries()
	return c, nil
}

func readEpoch(path string) (uint64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	r := binenc.NewReader(data)
	e := r.U64()
	if r.Err() != nil {
		return 0, false
	}
	return e, true
}

// writeEpoch installs the epoch marker tmp/fsync/rename/dir-fsync (the
// repository's marker discipline): a power loss must never roll the epoch
// back while newer entry files survive, or the next incarnation would reuse
// its predecessor's epoch and accept callbacks addressed to the dead one.
func writeEpoch(path string, e uint64) error {
	w := binenc.NewWriter(10)
	w.U64(e)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(w.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync() //nolint:errcheck // best effort on filesystems without dir fsync
		dir.Close()
	}
	return nil
}

func hasEntryFiles(dir string) bool {
	names, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, n := range names {
		if strings.HasSuffix(n.Name(), ".dov") {
			return true
		}
	}
	return false
}

func clearEntryFiles(dir string) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, n := range names {
		if strings.HasSuffix(n.Name(), ".dov") {
			os.Remove(filepath.Join(dir, n.Name())) //nolint:errcheck // best effort
		}
	}
}

// entryPath names the persisted file of a version (IDs may contain path
// separators, so the name is a digest of the ID).
func (c *ObjectCache) entryPath(id version.ID) string {
	sum := sha256.Sum256([]byte(id))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:12])+".dov")
}

// loadEntries reads persisted entries, dropping any that fail to decode or
// whose payload does not match its stored hash (torn writes are tolerated by
// discarding, never by trusting).
func (c *ObjectCache) loadEntries() {
	names, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, n := range names {
		if !strings.HasSuffix(n.Name(), ".dov") {
			continue
		}
		path := filepath.Join(c.dir, n.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		e, ok := decodeCacheEntry(data)
		if !ok || !bytes.Equal(catalog.HashEncoded(e.Enc), e.Hash) {
			os.Remove(path) //nolint:errcheck // corrupt entry
			continue
		}
		c.entries[e.Meta.ID] = e
	}
}

func encodeCacheEntry(e *cacheEntry) []byte {
	w := binenc.NewWriter(128 + len(e.Enc))
	w.Byte(cacheFileMagic)
	e.Meta.encodeInto(w)
	w.Blob(e.Hash)
	w.Blob(e.Enc)
	w.Str(string(e.Superseded))
	return w.Bytes()
}

func decodeCacheEntry(data []byte) (*cacheEntry, bool) {
	r := binenc.NewReader(data)
	if r.Byte() != cacheFileMagic {
		return nil, false
	}
	e := &cacheEntry{Meta: decodeDOVMeta(r)}
	e.Hash = r.Blob()
	e.Enc = r.Blob()
	e.Superseded = version.ID(r.Str())
	if r.Err() != nil || e.Meta.ID == "" {
		return nil, false
	}
	return e, true
}

// Epoch returns this cache incarnation's epoch.
func (c *ObjectCache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// BumpEpoch ends this cache incarnation without a restart and returns the new
// epoch. The server orders it (checkoutResp.BumpEpoch) after its notifier
// dropped invalidations destined for this workstation: payloads are always
// hash-revalidated at checkout, but the advisory metadata only callbacks
// refresh — supersession marks, lifecycle status — is now suspect on an
// unknowable subset of entries, so the whole incarnation is retired: the
// epoch advances durably (retiring in-flight callbacks addressed to the old
// one) and every entry is flushed from memory and disk.
func (c *ObjectCache) BumpEpoch() uint64 {
	c.mu.Lock()
	c.epoch++
	e := c.epoch
	victims := make([]version.ID, 0, len(c.entries))
	for id := range c.entries {
		victims = append(victims, id)
	}
	c.entries = make(map[version.ID]*cacheEntry)
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		writeEpoch(filepath.Join(dir, epochFile), e) //nolint:errcheck // best effort; restart re-bumps
		for _, id := range victims {
			os.Remove(c.entryPath(id)) //nolint:errcheck // best effort
		}
	}
	return e
}

// Len reports the number of cached versions.
func (c *ObjectCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Invalidations reports how many callback entries this cache has applied
// (status refreshes + supersession marks).
func (c *ObjectCache) Invalidations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.invalidations + c.supersessions
}

// Lookup returns the cached record of id. The returned meta is a copy; hash
// and enc alias cache memory and must not be mutated.
func (c *ObjectCache) Lookup(id version.ID) (meta dovMeta, hash, enc []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return dovMeta{}, nil, nil, false
	}
	c.clock++
	e.used = c.clock
	return e.Meta, e.Hash, e.Enc, true
}

// SupersededBy reports the newest version known (via callbacks) to derive
// from id, or "" when id is the tip as far as this cache knows.
func (c *ObjectCache) SupersededBy(id version.ID) version.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		return e.Superseded
	}
	return ""
}

// Status returns the cached lifecycle status of id (callbacks refresh it).
func (c *ObjectCache) Status(id version.ID) (version.Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		return e.Meta.Status, true
	}
	return 0, false
}

// Put inserts or replaces the cached record of meta.ID, persisting it when
// the cache is durable. Persistence is best-effort: a failed write leaves a
// memory-only entry (and at worst a corrupt file the next load discards).
func (c *ObjectCache) Put(meta dovMeta, hash, enc []byte) {
	e := &cacheEntry{Meta: meta, Hash: hash, Enc: enc}
	c.mu.Lock()
	c.clock++
	e.used = c.clock
	c.entries[meta.ID] = e
	c.evictLocked()
	// Encode while still holding the lock: once the entry is published in
	// c.entries, a concurrent callback (apply) may mutate its Meta.Status or
	// Superseded fields.
	var blob []byte
	if c.dir != "" {
		blob = encodeCacheEntry(e)
	}
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		os.WriteFile(c.entryPath(meta.ID), blob, 0o644) //nolint:errcheck // best effort
	}
}

// evictLocked drops least-recently-used entries over the capacity bound.
func (c *ObjectCache) evictLocked() {
	limit := c.MaxEntries
	if limit <= 0 {
		limit = DefaultCacheEntries
	}
	for len(c.entries) > limit {
		var victim version.ID
		var oldest uint64
		for id, e := range c.entries {
			if victim == "" || e.used < oldest {
				victim, oldest = id, e.used
			}
		}
		delete(c.entries, victim)
		if c.dir != "" {
			os.Remove(c.entryPath(victim)) //nolint:errcheck // best effort
		}
	}
}

// Drop removes id from the cache.
func (c *ObjectCache) Drop(id version.ID) {
	c.mu.Lock()
	_, ok := c.entries[id]
	delete(c.entries, id)
	dir := c.dir
	c.mu.Unlock()
	if ok && dir != "" {
		os.Remove(c.entryPath(id)) //nolint:errcheck // best effort
	}
}

// BestBase picks the delta base this workstation should offer when checking
// out want: the version itself when cached, else the most recently used
// cached version of the same derivation graph (the likeliest near ancestor
// of whatever the DOP is about to read). The server verifies the offer by
// hash, so a poor guess degrades to a full transfer.
func (c *ObjectCache) BestBase(da string, want version.ID) (version.ID, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[want]; ok {
		return want, e.Hash, true
	}
	var best *cacheEntry
	for _, e := range c.entries {
		if e.Meta.DA != da {
			continue
		}
		if best == nil || e.used > best.used {
			best = e
		}
	}
	if best == nil {
		return "", nil, false
	}
	return best.Meta.ID, best.Hash, true
}

// apply folds one callback message into the cache. Messages addressed to a
// previous incarnation (older epoch) are ignored — their registrations
// belong to a cache state that no longer exists.
func (c *ObjectCache) apply(m invalidateMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.Epoch != c.epoch {
		return
	}
	for _, inv := range m.Entries {
		e, ok := c.entries[inv.DOV]
		if !ok {
			continue
		}
		switch inv.Kind {
		case invStatus:
			c.invalidations++
			if inv.Status == version.StatusInvalid {
				delete(c.entries, inv.DOV)
				if c.dir != "" {
					os.Remove(c.entryPath(inv.DOV)) //nolint:errcheck // best effort
				}
				continue
			}
			e.Meta.Status = inv.Status
			if c.dir != "" {
				os.WriteFile(c.entryPath(inv.DOV), encodeCacheEntry(e), 0o644) //nolint:errcheck // best effort
			}
		case invSuperseded:
			c.supersessions++
			e.Superseded = inv.By
		}
	}
}

// Handler returns the transport handler serving MethodInvalidate — the
// workstation end of the server's callback channel. Wrap it on the
// workstation's callback address (core does).
func (c *ObjectCache) Handler() rpc.Handler {
	return func(method string, payload []byte) ([]byte, error) {
		if method != MethodInvalidate {
			return nil, fmt.Errorf("txn: cache handler: unknown method %q", method)
		}
		m, err := decodeInvalidate(payload)
		if err != nil {
			return nil, err
		}
		c.apply(m)
		return nil, nil
	}
}
