package txn

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
)

// TestDOPOverRealTCP runs the full client-TM/server-TM protocol over actual
// TCP sockets — the LAN workstation/server deployment of Sect. 5.1 used by
// cmd/concordd.
func TestDOPOverRealTCP(t *testing.T) {
	cat := catalog.New()
	if err := cat.Register(&catalog.DOT{
		Name: "floorplan",
		Attrs: []catalog.AttrDef{
			{Name: "cell", Kind: catalog.KindString, Required: true},
			{Name: "area", Kind: catalog.KindFloat},
		},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := repo.Open(cat, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	scopes := lock.NewScopeTable()
	server := NewServerTM(r, lock.NewManager(), scopes)
	server.LockTimeout = 500 * time.Millisecond
	participant, err := rpc.NewParticipant(server, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", rpc.Dedup(server.Handler(participant))); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	cliTrans := rpc.NewTCP()
	defer cliTrans.Close()
	client := rpc.NewClient(cliTrans, "tcp-ws")
	tm, recovered, err := NewClientTM("tcp-ws", client, addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	if len(recovered) != 0 {
		t.Fatal("fresh TM recovered DOPs")
	}

	// Full DOP round trip across the wire.
	dop, err := tm.Begin("tcp-dop", "da1")
	if err != nil {
		t.Fatalf("Begin over TCP: %v", err)
	}
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(42))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	v1, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		t.Fatalf("Checkin over TCP: %v", err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	// Derive once more, with a checkout over the wire.
	dop2, err := tm.Begin("tcp-dop-2", "da1")
	if err != nil {
		t.Fatal(err)
	}
	in, err := dop2.Checkout(v1, true)
	if err != nil {
		t.Fatalf("Checkout over TCP: %v", err)
	}
	if catalog.NumAttr(in, "area") != 42 {
		t.Fatalf("checked-out area = %g", catalog.NumAttr(in, "area"))
	}
	in.Set("area", catalog.Float(40))
	if err := dop2.SetWorkspace(in); err != nil {
		t.Fatal(err)
	}
	v2, err := dop2.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := dop2.Commit(); err != nil {
		t.Fatal(err)
	}
	g, err := r.Graph("da1")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.IsAncestor(v1, v2)
	if err != nil || !ok {
		t.Fatalf("derivation over TCP lost: %t, %v", ok, err)
	}
	if owner, _ := scopes.Owner(string(v2)); owner != "da1" {
		t.Fatalf("scope owner = %s", owner)
	}
}

// tcpStack is a full workstation/server deployment over real sockets.
type tcpStack struct {
	repo   *repo.Repository
	scopes *lock.ScopeTable
	server *ServerTM
	addr   string
}

// newTCPStack assembles a server-TM behind a loopback TCP listener with the
// area-bounded floorplan DOT (validation failures make Prepare vote abort).
func newTCPStack(t *testing.T) *tcpStack {
	t.Helper()
	cat := catalog.New()
	if err := cat.Register(&catalog.DOT{
		Name: "floorplan",
		Attrs: []catalog.AttrDef{
			{Name: "cell", Kind: catalog.KindString, Required: true},
			{Name: "area", Kind: catalog.KindFloat, Bounded: true, Min: 0, Max: 1e12},
		},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := repo.Open(cat, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	scopes := lock.NewScopeTable()
	server := NewServerTM(r, lock.NewManager(), scopes)
	server.LockTimeout = 300 * time.Millisecond
	participant, err := rpc.NewParticipant(server, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewTCP()
	t.Cleanup(func() { srv.Close() })
	addr, err := srv.Listen("127.0.0.1:0", rpc.Dedup(server.Handler(participant)))
	if err != nil {
		t.Fatal(err)
	}
	return &tcpStack{repo: r, scopes: scopes, server: server, addr: addr}
}

// newWS connects a workstation client-TM to the stack over its own TCP
// transport.
func (s *tcpStack) newWS(t *testing.T, id string) *ClientTM {
	t.Helper()
	trans := rpc.NewTCP()
	t.Cleanup(func() { trans.Close() })
	client := rpc.NewClient(trans, id)
	client.Backoff = time.Millisecond
	tm, _, err := NewClientTM(id, client, s.addr, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tm.Close() })
	return tm
}

// seed installs an initial DOV into da1's graph and scope.
func (s *tcpStack) seed(t *testing.T, id string, area float64) version.ID {
	t.Helper()
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(area))
	v := &version.DOV{ID: version.ID(id), DOT: "floorplan", DA: "da1", Object: obj, Status: version.StatusWorking}
	if err := s.repo.Checkin(v, true); err != nil {
		t.Fatal(err)
	}
	if err := s.scopes.Own("da1", id); err != nil {
		t.Fatal(err)
	}
	return version.ID(id)
}

// TestErrCheckinFailedOverTCPMatchesInProc is the acceptance check for the
// wire error contract: a checkin the server votes to abort must surface as
// errors.Is(err, ErrCheckinFailed) over real sockets exactly as it does over
// the in-process transport (TestCheckinValidationFailure pins the in-proc
// half with the same rejected object).
func TestErrCheckinFailedOverTCPMatchesInProc(t *testing.T) {
	s := newTCPStack(t)
	tm := s.newWS(t, "ws1")
	dop, err := tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	bad := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(-1))
	if err := dop.SetWorkspace(bad); err != nil {
		t.Fatal(err)
	}
	_, err = dop.Checkin(version.StatusWorking, true)
	if !errors.Is(err, ErrCheckinFailed) {
		t.Fatalf("rejected checkin over TCP = %v, want errors.Is ErrCheckinFailed", err)
	}
	// The designer fixes the object; the retried checkin succeeds over the
	// same pooled connections.
	good := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(50))
	if err := dop.SetWorkspace(good); err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkin(version.StatusWorking, true); err != nil {
		t.Fatalf("retry after fix: %v", err)
	}
}

// TestLockSentinelCrossesTCPWire drives a derivation-lock conflict between
// two workstations over sockets: the loser's error must still match
// lock.ErrTimeout (and rpc.ErrRemote) through errors.Is — the sentinel
// travels as a wire code, not as flattened text.
func TestLockSentinelCrossesTCPWire(t *testing.T) {
	s := newTCPStack(t)
	v0 := s.seed(t, "v0", 100)
	ws1 := s.newWS(t, "ws1")
	ws2 := s.newWS(t, "ws2")
	dop1, err := ws1.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop1.Checkout(v0, true); err != nil {
		t.Fatal(err)
	}
	dop2, err := ws2.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = dop2.Checkout(v0, true)
	if err == nil {
		t.Fatal("conflicting derivation checkout succeeded")
	}
	if !errors.Is(err, rpc.ErrRemote) {
		t.Fatalf("conflict error = %v, want rpc.ErrRemote in the chain", err)
	}
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("conflict error = %v, want lock.ErrTimeout to survive the socket", err)
	}
}

// TestScopeSentinelOverTCP checks a second registered sentinel family:
// checking out a DOV outside the DA's scope surfaces lock.ErrScopeDenied
// across the wire (the scope check precedes the existence check, so an
// unknown ID takes this path too).
func TestScopeSentinelOverTCP(t *testing.T) {
	s := newTCPStack(t)
	tm := s.newWS(t, "ws1")
	dop, err := tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = dop.Checkout(version.ID("ghost"), false)
	if err == nil {
		t.Fatal("checkout outside scope succeeded")
	}
	if !errors.Is(err, lock.ErrScopeDenied) {
		t.Fatalf("out-of-scope checkout = %v, want lock.ErrScopeDenied over the wire", err)
	}
}

// TestLargeObjectChunkedOverTCP round-trips a multi-megabyte design object
// through checkin and checkout over the socket transport: the payload spans
// many wire chunks in both directions and must reassemble bit-exact.
func TestLargeObjectChunkedOverTCP(t *testing.T) {
	s := newTCPStack(t)
	tm := s.newWS(t, "ws1")
	dop, err := tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	// ~3 MiB of pseudo-random geometry in one string attribute.
	raw := make([]byte, 3<<20)
	rand.New(rand.NewSource(42)).Read(raw)
	for i := range raw { // printable so the value behaves as a plain string
		raw[i] = 'a' + raw[i]%26
	}
	big := catalog.NewObject("floorplan").
		Set("cell", catalog.Str(string(raw))).
		Set("area", catalog.Float(1))
	if err := dop.SetWorkspace(big); err != nil {
		t.Fatal(err)
	}
	v1, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		t.Fatalf("3 MiB checkin over TCP: %v", err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	dop2, err := tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dop2.Checkout(v1, false)
	if err != nil {
		t.Fatalf("3 MiB checkout over TCP: %v", err)
	}
	cell, ok := got.Get("cell")
	if !ok || !bytes.Equal([]byte(cell.S), raw) {
		t.Fatal("3 MiB object corrupted across chunked frames")
	}
}

// TestConcurrentWorkstationsOverTCP pipelines eight workstations, each
// running several full DOP cycles against one server over pooled multiplexed
// connections — the contention shape of the E18 experiment, asserted for
// correctness here.
func TestConcurrentWorkstationsOverTCP(t *testing.T) {
	s := newTCPStack(t)
	v0 := s.seed(t, "v0", 100)
	const workstations = 8
	errs := make(chan error, workstations)
	for w := 0; w < workstations; w++ {
		tm := s.newWS(t, fmt.Sprintf("ws%d", w))
		go func(tm *ClientTM, w int) {
			for i := 0; i < 4; i++ {
				dop, err := tm.Begin("", "da1")
				if err != nil {
					errs <- err
					return
				}
				if _, err := dop.Checkout(v0, false); err != nil {
					errs <- err
					return
				}
				obj := catalog.NewObject("floorplan").
					Set("cell", catalog.Str("O")).
					Set("area", catalog.Float(float64(w*10+i+1)))
				if err := dop.SetWorkspace(obj); err != nil {
					errs <- err
					return
				}
				if _, err := dop.Checkin(version.StatusWorking, true); err != nil {
					errs <- err
					return
				}
				if err := dop.Commit(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(tm, w)
	}
	for w := 0; w < workstations; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.repo.DOVCount(); got != 1+workstations*4 {
		t.Fatalf("repo holds %d DOVs, want %d", got, 1+workstations*4)
	}
}
