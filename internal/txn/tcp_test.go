package txn

import (
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
)

// TestDOPOverRealTCP runs the full client-TM/server-TM protocol over actual
// TCP sockets — the LAN workstation/server deployment of Sect. 5.1 used by
// cmd/concordd.
func TestDOPOverRealTCP(t *testing.T) {
	cat := catalog.New()
	if err := cat.Register(&catalog.DOT{
		Name: "floorplan",
		Attrs: []catalog.AttrDef{
			{Name: "cell", Kind: catalog.KindString, Required: true},
			{Name: "area", Kind: catalog.KindFloat},
		},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := repo.Open(cat, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	scopes := lock.NewScopeTable()
	server := NewServerTM(r, lock.NewManager(), scopes)
	server.LockTimeout = 500 * time.Millisecond
	participant, err := rpc.NewParticipant(server, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", rpc.Dedup(server.Handler(participant))); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	cliTrans := rpc.NewTCP()
	defer cliTrans.Close()
	client := rpc.NewClient(cliTrans, "tcp-ws")
	tm, recovered, err := NewClientTM("tcp-ws", client, addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	if len(recovered) != 0 {
		t.Fatal("fresh TM recovered DOPs")
	}

	// Full DOP round trip across the wire.
	dop, err := tm.Begin("tcp-dop", "da1")
	if err != nil {
		t.Fatalf("Begin over TCP: %v", err)
	}
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(42))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	v1, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		t.Fatalf("Checkin over TCP: %v", err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	// Derive once more, with a checkout over the wire.
	dop2, err := tm.Begin("tcp-dop-2", "da1")
	if err != nil {
		t.Fatal(err)
	}
	in, err := dop2.Checkout(v1, true)
	if err != nil {
		t.Fatalf("Checkout over TCP: %v", err)
	}
	if catalog.NumAttr(in, "area") != 42 {
		t.Fatalf("checked-out area = %g", catalog.NumAttr(in, "area"))
	}
	in.Set("area", catalog.Float(40))
	if err := dop2.SetWorkspace(in); err != nil {
		t.Fatal(err)
	}
	v2, err := dop2.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := dop2.Commit(); err != nil {
		t.Fatal(err)
	}
	g, err := r.Graph("da1")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.IsAncestor(v1, v2)
	if err != nil || !ok {
		t.Fatalf("derivation over TCP lost: %t, %v", ok, err)
	}
	if owner, _ := scopes.Owner(string(v2)); owner != "da1" {
		t.Fatalf("scope owner = %s", owner)
	}
}
