package txn

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/binenc"
	"concord/internal/catalog"
	"concord/internal/fault"
	"concord/internal/lock"
	"concord/internal/repl"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
)

// standby is a warm-standby server for client-failover tests: its own
// repository (seeded as replication would have left it), a second server-TM,
// and a handler that additionally answers repl.MethodPromote the way core's
// receiver does — everything the client-TM's takeover needs, without the
// shipping machinery (internal/repl tests that half).
type standby struct {
	repo       *repo.Repository
	server     *ServerTM
	promotions atomic.Uint64
}

// newStandby serves the standby at addr, promoting to the given epoch. The
// endpoint is epoch-fenced like a real server, so the test also proves the
// client's stamped epoch passes the fence after takeover.
func newStandby(t *testing.T, s *stack, addr string, epoch uint64) *standby {
	t.Helper()
	r, err := repo.Open(s.cat, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if err := r.CreateGraph("da1"); err != nil {
		t.Fatal(err)
	}
	scopes := lock.NewScopeTable()
	srv := NewServerTM(r, lock.NewManager(), scopes)
	srv.LockTimeout = 300 * time.Millisecond
	participant, err := rpc.NewParticipant(srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb := &standby{repo: r, server: srv}
	dh := srv.DeadlineHandler(participant)
	h := func(deadline time.Time, method string, payload []byte) ([]byte, error) {
		if method == repl.MethodPromote {
			sb.promotions.Add(1)
			w := binenc.NewWriter(10)
			w.U64(epoch)
			return w.Bytes(), nil
		}
		return dh(deadline, method, payload)
	}
	fenced := rpc.DedupDeadlineFenced(h, rpc.EpochFence(func() uint64 { return epoch }))
	if err := rpc.ServeWithDeadline(s.trans, addr, fenced); err != nil {
		t.Fatal(err)
	}
	return sb
}

// seedStandbyDOV installs a version in the standby the way replication would
// have: same ID, same scope ownership as the primary's copy.
func (sb *standby) seedDOV(t *testing.T, id string, area float64) {
	t.Helper()
	obj := catalog.NewObject("floorplan").Set("cell", catalog.Str("O")).Set("area", catalog.Float(area))
	v := &version.DOV{ID: version.ID(id), DOT: "floorplan", DA: "da1", Object: obj, Status: version.StatusWorking}
	if err := sb.repo.Checkin(v, true); err != nil {
		t.Fatal(err)
	}
	if err := sb.server.Scopes().Own("da1", id); err != nil {
		t.Fatal(err)
	}
}

func TestFailoverSwitchesServerAndResumesDOPs(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)
	sb := newStandby(t, s, "standby", 2)
	sb.seedDOV(t, "v0", 100)
	s.tm.SetStandbyAddr("standby")

	dop, err := s.tm.Begin("dF", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}

	// The primary goes dark; the client drives the takeover.
	s.trans.Partition(serverAddr)
	if err := s.tm.Failover(); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if got := s.tm.ServerAddr(); got != "standby" {
		t.Fatalf("server after failover = %q, want standby", got)
	}
	if got := s.tm.KnownEpoch(); got != 2 {
		t.Fatalf("witnessed epoch = %d, want 2", got)
	}
	if sb.promotions.Load() == 0 {
		t.Fatal("failover never asked the standby to promote")
	}
	// Rejoin re-established the session and re-registered the live DOP.
	if !sb.server.HasLease("ws1") {
		t.Fatal("no lease at the standby after failover")
	}
	if n := sb.server.ActiveDOPs(); n != 1 {
		t.Fatalf("standby registered %d DOPs, want 1", n)
	}
	// The long-lived DOP continues at the new primary: checkout and checkin
	// land in the standby's repository, through its epoch fence.
	obj, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatalf("checkout after failover: %v", err)
	}
	obj.Set("area", catalog.Float(80))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	newID, err := dop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatalf("checkin after failover: %v", err)
	}
	if _, err := sb.repo.Get(newID); err != nil {
		t.Fatalf("checked-in version missing at the standby: %v", err)
	}
	// A second failover has nowhere to go: the standby became the server.
	if err := s.tm.Failover(); err == nil {
		t.Fatal("failover without a standby should refuse")
	}
}

func TestHeartbeatDrivesFailoverWhenPrimaryFallsSilent(t *testing.T) {
	s := newStack(t, "")
	s.seedDOV(t, "v0", 100)
	sb := newStandby(t, s, "standby", 2)
	sb.seedDOV(t, "v0", 100)
	s.tm.SetStandbyAddr("standby")

	if _, err := s.tm.Begin("dH", "da1"); err != nil {
		t.Fatal(err)
	}
	const every = 15 * time.Millisecond
	s.tm.StartHeartbeat(every)
	defer s.tm.StopHeartbeat()

	s.trans.Partition(serverAddr)
	deadline := time.Now().Add(5 * time.Second)
	for s.tm.ServerAddr() != "standby" {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop never failed over to the standby")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sb.server.HasLease("ws1") {
		t.Fatal("standby holds no lease after heartbeat-driven failover")
	}
	if got := s.tm.KnownEpoch(); got != 2 {
		t.Fatalf("witnessed epoch = %d, want 2", got)
	}
}

// TestFailoverResolvesInDoubtCheckin is the lost-committed-work oracle at the
// TE level: the checkin's commit decision is durable in the workstation's
// coordinator log, but the primary dies before phase 2 reaches it. The
// standby holds the prepared branch (as the replicated participant log would
// leave it); failover resends the decision and the checkin materializes.
func TestFailoverResolvesInDoubtCheckin(t *testing.T) {
	s := newStack(t, t.TempDir())
	v0 := s.seedDOV(t, "v0", 100)
	sb := newStandby(t, s, "standby", 2)
	sb.seedDOV(t, "v0", 100)

	dop, err := s.tm.Begin("dD", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(75))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}

	// Mirror the replicated 2PC state at the standby: the branch the client
	// is about to commit is staged and prepared there.
	if err := sb.server.beginWS("dD", "da1", "ws1"); err != nil {
		t.Fatal(err)
	}
	staged := &version.DOV{
		ID: "dD/v1", DOT: "floorplan", DA: "da1", Parents: []version.ID{v0},
		Object: obj.Clone(), Status: version.StatusWorking,
	}
	if err := sb.server.Stage("dD", "dD/ci1", staged, false, nil); err != nil {
		t.Fatal(err)
	}
	if vote, err := sb.server.Prepare("dD/ci1"); err != nil || vote != rpc.VoteCommit {
		t.Fatalf("standby prepare = (%v, %v), want VoteCommit", vote, err)
	}

	// The primary dies right after the commit decision is logged: phase 2
	// never reaches any participant. The designer sees a failed checkin.
	co := s.tm.Coordinator()
	co.Faults = fault.New()
	co.Faults.Arm(rpc.FaultDecisionLogged, errors.New("primary crashed mid-2PC"))
	if _, err := dop.Checkin(version.StatusWorking, false); err == nil {
		t.Fatal("checkin should surface the phase-2 failure")
	}
	co.Faults.Disarm(rpc.FaultDecisionLogged)
	if co.Outcome("dD/ci1") != rpc.OutcomeCommitted {
		t.Fatal("commit decision not durable in the coordinator")
	}

	s.trans.Partition(serverAddr)
	s.tm.SetStandbyAddr("standby")
	if err := s.tm.Failover(); err != nil {
		t.Fatalf("failover: %v", err)
	}
	// The resent decision resolved the in-doubt branch: the committed
	// checkin exists at the new primary. No committed work was lost.
	got, err := sb.repo.Get("dD/v1")
	if err != nil {
		t.Fatalf("committed checkin lost across failover: %v", err)
	}
	if catalog.NumAttr(got.Object, "area") != 75 {
		t.Fatalf("area = %g, want 75", catalog.NumAttr(got.Object, "area"))
	}
}

// TestCheckoutOrdersEpochBumpAfterDroppedInvalidations is the regression test
// for the notifier reconnect window: invalidations destined for a workstation
// are lost (its callback endpoint was unreachable), so at its next checkout
// negotiation the server orders a cache-epoch bump — the stale incarnation
// ends instead of silently serving metadata the lost callbacks should have
// refreshed. The bump travels exactly once per loss.
func TestCheckoutOrdersEpochBumpAfterDroppedInvalidations(t *testing.T) {
	s := newStack(t, "")
	const cbAddr = "ws1-cb"
	n := s.wireCallbacks(t, s.tm, cbAddr)
	v0 := s.seedBig(t, "big0", 8<<10)

	dop, err := s.tm.Begin("dB", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkout(v0, true); err != nil {
		t.Fatal(err)
	}
	epoch0 := s.tm.Cache().Epoch()

	// The workstation's callback endpoint goes unreachable, and a checkin by
	// another workstation supersedes its cached version: the invalidation
	// push fails and is counted against the endpoint.
	s.trans.Partition(cbAddr)
	obj, err := dop.Input(v0)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(42))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	if _, err := dop.Checkin(version.StatusWorking, false); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if n.DroppedAt(cbAddr) == 0 {
		t.Fatal("partitioned callback endpoint recorded no loss")
	}
	s.trans.Heal(cbAddr)

	// Next checkout negotiation: the server orders the bump, the cache
	// retires its incarnation (entries flushed, epoch advanced), and the
	// checkout still returns correct data via the cache-blind fallback.
	if _, err := dop.Checkout(v0, false); err != nil {
		t.Fatalf("checkout carrying the epoch bump: %v", err)
	}
	if got := s.tm.Cache().Epoch(); got != epoch0+1 {
		t.Fatalf("cache epoch = %d, want %d", got, epoch0+1)
	}
	// The bump is consumed: the next checkout keeps the new incarnation.
	if _, err := dop.Checkout(v0, false); err != nil {
		t.Fatal(err)
	}
	if got := s.tm.Cache().Epoch(); got != epoch0+1 {
		t.Fatalf("cache epoch after consumed bump = %d, want %d", got, epoch0+1)
	}
}
