package txn

import (
	"errors"
	"testing"

	"concord/internal/catalog"
	"concord/internal/version"
)

func TestHandOverTransfersContext(t *testing.T) {
	s := newStack(t, "")
	v0 := s.seedDOV(t, "v0", 100)
	first, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	in, err := first.Checkout(v0, false)
	if err != nil {
		t.Fatal(err)
	}
	in.Set("area", catalog.Float(77))
	first.SetWorkspace(in) //nolint:errcheck

	second, err := s.tm.Begin("", "da1")
	if err != nil {
		t.Fatal(err)
	}
	if err := first.HandOver(second); err != nil {
		t.Fatal(err)
	}
	// The successor carries the design state and derivation inputs.
	if got := catalog.NumAttr(second.Workspace(), "area"); got != 77 {
		t.Fatalf("handed-over area = %g", got)
	}
	inputs := second.Inputs()
	if len(inputs) != 1 || inputs[0] != v0 {
		t.Fatalf("handed-over inputs = %v", inputs)
	}
	// Deep copy: mutating the predecessor must not affect the successor.
	first.Workspace().Set("area", catalog.Float(1))
	if got := catalog.NumAttr(second.Workspace(), "area"); got != 77 {
		t.Fatal("handover aliased the workspace")
	}
	// The successor can check in with the correct derivation edge.
	id, err := second.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Commit(); err != nil {
		t.Fatal(err)
	}
	g, _ := s.repo.Graph("da1")
	ok, err := g.IsAncestor(v0, id)
	if err != nil || !ok {
		t.Fatalf("derivation edge after handover: %t, %v", ok, err)
	}
	if err := first.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestHandOverRejections(t *testing.T) {
	s := newStack(t, "")
	if err := s.repo.CreateGraph("da2"); err != nil {
		t.Fatal(err)
	}
	a, _ := s.tm.Begin("", "da1")
	b, _ := s.tm.Begin("", "da2")
	if err := a.HandOver(b); err == nil {
		t.Fatal("cross-DA handover accepted")
	}
	if err := a.HandOver(nil); err == nil {
		t.Fatal("nil successor accepted")
	}
	if err := a.HandOver(a); err == nil {
		t.Fatal("self handover accepted")
	}
	c, _ := s.tm.Begin("", "da1")
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := a.HandOver(c); !errors.Is(err, ErrDOPNotActive) {
		t.Fatalf("handover to ended DOP = %v", err)
	}
}
