// Package catalog defines design object types (DOTs) — the typed, complex
// schemas of the CONCORD design-data repository — and the object values that
// instantiate them. It is the schema half of the design object management
// (DOM) layer, beneath design flow management (DFM) and the cooperation
// layer.
//
// A DOT has named attributes (integer, float, string, bool) with optional
// declarative constraints, and named components referring to other DOTs with
// cardinality bounds. Components induce the part-of hierarchy that governs
// design-task delegation at the AC level: the DOT of a sub-DA must be a part
// of the super-DA's DOT (CONCORD Sect. 4.1).
package catalog

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Kind enumerates attribute value kinds.
type Kind uint8

// Attribute kinds.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindString
	KindBool
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a float Value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str returns a string Value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value { return Value{Kind: KindBool, B: v} }

// Num returns the numeric value of an int or float Value and whether the
// value is numeric at all.
func (v Value) Num() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// Equal reports whether two values have identical kind and content.
func (v Value) Equal(o Value) bool { return v == o }

// String formats the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return v.S
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	default:
		return "<invalid>"
	}
}

// AttrDef declares one attribute of a DOT.
type AttrDef struct {
	// Name is the attribute name, unique within the DOT.
	Name string
	// Kind is the required value kind.
	Kind Kind
	// Required rejects objects that omit the attribute.
	Required bool
	// Min and Max bound numeric attributes (inclusive); both zero means
	// unbounded. They are ignored for strings and bools.
	Min, Max float64
	// Bounded indicates Min/Max are enforced.
	Bounded bool
}

// ComponentDef declares a named component slot of a DOT: the composition
// ("part-of") dimension of complex design objects.
type ComponentDef struct {
	// Name is the component slot name, unique within the DOT.
	Name string
	// DOT is the design object type of the parts in this slot.
	DOT string
	// MinCard and MaxCard bound the number of parts; MaxCard == 0 means
	// unbounded above.
	MinCard, MaxCard int
}

// DOT is a design object type: the schema of the design states (DOVs)
// produced within a design activity.
type DOT struct {
	// Name identifies the type in the catalog.
	Name string
	// Attrs are the attribute declarations.
	Attrs []AttrDef
	// Components are the composition slots.
	Components []ComponentDef
}

// Attr returns the declaration of the named attribute, if present.
func (d *DOT) Attr(name string) (AttrDef, bool) {
	for _, a := range d.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDef{}, false
}

// Component returns the declaration of the named component slot, if present.
func (d *DOT) Component(name string) (ComponentDef, bool) {
	for _, c := range d.Components {
		if c.Name == name {
			return c, true
		}
	}
	return ComponentDef{}, false
}

// Object is an instance of a DOT: the payload of a design object version.
type Object struct {
	// Type is the DOT name.
	Type string
	// Attrs maps attribute names to values.
	Attrs map[string]Value
	// Parts maps component slot names to the contained part objects.
	Parts map[string][]*Object
}

// NewObject returns an empty object of the given type.
func NewObject(dot string) *Object {
	return &Object{Type: dot, Attrs: make(map[string]Value), Parts: make(map[string][]*Object)}
}

// Set assigns an attribute value and returns the object for chaining.
func (o *Object) Set(name string, v Value) *Object {
	o.Attrs[name] = v
	return o
}

// Get returns an attribute value.
func (o *Object) Get(name string) (Value, bool) {
	v, ok := o.Attrs[name]
	return v, ok
}

// AddPart appends a part object to a component slot.
func (o *Object) AddPart(slot string, part *Object) *Object {
	o.Parts[slot] = append(o.Parts[slot], part)
	return o
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	if o == nil {
		return nil
	}
	c := NewObject(o.Type)
	for k, v := range o.Attrs {
		c.Attrs[k] = v
	}
	for slot, parts := range o.Parts {
		cp := make([]*Object, len(parts))
		for i, p := range parts {
			cp[i] = p.Clone()
		}
		c.Parts[slot] = cp
	}
	return c
}

// Walk visits the object and all transitive parts in depth-first pre-order.
func (o *Object) Walk(fn func(*Object)) {
	if o == nil {
		return
	}
	fn(o)
	slots := make([]string, 0, len(o.Parts))
	for s := range o.Parts {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	for _, s := range slots {
		for _, p := range o.Parts[s] {
			p.Walk(fn)
		}
	}
}

// Catalog is a registry of DOTs. It is safe for concurrent use.
type Catalog struct {
	mu   sync.RWMutex
	dots map[string]*DOT
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{dots: make(map[string]*DOT)} }

// Errors reported by catalog operations.
var (
	ErrUnknownDOT = errors.New("catalog: unknown design object type")
	ErrDuplicate  = errors.New("catalog: duplicate design object type")
)

// Register adds a DOT after validating its internal consistency. Component
// DOT references may be registered later (mutual recursion is allowed); they
// are resolved at validation time.
func (c *Catalog) Register(d *DOT) error {
	if d.Name == "" {
		return errors.New("catalog: DOT needs a name")
	}
	seen := make(map[string]bool)
	for _, a := range d.Attrs {
		if a.Name == "" {
			return fmt.Errorf("catalog: DOT %s: attribute without name", d.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("catalog: DOT %s: duplicate attribute %s", d.Name, a.Name)
		}
		seen[a.Name] = true
		if a.Kind < KindInt || a.Kind > KindBool {
			return fmt.Errorf("catalog: DOT %s: attribute %s has invalid kind", d.Name, a.Name)
		}
		if a.Bounded && a.Min > a.Max {
			return fmt.Errorf("catalog: DOT %s: attribute %s has Min > Max", d.Name, a.Name)
		}
	}
	seenC := make(map[string]bool)
	for _, comp := range d.Components {
		if comp.Name == "" || comp.DOT == "" {
			return fmt.Errorf("catalog: DOT %s: component needs name and DOT", d.Name)
		}
		if seenC[comp.Name] {
			return fmt.Errorf("catalog: DOT %s: duplicate component %s", d.Name, comp.Name)
		}
		seenC[comp.Name] = true
		if comp.MinCard < 0 || (comp.MaxCard != 0 && comp.MaxCard < comp.MinCard) {
			return fmt.Errorf("catalog: DOT %s: component %s has invalid cardinality", d.Name, comp.Name)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.dots[d.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, d.Name)
	}
	c.dots[d.Name] = d
	return nil
}

// Lookup returns the named DOT.
func (c *Catalog) Lookup(name string) (*DOT, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.dots[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDOT, name)
	}
	return d, nil
}

// Names returns all registered DOT names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.dots))
	for n := range c.dots {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsPartOf reports whether DOT sub is a part of DOT super: sub == super, or
// sub occurs (transitively) as a component type of super. This is the
// legality check for design-task delegation (Sect. 4.1: "the DOT of the
// sub-DA has to be a 'part' of the super-DA's DOT").
func (c *Catalog) IsPartOf(sub, super string) (bool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.dots[sub]; !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownDOT, sub)
	}
	if _, ok := c.dots[super]; !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownDOT, super)
	}
	visited := make(map[string]bool)
	var reach func(from string) bool
	reach = func(from string) bool {
		if from == sub {
			return true
		}
		if visited[from] {
			return false
		}
		visited[from] = true
		d := c.dots[from]
		if d == nil {
			return false
		}
		for _, comp := range d.Components {
			if reach(comp.DOT) {
				return true
			}
		}
		return false
	}
	return reach(super), nil
}

// Validate checks an object (recursively) against its DOT: attribute kinds,
// required attributes, numeric bounds, component types and cardinalities.
// This is the schema-consistency check performed by the server-TM at checkin.
func (c *Catalog) Validate(o *Object) error {
	if o == nil {
		return errors.New("catalog: nil object")
	}
	d, err := c.Lookup(o.Type)
	if err != nil {
		return err
	}
	for name, v := range o.Attrs {
		a, ok := d.Attr(name)
		if !ok {
			return fmt.Errorf("catalog: %s: undeclared attribute %q", o.Type, name)
		}
		if v.Kind != a.Kind {
			return fmt.Errorf("catalog: %s.%s: kind %s, want %s", o.Type, name, v.Kind, a.Kind)
		}
		if a.Bounded {
			n, _ := v.Num()
			if n < a.Min || n > a.Max {
				return fmt.Errorf("catalog: %s.%s: value %g outside [%g, %g]", o.Type, name, n, a.Min, a.Max)
			}
		}
	}
	for _, a := range d.Attrs {
		if a.Required {
			if _, ok := o.Attrs[a.Name]; !ok {
				return fmt.Errorf("catalog: %s: missing required attribute %q", o.Type, a.Name)
			}
		}
	}
	for slot, parts := range o.Parts {
		comp, ok := d.Component(slot)
		if !ok {
			return fmt.Errorf("catalog: %s: undeclared component slot %q", o.Type, slot)
		}
		for _, p := range parts {
			if p.Type != comp.DOT {
				return fmt.Errorf("catalog: %s.%s: part of type %s, want %s", o.Type, slot, p.Type, comp.DOT)
			}
			if err := c.Validate(p); err != nil {
				return err
			}
		}
	}
	for _, comp := range d.Components {
		n := len(o.Parts[comp.Name])
		if n < comp.MinCard {
			return fmt.Errorf("catalog: %s.%s: %d parts, need at least %d", o.Type, comp.Name, n, comp.MinCard)
		}
		if comp.MaxCard != 0 && n > comp.MaxCard {
			return fmt.Errorf("catalog: %s.%s: %d parts, at most %d allowed", o.Type, comp.Name, n, comp.MaxCard)
		}
	}
	return nil
}

// NumAttr fetches a numeric attribute from an object, returning NaN when the
// attribute is absent or non-numeric. Convenience for feature evaluation.
func NumAttr(o *Object, name string) float64 {
	if o == nil {
		return math.NaN()
	}
	v, ok := o.Attrs[name]
	if !ok {
		return math.NaN()
	}
	n, ok := v.Num()
	if !ok {
		return math.NaN()
	}
	return n
}
