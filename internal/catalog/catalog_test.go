package catalog

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// vlsiCatalog builds the four-level cell hierarchy of the paper's Fig. 2:
// chip ⊃ module ⊃ block ⊃ stdcell.
func vlsiCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	register := func(d *DOT) {
		t.Helper()
		if err := c.Register(d); err != nil {
			t.Fatalf("Register %s: %v", d.Name, err)
		}
	}
	register(&DOT{
		Name: "stdcell",
		Attrs: []AttrDef{
			{Name: "name", Kind: KindString, Required: true},
			{Name: "area", Kind: KindFloat, Bounded: true, Min: 0, Max: 1e9},
		},
	})
	register(&DOT{
		Name:       "block",
		Attrs:      []AttrDef{{Name: "name", Kind: KindString, Required: true}},
		Components: []ComponentDef{{Name: "cells", DOT: "stdcell", MinCard: 0}},
	})
	register(&DOT{
		Name:       "module",
		Attrs:      []AttrDef{{Name: "name", Kind: KindString, Required: true}},
		Components: []ComponentDef{{Name: "blocks", DOT: "block", MinCard: 0}},
	})
	register(&DOT{
		Name:       "chip",
		Attrs:      []AttrDef{{Name: "name", Kind: KindString, Required: true}},
		Components: []ComponentDef{{Name: "modules", DOT: "module", MinCard: 0, MaxCard: 16}},
	})
	return c
}

func TestRegisterRejectsBadSchemas(t *testing.T) {
	cases := []struct {
		name string
		dot  *DOT
		want string
	}{
		{"empty name", &DOT{}, "needs a name"},
		{"dup attr", &DOT{Name: "x", Attrs: []AttrDef{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}}, "duplicate attribute"},
		{"bad kind", &DOT{Name: "x", Attrs: []AttrDef{{Name: "a", Kind: 99}}}, "invalid kind"},
		{"min>max", &DOT{Name: "x", Attrs: []AttrDef{{Name: "a", Kind: KindInt, Bounded: true, Min: 2, Max: 1}}}, "Min > Max"},
		{"dup comp", &DOT{Name: "x", Components: []ComponentDef{{Name: "c", DOT: "y"}, {Name: "c", DOT: "y"}}}, "duplicate component"},
		{"bad card", &DOT{Name: "x", Components: []ComponentDef{{Name: "c", DOT: "y", MinCard: 3, MaxCard: 1}}}, "invalid cardinality"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := New().Register(tc.dot)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Register = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestRegisterDuplicateDOT(t *testing.T) {
	c := New()
	if err := c.Register(&DOT{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	err := c.Register(&DOT{Name: "a"})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register = %v, want ErrDuplicate", err)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := New().Lookup("nope"); !errors.Is(err, ErrUnknownDOT) {
		t.Fatalf("Lookup = %v, want ErrUnknownDOT", err)
	}
}

func TestIsPartOfHierarchy(t *testing.T) {
	c := vlsiCatalog(t)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"chip", "chip", true},
		{"module", "chip", true},
		{"block", "chip", true},
		{"stdcell", "chip", true},
		{"stdcell", "module", true},
		{"chip", "module", false},
		{"module", "block", false},
		{"block", "stdcell", false},
	}
	for _, tc := range cases {
		got, err := c.IsPartOf(tc.sub, tc.super)
		if err != nil {
			t.Fatalf("IsPartOf(%s, %s): %v", tc.sub, tc.super, err)
		}
		if got != tc.want {
			t.Errorf("IsPartOf(%s, %s) = %t, want %t", tc.sub, tc.super, got, tc.want)
		}
	}
	if _, err := c.IsPartOf("ghost", "chip"); !errors.Is(err, ErrUnknownDOT) {
		t.Errorf("IsPartOf unknown sub = %v, want ErrUnknownDOT", err)
	}
}

func TestIsPartOfCyclicSchemas(t *testing.T) {
	c := New()
	// a and b contain each other: IsPartOf must terminate and find both.
	if err := c.Register(&DOT{Name: "a", Components: []ComponentDef{{Name: "bs", DOT: "b"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(&DOT{Name: "b", Components: []ComponentDef{{Name: "as", DOT: "a"}}}); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"a", "b"}, {"b", "a"}} {
		ok, err := c.IsPartOf(pair[0], pair[1])
		if err != nil || !ok {
			t.Fatalf("IsPartOf(%s, %s) = %t, %v", pair[0], pair[1], ok, err)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	c := vlsiCatalog(t)
	chip := NewObject("chip").Set("name", Str("cpu"))
	mod := NewObject("module").Set("name", Str("alu"))
	blk := NewObject("block").Set("name", Str("rom"))
	cell := NewObject("stdcell").Set("name", Str("mux")).Set("area", Float(4.5))
	blk.AddPart("cells", cell)
	mod.AddPart("blocks", blk)
	chip.AddPart("modules", mod)
	if err := c.Validate(chip); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	c := vlsiCatalog(t)
	cases := []struct {
		name string
		obj  *Object
		want string
	}{
		{"unknown type", NewObject("ghost"), "unknown design object type"},
		{"missing required", NewObject("chip"), "missing required"},
		{"undeclared attr", NewObject("chip").Set("name", Str("x")).Set("ghost", Int(1)), "undeclared attribute"},
		{"wrong kind", NewObject("chip").Set("name", Int(5)), "kind int, want string"},
		{"out of bounds", NewObject("stdcell").Set("name", Str("c")).Set("area", Float(-2)), "outside"},
		{"undeclared slot", NewObject("chip").Set("name", Str("x")).AddPart("ghosts", NewObject("module").Set("name", Str("m"))), "undeclared component slot"},
		{"wrong part type", NewObject("chip").Set("name", Str("x")).AddPart("modules", NewObject("block").Set("name", Str("b"))), "part of type block, want module"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := c.Validate(tc.obj)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateCardinality(t *testing.T) {
	c := New()
	if err := c.Register(&DOT{Name: "leaf"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(&DOT{Name: "root", Components: []ComponentDef{{Name: "kids", DOT: "leaf", MinCard: 1, MaxCard: 2}}}); err != nil {
		t.Fatal(err)
	}
	o := NewObject("root")
	if err := c.Validate(o); err == nil || !strings.Contains(err.Error(), "at least 1") {
		t.Fatalf("empty kids: %v", err)
	}
	o.AddPart("kids", NewObject("leaf"))
	if err := c.Validate(o); err != nil {
		t.Fatalf("one kid: %v", err)
	}
	o.AddPart("kids", NewObject("leaf")).AddPart("kids", NewObject("leaf"))
	if err := c.Validate(o); err == nil || !strings.Contains(err.Error(), "at most 2") {
		t.Fatalf("three kids: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	o := NewObject("chip").Set("name", Str("a"))
	o.AddPart("modules", NewObject("module").Set("name", Str("m1")))
	c := o.Clone()
	c.Set("name", Str("b"))
	c.Parts["modules"][0].Set("name", Str("changed"))
	if o.Attrs["name"].S != "a" {
		t.Error("clone mutated root attr of original")
	}
	if o.Parts["modules"][0].Attrs["name"].S != "m1" {
		t.Error("clone mutated nested part of original")
	}
}

func TestWalkVisitsAllPartsInOrder(t *testing.T) {
	o := NewObject("chip").Set("name", Str("c"))
	m1 := NewObject("module").Set("name", Str("m1"))
	m2 := NewObject("module").Set("name", Str("m2"))
	o.AddPart("modules", m1).AddPart("modules", m2)
	m1.AddPart("blocks", NewObject("block").Set("name", Str("b")))
	var names []string
	o.Walk(func(x *Object) { names = append(names, x.Attrs["name"].S) })
	want := []string{"c", "m1", "b", "m2"}
	if len(names) != len(want) {
		t.Fatalf("visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("visited %v, want %v", names, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	o := NewObject("chip").Set("name", Str("cpu")).Set("rev", Str("a0"))
	o.AddPart("modules", NewObject("module").Set("name", Str("alu")))
	data, err := EncodeObject(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeObject(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != "chip" || got.Attrs["name"].S != "cpu" || len(got.Parts["modules"]) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestNumAttr(t *testing.T) {
	o := NewObject("x").Set("i", Int(3)).Set("f", Float(2.5)).Set("s", Str("no"))
	if got := NumAttr(o, "i"); got != 3 {
		t.Errorf("NumAttr(i) = %g", got)
	}
	if got := NumAttr(o, "f"); got != 2.5 {
		t.Errorf("NumAttr(f) = %g", got)
	}
	if got := NumAttr(o, "s"); !math.IsNaN(got) {
		t.Errorf("NumAttr(s) = %g, want NaN", got)
	}
	if got := NumAttr(o, "missing"); !math.IsNaN(got) {
		t.Errorf("NumAttr(missing) = %g, want NaN", got)
	}
	if got := NumAttr(nil, "x"); !math.IsNaN(got) {
		t.Errorf("NumAttr(nil) = %g, want NaN", got)
	}
}

// Property: encode/decode is the identity for objects built from arbitrary
// attribute values.
func TestQuickEncodeRoundTrip(t *testing.T) {
	prop := func(ints []int64, strs []string) bool {
		o := NewObject("t")
		for i, v := range ints {
			o.Set("i"+string(rune('a'+i%26)), Int(v))
		}
		for i, v := range strs {
			o.Set("s"+string(rune('a'+i%26)), Str(v))
		}
		data, err := EncodeObject(o)
		if err != nil {
			return false
		}
		got, err := DecodeObject(data)
		if err != nil || got.Type != o.Type || len(got.Attrs) != len(o.Attrs) {
			return false
		}
		for k, v := range o.Attrs {
			if !got.Attrs[k].Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: IsPartOf is reflexive and transitive on a random linear chain.
func TestQuickPartOfTransitive(t *testing.T) {
	prop := func(depth uint8) bool {
		n := int(depth%6) + 2
		c := New()
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = "t" + string(rune('a'+i))
		}
		for i := 0; i < n; i++ {
			d := &DOT{Name: names[i]}
			if i+1 < n {
				d.Components = []ComponentDef{{Name: "sub", DOT: names[i+1]}}
			}
			if err := c.Register(d); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				ok, err := c.IsPartOf(names[j], names[i])
				if err != nil || !ok {
					return false
				}
				if i != j {
					rev, err := c.IsPartOf(names[i], names[j])
					if err != nil || rev {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
