package catalog

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"concord/internal/binenc"
)

// HashSize is the length in bytes of a content hash.
const HashSize = sha256.Size

// HashEncoded returns the content hash of an object's canonical encoding
// (EncodeObject output). Because the encoding is deterministic — map keys
// sorted, no per-process state — equal objects hash equally on every
// machine, which is what lets the checkout/checkin protocol negotiate
// "do you already have these bytes" by hash alone (DESIGN.md §4).
func HashEncoded(enc []byte) []byte {
	h := sha256.Sum256(enc)
	return h[:]
}

// HashObject encodes the object canonically and returns its content hash.
func HashObject(o *Object) ([]byte, error) {
	enc, err := EncodeObject(o)
	if err != nil {
		return nil, err
	}
	return HashEncoded(enc), nil
}

// objFmtV1 tags the hand-rolled binary object format (see binenc). The
// previous gob format always started with a small type-definition length,
// so the tag also guards against decoding stale gob buffers.
const objFmtV1 = 0xC1

// EncodeObject serializes an object for durable storage or transmission.
func EncodeObject(o *Object) ([]byte, error) {
	if o == nil {
		return nil, fmt.Errorf("catalog: encode nil object")
	}
	w := binenc.NewWriter(64)
	w.Byte(objFmtV1)
	encodeObjectInto(w, o)
	return w.Bytes(), nil
}

// encodeObjectInto writes one object (recursively). Map keys are sorted so
// the encoding is deterministic — log records and staged checkins of the
// same object are byte-identical.
func encodeObjectInto(w *binenc.Writer, o *Object) {
	w.Str(o.Type)
	attrs := make([]string, 0, len(o.Attrs))
	for k := range o.Attrs {
		attrs = append(attrs, k)
	}
	sort.Strings(attrs)
	w.U64(uint64(len(attrs)))
	for _, k := range attrs {
		v := o.Attrs[k]
		w.Str(k)
		w.Byte(byte(v.Kind))
		switch v.Kind {
		case KindInt:
			w.I64(v.I)
		case KindFloat:
			w.F64(v.F)
		case KindString:
			w.Str(v.S)
		case KindBool:
			w.Bool(v.B)
		}
	}
	slots := make([]string, 0, len(o.Parts))
	for k := range o.Parts {
		slots = append(slots, k)
	}
	sort.Strings(slots)
	w.U64(uint64(len(slots)))
	for _, k := range slots {
		parts := o.Parts[k]
		w.Str(k)
		w.U64(uint64(len(parts)))
		for _, p := range parts {
			encodeObjectInto(w, p)
		}
	}
}

// DecodeObject deserializes an object produced by EncodeObject.
func DecodeObject(data []byte) (*Object, error) {
	r := binenc.NewReader(data)
	if r.Byte() != objFmtV1 {
		return nil, fmt.Errorf("catalog: decode object: unknown format")
	}
	o := decodeObjectFrom(r, 0)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("catalog: decode object: %w", err)
	}
	if o == nil {
		return nil, fmt.Errorf("catalog: decode object: empty")
	}
	return o, nil
}

// maxObjectDepth bounds recursion on corrupt input.
const maxObjectDepth = 64

func decodeObjectFrom(r *binenc.Reader, depth int) *Object {
	if depth > maxObjectDepth {
		return nil
	}
	o := &Object{
		Type:  r.Str(),
		Attrs: make(map[string]Value),
		Parts: make(map[string][]*Object),
	}
	nAttrs := r.U64()
	for i := uint64(0); i < nAttrs && r.Err() == nil; i++ {
		k := r.Str()
		v := Value{Kind: Kind(r.Byte())}
		switch v.Kind {
		case KindInt:
			v.I = r.I64()
		case KindFloat:
			v.F = r.F64()
		case KindString:
			v.S = r.Str()
		case KindBool:
			v.B = r.Bool()
		}
		o.Attrs[k] = v
	}
	nSlots := r.U64()
	for i := uint64(0); i < nSlots && r.Err() == nil; i++ {
		k := r.Str()
		nParts := r.U64()
		if nParts > uint64(r.Remaining()) {
			return nil
		}
		parts := make([]*Object, 0, nParts)
		for j := uint64(0); j < nParts && r.Err() == nil; j++ {
			p := decodeObjectFrom(r, depth+1)
			if p == nil {
				return nil
			}
			parts = append(parts, p)
		}
		o.Parts[k] = parts
	}
	if r.Err() != nil {
		return nil
	}
	return o
}
