package catalog

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// EncodeObject serializes an object for durable storage or transmission.
func EncodeObject(o *Object) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(o); err != nil {
		return nil, fmt.Errorf("catalog: encode object: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeObject deserializes an object produced by EncodeObject.
func DecodeObject(data []byte) (*Object, error) {
	var o Object
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&o); err != nil {
		return nil, fmt.Errorf("catalog: decode object: %w", err)
	}
	if o.Attrs == nil {
		o.Attrs = make(map[string]Value)
	}
	if o.Parts == nil {
		o.Parts = make(map[string][]*Object)
	}
	return &o, nil
}
