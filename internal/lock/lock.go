// Package lock implements the concurrency-control mechanisms of the CONCORD
// transaction and cooperation managers (Sects. 5.2, 5.4):
//
//   - short read/write locks (S/X) protecting checkin/checkout and the
//     proliferation of a DA's derivation graph,
//   - long derivation locks (D) preventing multiple checkout of a DOV for
//     application-specific reasons,
//   - waits-for-graph deadlock detection (the requester closing a cycle is
//     rejected with ErrDeadlock),
//   - a scope-lock table with nested-transaction-style inheritance that
//     controls the dissemination of preliminary design information among
//     DAs (see scope.go).
//
// The lock table is sharded: resources hash onto a fixed array of shards,
// each with its own mutex and condition variable, so lock traffic from
// concurrent workstations on disjoint resources never contends. The
// waits-for graph used for deadlock detection stays global (cycles span
// shards); it lives under its own mutex, always acquired after a shard
// mutex, never before.
package lock

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	// S is a short shared (read) lock.
	S Mode = iota + 1
	// X is a short exclusive (write) lock.
	X
	// D is a long derivation lock: it prevents concurrent derivation
	// (checkout for update) of a DOV but still admits readers.
	D
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case S:
		return "S"
	case X:
		return "X"
	case D:
		return "D"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// compatible reports whether a lock in mode held can coexist with a request
// in mode req by a different owner.
func compatible(held, req Mode) bool {
	switch held {
	case S:
		return req == S || req == D
	case D:
		return req == S
	case X:
		return false
	default:
		return false
	}
}

// Errors reported by the manager.
var (
	// ErrDeadlock rejects a request that would close a waits-for cycle.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrTimeout rejects a request that waited longer than its bound.
	ErrTimeout = errors.New("lock: wait timed out")
	// ErrNotHeld reports a release of a lock the owner does not hold.
	ErrNotHeld = errors.New("lock: not held")
	// ErrOwnerEvicted rejects a queued request whose owner was forcibly
	// evicted from the table (ReleaseOwner) while it waited.
	ErrOwnerEvicted = errors.New("lock: owner evicted")
)

type waiter struct {
	owner   string
	mode    Mode
	ready   bool
	evicted bool
}

type entry struct {
	granted map[string]Mode // owner → strongest held mode
	queue   []*waiter
}

// shard is one slice of the lock table with its own latch.
type shard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	table map[string]*entry
}

// DefaultShards is the shard count of NewManager. 64 comfortably exceeds
// the concurrency of any realistic workstation population while keeping the
// table array small.
const DefaultShards = 64

// Manager is a lock table over string-named resources. All methods are safe
// for concurrent use.
type Manager struct {
	shards []*shard
	seed   maphash.Seed

	// wfMu guards the global waits-for graph. Lock ordering: a shard mutex
	// may be held when acquiring wfMu; never the reverse.
	wfMu    sync.Mutex
	waitFor map[string]map[string]bool // waiter owner → blocking owners
}

// NewManager returns an empty lock manager with DefaultShards shards.
func NewManager() *Manager { return NewManagerWithShards(DefaultShards) }

// NewManagerWithShards returns an empty lock manager with n shards (n < 1 is
// treated as 1). A single shard reproduces the pre-sharding fully serialized
// behaviour; experiments use it as the contention baseline.
func NewManagerWithShards(n int) *Manager {
	if n < 1 {
		n = 1
	}
	m := &Manager{
		shards:  make([]*shard, n),
		seed:    maphash.MakeSeed(),
		waitFor: make(map[string]map[string]bool),
	}
	for i := range m.shards {
		sh := &shard{table: make(map[string]*entry)}
		sh.cond = sync.NewCond(&sh.mu)
		m.shards[i] = sh
	}
	return m
}

// Shards reports the shard count (diagnostics, experiments).
func (m *Manager) Shards() int { return len(m.shards) }

// shardFor maps a resource name onto its shard.
func (m *Manager) shardFor(resource string) *shard {
	if len(m.shards) == 1 {
		return m.shards[0]
	}
	return m.shards[maphash.String(m.seed, resource)%uint64(len(m.shards))]
}

// stronger reports whether a covers b (holding a satisfies a request for b).
func stronger(a, b Mode) bool {
	if a == b {
		return true
	}
	switch a {
	case X:
		return true // X covers S and D
	case D:
		return b == S // D covers read access
	default:
		return false
	}
}

// grantable reports whether owner may be granted mode on e right now,
// ignoring the queue (the caller handles queue fairness).
func grantable(e *entry, owner string, mode Mode) bool {
	for o, held := range e.granted {
		if o == owner {
			continue
		}
		if !compatible(held, mode) {
			return false
		}
	}
	return true
}

// Acquire obtains mode on resource for owner, blocking up to timeout.
// Reentrant: if owner already holds an equal or stronger mode the call
// returns immediately; an upgrade (e.g. S→X) is granted as soon as it is
// compatible with the other holders. A timeout of 0 means "do not wait":
// the request fails immediately with ErrTimeout if it cannot be granted.
func (m *Manager) Acquire(owner, resource string, mode Mode, timeout time.Duration) error {
	sh := m.shardFor(resource)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	e := sh.table[resource]
	if e == nil {
		e = &entry{granted: make(map[string]Mode)}
		sh.table[resource] = e
	}
	if held, ok := e.granted[owner]; ok && stronger(held, mode) {
		return nil
	}
	// Fast path: immediately grantable and no earlier waiter needs priority.
	if grantable(e, owner, mode) && len(e.queue) == 0 {
		grant(e, owner, mode)
		return nil
	}
	if timeout == 0 {
		return fmt.Errorf("%w: %s on %s for %s", ErrTimeout, mode, resource, owner)
	}
	// Deadlock check before enqueueing.
	if m.wouldDeadlock(owner, e) {
		return fmt.Errorf("%w: %s requesting %s on %s", ErrDeadlock, owner, mode, resource)
	}
	w := &waiter{owner: owner, mode: mode}
	e.queue = append(e.queue, w)
	m.setWaitEdges(owner, e)

	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, sh.cond.Broadcast)
	defer timer.Stop()

	for !w.ready {
		if w.evicted {
			m.clearWaitEdges(owner)
			return fmt.Errorf("%w: %s on %s for %s", ErrOwnerEvicted, mode, resource, owner)
		}
		if time.Now().After(deadline) {
			dequeue(e, w)
			m.clearWaitEdges(owner)
			m.promote(sh, resource, e)
			return fmt.Errorf("%w: %s on %s for %s", ErrTimeout, mode, resource, owner)
		}
		// Re-check deadlock before every wait, including the first. This
		// closes the cross-shard publish race: each requester publishes its
		// own edges (setWaitEdges above) before checking, so whichever
		// requester of a freshly closed cycle checks last sees every edge
		// of the cycle and rejects itself promptly — no broadcast needed.
		if m.wouldDeadlock(owner, e) {
			dequeue(e, w)
			m.clearWaitEdges(owner)
			m.promote(sh, resource, e)
			return fmt.Errorf("%w: %s requesting %s on %s", ErrDeadlock, owner, mode, resource)
		}
		sh.cond.Wait()
	}
	m.clearWaitEdges(owner)
	return nil
}

// grant records the lock, keeping the strongest mode per owner.
func grant(e *entry, owner string, mode Mode) {
	if held, ok := e.granted[owner]; !ok || !stronger(held, mode) {
		e.granted[owner] = mode
	}
}

func dequeue(e *entry, w *waiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// promote grants queued requests that are now compatible, in FIFO order,
// stopping at the first ungrantable one (no overtaking, avoids starvation).
// The caller holds sh.mu.
func (m *Manager) promote(sh *shard, resource string, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !grantable(e, w.owner, w.mode) {
			break
		}
		grant(e, w.owner, w.mode)
		w.ready = true
		m.clearWaitEdges(w.owner)
		e.queue = e.queue[1:]
	}
	if len(e.granted) == 0 && len(e.queue) == 0 {
		delete(sh.table, resource)
	}
	sh.cond.Broadcast()
}

// Release drops owner's lock on resource and wakes compatible waiters.
func (m *Manager) Release(owner, resource string) error {
	sh := m.shardFor(resource)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.table[resource]
	if e == nil {
		return fmt.Errorf("%w: %s on %s", ErrNotHeld, owner, resource)
	}
	if _, ok := e.granted[owner]; !ok {
		return fmt.Errorf("%w: %s on %s", ErrNotHeld, owner, resource)
	}
	delete(e.granted, owner)
	m.refreshWaitEdges(e)
	m.promote(sh, resource, e)
	return nil
}

// ReleaseAll drops every lock held by owner (transaction end).
func (m *Manager) ReleaseAll(owner string) {
	for _, sh := range m.shards {
		sh.mu.Lock()
		for res, e := range sh.table {
			if _, ok := e.granted[owner]; ok {
				delete(e.granted, owner)
				m.refreshWaitEdges(e)
				m.promote(sh, res, e)
			}
		}
		sh.mu.Unlock()
	}
	m.clearWaitEdges(owner)
}

// ReleaseOwner forcibly evicts owner from the lock table (workstation
// reaping). Unlike ReleaseAll it also cancels the owner's queued requests:
// a handler goroutine still blocked in Acquire on the dead owner's behalf
// fails promptly with ErrOwnerEvicted instead of running out its deadline,
// and FIFO promotion is re-run so waiters stuck behind the evicted request
// are granted. All wait-for edges of the owner are cleared, so the deadlock
// detector never sees a ghost. Returns the number of resources on which the
// owner held a granted lock.
func (m *Manager) ReleaseOwner(owner string) int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		for res, e := range sh.table {
			touched := false
			if _, ok := e.granted[owner]; ok {
				delete(e.granted, owner)
				n++
				touched = true
			}
			kept := e.queue[:0]
			for _, q := range e.queue {
				if q.owner == owner {
					q.evicted = true
					touched = true
				} else {
					kept = append(kept, q)
				}
			}
			e.queue = kept
			if touched {
				m.refreshWaitEdges(e)
				m.promote(sh, res, e)
			}
		}
		sh.mu.Unlock()
	}
	m.clearWaitEdges(owner)
	return n
}

// Holds reports the mode owner currently holds on resource (0 if none).
func (m *Manager) Holds(owner, resource string) Mode {
	sh := m.shardFor(resource)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.table[resource]; e != nil {
		return e.granted[owner]
	}
	return 0
}

// Holders returns the owners holding locks on resource, sorted.
func (m *Manager) Holders(resource string) []string {
	sh := m.shardFor(resource)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.table[resource]
	if e == nil {
		return nil
	}
	out := make([]string, 0, len(e.granted))
	for o := range e.granted {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// setWaitEdges records owner as waiting for the current holders of e plus
// the queued waiters ahead of owner's position (later waiters cannot block
// owner, so counting them would manufacture phantom cycles). The caller
// holds the entry's shard mutex.
func (m *Manager) setWaitEdges(owner string, e *entry) {
	edges := make(map[string]bool)
	for o := range e.granted {
		if o != owner {
			edges[o] = true
		}
	}
	for _, q := range e.queue {
		if q.owner == owner {
			break
		}
		edges[q.owner] = true
	}
	m.wfMu.Lock()
	m.waitFor[owner] = edges
	m.wfMu.Unlock()
}

func (m *Manager) clearWaitEdges(owner string) {
	m.wfMu.Lock()
	delete(m.waitFor, owner)
	m.wfMu.Unlock()
}

// refreshWaitEdges recomputes edges for waiters of e after a holder change.
// The caller holds the entry's shard mutex.
func (m *Manager) refreshWaitEdges(e *entry) {
	for _, q := range e.queue {
		m.setWaitEdges(q.owner, e)
	}
}

// wouldDeadlock reports whether owner waiting on e closes a waits-for cycle.
// The caller holds the entry's shard mutex; the graph itself is global, so
// cycles through resources on other shards are found too.
func (m *Manager) wouldDeadlock(owner string, e *entry) bool {
	// Hypothetical edges of owner.
	targets := make(map[string]bool)
	for o := range e.granted {
		if o != owner {
			targets[o] = true
		}
	}
	for _, q := range e.queue {
		if q.owner != owner {
			targets[q.owner] = true
		}
	}
	m.wfMu.Lock()
	defer m.wfMu.Unlock()
	// DFS from each target through waitFor; a path back to owner is a cycle.
	seen := make(map[string]bool)
	var reach func(string) bool
	reach = func(from string) bool {
		if from == owner {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		for next := range m.waitFor[from] {
			if reach(next) {
				return true
			}
		}
		return false
	}
	for t := range targets {
		if reach(t) {
			return true
		}
	}
	return false
}
