package lock

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// A dead owner's granted locks must be released and queued waiters promoted.
func TestReleaseOwnerPromotesWaiters(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("dead", "dov1", D, tmo); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		got <- m.Acquire("live", "dov1", D, tmo)
	}()
	// Wait until the live request is queued behind the dead holder.
	waitForQueue(t, m, "dov1", 1)
	if n := m.ReleaseOwner("dead"); n != 1 {
		t.Fatalf("ReleaseOwner = %d, want 1", n)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter not promoted: %v", err)
		}
	case <-time.After(tmo):
		t.Fatal("waiter still blocked after ReleaseOwner")
	}
	if mode := m.Holds("live", "dov1"); mode != D {
		t.Fatalf("live holds %v, want D", mode)
	}
	if mode := m.Holds("dead", "dov1"); mode != 0 {
		t.Fatalf("dead still holds %v", mode)
	}
}

// A dead owner's *queued* request must be cancelled promptly (not run out
// its deadline) and must stop blocking FIFO promotion of later waiters.
func TestReleaseOwnerCancelsQueuedRequests(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("holder", "res", X, tmo); err != nil {
		t.Fatal(err)
	}
	deadErr := make(chan error, 1)
	go func() {
		deadErr <- m.Acquire("dead", "res", X, time.Minute)
	}()
	waitForQueue(t, m, "res", 1)
	lateErr := make(chan error, 1)
	go func() {
		lateErr <- m.Acquire("late", "res", S, tmo)
	}()
	waitForQueue(t, m, "res", 2)

	m.ReleaseOwner("dead")
	select {
	case err := <-deadErr:
		if !errors.Is(err, ErrOwnerEvicted) {
			t.Fatalf("dead waiter got %v, want ErrOwnerEvicted", err)
		}
	case <-time.After(tmo):
		t.Fatal("dead waiter not cancelled by ReleaseOwner")
	}
	// With the evicted head gone, releasing the holder must promote "late"
	// (an X request stuck at the head would have blocked it forever).
	if err := m.Release("holder", "res"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-lateErr:
		if err != nil {
			t.Fatalf("late waiter: %v", err)
		}
	case <-time.After(tmo):
		t.Fatal("late waiter stuck behind evicted request")
	}
}

// After ReleaseOwner the waits-for graph must hold no edge from or to the
// evicted owner: a request that would previously have closed a cycle
// through the ghost must succeed.
func TestReleaseOwnerLeavesNoGhostInDeadlockDetector(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("alive", "r1", X, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("ghost", "r2", X, tmo); err != nil {
		t.Fatal(err)
	}
	ghostErr := make(chan error, 1)
	go func() {
		// ghost waits for alive: edge ghost→alive.
		ghostErr <- m.Acquire("ghost", "r1", X, time.Minute)
	}()
	waitForQueue(t, m, "r1", 1)

	m.ReleaseOwner("ghost")
	<-ghostErr

	m.wfMu.Lock()
	_, present := m.waitFor["ghost"]
	m.wfMu.Unlock()
	if present {
		t.Fatal("ghost owner still present in waits-for graph")
	}
	// alive→r2 would have been a deadlock (alive→ghost→alive) before the
	// eviction; now r2 is free and the edge is gone.
	if err := m.Acquire("alive", "r2", X, tmo); err != nil {
		t.Fatalf("acquire after eviction: %v", err)
	}
}

// ReleaseOwner racing live acquire/release traffic must neither deadlock
// nor evict anyone else's locks (run with -race).
func TestReleaseOwnerRaced(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := fmt.Sprintf("live%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res := fmt.Sprintf("res%d", i%8)
				if err := m.Acquire(owner, res, X, 50*time.Millisecond); err == nil {
					m.Release(owner, res)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		dead := fmt.Sprintf("dead%d", i%3)
		res := fmt.Sprintf("res%d", i%8)
		m.Acquire(dead, res, S, 10*time.Millisecond)
		m.ReleaseOwner(dead)
	}
	close(stop)
	wg.Wait()
	for w := 0; w < 4; w++ {
		owner := fmt.Sprintf("live%d", w)
		if err := m.Acquire(owner, "final", S, tmo); err != nil {
			t.Fatalf("live owner %s unusable after eviction storm: %v", owner, err)
		}
	}
}

// waitForQueue blocks until resource has n queued waiters.
func waitForQueue(t *testing.T, m *Manager, resource string, n int) {
	t.Helper()
	deadline := time.Now().Add(tmo)
	for {
		sh := m.shardFor(resource)
		sh.mu.Lock()
		q := 0
		if e := sh.table[resource]; e != nil {
			q = len(e.queue)
		}
		sh.mu.Unlock()
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("resource %s never reached %d waiters", resource, n)
		}
		time.Sleep(time.Millisecond)
	}
}
