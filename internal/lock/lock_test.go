package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const tmo = 2 * time.Second

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		held, req Mode
		want      bool
	}{
		{S, S, true}, {S, X, false}, {S, D, true},
		{X, S, false}, {X, X, false}, {X, D, false},
		{D, S, true}, {D, X, false}, {D, D, false},
	}
	for _, tc := range cases {
		if got := compatible(tc.held, tc.req); got != tc.want {
			t.Errorf("compatible(%s, %s) = %t, want %t", tc.held, tc.req, got, tc.want)
		}
	}
}

func TestSharedReaders(t *testing.T) {
	m := NewManager()
	for i := 0; i < 5; i++ {
		if err := m.Acquire(fmt.Sprintf("r%d", i), "dov1", S, tmo); err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	if got := len(m.Holders("dov1")); got != 5 {
		t.Fatalf("holders = %d", got)
	}
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("w1", "dov1", X, tmo); err != nil {
		t.Fatal(err)
	}
	var acquired atomic.Bool
	done := make(chan error, 1)
	go func() {
		err := m.Acquire("w2", "dov1", X, tmo)
		acquired.Store(true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("w2 acquired X while w1 held it")
	}
	if err := m.Release("w1", "dov1"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("w2 after release: %v", err)
	}
}

func TestDerivationLockSemantics(t *testing.T) {
	m := NewManager()
	// D allows concurrent readers but not a second D or an X.
	if err := m.Acquire("da1", "dov1", D, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("da2", "dov1", S, tmo); err != nil {
		t.Fatalf("S under D: %v", err)
	}
	if err := m.Acquire("da3", "dov1", D, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("second D = %v, want immediate ErrTimeout", err)
	}
	if err := m.Acquire("da4", "dov1", X, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("X under D = %v, want immediate ErrTimeout", err)
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("o", "r", S, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("o", "r", S, tmo); err != nil {
		t.Fatalf("reentrant S: %v", err)
	}
	if err := m.Acquire("o", "r", X, tmo); err != nil {
		t.Fatalf("upgrade S→X as sole holder: %v", err)
	}
	if m.Holds("o", "r") != X {
		t.Fatalf("Holds = %s, want X", m.Holds("o", "r"))
	}
	// X covers S: re-request of S is a no-op.
	if err := m.Acquire("o", "r", S, tmo); err != nil {
		t.Fatalf("S under own X: %v", err)
	}
	if m.Holds("o", "r") != X {
		t.Fatal("S request downgraded X")
	}
}

func TestTimeout(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("a", "r", X, tmo); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Acquire("b", "r", X, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout took too long")
	}
	// After the timeout, releasing a must leave the table clean for b.
	if err := m.Release("a", "r"); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("b", "r", X, tmo); err != nil {
		t.Fatalf("b after timeout: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("t1", "a", X, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t2", "b", X, tmo); err != nil {
		t.Fatal(err)
	}
	// t1 waits for b (held by t2).
	errc := make(chan error, 1)
	go func() { errc <- m.Acquire("t1", "b", X, 5*time.Second) }()
	time.Sleep(30 * time.Millisecond)
	// t2 requesting a closes the cycle: must be rejected as deadlock.
	err := m.Acquire("t2", "a", X, 5*time.Second)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("t2 = %v, want ErrDeadlock", err)
	}
	// Victim resolves the cycle: t2 releases b, t1 proceeds.
	if err := m.Release("t2", "b"); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("t1 after victim released: %v", err)
	}
}

func TestReleaseNotHeld(t *testing.T) {
	m := NewManager()
	if err := m.Release("ghost", "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("Release = %v, want ErrNotHeld", err)
	}
	if err := m.Acquire("a", "r", S, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m.Release("b", "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("Release other owner = %v, want ErrNotHeld", err)
	}
}

func TestReleaseAll(t *testing.T) {
	m := NewManager()
	for _, r := range []string{"a", "b", "c"} {
		if err := m.Acquire("t1", r, X, tmo); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseAll("t1")
	for _, r := range []string{"a", "b", "c"} {
		if m.Holds("t1", r) != 0 {
			t.Fatalf("still holds %s", r)
		}
		if err := m.Acquire("t2", r, X, tmo); err != nil {
			t.Fatalf("t2 acquire %s: %v", r, err)
		}
	}
}

func TestFIFONoOvertaking(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("holder", "r", X, tmo); err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Acquire("first-X", "r", X, 5*time.Second); err == nil {
			record("first-X")
			m.Release("first-X", "r")
		}
	}()
	time.Sleep(30 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Acquire("second-S", "r", S, 5*time.Second); err == nil {
			record("second-S")
			m.Release("second-S", "r")
		}
	}()
	time.Sleep(30 * time.Millisecond)
	m.Release("holder", "r")
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "first-X" {
		t.Fatalf("grant order = %v, want first-X before second-S", order)
	}
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const goroutines = 16
	const iters = 60
	var wg sync.WaitGroup
	var granted atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			owner := fmt.Sprintf("t%d", id)
			for i := 0; i < iters; i++ {
				res := fmt.Sprintf("r%d", (id+i)%5)
				mode := S
				if i%3 == 0 {
					mode = X
				}
				err := m.Acquire(owner, res, mode, 3*time.Second)
				if err != nil {
					// Deadlock rejections are legal under contention.
					if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout) {
						continue
					}
					t.Errorf("acquire: %v", err)
					return
				}
				granted.Add(1)
				m.Release(owner, res)
			}
		}(g)
	}
	wg.Wait()
	if granted.Load() == 0 {
		t.Fatal("no lock ever granted under stress")
	}
}

func TestModeString(t *testing.T) {
	if S.String() != "S" || X.String() != "X" || D.String() != "D" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode name wrong")
	}
}
