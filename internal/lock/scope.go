package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Scope-lock errors.
var (
	// ErrScopeDenied rejects access to a DOV outside the requesting DA's
	// scope.
	ErrScopeDenied = errors.New("lock: DOV not in DA scope")
	// ErrScopeOwned rejects a second ownership claim on a DOV.
	ErrScopeOwned = errors.New("lock: DOV already scope-owned")
)

// ScopeTable controls the dissemination of preliminary design information
// among design activities (Sect. 5.4). A DA may only see DOVs in its scope:
// the DOVs of its own derivation graph (owner locks), the final DOVs of its
// terminated sub-DAs (inherited owner locks, nested-transaction style), and
// DOVs made visible along usage relationships (reader locks granted when the
// supporting DA has propagated the version).
//
// The table provides the locking *mechanics*; the cooperation manager
// enforces the relationship-dependent grant policy before calling GrantUse.
type ScopeTable struct {
	mu      sync.RWMutex
	owner   map[string]string          // dov → owning DA
	readers map[string]map[string]bool // dov → reading DAs
}

// NewScopeTable returns an empty scope table.
func NewScopeTable() *ScopeTable {
	return &ScopeTable{
		owner:   make(map[string]string),
		readers: make(map[string]map[string]bool),
	}
}

// Own records da as the scope owner of dov: the version was created in (or
// inherited by) da's derivation graph. A DOV has at most one owner at a time.
func (t *ScopeTable) Own(da, dov string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.owner[dov]; ok && cur != da {
		return fmt.Errorf("%w: %s owned by %s, requested by %s", ErrScopeOwned, dov, cur, da)
	}
	t.owner[dov] = da
	return nil
}

// Owner returns the scope owner of dov.
func (t *ScopeTable) Owner(dov string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	da, ok := t.owner[dov]
	return da, ok
}

// GrantUse adds a reader lock for da on dov: the version became visible
// along a usage relationship. The cooperation manager must have verified the
// relationship and the propagated quality state beforehand.
func (t *ScopeTable) GrantUse(da, dov string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rs := t.readers[dov]
	if rs == nil {
		rs = make(map[string]bool)
		t.readers[dov] = rs
	}
	rs[da] = true
}

// RevokeUse removes da's reader lock on dov (withdrawal of a pre-released
// version).
func (t *ScopeTable) RevokeUse(da, dov string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rs := t.readers[dov]; rs != nil {
		delete(rs, da)
		if len(rs) == 0 {
			delete(t.readers, dov)
		}
	}
}

// InScope reports whether da may see dov: it owns it or holds a reader lock.
func (t *ScopeTable) InScope(da, dov string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.owner[dov] == da {
		return true
	}
	return t.readers[dov][da]
}

// CheckAccess returns ErrScopeDenied when dov is outside da's scope.
func (t *ScopeTable) CheckAccess(da, dov string) error {
	if !t.InScope(da, dov) {
		return fmt.Errorf("%w: DA %s, DOV %s", ErrScopeDenied, da, dov)
	}
	return nil
}

// Readers returns the DAs holding reader locks on dov, sorted.
func (t *ScopeTable) Readers(dov string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.readers[dov]))
	for da := range t.readers[dov] {
		out = append(out, da)
	}
	sort.Strings(out)
	return out
}

// Inherit transfers ownership of the listed DOVs from a terminating sub-DA
// to its super-DA (Sect. 5.4: "a super-DA inherits the scope-locks on the
// final DOVs of its terminated sub-DAs and then retains these locks").
// Only DOVs currently owned by sub are transferred; reader locks held by
// other DAs survive the inheritance.
func (t *ScopeTable) Inherit(sub, super string, dovs []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range dovs {
		if t.owner[d] != sub {
			return fmt.Errorf("%w: %s not owned by %s", ErrNotHeld, d, sub)
		}
	}
	for _, d := range dovs {
		t.owner[d] = super
	}
	return nil
}

// ReleaseDA drops every ownership and reader lock held by da (termination of
// the top-level DA releases all locks; abort of a sub-DA drops its scope).
func (t *ScopeTable) ReleaseDA(da string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for d, o := range t.owner {
		if o == da {
			delete(t.owner, d)
		}
	}
	for d, rs := range t.readers {
		delete(rs, da)
		if len(rs) == 0 {
			delete(t.readers, d)
		}
	}
}

// OwnedBy returns the DOVs owned by da, sorted.
func (t *ScopeTable) OwnedBy(da string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for d, o := range t.owner {
		if o == da {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// VisibleTo returns every DOV in da's scope (owned + readable), sorted.
func (t *ScopeTable) VisibleTo(da string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	set := make(map[string]bool)
	for d, o := range t.owner {
		if o == da {
			set[d] = true
		}
	}
	for d, rs := range t.readers {
		if rs[da] {
			set[d] = true
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
