package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardedConcurrentAcquireRelease hammers the sharded table from many
// goroutines over many resources and modes. Run with -race; the invariant
// checked at the end is that every lock was released (no leaked entries).
func TestShardedConcurrentAcquireRelease(t *testing.T) {
	m := NewManager()
	const workers, rounds, resources = 16, 200, 40
	var wg sync.WaitGroup
	var granted, denied atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := fmt.Sprintf("T%d", w)
			for i := 0; i < rounds; i++ {
				res := fmt.Sprintf("dov/%d", (w*rounds+i*7)%resources)
				mode := []Mode{S, X, D}[i%3]
				err := m.Acquire(owner, res, mode, 200*time.Millisecond)
				switch {
				case err == nil:
					granted.Add(1)
					if got := m.Holds(owner, res); !stronger(got, mode) {
						t.Errorf("Holds(%s,%s) = %v after granting %v", owner, res, got, mode)
					}
					if err := m.Release(owner, res); err != nil {
						// A reentrant grant may coalesce with a mode the
						// owner already held and released concurrently in
						// another iteration; ErrNotHeld is the only
						// acceptable error.
						if !errors.Is(err, ErrNotHeld) {
							t.Errorf("release: %v", err)
						}
					}
				case errors.Is(err, ErrTimeout), errors.Is(err, ErrDeadlock):
					denied.Add(1)
				default:
					t.Errorf("acquire: %v", err)
				}
			}
			m.ReleaseAll(owner)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		m.ReleaseAll(fmt.Sprintf("T%d", w))
	}
	for i := 0; i < resources; i++ {
		res := fmt.Sprintf("dov/%d", i)
		if h := m.Holders(res); len(h) != 0 {
			t.Fatalf("resource %s still held by %v", res, h)
		}
	}
	if granted.Load() == 0 {
		t.Fatal("no acquisitions succeeded")
	}
	t.Logf("granted=%d denied=%d", granted.Load(), denied.Load())
}

// TestCrossShardDeadlock builds a two-transaction cycle over many distinct
// resources (so the two entries land on different shards with overwhelming
// probability) and checks the cycle is detected rather than timing out.
func TestCrossShardDeadlock(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		m := NewManager()
		ra := fmt.Sprintf("res-a-%d", trial)
		rb := fmt.Sprintf("res-b-%d", trial)
		if err := m.Acquire("T1", ra, X, time.Second); err != nil {
			t.Fatal(err)
		}
		if err := m.Acquire("T2", rb, X, time.Second); err != nil {
			t.Fatal(err)
		}
		errs := make(chan error, 2)
		start := time.Now()
		go func() { errs <- m.Acquire("T1", rb, X, 30*time.Second) }()
		go func() { errs <- m.Acquire("T2", ra, X, 30*time.Second) }()
		// At least one must be rejected with ErrDeadlock, promptly (well
		// under the 30s timeout bound).
		err := <-errs
		if err == nil {
			err = <-errs
		}
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("trial %d: expected deadlock rejection, got %v", trial, err)
		}
		if waited := time.Since(start); waited > 10*time.Second {
			t.Fatalf("trial %d: deadlock detection took %v (timed out instead?)", trial, waited)
		}
		m.ReleaseAll("T1")
		m.ReleaseAll("T2")
	}
}

// TestCrossShardDeadlockThreeParty closes a three-transaction cycle spread
// over three resources and expects prompt detection.
func TestCrossShardDeadlockThreeParty(t *testing.T) {
	m := NewManager()
	owners := []string{"A", "B", "C"}
	for i, o := range owners {
		if err := m.Acquire(o, fmt.Sprintf("r%d", i), X, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 3)
	for i, o := range owners {
		go func(o string, next int) {
			errs <- m.Acquire(o, fmt.Sprintf("r%d", next), X, 30*time.Second)
		}(o, (i+1)%3)
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if err == nil {
				continue // unblocked by a victim's rollback
			}
			if errors.Is(err, ErrDeadlock) {
				for _, o := range owners {
					m.ReleaseAll(o)
				}
				return
			}
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-deadline:
			t.Fatal("three-party deadlock not detected within 10s")
		}
	}
	t.Fatal("no transaction was chosen as deadlock victim")
}

// TestConcurrentReleaseAll interleaves ReleaseAll with acquisitions across
// shards (the transaction-end path of the server-TM).
func TestConcurrentReleaseAll(t *testing.T) {
	m := NewManager()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := fmt.Sprintf("dop-%d", w)
			for i := 0; i < 50; i++ {
				for j := 0; j < 5; j++ {
					res := fmt.Sprintf("g/%d", (w+j*3)%20)
					m.Acquire(owner, res, S, 50*time.Millisecond) //nolint:errcheck // contention expected
				}
				m.ReleaseAll(owner)
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 20; i++ {
		if h := m.Holders(fmt.Sprintf("g/%d", i)); len(h) != 0 {
			t.Fatalf("g/%d still held by %v after ReleaseAll", i, h)
		}
	}
}

// TestSingleShardCompatibility checks the shards=1 ablation configuration
// behaves identically for the basic protocol (it is the seed's design).
func TestSingleShardCompatibility(t *testing.T) {
	m := NewManagerWithShards(1)
	if m.Shards() != 1 {
		t.Fatalf("Shards() = %d", m.Shards())
	}
	if err := m.Acquire("T1", "r", S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("T2", "r", S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("T2", "r", X, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade under shared holder: %v", err)
	}
	if err := m.Release("T1", "r"); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("T2", "r", X, time.Second); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll("T2")
}

// TestShardDistribution sanity-checks that resource names spread over
// multiple shards (otherwise the sharding is vacuous).
func TestShardDistribution(t *testing.T) {
	m := NewManager()
	used := make(map[*shard]bool)
	for i := 0; i < 512; i++ {
		used[m.shardFor(fmt.Sprintf("dov/ws%d/v%d", i%16, i))] = true
	}
	if len(used) < DefaultShards/4 {
		t.Fatalf("512 resources hit only %d/%d shards", len(used), DefaultShards)
	}
}
