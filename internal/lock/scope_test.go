package lock

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestScopeOwnAndAccess(t *testing.T) {
	st := NewScopeTable()
	if err := st.Own("da1", "v1"); err != nil {
		t.Fatal(err)
	}
	if !st.InScope("da1", "v1") {
		t.Error("owner not in scope")
	}
	if st.InScope("da2", "v1") {
		t.Error("stranger in scope")
	}
	if err := st.CheckAccess("da2", "v1"); !errors.Is(err, ErrScopeDenied) {
		t.Errorf("CheckAccess = %v, want ErrScopeDenied", err)
	}
	if err := st.CheckAccess("da1", "v1"); err != nil {
		t.Errorf("owner CheckAccess = %v", err)
	}
}

func TestScopeSecondOwnerRejected(t *testing.T) {
	st := NewScopeTable()
	if err := st.Own("da1", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Own("da2", "v1"); !errors.Is(err, ErrScopeOwned) {
		t.Fatalf("second owner = %v, want ErrScopeOwned", err)
	}
	// Re-owning by the same DA is idempotent.
	if err := st.Own("da1", "v1"); err != nil {
		t.Fatalf("idempotent own = %v", err)
	}
}

func TestScopeUsageGrantRevoke(t *testing.T) {
	st := NewScopeTable()
	if err := st.Own("supporter", "v1"); err != nil {
		t.Fatal(err)
	}
	st.GrantUse("requirer", "v1")
	if !st.InScope("requirer", "v1") {
		t.Error("usage grant not visible")
	}
	readers := st.Readers("v1")
	if len(readers) != 1 || readers[0] != "requirer" {
		t.Fatalf("Readers = %v", readers)
	}
	st.RevokeUse("requirer", "v1")
	if st.InScope("requirer", "v1") {
		t.Error("revoked reader still in scope")
	}
	// Owner unaffected by revocation of readers.
	if !st.InScope("supporter", "v1") {
		t.Error("owner lost scope")
	}
}

func TestScopeInheritance(t *testing.T) {
	st := NewScopeTable()
	for _, v := range []string{"f1", "f2"} {
		if err := st.Own("sub", v); err != nil {
			t.Fatal(err)
		}
	}
	st.GrantUse("peer", "f1")
	if err := st.Inherit("sub", "super", []string{"f1", "f2"}); err != nil {
		t.Fatal(err)
	}
	if o, _ := st.Owner("f1"); o != "super" {
		t.Fatalf("owner after inherit = %s", o)
	}
	if !st.InScope("super", "f2") {
		t.Error("super missing inherited scope")
	}
	if st.InScope("sub", "f2") {
		t.Error("sub retained scope after inheritance")
	}
	// Reader locks survive inheritance.
	if !st.InScope("peer", "f1") {
		t.Error("peer lost usage visibility on inheritance")
	}
}

func TestScopeInheritNotOwned(t *testing.T) {
	st := NewScopeTable()
	if err := st.Own("other", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Inherit("sub", "super", []string{"v1"}); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("Inherit = %v, want ErrNotHeld", err)
	}
	// Failed inherit must not move anything.
	if o, _ := st.Owner("v1"); o != "other" {
		t.Fatalf("owner changed to %s on failed inherit", o)
	}
}

func TestScopeReleaseDA(t *testing.T) {
	st := NewScopeTable()
	if err := st.Own("da1", "v1"); err != nil {
		t.Fatal(err)
	}
	st.GrantUse("da1", "v2")
	if err := st.Own("da2", "v2"); err != nil {
		t.Fatal(err)
	}
	st.ReleaseDA("da1")
	if st.InScope("da1", "v1") || st.InScope("da1", "v2") {
		t.Error("released DA retains scope")
	}
	if _, ok := st.Owner("v1"); ok {
		t.Error("v1 still owned after ReleaseDA")
	}
	if !st.InScope("da2", "v2") {
		t.Error("unrelated DA lost scope")
	}
}

func TestScopeEnumerations(t *testing.T) {
	st := NewScopeTable()
	for _, v := range []string{"b", "a"} {
		if err := st.Own("da1", v); err != nil {
			t.Fatal(err)
		}
	}
	st.GrantUse("da1", "c")
	owned := st.OwnedBy("da1")
	if len(owned) != 2 || owned[0] != "a" || owned[1] != "b" {
		t.Fatalf("OwnedBy = %v", owned)
	}
	vis := st.VisibleTo("da1")
	if len(vis) != 3 || vis[0] != "a" || vis[2] != "c" {
		t.Fatalf("VisibleTo = %v", vis)
	}
}

// Property: after any sequence of Own/GrantUse/RevokeUse, a DA sees exactly
// the union of what it owns and what it is granted.
func TestQuickScopeVisibility(t *testing.T) {
	type op struct {
		Kind uint8
		DA   uint8
		DOV  uint8
	}
	prop := func(ops []op) bool {
		st := NewScopeTable()
		type key struct{ da, dov string }
		owns := make(map[key]bool)
		reads := make(map[key]bool)
		owner := make(map[string]string)
		for _, o := range ops {
			da := "da" + string(rune('a'+o.DA%4))
			dov := "v" + string(rune('0'+o.DOV%6))
			switch o.Kind % 3 {
			case 0:
				err := st.Own(da, dov)
				if cur, ok := owner[dov]; ok && cur != da {
					if err == nil {
						return false
					}
				} else if err != nil {
					return false
				} else {
					owner[dov] = da
					owns[key{da, dov}] = true
				}
			case 1:
				st.GrantUse(da, dov)
				reads[key{da, dov}] = true
			case 2:
				st.RevokeUse(da, dov)
				delete(reads, key{da, dov})
			}
		}
		for _, da := range []string{"daa", "dab", "dac", "dad"} {
			for _, dov := range []string{"v0", "v1", "v2", "v3", "v4", "v5"} {
				want := owns[key{da, dov}] || reads[key{da, dov}]
				if st.InScope(da, dov) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
