package lock

import (
	"errors"
	"testing"
	"time"
)

// TestUpgradeDeadlockDetected: two shared holders both requesting an upgrade
// to exclusive is the classic conversion deadlock; one must be rejected.
func TestUpgradeDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("t1", "r", S, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t2", "r", S, tmo); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- m.Acquire("t1", "r", X, 5*time.Second) }()
	time.Sleep(30 * time.Millisecond)
	err2 := m.Acquire("t2", "r", X, 5*time.Second)
	var err1 error
	select {
	case err1 = <-errc:
	case <-time.After(time.Second):
		// t1 still waiting: t2 must have failed; release t2's S so t1
		// can proceed.
		if err2 == nil {
			t.Fatal("both upgrades granted")
		}
		if err := m.Release("t2", "r"); err != nil {
			t.Fatal(err)
		}
		err1 = <-errc
	}
	// Exactly one succeeded (after the victim released), the other was a
	// deadlock victim or timed out.
	if err1 == nil && err2 == nil {
		t.Fatal("both upgrades granted despite conversion deadlock")
	}
	if err1 != nil && err2 != nil {
		t.Fatalf("both upgrades failed: %v / %v", err1, err2)
	}
	failed := err1
	if failed == nil {
		failed = err2
	}
	if !errors.Is(failed, ErrDeadlock) && !errors.Is(failed, ErrTimeout) {
		t.Fatalf("loser error = %v", failed)
	}
}

// TestDerivationLockQueuedBehindX: a D request waits for an X holder and is
// granted after release.
func TestDerivationLockQueuedBehindX(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("writer", "dov", X, tmo); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire("deriver", "dov", D, 3*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.Release("writer", "dov"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("D after X release: %v", err)
	}
	// Readers may join the deriver.
	if err := m.Acquire("reader", "dov", S, tmo); err != nil {
		t.Fatalf("S under D: %v", err)
	}
}
