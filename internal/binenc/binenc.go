// Package binenc provides the compact binary encoding used on CONCORD's hot
// paths: the client-TM/server-TM wire messages, the catalog object codec and
// the repository's DOV log records. The stdlib gob codec recompiles its
// encoder/decoder engines for every message (each RPC is a fresh stream),
// which dominated the server CPU profile under multi-workstation load;
// this hand-rolled format avoids reflection entirely.
//
// The format is position-based (no field tags): writer and reader must agree
// on the field sequence, which the owning types encapsulate in their
// encode/decode pairs. Integers are varints, floats are fixed 8-byte
// little-endian IEEE 754, strings and byte slices are length-prefixed.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrCorrupt reports a malformed or truncated buffer.
var ErrCorrupt = errors.New("binenc: corrupt buffer")

// Writer accumulates an encoded buffer. The zero value is ready for use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// writerPool recycles Writers for transient encodes (wire messages, WAL
// record bodies): the hot paths encode, hand the bytes to a consumer that
// copies or transmits them, and free the writer — steady-state encoding then
// allocates nothing.
var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// maxPooledWriterBytes caps the buffer a freed writer may park in the pool;
// larger one-off encodes (bulk payloads) are dropped so the pool never pins
// worst-case memory.
const maxPooledWriterBytes = 256 << 10

// GetWriter returns a pooled writer with at least the given capacity.
// Callers must finish with the buffer returned by Bytes before calling Free:
// ownership of the bytes stays with the writer. Use Detach when the encoding
// must outlive the writer (e.g. a memoized result).
func GetWriter(capacity int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < capacity {
		w.buf = make([]byte, 0, capacity)
	} else {
		w.buf = w.buf[:0]
	}
	return w
}

// Free resets the writer and returns it to the pool. The buffer previously
// returned by Bytes must no longer be referenced — it will be overwritten by
// the writer's next user.
func (w *Writer) Free() {
	if cap(w.buf) > maxPooledWriterBytes {
		w.buf = nil
	}
	w.buf = w.buf[:0]
	writerPool.Put(w)
}

// Detach surrenders the accumulated buffer to the caller and leaves the
// writer empty, so a subsequent Free cannot recycle bytes the caller
// retains.
func (w *Writer) Detach() []byte {
	b := w.buf
	w.buf = nil
	return b
}

// Reset empties the writer, keeping its capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 appends a signed varint (zigzag).
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// F64 appends a float as 8 fixed bytes.
func (w *Writer) F64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes without a length prefix — for trailing variable-length
// fields whose extent the container bounds (e.g. the chunk body of a wire
// frame, delimited by the frame length itself).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Strs appends a count-prefixed string slice.
func (w *Writer) Strs(ss []string) {
	w.U64(uint64(len(ss)))
	for _, s := range ss {
		w.Str(s)
	}
}

// Reader decodes a buffer produced by Writer. Errors are sticky: after the
// first failure every accessor returns zero values, so call sites check
// Err() once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a buffer.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: offset %d of %d", ErrCorrupt, r.off, len(r.buf))
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// F64 reads a fixed 8-byte float.
func (r *Reader) F64() float64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// take reads n bytes.
func (r *Reader) take(n uint64) []byte {
	if r.err != nil || n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return string(r.take(r.U64())) }

// Blob reads a length-prefixed byte slice. The returned slice is a copy; it
// does not alias the reader's buffer.
func (r *Reader) Blob() []byte {
	b := r.take(r.U64())
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Strs reads a count-prefixed string slice (nil when empty).
func (r *Reader) Strs() []string {
	n := r.U64()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(r.Remaining()) { // each element needs ≥1 byte
		r.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.Str())
	}
	return out
}
