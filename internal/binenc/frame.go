package binenc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing for the multiplexed TCP wire (DESIGN.md §5.2): every frame
// is a 4-byte big-endian length followed by that many body bytes. The body is
// a position-based binenc message owned by the rpc layer; this file only
// knows how to move frames on and off a byte stream without allocating on the
// steady-state path.

// FrameHeaderLen is the byte length of the frame length prefix.
const FrameHeaderLen = 4

// ErrFrameTooLarge reports a frame whose declared length exceeds the
// receiver's limit — either a protocol violation or garbage on the socket;
// the connection cannot be resynchronized and must be dropped.
var ErrFrameTooLarge = fmt.Errorf("%w: frame exceeds limit", ErrCorrupt)

// AppendFrame appends the length prefix and body onto dst (allocation-free
// when dst has capacity) and returns the extended slice.
func AppendFrame(dst, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// WriteFrame writes one frame (header + body) to w. The body bytes are not
// retained.
func WriteFrame(w io.Writer, body []byte) error {
	var hdr [FrameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame body from r into buf, which is grown as needed
// and reused when its capacity allows (pass the previous return value to
// amortize allocation across frames). maxLen bounds the accepted body length;
// a longer declaration returns ErrFrameTooLarge without consuming the body.
// io.EOF is returned untouched when the stream ends cleanly between frames;
// a stream ending inside a frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte, maxLen int) ([]byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return buf[:0], err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf[:0], err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if maxLen >= 0 && n > uint32(maxLen) {
		return buf[:0], fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, n, maxLen)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf[:0], err
	}
	return buf, nil
}
