package binenc

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	bodies := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte{0xAB}, 70000), // > 64 KiB, exercises the full header
	}
	for _, b := range bodies {
		if err := WriteFrame(&stream, b); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	for i, want := range bodies {
		var err error
		buf, err = ReadFrame(&stream, buf, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(buf), len(want))
		}
	}
	if _, err := ReadFrame(&stream, buf, 1<<20); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestFrameAppendMatchesWrite(t *testing.T) {
	body := []byte("payload")
	var viaWrite bytes.Buffer
	if err := WriteFrame(&viaWrite, body); err != nil {
		t.Fatal(err)
	}
	viaAppend := AppendFrame(nil, body)
	if !bytes.Equal(viaWrite.Bytes(), viaAppend) {
		t.Fatalf("AppendFrame %x != WriteFrame %x", viaAppend, viaWrite.Bytes())
	}
}

func TestFrameTooLarge(t *testing.T) {
	var stream bytes.Buffer
	if err := WriteFrame(&stream, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&stream, nil, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, []byte("truncate me"))
	for _, cut := range []int{1, 3, FrameHeaderLen + 2} {
		r := bytes.NewReader(full[:cut])
		if _, err := ReadFrame(r, nil, 1<<20); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameBufferReuse(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&stream, []byte("same-size")); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := ReadFrame(&stream, make([]byte, 0, 64), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	first := &buf[0]
	for i := 0; i < 2; i++ {
		buf, err = ReadFrame(&stream, buf, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if &buf[0] != first {
			t.Fatal("ReadFrame reallocated although capacity sufficed")
		}
	}
}
