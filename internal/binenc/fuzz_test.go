package binenc

import (
	"bytes"
	"testing"
)

// FuzzDeltaApply fuzzes the delta codec from both ends. ApplyDelta consumes
// attacker-controlled bytes off the cache wire, so it must never panic or
// over-allocate on malformed scripts, must be deterministic, and — treating
// the second input as a target — Delta followed by ApplyDelta must
// reconstruct the target exactly.
func FuzzDeltaApply(f *testing.F) {
	base := []byte("the quick brown fox jumps over the lazy dog, twice over: " +
		"the quick brown fox jumps over the lazy dog")
	target := []byte("the quick red fox jumps over the lazy dog, twice over: " +
		"the quick brown fox leaps over the lazy dog!")
	f.Add([]byte{}, []byte{})
	f.Add(base, Delta(base, target))
	f.Add(base, Delta(base, base))
	f.Add([]byte{}, Delta(nil, target))
	// Malformed scripts: bad magic, truncated header, copy out of range,
	// declared length mismatch.
	f.Add(base, []byte{0x00})
	f.Add(base, []byte{deltaMagic, 0x01})
	f.Add(base, []byte{deltaMagic, 0x00, 0x08, opCopy, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, base, delta []byte) {
		// Arbitrary script against the given base: error or success, never
		// a panic; success must be deterministic.
		out, err := ApplyDelta(base, delta)
		if err == nil {
			again, err2 := ApplyDelta(base, delta)
			if err2 != nil || !bytes.Equal(out, again) {
				t.Fatalf("ApplyDelta not deterministic: %v", err2)
			}
		}
		// The same bytes as a target: the produced script must round-trip.
		script := Delta(base, delta)
		back, err := ApplyDelta(base, script)
		if err != nil {
			t.Fatalf("ApplyDelta(Delta(base, target)): %v", err)
		}
		if !bytes.Equal(back, delta) {
			t.Fatalf("delta round trip: got %d bytes, want %d", len(back), len(delta))
		}
	})
}
