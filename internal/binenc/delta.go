package binenc

import (
	"bytes"
	"errors"
	"fmt"
)

// Byte-level delta codec for the workstation checkout cache (DESIGN.md §4).
// A delta is an edit script transforming one encoded buffer (the base, which
// both ends already hold) into another (the target): a sequence of copy ops
// referencing base ranges and insert ops carrying literal bytes. The matcher
// is rsync-shaped — the base is indexed by a weak rolling hash over
// non-overlapping blocks, the target is scanned with the rolling window, and
// every weak hit is verified byte-for-byte and extended greedily — so shifted
// content (an insertion early in a large object) still matches block-aligned
// base ranges.
//
// The codec guarantees only structural integrity (ops in range, output length
// as declared). It does NOT authenticate content: applying a well-formed
// delta to the wrong base yields well-formed wrong bytes. Callers must verify
// the reconstructed buffer against a content hash before trusting it, which
// is exactly what the checkout/checkin protocol does on both ends.

// ErrDelta reports a structurally invalid delta or a base of the wrong size.
var ErrDelta = errors.New("binenc: invalid delta")

// deltaMagic tags the delta format; it is distinct from every record format
// tag already in use so mixed-up buffers fail fast.
const deltaMagic = 0xD2

// deltaBlock is the match granularity: smaller finds finer-grained reuse,
// larger shrinks the base index. 32 suits the catalog object encoding, whose
// attribute and part records are tens of bytes.
const deltaBlock = 32

// Delta op codes.
const (
	opCopy   = 0x01 // U64 base offset, U64 length
	opInsert = 0x02 // length-prefixed literal bytes
)

// weakHash is a cheap rolling hash (Adler-style two-accumulator sum) over a
// deltaBlock-sized window.
func weakHash(p []byte) uint32 {
	var a, b uint32
	for _, c := range p {
		a += uint32(c)
		b += a
	}
	return a | b<<16
}

// Delta computes an edit script transforming base into target. It always
// succeeds; when the inputs share nothing the script degenerates to one
// insert of the whole target (len(target)+overhead bytes), so callers should
// compare len(delta) against len(target) and ship whichever is smaller.
func Delta(base, target []byte) []byte {
	w := NewWriter(64 + len(target)/8)
	w.Byte(deltaMagic)
	w.U64(uint64(len(base)))
	w.U64(uint64(len(target)))

	if len(base) < deltaBlock || len(target) < deltaBlock {
		if len(target) > 0 {
			w.Byte(opInsert)
			w.Blob(target)
		}
		return w.Bytes()
	}

	// Index the base by weak hash over non-overlapping blocks. Collisions
	// keep a few candidates; more would trade CPU for marginal matches.
	index := make(map[uint32][]int, len(base)/deltaBlock+1)
	for off := 0; off+deltaBlock <= len(base); off += deltaBlock {
		h := weakHash(base[off : off+deltaBlock])
		if cand := index[h]; len(cand) < 4 {
			index[h] = append(cand, off)
		}
	}

	var a, b uint32 // rolling accumulators over target[i:i+deltaBlock]
	roll := func(i int) {
		a, b = 0, 0
		for _, c := range target[i : i+deltaBlock] {
			a += uint32(c)
			b += a
		}
	}
	flushLit := func(lo, hi int) {
		if lo < hi {
			w.Byte(opInsert)
			w.Blob(target[lo:hi])
		}
	}

	lit := 0 // start of the pending literal run
	i := 0
	roll(i)
	for i+deltaBlock <= len(target) {
		matched := false
		for _, off := range index[a|b<<16] {
			if !bytes.Equal(base[off:off+deltaBlock], target[i:i+deltaBlock]) {
				continue
			}
			// Extend the verified match as far as the buffers agree.
			n := deltaBlock
			for off+n < len(base) && i+n < len(target) && base[off+n] == target[i+n] {
				n++
			}
			flushLit(lit, i)
			w.Byte(opCopy)
			w.U64(uint64(off))
			w.U64(uint64(n))
			i += n
			lit = i
			if i+deltaBlock <= len(target) {
				roll(i)
			}
			matched = true
			break
		}
		if !matched {
			// Slide the window one byte.
			out := uint32(target[i])
			a -= out
			b -= uint32(deltaBlock) * out
			i++
			if i+deltaBlock <= len(target) {
				a += uint32(target[i+deltaBlock-1])
				b += a
			}
		}
	}
	flushLit(lit, len(target))
	return w.Bytes()
}

// ApplyDelta reconstructs the target buffer from base and a delta produced by
// Delta. It fails with ErrDelta when the script is malformed, references
// ranges outside base, was computed against a base of a different length, or
// does not produce exactly the declared target length. Content correctness is
// the caller's to verify (content hash); see the package comment above.
func ApplyDelta(base, delta []byte) ([]byte, error) {
	r := NewReader(delta)
	if r.Byte() != deltaMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrDelta)
	}
	baseLen := r.U64()
	targetLen := r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrDelta, err)
	}
	if baseLen != uint64(len(base)) {
		return nil, fmt.Errorf("%w: computed against a %d-byte base, applied to %d bytes", ErrDelta, baseLen, len(base))
	}
	if targetLen > uint64(len(base)+len(delta))*maxExpansion {
		return nil, fmt.Errorf("%w: declared target %d bytes implausibly large", ErrDelta, targetLen)
	}
	out := make([]byte, 0, targetLen)
	for r.Remaining() > 0 {
		switch op := r.Byte(); op {
		case opCopy:
			off, n := r.U64(), r.U64()
			// Overflow-safe bounds check: off and n are attacker-controlled
			// varints, so off+n must not be allowed to wrap.
			if r.Err() != nil || n == 0 || off > uint64(len(base)) || n > uint64(len(base))-off {
				return nil, fmt.Errorf("%w: copy [%d,+%d) outside %d-byte base", ErrDelta, off, n, len(base))
			}
			if uint64(len(out))+n > targetLen {
				return nil, fmt.Errorf("%w: output overruns declared length", ErrDelta)
			}
			out = append(out, base[off:off+n]...)
		case opInsert:
			lit := r.Blob()
			if r.Err() != nil {
				return nil, fmt.Errorf("%w: truncated insert", ErrDelta)
			}
			if uint64(len(out))+uint64(len(lit)) > targetLen {
				return nil, fmt.Errorf("%w: output overruns declared length", ErrDelta)
			}
			out = append(out, lit...)
		default:
			return nil, fmt.Errorf("%w: unknown op 0x%02x", ErrDelta, op)
		}
	}
	if uint64(len(out)) != targetLen {
		return nil, fmt.Errorf("%w: produced %d bytes, declared %d", ErrDelta, len(out), targetLen)
	}
	return out, nil
}

// maxExpansion bounds how much larger than its inputs a declared target may
// be before ApplyDelta refuses to allocate (corrupt-header defense).
const maxExpansion = 64
