package binenc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// mutate returns a copy of p with n random single-byte edits.
func mutate(p []byte, n int, rng *rand.Rand) []byte {
	out := append([]byte(nil), p...)
	for i := 0; i < n; i++ {
		out[rng.Intn(len(out))] = byte(rng.Int())
	}
	return out
}

func roundtrip(t *testing.T, base, target []byte) []byte {
	t.Helper()
	d := Delta(base, target)
	got, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("roundtrip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return d
}

func TestDeltaRoundtripSmallEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 64<<10)
	rng.Read(base)
	target := mutate(base, 20, rng)
	d := roundtrip(t, base, target)
	if len(d) > len(target)/5 {
		t.Fatalf("small-edit delta %d bytes, full %d — expected ≥ 5x shrink", len(d), len(target))
	}
}

func TestDeltaRoundtripInsertionShift(t *testing.T) {
	// An insertion near the front shifts everything; block matching must
	// still reuse the (unaligned) tail.
	rng := rand.New(rand.NewSource(2))
	base := make([]byte, 32<<10)
	rng.Read(base)
	target := append(append(append([]byte(nil), base[:100]...), []byte("inserted run of bytes")...), base[100:]...)
	d := roundtrip(t, base, target)
	if len(d) > len(target)/10 {
		t.Fatalf("shifted delta %d bytes for %d-byte target", len(d), len(target))
	}
}

func TestDeltaEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := make([]byte, 4096)
	rng.Read(big)
	cases := []struct{ base, target []byte }{
		{nil, nil},
		{nil, []byte("hello")},
		{[]byte("hello"), nil},
		{[]byte("short"), []byte("also short")},
		{big, big},
		{big, big[:1000]},
		{big[:1000], big},
		{big, append([]byte("prefix"), big...)},
	}
	for i, c := range cases {
		d := Delta(c.base, c.target)
		got, err := ApplyDelta(c.base, d)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, c.target) {
			t.Fatalf("case %d: mismatch", i)
		}
	}
}

func TestDeltaIdenticalIsTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := make([]byte, 256<<10)
	rng.Read(base)
	d := roundtrip(t, base, base)
	if len(d) > 64 {
		t.Fatalf("identical-content delta is %d bytes, want O(header)", len(d))
	}
}

func TestDeltaRandomizedRoundtrips(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		base := make([]byte, 1+rng.Intn(8<<10))
		rng.Read(base)
		var target []byte
		switch trial % 3 {
		case 0:
			target = mutate(base, 1+rng.Intn(16), rng)
		case 1: // splice a chunk out
			lo := rng.Intn(len(base))
			hi := lo + rng.Intn(len(base)-lo)
			target = append(append([]byte(nil), base[:lo]...), base[hi:]...)
		case 2: // fresh content
			target = make([]byte, rng.Intn(4<<10))
			rng.Read(target)
		}
		roundtrip(t, base, target)
	}
}

// TestApplyDeltaWrongBaseFailsStructurally: a delta carries the length of the
// base it was computed against; applying to a different-sized base must fail
// rather than emit garbage. (Same-size wrong bases produce wrong bytes by
// design — the protocol layer catches those by content hash.)
func TestApplyDeltaWrongBaseFailsStructurally(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := make([]byte, 4096)
	rng.Read(base)
	target := mutate(base, 4, rng)
	d := Delta(base, target)
	if _, err := ApplyDelta(base[:4000], d); !errors.Is(err, ErrDelta) {
		t.Fatalf("wrong-length base: err = %v, want ErrDelta", err)
	}
}

// TestApplyDeltaCopyOverflow pins the overflow-safe bounds check: a copy op
// whose off+n wraps around uint64 must fail with ErrDelta, never panic (the
// server applies deltas from untrusted wire input).
func TestApplyDeltaCopyOverflow(t *testing.T) {
	base := bytes.Repeat([]byte("z"), 256)
	w := NewWriter(64)
	w.Byte(deltaMagic)
	w.U64(uint64(len(base))) // base length
	w.U64(16)                // declared target length
	w.Byte(opCopy)
	w.U64(^uint64(0) - 7) // off: 2^64-8
	w.U64(16)             // n: off+n wraps to 8
	if _, err := ApplyDelta(base, w.Bytes()); !errors.Is(err, ErrDelta) {
		t.Fatalf("overflowing copy: err = %v, want ErrDelta", err)
	}
}

func TestApplyDeltaCorruptScripts(t *testing.T) {
	base := bytes.Repeat([]byte("abcdefgh"), 1024)
	target := append([]byte("x"), base...)
	d := Delta(base, target)
	for _, corrupt := range [][]byte{
		nil,
		{},
		{0xFF},       // bad magic
		d[:len(d)/2], // truncated mid-script
		append(append([]byte(nil), d...), opCopy, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x01), // copy past base
	} {
		if _, err := ApplyDelta(base, corrupt); !errors.Is(err, ErrDelta) {
			t.Fatalf("corrupt %x: err = %v, want ErrDelta", corrupt[:min(8, len(corrupt))], err)
		}
	}
}
