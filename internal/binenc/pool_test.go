package binenc

import (
	"bytes"
	"testing"
)

// TestWriterPoolReuse checks the lifecycle: Get, encode, Free, Get again —
// the recycled buffer must not leak previous contents through Bytes, and
// Detach must protect retained encodings from reuse.
func TestWriterPoolReuse(t *testing.T) {
	w := GetWriter(64)
	w.Str("first-encoding")
	first := append([]byte(nil), w.Bytes()...)
	w.Free()

	w2 := GetWriter(64)
	if len(w2.Bytes()) != 0 {
		t.Fatal("pooled writer not reset")
	}
	w2.Str("second")
	if bytes.Equal(w2.Bytes(), first) {
		t.Fatal("recycled writer returned stale bytes")
	}
	w2.Free()

	// Detach: the returned buffer survives Free and later reuse.
	w3 := GetWriter(16)
	w3.Str("retained")
	kept := w3.Detach()
	w3.Free()
	w4 := GetWriter(16)
	w4.Str("overwrite-attempt")
	if got := NewReader(kept).Str(); got != "retained" {
		t.Fatalf("detached buffer clobbered: %q", got)
	}
	w4.Free()
}

// TestWriterPoolZeroAllocs pins the steady state: encoding a typical wire
// message into a pooled writer allocates nothing.
func TestWriterPoolZeroAllocs(t *testing.T) {
	blob := make([]byte, 128)
	// Warm the pool so a buffer of adequate capacity is parked.
	GetWriter(256).Free()
	if n := testing.AllocsPerRun(200, func() {
		w := GetWriter(256)
		w.Str("dop-0001")
		w.Str("da-7")
		w.U64(42)
		w.Bool(true)
		w.Blob(blob)
		if len(w.Bytes()) == 0 {
			t.Fatal("empty encode")
		}
		w.Free()
	}); n != 0 {
		t.Fatalf("pooled encode allocates %v per op, want 0", n)
	}
}

// TestWriterPoolCapacityCap ensures oversized one-off buffers are dropped on
// Free instead of pinning pool memory.
func TestWriterPoolCapacityCap(t *testing.T) {
	w := GetWriter(maxPooledWriterBytes + 1024)
	w.Blob(make([]byte, maxPooledWriterBytes+512))
	w.Free() // must not panic; buffer dropped
	w2 := GetWriter(8)
	defer w2.Free()
	if cap(w2.buf) > maxPooledWriterBytes {
		t.Fatalf("oversized buffer re-entered the pool (cap %d)", cap(w2.buf))
	}
}
