package binenc

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.Byte(0xC1)
	w.Bool(true)
	w.Bool(false)
	w.U64(0)
	w.U64(1<<63 + 17)
	w.I64(-12345)
	w.F64(math.Pi)
	w.Str("")
	w.Str("design object version")
	w.Blob(nil)
	w.Blob([]byte{1, 2, 3})
	w.Strs(nil)
	w.Strs([]string{"a", "", "ccc"})

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 0xC1 {
		t.Fatalf("Byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.U64(); got != 1<<63+17 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -12345 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %g", got)
	}
	if got := r.Str(); got != "" {
		t.Fatalf("Str = %q", got)
	}
	if got := r.Str(); got != "design object version" {
		t.Fatalf("Str = %q", got)
	}
	if got := r.Blob(); len(got) != 0 {
		t.Fatalf("Blob = %v", got)
	}
	if got := r.Blob(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Blob = %v", got)
	}
	if got := r.Strs(); got != nil {
		t.Fatalf("Strs = %v", got)
	}
	got := r.Strs()
	if len(got) != 3 || got[0] != "a" || got[1] != "" || got[2] != "ccc" {
		t.Fatalf("Strs = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}

func TestTruncatedBufferFails(t *testing.T) {
	w := NewWriter(0)
	w.Str("hello")
	w.F64(1.5)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Str()
		r.F64()
		if r.Err() == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		// Errors are sticky: subsequent reads return zero values, no panic.
		if r.U64() != 0 || r.Str() != "" || r.Blob() != nil || r.Strs() != nil {
			t.Fatalf("cut at %d: non-zero reads after error", cut)
		}
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	w := NewWriter(0)
	w.U64(1 << 40) // claims a huge string
	r := NewReader(w.Bytes())
	if got := r.Str(); got != "" {
		t.Fatalf("Str = %q", got)
	}
	if r.Err() == nil {
		t.Fatal("oversized length accepted")
	}
	// A huge element count must fail fast, not allocate.
	w2 := NewWriter(0)
	w2.U64(math.MaxUint64)
	r2 := NewReader(w2.Bytes())
	if got := r2.Strs(); got != nil {
		t.Fatalf("Strs = %v", got)
	}
	if r2.Err() == nil {
		t.Fatal("oversized count accepted")
	}
}
