package baseline

import (
	"testing"

	"concord/internal/core"
	"concord/internal/repo"
	"concord/internal/sim"
)

func testRepo(t *testing.T) *repo.Repository {
	t.Helper()
	sys, err := core.NewSystem(core.Options{RegisterTypes: sim.RegisterStepTypes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys.Repo()
}

func wl(n, k, dep int) sim.Workload {
	return sim.Workload{Designers: n, Steps: k, DepEvery: dep, BaseDuration: 10, Jitter: 2, Seed: 42}
}

func TestFlatACIDSerializesEverything(t *testing.T) {
	r := testRepo(t)
	w := wl(4, 3, 0)
	m, err := RunFlatACID(r, w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Versions != 12 {
		t.Fatalf("versions = %d", m.Versions)
	}
	// Makespan must be (approximately) the serial sum: 12 steps × ~10.
	if m.Makespan < 100 {
		t.Fatalf("makespan = %g, flat ACID should serialize (~120)", m.Makespan)
	}
	if m.Blocked <= 0 {
		t.Fatal("no blocking measured under global lock")
	}
}

func TestConTractsBlocksUntilActivityEnd(t *testing.T) {
	r := testRepo(t)
	// Strong dependencies: every step depends on the neighbour.
	w := wl(3, 4, 1)
	m, err := RunConTractsStyle(r, w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Versions != 12 {
		t.Fatalf("versions = %d", m.Versions)
	}
	// Designer i waits for designer i-1's entire activity: makespan is
	// close to the full serial time.
	if m.Makespan < 100 {
		t.Fatalf("makespan = %g, ConTracts-style should nearly serialize", m.Makespan)
	}
}

func TestOrderingConcordBeatsBaselines(t *testing.T) {
	// The E9 claim in miniature: cooperative < ConTracts-style <= flat.
	w := wl(4, 4, 2)
	sys, err := core.NewSystem(core.Options{RegisterTypes: sim.RegisterStepTypes})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	coopM, err := sim.RunCooperative(sys, w)
	if err != nil {
		t.Fatal(err)
	}
	r2 := testRepo(t)
	ctM, err := RunConTractsStyle(r2, w)
	if err != nil {
		t.Fatal(err)
	}
	r3 := testRepo(t)
	flatM, err := RunFlatACID(r3, w)
	if err != nil {
		t.Fatal(err)
	}
	if !(coopM.Makespan < ctM.Makespan) {
		t.Fatalf("cooperative %g !< ConTracts %g", coopM.Makespan, ctM.Makespan)
	}
	if !(ctM.Makespan <= flatM.Makespan+1e-9) {
		t.Fatalf("ConTracts %g !<= flat %g", ctM.Makespan, flatM.Makespan)
	}
	// All engines derive the same number of versions.
	if coopM.Versions != ctM.Versions || ctM.Versions != flatM.Versions {
		t.Fatalf("version counts differ: %d/%d/%d", coopM.Versions, ctM.Versions, flatM.Versions)
	}
}

func TestNoDependenciesConTractsParallel(t *testing.T) {
	r := testRepo(t)
	w := wl(4, 3, 0) // no cross-designer dependencies
	m, err := RunConTractsStyle(r, w)
	if err != nil {
		t.Fatal(err)
	}
	// Independent designers run fully parallel: makespan ≈ one designer's
	// serial time (~30).
	if m.Makespan > 40 {
		t.Fatalf("makespan = %g, independent activities should parallelize", m.Makespan)
	}
	if m.Blocked != 0 {
		t.Fatalf("blocked = %g, want 0", m.Blocked)
	}
}
