// Package baseline implements the comparison engines CONCORD is argued
// against in Sect. 1.2 of the paper:
//
//   - flat ACID execution: every derivation step is a serializable
//     transaction on the whole shared design (strict exclusive locking, no
//     version-based sharing) — "the isolation property builds protective
//     walls among concurrent transactions";
//   - a ConTracts-style engine: the TE and DC levels exist (long
//     transactions, scripted work flow) but the AC level is missing, so a
//     designer can consume a colleague's results only after the colleague's
//     *whole activity* has finished (no pre-release of preliminary
//     versions).
//
// Both engines execute the same sim.Workload on the same repository
// substrate as the cooperative run, differing only in the sharing rule, so
// E9 isolates the contribution of the AC level.
package baseline

import (
	"fmt"

	"concord/internal/catalog"
	"concord/internal/repo"
	"concord/internal/sim"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// stepObject mirrors the cooperative workload payload.
func stepObject(designer string, j int) *catalog.Object {
	return catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str(designer)).
		Set("area", catalog.Float(100)).
		Set("step", catalog.Int(int64(j)))
}

// checkin stores one derived version directly in the repository (both
// baselines run server-local, without the distributed TM — the comparison
// targets the sharing rule, not the RPC overhead).
func checkin(r *repo.Repository, da string, j int, parent version.ID) (version.ID, error) {
	id := version.ID(fmt.Sprintf("%s/v%03d", da, j))
	v := &version.DOV{
		ID: id, DOT: vlsi.DOTFloorplan, DA: da,
		Object: stepObject(da, j), Status: version.StatusWorking,
	}
	if parent != "" {
		v.Parents = []version.ID{parent}
	}
	if err := r.Checkin(v, parent == ""); err != nil {
		return "", err
	}
	return id, nil
}

// RunConTractsStyle executes the workload with long transactions and
// scripted work flow but no cooperation level: designer i's dependent steps
// wait for designer i-1's *complete activity* (its last version), not the
// same-numbered preliminary version.
func RunConTractsStyle(r *repo.Repository, w sim.Workload) (sim.Metrics, error) {
	var m sim.Metrics
	dur := w.Durations()
	finishTotal := make([]float64, w.Designers)
	for i := 0; i < w.Designers; i++ {
		da := fmt.Sprintf("ct-designer-%02d", i)
		if err := r.CreateGraph(da); err != nil {
			return m, err
		}
		var clock float64
		var last version.ID
		for j := 1; j <= w.Steps; j++ {
			start := clock
			if i > 0 && w.DepEvery > 0 && j%w.DepEvery == 0 {
				// Without pre-release the dependency resolves only
				// when the whole neighbouring activity committed.
				if finishTotal[i-1] > start {
					m.Blocked += finishTotal[i-1] - start
					start = finishTotal[i-1]
				}
			}
			id, err := checkin(r, da, j, last)
			if err != nil {
				return m, err
			}
			last = id
			m.Versions++
			clock = start + dur[i][j-1]
		}
		finishTotal[i] = clock
		if clock > m.Makespan {
			m.Makespan = clock
		}
	}
	return m, nil
}

// RunFlatACID executes the workload under flat ACID transactions with
// serializability on the shared design: every derivation step locks the
// whole design exclusively for its duration, so all steps of all designers
// serialize. Blocked time is the wait for the global lock.
func RunFlatACID(r *repo.Repository, w sim.Workload) (sim.Metrics, error) {
	var m sim.Metrics
	dur := w.Durations()
	if err := r.CreateGraph("flat-design"); err != nil {
		return m, err
	}
	var global float64 // release time of the global design lock
	clock := make([]float64, w.Designers)
	last := make([]version.ID, w.Designers)
	counter := 0
	// Round-robin arrival order, matching the cooperative loop.
	for j := 1; j <= w.Steps; j++ {
		for i := 0; i < w.Designers; i++ {
			arrive := clock[i]
			start := arrive
			if global > start {
				m.Blocked += global - start
				start = global
			}
			counter++
			id := version.ID(fmt.Sprintf("flat/v%04d", counter))
			v := &version.DOV{
				ID: id, DOT: vlsi.DOTFloorplan, DA: "flat-design",
				Object: stepObject(fmt.Sprintf("d%02d", i), j), Status: version.StatusWorking,
			}
			if last[i] != "" {
				v.Parents = []version.ID{last[i]}
			}
			if err := r.Checkin(v, last[i] == ""); err != nil {
				return m, err
			}
			last[i] = id
			m.Versions++
			end := start + dur[i][j-1]
			global = end
			clock[i] = end
		}
	}
	for _, c := range clock {
		if c > m.Makespan {
			m.Makespan = c
		}
	}
	return m, nil
}
