// Package sim provides the simulation harness for the CONCORD experiments:
// deterministic multi-designer workloads over the real system stack, a
// logical clock for tool-time accounting, seeded designer decision policies,
// and the metrics the E-series experiments report (makespan, blocked time,
// messages, lost work).
//
// Designer "tool time" is virtual: real DOP/cooperation operations execute
// against the live stack while durations accumulate on per-designer logical
// clocks, so experiments are reproducible and fast yet exercise the same
// code paths as an interactive deployment.
package sim

import (
	"fmt"
	"math/rand"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/feature"
	"concord/internal/script"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// Workload describes a concurrent-engineering scenario: N designers each
// derive K successive versions of their own subtask; every DepEvery-th step
// additionally needs the same-numbered version of the left neighbour
// (information sharing across DAs).
type Workload struct {
	// Designers is the number of concurrent designers (sub-DAs).
	Designers int
	// Steps is the number of versions each designer derives.
	Steps int
	// DepEvery makes step j of designer i>0 depend on step j of designer
	// i-1 whenever j%DepEvery == 0 (0 disables dependencies).
	DepEvery int
	// BaseDuration is the tool time per derivation step.
	BaseDuration float64
	// Jitter adds ±Jitter/2 seeded noise to each duration.
	Jitter float64
	// Seed makes durations reproducible.
	Seed int64
}

// Durations materializes the per-designer, per-step tool times.
func (w Workload) Durations() [][]float64 {
	rng := rand.New(rand.NewSource(w.Seed))
	out := make([][]float64, w.Designers)
	for i := range out {
		out[i] = make([]float64, w.Steps)
		for j := range out[i] {
			out[i][j] = w.BaseDuration + (rng.Float64()-0.5)*w.Jitter
		}
	}
	return out
}

// Metrics aggregates an experiment run.
type Metrics struct {
	// Makespan is the logical completion time of the slowest designer.
	Makespan float64
	// Blocked sums the logical time designers spent waiting for inputs or
	// locks.
	Blocked float64
	// Versions counts derived DOVs.
	Versions int
	// Messages counts cooperation-protocol operations.
	Messages int
	// LostWork sums logical work units redone after failures.
	LostWork float64
}

// StepSpec builds the per-step specification of a designer's sub-DA: feature
// "step-j" holds when the version's step attribute reached j, so a version
// at step s fulfils exactly the first s features and the K-th version is
// final.
func StepSpec(steps int) *feature.Spec {
	feats := make([]feature.Feature, 0, steps)
	for j := 1; j <= steps; j++ {
		feats = append(feats, feature.Range(fmt.Sprintf("step-%03d", j), "step", float64(j), 1e12))
	}
	return feature.MustSpec(feats...)
}

// stepFeature names the feature of step j.
func stepFeature(j int) string { return fmt.Sprintf("step-%03d", j) }

// stepObject builds the version payload of step j.
func stepObject(designer string, j int) *catalog.Object {
	return catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str(designer)).
		Set("area", catalog.Float(100)).
		Set("step", catalog.Int(int64(j)))
}

// RegisterStepTypes registers the catalog needed by the workloads (the VLSI
// types; the step attribute rides on the floorplan DOT).
func RegisterStepTypes(cat *catalog.Catalog) error {
	if err := vlsi.RegisterCatalog(cat); err != nil {
		return err
	}
	return nil
}

// RunCooperative executes the workload on the full CONCORD stack: one root
// DA, one sub-DA per designer, real DOPs for every derivation, Evaluate +
// Propagate after each step and Require at every dependency point. The
// preliminary-result exchange of the AC level lets a dependent designer
// continue as soon as the neighbour's *version* exists — not when the
// neighbour's whole activity ends.
func RunCooperative(sys *core.System, w Workload) (Metrics, error) {
	var m Metrics
	cm := sys.CM()
	if err := cm.InitDesign(coop.Config{ID: "root", DOT: vlsi.DOTChip, Designer: "chief"}); err != nil {
		return m, err
	}
	if err := cm.Start("root"); err != nil {
		return m, err
	}
	ws, err := sys.AddWorkstation("sim-ws")
	if err != nil {
		return m, err
	}
	das := make([]string, w.Designers)
	for i := range das {
		das[i] = fmt.Sprintf("designer-%02d", i)
		if err := cm.CreateSubDA("root", coop.Config{
			ID: das[i], DOT: vlsi.DOTFloorplan, Spec: StepSpec(w.Steps), Designer: das[i],
		}); err != nil {
			return m, err
		}
		if err := cm.Start(das[i]); err != nil {
			return m, err
		}
	}
	dur := w.Durations()
	clock := make([]float64, w.Designers)
	ready := make([][]float64, w.Designers)
	last := make([]version.ID, w.Designers)
	for i := range ready {
		ready[i] = make([]float64, w.Steps+1)
	}
	for j := 1; j <= w.Steps; j++ {
		for i := 0; i < w.Designers; i++ {
			start := clock[i]
			// Dependency: wait for the neighbour's same-step version.
			if i > 0 && w.DepEvery > 0 && j%w.DepEvery == 0 {
				if _, ok, err := cm.Require(das[i], das[i-1], []string{stepFeature(j)}); err != nil {
					return m, err
				} else if !ok {
					return m, fmt.Errorf("sim: dependency %s step %d not propagated", das[i-1], j)
				}
				if ready[i-1][j] > start {
					m.Blocked += ready[i-1][j] - start
					start = ready[i-1][j]
				}
			}
			// Real DOP deriving the step-j version.
			dop, err := ws.Begin("", das[i])
			if err != nil {
				return m, err
			}
			root := last[i] == ""
			if !root {
				if _, err := dop.Checkout(last[i], false); err != nil {
					return m, err
				}
			}
			if err := dop.SetWorkspace(stepObject(das[i], j)); err != nil {
				return m, err
			}
			id, err := dop.Checkin(version.StatusWorking, root)
			if err != nil {
				return m, err
			}
			if err := dop.Commit(); err != nil {
				return m, err
			}
			if _, err := cm.Evaluate(das[i], id); err != nil {
				return m, err
			}
			if _, err := cm.Propagate(das[i], id); err != nil {
				return m, err
			}
			last[i] = id
			m.Versions++
			clock[i] = start + dur[i][j-1]
			ready[i][j] = clock[i]
		}
	}
	for i := 0; i < w.Designers; i++ {
		if clock[i] > m.Makespan {
			m.Makespan = clock[i]
		}
	}
	m.Messages = cm.ProtocolLogLen()
	return m, nil
}

// Op is one kind of designer operation an OpMix can emit.
type Op uint8

// Designer operations drawn by OpMix.Pick.
const (
	// OpCheckout checks an existing version out into a DOP workspace.
	OpCheckout Op = iota
	// OpCheckin derives and checks in a new version.
	OpCheckin
	// OpDelegate creates and starts a sub-DA (delegation).
	OpDelegate
	// OpHandOver transfers a DOP's design state to a successor DOP.
	OpHandOver
	// OpSetStatus flips a version's status (working/propagated/final).
	OpSetStatus
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpCheckout:
		return "checkout"
	case OpCheckin:
		return "checkin"
	case OpDelegate:
		return "delegate"
	case OpHandOver:
		return "handover"
	case OpSetStatus:
		return "setstatus"
	}
	return "unknown"
}

// OpMix is a seeded designer-operation mix: relative weights for each
// operation kind, drawn reproducibly by Pick. The scenario matrix uses it
// to describe workloads declaratively
// (checkout/checkin/delegate/handover/setstatus ratios).
type OpMix struct {
	// Checkout, Checkin, Delegate, HandOver, SetStatus are the relative
	// weights of the respective operations (zero disables one).
	Checkout, Checkin, Delegate, HandOver, SetStatus int
	// Seed makes the drawn sequence reproducible.
	Seed int64

	rng *rand.Rand
}

// Pick draws the next operation according to the weights. A mix with all
// weights zero always returns OpCheckin (the one operation that grows
// design state).
func (m *OpMix) Pick() Op {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(m.Seed))
	}
	total := m.Checkout + m.Checkin + m.Delegate + m.HandOver + m.SetStatus
	if total <= 0 {
		return OpCheckin
	}
	n := m.rng.Intn(total)
	for _, c := range []struct {
		w  int
		op Op
	}{
		{m.Checkout, OpCheckout},
		{m.Checkin, OpCheckin},
		{m.Delegate, OpDelegate},
		{m.HandOver, OpHandOver},
		{m.SetStatus, OpSetStatus},
	} {
		if n < c.w {
			return c.op
		}
		n -= c.w
	}
	return OpCheckin
}

// Policy is a seeded random script.Designer for simulation runs.
type Policy struct {
	rng *rand.Rand
	// RepeatProb is the chance of another loop iteration.
	RepeatProb float64
	// OpenOps are candidate operations for open regions (at most one is
	// inserted per region).
	OpenOps []script.Op
}

// NewPolicy builds a seeded policy.
func NewPolicy(seed int64, repeatProb float64, openOps ...script.Op) *Policy {
	return &Policy{rng: rand.New(rand.NewSource(seed)), RepeatProb: repeatProb, OpenOps: openOps}
}

// ChooseAlternative implements script.Designer.
func (p *Policy) ChooseAlternative(_, _ string, labels []string) (int, error) {
	if len(labels) == 0 {
		return 0, nil
	}
	return p.rng.Intn(len(labels)), nil
}

// ContinueLoop implements script.Designer.
func (p *Policy) ContinueLoop(_, _ string, _ int) (bool, error) {
	return p.rng.Float64() < p.RepeatProb, nil
}

// NextOpenStep implements script.Designer.
func (p *Policy) NextOpenStep(_, _ string, step int) (script.Op, bool, error) {
	if step >= 1 || len(p.OpenOps) == 0 {
		return script.Op{}, true, nil
	}
	return p.OpenOps[p.rng.Intn(len(p.OpenOps))], false, nil
}
