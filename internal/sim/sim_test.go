package sim

import (
	"testing"

	"concord/internal/core"
	"concord/internal/script"
)

func wl(n, k, dep int) Workload {
	return Workload{
		Designers: n, Steps: k, DepEvery: dep,
		BaseDuration: 10, Jitter: 2, Seed: 42,
	}
}

func TestDurationsDeterministic(t *testing.T) {
	w := wl(4, 6, 2)
	a, b := w.Durations(), w.Durations()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("durations not deterministic")
			}
			if a[i][j] < 9 || a[i][j] > 11 {
				t.Fatalf("duration %g outside jitter band", a[i][j])
			}
		}
	}
}

func TestStepSpecSemantics(t *testing.T) {
	spec := StepSpec(3)
	if spec.Len() != 3 {
		t.Fatalf("spec len = %d", spec.Len())
	}
	// A step-2 object fulfils features 1 and 2 but not 3.
	obj := stepObject("d", 2)
	q := spec.Evaluate(obj, nil)
	if len(q.Fulfilled) != 2 || len(q.Missing) != 1 {
		t.Fatalf("quality = %+v", q)
	}
	if !spec.Evaluate(stepObject("d", 3), nil).Final() {
		t.Fatal("step-3 object should be final")
	}
}

func TestRunCooperativeExecutesRealStack(t *testing.T) {
	sys, err := core.NewSystem(core.Options{RegisterTypes: RegisterStepTypes})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	w := wl(3, 4, 2)
	m, err := RunCooperative(sys, w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Versions != 12 {
		t.Fatalf("versions = %d, want 12", m.Versions)
	}
	if m.Makespan <= 0 || m.Messages == 0 {
		t.Fatalf("metrics = %+v", m)
	}
	// Every designer's graph exists with K versions and the final one.
	for _, da := range []string{"designer-00", "designer-01", "designer-02"} {
		g, err := sys.Repo().Graph(da)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != 4 {
			t.Fatalf("%s graph len = %d", da, g.Len())
		}
		if len(g.FinalDOVs()) != 1 {
			t.Fatalf("%s finals = %d", da, len(g.FinalDOVs()))
		}
	}
	// With parallel designers the makespan must be far below the serial
	// sum (3 designers × 4 steps × ~10 = ~120 serial).
	if m.Makespan > 80 {
		t.Fatalf("makespan = %g, cooperation not parallel", m.Makespan)
	}
}

func TestPolicyDeterminism(t *testing.T) {
	p1 := NewPolicy(7, 0.5, script.Op{Name: "x"})
	p2 := NewPolicy(7, 0.5, script.Op{Name: "x"})
	for i := 0; i < 20; i++ {
		a, _ := p1.ChooseAlternative("da", "d", []string{"a", "b", "c"})
		b, _ := p2.ChooseAlternative("da", "d", []string{"a", "b", "c"})
		if a != b {
			t.Fatal("policy not deterministic")
		}
	}
	op, done, err := p1.NextOpenStep("da", "r", 0)
	if err != nil || done || op.Name != "x" {
		t.Fatalf("open step = %v, %t", op, done)
	}
	if _, done, _ := p1.NextOpenStep("da", "r", 1); !done {
		t.Fatal("open region should close after one op")
	}
}
