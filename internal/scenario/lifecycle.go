package scenario

import (
	"errors"
	"testing"
	"time"

	"concord/internal/txn"
	"concord/internal/version"
	"concord/internal/vlsi"
	"concord/internal/wal"
)

// effectiveTTL is the lease lifetime the scenario's server actually runs
// with (the topology override or the package default).
func effectiveTTL(sc Scenario) time.Duration {
	if sc.Topo.LeaseTTL > 0 {
		return sc.Topo.LeaseTTL
	}
	return txn.DefaultLeaseTTL
}

// vanishState is the mid-checkin context a vanished workstation leaves
// behind, checked against the reaper's reclamation afterwards.
type vanishState struct {
	at     time.Time
	da     string
	dopID  string
	parent version.ID
	txid   string // staged-but-unprepared checkin branch ("" without mid-2PC)
}

// vanishWorkstation kills workstation 0 without restart. It first parks a
// dangling DOP holding the derivation lock on the DA's newest version, and —
// for the mid-2PC variant — stages an unprepared checkin branch under it, so
// the vanish happens exactly mid-checkin.
func vanishWorkstation(t *testing.T, s site, st *runState, sc Scenario) *vanishState {
	t.Helper()
	vs := &vanishState{da: st.rootDAs[0], dopID: st.nextDOPID()}
	vs.parent = st.lastOf(vs.da)
	d, err := s.begin(0, vs.dopID, vs.da)
	if err != nil {
		t.Fatalf("vanish: begin dangling DOP: %v", err)
	}
	if _, err := d.Checkout(vs.parent, true); err != nil {
		t.Fatalf("vanish: derive checkout of %s: %v", vs.parent, err)
	}
	if sc.Fault.VanishMid2PC {
		vs.txid = "vanish-tx-" + vs.dopID
		dov := &version.DOV{
			ID: version.ID("vanish-" + vs.dopID), DOT: vlsi.DOTFloorplan, DA: vs.da,
			Parents: []version.ID{vs.parent}, Object: payload(vs.da, vs.dopID),
			Status: version.StatusWorking,
		}
		if err := s.serverTM().Stage(vs.dopID, vs.txid, dov, false, nil); err != nil {
			t.Fatalf("vanish: stage mid-2PC branch: %v", err)
		}
	}
	vs.at = time.Now()
	if err := s.vanishWS(0); err != nil {
		t.Fatalf("vanish: kill workstation 0: %v", err)
	}
	return vs
}

// verifyReapAndTakeover is the workstation-failure oracle: within 2×LeaseTTL
// of the vanish the lease must be reaped, the staged branch presumed-abort
// discarded and the derivation lock freed; a surviving designer then derives
// from the same version and commits; finally the vanished workstation's next
// incarnation rejoins with its recovered DOP context.
func verifyReapAndTakeover(t *testing.T, s site, st *runState, sc Scenario, vs *vanishState) {
	t.Helper()
	stm := s.serverTM()
	ttl := effectiveTTL(sc)
	deadline := vs.at.Add(2 * ttl)
	for stm.HasLease(wsName(0)) {
		if time.Now().After(deadline) {
			t.Fatalf("lease of vanished workstation not reaped within 2×LeaseTTL (%v)", 2*ttl)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if vs.txid != "" {
		// The unprepared mid-2PC branch must be presumed-abort discarded: a
		// prepare of its transaction ID now finds nothing staged.
		if _, err := stm.Prepare(vs.txid); !errors.Is(err, txn.ErrNotStaged) {
			t.Errorf("staged branch of vanished workstation not reaped: Prepare = %v, want ErrNotStaged", err)
		}
	}
	// Takeover: a surviving designer acquires the freed derivation lock and
	// commits a successor. The lock wait is bounded, so a ghost owner would
	// surface as a timeout here.
	d2, err := s.begin(1, st.nextDOPID(), vs.da)
	if err != nil {
		t.Fatalf("takeover: begin: %v", err)
	}
	if _, err := d2.Checkout(vs.parent, true); err != nil {
		t.Fatalf("takeover: derivation lock of %s still held after reap: %v", vs.parent, err)
	}
	if err := d2.SetWorkspace(payload(vs.da, "takeover")); err != nil {
		t.Fatalf("takeover: workspace: %v", err)
	}
	id, err := d2.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatalf("takeover: checkin: %v", err)
	}
	st.recordCommit(vs.da, id)
	_ = d2.Commit()
	// Revive: the next incarnation recovers its persisted DOP contexts and
	// rejoins (Begin is idempotent; AddWorkstation reattaches, and the
	// heartbeat loop re-establishes the lease).
	recovered, err := s.reviveWS(0)
	if err != nil {
		t.Fatalf("revive workstation 0: %v", err)
	}
	if !sc.Topo.VolatileWS && recovered == 0 {
		t.Errorf("revived workstation recovered no DOP context; the dangling DOP was persisted")
	}
	rejoined := time.Now().Add(5 * time.Second)
	for !stm.HasLease(wsName(0)) {
		if time.Now().After(rejoined) {
			t.Fatalf("revived workstation never re-established its lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// verifyPartitionRejoin simulates a heartbeat partition long enough for the
// reaper to reclaim a live workstation, then heals it: the client's next
// heartbeat sees ErrNoLease, auto-rejoins, and its pre-partition DOP resumes
// with a successful checkin.
func verifyPartitionRejoin(t *testing.T, s site, st *runState, sc Scenario) {
	t.Helper()
	stm := s.serverTM()
	ttl := effectiveTTL(sc)
	da := st.rootDAs[0]
	dopID := st.nextDOPID()
	d, err := s.begin(0, dopID, da)
	if err != nil {
		t.Fatalf("partition: begin pre-partition DOP: %v", err)
	}
	parent := st.lastOf(da)
	if _, err := d.Checkout(parent, false); err != nil {
		t.Fatalf("partition: checkout: %v", err)
	}
	if err := d.SetWorkspace(payload(da, dopID)); err != nil {
		t.Fatalf("partition: workspace: %v", err)
	}
	// Partition: every heartbeat renewal is refused until healed. No
	// operations run meanwhile, so nothing else renews the lease either.
	reg := stm.Faults
	reg.Arm(txn.FaultHeartbeatDrop, nil)
	reapDeadline := time.Now().Add(3*ttl + time.Second)
	for stm.HasLease(wsName(0)) {
		if time.Now().After(reapDeadline) {
			t.Fatalf("partitioned workstation's lease never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	reg.Disarm(txn.FaultHeartbeatDrop)
	// Heal: the live client auto-rejoins off its heartbeat loop.
	rejoinDeadline := time.Now().Add(10 * time.Second)
	for !stm.HasLease(wsName(0)) {
		if time.Now().After(rejoinDeadline) {
			t.Fatalf("healed workstation never auto-rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The pre-partition DOP resumes: its checkin commits.
	id, err := d.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatalf("partition: DOP did not resume after rejoin: %v", err)
	}
	st.recordCommit(da, id)
	_ = d.Commit()
}

// verifyDegradedMode is the disk-full oracle: once the armed WAL failure has
// fired, the server must be in read-only degraded mode — health reports it,
// checkouts keep serving from the MVCC index, mutations fail fast — and a
// restart (onto a healthy disk) restores writability.
func verifyDegradedMode(t *testing.T, s site, st *runState, sc Scenario) {
	t.Helper()
	reg := s.serverTM().Faults
	if reg.Fired(wal.FaultAppendSync) == 0 {
		t.Fatalf("disk-full point %s never fired; the scenario exercises nothing", wal.FaultAppendSync)
	}
	if mode, cause := s.health(); mode != "degraded" {
		t.Errorf("health after WAL failure = (%q, %q), want degraded", mode, cause)
	}
	da := st.rootDAs[0]
	// Reads still serve from the MVCC read index.
	if err := doCheckout(s, st, 1, da); err != nil {
		t.Errorf("degraded server refused a read-only checkout: %v", err)
	}
	// Mutations fail fast instead of hanging or fail-stopping the reads.
	if err := doCheckin(s, st, 1, da); err == nil {
		t.Errorf("checkin succeeded on a degraded (read-only) server")
	}
	// Restart onto the healed disk: writability returns.
	if err := s.crashRestartServer(false, false); err != nil {
		t.Fatalf("restart out of degraded mode: %v", err)
	}
	if mode, cause := s.health(); mode != "ok" {
		t.Errorf("health after restart = (%q, %q), want ok", mode, cause)
	}
}
