package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/fault"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/sim"
	"concord/internal/version"
	"concord/internal/vlsi"
	"concord/internal/wal"
)

// runState is the driver's shared bookkeeping: the newest committed version
// per design area, the ledger of every durably committed checkin (the
// no-lost-committed oracle replays it against the recovered repository), the
// growing DA pool and the monotonic DOP-ID counter. Explicit DOP IDs keep
// identifiers unique across workstation restarts (a fresh ClientTM restarts
// its auto-ID sequence).
type runState struct {
	mu      sync.Mutex
	last    map[string]version.ID
	ledger  []version.ID
	das     []string
	rootDAs []string
	dopSeq  int
	subSeq  int
	stSeq   int
	failed  int
}

func newRunState() *runState {
	return &runState{last: make(map[string]version.ID)}
}

func (st *runState) nextDOPID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dopSeq++
	return fmt.Sprintf("sc-dop-%05d", st.dopSeq)
}

func (st *runState) lastOf(da string) version.ID {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.last[da]
}

// recordCommit must run immediately after a successful Checkin: at that
// moment the version is durably committed on the server regardless of what
// happens to the DOP afterwards.
func (st *runState) recordCommit(da string, id version.ID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.last[da] = id
	st.ledger = append(st.ledger, id)
}

func (st *runState) addDA(da string, root bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.das = append(st.das, da)
	if root {
		st.rootDAs = append(st.rootDAs, da)
	}
}

func (st *runState) pickDA(rng *rand.Rand) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.das[rng.Intn(len(st.das))]
}

func (st *runState) newSubDA() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.subSeq++
	return fmt.Sprintf("sub%03d", st.subSeq)
}

func (st *runState) tolerated() {
	st.mu.Lock()
	st.failed++
	st.mu.Unlock()
}

// payload builds a distinct floorplan object so every checkin changes the
// repository digest.
func payload(da, dopID string) *catalog.Object {
	return catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str(da+"/"+dopID)).
		Set("area", catalog.Float(float64(100+len(dopID)%7)))
}

// Run executes one scenario entry end to end: deploy the topology, warm it
// up, arm the fault, drive the workload (tolerating operation failures while
// the fault is live), disarm, prove liveness with mandatory recovery
// checkins, and then run the full oracle suite. Fault-point coverage is
// folded into the process-wide report even when the entry fails.
func Run(t *testing.T, sc Scenario) {
	t.Helper()
	reg := fault.New()
	defer recordCoverage(reg)
	if sc.Topo.Workstations <= 0 || sc.Topo.DesignAreas <= 0 || sc.Load.Ops <= 0 {
		t.Fatalf("scenario %s: topology and workload must be non-zero", sc.Name)
	}
	var rs *replState
	if sc.Fault.KillPrimary || sc.Fault.SplitBrain || sc.Fault.CrashStandby {
		if !sc.Topo.Replicated || sc.Topo.Transport != InProc {
			t.Fatalf("scenario %s: replication faults need an in-process replicated topology", sc.Name)
		}
		rs = &replState{}
	}

	var s site
	var err error
	dir := t.TempDir()
	switch sc.Topo.Transport {
	case TCP:
		s, err = newTCPSite(dir, sc.Topo, reg)
	default:
		s, err = newInProcSite(dir, sc.Topo, reg)
	}
	if err != nil {
		t.Fatalf("deploy %s: %v", sc.Topo.Transport, err)
	}
	defer s.close()
	st := newRunState()

	// Phase A — warm-up: create the design areas and give each a committed
	// root version; nothing is armed yet, so failures are fatal.
	for i := 0; i < sc.Topo.DesignAreas; i++ {
		da := fmt.Sprintf("da%02d", i)
		if err := s.newDA(da); err != nil {
			t.Fatalf("create DA %s: %v", da, err)
		}
		st.addDA(da, true)
		if err := doCheckin(s, st, 0, da); err != nil {
			t.Fatalf("root checkin %s: %v", da, err)
		}
	}
	if !sc.Topo.ColdCache {
		for ws := 0; ws < sc.Topo.Workstations; ws++ {
			for _, da := range st.rootDAs {
				if err := doCheckout(s, st, ws, da); err != nil {
					t.Fatalf("cache warm-up ws%d %s: %v", ws, da, err)
				}
			}
		}
	}

	// Phase B — arm the fault and drive the workload.
	if sc.Fault.VanishMid2PC {
		sc.Fault.VanishWS = true
	}
	if sc.Fault.DropCallbacks {
		reg.Arm(rpc.FaultNotifyDrop, nil)
	}
	if sc.Fault.DiskFull {
		reg.ArmAfter(wal.FaultAppendSync, sc.Fault.Skip, nil)
	}
	if sc.Fault.Point != "" {
		reg.ArmAfter(sc.Fault.Point, sc.Fault.Skip, nil)
	}
	stopRacer := func() {}
	if sc.Fault.RaceCheckpoint {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.checkpoint() // armed checkpoint points fire here
				time.Sleep(time.Millisecond)
			}
		}()
		var once sync.Once
		stopRacer = func() { once.Do(func() { close(stop); <-done }) }
	}
	defer stopRacer()

	crashed := false
	crashServer := func() {
		crashed = true
		stopRacer()
		if err := s.crashRestartServer(sc.Fault.TornTail, sc.Fault.TornManifest); err != nil {
			t.Fatalf("server crash/restart: %v", err)
		}
	}
	var vs *vanishState
	if sc.Load.Concurrent {
		// The replication fault lands from a watcher goroutine once a quarter
		// of the workload has committed, so the kill catches the concurrent
		// designers mid-checkin with warm 2PC traffic in flight.
		stopWatch := func() {}
		if rs != nil {
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				threshold := sc.Load.Ops / 4
				for {
					select {
					case <-stop:
						return
					default:
					}
					st.mu.Lock()
					committed := len(st.ledger)
					st.mu.Unlock()
					if committed >= threshold {
						rs.inject(t, s, sc)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
			stopWatch = func() { close(stop); <-done }
		}
		var wg sync.WaitGroup
		per := sc.Load.Ops / sc.Topo.Workstations
		if per == 0 {
			per = 1
		}
		for ws := 0; ws < sc.Topo.Workstations; ws++ {
			wg.Add(1)
			go func(ws int) {
				defer wg.Done()
				mix := sc.Load.Mix
				mix.Seed += int64(ws + 1)
				rng := rand.New(rand.NewSource(mix.Seed * 7))
				for i := 0; i < per; i++ {
					runOp(s, st, ws, mix.Pick(), rng)
				}
			}(ws)
		}
		wg.Wait()
		stopWatch()
		if rs != nil {
			rs.inject(t, s, sc) // workload drained below threshold: inject now
		}
		if sc.Fault.CrashServer {
			crashServer()
		}
	} else {
		mix := sc.Load.Mix
		rng := rand.New(rand.NewSource(mix.Seed + 1))
		for i := 0; i < sc.Load.Ops; i++ {
			if sc.Fault.CrashWS && i == sc.Load.Ops/2 {
				if err := s.crashRestartWS(0); err != nil && !errors.Is(err, errUnsupported) {
					t.Fatalf("workstation crash/restart: %v", err)
				}
			}
			if sc.Fault.VanishWS && vs == nil && i == sc.Load.Ops/2 {
				vs = vanishWorkstation(t, s, st, sc)
			}
			if rs != nil && i == sc.Load.Ops/2 {
				rs.inject(t, s, sc)
			}
			runOp(s, st, i%sc.Topo.Workstations, mix.Pick(), rng)
			if ce := sc.Load.CheckpointEvery; ce > 0 && (i+1)%ce == 0 {
				_ = s.checkpoint() // armed points fire; failures tolerated
			}
			if sc.Fault.CrashServer && !crashed {
				if fired := sc.Fault.Point != "" && reg.Fired(sc.Fault.Point) > 0; fired ||
					(sc.Fault.Point == "" && i == sc.Load.Ops/2) {
					crashServer()
				}
			}
		}
		if sc.Fault.CrashServer && !crashed {
			crashServer() // armed point never fired mid-run: crash at the end
		}
	}
	// Workstation-failure lifecycle verifications (DESIGN.md §5.3) run after
	// the workload settles, while the chaos registry is still armed. They
	// come before the traversal check because they wait on the background
	// reaper, whose pass is itself a traversal of txn:lease-expired.
	if vs != nil {
		verifyReapAndTakeover(t, s, st, sc, vs)
	}
	if sc.Fault.PartitionWS {
		verifyPartitionRejoin(t, s, st, sc)
	}
	if sc.Fault.DiskFull {
		verifyDegradedMode(t, s, st, sc)
	}
	// Server-failover lifecycle verifications (DESIGN.md §5.4) also run while
	// the registry is armed: they wait on client-driven takeover before the
	// liveness phase needs a serving primary again.
	if sc.Fault.KillPrimary {
		verifyFailoverPromotion(t, s, st, sc, rs)
	}
	if sc.Fault.SplitBrain {
		verifySplitBrainFencing(t, s, st, sc, rs)
	}
	if sc.Fault.CrashStandby {
		verifyStandbyCrashDegrade(t, s, st, sc)
	}
	if sc.Fault.Point != "" && reg.Hits(sc.Fault.Point) == 0 {
		t.Errorf("fault point %s was never traversed: the scenario exercises nothing", sc.Fault.Point)
	}

	// Phase C — disarm and prove liveness: with the chaos over, every design
	// area must accept a new committed checkin.
	stopRacer()
	reg.DisarmAll()
	for _, da := range st.rootDAs {
		if err := doCheckin(s, st, 0, da); err != nil {
			t.Fatalf("post-fault recovery checkin in %s failed (liveness): %v", da, err)
		}
	}

	runOracles(t, sc, s, st)
}

// runOp dispatches one workload operation; failures while the fault is live
// are tolerated and counted.
func runOp(s site, st *runState, ws int, op sim.Op, rng *rand.Rand) {
	da := st.pickDA(rng)
	var err error
	switch op {
	case sim.OpCheckout:
		err = doCheckout(s, st, ws, da)
	case sim.OpDelegate:
		err = doDelegate(s, st, ws, da)
	case sim.OpHandOver:
		err = doHandOver(s, st, ws, da)
	case sim.OpSetStatus:
		err = doSetStatus(s, st, da)
	default:
		err = doCheckin(s, st, ws, da)
	}
	if err != nil {
		st.tolerated()
	}
}

// doCheckin derives a new version from the DA's newest committed version
// (or a root version when none exists) and commits it through the full 2PC
// checkin path. The ledger records the ID the moment Checkin succeeds.
func doCheckin(s site, st *runState, ws int, da string) error {
	dopID := st.nextDOPID()
	d, err := s.begin(ws, dopID, da)
	if err != nil {
		return err
	}
	parent := st.lastOf(da)
	root := parent == ""
	if !root {
		if _, err := d.Checkout(parent, false); err != nil {
			_ = d.Abort()
			return err
		}
	}
	if err := d.SetWorkspace(payload(da, dopID)); err != nil {
		_ = d.Abort()
		return err
	}
	id, err := d.Checkin(version.StatusWorking, root)
	if err != nil {
		_ = d.Abort()
		return err
	}
	st.recordCommit(da, id)
	_ = d.Commit() // checkin already durable; End-of-DOP failure is tolerable
	return nil
}

// doCheckout reads the DA's newest version into a workspace and abandons it.
func doCheckout(s site, st *runState, ws int, da string) error {
	parent := st.lastOf(da)
	if parent == "" {
		return doCheckin(s, st, ws, da)
	}
	d, err := s.begin(ws, st.nextDOPID(), da)
	if err != nil {
		return err
	}
	obj, err := d.Checkout(parent, false)
	if err == nil && obj == nil {
		err = fmt.Errorf("scenario: checkout %s returned no object", parent)
	}
	if aerr := d.Abort(); err == nil {
		err = aerr
	}
	return err
}

// doDelegate creates a sub design area (falling back to a plain DA on
// deployments without a cooperation manager) and gives it a root version.
func doDelegate(s site, st *runState, ws int, parent string) error {
	child := st.newSubDA()
	err := s.delegate(parent, child)
	if errors.Is(err, errUnsupported) {
		err = s.newDA(child)
	}
	if err != nil {
		return err
	}
	st.addDA(child, false)
	return doCheckin(s, st, ws, child)
}

// doHandOver prepares a derivation in one DOP, hands the in-memory state to
// a successor DOP (Sect. 5.1 fn. 1) and checks in from the successor.
func doHandOver(s site, st *runState, ws int, da string) error {
	parent := st.lastOf(da)
	if parent == "" {
		return doCheckin(s, st, ws, da)
	}
	d1, err := s.begin(ws, st.nextDOPID(), da)
	if err != nil {
		return err
	}
	dopID := st.nextDOPID()
	if _, err := d1.Checkout(parent, false); err != nil {
		_ = d1.Abort()
		return err
	}
	if err := d1.SetWorkspace(payload(da, dopID)); err != nil {
		_ = d1.Abort()
		return err
	}
	d2, err := s.begin(ws, dopID, da)
	if err != nil {
		_ = d1.Abort()
		return err
	}
	if err := d1.HandOver(d2); err != nil {
		_ = d1.Abort()
		_ = d2.Abort()
		return err
	}
	if err := d1.Abort(); err != nil {
		_ = d2.Abort()
		return err
	}
	id, err := d2.Checkin(version.StatusWorking, false)
	if err != nil {
		_ = d2.Abort()
		return err
	}
	st.recordCommit(da, id)
	_ = d2.Commit()
	return nil
}

// doSetStatus cycles the DA's newest version through the working →
// propagated → final lifecycle (an administrative repository operation).
func doSetStatus(s site, st *runState, da string) error {
	id := st.lastOf(da)
	if id == "" {
		return nil
	}
	r := s.repo()
	if r == nil {
		return errors.New("scenario: server down")
	}
	cycle := []version.Status{version.StatusWorking, version.StatusPropagated, version.StatusFinal}
	st.mu.Lock()
	sStatus := cycle[st.stSeq%len(cycle)]
	st.stSeq++
	st.mu.Unlock()
	return r.SetStatus(id, sStatus)
}

// runOracles checks every recovery invariant after the workload settles:
//
//  1. No lost committed checkins — every ledger entry exists on the server.
//  2. Repository consistency (graph acyclicity, index/graph agreement).
//  3. Cache coherence — checkouts on several workstations hash-match the
//     server's canonical encoding of the same version.
//  4. Byte-identical restart — StateDigest is unchanged across one more
//     crash/recover cycle.
//  5. Twin replay — after shutdown, serial record-at-a-time replay and the
//     pipelined production replay recover byte-identical states.
func runOracles(t *testing.T, sc Scenario, s site, st *runState) {
	t.Helper()
	r := s.repo()
	st.mu.Lock()
	ledger := append([]version.ID(nil), st.ledger...)
	failed := st.failed
	st.mu.Unlock()
	t.Logf("scenario %s: %d committed checkins, %d tolerated op failures", sc.Name, len(ledger), failed)

	// Oracle 1: no lost committed checkins.
	for _, id := range ledger {
		ok, err := r.Exists(id)
		if err != nil {
			t.Fatalf("oracle no-lost: Exists(%s): %v", id, err)
		}
		if !ok {
			t.Errorf("oracle no-lost: committed checkin %s is gone after recovery", id)
		}
	}

	// Oracle 2: repository consistency.
	if err := r.CheckConsistency(); err != nil {
		t.Errorf("oracle consistency: %v", err)
	}

	// Oracle 3: cache coherence — a checkout of a given version on any
	// workstation must deliver exactly the server's bytes, even after
	// dropped callbacks or a cache-epoch bump.
	wsN := sc.Topo.Workstations
	if wsN > 3 {
		wsN = 3
	}
	for _, da := range st.rootDAs {
		id := st.lastOf(da)
		if id == "" {
			continue
		}
		_, wantHash, err := r.EncodedObject(id)
		if err != nil {
			t.Fatalf("oracle coherence: server encoding of %s: %v", id, err)
		}
		for ws := 0; ws < wsN; ws++ {
			d, err := s.begin(ws, st.nextDOPID(), da)
			if err != nil {
				t.Fatalf("oracle coherence: begin on ws%d: %v", ws, err)
			}
			obj, err := d.Checkout(id, false)
			if err != nil {
				t.Errorf("oracle coherence: checkout %s on ws%d: %v", id, ws, err)
				_ = d.Abort()
				continue
			}
			enc, err := catalog.EncodeObject(obj)
			if err != nil {
				t.Fatalf("oracle coherence: encode: %v", err)
			}
			if got := catalog.HashEncoded(enc); string(got) != string(wantHash) {
				t.Errorf("oracle coherence: ws%d checkout of %s diverges from server content", ws, id)
			}
			_ = d.Abort()
		}
	}

	// Oracle 4: byte-identical recovery. A first, settling restart resolves
	// any in-doubt 2PC leftovers (a checkin whose coordinator logged COMMIT
	// but whose client saw an error keeps its staged entry until the next
	// recovery resolves it); after that, recovery must be a fixpoint: one
	// more crash/restart reproduces the exact repository state. A scenario
	// whose failover promoted the warm standby skips this one: the promoted
	// standby IS the recovery, and it cannot crash/restart in place (a
	// promoted standby never rejoins as a follower) — the twin-replay oracle
	// below still proves its on-disk state replays deterministically.
	if !sc.Fault.KillPrimary && !sc.Fault.SplitBrain {
		if err := s.crashRestartServer(false, false); err != nil {
			t.Fatalf("oracle restart: settling crash/restart: %v", err)
		}
		r = s.repo()
		before, err := r.StateDigest()
		if err != nil {
			t.Fatalf("oracle restart: digest before: %v", err)
		}
		if err := s.crashRestartServer(false, false); err != nil {
			t.Fatalf("oracle restart: crash/restart: %v", err)
		}
		after, err := s.repo().StateDigest()
		if err != nil {
			t.Fatalf("oracle restart: digest after: %v", err)
		}
		if before != after {
			t.Errorf("oracle restart: recovery is not byte-identical:\n--- before crash\n%s--- after recovery\n%s", before, after)
		}
	}

	// Oracle 5: twin replay — serial and pipelined replay of the same
	// directory are equivalent. Shut the site down first so the directory
	// is quiescent; the first open may finish an interrupted checkpoint or
	// truncate a torn tail, equivalence is on the final state.
	cat := s.catalog()
	repoDir := s.serverRepoDir()
	s.close()
	digestOf := func(serial bool) string {
		t.Helper()
		tw, err := repo.Open(cat, repo.Options{Dir: repoDir, SerialReplay: serial})
		if err != nil {
			t.Fatalf("oracle twin-replay: open (serial=%t): %v", serial, err)
		}
		defer tw.Close()
		if err := tw.CheckConsistency(); err != nil {
			t.Fatalf("oracle twin-replay: consistency (serial=%t): %v", serial, err)
		}
		d, err := tw.StateDigest()
		if err != nil {
			t.Fatalf("oracle twin-replay: digest (serial=%t): %v", serial, err)
		}
		return d
	}
	serial := digestOf(true)
	pipelined := digestOf(false)
	if serial != pipelined {
		t.Errorf("oracle twin-replay: serial and pipelined replay diverge:\n--- serial\n%s--- pipelined\n%s", serial, pipelined)
	}
}
