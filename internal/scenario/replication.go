package scenario

import (
	"errors"
	"sync"
	"testing"
	"time"

	"concord/internal/core"
	"concord/internal/rpc"
	"concord/internal/txn"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// effectiveHeartbeat is the lease-renewal period the scenario's workstations
// actually run with (the topology override or the derivation core applies).
func effectiveHeartbeat(sc Scenario) time.Duration {
	if sc.Topo.HeartbeatEvery > 0 {
		return sc.Topo.HeartbeatEvery
	}
	return effectiveTTL(sc) / txn.DefaultHeartbeatDivisor
}

// replState coordinates the one-shot replication fault and remembers when it
// landed, so the promotion oracle can hold client-driven takeover to its
// 2×heartbeat deadline. Concurrent workloads inject from a watcher goroutine
// once enough checkins have committed, so the kill lands under live 2PC
// traffic.
type replState struct {
	mu   sync.Mutex
	done bool
	at   time.Time
}

// when reports the injection time (zero before inject ran).
func (rs *replState) when() time.Time {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.at
}

// inject applies the scenario's replication fault exactly once; later calls
// no-op. It reports failures with Errorf, not Fatalf, because it may run on a
// watcher goroutine.
func (rs *replState) inject(t *testing.T, s site, sc Scenario) {
	rs.mu.Lock()
	if rs.done {
		rs.mu.Unlock()
		return
	}
	rs.done = true
	rs.at = time.Now()
	rs.mu.Unlock()
	if sc.Fault.KillPrimary {
		if err := s.killPrimary(); err != nil {
			t.Errorf("kill primary: %v", err)
		}
	}
	if sc.Fault.SplitBrain {
		if err := s.partitionPrimary(); err != nil {
			t.Errorf("partition primary: %v", err)
		}
	}
	if sc.Fault.CrashStandby {
		if err := s.crashStandby(); err != nil {
			t.Errorf("crash standby: %v", err)
		}
	}
}

// awaitTakeover waits until every workstation's session targets the promoted
// standby. Workstation 0 is held to the hard promotion deadline measured from
// the fault injection; the rest follow within their own heartbeat with a
// generous bound (the later oracles drive traffic through all of them).
func awaitTakeover(t *testing.T, s site, sc Scenario, rs *replState) time.Duration {
	t.Helper()
	bound := 2 * effectiveHeartbeat(sc)
	deadline := rs.when().Add(bound)
	for {
		if addr, err := s.wsServerAddr(0); err == nil && addr == core.StandbyAddr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby not promoted and adopted by workstation 0 within 2×heartbeat (%v)", bound)
		}
		time.Sleep(5 * time.Millisecond)
	}
	took := time.Since(rs.when())
	rest := time.Now().Add(10 * time.Second)
	for ws := 1; ws < sc.Topo.Workstations; ws++ {
		for {
			if addr, err := s.wsServerAddr(ws); err == nil && addr == core.StandbyAddr {
				break
			}
			if time.Now().After(rest) {
				t.Fatalf("workstation %d never failed over to the promoted standby", ws)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return took
}

// verifyFailoverPromotion is the primary-kill oracle: after the primary died
// under concurrent checkins, client-driven takeover must promote the warm
// standby and move every session over — workstation 0 within 2×heartbeat —
// with the epoch bumped. The ledger oracle afterwards re-proves that no
// synchronously committed checkin was lost across the failover.
func verifyFailoverPromotion(t *testing.T, s site, st *runState, sc Scenario, rs *replState) {
	t.Helper()
	took := awaitTakeover(t, s, sc, rs)
	h, err := s.replHealth()
	if err != nil {
		t.Fatalf("failover: replication health: %v", err)
	}
	if !h.StandbyPromoted || h.Epoch == 0 {
		t.Errorf("failover: replication health = %+v, want promoted standby with a bumped epoch", h)
	}
	t.Logf("failover: client takeover in %v (bound %v), epoch %d", took, 2*effectiveHeartbeat(sc), h.Epoch)
	// Spot-check before the full ledger replay: the newest committed checkin
	// of every root DA is already served by the promoted repository.
	for _, da := range st.rootDAs {
		id := st.lastOf(da)
		if id == "" {
			continue
		}
		ok, err := s.repo().Exists(id)
		if err != nil || !ok {
			t.Errorf("failover: committed checkin %s missing at the promoted standby: %t, %v", id, ok, err)
		}
	}
}

// verifySplitBrainFencing is the split-brain oracle: a partition deposed a
// LIVE primary and the clients promoted the standby. Once the partition
// heals, the deposed primary's next commit must be refused with
// rpc.ErrStaleEpoch — fenced before any split-brain write is acknowledged —
// while the promoted side keeps accepting commits.
func verifySplitBrainFencing(t *testing.T, s site, st *runState, sc Scenario, rs *replState) {
	t.Helper()
	awaitTakeover(t, s, sc, rs)
	if err := s.healPrimary(); err != nil {
		t.Fatalf("split-brain: heal partition: %v", err)
	}
	pr := s.primaryRepo()
	if pr == nil {
		t.Fatalf("split-brain: the deposed primary should still be running")
	}
	da := st.rootDAs[0]
	v := &version.DOV{
		DOT: vlsi.DOTFloorplan, DA: da,
		Object: payload(da, "split-brain"),
		Status: version.StatusWorking,
	}
	v.ID = pr.NextID()
	if err := pr.Checkin(v, false); !errors.Is(err, rpc.ErrStaleEpoch) {
		t.Errorf("split-brain: deposed primary commit = %v, want rpc.ErrStaleEpoch", err)
	}
	// The promoted side keeps serving commits after fencing the old primary.
	if err := doCheckin(s, st, 1, da); err != nil {
		t.Errorf("split-brain: promoted standby refused a commit: %v", err)
	}
}

// verifyStandbyCrashDegrade is the standby-outage oracle: with the standby
// dead, a synchronous primary must have degraded to trailing replication and
// kept committing; after the standby restarts from its durable replicated
// state, the sender must catch it up and return to sync mode.
func verifyStandbyCrashDegrade(t *testing.T, s site, st *runState, sc Scenario) {
	t.Helper()
	h, err := s.replHealth()
	if err != nil {
		t.Fatalf("standby crash: replication health: %v", err)
	}
	if h.Role != "primary" || h.Mode != "trailing" || h.Degrades == 0 || !h.SyncConfigured {
		t.Errorf("standby crash: replication health = %+v, want a configured-sync primary degraded to trailing", h)
	}
	// Designers keep committing without the standby.
	da := st.rootDAs[0]
	if err := doCheckin(s, st, 0, da); err != nil {
		t.Fatalf("standby crash: primary refused a commit during the outage: %v", err)
	}
	if err := s.restartStandby(); err != nil {
		t.Fatalf("standby crash: restart standby: %v", err)
	}
	resync := time.Now().Add(15 * time.Second)
	for {
		h, err := s.replHealth()
		if err != nil {
			t.Fatalf("standby crash: replication health: %v", err)
		}
		if h.Mode == "sync" {
			break
		}
		if time.Now().After(resync) {
			t.Fatalf("standby crash: sender never returned to sync mode after the restart (mode %q)", h.Mode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Catch-up reached the follower's live state: the newest committed
	// checkin is readable at the standby.
	want := st.lastOf(da)
	catchup := time.Now().Add(5 * time.Second)
	for {
		if sb := s.standbyRepo(); sb != nil {
			if ok, err := sb.Exists(want); err == nil && ok {
				return
			}
		}
		if time.Now().After(catchup) {
			t.Fatalf("standby crash: restarted standby never caught up to %s", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
