package scenario

import (
	"fmt"
	"time"

	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/sim"
	"concord/internal/txn"
)

// mixedLoad is the default designer mix: checkin-heavy with a steady stream
// of checkouts, occasional delegations, handovers and status flips.
func mixedLoad(ops int, seed int64) Workload {
	return Workload{
		Mix: sim.OpMix{Checkout: 3, Checkin: 6, Delegate: 1, HandOver: 1, SetStatus: 1, Seed: seed},
		Ops: ops,
	}
}

// writeLoad is a pure checkin stream (every op traverses the 2PC path).
func writeLoad(ops int, seed int64) Workload {
	return Workload{Mix: sim.OpMix{Checkin: 1, Seed: seed}, Ops: ops}
}

// smallTopo is the default short-matrix shape: two workstations, two DAs,
// in-process transport.
func smallTopo() Topology {
	return Topology{Workstations: 2, DesignAreas: 2}
}

// Short is the CI matrix: every fault class (checkpoint-protocol crashes
// racing live writers, 2PC crashes at each durability point, dropped
// callbacks, torn WAL tail, workstation crash with a cache-epoch bump,
// volatile workstations, a TCP deployment and a concurrent scale entry),
// each checked by the full oracle suite.
func Short() []Scenario {
	out := []Scenario{
		{
			Name: "inproc-baseline-smoke",
			Topo: smallTopo(),
			Load: mixedLoad(40, 1),
		},
		{
			Name:  "inproc-callback-drop",
			Topo:  smallTopo(),
			Load:  Workload{Mix: sim.OpMix{Checkout: 4, Checkin: 4, HandOver: 2, Seed: 2}, Ops: 40},
			Fault: Fault{DropCallbacks: true},
		},
		{
			Name:  "inproc-torn-wal-tail",
			Topo:  smallTopo(),
			Load:  writeLoad(30, 3),
			Fault: Fault{CrashServer: true, TornTail: true},
		},
		{
			Name:  "inproc-stale-cache-epoch",
			Topo:  Topology{Workstations: 2, DesignAreas: 2},
			Load:  mixedLoad(40, 4),
			Fault: Fault{CrashWS: true},
		},
		{
			Name:  "inproc-volatile-ws-server-crash",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, VolatileWS: true},
			Load:  writeLoad(30, 5),
			Fault: Fault{CrashServer: true},
		},
		{
			Name: "inproc-cold-cache",
			Topo: Topology{Workstations: 2, DesignAreas: 2, ColdCache: true},
			Load: mixedLoad(40, 6),
		},
		{
			Name: "tcp-baseline",
			Topo: Topology{Workstations: 2, DesignAreas: 2, Transport: TCP},
			Load: Workload{Mix: sim.OpMix{Checkout: 3, Checkin: 6, SetStatus: 1, Seed: 7}, Ops: 40},
		},
		{
			Name:  "tcp-2pc-checkin-installed-crash",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, Transport: TCP},
			Load:  writeLoad(30, 8),
			Fault: Fault{Point: txn.FaultCheckinInstalled, Skip: 10, CrashServer: true},
		},
		{
			// Dropped invalidation callbacks over real sockets: the
			// notifier dials each workstation's callback listener and the
			// armed drop point swallows deliveries; the coherence oracle
			// must still see server-identical checkouts.
			Name:  "tcp-callback-drop",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, Transport: TCP},
			Load:  Workload{Mix: sim.OpMix{Checkout: 4, Checkin: 4, HandOver: 2, Seed: 10}, Ops: 40},
			Fault: Fault{DropCallbacks: true},
		},
		{
			// Server crash/restart halfway through the run: every pooled
			// multiplexed client connection dies mid-workload and the
			// reliable clients must ride over reconnection (retriable
			// ErrDropped/ErrUnreachable) against the recovered incarnation
			// on the same port.
			Name:  "tcp-server-crash-pooled-conns",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, Transport: TCP},
			Load:  writeLoad(30, 11),
			Fault: Fault{CrashServer: true},
		},
		{
			// Concurrent workstations pipelining over shared connections,
			// then a crash that kills the server with the pools warm.
			Name: "tcp-scale-concurrent",
			Topo: Topology{Workstations: 4, DesignAreas: 2, Transport: TCP},
			Load: Workload{
				Mix:        sim.OpMix{Checkout: 3, Checkin: 6, SetStatus: 1, Seed: 12},
				Ops:        80,
				Concurrent: true,
			},
			Fault: Fault{CrashServer: true},
		},
		{
			// Torn incremental-checkpoint append: periodic checkpoints grow a
			// chain, the crash corrupts the manifest's tail, and recovery must
			// keep the valid prefix plus the WAL suffix with nothing lost.
			Name:  "inproc-torn-manifest-tail",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, SegmentBytes: 2 << 10, CheckpointMaxChain: 4},
			Load:  Workload{Mix: sim.OpMix{Checkin: 1, Seed: 13}, Ops: 30, CheckpointEvery: 5},
			Fault: Fault{CrashServer: true, TornManifest: true},
		},
		{
			// Restart from a base plus several incremental deltas: a generous
			// chain bound with frequent checkpoints builds a chain of three or
			// more before the crash, so recovery folds the whole chain before
			// replaying the WAL suffix.
			Name:  "inproc-ckpt-chain-of-3-restart",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, SegmentBytes: 2 << 10, CheckpointMaxChain: 8},
			Load:  Workload{Mix: sim.OpMix{Checkin: 1, Seed: 14}, Ops: 40, CheckpointEvery: 5},
			Fault: Fault{CrashServer: true},
		},
		{
			// The E19 ablation shape under chaos: quiescent full checkpoints
			// racing writers, then a crash.
			Name:  "inproc-quiescent-ckpt-crash",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, SegmentBytes: 2 << 10, QuiescentCheckpoint: true},
			Load:  writeLoad(30, 15),
			Fault: Fault{CrashServer: true, RaceCheckpoint: true},
		},
		{
			// The PR-9 acceptance scenario: workstation 0 is killed
			// mid-checkin (derivation lock held, 2PC branch staged but not
			// prepared). Within 2×LeaseTTL the reaper presumed-aborts the
			// branch and frees the lock, a surviving designer derives from
			// the same version and commits, and the killed workstation's
			// next incarnation rejoins with its recovered DOP context. The
			// digest oracles prove no committed state was lost.
			Name:  "inproc-ws-vanish-mid-2pc",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, LeaseTTL: 500 * time.Millisecond},
			Load:  writeLoad(24, 16),
			Fault: Fault{VanishMid2PC: true},
		},
		{
			// Vanish while holding only a derivation lock, with the reaper
			// additionally delayed one pass by the armed lease-expired
			// point; the second workstation still acquires after reaping.
			Name:  "inproc-ws-vanish-derivation-lock",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, LeaseTTL: 500 * time.Millisecond},
			Load:  mixedLoad(24, 17),
			Fault: Fault{VanishWS: true, Point: txn.FaultLeaseExpired},
		},
		{
			// Heartbeat partition of a live workstation: its lease is reaped,
			// the heal triggers an ErrNoLease-driven auto-Rejoin, and the
			// pre-partition DOP resumes with a successful checkin.
			Name: "inproc-partition-rejoin-resumes-dop",
			Topo: Topology{
				Workstations: 2, DesignAreas: 2,
				LeaseTTL: 300 * time.Millisecond, HeartbeatEvery: 30 * time.Millisecond,
			},
			Load:  mixedLoad(24, 18),
			Fault: Fault{PartitionWS: true},
		},
		{
			// Disk-full on the server WAL with the degradation knob on: the
			// server latches read-only degraded mode — checkouts keep
			// serving, mutations fail fast, health reports "degraded" — and
			// a restart restores writability.
			Name:  "inproc-disk-full-degraded-reads",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, DegradedOnWALFailure: true},
			Load:  writeLoad(24, 19),
			Fault: Fault{DiskFull: true, Skip: 10},
		},
		{
			Name: "inproc-scale-concurrent",
			Topo: Topology{Workstations: 4, DesignAreas: 3},
			Load: Workload{
				Mix:        sim.OpMix{Checkout: 3, Checkin: 6, SetStatus: 1, Seed: 9},
				Ops:        80,
				Concurrent: true,
			},
			Fault: Fault{RaceCheckpoint: true},
		},
		{
			// The PR-10 acceptance scenario: the primary dies while concurrent
			// designers are mid-checkin. The workstations' heartbeat loops
			// drive the takeover — promote the warm standby, rejoin, resume —
			// within 2×heartbeat, and the ledger oracle proves every
			// synchronously committed checkin survived the failover.
			Name: "inproc-repl-primary-kill-failover",
			Topo: Topology{
				Workstations: 2, DesignAreas: 2, Replicated: true, SyncReplication: true,
				LeaseTTL: 3 * time.Second, HeartbeatEvery: time.Second,
			},
			Load:  Workload{Mix: sim.OpMix{Checkin: 1, Seed: 40}, Ops: 40, Concurrent: true},
			Fault: Fault{KillPrimary: true},
		},
		{
			// Split brain: a partition separates a LIVE primary from its
			// workstations, which promote the standby. Once the partition
			// heals, the deposed primary's next commit must be refused with
			// ErrStaleEpoch before any split-brain write is acknowledged.
			Name: "inproc-repl-split-brain-fencing",
			Topo: Topology{
				Workstations: 2, DesignAreas: 2, Replicated: true, SyncReplication: true,
				LeaseTTL: 3 * time.Second, HeartbeatEvery: time.Second,
			},
			Load:  writeLoad(30, 41),
			Fault: Fault{SplitBrain: true},
		},
		{
			// Standby crash: synchronous replication degrades to trailing
			// instead of blocking designers, the restarted standby is caught
			// back up from its durable replicated state, and sync returns.
			Name:  "inproc-repl-standby-crash-degrade",
			Topo:  Topology{Workstations: 2, DesignAreas: 2, Replicated: true, SyncReplication: true},
			Load:  writeLoad(30, 42),
			Fault: Fault{CrashStandby: true},
		},
	}
	// Crash at each checkpoint-protocol durability point while checkpoints
	// race live writers; tiny segments make the log roll so the
	// segment-deletion points are traversed, and a chain bound of 2 makes
	// the racing checkpoints alternate the full and incremental paths so
	// the delta-only points fire too.
	for i, point := range repo.CrashPoints {
		out = append(out, Scenario{
			Name:  "inproc-ckpt-crash-" + shortPoint(point),
			Topo:  Topology{Workstations: 2, DesignAreas: 2, SegmentBytes: 2 << 10, CheckpointMaxChain: 2},
			Load:  writeLoad(30, 20+int64(i)),
			Fault: Fault{Point: point, Skip: 1, CrashServer: true, RaceCheckpoint: true},
		})
	}
	// Crash at each 2PC durability point mid-workload.
	for i, point := range []string{
		txn.FaultStagePersisted, txn.FaultCheckinInstalled,
		rpc.FaultPrepareVoteLogged, rpc.FaultDecisionLogged, rpc.FaultCommitApply,
	} {
		out = append(out, Scenario{
			Name:  "inproc-2pc-crash-" + shortPoint(point),
			Topo:  smallTopo(),
			Load:  writeLoad(30, 30+int64(i)),
			Fault: Fault{Point: point, Skip: 10, CrashServer: true},
		})
	}
	return out
}

// Long is the exhaustive matrix behind `make scenarios`
// (CONCORD_SCENARIOS_LONG=1): every checkpoint-protocol point under racing
// checkpoints, every 2PC point over both transports, multiple seeds and a
// larger concurrent scale-out.
func Long() []Scenario {
	var out []Scenario
	for i, point := range repo.CrashPoints {
		out = append(out, Scenario{
			Name:  "long-ckpt-crash-" + shortPoint(point),
			Topo:  Topology{Workstations: 3, DesignAreas: 3, SegmentBytes: 2 << 10, CheckpointMaxChain: 2},
			Load:  writeLoad(120, 100+int64(i)),
			Fault: Fault{Point: point, Skip: 2, CrashServer: true, RaceCheckpoint: true},
		})
	}
	out = append(out,
		Scenario{
			Name:  "long-torn-manifest-tail",
			Topo:  Topology{Workstations: 3, DesignAreas: 3, SegmentBytes: 2 << 10, CheckpointMaxChain: 4},
			Load:  Workload{Mix: sim.OpMix{Checkin: 1, Seed: 150}, Ops: 120, CheckpointEvery: 10},
			Fault: Fault{CrashServer: true, TornManifest: true},
		},
		Scenario{
			Name:  "long-ckpt-chain-restart",
			Topo:  Topology{Workstations: 3, DesignAreas: 3, SegmentBytes: 2 << 10, CheckpointMaxChain: 16},
			Load:  Workload{Mix: sim.OpMix{Checkin: 1, Seed: 151}, Ops: 120, CheckpointEvery: 8},
			Fault: Fault{CrashServer: true},
		},
	)
	twoPC := []string{
		txn.FaultStagePersisted, txn.FaultCheckinInstalled,
		rpc.FaultPrepareVoteLogged, rpc.FaultDecisionLogged, rpc.FaultCommitApply,
	}
	for _, tr := range []Transport{InProc, TCP} {
		for i, point := range twoPC {
			out = append(out, Scenario{
				Name:  fmt.Sprintf("long-%s-2pc-crash-%s", tr, shortPoint(point)),
				Topo:  Topology{Workstations: 3, DesignAreas: 2, Transport: tr},
				Load:  writeLoad(90, 200+int64(i)),
				Fault: Fault{Point: point, Skip: 25, CrashServer: true},
			})
		}
	}
	for seed := int64(1); seed <= 4; seed++ {
		out = append(out, Scenario{
			Name: fmt.Sprintf("long-mixed-chaos-seed%d", seed),
			Topo: Topology{Workstations: 3, DesignAreas: 3},
			Load: mixedLoad(150, 300+seed),
			Fault: Fault{
				DropCallbacks: true, CrashServer: true, TornTail: seed%2 == 0,
				RaceCheckpoint: true,
			},
		})
	}
	out = append(out, Scenario{
		Name: "long-scale-concurrent",
		Topo: Topology{Workstations: 8, DesignAreas: 4},
		Load: Workload{
			Mix:        sim.OpMix{Checkout: 3, Checkin: 6, SetStatus: 1, Seed: 400},
			Ops:        400,
			Concurrent: true,
		},
		Fault: Fault{RaceCheckpoint: true},
	}, Scenario{
		// The short failover scenario at scale: more designers, more
		// committed work riding over the promotion.
		Name: "long-repl-primary-kill-concurrent",
		Topo: Topology{
			Workstations: 4, DesignAreas: 3, Replicated: true, SyncReplication: true,
			LeaseTTL: 3 * time.Second, HeartbeatEvery: time.Second,
		},
		Load:  Workload{Mix: sim.OpMix{Checkin: 1, Seed: 410}, Ops: 160, Concurrent: true},
		Fault: Fault{KillPrimary: true},
	})
	return out
}

// shortPoint turns "owner:some-event" into "owner-some-event" for subtest
// names.
func shortPoint(point string) string {
	b := []byte(point)
	for i, c := range b {
		if c == ':' {
			b[i] = '-'
		}
	}
	return string(b)
}
