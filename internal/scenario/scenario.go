// Package scenario is the declarative chaos + scale matrix for the whole
// CONCORD stack: each entry names a topology (workstations, design areas,
// in-process or real TCP transport, cache temperature, workstation
// volatility), a seeded workload mix (checkout / checkin / delegate /
// handover / setstatus ratios via sim.OpMix), a fault (a named fault point
// from the internal/fault registry armed mid-run, a server or workstation
// crash, a torn WAL tail, dropped callbacks, checkpoints racing writers, a
// primary kill or split-brain partition of a replicated deployment, a
// standby crash) and runs a fixed oracle suite over the survivors: no
// committed checkin is
// ever lost, repository consistency holds, recovery is byte-identical
// across a restart (StateDigest), serial and pipelined replay are
// equivalent twins, and every workstation cache checkout revalidates to the
// server's content hash.
//
// The short matrix (Short) runs under plain `go test ./internal/scenario`
// for CI; the long matrix (Long) is gated behind CONCORD_SCENARIOS_LONG=1
// and reached via `make scenarios`. Fault-point coverage — which named
// points were traversed and fired across the whole run — is aggregated
// process-wide and rendered by CoverageReport (CI uploads it as an
// artifact).
package scenario

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"concord/internal/fault"
	"concord/internal/repl"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/sim"
	"concord/internal/txn"
	"concord/internal/wal"
)

// Transport selects how workstations reach the server site.
type Transport uint8

// Transports.
const (
	// InProc uses the in-process transport (the core.System deployment).
	InProc Transport = iota
	// TCP uses real TCP sockets with gob envelopes (the cmd/concordd
	// deployment, assembled manually per site).
	TCP
)

// String names the transport.
func (tr Transport) String() string {
	if tr == TCP {
		return "tcp"
	}
	return "inproc"
}

// Topology is the deployment shape of one scenario entry.
type Topology struct {
	// Workstations is the number of workstation sites.
	Workstations int
	// DesignAreas is the number of top-level design areas.
	DesignAreas int
	// Transport selects in-process or real TCP sockets.
	Transport Transport
	// ColdCache skips the cache warm-up checkouts, so every first checkout
	// pays a full transfer.
	ColdCache bool
	// VolatileWS keeps workstation state in memory (no workstation crash
	// recovery; the server remains persistent).
	VolatileWS bool
	// SegmentBytes overrides the server WAL segment rotation threshold
	// (0 uses the default). Small values make segments roll and get
	// deleted during the run, so the late checkpoint-protocol fault
	// points are traversed.
	SegmentBytes int64
	// CheckpointMaxChain overrides the incremental snapshot chain bound
	// before a full rebase (0 uses the repository default). Small values
	// make checkpoints alternate the full and incremental protocol paths,
	// so both sets of fault points are traversed.
	CheckpointMaxChain int
	// QuiescentCheckpoint reverts the server repository to the ablation
	// design: full snapshots encoded under the exclusive lock.
	QuiescentCheckpoint bool
	// LeaseTTL overrides the workstation session lease lifetime (0 uses
	// txn.DefaultLeaseTTL). The vanish/partition entries shrink it so the
	// reaper acts within the test budget.
	LeaseTTL time.Duration
	// HeartbeatEvery overrides the lease renewal period (0 derives it from
	// LeaseTTL).
	HeartbeatEvery time.Duration
	// DegradedOnWALFailure routes a server WAL append/fsync failure to
	// read-only degraded mode instead of fail-stop.
	DegradedOnWALFailure bool
	// Replicated deploys a warm standby next to the server: the repository
	// and participant redo logs ship to it live, and on primary death the
	// workstations promote it and move their sessions over (in-process
	// transport only; DESIGN.md §5.4).
	Replicated bool
	// SyncReplication makes every commit wait for the standby's ack, so a
	// checkin the designer saw succeed is durable at both sites. Requires
	// Replicated.
	SyncReplication bool
}

// Workload is the seeded operation stream driven against the topology.
type Workload struct {
	// Mix weights the designer operations (sim.OpMix, seeded).
	Mix sim.OpMix
	// Ops is the total number of operations in the fault phase.
	Ops int
	// Concurrent drives each workstation from its own goroutine instead of
	// round-robin from one driver.
	Concurrent bool
	// CheckpointEvery runs an explicit checkpoint after every N sequential
	// operations (0 checkpoints only where a fault asks for it). With a
	// generous CheckpointMaxChain this grows a multi-element incremental
	// chain for the restart-from-chain scenarios.
	CheckpointEvery int
}

// Fault is the chaos applied while the workload runs. The zero value is a
// fault-free scenario (oracles still run).
type Fault struct {
	// Point is a named fault point to arm one-shot (wal.Crash*,
	// repo.CrashSnapshot*, rpc.Fault*, txn.Fault*); empty arms nothing.
	Point string
	// Skip lets that many traversals pass before the point fires.
	Skip int
	// CrashServer crashes and restarts the server once the armed point has
	// fired (or at the workload midpoint when Point is empty).
	CrashServer bool
	// TornTail appends garbage to the repository WAL's active segment
	// while the server is down, simulating a torn partial write.
	TornTail bool
	// TornManifest appends garbage to the snapshot chain manifest while
	// the server is down, simulating a torn incremental-checkpoint append.
	// Recovery must keep the longest valid prefix and lose nothing.
	TornManifest bool
	// CrashWS crashes and restarts workstation 0 at the workload midpoint
	// (cache epoch bump; sequential workloads only).
	CrashWS bool
	// DropCallbacks arms rpc.FaultNotifyDrop for the whole run, so every
	// cache-invalidation callback is dropped.
	DropCallbacks bool
	// RaceCheckpoint runs explicit checkpoints in a background loop while
	// the workload writes (how the checkpoint-protocol points get
	// traversed under load).
	RaceCheckpoint bool
	// VanishWS kills workstation 0 at the workload midpoint WITHOUT
	// restarting it (sequential in-process workloads only): its heartbeats
	// stop, the lease expires, and the reaper reclaims the footprint. The
	// driver verifies reclamation within 2×LeaseTTL, proves a surviving
	// designer can then commit, and finally revives the workstation so
	// Rejoin resumes its recovered DOP context.
	VanishWS bool
	// VanishMid2PC additionally leaves workstation 0 mid-checkin at vanish
	// time: a derivation lock held by a dangling DOP and a staged-but-
	// unprepared checkin branch on the server. The reaper must presume-abort
	// the branch and free the lock for the next designer. Implies VanishWS.
	VanishMid2PC bool
	// PartitionWS simulates a heartbeat partition of workstation 0 (armed
	// txn.FaultHeartbeatDrop) long enough for its lease to be reaped while
	// the client stays alive, then heals it: the next heartbeat sees
	// ErrNoLease, auto-rejoins, and the pre-partition DOP resumes.
	PartitionWS bool
	// DiskFull arms wal.FaultAppendSync (after Skip traversals) so a server
	// WAL append fails mid-run. With Topology.DegradedOnWALFailure the
	// server latches read-only degraded mode: the driver verifies reads
	// still serve, mutations fail fast, the health endpoint reports
	// "degraded", and a restart restores writability.
	DiskFull bool
	// KillPrimary crashes the primary server mid-workload WITHOUT restarting
	// it. The workstations' heartbeat loops must drive the takeover —
	// promote the warm standby, rejoin, resume — within 2×heartbeat, and no
	// committed checkin may be lost (requires Topology.Replicated).
	KillPrimary bool
	// SplitBrain partitions a LIVE primary from every workstation
	// mid-workload: the clients promote the standby while the old primary
	// keeps running. Once the partition heals, the deposed primary's next
	// commit must be refused with rpc.ErrStaleEpoch before any split-brain
	// write is acknowledged (requires Topology.Replicated).
	SplitBrain bool
	// CrashStandby kills the warm standby mid-workload: a synchronous
	// primary must degrade to trailing replication and keep committing
	// instead of blocking designers; after the standby restarts, the sender
	// must catch it up and return to sync mode (requires
	// Topology.Replicated + SyncReplication).
	CrashStandby bool
}

// Scenario is one entry of the matrix: topology × workload × fault, always
// checked by the full oracle suite.
type Scenario struct {
	// Name labels the subtest.
	Name string
	// Topo is the deployment shape.
	Topo Topology
	// Load is the seeded workload.
	Load Workload
	// Fault is the chaos applied mid-run.
	Fault Fault
}

// KnownFaultPoints is the full catalog of named fault points across the
// stack (checkpoint protocol, 2PC engine, server-TM, lease lifecycle, WAL
// durability, notifier, replication shipping). The coverage report lists
// every one of them, so a point that silently stops firing is visible.
func KnownFaultPoints() []string {
	out := make([]string, 0, len(repo.CrashPoints)+len(rpc.FaultPoints)+len(txn.FaultPoints)+len(repl.FaultPoints)+1)
	out = append(out, repo.CrashPoints...)
	out = append(out, rpc.FaultPoints...)
	out = append(out, txn.FaultPoints...)
	out = append(out, repl.FaultPoints...)
	out = append(out, wal.FaultAppendSync)
	return out
}

// covMu guards the process-wide coverage accumulation.
var covMu sync.Mutex

// covHits / covFired accumulate per-point counters across every Run in the
// process.
var covHits, covFired map[string]uint64

// recordCoverage folds one scenario registry into the process-wide totals.
func recordCoverage(reg *fault.Registry) {
	covMu.Lock()
	defer covMu.Unlock()
	if covHits == nil {
		covHits = make(map[string]uint64)
		covFired = make(map[string]uint64)
	}
	for _, s := range reg.Snapshot() {
		covHits[s.Point] += s.Hits
		covFired[s.Point] += s.Fired
	}
}

// CoverageReport renders the aggregated fault-point coverage of every
// scenario run so far in this process: one "point hits fired" row per known
// point (zero rows included). The scenario test binary writes it to the
// path named by SCENARIO_COVERAGE_OUT.
func CoverageReport() string {
	covMu.Lock()
	defer covMu.Unlock()
	var b strings.Builder
	b.WriteString("point\thits\tfired\n")
	for _, p := range sortedPoints() {
		fmt.Fprintf(&b, "%s\t%d\t%d\n", p, covHits[p], covFired[p])
	}
	return b.String()
}

// sortedPoints returns the union of known and observed points, sorted.
// covMu must be held.
func sortedPoints() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range KnownFaultPoints() {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for p := range covHits {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
