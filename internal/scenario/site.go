package scenario

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/fault"
	"concord/internal/feature"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/txn"
	"concord/internal/vlsi"
	"concord/internal/wal"
)

// errUnsupported reports a site operation the deployment cannot express
// (e.g. delegation without a cooperation manager); the driver falls back.
var errUnsupported = errors.New("scenario: operation unsupported by this deployment")

// site abstracts one deployed CONCORD instance so the driver and oracles
// run identically over the in-process and TCP deployments.
type site interface {
	// begin starts a DOP with an explicit ID on workstation ws.
	begin(ws int, dopID, da string) (*txn.DOP, error)
	// repo returns the live server repository (nil while crashed).
	repo() *repo.Repository
	// catalog returns the shared DOT catalog (for twin replay).
	catalog() *catalog.Catalog
	// newDA creates and starts a top-level design area.
	newDA(id string) error
	// delegate creates and starts a sub-DA under parent (errUnsupported
	// when the deployment has no cooperation manager).
	delegate(parent, child string) error
	// checkpoint snapshots the repository and compacts the server logs.
	checkpoint() error
	// crashRestartServer kills the server site and recovers it from disk;
	// tornTail corrupts the repository WAL's active segment in between and
	// tornManifest corrupts the snapshot chain manifest's tail.
	crashRestartServer(tornTail, tornManifest bool) error
	// crashRestartWS crashes workstation ws and re-attaches a fresh
	// incarnation (cache epoch bump).
	crashRestartWS(ws int) error
	// serverTM returns the live server transaction manager (nil while the
	// server is crashed); lease scenarios inspect and force-reap through it.
	serverTM() *txn.ServerTM
	// vanishWS kills workstation ws WITHOUT restarting it: heartbeats stop
	// and the lease is left to expire. reviveWS boots its next incarnation.
	vanishWS(ws int) error
	// reviveWS boots the next incarnation of a vanished workstation and
	// reports how many persisted DOP contexts it recovered.
	reviveWS(ws int) (int, error)
	// killPrimary crashes the primary server WITHOUT restart: the warm
	// standby keeps running and client-driven takeover must promote it
	// (errUnsupported without a replicated deployment).
	killPrimary() error
	// partitionPrimary isolates a LIVE primary from every workstation (the
	// split-brain precondition); healPrimary reconnects it.
	partitionPrimary() error
	healPrimary() error
	// crashStandby kills the warm standby (a synchronous primary degrades to
	// trailing); restartStandby recovers it from its durable replicated
	// state so the sender can catch it back up.
	crashStandby() error
	restartStandby() error
	// replHealth reports the deployment's replication role, epoch and mode.
	replHealth() (core.ReplHealth, error)
	// standbyRepo returns the standby's live follower repository (nil while
	// crashed or unreplicated).
	standbyRepo() *repo.Repository
	// primaryRepo returns the original primary's repository even after a
	// promotion deposed it (the split-brain oracle pokes it directly).
	primaryRepo() *repo.Repository
	// wsServerAddr reports which server address workstation ws's session
	// currently targets (client-driven takeover detection).
	wsServerAddr(ws int) (string, error)
	// health reports the server's degradation mode and latched cause.
	health() (mode, cause string)
	// serverRepoDir is the repository directory for the twin-replay oracle.
	serverRepoDir() string
	// close shuts everything down (idempotent).
	close()
}

// scenarioSpec is the permissive design goal shared by all scenario DAs.
func scenarioSpec() *feature.Spec {
	return feature.MustSpec(feature.Range("area-limit", "area", 0, 1e12))
}

// wsName names workstation i.
func wsName(i int) string { return fmt.Sprintf("ws%02d", i) }

// corruptWALTail appends garbage to the highest-numbered segment of the WAL
// directory at walDir, simulating a torn partial write of the next record.
// Committed records precede the garbage, so recovery must truncate the tail
// without losing any of them.
func corruptWALTail(walDir string) error {
	entries, err := os.ReadDir(walDir)
	if err != nil {
		return err
	}
	var last string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") && (last == "" || e.Name() > last) {
			last = e.Name()
		}
	}
	if last == "" {
		return fmt.Errorf("scenario: no WAL segment in %s", walDir)
	}
	f, err := os.OpenFile(filepath.Join(walDir, last), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	garbage := make([]byte, 37)
	for i := range garbage {
		garbage[i] = 0xA5
	}
	_, err = f.Write(garbage)
	return err
}

// corruptManifestTail appends garbage to the snapshot chain manifest of the
// repository at repoDir, simulating a crash mid-append of an incremental
// checkpoint's manifest frame. The WAL mark only ever covers fsync-durable
// entries, so recovery must shed the garbage tail without losing anything.
func corruptManifestTail(repoDir string) error {
	f, err := os.OpenFile(filepath.Join(repoDir, repo.ManifestFileName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte{0xA5, 0xA5, 0xA5, 0xA5, 0x00, 0xFF, 0x17})
	return err
}

// inprocSite deploys a core.System: the single-process deployment with the
// cooperation manager, callback channel and full crash/restart support.
type inprocSite struct {
	sys *core.System
	dir string

	mu sync.Mutex
	ws []*core.Workstation
}

// newInProcSite boots a core.System with n workstations.
func newInProcSite(dir string, topo Topology, reg *fault.Registry) (*inprocSite, error) {
	sys, err := core.NewSystem(core.Options{
		Dir:                  dir,
		RegisterTypes:        vlsi.RegisterCatalog,
		VolatileWorkstations: topo.VolatileWS,
		SegmentBytes:         topo.SegmentBytes,
		CheckpointMaxChain:   topo.CheckpointMaxChain,
		QuiescentCheckpoint:  topo.QuiescentCheckpoint,
		LeaseTTL:             topo.LeaseTTL,
		HeartbeatEvery:       topo.HeartbeatEvery,
		DegradedOnWALFailure: topo.DegradedOnWALFailure,
		Replicated:           topo.Replicated,
		SyncReplication:      topo.SyncReplication,
		Faults:               reg,
	})
	if err != nil {
		return nil, err
	}
	s := &inprocSite{sys: sys, dir: dir}
	for i := 0; i < topo.Workstations; i++ {
		w, err := sys.AddWorkstation(wsName(i))
		if err != nil {
			sys.Close()
			return nil, err
		}
		s.ws = append(s.ws, w)
	}
	return s, nil
}

func (s *inprocSite) begin(ws int, dopID, da string) (*txn.DOP, error) {
	s.mu.Lock()
	w := s.ws[ws]
	s.mu.Unlock()
	return w.Begin(dopID, da)
}

func (s *inprocSite) repo() *repo.Repository    { return s.sys.Repo() }
func (s *inprocSite) catalog() *catalog.Catalog { return s.sys.Catalog() }

// serverRepoDir names the directory holding the ACTIVE repository: after a
// failover scenario promoted the warm standby, the twin-replay oracle must
// replay the replicated state it now serves, not the deposed primary's.
func (s *inprocSite) serverRepoDir() string {
	if s.sys.ReplHealth().StandbyPromoted {
		return filepath.Join(s.dir, "standby")
	}
	return filepath.Join(s.dir, "server")
}

func (s *inprocSite) newDA(id string) error {
	cfg := coop.Config{ID: id, DOT: vlsi.DOTFloorplan, Spec: scenarioSpec(), Designer: id}
	if err := s.sys.CM().InitDesign(cfg); err != nil {
		return err
	}
	return s.sys.CM().Start(id)
}

func (s *inprocSite) delegate(parent, child string) error {
	cfg := coop.Config{ID: child, DOT: vlsi.DOTFloorplan, Spec: scenarioSpec(), Designer: child}
	if err := s.sys.CM().CreateSubDA(parent, cfg); err != nil {
		return err
	}
	return s.sys.CM().Start(child)
}

func (s *inprocSite) checkpoint() error { return s.sys.Checkpoint() }

func (s *inprocSite) crashRestartServer(tornTail, tornManifest bool) error {
	if err := s.sys.CrashServer(); err != nil {
		return err
	}
	if tornTail {
		if err := corruptWALTail(filepath.Join(s.serverRepoDir(), "repo.wal")); err != nil {
			return err
		}
	}
	if tornManifest {
		if err := corruptManifestTail(s.serverRepoDir()); err != nil {
			return err
		}
	}
	return s.sys.RestartServer()
}

func (s *inprocSite) crashRestartWS(ws int) error {
	if err := s.vanishWS(ws); err != nil {
		return err
	}
	_, err := s.reviveWS(ws)
	return err
}

func (s *inprocSite) serverTM() *txn.ServerTM { return s.sys.ServerTM() }

func (s *inprocSite) vanishWS(ws int) error {
	return s.sys.CrashWorkstation(wsName(ws))
}

func (s *inprocSite) reviveWS(ws int) (int, error) {
	w, err := s.sys.AddWorkstation(wsName(ws))
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.ws[ws] = w
	s.mu.Unlock()
	return len(w.RecoveredDOPs()), nil
}

func (s *inprocSite) killPrimary() error { return s.sys.CrashServer() }
func (s *inprocSite) partitionPrimary() error {
	s.sys.Transport().Partition(core.ServerAddr)
	return nil
}
func (s *inprocSite) healPrimary() error    { s.sys.Transport().Heal(core.ServerAddr); return nil }
func (s *inprocSite) crashStandby() error   { return s.sys.CrashStandby() }
func (s *inprocSite) restartStandby() error { return s.sys.RestartStandby() }

func (s *inprocSite) replHealth() (core.ReplHealth, error) { return s.sys.ReplHealth(), nil }
func (s *inprocSite) standbyRepo() *repo.Repository        { return s.sys.StandbyRepo() }
func (s *inprocSite) primaryRepo() *repo.Repository        { return s.sys.PrimaryRepo() }

func (s *inprocSite) wsServerAddr(ws int) (string, error) {
	s.mu.Lock()
	w := s.ws[ws]
	s.mu.Unlock()
	return w.TM().ServerAddr(), nil
}

func (s *inprocSite) health() (string, string) { return s.sys.Health() }

func (s *inprocSite) close() {
	s.mu.Lock()
	sys := s.sys
	s.sys = nil
	s.mu.Unlock()
	if sys != nil {
		sys.Close()
	}
}

// tcpSite deploys the LAN shape of Sect. 5.1 over real sockets: the server
// (repository, server-TM, 2PC participant) behind one rpc.TCP listener and
// one ClientTM per workstation, each with its own TCP transport — the same
// assembly cmd/concordd performs. Cache-invalidation callbacks flow over the
// sockets too: each workstation serves its cache handler on a loopback
// listener of its own transport and the server's notifier dials back to it.
// No cooperation manager: delegation falls back to plain design areas.
type tcpSite struct {
	cat         *catalog.Catalog
	reg         *fault.Registry
	dir         string
	addr        string
	segBytes    int64
	maxChain    int
	quiescent   bool
	leaseTTL    time.Duration
	degradedWAL bool

	mu          sync.Mutex
	r           *repo.Repository
	plog        *wal.Log
	stm         *txn.ServerTM
	participant *rpc.Participant
	scopes      *lock.ScopeTable
	srv         *rpc.TCP
	notifier    *rpc.Notifier
	epoch       int

	tms    []*txn.ClientTM
	trans  []*rpc.TCP
	closed bool
}

// newTCPSite assembles the server and n workstations over real sockets.
func newTCPSite(dir string, topo Topology, reg *fault.Registry) (*tcpSite, error) {
	cat := catalog.New()
	if err := vlsi.RegisterCatalog(cat); err != nil {
		return nil, err
	}
	s := &tcpSite{
		cat: cat, reg: reg, dir: dir,
		segBytes: topo.SegmentBytes, maxChain: topo.CheckpointMaxChain,
		quiescent: topo.QuiescentCheckpoint,
		leaseTTL:  topo.LeaseTTL, degradedWAL: topo.DegradedOnWALFailure,
	}
	if err := s.startServer(); err != nil {
		return nil, err
	}
	for i := 0; i < topo.Workstations; i++ {
		wsDir := ""
		if !topo.VolatileWS {
			wsDir = filepath.Join(dir, wsName(i))
		}
		tr := rpc.NewTCP()
		client := rpc.NewClient(tr, wsName(i))
		client.Backoff = time.Millisecond
		tm, _, err := txn.NewClientTM(wsName(i), client, s.addr, wsDir)
		if err != nil {
			s.close()
			return nil, err
		}
		tm.Coordinator().Faults = reg
		// Callback endpoint: the workstation listens on its own transport
		// and registers the kernel-chosen address with the server so
		// invalidations arrive over a real socket.
		cbAddr, err := tr.Listen("127.0.0.1:0", rpc.Dedup(tm.Cache().Handler()))
		if err != nil {
			tm.Close()
			s.close()
			return nil, err
		}
		tm.SetCallbackAddr(cbAddr)
		s.trans = append(s.trans, tr)
		s.tms = append(s.tms, tm)
	}
	return s, nil
}

// startServer opens (or recovers) the durable server state and serves it on
// s.addr (chosen by the kernel on first boot, reused on restart).
func (s *tcpSite) startServer() error {
	sdir := filepath.Join(s.dir, "server")
	r, err := repo.Open(s.cat, repo.Options{
		Dir: sdir, Sync: true, SegmentBytes: s.segBytes,
		CheckpointMaxChain: s.maxChain, QuiescentCheckpoint: s.quiescent,
		DegradedOnWALFailure: s.degradedWAL,
		Faults:               s.reg,
	})
	if err != nil {
		return err
	}
	plog, err := wal.Open(filepath.Join(sdir, "participant.wal"), wal.Options{SyncOnAppend: true})
	if err != nil {
		r.Close()
		return err
	}
	scopes := lock.NewScopeTable()
	// Without a cooperation manager to rebuild scope ownership at restart,
	// reseed it from the recovered derivation graphs: every surviving
	// version belongs to its DA's scope.
	for _, da := range r.GraphNames() {
		g, err := r.Graph(da)
		if err != nil {
			continue
		}
		for _, id := range g.IDs() {
			scopes.Own(da, string(id)) //nolint:errcheck // reseed is idempotent
		}
	}
	stm := txn.NewServerTM(r, lock.NewManager(), scopes)
	stm.LockTimeout = 2 * time.Second
	stm.Faults = s.reg
	stm.LeaseTTL = s.leaseTTL
	participant, err := rpc.NewParticipant(stm, plog)
	if err != nil {
		plog.Close()
		r.Close()
		return err
	}
	participant.Faults = s.reg
	srv := rpc.NewTCP()
	listen := s.addr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	bound, err := srv.ListenDeadline(listen, rpc.DedupDeadline(stm.DeadlineHandler(participant)))
	if err != nil {
		plog.Close()
		r.Close()
		return err
	}
	// Callback channel over the same transport: version changes fan out to
	// the workstations' callback listeners. The client ID is
	// incarnation-unique so workstation-side dedup never mistakes a
	// restarted server's callbacks for replays.
	s.mu.Lock()
	s.epoch++
	cbClient := rpc.NewClient(srv, fmt.Sprintf("server-cb@%d", s.epoch))
	s.mu.Unlock()
	cbClient.Backoff = time.Millisecond
	notifier := rpc.NewNotifier(cbClient, 0)
	notifier.SetFaults(s.reg)
	stm.SetNotifier(notifier)
	r.SetChangeHook(stm.VersionChanged)
	s.mu.Lock()
	s.r, s.plog, s.stm, s.participant, s.scopes, s.srv = r, plog, stm, participant, scopes, srv
	s.notifier = notifier
	if s.addr == "" {
		s.addr = bound
	}
	s.mu.Unlock()
	return nil
}

func (s *tcpSite) begin(ws int, dopID, da string) (*txn.DOP, error) {
	return s.tms[ws].Begin(dopID, da)
}

func (s *tcpSite) repo() *repo.Repository {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r
}

func (s *tcpSite) catalog() *catalog.Catalog { return s.cat }
func (s *tcpSite) serverRepoDir() string     { return filepath.Join(s.dir, "server") }

func (s *tcpSite) newDA(id string) error { return s.repo().CreateGraph(id) }

func (s *tcpSite) delegate(string, string) error { return errUnsupported }

func (s *tcpSite) checkpoint() error {
	s.mu.Lock()
	r, p := s.r, s.participant
	s.mu.Unlock()
	if r == nil {
		return errors.New("scenario: server down")
	}
	if err := r.Checkpoint(); err != nil {
		return err
	}
	return p.Checkpoint()
}

func (s *tcpSite) crashRestartServer(tornTail, tornManifest bool) error {
	s.mu.Lock()
	r, plog, srv, notifier := s.r, s.plog, s.srv, s.notifier
	s.r, s.plog, s.stm, s.participant, s.srv, s.notifier = nil, nil, nil, nil, nil, nil
	s.mu.Unlock()
	if notifier != nil {
		notifier.Close()
	}
	if srv != nil {
		srv.Close()
	}
	if plog != nil {
		plog.Close()
	}
	if r != nil {
		r.Close()
	}
	if tornTail {
		if err := corruptWALTail(filepath.Join(s.serverRepoDir(), "repo.wal")); err != nil {
			return err
		}
	}
	if tornManifest {
		if err := corruptManifestTail(s.serverRepoDir()); err != nil {
			return err
		}
	}
	if err := s.startServer(); err != nil {
		return err
	}
	// Resolve in-doubt checkins against the workstation coordinators
	// (presumed abort for unknown outcomes), as core.RestartServer does.
	s.mu.Lock()
	participant := s.participant
	s.mu.Unlock()
	return participant.Resolve(func(txid string) rpc.Outcome {
		for _, tm := range s.tms {
			if tm.Coordinator().Outcome(txid) == rpc.OutcomeCommitted {
				return rpc.OutcomeCommitted
			}
		}
		return rpc.OutcomeAborted
	})
}

func (s *tcpSite) crashRestartWS(int) error { return errUnsupported }

func (s *tcpSite) serverTM() *txn.ServerTM {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stm
}

func (s *tcpSite) vanishWS(int) error        { return errUnsupported }
func (s *tcpSite) reviveWS(int) (int, error) { return 0, errUnsupported }

// The TCP deployment carries no warm standby: every replication operation is
// unsupported (the matrix keeps replication faults on the in-process shape).
func (s *tcpSite) killPrimary() error                   { return errUnsupported }
func (s *tcpSite) partitionPrimary() error              { return errUnsupported }
func (s *tcpSite) healPrimary() error                   { return errUnsupported }
func (s *tcpSite) crashStandby() error                  { return errUnsupported }
func (s *tcpSite) restartStandby() error                { return errUnsupported }
func (s *tcpSite) replHealth() (core.ReplHealth, error) { return core.ReplHealth{}, errUnsupported }
func (s *tcpSite) standbyRepo() *repo.Repository        { return nil }
func (s *tcpSite) primaryRepo() *repo.Repository        { return s.repo() }
func (s *tcpSite) wsServerAddr(int) (string, error)     { return "", errUnsupported }

func (s *tcpSite) health() (string, string) {
	s.mu.Lock()
	r := s.r
	s.mu.Unlock()
	if r == nil {
		return "down", "server crashed"
	}
	h := r.Health()
	return h.Mode, h.Cause
}

func (s *tcpSite) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	r, plog, srv, notifier := s.r, s.plog, s.srv, s.notifier
	s.r, s.plog, s.stm, s.participant, s.srv, s.notifier = nil, nil, nil, nil, nil, nil
	s.mu.Unlock()
	if notifier != nil {
		notifier.Close()
	}
	for _, tm := range s.tms {
		tm.Close()
	}
	for _, tr := range s.trans {
		tr.Close()
	}
	if srv != nil {
		srv.Close()
	}
	if plog != nil {
		plog.Close()
	}
	if r != nil {
		r.Close()
	}
}
