package scenario

import (
	"fmt"
	"os"
	"testing"

	"concord/internal/leakcheck"
)

// TestMain runs the matrix under the goroutine-leak guard (heartbeats, the
// lease reaper, and the notifier must all terminate with their sites) and,
// when SCENARIO_COVERAGE_OUT names a path, writes the aggregated
// fault-point coverage report there (CI uploads it as an artifact).
func TestMain(m *testing.M) {
	code := leakcheck.Main(m)
	if path := os.Getenv("SCENARIO_COVERAGE_OUT"); path != "" {
		if err := os.WriteFile(path, []byte(CoverageReport()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: write coverage report: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// TestScenarioMatrixShort runs the CI matrix: one subtest per entry, each
// asserting the full recovery-oracle suite.
func TestScenarioMatrixShort(t *testing.T) {
	for _, sc := range Short() {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			Run(t, sc)
		})
	}
}

// TestScenarioMatrixLong runs the exhaustive matrix; gated behind
// CONCORD_SCENARIOS_LONG=1 (reached via `make scenarios`).
func TestScenarioMatrixLong(t *testing.T) {
	if os.Getenv("CONCORD_SCENARIOS_LONG") == "" {
		t.Skip("set CONCORD_SCENARIOS_LONG=1 (or run `make scenarios`) for the long matrix")
	}
	for _, sc := range Long() {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			Run(t, sc)
		})
	}
}

// TestShortMatrixShape pins the acceptance floor: the short matrix keeps at
// least 12 distinct entries and distinct names.
func TestShortMatrixShape(t *testing.T) {
	short := Short()
	if len(short) < 12 {
		t.Fatalf("short matrix has %d entries, want >= 12", len(short))
	}
	seen := make(map[string]bool)
	for _, sc := range short {
		if sc.Name == "" || seen[sc.Name] {
			t.Fatalf("short matrix entry %q duplicated or unnamed", sc.Name)
		}
		seen[sc.Name] = true
	}
}
