package feature

import (
	"strings"
	"testing"
	"testing/quick"

	"concord/internal/catalog"
)

func floorplanObj(area, aspect float64) *catalog.Object {
	return catalog.NewObject("floorplan").
		Set("area", catalog.Float(area)).
		Set("aspect", catalog.Float(aspect)).
		Set("routed", catalog.Bool(true))
}

func TestNewSpecValidation(t *testing.T) {
	if _, err := NewSpec(Feature{Kind: KindRange, Attr: "a"}); err == nil {
		t.Error("unnamed feature accepted")
	}
	if _, err := NewSpec(Range("a", "x", 0, 1), Range("a", "y", 0, 1)); err == nil {
		t.Error("duplicate feature accepted")
	}
	if _, err := NewSpec(Range("bad", "x", 5, 1)); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestEvaluateRangeAndEquals(t *testing.T) {
	spec := MustSpec(
		Range("area-limit", "area", 0, 100),
		Range("aspect", "aspect", 0.5, 2),
		Equals("routed", "routed", catalog.Bool(true)),
	)
	q := spec.Evaluate(floorplanObj(80, 1.0), nil)
	if !q.Final() {
		t.Fatalf("expected final, missing %v", q.Missing)
	}
	q = spec.Evaluate(floorplanObj(120, 1.0), nil)
	if q.Final() {
		t.Fatal("area 120 should fail area-limit")
	}
	if len(q.Missing) != 1 || q.Missing[0] != "area-limit" {
		t.Fatalf("missing = %v", q.Missing)
	}
	if q.Fraction() != 2.0/3.0 {
		t.Fatalf("fraction = %g", q.Fraction())
	}
}

func TestEvaluateMissingAttributeUnfulfilled(t *testing.T) {
	spec := MustSpec(Range("w", "width", 0, 10))
	o := catalog.NewObject("floorplan") // no width attribute
	if q := spec.Evaluate(o, nil); q.Final() {
		t.Fatal("feature on absent attribute must not be fulfilled")
	}
}

func TestEvaluateNilObject(t *testing.T) {
	spec := MustSpec(Range("w", "width", 0, 10))
	q := spec.Evaluate(nil, nil)
	if q.Final() || len(q.Missing) != 1 {
		t.Fatalf("nil object quality = %+v", q)
	}
}

func TestEvaluateNonNumericRangeAttr(t *testing.T) {
	spec := MustSpec(Range("w", "width", 0, 10))
	o := catalog.NewObject("x").Set("width", catalog.Str("wide"))
	if q := spec.Evaluate(o, nil); q.Final() {
		t.Fatal("range over string attribute must not hold")
	}
}

func TestPredicateFeature(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterTool("drc", func(o *catalog.Object) bool {
		return catalog.NumAttr(o, "violations") == 0
	})
	spec := MustSpec(Predicate("drc-clean", "drc"))
	pass := catalog.NewObject("layout").Set("violations", catalog.Int(0))
	fail := catalog.NewObject("layout").Set("violations", catalog.Int(3))
	if !spec.Evaluate(pass, reg).Final() {
		t.Error("clean layout should pass drc feature")
	}
	if spec.Evaluate(fail, reg).Final() {
		t.Error("dirty layout should fail drc feature")
	}
	// Unknown tool and nil registry are conservatively unfulfilled.
	if spec.Evaluate(pass, nil).Final() {
		t.Error("nil registry should not fulfil predicate")
	}
	other := MustSpec(Predicate("x", "ghost"))
	if other.Evaluate(pass, reg).Final() {
		t.Error("unknown tool should not fulfil predicate")
	}
}

func TestDeepFeature(t *testing.T) {
	spec := MustSpec(Feature{Name: "all-areas", Kind: KindRange, Attr: "area", Min: 0, Max: 10, Deep: true})
	root := catalog.NewObject("block")
	root.AddPart("cells", catalog.NewObject("stdcell").Set("area", catalog.Float(5)))
	root.AddPart("cells", catalog.NewObject("stdcell").Set("area", catalog.Float(8)))
	if !spec.Evaluate(root, nil).Final() {
		t.Error("all parts within bound should hold")
	}
	root.AddPart("cells", catalog.NewObject("stdcell").Set("area", catalog.Float(11)))
	if spec.Evaluate(root, nil).Final() {
		t.Error("one part out of bound should fail")
	}
	// Deep feature where no object carries the attribute: unfulfilled.
	empty := catalog.NewObject("block")
	if spec.Evaluate(empty, nil).Final() {
		t.Error("deep feature with no applicable attribute should not hold")
	}
}

func TestCovers(t *testing.T) {
	spec := MustSpec(Range("a", "x", 0, 10), Range("b", "y", 0, 10))
	o := catalog.NewObject("t").Set("x", catalog.Int(5)).Set("y", catalog.Int(50))
	q := spec.Evaluate(o, nil)
	if !q.Covers([]string{"a"}) {
		t.Error("should cover fulfilled feature a")
	}
	if q.Covers([]string{"a", "b"}) {
		t.Error("should not cover unfulfilled feature b")
	}
	if !q.Covers(nil) {
		t.Error("empty requirement always covered")
	}
}

func TestIsRefinementOf(t *testing.T) {
	base := MustSpec(Range("area", "area", 0, 100), Equals("tech", "tech", catalog.Str("cmos")))
	cases := []struct {
		name string
		sub  *Spec
		want bool
	}{
		{"identical", MustSpec(Range("area", "area", 0, 100), Equals("tech", "tech", catalog.Str("cmos"))), true},
		{"narrowed", MustSpec(Range("area", "area", 10, 90), Equals("tech", "tech", catalog.Str("cmos"))), true},
		{"added feature", MustSpec(Range("area", "area", 0, 100), Equals("tech", "tech", catalog.Str("cmos")), Range("h", "height", 0, 5)), true},
		{"widened", MustSpec(Range("area", "area", 0, 200), Equals("tech", "tech", catalog.Str("cmos"))), false},
		{"dropped", MustSpec(Range("area", "area", 0, 100)), false},
		{"changed equals", MustSpec(Range("area", "area", 0, 100), Equals("tech", "tech", catalog.Str("nmos"))), false},
		{"changed attr", MustSpec(Range("area", "width", 0, 100), Equals("tech", "tech", catalog.Str("cmos"))), false},
	}
	for _, tc := range cases {
		if got := tc.sub.IsRefinementOf(base); got != tc.want {
			t.Errorf("%s: IsRefinementOf = %t, want %t", tc.name, got, tc.want)
		}
	}
	if !base.IsRefinementOf(nil) {
		t.Error("anything refines the nil spec")
	}
}

func TestWithFeatureDoesNotMutate(t *testing.T) {
	base := MustSpec(Range("a", "x", 0, 10))
	ext := base.WithFeature(Range("b", "y", 0, 5))
	if base.Len() != 1 || ext.Len() != 2 {
		t.Fatalf("lens = %d, %d", base.Len(), ext.Len())
	}
	if _, ok := ext.Feature("a"); !ok {
		t.Error("extension lost base feature")
	}
}

func TestSpecStringAndNames(t *testing.T) {
	s := MustSpec(Range("b-range", "y", 0, 5), Range("a-range", "x", 0, 1))
	names := s.Names()
	if len(names) != 2 || names[0] != "a-range" || names[1] != "b-range" {
		t.Fatalf("Names = %v", names)
	}
	if str := s.String(); !strings.Contains(str, "a-range") || !strings.Contains(str, "b-range") {
		t.Fatalf("String = %q", str)
	}
}

func TestEmptySpecIsAlwaysFinal(t *testing.T) {
	s := MustSpec()
	q := s.Evaluate(catalog.NewObject("t"), nil)
	if !q.Final() || q.Fraction() != 1 {
		t.Fatalf("empty spec quality = %+v", q)
	}
	var nilSpec *Spec
	if !nilSpec.Empty() || nilSpec.Len() != 0 {
		t.Error("nil spec should be empty")
	}
}

// Property: narrowing a fulfilled range feature around the actual value
// keeps the refinement relation and the evaluation result consistent.
func TestQuickRangeNarrowing(t *testing.T) {
	prop := func(v int16, lo, hi uint8) bool {
		val := float64(v)
		min := val - float64(lo) - 1
		max := val + float64(hi) + 1
		base := MustSpec(Range("r", "x", min, max))
		narrowed := MustSpec(Range("r", "x", min+0.5, max-0.5))
		if !narrowed.IsRefinementOf(base) {
			return false
		}
		if base.IsRefinementOf(narrowed) && (lo > 0 || hi > 0) {
			return false // widening must not count as refinement
		}
		o := catalog.NewObject("t").Set("x", catalog.Float(val))
		return base.Evaluate(o, nil).Final()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Evaluate partitions the feature set: fulfilled + missing equals
// the spec's feature names exactly.
func TestQuickEvaluatePartition(t *testing.T) {
	prop := func(vals []int8) bool {
		feats := make([]Feature, 0, len(vals))
		o := catalog.NewObject("t")
		for i, v := range vals {
			name := "f" + string(rune('a'+i%26)) + string(rune('0'+i/26%10))
			feats = append(feats, Range(name, name, -10, 10))
			o.Set(name, catalog.Int(int64(v)))
		}
		s, err := NewSpec(feats...)
		if err != nil {
			return true // duplicate synthetic names: skip
		}
		q := s.Evaluate(o, nil)
		got := make(map[string]bool)
		for _, n := range q.Fulfilled {
			got[n] = true
		}
		for _, n := range q.Missing {
			if got[n] {
				return false // overlap
			}
			got[n] = true
		}
		if len(got) != s.Len() {
			return false
		}
		for _, n := range s.Names() {
			if !got[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
