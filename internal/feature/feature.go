// Package feature implements CONCORD design specifications (SPEC).
//
// A design activity's goal is a set of named features the design object
// versions (DOVs) under construction should possess (Sect. 4.1, after
// [Kä91]). A feature constrains the value of an elementary data item to a
// range, requires equality with a constant, or demands that the object pass
// a test-tool predicate. The quality state of a DOV is the subset of
// fulfilled features, determined by the Evaluate operation; a DOV is final
// when the whole feature set holds.
//
// Sub-DAs may only refine their specification — add features or restrict
// existing ones — which IsRefinementOf checks.
package feature

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"concord/internal/catalog"
)

// Kind enumerates the feature kinds.
type Kind uint8

// Feature kinds.
const (
	// KindRange constrains a numeric attribute of the object (or of any
	// part when Deep) to lie within [Min, Max].
	KindRange Kind = iota + 1
	// KindEquals requires an attribute to equal a constant value.
	KindEquals
	// KindPredicate requires a registered test tool to accept the object.
	KindPredicate
)

// Feature is one named property of a design specification.
type Feature struct {
	// Name identifies the feature within a SPEC.
	Name string
	// Kind selects the semantics of the remaining fields.
	Kind Kind
	// Attr is the attribute constrained by range/equals features.
	Attr string
	// Min and Max bound a range feature (inclusive).
	Min, Max float64
	// Want is the required constant of an equals feature.
	Want catalog.Value
	// Tool names the registered predicate of a test-tool feature.
	Tool string
	// Deep evaluates the constraint over the object and all parts: every
	// part carrying the attribute must satisfy it.
	Deep bool
}

// Range constructs a range feature on attr.
func Range(name, attr string, min, max float64) Feature {
	return Feature{Name: name, Kind: KindRange, Attr: attr, Min: min, Max: max}
}

// Equals constructs an equality feature on attr.
func Equals(name, attr string, want catalog.Value) Feature {
	return Feature{Name: name, Kind: KindEquals, Attr: attr, Want: want}
}

// Predicate constructs a test-tool feature referring to a tool registered in
// a Registry.
func Predicate(name, tool string) Feature {
	return Feature{Name: name, Kind: KindPredicate, Tool: tool}
}

// String renders the feature for diagnostics.
func (f Feature) String() string {
	switch f.Kind {
	case KindRange:
		return fmt.Sprintf("%s: %s in [%g, %g]", f.Name, f.Attr, f.Min, f.Max)
	case KindEquals:
		return fmt.Sprintf("%s: %s == %s", f.Name, f.Attr, f.Want)
	case KindPredicate:
		return fmt.Sprintf("%s: passes %s", f.Name, f.Tool)
	default:
		return f.Name
	}
}

// TestTool is a predicate applied by a test-tool feature. Implementations
// stand in for the paper's "particular test tool" the DOV must pass.
type TestTool func(*catalog.Object) bool

// Registry resolves test-tool names for predicate features. The zero value
// is usable; a nil Registry resolves nothing.
type Registry struct {
	tools map[string]TestTool
}

// NewRegistry returns an empty tool registry.
func NewRegistry() *Registry { return &Registry{tools: make(map[string]TestTool)} }

// RegisterTool binds a predicate name. Re-registering replaces the tool.
func (r *Registry) RegisterTool(name string, t TestTool) {
	if r.tools == nil {
		r.tools = make(map[string]TestTool)
	}
	r.tools[name] = t
}

// lookup returns the named tool, if any.
func (r *Registry) lookup(name string) (TestTool, bool) {
	if r == nil || r.tools == nil {
		return nil, false
	}
	t, ok := r.tools[name]
	return t, ok
}

// Spec is a design specification: the goal of a design activity expressed as
// a set of features, keyed by name.
type Spec struct {
	features map[string]Feature
}

// NewSpec builds a specification from features. Duplicate names are an error.
func NewSpec(features ...Feature) (*Spec, error) {
	s := &Spec{features: make(map[string]Feature, len(features))}
	for _, f := range features {
		if f.Name == "" {
			return nil, errors.New("feature: feature without name")
		}
		if _, dup := s.features[f.Name]; dup {
			return nil, fmt.Errorf("feature: duplicate feature %q", f.Name)
		}
		if f.Kind == KindRange && f.Min > f.Max {
			return nil, fmt.Errorf("feature: %s: Min > Max", f.Name)
		}
		s.features[f.Name] = f
	}
	return s, nil
}

// MustSpec is NewSpec that panics on error; for statically known specs.
func MustSpec(features ...Feature) *Spec {
	s, err := NewSpec(features...)
	if err != nil {
		panic(err)
	}
	return s
}

// Empty reports whether the spec has no features.
func (s *Spec) Empty() bool { return s == nil || len(s.features) == 0 }

// Len returns the number of features.
func (s *Spec) Len() int {
	if s == nil {
		return 0
	}
	return len(s.features)
}

// Feature returns the named feature.
func (s *Spec) Feature(name string) (Feature, bool) {
	if s == nil {
		return Feature{}, false
	}
	f, ok := s.features[name]
	return f, ok
}

// Names returns the feature names, sorted.
func (s *Spec) Names() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.features))
	for n := range s.features {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Features returns the features sorted by name.
func (s *Spec) Features() []Feature {
	names := s.Names()
	out := make([]Feature, len(names))
	for i, n := range names {
		out[i] = s.features[n]
	}
	return out
}

// WithFeature returns a copy of the spec with f added or replaced.
func (s *Spec) WithFeature(f Feature) *Spec {
	n := &Spec{features: make(map[string]Feature, s.Len()+1)}
	if s != nil {
		for k, v := range s.features {
			n.features[k] = v
		}
	}
	n.features[f.Name] = f
	return n
}

// String renders the spec for diagnostics.
func (s *Spec) String() string {
	fs := s.Features()
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// QualityState is the result of Evaluate: the subset of a specification a
// DOV fulfills (Sect. 4.1).
type QualityState struct {
	// Fulfilled holds the names of satisfied features, sorted.
	Fulfilled []string
	// Missing holds the names of unsatisfied features, sorted.
	Missing []string
}

// Final reports whether the whole feature set is fulfilled, i.e. the DOV is
// a final one with respect to its DA's specification.
func (q QualityState) Final() bool { return len(q.Missing) == 0 }

// Fraction returns the fulfilled fraction in [0, 1]; an empty spec counts as
// final (1).
func (q QualityState) Fraction() float64 {
	total := len(q.Fulfilled) + len(q.Missing)
	if total == 0 {
		return 1
	}
	return float64(len(q.Fulfilled)) / float64(total)
}

// Covers reports whether the quality state fulfills every feature in names —
// the visibility test for usage-relationship requests ("a DOV with a certain
// set of features satisfied", Sect. 4.1).
func (q QualityState) Covers(names []string) bool {
	set := make(map[string]bool, len(q.Fulfilled))
	for _, f := range q.Fulfilled {
		set[f] = true
	}
	for _, n := range names {
		if !set[n] {
			return false
		}
	}
	return true
}

// evalOne checks a single feature against an object.
func evalOne(f Feature, o *catalog.Object, reg *Registry) bool {
	check := func(obj *catalog.Object) (applies, holds bool) {
		switch f.Kind {
		case KindRange:
			v, ok := obj.Attrs[f.Attr]
			if !ok {
				return false, false
			}
			n, numeric := v.Num()
			if !numeric {
				return true, false
			}
			return true, n >= f.Min && n <= f.Max && !math.IsNaN(n)
		case KindEquals:
			v, ok := obj.Attrs[f.Attr]
			if !ok {
				return false, false
			}
			return true, v.Equal(f.Want)
		default:
			return false, false
		}
	}
	switch f.Kind {
	case KindPredicate:
		tool, ok := reg.lookup(f.Tool)
		if !ok {
			return false // unknown tool: conservatively unfulfilled
		}
		return tool(o)
	case KindRange, KindEquals:
		if !f.Deep {
			applies, holds := check(o)
			return applies && holds
		}
		applied, all := false, true
		o.Walk(func(obj *catalog.Object) {
			a, h := check(obj)
			if a {
				applied = true
				if !h {
					all = false
				}
			}
		})
		return applied && all
	default:
		return false
	}
}

// Evaluate determines the quality state of an object with respect to the
// spec, resolving predicate features through reg (which may be nil).
func (s *Spec) Evaluate(o *catalog.Object, reg *Registry) QualityState {
	var q QualityState
	if s == nil {
		return q
	}
	for _, name := range s.Names() {
		if o != nil && evalOne(s.features[name], o, reg) {
			q.Fulfilled = append(q.Fulfilled, name)
		} else {
			q.Missing = append(q.Missing, name)
		}
	}
	return q
}

// IsRefinementOf reports whether s is a legal refinement of base: every base
// feature is present in s and at least as restrictive (range features may
// only narrow, equals and predicate features must be identical). New
// features may be added freely (Sect. 4.1: a sub-DA "is only allowed to
// refine its own specification by addition of new features or by further
// restricting existing features").
func (s *Spec) IsRefinementOf(base *Spec) bool {
	if base == nil {
		return true
	}
	for name, bf := range base.features {
		sf, ok := s.Feature(name)
		if !ok {
			return false
		}
		if sf.Kind != bf.Kind || sf.Attr != bf.Attr || sf.Deep != bf.Deep {
			return false
		}
		switch bf.Kind {
		case KindRange:
			if sf.Min < bf.Min || sf.Max > bf.Max {
				return false
			}
		case KindEquals:
			if !sf.Want.Equal(bf.Want) {
				return false
			}
		case KindPredicate:
			if sf.Tool != bf.Tool {
				return false
			}
		}
	}
	return true
}
