package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestLargePayloadRoundTrip(t *testing.T) {
	l := openTemp(t)
	payload := bytes.Repeat([]byte{0xAB}, 1<<20) // 1 MiB
	if _, err := l.Append(1, "big", payload); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := l.Replay(func(r Record) error { got = r.Payload; return nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	l := openTemp(t)
	if _, err := l.Append(1, "x", make([]byte, maxRecordSize)); err == nil {
		t.Fatal("oversized record accepted")
	}
	// The log stays usable after the rejection.
	if _, err := l.Append(1, "x", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOwnerLength(t *testing.T) {
	l := openTemp(t)
	owner := strings.Repeat("o", 0xFFFF)
	if _, err := l.Append(1, owner, []byte("p")); err != nil {
		t.Fatalf("max-length owner rejected: %v", err)
	}
	if _, err := l.Append(1, owner+"x", []byte("p")); err == nil {
		t.Fatal("over-length owner accepted")
	}
	var got string
	if err := l.Replay(func(r Record) error { got = r.Owner; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != owner {
		t.Fatalf("owner length after replay = %d", len(got))
	}
}

// TestConcurrentAppendDurableOrder drives many concurrent appenders through
// the group-commit path and checks the core contract: every Append that
// returned got a unique LSN, and replay yields exactly those records in LSN
// order with intact payloads.
func TestConcurrentAppendDurableOrder(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "group.wal"), Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, perWriter = 16, 25
	type appended struct {
		lsn     LSN
		payload string
	}
	results := make([][]appended, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := fmt.Sprintf("w%d-r%d", w, i)
				lsn, err := l.Append(7, fmt.Sprintf("writer-%d", w), []byte(p))
				if err != nil {
					t.Errorf("append %s: %v", p, err)
					return
				}
				results[w] = append(results[w], appended{lsn, p})
			}
		}(w)
	}
	wg.Wait()

	var all []appended
	for _, rs := range results {
		all = append(all, rs...)
	}
	if len(all) != writers*perWriter {
		t.Fatalf("appends completed = %d, want %d", len(all), writers*perWriter)
	}
	seen := make(map[LSN]string, len(all))
	for _, a := range all {
		if prev, dup := seen[a.lsn]; dup {
			t.Fatalf("LSN %d assigned to both %q and %q", a.lsn, prev, a.payload)
		}
		seen[a.lsn] = a.payload
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lsn < all[j].lsn })
	var replayed []Record
	if err := l.Replay(func(r Record) error { replayed = append(replayed, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(all) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(all))
	}
	var prev LSN
	for i, r := range replayed {
		if i > 0 && r.LSN <= prev {
			t.Fatalf("replay out of LSN order at %d: %d after %d", i, r.LSN, prev)
		}
		prev = r.LSN
		if r.LSN != all[i].lsn || string(r.Payload) != all[i].payload {
			t.Fatalf("record %d: got (%d, %q), want (%d, %q)", i, r.LSN, r.Payload, all[i].lsn, all[i].payload)
		}
	}
	appends, batches, syncs := l.Stats()
	if appends != writers*perWriter {
		t.Fatalf("appends stat = %d", appends)
	}
	if batches == 0 || syncs != batches {
		t.Fatalf("batches=%d syncs=%d", batches, syncs)
	}
	t.Logf("group commit: %d appends in %d batches (%.1f appends/fsync)",
		appends, batches, float64(appends)/float64(batches))
}

// TestReplayAfterMidBatchCrash simulates a crash in the middle of a batch
// write: records from concurrent appenders land on disk, then the file is cut
// inside the body of one record. Reopening must recover exactly the synced
// prefix — every record before the tear, none after it — and continue
// appending at the truncation point.
func TestReplayAfterMidBatchCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	l, err := Open(path, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append(3, "dop", []byte(fmt.Sprintf("rec-%02d", i))); err != nil {
				t.Errorf("append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Find the record boundaries, then tear the segment inside the body of
	// the third-from-last record (as if the crash hit mid-batch).
	seg := filepath.Join(path, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int64
	for off := int64(0); off < int64(len(data)); {
		bounds = append(bounds, off)
		off += int64(binary.LittleEndian.Uint32(data[off : off+4]))
	}
	if len(bounds) != n {
		t.Fatalf("found %d records on disk, want %d", len(bounds), n)
	}
	tearRecord := n - 3
	tearAt := bounds[tearRecord] + recHeaderSize + 2 // inside the body
	if err := os.Truncate(seg, tearAt); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []Record
	if err := l2.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != tearRecord {
		t.Fatalf("recovered %d records, want the %d before the tear", len(got), tearRecord)
	}
	for i, r := range got {
		if r.LSN != LSN(bounds[i]) {
			t.Fatalf("record %d at LSN %d, want %d", i, r.LSN, bounds[i])
		}
	}
	// The torn tail was truncated; appending resumes at the record boundary.
	lsn, err := l2.Append(3, "dop", []byte("after-crash"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != LSN(bounds[tearRecord]) {
		t.Fatalf("post-crash append at LSN %d, want %d", lsn, bounds[tearRecord])
	}
}

// TestNoGroupCommitAblation checks the serialized baseline still keeps the
// one-sync-per-append behaviour the ablation benchmarks rely on.
func TestNoGroupCommitAblation(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "serial.wal"), Options{SyncOnAppend: true, NoGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := l.Append(1, "o", []byte{byte(i), byte(j)}); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	appends, batches, syncs := l.Stats()
	if appends != 40 || batches != 40 || syncs != 40 {
		t.Fatalf("serialized stats: appends=%d batches=%d syncs=%d, want 40 each", appends, batches, syncs)
	}
	n := 0
	if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("replayed %d records, want 40", n)
	}
}

// TestAppendDuringCheckpoint races concurrent appenders against a checkpoint
// of the current tail: records around the checkpoint must land with strictly
// increasing LSNs, nothing appended after the checkpoint may be skipped, and
// everything below the low-water mark must be.
func TestAppendDuringCheckpoint(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "ckpt.wal"), Options{SyncOnAppend: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, "o", []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	mark := LSN(l.Size())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := l.Append(1, "o", []byte("racer")); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}()
	}
	if err := l.Checkpoint(mark); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	var prev LSN
	ok := true
	n := 0
	err = l.Replay(func(r Record) error {
		if r.LSN < mark {
			t.Errorf("replayed checkpointed record at LSN %d < %d", r.LSN, mark)
		}
		if n > 0 && r.LSN <= prev {
			ok = false
		}
		prev = r.LSN
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("replay out of LSN order after checkpoint race")
	}
	if n != 80 {
		t.Fatalf("replayed %d records, want the 80 racers above the mark", n)
	}
}

func TestEmptyLogReplay(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "empty.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := 0
	if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 || l.Size() != 0 {
		t.Fatalf("empty log: n=%d size=%d", n, l.Size())
	}
}
