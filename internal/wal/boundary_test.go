package wal

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestLargePayloadRoundTrip(t *testing.T) {
	l := openTemp(t)
	payload := bytes.Repeat([]byte{0xAB}, 1<<20) // 1 MiB
	if _, err := l.Append(1, "big", payload); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := l.Replay(func(r Record) error { got = r.Payload; return nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	l := openTemp(t)
	if _, err := l.Append(1, "x", make([]byte, maxRecordSize)); err == nil {
		t.Fatal("oversized record accepted")
	}
	// The log stays usable after the rejection.
	if _, err := l.Append(1, "x", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOwnerLength(t *testing.T) {
	l := openTemp(t)
	owner := strings.Repeat("o", 0xFFFF)
	if _, err := l.Append(1, owner, []byte("p")); err != nil {
		t.Fatalf("max-length owner rejected: %v", err)
	}
	if _, err := l.Append(1, owner+"x", []byte("p")); err == nil {
		t.Fatal("over-length owner accepted")
	}
	var got string
	if err := l.Replay(func(r Record) error { got = r.Owner; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != owner {
		t.Fatalf("owner length after replay = %d", len(got))
	}
}

func TestEmptyLogReplay(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "empty.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := 0
	if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 || l.Size() != 0 {
		t.Fatalf("empty log: n=%d size=%d", n, l.Size())
	}
}
