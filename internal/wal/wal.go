// Package wal implements the append-only redo log used by the CONCORD
// repository, the transaction managers, the design manager and the
// cooperation manager for durability and crash recovery.
//
// The log is a sequence of length-prefixed, CRC32-checked records stored in
// rotating segment files under one directory. Each record carries a record
// type (assigned by the client layer), an owner tag (e.g. a DOP or DA
// identifier) and an opaque payload. Segment files are named by the LSN of
// their first byte and are dense: segment N+1 starts exactly where segment N
// ends, so an LSN is a global byte offset into the whole log. Replay
// tolerates a torn tail: a record whose length prefix or checksum is invalid
// terminates replay without error, mirroring the behaviour of a crashed
// writer.
//
// Checkpointing: once a caller has captured the state up to some LSN L in a
// snapshot of its own, Checkpoint(L) durably records L as the log's
// low-water mark (atomic tmp-write/fsync/rename of a marker file) and
// deletes every sealed segment lying entirely below L. Replay then starts at
// the low-water mark, so both recovery work and disk usage are bounded by
// the live suffix instead of the full history.
//
// Appends use group commit: concurrent appenders reserve their LSNs under a
// short mutex and enqueue the framed record; the first appender to acquire
// the write slot becomes the batch leader, writes every pending record with
// a single buffered write and forces the file to stable storage once for the
// whole batch. Append returns only after the batch containing the record is
// durable, so the per-record durability contract is unchanged while the
// fsync cost is amortized over all concurrent writers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"concord/internal/fault"
)

// RecordType distinguishes the kinds of log records. The values are assigned
// by the layers above (repository, TMs, DM, CM); the WAL treats them opaquely.
type RecordType uint16

// LSN is a log sequence number: the global byte offset of a record in the log
// (segment start + offset within the segment; segments are dense).
type LSN uint64

// Record is a single durable log entry.
type Record struct {
	// LSN is the byte offset at which the record starts. Assigned on append.
	LSN LSN
	// Type tags the record for the replaying layer.
	Type RecordType
	// Owner identifies the logical writer (a DOP, DA, or manager name).
	Owner string
	// Payload is the opaque record body.
	Payload []byte
}

// commitReq is one appender's entry in the pending batch. done is closed by
// the batch leader once the record is on disk (or the write failed).
type commitReq struct {
	buf []byte
	// fb owns buf's backing array; the batch leader recycles it once the
	// record has been written (the waiter only reads lsn and err).
	fb   *frameBuf
	lsn  LSN
	err  error
	done chan struct{}
}

// frameBufPool recycles record framing buffers: every append frames its
// record (header + owner + payload) into one of these, and the batch leader
// returns it to the pool right after the bytes hit the file — so the append
// hot path reuses a handful of buffers instead of allocating one per record.
var frameBufPool = sync.Pool{New: func() any { return new(frameBuf) }}

// frameBuf is a pooled framing buffer.
type frameBuf struct{ b []byte }

// maxPooledFrameBytes caps what a released frame buffer may park in the pool
// so bulk records do not pin worst-case memory.
const maxPooledFrameBytes = 256 << 10

func getFrameBuf() *frameBuf { return frameBufPool.Get().(*frameBuf) }

func putFrameBuf(f *frameBuf) {
	if f == nil {
		return
	}
	if cap(f.b) > maxPooledFrameBytes {
		f.b = nil
	}
	frameBufPool.Put(f)
}

// Log is an append-only, checksummed redo log backed by a directory of
// rotating segment files. All methods are safe for concurrent use.
type Log struct {
	// mu guards size, closed, err, the pending batch, starts and lowWater;
	// it is never held across file I/O.
	mu      sync.Mutex
	pending []*commitReq
	size    int64
	closed  bool
	err     error // sticky write failure: the log is unusable afterwards
	// starts holds the start LSN of every live segment, ascending; the last
	// entry is the active segment. Mutated only while holding the write
	// slot (plus mu for the brief pointer swap).
	starts []int64
	// lowWater is the checkpointed LSN: records below it are covered by the
	// caller's snapshot and skipped on replay.
	lowWater int64

	// writeSem is a capacity-1 semaphore held by the batch leader while it
	// writes and syncs. Replay/Sync/Close acquire it to get exclusive use of
	// the file descriptor; Checkpoint takes it only briefly (flush + decide,
	// and for the recovery-only restartAt), never across the mark install.
	writeSem chan struct{}

	// ckptMu serializes checkpoints against each other. Checkpoint installs
	// its mark and drops covered segments WITHOUT the write slot — appenders
	// must not stall behind the mark's fsyncs — so this mutex is what keeps
	// two concurrent checkpoints from double-removing segments.
	ckptMu sync.Mutex

	dir string
	// f is the active segment's file. Only accessed while holding the write
	// slot.
	f *os.File
	// written is the number of bytes actually on disk (a global LSN). Only
	// accessed while holding the write slot.
	written int64
	// segBytes is the rotation threshold: once the active segment holds at
	// least this many bytes the leader seals it and opens a new one.
	segBytes int64
	// syncOnAppend forces an fsync per batch (forced log writes).
	syncOnAppend bool
	// noGroupCommit serializes appends with one write+fsync each (the
	// pre-group-commit behaviour, kept as an ablation baseline).
	noGroupCommit bool
	// bufferedScan selects the buffered Open-time validation scan.
	bufferedScan bool
	// faults is the named fault-point registry traversed at the Crash*
	// points (nil-safe; inert unless a test arms a point).
	faults *fault.Registry

	// shipper, when non-nil, receives every durable batch right after its
	// fsync and before the group-commit waiters are released (read under mu;
	// invoked while holding the write slot — see Shipper).
	shipper Shipper

	// Batching statistics (atomic; Stats).
	appends     uint64
	batches     uint64
	syncs       uint64
	checkpoints uint64
}

// Shipper receives every durable append batch, synchronously, while the
// batch leader still holds the write slot and before any waiter is released
// — the hook synchronous WAL replication hangs off (internal/repl). start is
// the LSN of the batch's first byte, frames holds the records in their exact
// on-disk framing, and records is how many there are. A non-nil error is
// latched as the log's sticky write error: the batch's waiters and every
// later append fail with it, exactly like a local write failure. Ship must
// therefore return nil for transient delivery problems it wants the commit
// to survive (degrading to asynchronous catch-up), reserving errors for
// fencing decisions that must stop this log for good.
type Shipper interface {
	Ship(start LSN, frames []byte, records int) error
}

const (
	// header: u32 totalLen | u32 crc | u16 type | u16 ownerLen
	recHeaderSize = 4 + 4 + 2 + 2
	maxRecordSize = 64 << 20 // 64 MiB sanity cap

	// DefaultSegmentBytes is the rotation threshold used when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 4 << 20

	segSuffix   = ".seg"
	markName    = "checkpoint"
	markTmpName = "checkpoint.tmp"
)

// Crash points traversed on Options.Faults during Checkpoint, in protocol
// order. An armed point freezes the on-disk state exactly as a crash at
// that step would.
const (
	// CrashBeforeMark fires before the new marker is written.
	CrashBeforeMark = "wal:before-mark"
	// CrashMarkTmp fires after the marker tmp file is written and synced,
	// before it is renamed into place.
	CrashMarkTmp = "wal:mark-tmp"
	// CrashMarkInstalled fires after the marker rename, before any segment
	// is deleted.
	CrashMarkInstalled = "wal:mark-installed"
	// CrashSegmentDeleted fires after each obsolete segment is unlinked.
	CrashSegmentDeleted = "wal:segment-deleted"
)

// FaultAppendSync is the fault point traversed on the append/fsync path,
// just before the batch write hits the file. Arming it with an error
// simulates a full disk: the batch is refused, the injected error is
// latched as the log's sticky write error, and every later append fails the
// same way — exactly what a real ENOSPC does. Unlike the Crash* points it
// models a disk that stays up but stops accepting writes, not a process
// crash.
const FaultAppendSync = "wal:append-sync"

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options configures a Log.
type Options struct {
	// SyncOnAppend forces the file to stable storage after each append
	// batch. Benchmarks may disable it; correctness tests enable it.
	SyncOnAppend bool
	// NoGroupCommit disables append batching: every record is written and
	// synced on its own under a single mutex. Exists so benchmarks and
	// experiments (DESIGN.md §6, E12) can quantify what group commit buys.
	NoGroupCommit bool
	// SegmentBytes is the segment rotation threshold (default
	// DefaultSegmentBytes). A segment may overshoot by one append batch.
	SegmentBytes int64
	// Faults, when non-nil, is traversed at the named steps of the
	// checkpoint protocol (the Crash* constants). An armed point aborts
	// the operation there without any further disk mutation, simulating a
	// crash; tests then reopen the directory and assert recovery. Never
	// armed in production.
	Faults *fault.Registry
	// BufferedScan streams the Open-time segment-validation scan through a
	// large read buffer with a reused scratch body, instead of two read
	// calls and one allocation per record. Half of the pipelined restart
	// (DESIGN.md §3.7, the other half is ReplayPipelined); off by default
	// so the serial-replay ablation measures the original path.
	BufferedScan bool
}

func segName(start int64) string { return fmt.Sprintf("%020d%s", start, segSuffix) }

func (l *Log) segPath(start int64) string { return filepath.Join(l.dir, segName(start)) }

// SyncDir forces directory metadata (renames, new and deleted files) to
// stable storage — the second half of every atomic tmp-write/rename install
// in the checkpoint protocol (the repository snapshot installer shares it).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open opens (creating if necessary) the log directory at path. Existing
// segments are scanned so that new appends continue after the last valid
// record; a torn tail is truncated. A log written by the old single-file
// format is migrated to a directory with one segment.
func Open(path string, opts Options) (*Log, error) {
	if err := migrateSingleFile(path); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	os.Remove(filepath.Join(path, markTmpName)) //nolint:errcheck // stray tmp from a crashed checkpoint
	l := &Log{
		dir:           path,
		segBytes:      opts.SegmentBytes,
		syncOnAppend:  opts.SyncOnAppend,
		noGroupCommit: opts.NoGroupCommit,
		bufferedScan:  opts.BufferedScan,
		faults:        opts.Faults,
		writeSem:      make(chan struct{}, 1),
	}
	if l.segBytes <= 0 {
		l.segBytes = DefaultSegmentBytes
	}
	l.lowWater = readMark(path)
	starts, err := listSegments(path)
	if err != nil {
		return nil, err
	}
	if len(starts) == 0 {
		starts = []int64{l.lowWater}
		if err := createSegment(l.segPath(l.lowWater), path); err != nil {
			return nil, err
		}
	}
	size, starts, err := l.scanSegments(starts)
	if err != nil {
		return nil, err
	}
	if size < l.lowWater {
		// The marker ran ahead of the durable log (crash after a snapshot
		// install, before the covered records were forced). Everything below
		// the mark is covered by the caller's snapshot: restart the log
		// there with a fresh segment.
		for _, st := range starts {
			if err := os.Remove(l.segPath(st)); err != nil {
				return nil, fmt.Errorf("wal: reset segment: %w", err)
			}
		}
		starts = []int64{l.lowWater}
		if err := createSegment(l.segPath(l.lowWater), path); err != nil {
			return nil, err
		}
		size = l.lowWater
	}
	if starts[0] > l.lowWater {
		// Should not happen (segments are only deleted after the marker is
		// durable); treat the missing prefix as checkpointed.
		l.lowWater = starts[0]
	}
	// Complete an interrupted deletion (crash between the marker install
	// and dropCoveredSegments): sealed segments lying entirely below the
	// mark are unreachable on replay and must not occupy disk forever.
	for len(starts) > 1 && starts[1] <= l.lowWater {
		if err := os.Remove(l.segPath(starts[0])); err != nil {
			return nil, fmt.Errorf("wal: drop covered segment: %w", err)
		}
		starts = starts[1:]
	}
	l.starts = starts
	active := starts[len(starts)-1]
	f, err := os.OpenFile(l.segPath(active), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	if err := f.Truncate(size - active); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(size-active, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.f = f
	l.size = size
	l.written = size
	return l, nil
}

// migrateSingleFile converts a log written by the old single-file format
// into a directory holding that file as the segment starting at LSN 0.
func migrateSingleFile(path string) error {
	fi, err := os.Stat(path)
	if err != nil || !fi.Mode().IsRegular() {
		return nil //nolint:nilerr // absent or already a directory
	}
	tmp := path + ".migrate"
	if err := os.Rename(path, tmp); err != nil {
		return fmt.Errorf("wal: migrate: %w", err)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fmt.Errorf("wal: migrate mkdir: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(path, segName(0))); err != nil {
		return fmt.Errorf("wal: migrate segment: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}

// createSegment creates an empty segment file and makes its directory entry
// durable.
func createSegment(path, dir string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// listSegments returns the start LSNs of all segment files, ascending.
func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var starts []int64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		start, err := strconv.ParseInt(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // foreign file
		}
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// readMark loads the checkpoint marker, returning 0 when absent or corrupt.
// Format: u64 LE low-water LSN | u32 LE CRC32 of the first 8 bytes.
func readMark(dir string) int64 {
	data, err := os.ReadFile(filepath.Join(dir, markName))
	if err != nil || len(data) != 12 {
		return 0
	}
	if crc32.ChecksumIEEE(data[:8]) != binary.LittleEndian.Uint32(data[8:12]) {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(data[:8]))
}

// scanSegments validates contiguity and record integrity across the segment
// chain, truncating at the first tear and dropping any segments after it.
// It returns the total valid log size and the surviving segment starts.
func (l *Log) scanSegments(starts []int64) (int64, []int64, error) {
	size := starts[0]
	for i, st := range starts {
		if st != size {
			// Gap or overlap: everything from here on is unreachable.
			for _, drop := range starts[i:] {
				if err := os.Remove(l.segPath(drop)); err != nil {
					return 0, nil, fmt.Errorf("wal: drop segment: %w", err)
				}
			}
			starts = starts[:i]
			break
		}
		f, err := os.Open(l.segPath(st))
		if err != nil {
			return 0, nil, fmt.Errorf("wal: open segment: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return 0, nil, fmt.Errorf("wal: stat segment: %w", err)
		}
		scan := iterateRecords
		if l.bufferedScan {
			scan = iterateRecordsBuffered
		}
		valid, err := scan(f, st, fi.Size(), 0, nil)
		f.Close()
		if err != nil {
			return 0, nil, err
		}
		size = st + valid
		if valid < fi.Size() {
			// Torn or corrupt tail: this segment ends the log.
			for _, drop := range starts[i+1:] {
				if err := os.Remove(l.segPath(drop)); err != nil {
					return 0, nil, fmt.Errorf("wal: drop segment: %w", err)
				}
			}
			starts = starts[:i+1]
			break
		}
	}
	if len(starts) == 0 {
		// The first listed segment did not start where expected — cannot
		// happen with size initialized to starts[0], but keep the invariant
		// that at least one segment survives.
		return 0, nil, errors.New("wal: no usable segment")
	}
	return size, starts, nil
}

// iterateRecords scans the records of one segment file whose first byte sits
// at global LSN base, reading at most limit bytes. For every valid record
// with LSN >= skipBelow it invokes fn (when non-nil). It returns the byte
// length of the valid record prefix; an invalid header, torn body or
// checksum mismatch ends the scan without error.
func iterateRecords(f *os.File, base, limit, skipBelow int64, fn func(Record) error) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: seek: %w", err)
	}
	var off int64
	hdr := make([]byte, recHeaderSize)
	for off < limit {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return off, nil // clean EOF or torn header
		}
		total := binary.LittleEndian.Uint32(hdr[0:4])
		if total < recHeaderSize || total > maxRecordSize || off+int64(total) > limit {
			return off, nil
		}
		body := make([]byte, total-recHeaderSize)
		if _, err := io.ReadFull(f, body); err != nil {
			return off, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return off, nil // corrupt
		}
		ownerLen := int(binary.LittleEndian.Uint16(hdr[10:12]))
		if ownerLen > len(body) {
			return off, nil
		}
		if fn != nil && base+off >= skipBelow {
			rec := Record{
				LSN:     LSN(base + off),
				Type:    RecordType(binary.LittleEndian.Uint16(hdr[8:10])),
				Owner:   string(body[:ownerLen]),
				Payload: body[ownerLen:],
			}
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += int64(total)
	}
	return off, nil
}

// frameInto appends one record's on-disk form to dst (header, owner,
// payload in place — no intermediate body buffer) and returns the extended
// slice. Allocation-free when dst has capacity, which is what the frame
// buffer pool provides on the append hot path.
func frameInto(dst []byte, t RecordType, owner string, payload []byte) ([]byte, error) {
	if len(owner) > 0xFFFF {
		return nil, fmt.Errorf("wal: owner too long (%d bytes)", len(owner))
	}
	total := uint32(recHeaderSize + len(owner) + len(payload))
	if total > maxRecordSize {
		return nil, fmt.Errorf("wal: record too large (%d bytes)", total)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // recHeaderSize placeholder
	dst = append(dst, owner...)
	dst = append(dst, payload...)
	hdr := dst[start:]
	body := dst[start+recHeaderSize:]
	binary.LittleEndian.PutUint32(hdr[0:4], total)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint16(hdr[8:10], uint16(t))
	binary.LittleEndian.PutUint16(hdr[10:12], uint16(len(owner)))
	return dst, nil
}

// Append durably adds a record and returns its LSN. It returns once the
// batch containing the record has been written (and, with SyncOnAppend,
// forced to stable storage).
func (l *Log) Append(t RecordType, owner string, payload []byte) (LSN, error) {
	wait, err := l.AppendAsync(t, owner, payload)
	if err != nil {
		return 0, err
	}
	return wait()
}

// AppendAsync reserves the record's place in the log (its LSN is fixed, and
// every later Append/AppendAsync is ordered after it) and returns a wait
// function that blocks until the batch containing the record is durable.
// Callers that hold a state lock while appending should reserve under the
// lock and wait outside it, so that concurrent transactions' records gather
// into one batch instead of serializing fsyncs behind the lock.
func (l *Log) AppendAsync(t RecordType, owner string, payload []byte) (func() (LSN, error), error) {
	fb := getFrameBuf()
	buf, err := frameInto(fb.b[:0], t, owner, payload)
	if err != nil {
		putFrameBuf(fb)
		return nil, err
	}
	fb.b = buf
	atomic.AddUint64(&l.appends, 1)
	if l.noGroupCommit {
		lsn, err := l.appendSerial(buf)
		putFrameBuf(fb) // written (or refused); the bytes are dead either way
		if err != nil {
			return nil, err
		}
		return func() (LSN, error) { return lsn, nil }, nil
	}

	req := &commitReq{buf: buf, fb: fb, done: make(chan struct{})}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		putFrameBuf(fb)
		return nil, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		putFrameBuf(fb)
		return nil, err
	}
	req.lsn = LSN(l.size)
	l.size += int64(len(buf))
	l.pending = append(l.pending, req)
	l.mu.Unlock()

	return func() (LSN, error) {
		// Wait for a leader to commit our batch, or become the leader. A
		// leader drains every pending request, so after commitBatch our own
		// request is done.
		select {
		case <-req.done:
		case l.writeSem <- struct{}{}:
			l.commitBatch()
			<-l.writeSem
			<-req.done
		}
		return req.lsn, req.err
	}, nil
}

// appendSerial is the ablation path: one write and one fsync per record,
// fully serialized on the write slot.
func (l *Log) appendSerial(buf []byte) (LSN, error) {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	lsn := LSN(l.size)
	l.size += int64(len(buf))
	shipper := l.shipper
	l.mu.Unlock()
	atomic.AddUint64(&l.batches, 1)
	if err := l.faults.At(FaultAppendSync); err != nil {
		werr := fmt.Errorf("wal: write: %w", err)
		l.fail(werr)
		return 0, werr
	}
	startOff := l.written
	if _, err := l.f.Write(buf); err != nil {
		l.fail(err)
		return 0, fmt.Errorf("wal: write: %w", err)
	}
	l.written += int64(len(buf))
	if l.syncOnAppend {
		atomic.AddUint64(&l.syncs, 1)
		if err := l.f.Sync(); err != nil {
			l.fail(err)
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	if shipper != nil {
		if err := shipper.Ship(LSN(startOff), buf, 1); err != nil {
			werr := fmt.Errorf("wal: ship: %w", err)
			l.fail(werr)
			return 0, werr
		}
	}
	l.maybeRotate()
	return lsn, nil
}

// SetShipper installs (or, with nil, removes) the synchronous batch shipper.
// Safe to call on a live log: the next batch leader observes the new value.
func (l *Log) SetShipper(s Shipper) {
	l.mu.Lock()
	l.shipper = s
	l.mu.Unlock()
}

// fail records a sticky write error: the offset bookkeeping no longer
// matches the file, so all subsequent appends must be refused.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// commitBatch drains the pending queue and commits it with one write and at
// most one fsync, sealing the active segment if it crossed the rotation
// threshold. The caller must hold the write slot.
//
// Between the drain and the disk force the leader yields the processor once:
// appenders that lost the race to the drain by a few instructions (on a
// single-CPU host: every appender woken by the previous batch) get to park
// their reservations in this batch instead of paying for one more fsync
// cycle. The yield costs nanoseconds against a forced write and nothing
// measurable without one.
func (l *Log) commitBatch() {
	l.mu.Lock()
	batch := l.pending
	l.pending = nil
	werr := l.err
	shipper := l.shipper
	l.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if werr == nil {
		runtime.Gosched()
		l.mu.Lock()
		if len(l.pending) > 0 {
			batch = append(batch, l.pending...)
			l.pending = nil
		}
		werr = l.err
		l.mu.Unlock()
	}
	if werr == nil {
		buf := batch[0].buf
		var cb *frameBuf
		if len(batch) > 1 {
			// Coalesce into one pooled buffer so the batch costs one write
			// (and the per-record frame buffers free up immediately after).
			cb = getFrameBuf()
			b := cb.b[:0]
			for _, r := range batch {
				b = append(b, r.buf...)
			}
			cb.b = b
			buf = b
		}
		atomic.AddUint64(&l.batches, 1)
		startOff := l.written
		if err := l.faults.At(FaultAppendSync); err != nil {
			werr = fmt.Errorf("wal: write: %w", err)
			l.fail(werr)
		} else if _, err := l.f.Write(buf); err != nil {
			werr = fmt.Errorf("wal: write: %w", err)
			l.fail(werr)
		} else {
			l.written += int64(len(buf))
			if l.syncOnAppend {
				atomic.AddUint64(&l.syncs, 1)
				if err := l.f.Sync(); err != nil {
					werr = fmt.Errorf("wal: sync: %w", err)
					l.fail(werr)
				}
			}
		}
		if werr == nil && shipper != nil {
			// Synchronous replication: the batch is durable locally; ship it
			// before any waiter is released. A shipper error fences the log
			// (sticky failure) exactly like a local write error would.
			if err := shipper.Ship(LSN(startOff), buf, len(batch)); err != nil {
				werr = fmt.Errorf("wal: ship: %w", err)
				l.fail(werr)
			}
		}
		putFrameBuf(cb)
	}
	for _, r := range batch {
		// The record is on disk (or refused); recycle its framing buffer
		// before waking the waiter — it only reads lsn and err.
		r.buf = nil
		putFrameBuf(r.fb)
		r.fb = nil
		r.err = werr
		close(r.done)
	}
	if werr == nil {
		l.maybeRotate()
	}
}

// maybeRotate seals the active segment once it holds segBytes and opens a
// fresh one starting at the durable tail. The caller must hold the write
// slot. Rotation failures leave the current segment active (the log keeps
// working, just without compaction granularity).
func (l *Log) maybeRotate() {
	l.mu.Lock()
	active := l.starts[len(l.starts)-1]
	l.mu.Unlock()
	if l.written-active < l.segBytes {
		return
	}
	// The sealed segment's contents must be stable before the dirent of its
	// successor: a checkpoint may delete it later, after which its bytes are
	// unrecoverable.
	if err := l.f.Sync(); err != nil {
		l.fail(fmt.Errorf("wal: seal sync: %w", err))
		return
	}
	newStart := l.written
	nf, err := os.OpenFile(l.segPath(newStart), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return // keep appending to the oversized segment
	}
	if err := SyncDir(l.dir); err != nil {
		nf.Close()
		return
	}
	l.f.Close()
	l.f = nf
	l.mu.Lock()
	l.starts = append(l.starts, newStart)
	l.mu.Unlock()
}

// Sync flushes any pending batch and forces buffered records to stable
// storage.
func (l *Log) Sync() error {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.commitBatch()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.err; err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	return l.f.Sync()
}

// Size reports the current log size in bytes (== the LSN of the next record).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// LowWater reports the checkpointed LSN: replay starts here, and every
// record below it is covered by the caller's snapshot.
func (l *Log) LowWater() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(l.lowWater)
}

// SegmentCount reports the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.starts)
}

// SegmentFloor reports the LSN where the oldest retained segment starts —
// the boundary below which Checkpoint has reclaimed the log. Every record at
// or above the floor is still replayable, so a snapshot chain is safe
// exactly when its coverage never falls below the mark (which itself never
// falls below the floor).
func (l *Log) SegmentFloor() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.starts) == 0 {
		return LSN(l.lowWater)
	}
	return LSN(l.starts[0])
}

// DiskBytes reports the total size of all live segment files on disk — the
// quantity checkpointing bounds (unlike Size, which is the lifetime LSN
// high-water mark and never shrinks).
func (l *Log) DiskBytes() int64 {
	l.mu.Lock()
	starts := append([]int64(nil), l.starts...)
	l.mu.Unlock()
	var total int64
	for _, st := range starts {
		if fi, err := os.Stat(l.segPath(st)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Stats reports append/batch/sync/checkpoint counts since Open. With
// concurrent appenders and group commit, batches (and syncs) stay well below
// appends; the ratio appends/batches is the achieved group-commit factor.
func (l *Log) Stats() (appends, batches, syncs uint64) {
	return atomic.LoadUint64(&l.appends),
		atomic.LoadUint64(&l.batches),
		atomic.LoadUint64(&l.syncs)
}

// Checkpoints reports how many checkpoint installs completed since Open.
func (l *Log) Checkpoints() uint64 { return atomic.LoadUint64(&l.checkpoints) }

// Close flushes pending appends and releases the underlying file.
func (l *Log) Close() error {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	// closed stops new enqueues; drain what was already pending so every
	// Append that reserved an LSN resolves before the descriptor closes.
	l.commitBatch()
	return l.f.Close()
}

// Replay reads every valid record from the low-water mark onward, invoking
// fn in log order. A torn or corrupt tail terminates replay silently. Replay
// holds the write slot: it must not be interleaved with appends by fn.
func (l *Log) Replay(fn func(Record) error) error {
	return l.replayWith(iterateRecords, fn)
}

// recordIterator scans one segment file (see iterateRecords and its
// buffered sibling in replay.go).
type recordIterator func(f *os.File, base, limit, skipBelow int64, fn func(Record) error) (int64, error)

// replayWith is the segment walk shared by both replay modes; iter decides
// how each segment is read. The caller-facing contract is Replay's.
func (l *Log) replayWith(iter recordIterator, fn func(Record) error) error {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.commitBatch()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	starts := append([]int64(nil), l.starts...)
	lowWater := l.lowWater
	l.mu.Unlock()
	written := l.written
	for i, st := range starts {
		end := written
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		if end <= lowWater {
			continue // fully checkpointed (not yet deleted)
		}
		f, err := os.Open(l.segPath(st))
		if err != nil {
			return fmt.Errorf("wal: open segment: %w", err)
		}
		valid, err := iter(f, st, end-st, lowWater, fn)
		f.Close()
		if err != nil {
			return err
		}
		if st+valid < end {
			return nil // torn tail ends replay
		}
	}
	return nil
}

// Checkpoint durably records lsn as the log's low-water mark and deletes
// every sealed segment lying entirely below it. The caller must have
// captured all state up to lsn durably in a snapshot of its own before
// calling: after Checkpoint returns, records below lsn are no longer
// replayed and their segments may be gone.
//
// Chained snapshots (DESIGN.md §3.8): the mark makes no assumption that one
// snapshot record covers lsn — the caller may cover it with a chain of
// incremental snapshot files. The contract is then per chain, not per file:
// pass the coverage LSN of the *durably linked* chain tip, never an LSN a
// not-yet-fsynced manifest entry would cover, because segment deletion below
// the mark is immediate and unrecoverable. The inverse invariant (the mark
// never exceeds surviving chain coverage) is what repo.Open verifies before
// trusting a recovered chain; SegmentFloor exposes the deletion boundary so
// callers can assert no live chain element references a reclaimed segment.
//
// An lsn beyond the durable tail is accepted (it arises when a recovery
// completes a checkpoint whose snapshot installed but whose log mark was
// lost): the log restarts with a fresh segment at lsn. Checkpoint is
// monotonic — an lsn at or below the current low-water mark is a no-op.
func (l *Log) Checkpoint(lsn LSN) error {
	target := int64(lsn)
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	// Take the write slot only long enough to flush the pending batch and
	// decide; the mark install below runs without it, so concurrent appends
	// never stall behind the marker's fsyncs (the E19 latency bound).
	l.writeSem <- struct{}{}
	l.commitBatch()
	l.mu.Lock()
	closed, werr := l.closed, l.err
	lowWater, size := l.lowWater, l.size
	l.mu.Unlock()
	<-l.writeSem
	if closed {
		return ErrClosed
	}
	if werr != nil {
		// A write already failed: records below target may never have
		// reached disk, and their callers were told so. Installing a mark
		// over them would resurrect refused operations from the caller's
		// snapshot at the next recovery.
		return werr
	}
	if target <= lowWater {
		return nil
	}
	advance := target > size

	if err := l.hookAt(CrashBeforeMark); err != nil {
		return err
	}
	if err := l.writeMark(target); err != nil {
		return err
	}
	if err := l.hookAt(CrashMarkInstalled); err != nil {
		return err
	}
	l.mu.Lock()
	l.lowWater = target
	l.mu.Unlock()
	atomic.AddUint64(&l.checkpoints, 1)
	if advance {
		// Recovery-only path: the mark outruns the durable tail when a crash
		// left an installed snapshot without its mark, and Open completes the
		// checkpoint before any appender exists. Replacing the active segment
		// still needs the write slot.
		l.writeSem <- struct{}{}
		defer func() { <-l.writeSem }()
		return l.restartAt(target)
	}
	return l.dropCoveredSegments(target)
}

// hookAt traverses a crash point on the fault registry; an armed point
// aborts the checkpoint exactly at that step.
func (l *Log) hookAt(point string) error {
	if err := l.faults.At(point); err != nil {
		return fmt.Errorf("wal: checkpoint aborted at %s: %w", point, err)
	}
	return nil
}

// writeMark installs the low-water marker via tmp-write/fsync/rename.
func (l *Log) writeMark(target int64) error {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint64(buf[:8], uint64(target))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(buf[:8]))
	tmp := filepath.Join(l.dir, markTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: mark tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: mark write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: mark sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: mark close: %w", err)
	}
	if err := l.hookAt(CrashMarkTmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, markName)); err != nil {
		return fmt.Errorf("wal: mark rename: %w", err)
	}
	if err := SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: mark dir sync: %w", err)
	}
	return nil
}

// dropCoveredSegments unlinks sealed segments whose whole range lies below
// the low-water mark. The active segment is never deleted. It runs without
// the write slot — appenders may seal new segments concurrently, which only
// appends to l.starts, so the dropped entries are stripped as a prefix
// rather than overwriting the live slice.
func (l *Log) dropCoveredSegments(target int64) error {
	l.mu.Lock()
	starts := append([]int64(nil), l.starts...)
	l.mu.Unlock()
	dropped := 0
	for i := 0; i+1 < len(starts) && starts[i+1] <= target; i++ {
		if err := os.Remove(l.segPath(starts[i])); err != nil {
			l.stripDroppedStarts(dropped)
			return fmt.Errorf("wal: drop segment: %w", err)
		}
		dropped = i + 1
		if err := l.hookAt(CrashSegmentDeleted); err != nil {
			l.stripDroppedStarts(dropped)
			return err
		}
	}
	l.stripDroppedStarts(dropped)
	return nil
}

// stripDroppedStarts removes the first n entries from l.starts (the sealed
// segments dropCoveredSegments just unlinked; sealing only ever appends, so
// they are still the slice's prefix).
func (l *Log) stripDroppedStarts(n int) {
	if n == 0 {
		return
	}
	l.mu.Lock()
	l.starts = append([]int64(nil), l.starts[n:]...)
	l.mu.Unlock()
}

// restartAt replaces every segment with a fresh one starting at target; all
// current content is below the (already durable) low-water mark. Pending
// reservations are re-based onto the new tail.
func (l *Log) restartAt(target int64) error {
	l.mu.Lock()
	starts := append([]int64(nil), l.starts...)
	l.mu.Unlock()
	nf, err := os.OpenFile(l.segPath(target), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: restart segment: %w", err)
	}
	if err := SyncDir(l.dir); err != nil {
		nf.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.f.Close()
	l.f = nf
	for _, st := range starts {
		if st == target {
			continue
		}
		if err := os.Remove(l.segPath(st)); err != nil {
			return fmt.Errorf("wal: drop segment: %w", err)
		}
	}
	l.written = target
	l.mu.Lock()
	l.starts = []int64{target}
	// Reservations enqueued since the flush above hold offsets below the new
	// tail; they have not been written (we hold the write slot), so re-base
	// them onto it.
	off := target
	for _, r := range l.pending {
		r.lsn = LSN(off)
		off += int64(len(r.buf))
	}
	l.size = off
	l.mu.Unlock()
	return nil
}
