// Package wal implements the append-only redo log used by the CONCORD
// repository, the transaction managers, the design manager and the
// cooperation manager for durability and crash recovery.
//
// The log is a sequence of length-prefixed, CRC32-checked records. Each
// record carries a record type (assigned by the client layer), an owner tag
// (e.g. a DOP or DA identifier) and an opaque payload. Replay tolerates a
// torn tail: a record whose length prefix or checksum is invalid terminates
// replay without error, mirroring the behaviour of a crashed writer.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// RecordType distinguishes the kinds of log records. The values are assigned
// by the layers above (repository, TMs, DM, CM); the WAL treats them opaquely.
type RecordType uint16

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// Record is a single durable log entry.
type Record struct {
	// LSN is the byte offset at which the record starts. Assigned on append.
	LSN LSN
	// Type tags the record for the replaying layer.
	Type RecordType
	// Owner identifies the logical writer (a DOP, DA, or manager name).
	Owner string
	// Payload is the opaque record body.
	Payload []byte
}

// Log is an append-only, checksummed redo log backed by a single file.
// All methods are safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64
	closed bool
	// syncOnAppend forces an fsync after every append (forced log writes).
	syncOnAppend bool
}

const (
	// header: u32 totalLen | u32 crc | u16 type | u16 ownerLen
	recHeaderSize = 4 + 4 + 2 + 2
	maxRecordSize = 64 << 20 // 64 MiB sanity cap
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options configures a Log.
type Options struct {
	// SyncOnAppend forces the file to stable storage after each append.
	// Benchmarks may disable it; correctness tests enable it.
	SyncOnAppend bool
}

// Open opens (creating if necessary) the log file at path. An existing log is
// scanned so that new appends continue after the last valid record; a torn
// tail is truncated.
func Open(path string, opts Options) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, path: path, syncOnAppend: opts.SyncOnAppend}
	valid, err := l.scanValidPrefix()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.size = valid
	return l, nil
}

// scanValidPrefix returns the byte length of the longest valid record prefix.
func (l *Log) scanValidPrefix() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: seek: %w", err)
	}
	var off int64
	hdr := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(l.f, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop
		}
		total := binary.LittleEndian.Uint32(hdr[0:4])
		if total < recHeaderSize || total > maxRecordSize {
			return off, nil
		}
		body := make([]byte, total-recHeaderSize)
		if _, err := io.ReadFull(l.f, body); err != nil {
			return off, nil // torn body
		}
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if crc32.ChecksumIEEE(body) != crc {
			return off, nil // corrupt
		}
		off += int64(total)
	}
}

// Append durably adds a record and returns its LSN.
func (l *Log) Append(t RecordType, owner string, payload []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(owner) > 0xFFFF {
		return 0, fmt.Errorf("wal: owner too long (%d bytes)", len(owner))
	}
	body := make([]byte, 0, len(owner)+len(payload))
	body = append(body, owner...)
	body = append(body, payload...)
	total := uint32(recHeaderSize + len(body))
	if total > maxRecordSize {
		return 0, fmt.Errorf("wal: record too large (%d bytes)", total)
	}
	buf := make([]byte, recHeaderSize, total)
	binary.LittleEndian.PutUint32(buf[0:4], total)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint16(buf[8:10], uint16(t))
	binary.LittleEndian.PutUint16(buf[10:12], uint16(len(owner)))
	buf = append(buf, body...)
	lsn := LSN(l.size)
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: write: %w", err)
	}
	l.size += int64(total)
	if l.syncOnAppend {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	return lsn, nil
}

// Sync forces buffered records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// Size reports the current log size in bytes (== the LSN of the next record).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close releases the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// Replay reads every valid record from the beginning of the log, invoking fn
// in log order. A torn or corrupt tail terminates replay silently. Replay
// holds the log lock: it must not be interleaved with appends by fn.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	defer l.f.Seek(l.size, io.SeekStart) //nolint:errcheck // restore append position
	var off int64
	hdr := make([]byte, recHeaderSize)
	for off < l.size {
		if _, err := io.ReadFull(l.f, hdr); err != nil {
			return nil
		}
		total := binary.LittleEndian.Uint32(hdr[0:4])
		if total < recHeaderSize || total > maxRecordSize {
			return nil
		}
		body := make([]byte, total-recHeaderSize)
		if _, err := io.ReadFull(l.f, body); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return nil
		}
		ownerLen := int(binary.LittleEndian.Uint16(hdr[10:12]))
		if ownerLen > len(body) {
			return nil
		}
		rec := Record{
			LSN:     LSN(off),
			Type:    RecordType(binary.LittleEndian.Uint16(hdr[8:10])),
			Owner:   string(body[:ownerLen]),
			Payload: body[ownerLen:],
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += int64(total)
	}
	return nil
}

// Truncate discards the whole log content (used after a checkpoint has made
// the logged state redundant).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	l.size = 0
	return l.f.Sync()
}
