// Package wal implements the append-only redo log used by the CONCORD
// repository, the transaction managers, the design manager and the
// cooperation manager for durability and crash recovery.
//
// The log is a sequence of length-prefixed, CRC32-checked records. Each
// record carries a record type (assigned by the client layer), an owner tag
// (e.g. a DOP or DA identifier) and an opaque payload. Replay tolerates a
// torn tail: a record whose length prefix or checksum is invalid terminates
// replay without error, mirroring the behaviour of a crashed writer.
//
// Appends use group commit: concurrent appenders reserve their LSNs under a
// short mutex and enqueue the framed record; the first appender to acquire
// the write slot becomes the batch leader, writes every pending record with
// a single buffered write and forces the file to stable storage once for the
// whole batch. Append returns only after the batch containing the record is
// durable, so the per-record durability contract is unchanged while the
// fsync cost is amortized over all concurrent writers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// RecordType distinguishes the kinds of log records. The values are assigned
// by the layers above (repository, TMs, DM, CM); the WAL treats them opaquely.
type RecordType uint16

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// Record is a single durable log entry.
type Record struct {
	// LSN is the byte offset at which the record starts. Assigned on append.
	LSN LSN
	// Type tags the record for the replaying layer.
	Type RecordType
	// Owner identifies the logical writer (a DOP, DA, or manager name).
	Owner string
	// Payload is the opaque record body.
	Payload []byte
}

// commitReq is one appender's entry in the pending batch. done is closed by
// the batch leader once the record is on disk (or the write failed).
type commitReq struct {
	buf  []byte
	lsn  LSN
	err  error
	done chan struct{}
}

// Log is an append-only, checksummed redo log backed by a single file.
// All methods are safe for concurrent use.
type Log struct {
	// mu guards size, closed, err and the pending batch; it is never held
	// across file I/O.
	mu      sync.Mutex
	pending []*commitReq
	size    int64
	closed  bool
	err     error // sticky write failure: the log is unusable afterwards

	// writeSem is a capacity-1 semaphore held by the batch leader while it
	// writes and syncs. Replay/Truncate/Sync/Close acquire it to get
	// exclusive use of the file descriptor.
	writeSem chan struct{}

	f    *os.File
	path string
	// written is the number of bytes actually on disk. Only accessed while
	// holding the write slot (leaders, Replay, Truncate, Close).
	written int64
	// syncOnAppend forces an fsync per batch (forced log writes).
	syncOnAppend bool
	// noGroupCommit serializes appends with one write+fsync each (the
	// pre-group-commit behaviour, kept as an ablation baseline).
	noGroupCommit bool

	// Batching statistics (atomic; Stats).
	appends uint64
	batches uint64
	syncs   uint64
}

const (
	// header: u32 totalLen | u32 crc | u16 type | u16 ownerLen
	recHeaderSize = 4 + 4 + 2 + 2
	maxRecordSize = 64 << 20 // 64 MiB sanity cap
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options configures a Log.
type Options struct {
	// SyncOnAppend forces the file to stable storage after each append
	// batch. Benchmarks may disable it; correctness tests enable it.
	SyncOnAppend bool
	// NoGroupCommit disables append batching: every record is written and
	// synced on its own under a single mutex. Exists so benchmarks and
	// experiments (DESIGN.md §5, E12) can quantify what group commit buys.
	NoGroupCommit bool
}

// Open opens (creating if necessary) the log file at path. An existing log is
// scanned so that new appends continue after the last valid record; a torn
// tail is truncated.
func Open(path string, opts Options) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{
		f:             f,
		path:          path,
		syncOnAppend:  opts.SyncOnAppend,
		noGroupCommit: opts.NoGroupCommit,
		writeSem:      make(chan struct{}, 1),
	}
	valid, err := l.scanValidPrefix()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.size = valid
	l.written = valid
	return l, nil
}

// scanValidPrefix returns the byte length of the longest valid record prefix.
func (l *Log) scanValidPrefix() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: seek: %w", err)
	}
	var off int64
	hdr := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(l.f, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop
		}
		total := binary.LittleEndian.Uint32(hdr[0:4])
		if total < recHeaderSize || total > maxRecordSize {
			return off, nil
		}
		body := make([]byte, total-recHeaderSize)
		if _, err := io.ReadFull(l.f, body); err != nil {
			return off, nil // torn body
		}
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if crc32.ChecksumIEEE(body) != crc {
			return off, nil // corrupt
		}
		off += int64(total)
	}
}

// frame encodes one record into its on-disk form.
func frame(t RecordType, owner string, payload []byte) ([]byte, error) {
	if len(owner) > 0xFFFF {
		return nil, fmt.Errorf("wal: owner too long (%d bytes)", len(owner))
	}
	body := make([]byte, 0, len(owner)+len(payload))
	body = append(body, owner...)
	body = append(body, payload...)
	total := uint32(recHeaderSize + len(body))
	if total > maxRecordSize {
		return nil, fmt.Errorf("wal: record too large (%d bytes)", total)
	}
	buf := make([]byte, recHeaderSize, total)
	binary.LittleEndian.PutUint32(buf[0:4], total)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint16(buf[8:10], uint16(t))
	binary.LittleEndian.PutUint16(buf[10:12], uint16(len(owner)))
	return append(buf, body...), nil
}

// Append durably adds a record and returns its LSN. It returns once the
// batch containing the record has been written (and, with SyncOnAppend,
// forced to stable storage).
func (l *Log) Append(t RecordType, owner string, payload []byte) (LSN, error) {
	wait, err := l.AppendAsync(t, owner, payload)
	if err != nil {
		return 0, err
	}
	return wait()
}

// AppendAsync reserves the record's place in the log (its LSN is fixed, and
// every later Append/AppendAsync is ordered after it) and returns a wait
// function that blocks until the batch containing the record is durable.
// Callers that hold a state lock while appending should reserve under the
// lock and wait outside it, so that concurrent transactions' records gather
// into one batch instead of serializing fsyncs behind the lock.
func (l *Log) AppendAsync(t RecordType, owner string, payload []byte) (func() (LSN, error), error) {
	buf, err := frame(t, owner, payload)
	if err != nil {
		return nil, err
	}
	atomic.AddUint64(&l.appends, 1)
	if l.noGroupCommit {
		lsn, err := l.appendSerial(buf)
		if err != nil {
			return nil, err
		}
		return func() (LSN, error) { return lsn, nil }, nil
	}

	req := &commitReq{buf: buf, done: make(chan struct{})}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, err
	}
	req.lsn = LSN(l.size)
	l.size += int64(len(buf))
	l.pending = append(l.pending, req)
	l.mu.Unlock()

	return func() (LSN, error) {
		// Wait for a leader to commit our batch, or become the leader. A
		// leader drains every pending request, so after commitBatch our own
		// request is done.
		select {
		case <-req.done:
		case l.writeSem <- struct{}{}:
			l.commitBatch()
			<-l.writeSem
			<-req.done
		}
		return req.lsn, req.err
	}, nil
}

// appendSerial is the ablation path: one write and one fsync per record,
// fully serialized on the write slot.
func (l *Log) appendSerial(buf []byte) (LSN, error) {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	lsn := LSN(l.size)
	l.size += int64(len(buf))
	l.mu.Unlock()
	atomic.AddUint64(&l.batches, 1)
	if _, err := l.f.Write(buf); err != nil {
		l.fail(err)
		return 0, fmt.Errorf("wal: write: %w", err)
	}
	l.written += int64(len(buf))
	if l.syncOnAppend {
		atomic.AddUint64(&l.syncs, 1)
		if err := l.f.Sync(); err != nil {
			l.fail(err)
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	return lsn, nil
}

// fail records a sticky write error: the offset bookkeeping no longer
// matches the file, so all subsequent appends must be refused.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// commitBatch drains the pending queue and commits it with one write and at
// most one fsync. The caller must hold the write slot.
func (l *Log) commitBatch() {
	l.mu.Lock()
	batch := l.pending
	l.pending = nil
	werr := l.err
	l.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if werr == nil {
		buf := batch[0].buf
		if len(batch) > 1 {
			total := 0
			for _, r := range batch {
				total += len(r.buf)
			}
			buf = make([]byte, 0, total)
			for _, r := range batch {
				buf = append(buf, r.buf...)
			}
		}
		atomic.AddUint64(&l.batches, 1)
		if _, err := l.f.Write(buf); err != nil {
			werr = fmt.Errorf("wal: write: %w", err)
			l.fail(werr)
		} else {
			l.written += int64(len(buf))
			if l.syncOnAppend {
				atomic.AddUint64(&l.syncs, 1)
				if err := l.f.Sync(); err != nil {
					werr = fmt.Errorf("wal: sync: %w", err)
					l.fail(werr)
				}
			}
		}
	}
	for _, r := range batch {
		r.err = werr
		close(r.done)
	}
}

// Sync flushes any pending batch and forces buffered records to stable
// storage.
func (l *Log) Sync() error {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.commitBatch()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.err; err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	return l.f.Sync()
}

// Size reports the current log size in bytes (== the LSN of the next record).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats reports append/batch/sync counts since Open. With concurrent
// appenders and group commit, batches (and syncs) stay well below appends;
// the ratio appends/batches is the achieved group-commit factor.
func (l *Log) Stats() (appends, batches, syncs uint64) {
	return atomic.LoadUint64(&l.appends),
		atomic.LoadUint64(&l.batches),
		atomic.LoadUint64(&l.syncs)
}

// Close flushes pending appends and releases the underlying file.
func (l *Log) Close() error {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	// closed stops new enqueues; drain what was already pending so every
	// Append that reserved an LSN resolves before the descriptor closes.
	l.commitBatch()
	return l.f.Close()
}

// Replay reads every valid record from the beginning of the log, invoking fn
// in log order. A torn or corrupt tail terminates replay silently. Replay
// holds the write slot: it must not be interleaved with appends by fn.
func (l *Log) Replay(fn func(Record) error) error {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.commitBatch()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	size := l.written
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	defer l.f.Seek(size, io.SeekStart) //nolint:errcheck // restore append position
	var off int64
	hdr := make([]byte, recHeaderSize)
	for off < size {
		if _, err := io.ReadFull(l.f, hdr); err != nil {
			return nil
		}
		total := binary.LittleEndian.Uint32(hdr[0:4])
		if total < recHeaderSize || total > maxRecordSize {
			return nil
		}
		body := make([]byte, total-recHeaderSize)
		if _, err := io.ReadFull(l.f, body); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return nil
		}
		ownerLen := int(binary.LittleEndian.Uint16(hdr[10:12]))
		if ownerLen > len(body) {
			return nil
		}
		rec := Record{
			LSN:     LSN(off),
			Type:    RecordType(binary.LittleEndian.Uint16(hdr[8:10])),
			Owner:   string(body[:ownerLen]),
			Payload: body[ownerLen:],
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += int64(total)
	}
	return nil
}

// Truncate discards the whole log content (used after a checkpoint has made
// the logged state redundant).
func (l *Log) Truncate() error {
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	l.commitBatch()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	// Appends enqueued since the flush above reserved offsets past the old
	// tail; they have not been written (we hold the write slot), so re-base
	// them onto the now-empty log.
	var off int64
	for _, r := range l.pending {
		r.lsn = LSN(off)
		off += int64(len(r.buf))
	}
	l.size = off
	l.written = 0
	l.err = nil
	return l.f.Sync()
}
