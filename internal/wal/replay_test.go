package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fillLog appends n records with deterministic payloads across several
// segments and returns the opened log.
func fillLog(t *testing.T, n int) *Log {
	t.Helper()
	l, err := Open(filepath.Join(t.TempDir(), "wal"), Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("payload-%04d-%s", i, strings.Repeat("x", i%97)))
		if _, err := l.Append(RecordType(1+i%3), fmt.Sprintf("o%d", i%5), payload); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// replayTrace renders a replay as one line per record so the two replay
// modes can be compared byte for byte.
func replayTrace(rec Record, val any) string {
	return fmt.Sprintf("%d/%d/%s/%s/%v", rec.LSN, rec.Type, rec.Owner, rec.Payload, val)
}

// TestReplayPipelinedMatchesSerial proves the pipelined replay's ordering
// contract: whatever the worker count, apply sees exactly the records (and
// decoded values) serial replay sees, in the same LSN order.
func TestReplayPipelinedMatchesSerial(t *testing.T) {
	const n = 500
	l := fillLog(t, n)
	decode := func(rec Record) (any, error) {
		if rec.Type == 2 {
			return len(rec.Payload), nil
		}
		return nil, nil
	}
	var want []string
	if err := l.Replay(func(rec Record) error {
		v, err := decode(rec)
		if err != nil {
			return err
		}
		want = append(want, replayTrace(rec, v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("serial replay saw %d records, want %d", len(want), n)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		var got []string
		err := l.ReplayPipelined(workers, decode, func(rec Record, val any) error {
			got = append(got, replayTrace(rec, val))
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: record %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestReplayPipelinedDecodeError asserts a decode failure surfaces as the
// replay error and nothing past the failing record is applied.
func TestReplayPipelinedDecodeError(t *testing.T) {
	l := fillLog(t, 200)
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		applied := 0
		err := l.ReplayPipelined(workers,
			func(rec Record) (any, error) {
				if strings.Contains(string(rec.Payload), "payload-0100") {
					return nil, boom
				}
				return nil, nil
			},
			func(rec Record, _ any) error {
				if strings.Contains(string(rec.Payload), "payload-0100") {
					t.Fatal("applied a record whose decode failed")
				}
				applied++
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want decode error", workers, err)
		}
		if applied != 100 {
			t.Fatalf("workers=%d: applied %d records before the failure, want 100", workers, applied)
		}
	}
}

// TestReplayPipelinedApplyError asserts an apply failure aborts the replay
// with that error, regardless of how far ahead the decoders ran.
func TestReplayPipelinedApplyError(t *testing.T) {
	l := fillLog(t, 300)
	boom := errors.New("apply boom")
	for _, workers := range []int{1, 4} {
		applied := 0
		err := l.ReplayPipelined(workers,
			func(Record) (any, error) { return nil, nil },
			func(rec Record, _ any) error {
				if applied == 42 {
					return boom
				}
				applied++
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want apply error", workers, err)
		}
		if applied != 42 {
			t.Fatalf("workers=%d: applied %d, want 42", workers, applied)
		}
	}
}

// TestReplayPipelinedRespectsLowWater asserts the pipelined replay starts at
// the checkpoint mark exactly like serial replay.
func TestReplayPipelinedRespectsLowWater(t *testing.T) {
	l := fillLog(t, 120)
	var cut LSN
	count := 0
	if err := l.Replay(func(rec Record) error {
		count++
		if count == 60 {
			cut = rec.LSN
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(cut); err != nil {
		t.Fatal(err)
	}
	seen := 0
	err := l.ReplayPipelined(4,
		func(Record) (any, error) { return nil, nil },
		func(rec Record, _ any) error {
			if rec.LSN < cut {
				t.Fatalf("record %d below the low-water mark %d", rec.LSN, cut)
			}
			seen++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 120-59 {
		t.Fatalf("replayed %d records past the mark, want %d", seen, 120-59)
	}
}
