package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Pipelined replay (DESIGN.md §3.7): Replay reads records with two small
// read calls per record and hands each one to the callback before touching
// the next — decode and apply fully interleaved. ReplayPipelined replaces
// that with a restart pipeline:
//
//   - segments stream through a large buffered reader (replayBufBytes), so
//     the per-record syscall pair becomes a handful of reads per megabyte;
//   - a worker pool runs the caller's decode on records ahead of the
//     applier — for the repository that is the DOV payload decode, the
//     dominant restart cost;
//   - apply is invoked strictly in LSN order with each record and its
//     decoded value, so the rebuilt state is byte-identical to serial
//     replay. The first error in LSN order (decode or apply) aborts the
//     replay and is the error returned, exactly as it would be serially.
//
// The pipeline keeps at most pipeDepth(workers) records in flight, so
// memory stays bounded by a few megabytes regardless of history length.

// replayBufBytes is the buffered-reader size of the pipelined replay. One
// buffer per open segment; large enough that sequential scan speed is
// storage-bound, small enough to be irrelevant next to the rebuilt state.
const replayBufBytes = 1 << 20

// replayItem carries one record through the pipeline. done is closed by the
// decode worker once val/err are set; the applier waits on it in LSN order.
type replayItem struct {
	rec  Record
	val  any
	err  error
	done chan struct{}
}

// errReplayAborted stops the segment scan once the applier has failed; the
// applier's own first-in-order error is what ReplayPipelined returns.
var errReplayAborted = errors.New("wal: replay aborted")

// pipeDepth bounds the records in flight ahead of the applier.
func pipeDepth(workers int) int { return 4 * workers }

// ReplayPipelined reads every valid record from the low-water mark onward
// like Replay, but streams segments through a large read buffer and runs
// decode on a pool of `workers` goroutines while apply is invoked strictly
// in LSN order (see the package comment above). decode returning a non-nil
// error, or apply doing so, terminates the replay with that error; records
// decode declines (nil, nil) reach apply with a nil value. A torn or
// corrupt tail terminates replay silently. Like Replay it holds the write
// slot: decode and apply must not append.
//
// workers <= 1 keeps everything on the calling goroutine (decode and apply
// in sequence) but still reads through the large buffer — the configuration
// for single-CPU hosts, where the syscall batching is the whole win.
func (l *Log) ReplayPipelined(workers int, decode func(Record) (any, error), apply func(Record, any) error) error {
	if decode == nil {
		return errors.New("wal: ReplayPipelined needs a decode function")
	}
	if workers <= 1 {
		return l.replayBuffered(func(rec Record) error {
			val, err := decode(rec)
			if err != nil {
				return err
			}
			return apply(rec, val)
		})
	}

	jobs := make(chan *replayItem, pipeDepth(workers))
	ordered := make(chan *replayItem, pipeDepth(workers))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				it.val, it.err = decode(it.rec)
				close(it.done)
			}
		}()
	}
	// aborted tells the scanning goroutine to stop feeding once the applier
	// hit an error; applyErr delivers the applier's first-in-order error.
	var aborted atomic.Bool
	applyErr := make(chan error, 1)
	go func() {
		var first error
		for it := range ordered {
			<-it.done
			if first != nil {
				continue // drain; state is already poisoned
			}
			err := it.err
			if err == nil {
				err = apply(it.rec, it.val)
			}
			if err != nil {
				first = err
				aborted.Store(true)
			}
		}
		applyErr <- first
	}()

	scanErr := l.replayBuffered(func(rec Record) error {
		if aborted.Load() {
			return errReplayAborted
		}
		it := &replayItem{rec: rec, done: make(chan struct{})}
		// The ordered queue is enqueued first and has the same capacity as
		// jobs, so this pair of sends never deadlocks against the applier.
		ordered <- it
		jobs <- it
		return nil
	})
	close(jobs)
	wg.Wait()
	close(ordered)
	ferr := <-applyErr
	if ferr != nil {
		return ferr // first error in LSN order, as serial replay would see
	}
	if errors.Is(scanErr, errReplayAborted) {
		return nil // applier error already handled above
	}
	return scanErr
}

// replayBuffered is Replay with the buffered segment scanner.
func (l *Log) replayBuffered(fn func(Record) error) error {
	return l.replayWith(iterateRecordsBuffered, fn)
}

// iterateRecordsBuffered is iterateRecords reading through a large
// bufio.Reader instead of issuing two read calls per record. Bodies that
// will reach fn are allocated individually — the pipelined replay hands
// payloads to decode workers that outlive the buffer window — while
// validation-only records (fn == nil, or below the low-water mark) reuse
// one scratch buffer, so the Open-time scan allocates nothing per record.
func iterateRecordsBuffered(f *os.File, base, limit, skipBelow int64, fn func(Record) error) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: seek: %w", err)
	}
	br := bufio.NewReaderSize(io.LimitReader(f, limit), replayBufBytes)
	var off int64
	hdr := make([]byte, recHeaderSize)
	var scratch []byte
	for off < limit {
		if _, err := io.ReadFull(br, hdr); err != nil {
			return off, nil // clean EOF or torn header
		}
		total := binary.LittleEndian.Uint32(hdr[0:4])
		if total < recHeaderSize || total > maxRecordSize || off+int64(total) > limit {
			return off, nil
		}
		need := int(total - recHeaderSize)
		var body []byte
		if fn != nil && base+off >= skipBelow {
			body = make([]byte, need)
		} else {
			if cap(scratch) < need {
				scratch = make([]byte, need)
			}
			body = scratch[:need]
		}
		if _, err := io.ReadFull(br, body); err != nil {
			return off, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return off, nil // corrupt
		}
		ownerLen := int(binary.LittleEndian.Uint16(hdr[10:12]))
		if ownerLen > len(body) {
			return off, nil
		}
		if fn != nil && base+off >= skipBelow {
			rec := Record{
				LSN:     LSN(base + off),
				Type:    RecordType(binary.LittleEndian.Uint16(hdr[8:10])),
				Owner:   string(body[:ownerLen]),
				Payload: body[ownerLen:],
			}
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += int64(total)
	}
	return off, nil
}
