package wal

// Replication primitives (DESIGN.md §5.4). A primary's log ships every
// durable batch through the Shipper hook in its exact on-disk framing; the
// standby's log ingests those bytes with AppendRaw, and a trailing standby
// catches up from the primary's disk via ReadRaw. ForEachFrame/ValidFrames
// expose the record framing over plain byte slices so the replication layer
// (and its fuzzer) validate shipped batches with the same valid-prefix
// semantics the on-disk scanners use.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"
)

// ErrCompacted is returned by ReadRaw when the requested LSN lies below the
// oldest retained segment: a checkpoint has reclaimed those bytes, so a
// follower that far behind needs a full state transfer, not log catch-up.
var ErrCompacted = errors.New("wal: requested LSN below segment floor")

// ForEachFrame scans buf as a sequence of framed records whose first byte
// sits at global LSN base, invoking fn (when non-nil) for each valid record.
// It stops at the first invalid frame — truncated header or body, length out
// of range, checksum mismatch, owner overrun — and returns the byte length
// of the valid prefix plus the number of records in it, mirroring the
// on-disk scanners' torn-tail tolerance. A non-nil fn error ends the scan
// and is returned; the Record's Owner and Payload alias buf.
func ForEachFrame(base LSN, buf []byte, fn func(Record) error) (int, int, error) {
	var off, records int
	for off+recHeaderSize <= len(buf) {
		hdr := buf[off : off+recHeaderSize]
		total := int(binary.LittleEndian.Uint32(hdr[0:4]))
		if total < recHeaderSize || total > maxRecordSize || off+total > len(buf) {
			return off, records, nil
		}
		body := buf[off+recHeaderSize : off+total]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return off, records, nil
		}
		ownerLen := int(binary.LittleEndian.Uint16(hdr[10:12]))
		if ownerLen > len(body) {
			return off, records, nil
		}
		if fn != nil {
			rec := Record{
				LSN:     LSN(int64(base) + int64(off)),
				Type:    RecordType(binary.LittleEndian.Uint16(hdr[8:10])),
				Owner:   string(body[:ownerLen]),
				Payload: body[ownerLen:],
			}
			if err := fn(rec); err != nil {
				return off, records, err
			}
		}
		off += total
		records++
	}
	return off, records, nil
}

// ValidFrames reports the byte length of buf's valid framed-record prefix
// and how many records it holds.
func ValidFrames(buf []byte) (int, int) {
	n, records, _ := ForEachFrame(0, buf, nil)
	return n, records
}

// AppendRaw appends already-framed records at exactly LSN start — the
// follower half of WAL shipping. The frames must parse completely
// (ValidFrames over all of them) and start must equal the log's current
// tail; a gap or overlap is refused, letting the replication layer detect a
// missed batch and fall back to catch-up. The bytes are written and (with
// SyncOnAppend) forced as one batch.
func (l *Log) AppendRaw(start LSN, frames []byte) error {
	if len(frames) == 0 {
		return nil
	}
	valid, records := ValidFrames(frames)
	if valid != len(frames) {
		return fmt.Errorf("wal: raw append: malformed frames (%d/%d bytes valid)", valid, len(frames))
	}
	l.writeSem <- struct{}{}
	defer func() { <-l.writeSem }()
	// Resolve any reservations first so the gap check sees the true tail
	// (a follower log has no appenders, but keep the invariant anyway).
	l.commitBatch()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	if int64(start) != l.written {
		return fmt.Errorf("wal: raw append gap: have tail %d, batch starts at %d", l.written, start)
	}
	atomic.AddUint64(&l.appends, uint64(records))
	atomic.AddUint64(&l.batches, 1)
	if err := l.faults.At(FaultAppendSync); err != nil {
		werr := fmt.Errorf("wal: write: %w", err)
		l.fail(werr)
		return werr
	}
	if _, err := l.f.Write(frames); err != nil {
		werr := fmt.Errorf("wal: write: %w", err)
		l.fail(werr)
		return werr
	}
	l.written += int64(len(frames))
	if l.syncOnAppend {
		atomic.AddUint64(&l.syncs, 1)
		if err := l.f.Sync(); err != nil {
			werr := fmt.Errorf("wal: sync: %w", err)
			l.fail(werr)
			return werr
		}
	}
	l.mu.Lock()
	l.size = l.written
	l.mu.Unlock()
	l.maybeRotate()
	return nil
}

// ReadRaw returns up to maxBytes of durable, whole-frame log content
// starting at LSN from, plus the record count — the catch-up half of WAL
// shipping. Bytes below the durable tail are immutable, so the read runs
// without blocking appenders (the write slot is taken only to snapshot the
// tail). It returns ErrCompacted when from has been reclaimed by a
// checkpoint, and (nil, 0, nil) at the tail. maxBytes <= 0 means one
// segment's worth; the window grows internally if a single frame exceeds it.
func (l *Log) ReadRaw(from LSN, maxBytes int) ([]byte, int, error) {
	if maxBytes <= 0 {
		maxBytes = int(DefaultSegmentBytes)
	}
	for {
		buf, durable, err := l.readRawWindow(from, maxBytes)
		if err != nil {
			return nil, 0, err
		}
		valid, records := ValidFrames(buf)
		if valid > 0 || len(buf) == 0 {
			return buf[:valid], records, nil
		}
		if int64(from)+int64(len(buf)) >= durable {
			// A partial frame at the durable tail cannot happen (batches land
			// whole); treat it as "nothing new" rather than spin.
			return nil, 0, nil
		}
		// The first frame is larger than the window: widen and retry.
		maxBytes *= 2
		if maxBytes > maxRecordSize+recHeaderSize {
			return nil, 0, fmt.Errorf("wal: raw read: frame at %d exceeds %d bytes", from, maxRecordSize)
		}
	}
}

// readRawWindow reads the raw byte range [from, min(from+maxBytes, tail))
// across segments, returning it with the durable tail it was bounded by.
func (l *Log) readRawWindow(from LSN, maxBytes int) ([]byte, int64, error) {
	l.writeSem <- struct{}{}
	l.mu.Lock()
	closed := l.closed
	starts := append([]int64(nil), l.starts...)
	l.mu.Unlock()
	durable := l.written
	<-l.writeSem
	if closed {
		return nil, 0, ErrClosed
	}
	f := int64(from)
	if len(starts) == 0 || f < starts[0] {
		return nil, 0, ErrCompacted
	}
	if f >= durable {
		return nil, durable, nil
	}
	end := durable
	if e := f + int64(maxBytes); e < end {
		end = e
	}
	out := make([]byte, 0, end-f)
	for i, st := range starts {
		segEnd := durable
		if i+1 < len(starts) {
			segEnd = starts[i+1]
		}
		if segEnd <= f || st >= end {
			continue
		}
		lo := f
		if st > lo {
			lo = st
		}
		hi := end
		if segEnd < hi {
			hi = segEnd
		}
		if hi <= lo {
			continue
		}
		sf, err := os.Open(l.segPath(st))
		if err != nil {
			if os.IsNotExist(err) {
				// A concurrent checkpoint reclaimed it mid-read.
				return nil, 0, ErrCompacted
			}
			return nil, 0, fmt.Errorf("wal: raw read: %w", err)
		}
		chunk := make([]byte, hi-lo)
		_, rerr := sf.ReadAt(chunk, lo-st)
		sf.Close()
		if rerr != nil {
			return nil, 0, fmt.Errorf("wal: raw read: %w", rerr)
		}
		out = append(out, chunk...)
	}
	return out, durable, nil
}
