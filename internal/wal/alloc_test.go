package wal

import (
	"path/filepath"
	"testing"
)

// TestFrameIntoZeroAllocs pins the pooled framing path: with a buffer of
// sufficient capacity (what the frame pool provides at steady state),
// framing a record allocates nothing.
func TestFrameIntoZeroAllocs(t *testing.T) {
	payload := make([]byte, 512)
	dst := make([]byte, 0, recHeaderSize+8+len(payload))
	if n := testing.AllocsPerRun(200, func() {
		out, err := frameInto(dst[:0], 7, "owner-xy", payload)
		if err != nil || len(out) != recHeaderSize+8+len(payload) {
			t.Fatalf("frameInto: len=%d err=%v", len(out), err)
		}
	}); n != 0 {
		t.Fatalf("frameInto allocates %v per op, want 0", n)
	}
}

// TestFramePoolRoundTrip checks the recycle path end to end: buffers handed
// to the append path come back to the pool after the batch commits, and the
// on-disk records stay intact across pool reuse.
func TestFramePoolRoundTrip(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "wal"), Options{SyncOnAppend: false})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const records = 64
	for i := 0; i < records; i++ {
		if _, err := l.Append(3, "own", []byte("payload-payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := l.Replay(func(r Record) error {
		if r.Owner != "own" || string(r.Payload) != "payload-payload-payload" {
			t.Fatalf("record %d corrupted across pool reuse: %+v", n, r)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != records {
		t.Fatalf("replayed %d records, want %d", n, records)
	}
}

// BenchmarkAppendAllocs reports the end-to-end append allocation footprint
// (commitReq + done channel + wait closure remain; the record buffer itself
// is pooled).
func BenchmarkAppendAllocs(b *testing.B) {
	l, err := Open(filepath.Join(b.TempDir(), "wal"), Options{SyncOnAppend: false})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(1, "bench", payload); err != nil {
			b.Fatal(err)
		}
	}
}
