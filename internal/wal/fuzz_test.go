package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedSegment builds a real segment image: a fresh log with a few
// records, returned as raw bytes.
func fuzzSeedSegment(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	l, err := Open(dir, Options{SyncOnAppend: true})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(RecordType(1+i%3), fmt.Sprintf("owner-%d", i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	seg, err := os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		f.Fatal(err)
	}
	return seg
}

// FuzzWALFrameDecode feeds arbitrary bytes to the log as an on-disk segment.
// Open must never panic, must recover exactly the valid record prefix
// (truncating torn or corrupt tails), the serial and buffered scan paths
// must agree record for record, and the recovered log must accept new
// appends that survive a reopen.
func FuzzWALFrameDecode(f *testing.F) {
	seed := fuzzSeedSegment(f)
	f.Add([]byte{})
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                      // torn tail mid-record
	f.Add(append(bytes.Clone(seed), 0xA5, 0xA5))   // garbage tail
	f.Add(append(bytes.Clone(seed), seed...))      // duplicated frames
	f.Add(bytes.Repeat([]byte{0xFF}, 64))          // huge bogus length header
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // short header
	mutated := bytes.Clone(seed)
	if len(mutated) > 20 {
		mutated[20] ^= 0x40 // flip a bit inside a record body (CRC break)
	}
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, seg []byte) {
		var runs [][]Record
		for _, buffered := range []bool{false, true} {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segName(0)), seg, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(dir, Options{BufferedScan: buffered})
			if err != nil {
				t.Fatalf("Open(buffered=%t) rejected a recoverable directory: %v", buffered, err)
			}
			var recs []Record
			if err := l.Replay(func(r Record) error {
				recs = append(recs, Record{
					LSN: r.LSN, Type: r.Type, Owner: r.Owner,
					Payload: bytes.Clone(r.Payload),
				})
				return nil
			}); err != nil {
				t.Fatalf("Replay(buffered=%t): %v", buffered, err)
			}
			runs = append(runs, recs)
			// The recovered log must be writable and the write durable.
			if _, err := l.Append(RecordType(7), "fuzz", []byte("post-recovery")); err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{BufferedScan: buffered})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			n := 0
			last := Record{}
			if err := l2.Replay(func(r Record) error { n++; last = r; return nil }); err != nil {
				t.Fatalf("reopen replay: %v", err)
			}
			if n != len(recs)+1 || string(last.Payload) != "post-recovery" {
				t.Fatalf("post-recovery append lost: %d records after reopen, want %d", n, len(recs)+1)
			}
			l2.Close()
		}
		serial, bufd := runs[0], runs[1]
		if len(serial) != len(bufd) {
			t.Fatalf("serial scan recovered %d records, buffered %d", len(serial), len(bufd))
		}
		for i := range serial {
			a, b := serial[i], bufd[i]
			if a.LSN != b.LSN || a.Type != b.Type || a.Owner != b.Owner || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("record %d differs between serial and buffered scan", i)
			}
		}
	})
}
