package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"concord/internal/fault"
)

// fill appends n records of ~40 bytes each and returns their LSNs.
func fill(t *testing.T, l *Log, n int, tag string) []LSN {
	t.Helper()
	lsns := make([]LSN, 0, n)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(9, "owner", []byte(fmt.Sprintf("%s-%04d-padpadpadpadpad", tag, i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns = append(lsns, lsn)
	}
	return lsns
}

func replayLSNs(t *testing.T, l *Log) []LSN {
	t.Helper()
	var out []LSN
	if err := l.Replay(func(r Record) error { out = append(out, r.LSN); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestSegmentRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.wal")
	l, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	lsns := fill(t, l, 50, "r")
	if l.SegmentCount() < 3 {
		t.Fatalf("SegmentCount = %d, want >= 3 with 200-byte segments", l.SegmentCount())
	}
	got := replayLSNs(t, l)
	if len(got) != len(lsns) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(lsns))
	}
	for i := range got {
		if got[i] != lsns[i] {
			t.Fatalf("record %d at LSN %d, want %d", i, got[i], lsns[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the whole multi-segment log replays identically and appends
	// continue at the tail.
	l2, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got = replayLSNs(t, l2)
	if len(got) != len(lsns) {
		t.Fatalf("replayed %d records after reopen, want %d", len(got), len(lsns))
	}
	lsn, err := l2.Append(9, "owner", []byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= lsns[len(lsns)-1] {
		t.Fatalf("post-reopen LSN %d not after tail %d", lsn, lsns[len(lsns)-1])
	}
}

func TestCheckpointDeletesCoveredSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "del.wal")
	l, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsns := fill(t, l, 60, "d")
	segsBefore, diskBefore := l.SegmentCount(), l.DiskBytes()
	mark := lsns[40]
	if err := l.Checkpoint(mark); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() >= segsBefore {
		t.Fatalf("segments %d -> %d: checkpoint deleted nothing", segsBefore, l.SegmentCount())
	}
	if l.DiskBytes() >= diskBefore {
		t.Fatalf("disk bytes %d -> %d: checkpoint freed nothing", diskBefore, l.DiskBytes())
	}
	got := replayLSNs(t, l)
	want := lsns[40:]
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want the %d at/above the mark", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d at LSN %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCheckpointSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mark.wal")
	l, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	lsns := fill(t, l, 40, "m")
	mark := lsns[25]
	if err := l.Checkpoint(mark); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LowWater() != mark {
		t.Fatalf("LowWater after reopen = %d, want %d", l2.LowWater(), mark)
	}
	got := replayLSNs(t, l2)
	if len(got) != len(lsns[25:]) || got[0] != mark {
		t.Fatalf("replay after reopen: %d records starting at %v, want %d starting at %d",
			len(got), got[:1], len(lsns[25:]), mark)
	}
}

// TestCheckpointBeyondTail covers the recovery-completion path: a snapshot
// installed at an LSN the log never made durable (crash between snapshot
// install and log force). The log must restart at that LSN and never hand
// out an LSN below it again.
func TestCheckpointBeyondTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adv.wal")
	l, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 10, "a")
	mark := LSN(l.Size() + 999)
	if err := l.Checkpoint(mark); err != nil {
		t.Fatal(err)
	}
	if l.Size() != int64(mark) {
		t.Fatalf("Size after advance = %d, want %d", l.Size(), mark)
	}
	lsn, err := l.Append(9, "owner", []byte("after-advance"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != mark {
		t.Fatalf("first post-advance LSN = %d, want %d", lsn, mark)
	}
	if got := replayLSNs(t, l); len(got) != 1 || got[0] != mark {
		t.Fatalf("replay after advance = %v, want [%d]", got, mark)
	}
	l.Close()
	l2, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayLSNs(t, l2); len(got) != 1 || got[0] != mark {
		t.Fatalf("replay after reopen = %v, want [%d]", got, mark)
	}
}

// TestCheckpointMonotonic: a mark at or below the current low-water is a
// no-op, so a stale caller can never resurrect deleted history.
func TestCheckpointMonotonic(t *testing.T) {
	l := openTemp(t)
	lsns := fill(t, l, 10, "n")
	if err := l.Checkpoint(lsns[8]); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(lsns[2]); err != nil {
		t.Fatal(err)
	}
	if l.LowWater() != lsns[8] {
		t.Fatalf("LowWater = %d, want %d (monotonic)", l.LowWater(), lsns[8])
	}
}

// errCrash is the sentinel the crash hook returns.
var errCrash = errors.New("injected crash")

// TestCheckpointCrashPoints drives wal.Checkpoint into a simulated crash at
// every protocol step and verifies the reopened log loses nothing that was
// not durably checkpointed: every record at or above the new mark survives,
// and records below it are only skipped once the mark is durably installed.
func TestCheckpointCrashPoints(t *testing.T) {
	points := []string{CrashBeforeMark, CrashMarkTmp, CrashMarkInstalled, CrashSegmentDeleted}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "crash.wal")
			reg := fault.New()
			l, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200, Faults: reg})
			if err != nil {
				t.Fatal(err)
			}
			lsns := fill(t, l, 60, "c")
			mark := lsns[40]
			reg.Arm(point, errCrash)
			err = l.Checkpoint(mark)
			if !errors.Is(err, errCrash) {
				t.Fatalf("Checkpoint with crash at %s = %v, want injected crash", point, err)
			}
			// Simulate the process dying: abandon l without Close and reopen
			// the directory.
			l2, err := Open(path, Options{SyncOnAppend: true, SegmentBytes: 200})
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", point, err)
			}
			defer l2.Close()
			lw := l2.LowWater()
			if lw != 0 && lw != mark {
				t.Fatalf("LowWater after crash at %s = %d, want 0 or %d", point, lw, mark)
			}
			// Open completes an interrupted deletion: no sealed segment may
			// survive lying entirely below the recovered low-water mark.
			starts, err := listSegments(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i+1 < len(starts); i++ {
				if LSN(starts[i+1]) <= lw {
					t.Fatalf("crash at %s: covered segment %d leaked past reopen (low-water %d)", point, starts[i], lw)
				}
			}
			got := replayLSNs(t, l2)
			want := lsns
			if lw == mark {
				want = lsns[40:]
			}
			if len(got) != len(want) {
				t.Fatalf("crash at %s: replayed %d records, want %d (low-water %d)", point, len(got), len(want), lw)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("crash at %s: record %d at LSN %d, want %d", point, i, got[i], want[i])
				}
			}
			// The log stays fully usable: the next checkpoint completes.
			if err := l2.Checkpoint(mark); err != nil {
				t.Fatalf("re-checkpoint after crash at %s: %v", point, err)
			}
			if l2.LowWater() != mark {
				t.Fatalf("LowWater after re-checkpoint = %d, want %d", l2.LowWater(), mark)
			}
		})
	}
}

// TestMigrateSingleFileLog: a log written by the old single-file format is
// adopted as the first segment.
func TestMigrateSingleFileLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.wal")
	var raw []byte
	for i := 0; i < 3; i++ {
		buf, err := frameInto(nil, 5, "legacy", []byte(fmt.Sprintf("old-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, buf...)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatalf("Open over single-file log: %v", err)
	}
	defer l.Close()
	var owners []string
	if err := l.Replay(func(r Record) error { owners = append(owners, r.Owner); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(owners) != 3 || owners[0] != "legacy" {
		t.Fatalf("migrated replay = %v", owners)
	}
	if _, err := l.Append(5, "new", []byte("post-migration")); err != nil {
		t.Fatal(err)
	}
}
