package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) *Log {
	t.Helper()
	l, err := Open(filepath.Join(t.TempDir(), "test.wal"), Options{SyncOnAppend: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l := openTemp(t)
	want := []Record{
		{Type: 1, Owner: "dop-1", Payload: []byte("hello")},
		{Type: 2, Owner: "da-7", Payload: []byte{}},
		{Type: 3, Owner: "", Payload: []byte("no owner")},
	}
	for i := range want {
		lsn, err := l.Append(want[i].Type, want[i].Owner, want[i].Payload)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want[i].LSN = lsn
	}
	var got []Record
	if err := l.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LSN != want[i].LSN || got[i].Type != want[i].Type ||
			got[i].Owner != want[i].Owner || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLSNMonotonic(t *testing.T) {
	l := openTemp(t)
	var prev LSN
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(1, "x", []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && lsn <= prev {
			t.Fatalf("LSN not increasing: %d after %d", lsn, prev)
		}
		prev = lsn
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.wal")
	l, err := Open(path, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, "a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(path, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Append(2, "b", []byte("two")); err != nil {
		t.Fatal(err)
	}
	var n int
	var last Record
	if err := l2.Replay(func(r Record) error { n++; last = r; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records after reopen, want 2", n)
	}
	if string(last.Payload) != "two" || last.Type != 2 {
		t.Fatalf("last record = %+v", last)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.wal")
	l, err := Open(path, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, "a", []byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	size := l.Size()
	l.Close()

	// Simulate a torn write: append garbage bytes to the active segment.
	f, err := os.OpenFile(filepath.Join(path, segName(0)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer l2.Close()
	if l2.Size() != size {
		t.Fatalf("Size after reopen = %d, want %d (torn tail removed)", l2.Size(), size)
	}
	var n int
	if err := l2.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d, want 3", n)
	}
}

func TestCorruptMiddleStopsReplayAtCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.wal")
	l, err := Open(path, Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, "a", []byte("first")); err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(1, "a", []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a payload byte in the second record (segment 0 starts at LSN 0,
	// so the file offset equals the LSN).
	seg := filepath.Join(path, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[int(lsn2)+recHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var payloads []string
	if err := l2.Replay(func(r Record) error { payloads = append(payloads, string(r.Payload)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 || payloads[0] != "first" {
		t.Fatalf("replay after corruption = %v, want [first]", payloads)
	}
}

func TestCheckpointSkipsCoveredRecords(t *testing.T) {
	l := openTemp(t)
	if _, err := l.Append(1, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(LSN(l.Size())); err != nil {
		t.Fatal(err)
	}
	if got := l.LowWater(); got != LSN(l.Size()) {
		t.Fatalf("LowWater = %d, want %d", got, l.Size())
	}
	var n int
	if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replayed %d records after checkpoint", n)
	}
	lsn, err := l.Append(2, "b", []byte("y"))
	if err != nil {
		t.Fatalf("append after checkpoint: %v", err)
	}
	if lsn < l.LowWater() {
		t.Fatalf("post-checkpoint append at LSN %d below low-water %d", lsn, l.LowWater())
	}
	n = 0
	if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want the 1 after the checkpoint", n)
	}
}

func TestClosedErrors(t *testing.T) {
	l := openTemp(t)
	l.Close()
	if _, err := l.Append(1, "a", nil); err != ErrClosed {
		t.Fatalf("Append on closed = %v, want ErrClosed", err)
	}
	if err := l.Replay(func(Record) error { return nil }); err != ErrClosed {
		t.Fatalf("Replay on closed = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "c.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const g, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := l.Append(RecordType(id), fmt.Sprintf("g%d", id), []byte("p")); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var n int
	if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != g*per {
		t.Fatalf("replayed %d, want %d", n, g*per)
	}
}

// Property: any sequence of (type, owner, payload) appends replays back
// identically, in order.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(types []uint16, owners []string, payloads [][]byte) bool {
		n := len(types)
		if len(owners) < n {
			n = len(owners)
		}
		if len(payloads) < n {
			n = len(payloads)
		}
		if n == 0 {
			return true
		}
		dir, err := os.MkdirTemp("", "walquick")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := Open(filepath.Join(dir, "q.wal"), Options{})
		if err != nil {
			return false
		}
		defer l.Close()
		for i := 0; i < n; i++ {
			if _, err := l.Append(RecordType(types[i]), owners[i], payloads[i]); err != nil {
				return false
			}
		}
		i := 0
		ok := true
		err = l.Replay(func(r Record) error {
			if i >= n || r.Type != RecordType(types[i]) || r.Owner != owners[i] ||
				!bytes.Equal(r.Payload, payloads[i]) {
				ok = false
			}
			i++
			return nil
		})
		return err == nil && ok && i == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
