package coop

import (
	"fmt"
	"sort"

	"concord/internal/feature"
	"concord/internal/version"
)

// AffectedByWithdrawal analyzes whether a withdrawn pre-released DOV was
// used within the DA's local DOPs, "thus affecting locally derived DOVs"
// (Sect. 5.3): it returns every version of the DA's derivation graph that
// has the withdrawn version among its transitive ancestors (foreign parent
// edges included). An empty result means the designer need not invalidate
// anything.
func (cm *CM) AffectedByWithdrawal(da string, withdrawn version.ID) ([]version.ID, error) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	if _, err := cm.get(da); err != nil {
		return nil, err
	}
	g, err := cm.repo.Graph(da)
	if err != nil {
		return nil, err
	}
	// ancestorsOf chases parent edges through the global repository index,
	// crossing graph boundaries (usage inputs are foreign parents).
	memo := make(map[version.ID]bool)
	var reaches func(id version.ID) bool
	reaches = func(id version.ID) bool {
		if id == withdrawn {
			return true
		}
		if hit, ok := memo[id]; ok {
			return hit
		}
		memo[id] = false // cycle guard (derivations are acyclic anyway)
		v, err := cm.repo.Get(id)
		if err != nil {
			return false
		}
		for _, p := range v.Parents {
			if reaches(p) {
				memo[id] = true
				return true
			}
		}
		return false
	}
	var out []version.ID
	for _, id := range g.IDs() {
		if id == withdrawn {
			continue
		}
		if reaches(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// AutoPropagate searches the DA's derivation graph for a version whose
// quality state covers the required features — evaluating unevaluated
// versions on the fly — and propagates the first match. It implements the
// canonical ECA reaction "WHEN Require IF (required DOV available) THEN
// Propagate" (Sect. 4.2). ok is false when no version qualifies.
func (cm *CM) AutoPropagate(da string, features []string) (version.ID, bool, error) {
	cm.mu.RLock()
	st, err := cm.get(da)
	if err != nil {
		cm.mu.RUnlock()
		return "", false, err
	}
	st.mu.Lock()
	if _, legal := Legal(st.da.State, OpPropagate); !legal {
		state := st.da.State
		st.mu.Unlock()
		cm.mu.RUnlock()
		return "", false, fmt.Errorf("%w: AutoPropagate by %s in state %s", ErrIllegalOp, da, state)
	}
	spec := st.da.Spec
	st.mu.Unlock()
	g, err := cm.repo.Graph(da)
	if err != nil {
		cm.mu.RUnlock()
		return "", false, err
	}
	var match version.ID
	for _, id := range g.IDs() {
		v, err := cm.repo.Get(id)
		if err != nil {
			continue
		}
		fulfilled := v.Fulfilled
		if len(fulfilled) == 0 && v.Object != nil {
			q := spec.Evaluate(v.Object, cm.reg)
			fulfilled = q.Fulfilled
			cm.repo.SetFulfilled(id, fulfilled) //nolint:errcheck // cache
			if q.Final() && !spec.Empty() {
				cm.repo.SetStatus(id, version.StatusFinal) //nolint:errcheck // cache
			}
		}
		if (feature.QualityState{Fulfilled: fulfilled}).Covers(features) {
			match = id
			break
		}
	}
	cm.mu.RUnlock()
	if match == "" {
		return "", false, nil
	}
	if _, err := cm.Propagate(da, match); err != nil {
		return "", false, err
	}
	return match, true, nil
}
