// Package coop implements CONCORD's Administration/Cooperation (AC) level —
// the cooperation layer of the architecture, above design flow management
// (DFM) and design object management (DOM): design activities (DAs), the DA
// hierarchy grown by delegation, the explicitly modeled cooperation
// relationships (delegation, negotiation, usage), and the central
// cooperation manager (CM) enforcing their integrity constraints and the DA
// state-transition graph of Fig. 7 (Sects. 4.1, 5.4).
package coop

import (
	"fmt"

	"concord/internal/feature"
	"concord/internal/version"
)

// State is a DA lifecycle state (Fig. 7).
type State uint8

// DA states.
const (
	// StateGenerated: the DA got initiated via a description vector but
	// has not begun its work.
	StateGenerated State = iota + 1
	// StateActive: the DA performs its design work.
	StateActive
	// StateNegotiating: the DA negotiates; internal processing suspended.
	StateNegotiating
	// StateReadyForTermination: a final DOV was reached (or the
	// specification proved impossible); the DA awaits its super-DA.
	StateReadyForTermination
	// StateTerminated: the DA vanished from the hierarchy.
	StateTerminated
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateGenerated:
		return "generated"
	case StateActive:
		return "active"
	case StateNegotiating:
		return "negotiating"
	case StateReadyForTermination:
		return "ready-for-termination"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// OpCode numbers the 15 cooperation operations exactly as Fig. 7 does.
type OpCode uint8

// Cooperation operations (Fig. 7).
const (
	OpInitDesign         OpCode = 1
	OpCreateSubDA        OpCode = 2
	OpStart              OpCode = 3
	OpModifySubDASpec    OpCode = 4
	OpSubDAReadyToCommit OpCode = 5
	OpTerminateSubDA     OpCode = 6
	OpEvaluate           OpCode = 7
	OpSubDAImpossible    OpCode = 8
	OpPropagate          OpCode = 9
	OpRequire            OpCode = 10
	OpCreateNegotiation  OpCode = 11
	OpPropose            OpCode = 12
	OpAgree              OpCode = 13
	OpDisagree           OpCode = 14
	OpSubDASpecConflict  OpCode = 15
)

// opNames maps codes to the names used in Fig. 7.
var opNames = map[OpCode]string{
	OpInitDesign:         "Init_Design",
	OpCreateSubDA:        "Create_Sub_DA",
	OpStart:              "Start",
	OpModifySubDASpec:    "Modify_Sub_DA_Spec",
	OpSubDAReadyToCommit: "Sub_DA_Ready_To_Commit",
	OpTerminateSubDA:     "Terminate_Sub_DA",
	OpEvaluate:           "Evaluate",
	OpSubDAImpossible:    "Sub_DA_Impossible_Spec",
	OpPropagate:          "Propagate",
	OpRequire:            "Require",
	OpCreateNegotiation:  "Create_Negotiation_Rel",
	OpPropose:            "Propose",
	OpAgree:              "Agree",
	OpDisagree:           "Disagree",
	OpSubDASpecConflict:  "Sub_DA_Spec_Conflict",
}

// String returns the operation name of Fig. 7.
func (o OpCode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// AllOps lists the operation codes in figure order.
func AllOps() []OpCode {
	out := make([]OpCode, 0, 15)
	for i := OpCode(1); i <= 15; i++ {
		out = append(out, i)
	}
	return out
}

// AllStates lists the DA states in lifecycle order.
func AllStates() []State {
	return []State{StateGenerated, StateActive, StateNegotiating, StateReadyForTermination, StateTerminated}
}

// transitions encodes the simplified state/transition graph of Fig. 7: for a
// DA in a given state, which operations (applied to *that* DA as subject)
// are legal, and which state they lead to. Operations marked with an
// asterisk in the figure are performed by a cooperating DA but still affect
// the subject's state (e.g. a received Propose moves the receiver to
// negotiating).
var transitions = map[State]map[OpCode]State{
	StateGenerated: {
		OpStart:           StateActive,
		OpModifySubDASpec: StateGenerated, // re-specify before start
		OpTerminateSubDA:  StateTerminated,
	},
	StateActive: {
		OpCreateSubDA:        StateActive, // issuer stays active
		OpModifySubDASpec:    StateActive, // restart from the beginning
		OpSubDAReadyToCommit: StateReadyForTermination,
		OpTerminateSubDA:     StateTerminated,
		OpEvaluate:           StateActive,
		OpSubDAImpossible:    StateReadyForTermination,
		OpPropagate:          StateActive,
		OpRequire:            StateActive, // received requirement
		OpCreateNegotiation:  StateActive,
		OpPropose:            StateNegotiating, // sent or received
	},
	StateNegotiating: {
		OpPropose:           StateNegotiating, // counter-proposals
		OpAgree:             StateActive,
		OpDisagree:          StateNegotiating,
		OpSubDASpecConflict: StateActive, // escalated to the super-DA
		OpModifySubDASpec:   StateActive,
		OpTerminateSubDA:    StateTerminated,
	},
	StateReadyForTermination: {
		OpModifySubDASpec: StateActive, // keep results, pursue new goal
		OpTerminateSubDA:  StateTerminated,
	},
	StateTerminated: {},
}

// Legal reports whether op is legal for a DA in state s, and the successor
// state if it is.
func Legal(s State, op OpCode) (State, bool) {
	next, ok := transitions[s][op]
	return next, ok
}

// Relationship is a cooperation relationship type (Sect. 4.1).
type Relationship uint8

// Relationship types.
const (
	// RelDelegation links a super-DA to a created sub-DA.
	RelDelegation Relationship = iota + 1
	// RelNegotiation links sub-DAs of the same super-DA negotiating their
	// specifications.
	RelNegotiation
	// RelUsage links a requiring DA to a supporting DA for controlled
	// exchange of pre-released DOVs.
	RelUsage
)

// String returns the relationship name.
func (r Relationship) String() string {
	switch r {
	case RelDelegation:
		return "delegation"
	case RelNegotiation:
		return "negotiation"
	case RelUsage:
		return "usage"
	default:
		return fmt.Sprintf("relationship(%d)", uint8(r))
	}
}

// DA is a design activity: "the operational unit realizing a design task"
// characterized by the description vector <DOT(DOV0), SPEC, designer, DC>
// (Sect. 4.1).
type DA struct {
	// ID identifies the DA hierarchy-wide.
	ID string
	// DOT is the design object type of the DA's design states.
	DOT string
	// DOV0 optionally initializes the DA's scope with a first version that
	// will be an ancestor of all DOVs created within the DA.
	DOV0 version.ID
	// Spec is the design specification: the goal as a feature set.
	Spec *feature.Spec
	// Designer is responsible for the actions performed within the DA.
	Designer string
	// DC names the design strategy (the script at the DC level) to apply.
	DC string

	// State is the Fig. 7 lifecycle state.
	State State
	// Parent is the super-DA ("" for the top-level DA).
	Parent string
	// Children are the delegated sub-DAs in creation order.
	Children []string
	// Negotiations are the peer DAs connected by negotiation relationships.
	Negotiations []string
	// UsesFrom records usage relationships where this DA requires: peer →
	// required feature names.
	UsesFrom map[string][]string
	// SupportsTo records usage relationships where this DA supports.
	SupportsTo map[string]bool
	// InheritedFinals are final DOVs devolved from terminated sub-DAs.
	InheritedFinals []version.ID
}
