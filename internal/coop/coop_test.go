package coop

import (
	"errors"
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/feature"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/script"
	"concord/internal/version"
)

// harness bundles a CM deployment for tests.
type harness struct {
	cat    *catalog.Catalog
	repo   *repo.Repository
	scopes *lock.ScopeTable
	reg    *feature.Registry
	cm     *CM
}

func newHarness(t *testing.T, dir string) *harness {
	t.Helper()
	cat := catalog.New()
	for _, d := range []*catalog.DOT{
		{
			Name: "stdcell",
			Attrs: []catalog.AttrDef{
				{Name: "name", Kind: catalog.KindString, Required: true},
				{Name: "area", Kind: catalog.KindFloat},
			},
		},
		{
			Name: "cell",
			Attrs: []catalog.AttrDef{
				{Name: "name", Kind: catalog.KindString, Required: true},
				{Name: "area", Kind: catalog.KindFloat},
				{Name: "routed", Kind: catalog.KindBool},
			},
			Components: []catalog.ComponentDef{{Name: "subcells", DOT: "stdcell"}},
		},
		{
			Name: "chip",
			Attrs: []catalog.AttrDef{
				{Name: "name", Kind: catalog.KindString, Required: true},
				{Name: "area", Kind: catalog.KindFloat},
			},
			Components: []catalog.ComponentDef{{Name: "cells", DOT: "cell"}},
		},
	} {
		if err := cat.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	r, err := repo.Open(cat, repo.Options{Dir: dir, Sync: dir != ""})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	scopes := lock.NewScopeTable()
	reg := feature.NewRegistry()
	cm, err := NewCM(r, scopes, reg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{cat: cat, repo: r, scopes: scopes, reg: reg, cm: cm}
}

// addDOV simulates a DOP checkin into a DA's derivation graph.
func (h *harness) addDOV(t *testing.T, da, id string, area float64, parents ...version.ID) version.ID {
	t.Helper()
	obj := catalog.NewObject("cell").Set("name", catalog.Str(id)).Set("area", catalog.Float(area))
	v := &version.DOV{
		ID: version.ID(id), DOT: "cell", DA: da, Parents: parents,
		Object: obj, Status: version.StatusWorking,
	}
	if err := h.repo.Checkin(v, len(parents) == 0); err != nil {
		t.Fatal(err)
	}
	if err := h.scopes.Own(da, id); err != nil {
		t.Fatal(err)
	}
	return version.ID(id)
}

func specArea(max float64) *feature.Spec {
	return feature.MustSpec(feature.Range("area-limit", "area", 0, max))
}

// initChipDA creates and starts a top-level chip DA.
func (h *harness) initChipDA(t *testing.T, id string, spec *feature.Spec) {
	t.Helper()
	if err := h.cm.InitDesign(Config{ID: id, DOT: "chip", Spec: spec, Designer: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.Start(id); err != nil {
		t.Fatal(err)
	}
}

// subDA creates and starts a sub-DA of super with a cell DOT.
func (h *harness) subDA(t *testing.T, super, id string, spec *feature.Spec, dov0 version.ID) {
	t.Helper()
	if err := h.cm.CreateSubDA(super, Config{ID: id, DOT: "cell", DOV0: dov0, Spec: spec, Designer: "bob"}); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.Start(id); err != nil {
		t.Fatal(err)
	}
}

// waitEvent subscribes a channel sink for a DA and returns a receiver.
func waitEvent(t *testing.T, cm *CM, da string) func(name string) script.Event {
	t.Helper()
	ch := make(chan script.Event, 16)
	cm.Subscribe(da, func(ev script.Event) { ch <- ev })
	return func(name string) script.Event {
		t.Helper()
		deadline := time.After(2 * time.Second)
		for {
			select {
			case ev := <-ch:
				if ev.Name == name {
					return ev
				}
			case <-deadline:
				t.Fatalf("timeout waiting for event %q at %s", name, da)
				return script.Event{}
			}
		}
	}
}

func TestInitDesignLifecycle(t *testing.T) {
	h := newHarness(t, "")
	if err := h.cm.InitDesign(Config{ID: "da1", DOT: "chip", Designer: "alice"}); err != nil {
		t.Fatal(err)
	}
	da, err := h.cm.Get("da1")
	if err != nil {
		t.Fatal(err)
	}
	if da.State != StateGenerated {
		t.Fatalf("state = %s, want generated", da.State)
	}
	if err := h.cm.InitDesign(Config{ID: "da1", DOT: "chip"}); !errors.Is(err, ErrDuplicateDA) {
		t.Fatalf("duplicate = %v", err)
	}
	if err := h.cm.InitDesign(Config{ID: "da2", DOT: "ghost"}); !errors.Is(err, catalog.ErrUnknownDOT) {
		t.Fatalf("unknown DOT = %v", err)
	}
	if err := h.cm.Start("da1"); err != nil {
		t.Fatal(err)
	}
	da, _ = h.cm.Get("da1")
	if da.State != StateActive {
		t.Fatalf("state = %s, want active", da.State)
	}
	// Start twice is illegal (active has no Start transition).
	if err := h.cm.Start("da1"); !errors.Is(err, ErrIllegalOp) {
		t.Fatalf("double start = %v", err)
	}
}

func TestCreateSubDAPartOfEnforcement(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "chip-da", nil)
	// cell is part of chip: allowed.
	if err := h.cm.CreateSubDA("chip-da", Config{ID: "cell-da", DOT: "cell"}); err != nil {
		t.Fatal(err)
	}
	// chip is NOT part of cell: delegation from a cell DA of a chip DOT
	// must fail.
	if err := h.cm.Start("cell-da"); err != nil {
		t.Fatal(err)
	}
	err := h.cm.CreateSubDA("cell-da", Config{ID: "bad", DOT: "chip"})
	if !errors.Is(err, ErrDOTNotPart) {
		t.Fatalf("inverted part-of = %v", err)
	}
	// Creation by a generated (unstarted) DA is illegal.
	if err := h.cm.CreateSubDA("chip-da", Config{ID: "c2", DOT: "cell"}); err != nil {
		t.Fatal(err)
	}
	err = h.cm.CreateSubDA("c2", Config{ID: "c3", DOT: "stdcell"})
	if !errors.Is(err, ErrIllegalOp) {
		t.Fatalf("create by generated DA = %v", err)
	}
	// The hierarchy is recorded.
	hier, err := h.cm.Hierarchy("chip-da")
	if err != nil {
		t.Fatal(err)
	}
	if len(hier) != 3 || hier[0] != "chip-da" {
		t.Fatalf("hierarchy = %v", hier)
	}
}

func TestDOV0MustBeInSuperScope(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	v0 := h.addDOV(t, "super", "v0", 100)
	// Foreign DOV0 not in scope.
	if err := h.repo.CreateGraph("other"); err != nil {
		t.Fatal(err)
	}
	err := h.cm.CreateSubDA("super", Config{ID: "sub-bad", DOT: "cell", DOV0: "ghost"})
	if !errors.Is(err, ErrOutOfScope) {
		t.Fatalf("out-of-scope DOV0 = %v", err)
	}
	// Legal DOV0 becomes readable by the sub-DA.
	if err := h.cm.CreateSubDA("super", Config{ID: "sub", DOT: "cell", DOV0: v0}); err != nil {
		t.Fatal(err)
	}
	if !h.scopes.InScope("sub", string(v0)) {
		t.Fatal("sub-DA cannot see its DOV0")
	}
}

func TestFig7Matrix(t *testing.T) {
	// The exhaustive legality matrix of the simplified state/transition
	// graph. Keyed claims from the paper:
	//  - generated: only Start, Terminate, Modify are possible
	//  - active: full cooperation; Propose suspends into negotiating
	//  - negotiating: only negotiation ops, spec change, termination
	//  - ready-for-termination: only Modify (back to active) and Terminate
	//  - terminated: nothing.
	type row struct {
		state State
		legal map[OpCode]State
	}
	rows := []row{
		{StateGenerated, map[OpCode]State{
			OpStart: StateActive, OpModifySubDASpec: StateGenerated, OpTerminateSubDA: StateTerminated,
		}},
		{StateActive, map[OpCode]State{
			OpCreateSubDA: StateActive, OpModifySubDASpec: StateActive,
			OpSubDAReadyToCommit: StateReadyForTermination, OpTerminateSubDA: StateTerminated,
			OpEvaluate: StateActive, OpSubDAImpossible: StateReadyForTermination,
			OpPropagate: StateActive, OpRequire: StateActive,
			OpCreateNegotiation: StateActive, OpPropose: StateNegotiating,
		}},
		{StateNegotiating, map[OpCode]State{
			OpPropose: StateNegotiating, OpAgree: StateActive, OpDisagree: StateNegotiating,
			OpSubDASpecConflict: StateActive, OpModifySubDASpec: StateActive,
			OpTerminateSubDA: StateTerminated,
		}},
		{StateReadyForTermination, map[OpCode]State{
			OpModifySubDASpec: StateActive, OpTerminateSubDA: StateTerminated,
		}},
		{StateTerminated, map[OpCode]State{}},
	}
	for _, r := range rows {
		for _, op := range AllOps() {
			next, ok := Legal(r.state, op)
			want, wantOK := r.legal[op]
			if ok != wantOK {
				t.Errorf("Legal(%s, %s) = %t, want %t", r.state, op, ok, wantOK)
				continue
			}
			if ok && next != want {
				t.Errorf("Legal(%s, %s) → %s, want %s", r.state, op, next, want)
			}
		}
	}
}

func TestEvaluateMarksFinal(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "da1", specArea(100))
	good := h.addDOV(t, "da1", "good", 80)
	bad := h.addDOV(t, "da1", "bad", 150)

	q, err := h.cm.Evaluate("da1", good)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Final() {
		t.Fatalf("good quality = %+v", q)
	}
	v, _ := h.repo.Get(good)
	if v.Status != version.StatusFinal {
		t.Fatalf("good status = %s", v.Status)
	}
	q, err = h.cm.Evaluate("da1", bad)
	if err != nil {
		t.Fatal(err)
	}
	if q.Final() {
		t.Fatal("bad DOV evaluated as final")
	}
	// Foreign DOV: out of scope.
	if err := h.repo.CreateGraph("other"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cm.Evaluate("da1", "ghost"); !errors.Is(err, ErrOutOfScope) {
		t.Fatalf("foreign evaluate = %v", err)
	}
}

func TestRequireThenPropagate(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "supporter", specArea(100), "")
	h.subDA(t, "super", "requirer", specArea(100), "")

	supporterEvents := waitEvent(t, h.cm, "supporter")
	requirerEvents := waitEvent(t, h.cm, "requirer")

	// Require before anything is propagated: pending + event.
	dov, ok, err := h.cm.Require("requirer", "supporter", []string{"area-limit"})
	if err != nil {
		t.Fatal(err)
	}
	if ok || dov != "" {
		t.Fatalf("premature grant: %s", dov)
	}
	ev := supporterEvents(EventRequire)
	if ev.Data["requirer"] != "requirer" {
		t.Fatalf("require event = %+v", ev)
	}
	pend, _ := h.cm.PendingRequires("supporter")
	if len(pend) != 1 {
		t.Fatalf("pending = %v", pend)
	}

	// Supporter derives a qualifying version, evaluates, propagates.
	v1 := h.addDOV(t, "supporter", "sup-v1", 60)
	if _, err := h.cm.Evaluate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	granted, err := h.cm.Propagate("supporter", v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(granted) != 1 || granted[0] != "requirer" {
		t.Fatalf("granted = %v", granted)
	}
	ev = requirerEvents(EventPropagated)
	if ev.Data["dov"] != string(v1) {
		t.Fatalf("propagated event = %+v", ev)
	}
	if !h.scopes.InScope("requirer", string(v1)) {
		t.Fatal("requirer cannot see the propagated DOV")
	}
	pend, _ = h.cm.PendingRequires("supporter")
	if len(pend) != 0 {
		t.Fatalf("pending after propagate = %v", pend)
	}
}

func TestRequireFindsExistingPropagatedDOV(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "supporter", specArea(100), "")
	h.subDA(t, "super", "requirer", specArea(100), "")

	v1 := h.addDOV(t, "supporter", "sup-v1", 42)
	if _, err := h.cm.Evaluate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cm.Propagate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	dov, ok, err := h.cm.Require("requirer", "supporter", []string{"area-limit"})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || dov != v1 {
		t.Fatalf("require = (%s, %t)", dov, ok)
	}
}

func TestRequireUnknownFeatureRejected(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "supporter", specArea(100), "")
	h.subDA(t, "super", "requirer", nil, "")
	_, _, err := h.cm.Require("requirer", "supporter", []string{"ghost-feature"})
	if !errors.Is(err, ErrNoUsage) {
		t.Fatalf("require unknown feature = %v", err)
	}
	if _, _, err := h.cm.Require("requirer", "requirer", nil); !errors.Is(err, ErrNoUsage) {
		t.Fatalf("self require = %v", err)
	}
}

func TestPropagateOnlyOwnGraph(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "da1", nil)
	h.initChipDA(t, "da2", nil)
	v := h.addDOV(t, "da2", "foreign", 10)
	if _, err := h.cm.Propagate("da1", v); !errors.Is(err, ErrOutOfScope) {
		t.Fatalf("propagate foreign = %v", err)
	}
}

func TestNegotiationFlow(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "a", specArea(50), "")
	h.subDA(t, "super", "b", specArea(50), "")
	superEvents := waitEvent(t, h.cm, "super")
	bEvents := waitEvent(t, h.cm, "b")

	// Dynamic establishment via Propose: both suspend into negotiating.
	if err := h.cm.Propose("a", "b", map[string]string{"area-shift": "+10"}); err != nil {
		t.Fatal(err)
	}
	ev := bEvents(EventPropose)
	if ev.Data["from"] != "a" || ev.Data["area-shift"] != "+10" {
		t.Fatalf("propose event = %+v", ev)
	}
	for _, id := range []string{"a", "b"} {
		da, _ := h.cm.Get(id)
		if da.State != StateNegotiating {
			t.Fatalf("%s state = %s", id, da.State)
		}
	}
	// Propagate while negotiating is illegal (processing suspended).
	if _, err := h.cm.Propagate("a", "x"); !errors.Is(err, ErrIllegalOp) {
		t.Fatalf("propagate while negotiating = %v", err)
	}
	// Disagree keeps negotiating; conflict escalates to the super-DA.
	if err := h.cm.Disagree("b", "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.SpecConflict("a", "b"); err != nil {
		t.Fatal(err)
	}
	ev = superEvents(EventSpecConflict)
	if ev.Data["a"] != "a" || ev.Data["b"] != "b" {
		t.Fatalf("conflict event = %+v", ev)
	}
	for _, id := range []string{"a", "b"} {
		da, _ := h.cm.Get(id)
		if da.State != StateActive {
			t.Fatalf("%s state after conflict = %s", id, da.State)
		}
	}
}

func TestNegotiationAgree(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "a", specArea(50), "")
	h.subDA(t, "super", "b", specArea(50), "")
	if err := h.cm.CreateNegotiationRel("super", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.Propose("a", "b", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.Agree("b", "a"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		da, _ := h.cm.Get(id)
		if da.State != StateActive {
			t.Fatalf("%s state after agree = %s", id, da.State)
		}
	}
}

func TestNegotiationOnlyBetweenSiblings(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "a", nil, "")
	h.subDA(t, "a", "grandchild", nil, "")
	if err := h.cm.Propose("a", "grandchild", nil); !errors.Is(err, ErrNotSiblings) {
		t.Fatalf("parent-child propose = %v", err)
	}
	if err := h.cm.CreateNegotiationRel("super", "a", "a"); !errors.Is(err, ErrNotSiblings) {
		t.Fatalf("self negotiation = %v", err)
	}
	h.initChipDA(t, "other-root", nil)
	if err := h.cm.Propose("a", "other-root", nil); !errors.Is(err, ErrNotSiblings) {
		t.Fatalf("cross-hierarchy propose = %v", err)
	}
	if err := h.cm.Agree("a", "grandchild"); !errors.Is(err, ErrNoNegotiation) {
		t.Fatalf("agree without relationship = %v", err)
	}
}

func TestReadyToCommitAndTermination(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", specArea(1000))
	h.subDA(t, "super", "sub", specArea(100), "")
	superEvents := waitEvent(t, h.cm, "super")

	// Ready-to-commit without a final DOV is refused.
	if err := h.cm.SubDAReadyToCommit("sub"); !errors.Is(err, ErrNoFinalDOV) {
		t.Fatalf("premature ready = %v", err)
	}
	final := h.addDOV(t, "sub", "final-v", 80)
	if _, err := h.cm.Evaluate("sub", final); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.SubDAReadyToCommit("sub"); err != nil {
		t.Fatal(err)
	}
	superEvents(EventReadyToCommit)
	da, _ := h.cm.Get("sub")
	if da.State != StateReadyForTermination {
		t.Fatalf("state = %s", da.State)
	}
	// Terminating transfers the final DOV's scope lock to the super-DA.
	if err := h.cm.TerminateSubDA("super", "sub"); err != nil {
		t.Fatal(err)
	}
	if owner, _ := h.scopes.Owner(string(final)); owner != "super" {
		t.Fatalf("final owner = %s, want super", owner)
	}
	sup, _ := h.cm.Get("super")
	if len(sup.InheritedFinals) != 1 || sup.InheritedFinals[0] != final {
		t.Fatalf("inherited = %v", sup.InheritedFinals)
	}
	da, _ = h.cm.Get("sub")
	if da.State != StateTerminated {
		t.Fatalf("state = %s", da.State)
	}
	// All ops on a terminated DA fail.
	if _, err := h.cm.Evaluate("sub", final); !errors.Is(err, ErrIllegalOp) {
		t.Fatalf("evaluate terminated = %v", err)
	}
}

func TestTerminationBlockedByLiveChildren(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "root", nil)
	h.subDA(t, "root", "mid", nil, "")
	h.subDA(t, "mid", "leaf", nil, "")
	if err := h.cm.TerminateSubDA("root", "mid"); !errors.Is(err, ErrChildrenLive) {
		t.Fatalf("terminate with live child = %v", err)
	}
	if err := h.cm.TerminateSubDA("mid", "leaf"); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.TerminateSubDA("root", "mid"); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.TerminateTopLevel("root"); err != nil {
		t.Fatal(err)
	}
	da, _ := h.cm.Get("root")
	if da.State != StateTerminated {
		t.Fatalf("root state = %s", da.State)
	}
}

func TestTerminationWithdrawsNonFinalGrants(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	// Two-feature spec: v1 fulfils only area-limit, so it stays a
	// preliminary (non-final) version after Evaluate.
	supSpec := feature.MustSpec(
		feature.Range("area-limit", "area", 0, 100),
		feature.Equals("routed", "routed", catalog.Bool(true)),
	)
	h.subDA(t, "super", "supporter", supSpec, "")
	h.subDA(t, "super", "requirer", nil, "")
	reqEvents := waitEvent(t, h.cm, "requirer")

	v1 := h.addDOV(t, "supporter", "prelim", 60)
	if _, err := h.cm.Evaluate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cm.Propagate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := h.cm.Require("requirer", "supporter", []string{"area-limit"}); err != nil || !ok {
		t.Fatalf("require = %t, %v", ok, err)
	}
	// The supporter is cancelled outright (allowed from active).
	if err := h.cm.TerminateSubDA("super", "supporter"); err != nil {
		t.Fatal(err)
	}
	ev := reqEvents(EventWithdraw)
	if ev.Data["dov"] != string(v1) {
		t.Fatalf("withdraw event = %+v", ev)
	}
	if h.scopes.InScope("requirer", string(v1)) {
		t.Fatal("withdrawn DOV still visible")
	}
}

func TestModifySubDASpecWithdrawsStaleGrants(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	spec := feature.MustSpec(
		feature.Range("area-limit", "area", 0, 100),
		feature.Range("name-ok", "area", 0, 1000),
	)
	h.subDA(t, "super", "supporter", spec, "")
	h.subDA(t, "super", "requirer", nil, "")
	subEvents := waitEvent(t, h.cm, "supporter")
	reqEvents := waitEvent(t, h.cm, "requirer")

	v1 := h.addDOV(t, "supporter", "v1", 60)
	if _, err := h.cm.Evaluate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cm.Propagate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := h.cm.Require("requirer", "supporter", []string{"area-limit"}); err != nil || !ok {
		t.Fatalf("require = %t, %v", ok, err)
	}
	// The super drops the area-limit feature entirely: the grant's basis
	// vanishes and the propagation must be withdrawn.
	newSpec := feature.MustSpec(feature.Range("power-limit", "power", 0, 5))
	if err := h.cm.ModifySubDASpec("super", "supporter", newSpec); err != nil {
		t.Fatal(err)
	}
	subEvents(EventSpecModified)
	ev := reqEvents(EventWithdraw)
	if ev.Data["dov"] != string(v1) {
		t.Fatalf("withdraw = %+v", ev)
	}
	if h.scopes.InScope("requirer", string(v1)) {
		t.Fatal("stale grant survived spec change")
	}
	da, _ := h.cm.Get("supporter")
	if da.State != StateActive {
		t.Fatalf("state after modify = %s", da.State)
	}
}

func TestModifySpecRequiresParent(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.initChipDA(t, "stranger", nil)
	h.subDA(t, "super", "sub", nil, "")
	err := h.cm.ModifySubDASpec("stranger", "sub", specArea(10))
	if !errors.Is(err, ErrNotParent) {
		t.Fatalf("modify by stranger = %v", err)
	}
}

func TestRefineOwnSpec(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "sub", specArea(100), "")
	// Narrowing is a legal refinement.
	if err := h.cm.RefineOwnSpec("sub", specArea(80)); err != nil {
		t.Fatal(err)
	}
	// Widening is not.
	if err := h.cm.RefineOwnSpec("sub", specArea(200)); !errors.Is(err, ErrNotRefinement) {
		t.Fatalf("widening = %v", err)
	}
}

func TestImpossibleSpecFlow(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "sub", specArea(10), "")
	superEvents := waitEvent(t, h.cm, "super")
	if err := h.cm.SubDAImpossibleSpec("sub", "area too small"); err != nil {
		t.Fatal(err)
	}
	ev := superEvents(EventImpossible)
	if ev.Data["reason"] != "area too small" {
		t.Fatalf("impossible event = %+v", ev)
	}
	da, _ := h.cm.Get("sub")
	if da.State != StateReadyForTermination {
		t.Fatalf("state = %s", da.State)
	}
	// The super reacts with a modified (larger) specification: the sub
	// returns to active and keeps its derivation graph.
	if err := h.cm.ModifySubDASpec("super", "sub", specArea(50)); err != nil {
		t.Fatal(err)
	}
	da, _ = h.cm.Get("sub")
	if da.State != StateActive {
		t.Fatalf("state after modify = %s", da.State)
	}
}

func TestInvalidateWithReplacement(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "supporter", specArea(100), "")
	h.subDA(t, "super", "requirer", nil, "")
	reqEvents := waitEvent(t, h.cm, "requirer")

	v1 := h.addDOV(t, "supporter", "v1", 60)
	v2 := h.addDOV(t, "supporter", "v2", 50, v1)
	for _, v := range []version.ID{v1, v2} {
		if _, err := h.cm.Evaluate("supporter", v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.cm.Propagate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cm.Propagate("supporter", v2); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := h.cm.Require("requirer", "supporter", []string{"area-limit"}); err != nil || !ok {
		t.Fatalf("require = %t, %v", ok, err)
	}
	// v1 turns out to be a dead end: the CM must hand the requirer a
	// replacement fulfilling the same features.
	if err := h.cm.InvalidateDOV("supporter", v1); err != nil {
		t.Fatal(err)
	}
	ev := reqEvents(EventReplaced)
	if ev.Data["old"] != string(v1) || ev.Data["dov"] != string(v2) {
		t.Fatalf("replaced event = %+v", ev)
	}
	if h.scopes.InScope("requirer", string(v1)) {
		t.Fatal("invalidated DOV still visible")
	}
	if !h.scopes.InScope("requirer", string(v2)) {
		t.Fatal("replacement not granted")
	}
	v, _ := h.repo.Get(v1)
	if v.Status != version.StatusInvalid {
		t.Fatalf("status = %s", v.Status)
	}
}

func TestCMRecoveryAfterServerCrash(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir)
	h.initChipDA(t, "super", specArea(1000))
	h.subDA(t, "super", "supporter", specArea(100), "")
	h.subDA(t, "super", "requirer", specArea(500), "")
	v1 := h.addDOV(t, "supporter", "v1", 60)
	if _, err := h.cm.Evaluate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cm.Propagate("supporter", v1); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := h.cm.Require("requirer", "supporter", []string{"area-limit"}); err != nil || !ok {
		t.Fatalf("require = %t, %v", ok, err)
	}
	logLen := h.cm.ProtocolLogLen()
	if logLen == 0 {
		t.Fatal("protocol log empty")
	}
	h.repo.Close()

	// Server crash: reopen repository, fresh scope table, new CM.
	r2, err := repo.Open(h.cat, repo.Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	scopes2 := lock.NewScopeTable()
	cm2, err := NewCM(r2, scopes2, h.reg)
	if err != nil {
		t.Fatalf("CM recovery: %v", err)
	}
	// States survived.
	for _, id := range []string{"super", "supporter", "requirer"} {
		da, err := cm2.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if da.State != StateActive {
			t.Fatalf("%s state = %s", id, da.State)
		}
	}
	// Scope table rebuilt: owner and usage grant restored.
	if owner, _ := scopes2.Owner(string(v1)); owner != "supporter" {
		t.Fatalf("owner after recovery = %s", owner)
	}
	if !scopes2.InScope("requirer", string(v1)) {
		t.Fatal("usage grant lost in recovery")
	}
	// Usage relationship survived.
	req, _ := cm2.Get("requirer")
	if len(req.UsesFrom["supporter"]) != 1 {
		t.Fatalf("UsesFrom after recovery = %v", req.UsesFrom)
	}
	// Protocol log survived.
	if cm2.ProtocolLogLen() != logLen {
		t.Fatalf("protocol log = %d, want %d", cm2.ProtocolLogLen(), logLen)
	}
	// The recovered CM keeps working: terminate the hierarchy.
	final := version.ID("final-v")
	obj := catalog.NewObject("cell").Set("name", catalog.Str("f")).Set("area", catalog.Float(10))
	if err := r2.Checkin(&version.DOV{ID: final, DOT: "cell", DA: "supporter", Object: obj, Status: version.StatusWorking}, true); err != nil {
		t.Fatal(err)
	}
	if err := scopes2.Own("supporter", string(final)); err != nil {
		t.Fatal(err)
	}
	if _, err := cm2.Evaluate("supporter", final); err != nil {
		t.Fatal(err)
	}
	if err := cm2.SubDAReadyToCommit("supporter"); err != nil {
		t.Fatal(err)
	}
	if err := cm2.TerminateSubDA("super", "supporter"); err != nil {
		t.Fatal(err)
	}
}

func TestInheritedFinalsRecovery(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir)
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "sub", specArea(100), "")
	final := h.addDOV(t, "sub", "final-v", 50)
	if _, err := h.cm.Evaluate("sub", final); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.SubDAReadyToCommit("sub"); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.TerminateSubDA("super", "sub"); err != nil {
		t.Fatal(err)
	}
	h.repo.Close()

	r2, err := repo.Open(h.cat, repo.Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	scopes2 := lock.NewScopeTable()
	if _, err := NewCM(r2, scopes2, h.reg); err != nil {
		t.Fatal(err)
	}
	// The inherited final must be owned by super after recovery, even
	// though it lives in sub's derivation graph.
	if owner, _ := scopes2.Owner(string(final)); owner != "super" {
		t.Fatalf("inherited owner after recovery = %s", owner)
	}
}

func TestOpAndStateStrings(t *testing.T) {
	if OpInitDesign.String() != "Init_Design" || OpSubDASpecConflict.String() != "Sub_DA_Spec_Conflict" {
		t.Error("op names wrong")
	}
	if OpCode(99).String() != "op(99)" {
		t.Error("unknown op name wrong")
	}
	if StateGenerated.String() != "generated" || State(77).String() != "state(77)" {
		t.Error("state names wrong")
	}
	if RelDelegation.String() != "delegation" || RelUsage.String() != "usage" || RelNegotiation.String() != "negotiation" || Relationship(9).String() != "relationship(9)" {
		t.Error("relationship names wrong")
	}
	if len(AllOps()) != 15 || len(AllStates()) != 5 {
		t.Error("enumerations wrong")
	}
}

func TestOpCounts(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "da1", nil)
	counts := h.cm.OpCounts()
	if counts[OpInitDesign] != 1 || counts[OpStart] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
