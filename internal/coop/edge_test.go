package coop

import (
	"errors"
	"testing"

	"concord/internal/catalog"
	"concord/internal/feature"
	"concord/internal/version"
)

func TestProposeToGeneratedPeerRejectedAtomically(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "a", nil, "")
	// b is created but never started: Propose must fail and leave a
	// unchanged (atomic two-party transition).
	if err := h.cm.CreateSubDA("super", Config{ID: "b", DOT: "cell"}); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.Propose("a", "b", nil); !errors.Is(err, ErrIllegalOp) {
		t.Fatalf("propose to generated peer = %v", err)
	}
	da, _ := h.cm.Get("a")
	if da.State != StateActive {
		t.Fatalf("proposer state leaked to %s", da.State)
	}
}

func TestPropagateFinalKeepsFinalStatus(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "da1", specArea(100))
	v := h.addDOV(t, "da1", "v1", 50)
	if _, err := h.cm.Evaluate("da1", v); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cm.Propagate("da1", v); err != nil {
		t.Fatal(err)
	}
	got, _ := h.repo.Get(v)
	if got.Status != version.StatusFinal {
		t.Fatalf("status after propagate = %s, want final preserved", got.Status)
	}
}

func TestInitDesignUnknownDOV0(t *testing.T) {
	h := newHarness(t, "")
	err := h.cm.InitDesign(Config{ID: "da1", DOT: "chip", DOV0: "ghost"})
	if !errors.Is(err, version.ErrUnknownDOV) {
		t.Fatalf("unknown DOV0 = %v", err)
	}
}

func TestGetReturnsIndependentCopy(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "sub", nil, "")
	da, err := h.cm.Get("super")
	if err != nil {
		t.Fatal(err)
	}
	da.Children[0] = "mutated"
	da.UsesFrom["x"] = []string{"y"}
	again, _ := h.cm.Get("super")
	if again.Children[0] != "sub" {
		t.Fatal("Get leaked internal children slice")
	}
	if len(again.UsesFrom) != 0 {
		t.Fatal("Get leaked internal usage map")
	}
}

func TestEvaluateEmptySpecNeverFinalizes(t *testing.T) {
	// A DA without a specification has no goal: Evaluate must not mark
	// versions final (the paper requires fulfilment of the whole feature
	// set, which is only meaningful for a non-empty one).
	h := newHarness(t, "")
	h.initChipDA(t, "da1", nil)
	v := h.addDOV(t, "da1", "v1", 50)
	q, err := h.cm.Evaluate("da1", v)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Final() {
		t.Fatal("empty spec quality should be trivially final")
	}
	got, _ := h.repo.Get(v)
	if got.Status == version.StatusFinal {
		t.Fatal("version marked final without a specification")
	}
}

func TestAutoPropagateFindsUnevaluatedVersion(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "sup", specArea(100), "")
	h.subDA(t, "super", "req", nil, "")
	// Unevaluated qualifying version in the graph.
	v := h.addDOV(t, "sup", "v1", 40)
	dov, ok, err := h.cm.AutoPropagate("sup", []string{"area-limit"})
	if err != nil || !ok || dov != v {
		t.Fatalf("AutoPropagate = (%s, %t, %v)", dov, ok, err)
	}
	// It evaluated on the fly: the version is now final (spec fulfilled).
	got, _ := h.repo.Get(v)
	if got.Status != version.StatusFinal {
		t.Fatalf("status = %s", got.Status)
	}
	// No qualifying version → ok=false, no error.
	if _, ok, err := h.cm.AutoPropagate("req", []string{"ghost"}); err != nil || ok {
		t.Fatalf("AutoPropagate without match = (%t, %v)", ok, err)
	}
}

func TestAffectedByWithdrawalCrossGraph(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "producer", specArea(100), "")
	h.subDA(t, "super", "consumer", specArea(100), "")
	shared := h.addDOV(t, "producer", "shared", 50)
	// The consumer derives locally from the producer's version (foreign
	// parent) and then derives again from its own result.
	d1 := &version.DOV{
		ID: "c1", DOT: "cell", DA: "consumer",
		Parents: []version.ID{shared},
		Object:  mkCellObj("c1", 45), Status: version.StatusWorking,
	}
	if err := h.repo.Checkin(d1, false); err != nil {
		t.Fatal(err)
	}
	if err := h.scopes.Own("consumer", "c1"); err != nil {
		t.Fatal(err)
	}
	d2 := &version.DOV{
		ID: "c2", DOT: "cell", DA: "consumer",
		Parents: []version.ID{"c1"},
		Object:  mkCellObj("c2", 42), Status: version.StatusWorking,
	}
	if err := h.repo.Checkin(d2, false); err != nil {
		t.Fatal(err)
	}
	if err := h.scopes.Own("consumer", "c2"); err != nil {
		t.Fatal(err)
	}
	// An unrelated local root.
	d3 := &version.DOV{
		ID: "c3", DOT: "cell", DA: "consumer",
		Object: mkCellObj("c3", 10), Status: version.StatusWorking,
	}
	if err := h.repo.Checkin(d3, true); err != nil {
		t.Fatal(err)
	}
	affected, err := h.cm.AffectedByWithdrawal("consumer", shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 2 || affected[0] != "c1" || affected[1] != "c2" {
		t.Fatalf("affected = %v, want [c1 c2]", affected)
	}
	// Withdrawal of something never used affects nothing.
	other := h.addDOV(t, "producer", "other", 60)
	affected, err = h.cm.AffectedByWithdrawal("consumer", other)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 0 {
		t.Fatalf("affected = %v, want none", affected)
	}
}

// mkCellObj builds a cell payload for direct repository checkins.
func mkCellObj(name string, area float64) *catalog.Object {
	return catalog.NewObject("cell").
		Set("name", catalog.Str(name)).
		Set("area", catalog.Float(area))
}

func TestPendingRequireFeaturesRoundTrip(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "sup", specArea(100), "")
	h.subDA(t, "super", "req", nil, "")
	if _, ok, err := h.cm.Require("req", "sup", []string{"area-limit"}); err != nil || ok {
		t.Fatalf("require = %t, %v", ok, err)
	}
	feats, err := h.cm.PendingRequireFeatures("sup")
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 1 || len(feats[0]) != 1 || feats[0][0] != "area-limit" {
		t.Fatalf("pending features = %v", feats)
	}
}

func TestRefineDuringNegotiationAllowed(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "super", nil)
	h.subDA(t, "super", "a", specArea(100), "")
	h.subDA(t, "super", "b", specArea(100), "")
	if err := h.cm.Propose("a", "b", nil); err != nil {
		t.Fatal(err)
	}
	// The negotiated outcome: a refines its own spec while negotiating.
	if err := h.cm.RefineOwnSpec("a", specArea(80)); err != nil {
		t.Fatalf("refine while negotiating = %v", err)
	}
	// But not while ready-for-termination.
	if err := h.cm.Agree("a", "b"); err != nil {
		t.Fatal(err)
	}
	v := h.addDOV(t, "a", "fa", 50)
	if _, err := h.cm.Evaluate("a", v); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.SubDAReadyToCommit("a"); err != nil {
		t.Fatal(err)
	}
	if err := h.cm.RefineOwnSpec("a", specArea(70)); !errors.Is(err, ErrIllegalOp) {
		t.Fatalf("refine in rft = %v", err)
	}
}

var _ = feature.KindRange // doc-reference
