package coop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"concord/internal/catalog"
	"concord/internal/lock"
	"concord/internal/repo"
)

// TestQuickStateMachineSafety drives random operation sequences against the
// transition matrix and checks the safety invariants of Fig. 7:
//   - a terminated DA never changes state again,
//   - every reached state is one of the five defined states,
//   - negotiating is only entered via Propose,
//   - ready-for-termination is only entered via Ready_To_Commit or
//     Impossible_Spec.
func TestQuickStateMachineSafety(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		state := StateGenerated
		ops := AllOps()
		for i := 0; i < int(n); i++ {
			op := ops[rng.Intn(len(ops))]
			next, ok := Legal(state, op)
			if !ok {
				continue // illegal: state unchanged
			}
			switch next {
			case StateGenerated, StateActive, StateNegotiating, StateReadyForTermination, StateTerminated:
			default:
				return false
			}
			if state == StateTerminated {
				return false // nothing may leave terminated
			}
			if next == StateNegotiating && state != StateNegotiating && op != OpPropose {
				return false
			}
			if next == StateReadyForTermination && op != OpSubDAReadyToCommit && op != OpSubDAImpossible {
				return false
			}
			state = next
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLiveCMRandomOps replays random cooperation operations against a
// live CM pair of sibling DAs and verifies the CM never reaches an undefined
// state and never accepts an operation the matrix forbids.
func TestQuickLiveCMRandomOps(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		h := newQuickHarness()
		if h == nil {
			return false
		}
		defer h.repo.Close()
		rng := rand.New(rand.NewSource(seed))
		das := []string{"a", "b"}
		for i := 0; i < int(n%60); i++ {
			da := das[rng.Intn(2)]
			peer := das[1-rng.Intn(2)]
			if peer == da {
				peer = das[0]
				if da == peer {
					peer = das[1]
				}
			}
			before, err := h.cm.Get(da)
			if err != nil {
				return false
			}
			var op OpCode
			switch rng.Intn(5) {
			case 0:
				op = OpPropose
				err = h.cm.Propose(da, peer, nil)
			case 1:
				op = OpAgree
				err = h.cm.Agree(da, peer)
			case 2:
				op = OpDisagree
				err = h.cm.Disagree(da, peer)
			case 3:
				op = OpSubDASpecConflict
				err = h.cm.SpecConflict(da, peer)
			case 4:
				op = OpSubDAImpossible
				err = h.cm.SubDAImpossibleSpec(da, "test")
			}
			after, gerr := h.cm.Get(da)
			if gerr != nil {
				return false
			}
			_, legal := Legal(before.State, op)
			// Two-party ops also require the peer to accept; the CM may
			// legally refuse even when the subject's transition exists.
			if err == nil && !legal {
				return false // CM accepted an illegal transition
			}
			if err != nil && after.State != before.State && op != OpPropose && op != OpAgree && op != OpSubDASpecConflict {
				return false // failed single-party op must not change state
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

type quickHarness struct {
	repo *repo.Repository
	cm   *CM
}

func newQuickHarness() *quickHarness {
	cat := catalog.New()
	if err := cat.Register(&catalog.DOT{Name: "cell"}); err != nil {
		return nil
	}
	if err := cat.Register(&catalog.DOT{
		Name:       "chip",
		Components: []catalog.ComponentDef{{Name: "cells", DOT: "cell"}},
	}); err != nil {
		return nil
	}
	r, err := repo.Open(cat, repo.Options{})
	if err != nil {
		return nil
	}
	cm, err := NewCM(r, lock.NewScopeTable(), nil)
	if err != nil {
		return nil
	}
	if err := cm.InitDesign(Config{ID: "root", DOT: "chip"}); err != nil {
		return nil
	}
	if err := cm.Start("root"); err != nil {
		return nil
	}
	for _, id := range []string{"a", "b"} {
		if err := cm.CreateSubDA("root", Config{ID: id, DOT: "cell"}); err != nil {
			return nil
		}
		if err := cm.Start(id); err != nil {
			return nil
		}
	}
	return &quickHarness{repo: r, cm: cm}
}
