package coop

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"

	"concord/internal/feature"
	"concord/internal/lock"
	"concord/internal/repo"
	"concord/internal/script"
	"concord/internal/version"
)

// Errors reported by the cooperation manager.
var (
	ErrUnknownDA     = errors.New("coop: unknown DA")
	ErrDuplicateDA   = errors.New("coop: duplicate DA")
	ErrIllegalOp     = errors.New("coop: operation illegal in current DA state")
	ErrNotParent     = errors.New("coop: DA is not the super-DA")
	ErrNotSiblings   = errors.New("coop: DAs are not sub-DAs of the same super-DA")
	ErrNoNegotiation = errors.New("coop: no negotiation relationship")
	ErrNoUsage       = errors.New("coop: no usage relationship")
	ErrNotRefinement = errors.New("coop: specification is not a refinement")
	ErrDOTNotPart    = errors.New("coop: sub-DA DOT is not part of the super-DA DOT")
	ErrChildrenLive  = errors.New("coop: sub-DAs not yet terminated")
	ErrNoFinalDOV    = errors.New("coop: no final DOV reached")
	ErrOutOfScope    = errors.New("coop: DOV not in DA scope")
)

// Event names delivered to DA subscribers (consumed by DC-level ECA rules).
const (
	EventRequire       = "Require"
	EventPropagated    = "Propagated"
	EventWithdraw      = "Withdraw"
	EventReplaced      = "Replaced"
	EventSpecModified  = "Spec_Modified"
	EventReadyToCommit = "Sub_DA_Ready_To_Commit"
	EventImpossible    = "Sub_DA_Impossible_Spec"
	EventPropose       = "Propose"
	EventAgree         = "Agree"
	EventDisagree      = "Disagree"
	EventSpecConflict  = "Sub_DA_Spec_Conflict"
	EventTerminated    = "Terminated"
)

// grant records one DOV made visible to a peer along a usage relationship.
type grant struct {
	Peer     string
	DOV      version.ID
	Features []string
}

// pendingRequire is an unsatisfied Require awaiting a qualifying Propagate.
type pendingRequire struct {
	Requirer string
	Features []string
}

// daRecord is the persistent form of a DA plus its cooperation bookkeeping.
type daRecord struct {
	ID              string
	DOT             string
	DOV0            version.ID
	SpecFeatures    []feature.Feature
	Designer        string
	DC              string
	State           State
	Parent          string
	Children        []string
	Negotiations    []string
	UsesFrom        map[string][]string
	SupportsTo      map[string]bool
	InheritedFinals []version.ID
	Grants          []grant
	Pending         []pendingRequire
}

// queuedEvent is one notification awaiting dispatch to a DA's sink.
type queuedEvent struct {
	da   string
	name string
	data map[string]string
}

// CM is the cooperation manager: the centralized mediator between
// cooperating DAs (Sect. 5.4). It enforces that cooperation takes place only
// along established relationships, checks every cooperative activity against
// the relationship's integrity constraints, drives the Fig. 7 state machine,
// and persists the DA hierarchy in the server repository so a server crash
// loses nothing.
//
// Concurrency: the CM uses two lock levels so that DOPs of distinct DAs
// proceed in parallel. cm.mu (an RWMutex) guards the DA map; operations on
// existing DAs hold it in read mode for their whole duration and serialize
// per DA through each daState's own mutex, taken in sorted-ID order when an
// operation spans several DAs. Structural operations (InitDesign,
// CreateSubDA, TerminateSubDA, TerminateTopLevel) take cm.mu in write mode,
// which excludes every other operation. Event notifications never run under
// any of these locks: notify only enqueues, and a single dispatcher
// goroutine delivers events to sinks in enqueue order (see dispatch).
type CM struct {
	repo   *repo.Repository
	scopes *lock.ScopeTable
	reg    *feature.Registry

	mu  sync.RWMutex
	das map[string]*daState

	sinkMu sync.RWMutex
	sinks  map[string]func(script.Event)

	logMu   sync.Mutex
	logSeq  uint64
	opCount map[OpCode]int

	evMu     sync.Mutex
	evCond   *sync.Cond
	evQueue  []queuedEvent
	evClosed bool
	evDone   chan struct{}
}

// daState couples the public DA view with volatile bookkeeping. mu guards
// da, grants and pending; the ID field of da is immutable and may be read
// without it.
type daState struct {
	mu      sync.Mutex
	da      *DA
	grants  []grant
	pending []pendingRequire
}

// NewCM builds a cooperation manager over the repository, scope table and
// feature-tool registry, recovering any persisted DA hierarchy (the CM
// "only needs to hold persistent the DA-hierarchy-describing information"
// to survive a server crash, Sect. 5.4). Recovery assumes a freshly created
// scope table and re-derives all scope locks from the persisted hierarchy.
func NewCM(r *repo.Repository, scopes *lock.ScopeTable, reg *feature.Registry) (*CM, error) {
	cm := &CM{
		repo:    r,
		scopes:  scopes,
		reg:     reg,
		das:     make(map[string]*daState),
		sinks:   make(map[string]func(script.Event)),
		opCount: make(map[OpCode]int),
		evDone:  make(chan struct{}),
	}
	cm.evCond = sync.NewCond(&cm.evMu)
	if err := cm.recover(); err != nil {
		return nil, err
	}
	go cm.dispatch()
	return cm, nil
}

// Registry returns the feature-tool registry used by Evaluate.
func (cm *CM) Registry() *feature.Registry { return cm.reg }

// Close stops the event dispatcher after draining queued notifications.
// Subsequent notifications are dropped. Safe to call more than once.
func (cm *CM) Close() {
	cm.evMu.Lock()
	if !cm.evClosed {
		cm.evClosed = true
		cm.evCond.Broadcast()
	}
	cm.evMu.Unlock()
	<-cm.evDone
}

// dispatch delivers queued events to sinks, one at a time in enqueue order.
// It holds no CM state lock while a sink runs, so sinks may re-enter the CM
// freely (ECA rules typically do).
func (cm *CM) dispatch() {
	for {
		cm.evMu.Lock()
		for len(cm.evQueue) == 0 && !cm.evClosed {
			cm.evCond.Wait()
		}
		if len(cm.evQueue) == 0 {
			cm.evMu.Unlock()
			close(cm.evDone)
			return
		}
		q := cm.evQueue[0]
		cm.evQueue = cm.evQueue[1:]
		cm.evMu.Unlock()
		cm.sinkMu.RLock()
		sink := cm.sinks[q.da]
		cm.sinkMu.RUnlock()
		if sink != nil {
			sink(script.Event{Name: q.name, Data: q.data})
		}
	}
}

func (cm *CM) recover() error {
	keys := cm.repo.ListMeta("cm/da/")
	sort.Strings(keys)
	for _, key := range keys {
		data, err := cm.repo.GetMeta(key)
		if err != nil {
			return err
		}
		var rec daRecord
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
			return fmt.Errorf("coop: recover DA record %s: %w", key, err)
		}
		spec, err := feature.NewSpec(rec.SpecFeatures...)
		if err != nil {
			return err
		}
		da := &DA{
			ID: rec.ID, DOT: rec.DOT, DOV0: rec.DOV0, Spec: spec,
			Designer: rec.Designer, DC: rec.DC, State: rec.State,
			Parent: rec.Parent, Children: rec.Children,
			Negotiations: rec.Negotiations, UsesFrom: rec.UsesFrom,
			SupportsTo: rec.SupportsTo, InheritedFinals: rec.InheritedFinals,
		}
		if da.UsesFrom == nil {
			da.UsesFrom = make(map[string][]string)
		}
		if da.SupportsTo == nil {
			da.SupportsTo = make(map[string]bool)
		}
		cm.das[rec.ID] = &daState{da: da, grants: rec.Grants, pending: rec.Pending}
	}
	// Re-derive the scope table: graph DOVs are owned by their DA unless
	// inherited; usage grants restore reader locks.
	inherited := make(map[version.ID]string)
	for id, st := range cm.das {
		for _, f := range st.da.InheritedFinals {
			inherited[f] = id
		}
	}
	for id, st := range cm.das {
		g, err := cm.repo.Graph(id)
		if err != nil {
			continue // DA without a graph yet
		}
		terminated := st.da.State == StateTerminated
		for _, dov := range g.IDs() {
			owner := id
			if inh, ok := inherited[dov]; ok {
				owner = inh // finals devolved to the inheriting super-DA
			} else if terminated {
				continue // scope of a terminated DA was released
			}
			if err := cm.scopes.Own(owner, string(dov)); err != nil {
				return err
			}
		}
	}
	for id, st := range cm.das {
		for _, gr := range st.grants {
			cm.scopes.GrantUse(gr.Peer, string(gr.DOV))
		}
		if st.da.DOV0 != "" && st.da.State != StateTerminated {
			cm.scopes.GrantUse(id, string(st.da.DOV0))
		}
	}
	return nil
}

// persist writes a DA's durable record. Callers hold st.mu (or cm.mu in
// write mode).
func (cm *CM) persist(st *daState) error {
	da := st.da
	rec := daRecord{
		ID: da.ID, DOT: da.DOT, DOV0: da.DOV0,
		SpecFeatures: da.Spec.Features(), Designer: da.Designer, DC: da.DC,
		State: da.State, Parent: da.Parent, Children: da.Children,
		Negotiations: da.Negotiations, UsesFrom: da.UsesFrom,
		SupportsTo: da.SupportsTo, InheritedFinals: da.InheritedFinals,
		Grants: st.grants, Pending: st.pending,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return fmt.Errorf("coop: encode DA record: %w", err)
	}
	return cm.repo.PutMeta("cm/da/"+da.ID, buf.Bytes())
}

// logOp appends one entry to the persistent cooperation protocol log
// ("logging the cooperation protocols in the entire DA hierarchy",
// Sect. 5.1).
func (cm *CM) logOp(op OpCode, subject, detail string) {
	cm.logMu.Lock()
	cm.logSeq++
	seq := cm.logSeq
	cm.opCount[op]++
	cm.logMu.Unlock()
	key := fmt.Sprintf("cm/log/%012d", seq)
	entry := fmt.Sprintf("%s\x00%s\x00%s", op, subject, detail)
	cm.repo.PutMeta(key, []byte(entry)) //nolint:errcheck // audit log, best effort
}

// OpCounts returns how often each cooperation operation executed (E1/E7
// diagnostics).
func (cm *CM) OpCounts() map[OpCode]int {
	cm.logMu.Lock()
	defer cm.logMu.Unlock()
	out := make(map[OpCode]int, len(cm.opCount))
	for k, v := range cm.opCount {
		out[k] = v
	}
	return out
}

// ProtocolLogLen reports the persistent protocol log length.
func (cm *CM) ProtocolLogLen() int { return len(cm.repo.ListMeta("cm/log/")) }

// Subscribe registers the event sink of a DA (its design manager). Only one
// sink per DA; nil unsubscribes.
func (cm *CM) Subscribe(da string, sink func(script.Event)) {
	cm.sinkMu.Lock()
	defer cm.sinkMu.Unlock()
	if sink == nil {
		delete(cm.sinks, da)
		return
	}
	cm.sinks[da] = sink
}

// notify enqueues an event for a DA's sink. Delivery is asynchronous and
// ordered: the dispatcher goroutine invokes sinks outside all CM state
// locks, in the order notify was called.
func (cm *CM) notify(da, event string, data map[string]string) {
	cm.evMu.Lock()
	if !cm.evClosed {
		cm.evQueue = append(cm.evQueue, queuedEvent{da: da, name: event, data: data})
		cm.evCond.Signal()
	}
	cm.evMu.Unlock()
}

// get looks a DA up. Callers hold cm.mu (read or write mode).
func (cm *CM) get(id string) (*daState, error) {
	st, ok := cm.das[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDA, id)
	}
	return st, nil
}

// lockOrdered locks the given states in DA-ID order (nil entries and
// duplicates tolerated) and returns the matching unlock function. Taking
// multiple DA locks only through this helper keeps multi-DA operations
// deadlock-free.
func lockOrdered(states ...*daState) func() {
	uniq := make([]*daState, 0, len(states))
	seen := make(map[*daState]bool, len(states))
	for _, s := range states {
		if s != nil && !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].da.ID < uniq[j].da.ID })
	for _, s := range uniq {
		s.mu.Lock()
	}
	return func() {
		for i := len(uniq) - 1; i >= 0; i-- {
			uniq[i].mu.Unlock()
		}
	}
}

// step applies op to the subject DA, enforcing the Fig. 7 matrix.
// Callers hold st.mu (or cm.mu in write mode).
func (cm *CM) step(st *daState, op OpCode) error {
	next, ok := Legal(st.da.State, op)
	if !ok {
		return fmt.Errorf("%w: %s in state %s of %s", ErrIllegalOp, op, st.da.State, st.da.ID)
	}
	st.da.State = next
	return nil
}

// Config is the description vector of a DA to be created.
type Config struct {
	// ID is the hierarchy-wide identifier.
	ID string
	// DOT is the design object type (first description-vector component).
	DOT string
	// DOV0 optionally seeds the scope with an initial version.
	DOV0 version.ID
	// Spec is the design specification (goal).
	Spec *feature.Spec
	// Designer is the responsible designer.
	Designer string
	// DC names the design strategy (script) to apply.
	DC string
}

func (cm *CM) buildDA(cfg Config, parent string) (*daState, error) {
	if cfg.ID == "" {
		return nil, errors.New("coop: DA needs an ID")
	}
	if _, err := cm.repo.Catalog().Lookup(cfg.DOT); err != nil {
		return nil, err
	}
	if cfg.Spec == nil {
		cfg.Spec = feature.MustSpec()
	}
	da := &DA{
		ID: cfg.ID, DOT: cfg.DOT, DOV0: cfg.DOV0, Spec: cfg.Spec,
		Designer: cfg.Designer, DC: cfg.DC, State: StateGenerated,
		Parent:     parent,
		UsesFrom:   make(map[string][]string),
		SupportsTo: make(map[string]bool),
	}
	return &daState{da: da}, nil
}

// InitDesign initiates a design process by creating the top-level DA
// (operation 1 of Fig. 7). The DA starts in state generated. Structural:
// takes cm.mu in write mode.
func (cm *CM) InitDesign(cfg Config) error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if _, dup := cm.das[cfg.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateDA, cfg.ID)
	}
	st, err := cm.buildDA(cfg, "")
	if err != nil {
		return err
	}
	if cfg.DOV0 != "" {
		ok, err := cm.repo.Exists(cfg.DOV0)
		if err != nil {
			return err // repository fail-stop, not a missing DOV
		}
		if !ok {
			return fmt.Errorf("%w: DOV0 %s", version.ErrUnknownDOV, cfg.DOV0)
		}
		cm.scopes.GrantUse(cfg.ID, string(cfg.DOV0))
	}
	if err := cm.repo.CreateGraph(cfg.ID); err != nil {
		return err
	}
	cm.das[cfg.ID] = st
	cm.logOp(OpInitDesign, cfg.ID, cfg.DOT)
	return cm.persist(st)
}

// CreateSubDA delegates part of a design task by creating a sub-DA
// (operation 2). The issuing super-DA must be active, and the sub-DA's DOT
// must be a part of the super-DA's DOT (Sect. 4.1). A DOV0, if given, must
// lie in the super-DA's scope and becomes readable by the sub-DA.
// Structural: takes cm.mu in write mode.
func (cm *CM) CreateSubDA(super string, cfg Config) error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	sup, err := cm.get(super)
	if err != nil {
		return err
	}
	if _, ok := Legal(sup.da.State, OpCreateSubDA); !ok {
		return fmt.Errorf("%w: Create_Sub_DA by %s in state %s", ErrIllegalOp, super, sup.da.State)
	}
	if _, dup := cm.das[cfg.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateDA, cfg.ID)
	}
	isPart, err := cm.repo.Catalog().IsPartOf(cfg.DOT, sup.da.DOT)
	if err != nil {
		return err
	}
	if !isPart {
		return fmt.Errorf("%w: %s in %s", ErrDOTNotPart, cfg.DOT, sup.da.DOT)
	}
	st, err := cm.buildDA(cfg, super)
	if err != nil {
		return err
	}
	if cfg.DOV0 != "" {
		if !cm.scopes.InScope(super, string(cfg.DOV0)) {
			return fmt.Errorf("%w: DOV0 %s not in scope of %s", ErrOutOfScope, cfg.DOV0, super)
		}
		cm.scopes.GrantUse(cfg.ID, string(cfg.DOV0))
	}
	if err := cm.repo.CreateGraph(cfg.ID); err != nil {
		return err
	}
	cm.das[cfg.ID] = st
	sup.da.Children = append(sup.da.Children, cfg.ID)
	cm.logOp(OpCreateSubDA, cfg.ID, "super="+super)
	if err := cm.persist(sup); err != nil {
		return err
	}
	return cm.persist(st)
}

// Start begins a generated DA's work (operation 3).
func (cm *CM) Start(da string) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(da)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := cm.step(st, OpStart); err != nil {
		return err
	}
	cm.logOp(OpStart, da, "")
	return cm.persist(st)
}

// Evaluate determines the quality state of a DOV with respect to the DA's
// specification (operation 7): the fulfilled feature subset is recorded, and
// a DOV fulfilling the whole specification becomes final.
func (cm *CM) Evaluate(da string, dov version.ID) (feature.QualityState, error) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(da)
	if err != nil {
		return feature.QualityState{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := Legal(st.da.State, OpEvaluate); !ok {
		return feature.QualityState{}, fmt.Errorf("%w: Evaluate by %s in state %s", ErrIllegalOp, da, st.da.State)
	}
	if !cm.scopes.InScope(da, string(dov)) {
		return feature.QualityState{}, fmt.Errorf("%w: %s for %s", ErrOutOfScope, dov, da)
	}
	v, err := cm.repo.Get(dov)
	if err != nil {
		return feature.QualityState{}, err
	}
	q := st.da.Spec.Evaluate(v.Object, cm.reg)
	if err := cm.repo.SetFulfilled(dov, q.Fulfilled); err != nil {
		return q, err
	}
	if q.Final() && !st.da.Spec.Empty() {
		if err := cm.repo.SetStatus(dov, version.StatusFinal); err != nil {
			return q, err
		}
	}
	cm.logOp(OpEvaluate, da, string(dov))
	return q, nil
}
