package coop

import (
	"fmt"

	"concord/internal/feature"
	"concord/internal/version"
)

// Propagate pre-releases a DOV of the DA's derivation graph (operation 9):
// the version becomes visible to DAs connected by usage relationships whose
// required feature sets the version's quality state covers, and to pending
// Require requests, which are then satisfied. The granted peers are
// returned.
func (cm *CM) Propagate(da string, dov version.ID) ([]string, error) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(da)
	if err != nil {
		return nil, err
	}
	// The lock set depends on state read under st.mu (the usage peers), so
	// snapshot it, lock the whole set in order, and retry if a peer was
	// added in between. SupportsTo only ever grows (Require adds entries
	// while holding the supporter's lock), so the loop converges.
	for {
		st.mu.Lock()
		peers := make([]string, 0, len(st.da.SupportsTo))
		for p := range st.da.SupportsTo {
			peers = append(peers, p)
		}
		st.mu.Unlock()

		states := make([]*daState, 0, len(peers)+1)
		states = append(states, st)
		for _, p := range peers {
			if ps, ok := cm.das[p]; ok {
				states = append(states, ps)
			}
		}
		unlock := lockOrdered(states...)
		if len(st.da.SupportsTo) != len(peers) {
			unlock()
			continue // a peer appeared between snapshot and lock; retry
		}
		granted, err := cm.propagateLocked(st, dov)
		unlock()
		return granted, err
	}
}

// propagateLocked does the Propagate work. The caller holds st.mu and the
// mutexes of every usage peer of st.
func (cm *CM) propagateLocked(st *daState, dov version.ID) ([]string, error) {
	da := st.da.ID
	if _, ok := Legal(st.da.State, OpPropagate); !ok {
		return nil, fmt.Errorf("%w: Propagate by %s in state %s", ErrIllegalOp, da, st.da.State)
	}
	g, err := cm.repo.Graph(da)
	if err != nil {
		return nil, err
	}
	if !g.Contains(dov) {
		return nil, fmt.Errorf("%w: %s is not in the derivation graph of %s", ErrOutOfScope, dov, da)
	}
	v, err := cm.repo.Get(dov)
	if err != nil {
		return nil, err
	}
	if v.Status != version.StatusFinal {
		if err := cm.repo.SetStatus(dov, version.StatusPropagated); err != nil {
			return nil, err
		}
	}
	quality := feature.QualityState{Fulfilled: v.Fulfilled}
	var granted []string
	// Satisfy pending Require requests whose feature sets are covered.
	var remaining []pendingRequire
	for _, p := range st.pending {
		if quality.Covers(p.Features) {
			cm.grantUse(st, p.Requirer, dov, p.Features)
			granted = append(granted, p.Requirer)
		} else {
			remaining = append(remaining, p)
		}
	}
	st.pending = remaining
	// Existing usage relationships: peers whose required features are
	// covered see the version too.
	for peer := range st.da.SupportsTo {
		ps, err := cm.get(peer)
		if err != nil {
			continue
		}
		req := ps.da.UsesFrom[da]
		if quality.Covers(req) && !cm.hasGrant(st, peer, dov) {
			cm.grantUse(st, peer, dov, req)
			granted = append(granted, peer)
		}
	}
	cm.logOp(OpPropagate, da, string(dov))
	if err := cm.persist(st); err != nil {
		return granted, err
	}
	return granted, nil
}

func (cm *CM) hasGrant(st *daState, peer string, dov version.ID) bool {
	for _, g := range st.grants {
		if g.Peer == peer && g.DOV == dov {
			return true
		}
	}
	return false
}

// grantUse records and applies a usage grant. Callers hold st.mu.
func (cm *CM) grantUse(st *daState, peer string, dov version.ID, features []string) {
	cm.scopes.GrantUse(peer, string(dov))
	st.grants = append(st.grants, grant{Peer: peer, DOV: dov, Features: features})
	cm.notify(peer, EventPropagated, map[string]string{"dov": string(dov), "from": st.da.ID})
}

// Require asks a supporting DA for a DOV with the given features satisfied
// (operation 10), establishing a usage relationship. If a propagated or
// final DOV already qualifies it is granted immediately (returned with
// ok=true); otherwise the request is registered and the supporter notified —
// its ECA rules typically answer with a Propagate (Sect. 4.2).
func (cm *CM) Require(requirer, supporter string, features []string) (version.ID, bool, error) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	req, err := cm.get(requirer)
	if err != nil {
		return "", false, err
	}
	sup, err := cm.get(supporter)
	if err != nil {
		return "", false, err
	}
	if requirer == supporter {
		return "", false, fmt.Errorf("%w: self-usage of %s", ErrNoUsage, requirer)
	}
	defer lockOrdered(req, sup)()
	if _, ok := Legal(req.da.State, OpRequire); !ok {
		return "", false, fmt.Errorf("%w: Require by %s in state %s", ErrIllegalOp, requirer, req.da.State)
	}
	// Precondition: the requirer knows the supporter's design
	// specification — every required feature must be part of it.
	for _, f := range features {
		if _, ok := sup.da.Spec.Feature(f); !ok {
			return "", false, fmt.Errorf("%w: feature %q not in specification of %s", ErrNoUsage, f, supporter)
		}
	}
	req.da.UsesFrom[supporter] = append([]string(nil), features...)
	sup.da.SupportsTo[requirer] = true

	// Search the supporter's propagated/final versions for one covering
	// the required features.
	var found version.ID
	if g, err := cm.repo.Graph(supporter); err == nil {
		for _, id := range g.IDs() {
			v, err := g.Get(id)
			if err != nil {
				continue
			}
			if v.Status != version.StatusPropagated && v.Status != version.StatusFinal {
				continue
			}
			q := feature.QualityState{Fulfilled: v.Fulfilled}
			if q.Covers(features) {
				found = id
				break
			}
		}
	}
	cm.logOp(OpRequire, requirer, "from="+supporter)
	if found != "" {
		cm.grantUse(sup, requirer, found, features)
		if err := cm.persist(sup); err != nil {
			return "", false, err
		}
		if err := cm.persist(req); err != nil {
			return "", false, err
		}
		return found, true, nil
	}
	sup.pending = append(sup.pending, pendingRequire{Requirer: requirer, Features: features})
	cm.notify(supporter, EventRequire, map[string]string{"requirer": requirer})
	if err := cm.persist(sup); err != nil {
		return "", false, err
	}
	if err := cm.persist(req); err != nil {
		return "", false, err
	}
	return "", false, nil
}

// CreateNegotiationRel explicitly establishes a negotiation relationship
// between two sub-DAs of the issuing super-DA (operation 11). Negotiation is
// allowed "between only the sub-DAs of the same super-DA" (Sect. 4.1).
func (cm *CM) CreateNegotiationRel(super, a, b string) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	sa, err := cm.get(a)
	if err != nil {
		return err
	}
	sb, err := cm.get(b)
	if err != nil {
		return err
	}
	if _, err := cm.get(super); err != nil {
		return err
	}
	defer lockOrdered(sa, sb)()
	if sa.da.Parent != super || sb.da.Parent != super || a == b {
		return fmt.Errorf("%w: %s and %s under %s", ErrNotSiblings, a, b, super)
	}
	cm.addNegotiation(sa, sb)
	cm.logOp(OpCreateNegotiation, super, a+"/"+b)
	if err := cm.persist(sa); err != nil {
		return err
	}
	return cm.persist(sb)
}

// addNegotiation records the relationship. Callers hold both DA locks.
func (cm *CM) addNegotiation(sa, sb *daState) {
	if !contains(sa.da.Negotiations, sb.da.ID) {
		sa.da.Negotiations = append(sa.da.Negotiations, sb.da.ID)
	}
	if !contains(sb.da.Negotiations, sa.da.ID) {
		sb.da.Negotiations = append(sb.da.Negotiations, sa.da.ID)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Propose opens (or continues) a negotiation between sibling sub-DAs
// (operation 12): a dynamic Propose establishes the relationship implicitly.
// Both DAs enter the negotiating state; their internal processing is
// suspended until agreement or conflict escalation.
func (cm *CM) Propose(from, to string, proposal map[string]string) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	sf, err := cm.get(from)
	if err != nil {
		return err
	}
	st, err := cm.get(to)
	if err != nil {
		return err
	}
	if from == to {
		return fmt.Errorf("%w: %s and %s", ErrNotSiblings, from, to)
	}
	defer lockOrdered(sf, st)()
	if sf.da.Parent == "" || sf.da.Parent != st.da.Parent {
		return fmt.Errorf("%w: %s and %s", ErrNotSiblings, from, to)
	}
	if err := cm.step(sf, OpPropose); err != nil {
		return err
	}
	if err := cm.step(st, OpPropose); err != nil {
		// Roll the proposer's transition back for atomicity.
		sf.da.State = StateActive
		return err
	}
	cm.addNegotiation(sf, st)
	data := map[string]string{"from": from}
	for k, v := range proposal {
		data[k] = v
	}
	cm.notify(to, EventPropose, data)
	cm.logOp(OpPropose, from, "to="+to)
	if err := cm.persist(sf); err != nil {
		return err
	}
	return cm.persist(st)
}

// Agree accepts the current proposal (operation 13): both negotiating DAs
// return to active and resume internal processing.
func (cm *CM) Agree(da, peer string) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	sd, err := cm.get(da)
	if err != nil {
		return err
	}
	sp, err := cm.get(peer)
	if err != nil {
		return err
	}
	defer lockOrdered(sd, sp)()
	if !contains(sd.da.Negotiations, peer) {
		return fmt.Errorf("%w: %s with %s", ErrNoNegotiation, da, peer)
	}
	if err := cm.step(sd, OpAgree); err != nil {
		return err
	}
	if err := cm.step(sp, OpAgree); err != nil {
		sd.da.State = StateNegotiating
		return err
	}
	cm.notify(peer, EventAgree, map[string]string{"from": da})
	cm.logOp(OpAgree, da, "with="+peer)
	if err := cm.persist(sd); err != nil {
		return err
	}
	return cm.persist(sp)
}

// Disagree rejects the current proposal (operation 14): both DAs remain
// negotiating; the peer is notified and may counter-propose or escalate.
func (cm *CM) Disagree(da, peer string) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	sd, err := cm.get(da)
	if err != nil {
		return err
	}
	if _, err := cm.get(peer); err != nil {
		return err
	}
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if !contains(sd.da.Negotiations, peer) {
		return fmt.Errorf("%w: %s with %s", ErrNoNegotiation, da, peer)
	}
	if err := cm.step(sd, OpDisagree); err != nil {
		return err
	}
	cm.notify(peer, EventDisagree, map[string]string{"from": da})
	cm.logOp(OpDisagree, da, "with="+peer)
	return cm.persist(sd)
}

// SpecConflict escalates a failed negotiation to the common super-DA
// (operation 15): both sub-DAs leave the negotiating state and the super-DA
// is asked to resolve the conflict (typically by Modify_Sub_DA_Spec).
func (cm *CM) SpecConflict(a, b string) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	sa, err := cm.get(a)
	if err != nil {
		return err
	}
	sb, err := cm.get(b)
	if err != nil {
		return err
	}
	defer lockOrdered(sa, sb)()
	if !contains(sa.da.Negotiations, b) {
		return fmt.Errorf("%w: %s with %s", ErrNoNegotiation, a, b)
	}
	if err := cm.step(sa, OpSubDASpecConflict); err != nil {
		return err
	}
	if err := cm.step(sb, OpSubDASpecConflict); err != nil {
		sa.da.State = StateNegotiating
		return err
	}
	cm.notify(sa.da.Parent, EventSpecConflict, map[string]string{"a": a, "b": b})
	cm.logOp(OpSubDASpecConflict, a, "with="+b)
	if err := cm.persist(sa); err != nil {
		return err
	}
	return cm.persist(sb)
}

// SubDAReadyToCommit signals that the sub-DA reached one or more final DOVs
// (operation 5). The sub-DA must not terminate without the super-DA's
// agreement; it waits in ready-for-termination.
func (cm *CM) SubDAReadyToCommit(sub string) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(sub)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.da.Parent == "" {
		return fmt.Errorf("%w: %s has no super-DA", ErrNotParent, sub)
	}
	g, err := cm.repo.Graph(sub)
	if err != nil {
		return err
	}
	if len(g.FinalDOVs()) == 0 {
		return fmt.Errorf("%w: %s", ErrNoFinalDOV, sub)
	}
	if err := cm.step(st, OpSubDAReadyToCommit); err != nil {
		return err
	}
	cm.notify(st.da.Parent, EventReadyToCommit, map[string]string{"sub": sub})
	cm.logOp(OpSubDAReadyToCommit, sub, "")
	return cm.persist(st)
}

// SubDAImpossibleSpec signals that the sub-DA cannot fulfil its
// specification (operation 8) and asks the super-DA for a reaction
// (termination or specification change).
func (cm *CM) SubDAImpossibleSpec(sub, reason string) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(sub)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.da.Parent == "" {
		return fmt.Errorf("%w: %s has no super-DA", ErrNotParent, sub)
	}
	if err := cm.step(st, OpSubDAImpossible); err != nil {
		return err
	}
	cm.notify(st.da.Parent, EventImpossible, map[string]string{"sub": sub, "reason": reason})
	cm.logOp(OpSubDAImpossible, sub, reason)
	return cm.persist(st)
}

// ModifySubDASpec lets the super-DA reformulate a sub-DA's design goal
// (operation 4). The sub-DA returns to active (keeping its derivation graph
// as a basis for the new goal) and is notified; previously propagated DOVs
// whose granted feature sets are no longer part of the new specification are
// withdrawn from their requirers (Sect. 5.4).
func (cm *CM) ModifySubDASpec(super, sub string, spec *feature.Spec) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(sub)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.da.Parent != super {
		return fmt.Errorf("%w: %s is not the super-DA of %s", ErrNotParent, super, sub)
	}
	if err := cm.step(st, OpModifySubDASpec); err != nil {
		return err
	}
	st.da.Spec = spec
	cm.withdrawStaleGrants(st, spec)
	cm.notify(sub, EventSpecModified, map[string]string{"super": super})
	cm.logOp(OpModifySubDASpec, sub, "by="+super)
	return cm.persist(st)
}

// RefineOwnSpec lets a DA refine its own specification: only addition of new
// features or further restriction of existing ones is allowed (Sect. 4.1).
func (cm *CM) RefineOwnSpec(da string, spec *feature.Spec) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(da)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.da.State != StateActive && st.da.State != StateNegotiating {
		return fmt.Errorf("%w: refine in state %s", ErrIllegalOp, st.da.State)
	}
	if !spec.IsRefinementOf(st.da.Spec) {
		return fmt.Errorf("%w: %s", ErrNotRefinement, da)
	}
	st.da.Spec = spec
	return cm.persist(st)
}

// withdrawStaleGrants revokes grants whose required features vanished from
// the new specification and notifies the affected requirers. Callers hold
// st.mu.
func (cm *CM) withdrawStaleGrants(st *daState, spec *feature.Spec) {
	var kept []grant
	for _, g := range st.grants {
		stale := false
		for _, f := range g.Features {
			if _, ok := spec.Feature(f); !ok {
				stale = true
				break
			}
		}
		if stale {
			cm.scopes.RevokeUse(g.Peer, string(g.DOV))
			cm.repo.SetStatus(g.DOV, version.StatusInvalid) //nolint:errcheck // status cache
			cm.notify(g.Peer, EventWithdraw, map[string]string{"dov": string(g.DOV), "from": st.da.ID})
		} else {
			kept = append(kept, g)
		}
	}
	st.grants = kept
}

// InvalidateDOV handles the invalidation of pre-released design information
// (Sect. 5.4): a propagated DOV turns out not to be an ancestor of a final
// DOV. For every grant on it the CM propagates a replacement fulfilling the
// required (and possibly more) features; requirers without a qualifying
// replacement receive a withdrawal.
func (cm *CM) InvalidateDOV(da string, dov version.ID) error {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(da)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := cm.repo.SetStatus(dov, version.StatusInvalid); err != nil {
		return err
	}
	g, err := cm.repo.Graph(da)
	if err != nil {
		return err
	}
	var kept []grant
	for _, gr := range st.grants {
		if gr.DOV != dov {
			kept = append(kept, gr)
			continue
		}
		cm.scopes.RevokeUse(gr.Peer, string(dov))
		// Search a replacement among propagated/final versions.
		var repl version.ID
		for _, id := range g.IDs() {
			if id == dov {
				continue
			}
			v, err := g.Get(id)
			if err != nil {
				continue
			}
			if v.Status != version.StatusPropagated && v.Status != version.StatusFinal {
				continue
			}
			q := feature.QualityState{Fulfilled: v.Fulfilled}
			if q.Covers(gr.Features) {
				repl = id
				break
			}
		}
		if repl != "" {
			cm.scopes.GrantUse(gr.Peer, string(repl))
			kept = append(kept, grant{Peer: gr.Peer, DOV: repl, Features: gr.Features})
			cm.notify(gr.Peer, EventReplaced, map[string]string{"old": string(dov), "dov": string(repl), "from": da})
		} else {
			cm.notify(gr.Peer, EventWithdraw, map[string]string{"dov": string(dov), "from": da})
		}
	}
	st.grants = kept
	return cm.persist(st)
}

// TerminateSubDA commits or cancels a sub-DA (operation 6). All of the
// sub-DA's own sub-DAs must already be terminated. Scope locks on its final
// DOVs are inherited by the super-DA (the final DOVs devolve to the
// super-DA's scope, Sect. 4.1/5.4); grants on non-final propagated versions
// are withdrawn. Structural: takes cm.mu in write mode.
func (cm *CM) TerminateSubDA(super, sub string) error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	st, err := cm.get(sub)
	if err != nil {
		return err
	}
	if st.da.Parent != super {
		return fmt.Errorf("%w: %s is not the super-DA of %s", ErrNotParent, super, sub)
	}
	sup, err := cm.get(super)
	if err != nil {
		return err
	}
	for _, c := range st.da.Children {
		cs, err := cm.get(c)
		if err != nil {
			return err
		}
		if cs.da.State != StateTerminated {
			return fmt.Errorf("%w: %s has live sub-DA %s", ErrChildrenLive, sub, c)
		}
	}
	if err := cm.step(st, OpTerminateSubDA); err != nil {
		return err
	}
	// Withdraw grants on non-final versions (the DA is cancelled or its
	// preliminary releases lose their basis).
	var finals []version.ID
	if g, err := cm.repo.Graph(sub); err == nil {
		for _, v := range g.FinalDOVs() {
			finals = append(finals, v.ID)
		}
	}
	finalSet := make(map[version.ID]bool, len(finals))
	for _, f := range finals {
		finalSet[f] = true
	}
	var keptGrants []grant
	for _, gr := range st.grants {
		if finalSet[gr.DOV] {
			keptGrants = append(keptGrants, gr)
			continue
		}
		cm.scopes.RevokeUse(gr.Peer, string(gr.DOV))
		cm.notify(gr.Peer, EventWithdraw, map[string]string{"dov": string(gr.DOV), "from": sub})
	}
	st.grants = keptGrants
	// Inherit scope locks on final DOVs (nested-transaction style).
	ownedFinals := make([]string, 0, len(finals))
	for _, f := range finals {
		if owner, ok := cm.scopes.Owner(string(f)); ok && owner == sub {
			ownedFinals = append(ownedFinals, string(f))
		}
	}
	if len(ownedFinals) > 0 {
		if err := cm.scopes.Inherit(sub, super, ownedFinals); err != nil {
			return err
		}
		sup.da.InheritedFinals = append(sup.da.InheritedFinals, finals...)
	}
	// Drop the sub-DA's remaining scope (working versions stay archived in
	// the repository but leave every scope).
	cm.scopes.ReleaseDA(sub)
	// Re-grant what the inheritance should keep visible: nothing — the
	// super-DA owns the finals now, which ReleaseDA did not touch (owner
	// already transferred).
	cm.notify(sub, EventTerminated, map[string]string{"super": super})
	cm.logOp(OpTerminateSubDA, sub, "by="+super)
	if err := cm.persist(st); err != nil {
		return err
	}
	return cm.persist(sup)
}

// TerminateTopLevel ends the whole design process: the top-level DA
// terminates once all sub-DAs have, and all scope locks of the hierarchy are
// released (Sect. 5.4). Structural: takes cm.mu in write mode.
func (cm *CM) TerminateTopLevel(da string) error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	st, err := cm.get(da)
	if err != nil {
		return err
	}
	if st.da.Parent != "" {
		return fmt.Errorf("%w: %s is not top-level", ErrNotParent, da)
	}
	for _, c := range st.da.Children {
		cs, err := cm.get(c)
		if err != nil {
			return err
		}
		if cs.da.State != StateTerminated {
			return fmt.Errorf("%w: %s has live sub-DA %s", ErrChildrenLive, da, c)
		}
	}
	if err := cm.step(st, OpTerminateSubDA); err != nil {
		return err
	}
	cm.scopes.ReleaseDA(da)
	cm.logOp(OpTerminateSubDA, da, "top-level")
	return cm.persist(st)
}

// Get returns a copy of a DA's public view.
func (cm *CM) Get(id string) (DA, error) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(id)
	if err != nil {
		return DA{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	da := *st.da
	da.Children = append([]string(nil), st.da.Children...)
	da.Negotiations = append([]string(nil), st.da.Negotiations...)
	da.InheritedFinals = append([]version.ID(nil), st.da.InheritedFinals...)
	da.UsesFrom = make(map[string][]string, len(st.da.UsesFrom))
	for k, v := range st.da.UsesFrom {
		da.UsesFrom[k] = append([]string(nil), v...)
	}
	da.SupportsTo = make(map[string]bool, len(st.da.SupportsTo))
	for k, v := range st.da.SupportsTo {
		da.SupportsTo[k] = v
	}
	return da, nil
}

// Hierarchy returns the DA IDs of the subtree rooted at root in breadth-
// first order.
func (cm *CM) Hierarchy(root string) ([]string, error) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	if _, err := cm.get(root); err != nil {
		return nil, err
	}
	var out []string
	queue := []string{root}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		out = append(out, id)
		if st, ok := cm.das[id]; ok {
			st.mu.Lock()
			queue = append(queue, st.da.Children...)
			st.mu.Unlock()
		}
	}
	return out, nil
}

// PendingRequires reports the unsatisfied Require requests registered
// against a supporting DA.
func (cm *CM) PendingRequires(supporter string) ([]string, error) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(supporter)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.pending))
	for _, p := range st.pending {
		out = append(out, p.Requirer)
	}
	return out, nil
}

// PendingRequireFeatures returns the required feature sets of the
// unsatisfied Require requests against a supporting DA (one slice per
// pending request, in registration order).
func (cm *CM) PendingRequireFeatures(supporter string) ([][]string, error) {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	st, err := cm.get(supporter)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([][]string, 0, len(st.pending))
	for _, p := range st.pending {
		out = append(out, append([]string(nil), p.Features...))
	}
	return out, nil
}
