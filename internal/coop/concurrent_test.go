package coop

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"concord/internal/script"
)

// TestConcurrentDAOperations drives CM operations for many independent DAs
// from parallel goroutines (the multi-workstation pattern: one designer per
// DA). Run with -race; it exercises the per-DA locking plus the structural
// write-lock paths concurrently.
func TestConcurrentDAOperations(t *testing.T) {
	h := newHarness(t, "")
	defer h.cm.Close()
	h.initChipDA(t, "root", nil)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := fmt.Sprintf("sub-%d", w)
			if err := h.cm.CreateSubDA("root", Config{ID: sub, DOT: "cell", Designer: "d", Spec: specArea(100)}); err != nil {
				t.Errorf("CreateSubDA(%s): %v", sub, err)
				return
			}
			if err := h.cm.Start(sub); err != nil {
				t.Errorf("Start(%s): %v", sub, err)
				return
			}
			for i := 0; i < 10; i++ {
				dov := h.addDOV(t, sub, fmt.Sprintf("%s/v%d", sub, i), 50)
				if _, err := h.cm.Evaluate(sub, dov); err != nil {
					t.Errorf("Evaluate(%s): %v", sub, err)
					return
				}
				if _, err := h.cm.Propagate(sub, dov); err != nil {
					t.Errorf("Propagate(%s): %v", sub, err)
					return
				}
				if _, err := h.cm.Get(sub); err != nil {
					t.Errorf("Get(%s): %v", sub, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ids, err := h.cm.Hierarchy("root")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != workers+1 {
		t.Fatalf("hierarchy has %d DAs, want %d", len(ids), workers+1)
	}
}

// TestConcurrentRequirePropagate races usage-relationship establishment
// against propagation between pairs of sibling DAs.
func TestConcurrentRequirePropagate(t *testing.T) {
	h := newHarness(t, "")
	defer h.cm.Close()
	h.initChipDA(t, "root", nil)
	const pairs = 4
	for p := 0; p < pairs; p++ {
		h.subDA(t, "root", fmt.Sprintf("maker-%d", p), specArea(100), "")
		h.subDA(t, "root", fmt.Sprintf("user-%d", p), nil, "")
	}
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		maker := fmt.Sprintf("maker-%d", p)
		user := fmt.Sprintf("user-%d", p)
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, _, err := h.cm.Require(user, maker, []string{"area-limit"}); err != nil {
				t.Errorf("Require(%s←%s): %v", user, maker, err)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				dov := h.addDOV(t, maker, fmt.Sprintf("%s/v%d", maker, i), 50)
				if _, err := h.cm.Evaluate(maker, dov); err != nil {
					t.Errorf("Evaluate(%s): %v", maker, err)
					return
				}
				if _, err := h.cm.Propagate(maker, dov); err != nil {
					t.Errorf("Propagate(%s): %v", maker, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every user must have ended up with a granted version: either the
	// Require found one immediately or a later Propagate satisfied the
	// pending request.
	for p := 0; p < pairs; p++ {
		user := fmt.Sprintf("user-%d", p)
		maker := fmt.Sprintf("maker-%d", p)
		pending, err := h.cm.PendingRequires(maker)
		if err != nil {
			t.Fatal(err)
		}
		if len(pending) != 0 {
			t.Fatalf("maker %s still has pending requires %v", maker, pending)
		}
		da, err := h.cm.Get(user)
		if err != nil {
			t.Fatal(err)
		}
		if len(da.UsesFrom[maker]) == 0 {
			t.Fatalf("user %s has no usage relationship to %s", user, maker)
		}
	}
}

// TestEventDispatchOrder checks the dispatch queue's ordering guarantee:
// events for one DA arrive at its sink in the order the operations ran.
func TestEventDispatchOrder(t *testing.T) {
	h := newHarness(t, "")
	defer h.cm.Close()
	h.initChipDA(t, "root", nil)
	h.subDA(t, "root", "maker", specArea(100), "")
	h.subDA(t, "root", "user", nil, "")

	var mu sync.Mutex
	var got []string
	h.cm.Subscribe("user", func(ev script.Event) {
		mu.Lock()
		got = append(got, ev.Name+":"+ev.Data["dov"])
		mu.Unlock()
	})

	if _, _, err := h.cm.Require("user", "maker", []string{"area-limit"}); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 6; i++ {
		dov := h.addDOV(t, "maker", fmt.Sprintf("maker/v%d", i), 50)
		if _, err := h.cm.Evaluate("maker", dov); err != nil {
			t.Fatal(err)
		}
		granted, err := h.cm.Propagate("maker", dov)
		if err != nil {
			t.Fatal(err)
		}
		if len(granted) != 1 || granted[0] != "user" {
			t.Fatalf("propagate %s granted %v", dov, granted)
		}
		want = append(want, "Propagated:"+string(dov))
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d events, want %d", n, len(want))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("event %d = %s, want %s (full order: %v)", i, got[i], w, got)
		}
	}
}

// TestCloseDrainsQueue checks Close delivers already-enqueued events before
// stopping the dispatcher.
func TestCloseDrainsQueue(t *testing.T) {
	h := newHarness(t, "")
	h.initChipDA(t, "root", nil)
	h.subDA(t, "root", "maker", specArea(100), "")
	h.subDA(t, "root", "user", nil, "")
	var mu sync.Mutex
	count := 0
	h.cm.Subscribe("user", func(script.Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if _, _, err := h.cm.Require("user", "maker", []string{"area-limit"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		dov := h.addDOV(t, "maker", fmt.Sprintf("maker/v%d", i), 50)
		if _, err := h.cm.Evaluate("maker", dov); err != nil {
			t.Fatal(err)
		}
		if _, err := h.cm.Propagate("maker", dov); err != nil {
			t.Fatal(err)
		}
	}
	h.cm.Close() // must drain the 4 Propagated events
	mu.Lock()
	defer mu.Unlock()
	if count != 4 {
		t.Fatalf("sink saw %d events after Close, want 4", count)
	}
	h.cm.Close() // idempotent
}
