package core

import (
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// stagedKey mirrors the server-TM's persistent key for a prepared checkin.
const stagedKey = "tm/staged/tx-indoubt"

// TestCheckpointPreservesInDoubt2PC stages and prepares a checkin, takes a
// checkpoint while the transaction is in doubt, crashes the server, and
// verifies that (a) the staged record and the prepared vote survive via the
// snapshot and compacted participant log, and (b) the restarted participant
// resolves the transaction (presumed abort here: no coordinator logged a
// commit), after which normal work continues.
func TestCheckpointPreservesInDoubt2PC(t *testing.T) {
	dir := t.TempDir()
	sys := newSystem(t, dir)
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	v0 := planOnce(t, ws, "da1", 90, "")

	// Stage + prepare a checkin server-side without delivering the
	// decision: the transaction is now in doubt at the participant.
	sys.mu.Lock()
	site := sys.server
	sys.mu.Unlock()
	if err := site.stm.Begin("dop-indoubt", "da1"); err != nil {
		t.Fatal(err)
	}
	obj := catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str("O")).
		Set("area", catalog.Float(70))
	dov := &version.DOV{ID: "dov-indoubt", DOT: vlsi.DOTFloorplan, DA: "da1", Object: obj, Status: version.StatusWorking}
	if err := site.stm.Stage("dop-indoubt", "tx-indoubt", dov, true, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := site.participant.Handler()(rpc.MethodPrepare, []byte("tx-indoubt"))
	if err != nil || string(resp) != "commit" {
		t.Fatalf("prepare = %q, %v", resp, err)
	}

	// Checkpoint with the transaction in doubt: the staged record rides in
	// the repository snapshot, the vote in the participant-log snapshot.
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Repo().LogSize() - int64(sys.Repo().LowWater()); got != 0 {
		t.Fatalf("repo log suffix after checkpoint = %d bytes", got)
	}
	if err := sys.CrashServer(); err != nil {
		t.Fatal(err)
	}

	// Inspect the durable state between crash and restart: the staged
	// record must have survived the checkpoint.
	insp, err := repo.Open(sys.Catalog(), repo.Options{Dir: sys.serverDir(), Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := insp.GetMeta(stagedKey); err != nil {
		t.Fatalf("staged 2PC record lost across checkpoint+crash: %v", err)
	}
	if ok, err := insp.Exists("dov-indoubt"); err != nil || ok {
		t.Fatalf("undecided DOV installed before the decision (ok=%t err=%v)", ok, err)
	}
	insp.Close()

	// Restart: the participant recovers its vote from the compacted log
	// and resolves the in-doubt transaction against the coordinators — no
	// coordinator logged a commit, so presumed abort applies and the
	// staged record is dropped.
	if err := sys.RestartServer(); err != nil {
		t.Fatal(err)
	}
	if ok, err := sys.Repo().Exists("dov-indoubt"); err != nil || ok {
		t.Fatalf("aborted checkin installed after restart (ok=%t err=%v)", ok, err)
	}
	if _, err := sys.Repo().GetMeta(stagedKey); err == nil {
		t.Fatal("staged record not cleaned up by in-doubt resolution")
	}
	sys.mu.Lock()
	site = sys.server
	sys.mu.Unlock()
	if n := len(site.participant.InDoubt()); n != 0 {
		t.Fatalf("%d transactions still in doubt after restart", n)
	}
	// The committed history survived and work continues.
	if ok, err := sys.Repo().Exists(v0); err != nil || !ok {
		t.Fatalf("committed version lost (ok=%t err=%v)", ok, err)
	}
	planOnce(t, ws, "da1", 60, v0)
}

// TestBackgroundCheckpointer drives enough log traffic past a small
// threshold and waits for the background checkpointer to compact the log,
// then verifies a crash+restart recovers everything from the snapshot.
func TestBackgroundCheckpointer(t *testing.T) {
	old := checkpointPollInterval
	checkpointPollInterval = 5 * time.Millisecond
	defer func() { checkpointPollInterval = old }()

	sys, err := NewSystem(Options{
		Dir:                t.TempDir(),
		RegisterTypes:      vlsi.RegisterCatalog,
		CheckpointLogBytes: 8 << 10,
		SegmentBytes:       4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	startDA(t, sys, "da1", areaSpec(1000))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	var last version.ID
	deadline := time.Now().Add(10 * time.Second)
	for sys.Repo().Checkpoints() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never fired (log size %d)", sys.Repo().LogSize())
		}
		last = planOnce(t, ws, "da1", 500, last)
	}
	if sys.Repo().LowWater() == 0 {
		t.Fatal("checkpoint completed but low-water mark not advanced")
	}
	want := sys.Repo().DOVCount()
	if err := sys.CrashServer(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RestartServer(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Repo().DOVCount(); got != want {
		t.Fatalf("recovered %d DOVs after background checkpoint, want %d", got, want)
	}
	if err := sys.Repo().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	planOnce(t, ws, "da1", 400, last)
}

// TestNoCheckpointAblation verifies the ablation flag: with checkpointing
// disabled the log only grows and replay covers the full history, the seed
// behaviour E13 measures against.
func TestNoCheckpointAblation(t *testing.T) {
	old := checkpointPollInterval
	checkpointPollInterval = 5 * time.Millisecond
	defer func() { checkpointPollInterval = old }()

	sys, err := NewSystem(Options{
		Dir:                t.TempDir(),
		RegisterTypes:      vlsi.RegisterCatalog,
		CheckpointLogBytes: 1 << 10,
		NoCheckpoint:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	startDA(t, sys, "da1", areaSpec(1000))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	var last version.ID
	for i := 0; i < 10; i++ {
		last = planOnce(t, ws, "da1", 500, last)
	}
	time.Sleep(50 * time.Millisecond) // would be ample for the poller
	if n := sys.Repo().Checkpoints(); n != 0 {
		t.Fatalf("%d checkpoints ran with NoCheckpoint set", n)
	}
	if lw := sys.Repo().LowWater(); lw != 0 {
		t.Fatalf("low-water mark %d moved with NoCheckpoint set", lw)
	}
}
