package core

import (
	"strings"

	"concord/internal/coop"
	"concord/internal/script"
	"concord/internal/version"
)

// versionID converts event data to a version identifier.
func versionID(s string) version.ID { return version.ID(s) }

// StandardRules builds the canonical ECA rule set a design manager installs
// for its DA (Sect. 4.2 / 5.3):
//
//   - WHEN Require IF a qualifying DOV is available THEN Propagate it
//     (immediately satisfying the pending request);
//   - WHEN Withdraw THEN analyze whether the withdrawn version affected
//     locally derived DOVs; if so, stop the script so the designer decides
//     how to continue (work unaffected by the withdrawal proceeds);
//   - WHEN Spec_Modified THEN stop the script — DA execution restarts from
//     the beginning under the new specification (the caller resets the
//     journal before re-running);
//   - WHEN Propose THEN stop the script — internal processing is suspended
//     while negotiating.
//
// Rule outcomes are recorded in script variables for diagnostics:
// "rule:propagated", "rule:withdraw-affected", "rule:spec-modified",
// "rule:negotiating".
func StandardRules(sys *System, da string) []script.Rule {
	cm := sys.CM()
	return []script.Rule{
		{
			Name:  "auto-propagate-on-require",
			Event: coop.EventRequire,
			Action: func(c *script.Ctx, ev script.Event) error {
				// The pending request's features are recorded at the CM;
				// AutoPropagate re-checks every pending request for this
				// supporter by propagating a version that covers it.
				reqs, err := cm.PendingRequireFeatures(da)
				if err != nil {
					return err
				}
				for _, features := range reqs {
					if dov, ok, err := cm.AutoPropagate(da, features); err != nil {
						return err
					} else if ok {
						c.SetVar("rule:propagated", string(dov))
					}
				}
				return nil
			},
		},
		{
			Name:  "analyze-withdrawal",
			Event: coop.EventWithdraw,
			Action: func(c *script.Ctx, ev script.Event) error {
				affected, err := cm.AffectedByWithdrawal(da, versionID(ev.Data["dov"]))
				if err != nil {
					return err
				}
				if len(affected) > 0 {
					ids := make([]string, len(affected))
					for i, a := range affected {
						ids[i] = string(a)
					}
					c.SetVar("rule:withdraw-affected", strings.Join(ids, ","))
					c.Stop() // designer decides how to continue (Sect. 5.3)
				}
				return nil
			},
		},
		{
			Name:  "restart-on-spec-change",
			Event: coop.EventSpecModified,
			Action: func(c *script.Ctx, ev script.Event) error {
				c.SetVar("rule:spec-modified", ev.Data["super"])
				c.Stop()
				return nil
			},
		},
		{
			Name:  "suspend-while-negotiating",
			Event: coop.EventPropose,
			Action: func(c *script.Ctx, ev script.Event) error {
				c.SetVar("rule:negotiating", ev.Data["from"])
				c.Stop()
				return nil
			},
		},
	}
}
