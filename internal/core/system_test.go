package core

import (
	"errors"
	"testing"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/feature"
	"concord/internal/script"
	"concord/internal/txn"
	"concord/internal/version"
	"concord/internal/vlsi"
)

func newSystem(t *testing.T, dir string) *System {
	t.Helper()
	sys, err := NewSystem(Options{Dir: dir, RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func areaSpec(max float64) *feature.Spec {
	return feature.MustSpec(feature.Range("area-limit", "area", 0, max))
}

// startDA initializes and starts a top-level DA.
func startDA(t *testing.T, sys *System, id string, spec *feature.Spec) {
	t.Helper()
	if err := sys.CM().InitDesign(coop.Config{ID: id, DOT: vlsi.DOTFloorplan, Spec: spec, Designer: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CM().Start(id); err != nil {
		t.Fatal(err)
	}
}

// planOnce runs a full DOP: derive a floorplan version of the given area.
func planOnce(t *testing.T, ws *Workstation, da string, area float64, parent version.ID) version.ID {
	t.Helper()
	dop, err := ws.Begin("", da)
	if err != nil {
		t.Fatal(err)
	}
	root := parent == ""
	if !root {
		if _, err := dop.Checkout(parent, false); err != nil {
			t.Fatal(err)
		}
	}
	obj := catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str("O")).
		Set("area", catalog.Float(area))
	if err := dop.SetWorkspace(obj); err != nil {
		t.Fatal(err)
	}
	id, err := dop.Checkin(version.StatusWorking, root)
	if err != nil {
		t.Fatal(err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestEndToEndSingleDA(t *testing.T) {
	sys := newSystem(t, "")
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	v0 := planOnce(t, ws, "da1", 150, "")
	q, err := sys.CM().Evaluate("da1", v0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Final() {
		t.Fatal("150 area should not be final under limit 100")
	}
	v1 := planOnce(t, ws, "da1", 80, v0)
	q, err = sys.CM().Evaluate("da1", v1)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Final() {
		t.Fatalf("80 area should be final: %+v", q)
	}
	g, err := sys.Repo().Graph("da1")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.IsAncestor(v0, v1)
	if err != nil || !ok {
		t.Fatalf("derivation lost: %t, %v", ok, err)
	}
}

func TestWorkstationCrashRecoveryThroughSystem(t *testing.T) {
	dir := t.TempDir()
	sys := newSystem(t, dir)
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	v0 := planOnce(t, ws, "da1", 150, "")

	// A DOP in flight: checkout + workspace, then the workstation dies.
	dop, err := ws.Begin("dop-x", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dop.Checkout(v0, true)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(90))
	dop.SetWorkspace(obj) //nolint:errcheck
	if err := dop.Save("progress"); err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashWorkstation("ws1"); err != nil {
		t.Fatal(err)
	}

	// Restart: the DOP context is recovered at the savepoint.
	ws2, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	rec := ws2.RecoveredDOPs()
	if len(rec) != 1 || rec[0].ID() != "dop-x" {
		t.Fatalf("recovered = %v", rec)
	}
	rdop := rec[0]
	if got := catalog.NumAttr(rdop.Workspace(), "area"); got != 90 {
		t.Fatalf("workspace area = %g", got)
	}
	newID, err := rdop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := rdop.Commit(); err != nil {
		t.Fatal(err)
	}
	q, err := sys.CM().Evaluate("da1", newID)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Final() {
		t.Fatal("recovered DOP result not final")
	}
}

func TestServerCrashRecoveryThroughSystem(t *testing.T) {
	dir := t.TempDir()
	sys := newSystem(t, dir)
	startDA(t, sys, "root", areaSpec(1000))
	if err := sys.CM().CreateSubDA("root", coop.Config{ID: "sub", DOT: vlsi.DOTFloorplan, Spec: areaSpec(100), Designer: "bob"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CM().Start("sub"); err != nil {
		t.Fatal(err)
	}
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	v0 := planOnce(t, ws, "sub", 80, "")
	if _, err := sys.CM().Evaluate("sub", v0); err != nil {
		t.Fatal(err)
	}

	if err := sys.CrashServer(); err != nil {
		t.Fatal(err)
	}
	// While down, DOP begin fails (server unreachable).
	if _, err := ws.Begin("", "sub"); err == nil {
		t.Fatal("begin succeeded against crashed server")
	}
	if err := sys.RestartServer(); err != nil {
		t.Fatal(err)
	}
	// DA hierarchy and version state recovered.
	da, err := sys.CM().Get("sub")
	if err != nil {
		t.Fatal(err)
	}
	if da.State != coop.StateActive || da.Parent != "root" {
		t.Fatalf("sub after recovery = %+v", da)
	}
	v, err := sys.Repo().Get(v0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != version.StatusFinal {
		t.Fatalf("status after recovery = %s", v.Status)
	}
	// The workstation continues: derive from the recovered version.
	v1 := planOnce(t, ws, "sub", 60, v0)
	if _, err := sys.Repo().Get(v1); err != nil {
		t.Fatal(err)
	}
	// Cooperation proceeds: ready-to-commit and termination.
	if err := sys.CM().SubDAReadyToCommit("sub"); err != nil {
		t.Fatal(err)
	}
	if err := sys.CM().TerminateSubDA("root", "sub"); err != nil {
		t.Fatal(err)
	}
}

func TestCrashBothSitesRecoverJointly(t *testing.T) {
	dir := t.TempDir()
	sys := newSystem(t, dir)
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	v0 := planOnce(t, ws, "da1", 120, "")
	dop, err := ws.Begin("dop-j", "da1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dop.Checkout(v0, false)
	if err != nil {
		t.Fatal(err)
	}
	obj.Set("area", catalog.Float(70))
	dop.SetWorkspace(obj) //nolint:errcheck
	if err := dop.Save("s"); err != nil {
		t.Fatal(err)
	}

	// Fig. 8 worst case: both sites crash.
	if err := sys.CrashWorkstation("ws1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashServer(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RestartServer(); err != nil {
		t.Fatal(err)
	}
	ws2, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	rec := ws2.RecoveredDOPs()
	if len(rec) != 1 {
		t.Fatalf("recovered %d DOPs", len(rec))
	}
	if _, err := rec[0].Checkin(version.StatusWorking, false); err != nil {
		t.Fatalf("checkin after joint recovery: %v", err)
	}
	if err := rec[0].Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Repo().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDesignManagerIntegration(t *testing.T) {
	sys := newSystem(t, "")
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	// Runner: each DOP derives a smaller floorplan; Evaluate goes through
	// the CM.
	var last version.ID
	runner := func(ctx *script.Ctx, op script.Op, params map[string]string) (string, error) {
		switch op.Name {
		case "plan":
			area := 150.0
			if last != "" {
				area = 80
			}
			id := planVersion(t, ws, "da1", area, last)
			last = id
			return string(id), nil
		case "evaluate":
			q, err := sys.CM().Evaluate("da1", version.ID(params["dov"]))
			if err != nil {
				return "", err
			}
			if q.Final() {
				return "final", nil
			}
			return "preliminary", nil
		default:
			return "", errors.New("unknown op " + op.Name)
		}
	}
	s := script.Seq{Steps: []script.Node{
		script.Op{Name: "plan", IsDOP: true},
		script.Op{Name: "evaluate", Params: map[string]string{"dov": "$last"}},
		script.Op{Name: "plan", IsDOP: true},
		script.Op{Name: "evaluate", Params: map[string]string{"dov": "$last"}},
	}}
	dm, err := ws.NewDesignManager(script.Config{DA: "da1", Script: s, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Run(); err != nil {
		t.Fatal(err)
	}
	run, _ := dm.Engine().Stats()
	if run != 4 {
		t.Fatalf("ops run = %d", run)
	}
	g, _ := sys.Repo().Graph("da1")
	if g.Len() != 2 {
		t.Fatalf("graph len = %d", g.Len())
	}
	if len(g.FinalDOVs()) != 1 {
		t.Fatalf("finals = %d", len(g.FinalDOVs()))
	}
}

// planVersion is planOnce without the testing.T helper registration
// (callable from runners).
func planVersion(t *testing.T, ws *Workstation, da string, area float64, parent version.ID) version.ID {
	dop, err := ws.Begin("", da)
	if err != nil {
		t.Error(err)
		return ""
	}
	root := parent == ""
	if !root {
		if _, err := dop.Checkout(parent, false); err != nil {
			t.Error(err)
			return ""
		}
	}
	obj := catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str("O")).
		Set("area", catalog.Float(area))
	dop.SetWorkspace(obj) //nolint:errcheck
	id, err := dop.Checkin(version.StatusWorking, root)
	if err != nil {
		t.Error(err)
		return ""
	}
	if err := dop.Commit(); err != nil {
		t.Error(err)
	}
	return id
}

func TestCooperationEventsReachDMRules(t *testing.T) {
	sys := newSystem(t, "")
	startDA(t, sys, "root", areaSpec(1000))
	for _, id := range []string{"supporter", "requirer"} {
		if err := sys.CM().CreateSubDA("root", coop.Config{ID: id, DOT: vlsi.DOTFloorplan, Spec: areaSpec(100), Designer: "x"}); err != nil {
			t.Fatal(err)
		}
		if err := sys.CM().Start(id); err != nil {
			t.Fatal(err)
		}
	}
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	// v0 is derived but NOT evaluated or propagated yet: a Require cannot
	// be satisfied immediately and must go pending.
	v0 := planOnce(t, ws, "supporter", 60, "")
	// The supporter's DM rule answers Require with Evaluate + Propagate
	// (the paper's "WHEN Require IF available THEN Propagate").
	propagated := make(chan string, 1)
	rules := []script.Rule{{
		Name:  "auto-propagate",
		Event: coop.EventRequire,
		Action: func(c *script.Ctx, ev script.Event) error {
			if _, err := sys.CM().Evaluate("supporter", v0); err != nil {
				return err
			}
			if _, err := sys.CM().Propagate("supporter", v0); err != nil {
				return err
			}
			propagated <- ev.Data["requirer"]
			return nil
		},
	}}
	dm, err := ws.NewDesignManager(script.Config{
		DA:     "supporter",
		Script: script.Seq{Steps: []script.Node{script.Op{Name: "idle"}}},
		Runner: func(*script.Ctx, script.Op, map[string]string) (string, error) { return "", nil },
		Rules:  rules,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the subscription so the test can wait for the asynchronous
	// event delivery before running the script.
	delivered := make(chan struct{}, 4)
	sys.CM().Subscribe("supporter", func(ev script.Event) {
		dm.PostEvent(ev)
		delivered <- struct{}{}
	})
	// Require from the requirer: nothing propagated yet → pending + event.
	if _, ok, err := sys.CM().Require("requirer", "supporter", []string{"area-limit"}); err != nil || ok {
		t.Fatalf("require = %t, %v", ok, err)
	}
	<-delivered
	// Run the supporter's script: the queued event fires the rule.
	if err := dm.Run(); err != nil {
		t.Fatal(err)
	}
	select {
	case who := <-propagated:
		if who != "requirer" {
			t.Fatalf("propagated for %s", who)
		}
	default:
		t.Fatal("rule did not fire")
	}
	if !sys.Scopes().InScope("requirer", string(v0)) {
		t.Fatal("requirer cannot see the propagated version")
	}
}

func TestSystemConfigErrors(t *testing.T) {
	if _, err := NewSystem(Options{}); err == nil {
		t.Fatal("missing RegisterTypes accepted")
	}
	sys := newSystem(t, "")
	if _, err := sys.AddWorkstation("w"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddWorkstation("w"); err == nil {
		t.Fatal("duplicate workstation accepted")
	}
	if err := sys.CrashWorkstation("ghost"); err == nil {
		t.Fatal("crash of unknown workstation accepted")
	}
	if err := sys.RestartServer(); err == nil {
		t.Fatal("restart of running server accepted")
	}
	if err := sys.CrashServer(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashServer(); err == nil {
		t.Fatal("double server crash accepted")
	}
	if err := sys.RestartServer(); err != nil {
		t.Fatal(err)
	}
}

var _ = txn.PhaseActive // keep txn imported for doc-reference clarity
