// Warm-standby server replication (DESIGN.md §5.4): a second server site
// follows the primary through synchronous WAL shipping and takes over on a
// client-driven, epoch-fenced promotion. The standby runs the repository in
// follower mode (live apply of shipped batches) and accretes a raw copy of
// the participant log; promotion replays the latter to recover in-doubt 2PC
// branches and assembles the full server role — lock manager, scope table,
// server-TM, cooperation manager — over the replicated state.

package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"concord/internal/coop"
	"concord/internal/feature"
	"concord/internal/lock"
	"concord/internal/repl"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/txn"
	"concord/internal/wal"
)

// StandbyAddr is the transport address of the warm-standby server site. With
// Options.Replicated, workstations know it as their failover target and the
// primary ships WAL batches to it.
const StandbyAddr = "concord-standby"

// standbySite is the warm-standby half of a replicated deployment. Before
// promotion it holds a follower-mode repository, the replicated participant
// log and the repl.Receiver ingesting both; after promotion it additionally
// holds the assembled server role. The transport handler at StandbyAddr is
// registered once and dispatches through the mutable fields, so a standby
// crash/restart swaps state without re-registering the address.
type standbySite struct {
	dir string

	mu   sync.Mutex
	repo *repo.Repository
	plog *wal.Log
	recv *repl.Receiver
	// site and serverH are set by promotion: the full server role over the
	// replicated state, and its request handler (client traffic at
	// StandbyAddr is refused until then).
	site    *serverSite
	serverH rpc.DeadlineHandler
	// everPromoted survives a crash of the promoted site: the state under
	// dir carries a bumped epoch and direct mutations, so it can never
	// rejoin as a follower.
	everPromoted bool
}

func (sb *standbySite) receiver() *repl.Receiver {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.recv
}

func (sb *standbySite) serverHandler() rpc.DeadlineHandler {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.serverH
}

func (sb *standbySite) promotedSite() *serverSite {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.site
}

// epoch reports the standby's current fencing term (0 when crashed), used by
// the envelope fence at StandbyAddr.
func (sb *standbySite) epoch() uint64 {
	sb.mu.Lock()
	r := sb.repo
	sb.mu.Unlock()
	if r == nil {
		return 0
	}
	return r.Epoch()
}

// healthInfo answers a pre-promotion health probe at the standby address.
func (sb *standbySite) healthInfo() txn.ServerHealthInfo {
	sb.mu.Lock()
	r, promoting := sb.repo, sb.repo != nil && !sb.repo.Follower() && sb.serverH == nil
	sb.mu.Unlock()
	if r == nil {
		return txn.ServerHealthInfo{Mode: "down", Cause: "standby crashed", Role: "standby"}
	}
	h := r.Health()
	role := "standby"
	if promoting {
		role = "promoting"
	}
	return txn.ServerHealthInfo{Mode: h.Mode, Cause: h.Cause, Role: role, Epoch: r.Epoch()}
}

func (s *System) standbyDir() string { return filepath.Join(s.opts.Dir, "standby") }

// openStandbyState opens (or recovers) the standby's durable state: the
// follower-mode repository and the raw participant-log copy, both under
// Dir/standby. The repository replays its shipped redo log; tails resume
// where shipping left off.
func (s *System) openStandbyState() (*repo.Repository, *wal.Log, error) {
	dir := s.standbyDir()
	r, err := repo.Open(s.cat, repo.Options{
		Dir: dir, Sync: true, Follower: true,
		NoGroupCommit:    s.opts.Serialized,
		SegmentBytes:     s.opts.SegmentBytes,
		SerializedReads:  s.opts.Serialized || s.opts.SerializedReads,
		SerializedWrites: s.opts.Serialized || s.opts.SerializedWrites,
		Faults:           s.opts.Faults,
	})
	if err != nil {
		return nil, nil, err
	}
	plog, err := wal.Open(filepath.Join(dir, "participant.wal"), wal.Options{
		SyncOnAppend: true, NoGroupCommit: s.opts.Serialized,
		SegmentBytes: s.opts.SegmentBytes,
	})
	if err != nil {
		r.Close()
		return nil, nil, err
	}
	return r, plog, nil
}

// startStandby boots the standby site and registers the StandbyAddr handler.
// Called once, at system construction.
func (s *System) startStandby() error {
	r, plog, err := s.openStandbyState()
	if err != nil {
		return err
	}
	sb := &standbySite{dir: s.standbyDir(), repo: r, plog: plog}
	sb.recv = repl.NewReceiver(r, plog, repl.ReceiverOptions{
		Faults:    s.opts.Faults,
		OnPromote: func(epoch uint64) error { return s.promoteStandby(sb, epoch) },
	})
	handler := rpc.DedupDeadlineFenced(s.standbyDispatch(sb), rpc.EpochFence(sb.epoch))
	if err := rpc.ServeWithDeadline(s.trans, StandbyAddr, handler); err != nil {
		plog.Close()
		r.Close()
		return err
	}
	s.mu.Lock()
	s.standby = sb
	s.mu.Unlock()
	return nil
}

// standbyDispatch routes requests at StandbyAddr: the replication protocol to
// the receiver, everything else to the promoted server role once it exists.
// Before promotion only health probes are answered; client traffic is refused
// with repo.ErrFollower (the workstation's failover path promotes first).
func (s *System) standbyDispatch(sb *standbySite) rpc.DeadlineHandler {
	return func(deadline time.Time, method string, payload []byte) ([]byte, error) {
		switch method {
		case repl.MethodHello, repl.MethodShip, repl.MethodPromote:
			recv := sb.receiver()
			if recv == nil {
				return nil, errors.New("core: standby is down")
			}
			return recv.Handler()(method, payload)
		}
		if h := sb.serverHandler(); h != nil {
			return h(deadline, method, payload)
		}
		if method == txn.MethodHealth {
			return txn.EncodeHealthInfo(sb.healthInfo()), nil
		}
		return nil, fmt.Errorf("%w: standby serves no client traffic before promotion", repo.ErrFollower)
	}
}

// promoteStandby is the receiver's OnPromote hook: it assembles the full
// server role over the replicated state. The follower repository has already
// been promoted (mutations allowed) and the fencing epoch durably bumped; any
// failure here leaves the promotion retryable. The constructed server-TM
// recovers prepared checkins from the replicated "tm/staged/" metadata, and
// replaying the replicated participant log recovers in-doubt 2PC votes — the
// coordinator-driven decision resend then completes them.
func (s *System) promoteStandby(sb *standbySite, epoch uint64) error {
	sb.mu.Lock()
	r, plog := sb.repo, sb.plog
	sb.mu.Unlock()
	if r == nil {
		return errors.New("core: standby is down")
	}
	locks := s.newLockManager()
	scopes := lock.NewScopeTable()
	reg := feature.NewRegistry()
	stm := txn.NewServerTM(r, locks, scopes)
	stm.Faults = s.opts.Faults
	stm.LeaseTTL = s.opts.LeaseTTL
	cm, err := coop.NewCM(r, scopes, reg)
	if err != nil {
		return err
	}
	participant, err := rpc.NewParticipant(stm, plog)
	if err != nil {
		cm.Close()
		return err
	}
	participant.Faults = s.opts.Faults
	site := &serverSite{repo: r, locks: locks, scopes: scopes, reg: reg, stm: stm, cm: cm, participant: participant, plog: plog}
	s.mu.Lock()
	s.serverEpochs++
	cbClient := rpc.NewClient(s.trans, fmt.Sprintf("standby-cb@%d", s.serverEpochs))
	s.mu.Unlock()
	cbClient.Backoff = 0
	site.notifier = rpc.NewNotifier(cbClient, 0)
	site.notifier.SetFaults(s.opts.Faults)
	stm.SetNotifier(site.notifier)
	r.SetChangeHook(stm.VersionChanged)
	stm.SetReplInfo(func() (string, uint64, uint64, uint64) {
		return "primary", r.Epoch(), 0, 0
	})
	stm.StartLeaseReaper()
	if !s.opts.NoCheckpoint {
		site.ckptStop = make(chan struct{})
		site.ckptDone = make(chan struct{})
		go s.checkpointer(site)
	}
	sb.mu.Lock()
	sb.site = site
	sb.serverH = stm.DeadlineHandler(participant)
	sb.everPromoted = true
	sb.mu.Unlock()
	return nil
}

// Promote asks the standby to take over as primary (what a workstation's
// failover does through RPC, exposed for operators and tests). It returns
// the new fencing epoch. Idempotent.
func (s *System) Promote() (uint64, error) {
	s.mu.Lock()
	sb := s.standby
	s.mu.Unlock()
	if sb == nil {
		return 0, errors.New("core: system is not replicated")
	}
	recv := sb.receiver()
	if recv == nil {
		return 0, errors.New("core: standby is down")
	}
	return recv.Promote()
}

// CrashStandby simulates a standby crash: its address partitions and its
// volatile state vanishes; the durable replicated state under Dir/standby
// survives for RestartStandby. A synchronous primary degrades to trailing
// mode and keeps committing (DESIGN.md §5.4). Crashing a promoted standby
// tears down the full server role it was running.
func (s *System) CrashStandby() error {
	s.mu.Lock()
	sb := s.standby
	s.mu.Unlock()
	if sb == nil {
		return errors.New("core: system is not replicated")
	}
	s.trans.Partition(StandbyAddr)
	sb.mu.Lock()
	r, plog, site := sb.repo, sb.plog, sb.site
	sb.repo, sb.plog, sb.recv, sb.site, sb.serverH = nil, nil, nil, nil, nil
	sb.mu.Unlock()
	if r == nil {
		return errors.New("core: standby already down")
	}
	if site != nil {
		return site.shutdown()
	}
	err := r.Close()
	plog.Close()
	return err
}

// RestartStandby recovers the standby from its durable state: the follower
// repository replays the shipped redo log, the participant-log copy reopens,
// and a fresh receiver resumes ingest. The primary's sender reconnects on its
// own (the standby's authoritative tail steers catch-up), returning a
// synchronous configuration to sync mode once the gap closes. A standby that
// was promoted cannot restart as a follower again.
func (s *System) RestartStandby() error {
	s.mu.Lock()
	sb := s.standby
	s.mu.Unlock()
	if sb == nil {
		return errors.New("core: system is not replicated")
	}
	sb.mu.Lock()
	running, promoted := sb.repo != nil, sb.everPromoted
	sb.mu.Unlock()
	if running {
		return errors.New("core: standby still running")
	}
	if promoted {
		return errors.New("core: standby was promoted; it restarts as a server, not a follower")
	}
	r, plog, err := s.openStandbyState()
	if err != nil {
		return err
	}
	recv := repl.NewReceiver(r, plog, repl.ReceiverOptions{
		Faults:    s.opts.Faults,
		OnPromote: func(epoch uint64) error { return s.promoteStandby(sb, epoch) },
	})
	sb.mu.Lock()
	sb.repo, sb.plog, sb.recv = r, plog, recv
	sb.mu.Unlock()
	s.trans.Heal(StandbyAddr)
	return nil
}

// shutdownStandby tears the standby site down at system close.
func (sb *standbySite) shutdown() {
	sb.mu.Lock()
	r, plog, site := sb.repo, sb.plog, sb.site
	sb.repo, sb.plog, sb.recv, sb.site, sb.serverH = nil, nil, nil, nil, nil
	sb.mu.Unlock()
	if site != nil {
		site.shutdown() //nolint:errcheck // closing
		return
	}
	if r != nil {
		r.Close()
	}
	if plog != nil {
		plog.Close()
	}
}

// ReplHealth is the replication facet of system health, reported from the
// active server site's perspective (see System.ReplHealth).
type ReplHealth struct {
	// Role is the active site's replication role: "primary" (a standalone
	// server, a replicating primary, or a promoted standby), "standby"
	// (replicated, primary crashed, standby not yet promoted) or "down".
	Role string
	// Epoch is the active site's fencing term.
	Epoch uint64
	// Mode is the primary sender's replication mode ("sync", "trailing",
	// "deposed"; empty when this site ships nothing).
	Mode string
	// SyncConfigured reports whether the sender aims for sync mode.
	SyncConfigured bool
	// LagRecords / LagBytes measure how far the standby trails the primary.
	LagRecords, LagBytes uint64
	// Degrades counts the sender's sync→trailing transitions.
	Degrades uint64
	// StandbyPromoted reports that the standby has taken over as primary.
	StandbyPromoted bool
}

// ReplHealth reports the replication role, fencing epoch and shipping lag of
// the active server site: the promoted standby once a failover happened, the
// primary otherwise. Unreplicated systems report a standalone primary at
// epoch 0.
func (s *System) ReplHealth() ReplHealth {
	s.mu.Lock()
	sb, site := s.standby, s.server
	s.mu.Unlock()
	if sb != nil {
		if psite := sb.promotedSite(); psite != nil {
			return ReplHealth{Role: "primary", Epoch: psite.repo.Epoch(), StandbyPromoted: true}
		}
	}
	if site == nil {
		if sb != nil {
			h := sb.healthInfo()
			return ReplHealth{Role: h.Role, Epoch: h.Epoch}
		}
		return ReplHealth{Role: "down"}
	}
	out := ReplHealth{Role: "primary", Epoch: site.repo.Epoch()}
	if site.sender != nil {
		st := site.sender.Stats()
		out.Mode = st.Mode.String()
		out.SyncConfigured = st.SyncConfigured
		out.Degrades = st.Degrades
		if st.LagRecords > 0 {
			out.LagRecords = uint64(st.LagRecords)
		}
		if st.LagBytes > 0 {
			out.LagBytes = uint64(st.LagBytes)
		}
	}
	return out
}

// StandbyReceiverStats reports the standby's ingest counters (zeros when the
// system is unreplicated or the standby is down).
func (s *System) StandbyReceiverStats() repl.ReceiverStats {
	s.mu.Lock()
	sb := s.standby
	s.mu.Unlock()
	if sb == nil {
		return repl.ReceiverStats{}
	}
	recv := sb.receiver()
	if recv == nil {
		return repl.ReceiverStats{}
	}
	return recv.Stats()
}

// StandbyRepo returns the standby repository (nil when unreplicated or
// crashed). Oracles read it to compare replicated state against the primary.
func (s *System) StandbyRepo() *repo.Repository {
	s.mu.Lock()
	sb := s.standby
	s.mu.Unlock()
	if sb == nil {
		return nil
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.repo
}

// PrimaryRepo returns the original primary's repository — even after a
// promotion has deposed it (nil while the server is crashed). The split-brain
// oracle pokes the deposed repository directly to prove its commits are
// fenced instead of silently acknowledged.
func (s *System) PrimaryRepo() *repo.Repository {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.server == nil {
		return nil
	}
	return s.server.repo
}
