package core

import (
	"testing"

	"concord/internal/coop"
	"concord/internal/feature"
	"concord/internal/rpc"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// TestRecursiveDelegationPlanning drives the cmd/chipplan logic as an
// integration test: a generated hierarchy is planned top-down with one DA
// per non-leaf cell, exactly the recursive chip-planning methodology of
// Sect. 3.
func TestRecursiveDelegationPlanning(t *testing.T) {
	sys := newSystem(t, "")
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	cm := sys.CM()
	chip := vlsi.GenerateHierarchy(7, "chip", 3, 2)
	if err := cm.InitDesign(coop.Config{
		ID: "da:chip", DOT: vlsi.DOTChip,
		Spec:     feature.MustSpec(feature.Range("area-limit", "area", 0, chip.AreaEstimate*4)),
		Designer: "chief",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cm.Start("da:chip"); err != nil {
		t.Fatal(err)
	}

	var plan func(cell *vlsi.Cell, da string) int
	plan = func(cell *vlsi.Cell, da string) int {
		if len(cell.Children) == 0 {
			return 0
		}
		shapes := vlsi.ShapesForChildren(cell, 4)
		fp, err := vlsi.PlanChip(cell.Netlist, vlsi.Interface{Cell: cell.Name}, shapes)
		if err != nil {
			t.Fatalf("plan %s: %v", cell.Name, err)
		}
		dop, err := ws.Begin("", da)
		if err != nil {
			t.Fatal(err)
		}
		if err := dop.SetWorkspace(vlsi.FloorplanToObject(fp)); err != nil {
			t.Fatal(err)
		}
		id, err := dop.Checkin(version.StatusWorking, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := dop.Commit(); err != nil {
			t.Fatal(err)
		}
		if _, err := cm.Evaluate(da, id); err != nil {
			t.Fatal(err)
		}
		planned := 1
		budget := map[string]float64{}
		for _, p := range fp.Placements {
			budget[p.Name] = p.Rect.Area()
		}
		for _, child := range cell.Children {
			if len(child.Children) == 0 {
				continue
			}
			sub := "da:" + child.Name
			if err := cm.CreateSubDA(da, coop.Config{
				ID: sub, DOT: vlsi.DOTCell,
				Spec:     feature.MustSpec(feature.Range("area-limit", "area", 0, budget[child.Name]*2)),
				Designer: sub,
			}); err != nil {
				t.Fatal(err)
			}
			if err := cm.Start(sub); err != nil {
				t.Fatal(err)
			}
			planned += plan(child, sub)
		}
		return planned
	}
	planned := plan(chip, "da:chip")
	// chip + 3 modules (blocks are non-leaf at depth 2): 1 + 3 = 4 DAs
	// produce floorplans.
	if planned != 4 {
		t.Fatalf("planned %d cells, want 4", planned)
	}
	hier, err := cm.Hierarchy("da:chip")
	if err != nil {
		t.Fatal(err)
	}
	if len(hier) != 4 {
		t.Fatalf("hierarchy = %v", hier)
	}
	if sys.Repo().DOVCount() != 4 {
		t.Fatalf("DOVs = %d", sys.Repo().DOVCount())
	}
	// The delegation legality held everywhere: each sub-DA DOT is part of
	// the super DOT (checked by CreateSubDA); the protocol log recorded
	// the whole process.
	if cm.ProtocolLogLen() < 8 {
		t.Fatalf("protocol log = %d entries", cm.ProtocolLogLen())
	}
	// Terminate bottom-up.
	for i := len(hier) - 1; i >= 1; i-- {
		da, err := cm.Get(hier[i])
		if err != nil {
			t.Fatal(err)
		}
		// Give each sub-DA a final version so ready-to-commit succeeds.
		g, err := sys.Repo().Graph(hier[i])
		if err != nil {
			t.Fatal(err)
		}
		ids := g.IDs()
		if len(ids) == 0 {
			t.Fatalf("%s has no versions", hier[i])
		}
		if err := sys.Repo().SetStatus(ids[len(ids)-1], version.StatusFinal); err != nil {
			t.Fatal(err)
		}
		if err := cm.SubDAReadyToCommit(hier[i]); err != nil {
			t.Fatalf("%s ready: %v", hier[i], err)
		}
		if err := cm.TerminateSubDA(da.Parent, hier[i]); err != nil {
			t.Fatalf("%s terminate: %v", hier[i], err)
		}
	}
	if err := cm.TerminateTopLevel("da:chip"); err != nil {
		t.Fatal(err)
	}
}

// TestFaultyTransportStillCorrect runs a small workload through a lossy
// in-process LAN: every DOP must still complete exactly once.
func TestFaultyTransportStillCorrect(t *testing.T) {
	sys, err := NewSystem(Options{
		RegisterTypes: vlsi.RegisterCatalog,
		Fault:         rpc.FaultPlan{DropRequest: 0.15, DropResponse: 0.15, Duplicate: 0.1, Seed: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	startDA(t, sys, "da1", areaSpec(1000))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	var prev version.ID
	for i := 0; i < 10; i++ {
		prev = planOnce(t, ws, "da1", float64(100-i), prev)
	}
	g, err := sys.Repo().Graph("da1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 10 {
		t.Fatalf("graph len = %d, want 10 (exactly-once violated under loss)", g.Len())
	}
	if !g.Acyclic() {
		t.Fatal("graph corrupted under lossy transport")
	}
}
