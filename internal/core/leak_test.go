package core

import (
	"os"
	"testing"

	"concord/internal/leakcheck"
	"concord/internal/vlsi"
)

// TestMain guards the whole package against leaked background goroutines:
// every heartbeat loop, lease reaper, notifier drain, and checkpointer a
// test starts must have terminated by the time the tests finish.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}

// TestShutdownStopsBackgroundGoroutines is the direct form of the guard: a
// full System (server + two workstations, so heartbeats, the lease reaper,
// the notifier, and the checkpointer are all running) must take every
// background goroutine down with it on Close.
func TestShutdownStopsBackgroundGoroutines(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSystem(Options{Dir: dir, RegisterTypes: vlsi.RegisterCatalog})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	for _, ws := range []string{"ws1", "ws2"} {
		if _, err := s.AddWorkstation(ws); err != nil {
			t.Fatalf("AddWorkstation(%s): %v", ws, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if dump := leakcheck.Check(leakcheck.DefaultTimeout); dump != "" {
		t.Fatalf("goroutines survived System.Close:\n%s", dump)
	}
}
