// Package core wires the complete CONCORD system: the server site
// (design-data repository, server-TM, cooperation manager) and workstation
// sites (client-TM, design managers), connected by transactional RPC
// (Sect. 5.1 system architecture). It also implements the joint failure
// model of Fig. 8: workstation and server crashes can be injected, and each
// manager recovers its level from its own persistent state — the TM from
// recovery points, the DM from persistent scripts and journals, the CM from
// the persisted DA hierarchy and cooperation protocol.
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/fault"
	"concord/internal/feature"
	"concord/internal/lock"
	"concord/internal/repl"
	"concord/internal/repo"
	"concord/internal/rpc"
	"concord/internal/script"
	"concord/internal/txn"
	"concord/internal/wal"
)

// ServerAddr is the transport address of the server site.
const ServerAddr = "concord-server"

// callbackAddr names the transport address on which a workstation serves
// cache-invalidation callbacks.
func callbackAddr(ws string) string { return "cb/" + ws }

// Options configures a System.
type Options struct {
	// Dir is the root data directory; server state goes to Dir/server and
	// each workstation to Dir/<workstation>. Empty runs fully volatile
	// (no crash recovery).
	Dir string
	// RegisterTypes populates the catalog (DOTs) before the repository
	// opens. Required.
	RegisterTypes func(*catalog.Catalog) error
	// Fault injects message faults into the workstation/server transport.
	Fault rpc.FaultPlan
	// Serialized reverts the server core to the pre-concurrency design:
	// WAL appends are written and fsynced one at a time (no group commit)
	// and the lock table collapses to a single shard. Experiments (E12) and
	// ablation benchmarks use it as the contention baseline.
	Serialized bool
	// SerializedReads reverts only the repository read path to the pre-MVCC
	// design (repository lock + deep payload clone per Get), leaving the
	// group-commit WAL and sharded locks in place. E15 uses it to isolate
	// what the lock-free, clone-free read index buys.
	SerializedReads bool
	// SerializedWrites reverts only the repository mutation path to the
	// fully serial design: one global repository lock held across each
	// forced log write, instead of per-DA write locks with group-committed
	// appends (DESIGN.md §3.7). E16 uses it to isolate what the sharded
	// checkin pipeline buys.
	SerializedWrites bool
	// VolatileWorkstations keeps workstation sites in memory even when Dir
	// is set: only the server persists. Workstation crash recovery is then
	// unavailable, but server durability (the paper's correctness anchor)
	// is unchanged. Load scenarios use it to measure the shared server
	// core rather than each client's private disk.
	VolatileWorkstations bool
	// CheckpointLogBytes is the background checkpointer's trigger: once the
	// repository log has grown this many bytes past its low-water mark, a
	// checkpoint (repository snapshot + participant-log compaction) runs.
	// 0 uses DefaultCheckpointLogBytes. Explicit System.Checkpoint calls
	// work regardless.
	CheckpointLogBytes int64
	// NoCheckpoint disables the background checkpointer (ablation: restart
	// time and disk usage then grow with history length, the seed
	// behaviour E13 quantifies). Explicit System.Checkpoint still works.
	NoCheckpoint bool
	// SegmentBytes is the WAL segment rotation threshold for the server
	// logs (0 uses wal.DefaultSegmentBytes).
	SegmentBytes int64
	// QuiescentCheckpoint reverts the repository to the pre-incremental
	// design: every checkpoint encodes the full state while holding the
	// repository lock exclusively (DESIGN.md §3.8). E19 uses it as the
	// pause-time baseline.
	QuiescentCheckpoint bool
	// CheckpointMaxChain bounds the repository's incremental snapshot chain
	// before a full rebase (0 uses repo.DefaultCheckpointMaxChain).
	CheckpointMaxChain int
	// CheckpointMaxChainBytes bounds the chain's total payload bytes before
	// a full rebase (0 uses repo.DefaultCheckpointMaxChainBytes).
	CheckpointMaxChainBytes int64
	// Faults is the named fault-point registry threaded through every
	// component (repository, WAL, 2PC participant and coordinators,
	// server-TM, notifier). Nil-safe and inert unless a scenario arms a
	// point; see internal/fault.
	Faults *fault.Registry
	// LeaseTTL is the workstation session lease lifetime (DESIGN.md §5.3):
	// a workstation silent for this long is presumed failed and its volatile
	// footprint (unprepared staged branches, derivation locks, cache
	// callbacks) is reclaimed by the server-side reaper. 0 uses
	// txn.DefaultLeaseTTL.
	LeaseTTL time.Duration
	// HeartbeatEvery is the workstation lease-renewal period. 0 uses
	// LeaseTTL / txn.DefaultHeartbeatDivisor.
	HeartbeatEvery time.Duration
	// DegradedOnWALFailure turns a server WAL append/fsync failure into
	// read-only degraded mode instead of fail-stop: checkouts keep serving
	// from the MVCC read index, mutations fail fast with repo.ErrDegraded,
	// and the tm/health RPC reports "degraded" (DESIGN.md §5.3).
	DegradedOnWALFailure bool
	// Replicated boots a warm-standby server site at StandbyAddr alongside
	// the primary (DESIGN.md §5.4): the primary ships every WAL batch to it,
	// and workstations promote it (epoch-fenced) when the primary falls
	// silent. Requires Dir — replication exists to protect durable state.
	Replicated bool
	// SyncReplication makes commits wait for the standby's acknowledgement
	// before releasing group-commit waiters: a promoted standby then holds
	// every acknowledged write. With an unreachable standby the primary
	// degrades to trailing (asynchronous) shipping and keeps committing.
	SyncReplication bool
	// ReplLagMax bounds asynchronous shipping lag in bytes: once the standby
	// trails further, contiguous batches ship inline on the commit path until
	// the window drains. 0 means unbounded.
	ReplLagMax int64
}

// DefaultCheckpointLogBytes is the background checkpoint trigger used when
// Options.CheckpointLogBytes is zero.
const DefaultCheckpointLogBytes int64 = 8 << 20

// System is a complete single-process CONCORD deployment: one server site
// and any number of workstation sites over an in-process LAN.
type System struct {
	opts  Options
	cat   *catalog.Catalog
	trans *rpc.InProc

	mu     sync.Mutex
	server *serverSite
	// standby is the warm-standby site (nil unless Options.Replicated). It
	// outlives primary crashes: CrashServer leaves it running so a failover
	// target exists exactly when it is needed.
	standby *standbySite
	ws      map[string]*Workstation
	// epochs counts workstation incarnations so that a restarted
	// workstation's RPC request IDs never collide with those of its
	// previous life (the server deduplicates by request ID).
	epochs map[string]int
	// serverEpochs counts server incarnations for the same reason on the
	// callback channel (workstation caches deduplicate by request ID too).
	serverEpochs int
}

// serverSite bundles the server-side components.
type serverSite struct {
	repo        *repo.Repository
	locks       *lock.Manager
	scopes      *lock.ScopeTable
	reg         *feature.Registry
	stm         *txn.ServerTM
	cm          *coop.CM
	participant *rpc.Participant
	plog        *wal.Log
	// sender is the primary half of WAL shipping (nil unless replicated and
	// this site is the primary; a promoted standby ships nothing onward).
	sender *repl.Sender
	// notifier is the server→workstation cache-invalidation channel
	// (DESIGN.md §4); closed on crash/shutdown.
	notifier *rpc.Notifier
	// ckptStop ends the background checkpointer; ckptDone is closed when
	// it has exited. Nil when checkpointing is disabled or volatile.
	ckptStop chan struct{}
	ckptDone chan struct{}
}

// stopCheckpointer shuts the background checkpointer down and waits for it.
func (site *serverSite) stopCheckpointer() {
	if site.ckptStop == nil {
		return
	}
	close(site.ckptStop)
	<-site.ckptDone
	site.ckptStop = nil
}

// shutdown tears the site down: background loops, the notifier channel, WAL
// shipping, and finally the durable state. Returns the repository's close
// error (the one that can report lost durability).
func (site *serverSite) shutdown() error {
	site.stopCheckpointer()
	site.stm.StopLeaseReaper()
	if site.notifier != nil {
		site.notifier.Close()
	}
	site.cm.Close()
	if site.sender != nil {
		if l := site.repo.Log(); l != nil {
			l.SetShipper(nil)
		}
		if site.plog != nil {
			site.plog.SetShipper(nil)
		}
		site.sender.Close()
	}
	err := site.repo.Close()
	if site.plog != nil {
		site.plog.Close()
	}
	return err
}

// NewSystem boots a system: catalog registration, server recovery (if Dir
// holds prior state) and transport setup.
func NewSystem(opts Options) (*System, error) {
	if opts.RegisterTypes == nil {
		return nil, errors.New("core: Options.RegisterTypes is required")
	}
	if opts.Replicated && opts.Dir == "" {
		return nil, errors.New("core: Options.Replicated requires Options.Dir (replication protects durable state)")
	}
	cat := catalog.New()
	if err := opts.RegisterTypes(cat); err != nil {
		return nil, err
	}
	s := &System{
		opts:   opts,
		cat:    cat,
		trans:  rpc.NewInProc(opts.Fault),
		ws:     make(map[string]*Workstation),
		epochs: make(map[string]int),
	}
	// The standby boots first so the primary's sender finds its receiver on
	// the very first handshake instead of burning a retry.
	if opts.Replicated {
		if err := s.startStandby(); err != nil {
			return nil, err
		}
	}
	if err := s.startServer(); err != nil {
		if s.standby != nil {
			s.standby.shutdown()
		}
		return nil, err
	}
	return s, nil
}

func (s *System) serverDir() string {
	if s.opts.Dir == "" {
		return ""
	}
	return filepath.Join(s.opts.Dir, "server")
}

// newLockManager builds a server lock manager honouring the Serialized
// ablation (single shard).
func (s *System) newLockManager() *lock.Manager {
	shards := lock.DefaultShards
	if s.opts.Serialized {
		shards = 1
	}
	return lock.NewManagerWithShards(shards)
}

// startServer builds (or recovers) the server site and serves its handler.
func (s *System) startServer() error {
	dir := s.serverDir()
	r, err := repo.Open(s.cat, repo.Options{
		Dir: dir, Sync: dir != "", NoGroupCommit: s.opts.Serialized,
		SegmentBytes:            s.opts.SegmentBytes,
		SerializedReads:         s.opts.Serialized || s.opts.SerializedReads,
		SerializedWrites:        s.opts.Serialized || s.opts.SerializedWrites,
		QuiescentCheckpoint:     s.opts.QuiescentCheckpoint,
		CheckpointMaxChain:      s.opts.CheckpointMaxChain,
		CheckpointMaxChainBytes: s.opts.CheckpointMaxChainBytes,
		DegradedOnWALFailure:    s.opts.DegradedOnWALFailure,
		Faults:                  s.opts.Faults,
	})
	if err != nil {
		return err
	}
	locks := s.newLockManager()
	scopes := lock.NewScopeTable()
	reg := feature.NewRegistry()
	stm := txn.NewServerTM(r, locks, scopes)
	stm.Faults = s.opts.Faults
	stm.LeaseTTL = s.opts.LeaseTTL
	cm, err := coop.NewCM(r, scopes, reg)
	if err != nil {
		r.Close()
		return err
	}
	var plog *wal.Log
	if dir != "" {
		plog, err = wal.Open(filepath.Join(dir, "participant.wal"), wal.Options{
			SyncOnAppend: true, NoGroupCommit: s.opts.Serialized,
			SegmentBytes: s.opts.SegmentBytes,
		})
		if err != nil {
			r.Close()
			return err
		}
	}
	participant, err := rpc.NewParticipant(stm, plog)
	if err != nil {
		r.Close()
		return err
	}
	participant.Faults = s.opts.Faults
	site := &serverSite{repo: r, locks: locks, scopes: scopes, reg: reg, stm: stm, cm: cm, participant: participant, plog: plog}
	// Callback channel: version changes fan out to registered workstation
	// caches, pushed off the hot path by a notifier worker. The client ID is
	// incarnation-unique so workstation-side request dedup never mistakes a
	// restarted server's callbacks for replays.
	s.mu.Lock()
	s.serverEpochs++
	cbClient := rpc.NewClient(s.trans, fmt.Sprintf("server-cb@%d", s.serverEpochs))
	s.mu.Unlock()
	cbClient.Backoff = 0
	site.notifier = rpc.NewNotifier(cbClient, 0)
	site.notifier.SetFaults(s.opts.Faults)
	stm.SetNotifier(site.notifier)
	r.SetChangeHook(stm.VersionChanged)
	if s.opts.Replicated {
		// WAL shipping: both server logs stream to the standby. The sender's
		// client is incarnation-unique like the callback client; its envelopes
		// stay unstamped (epoch agreement travels inside the repl protocol,
		// where the receiver can adopt newer terms).
		s.mu.Lock()
		replClient := rpc.NewClient(s.trans, fmt.Sprintf("repl@%d", s.serverEpochs))
		s.mu.Unlock()
		replClient.Backoff = 0
		site.sender = repl.NewSender(replClient, StandbyAddr, []repl.Stream{
			{ID: repl.StreamRepo, Log: r.Log()},
			{ID: repl.StreamPart, Log: plog},
		}, repl.SenderOptions{
			Sync:   s.opts.SyncReplication,
			LagMax: s.opts.ReplLagMax,
			Epoch:  r.Epoch,
			Faults: s.opts.Faults,
		})
		r.Log().SetShipper(site.sender.Shipper(repl.StreamRepo))
		plog.SetShipper(site.sender.Shipper(repl.StreamPart))
		sender := site.sender
		stm.SetReplInfo(func() (string, uint64, uint64, uint64) {
			st := sender.Stats()
			var lagR, lagB uint64
			if st.LagRecords > 0 {
				lagR = uint64(st.LagRecords)
			}
			if st.LagBytes > 0 {
				lagB = uint64(st.LagBytes)
			}
			return "primary", r.Epoch(), lagR, lagB
		})
	}
	// The deadline-aware path threads each call's propagated budget down to
	// the server-TM, where it bounds lock waits (heartbeats carry tight
	// budgets, bulk checkouts generous ones). The epoch fence refuses callers
	// that witnessed a failover this server missed: a deposed primary cannot
	// serve a workstation that already moved on (DESIGN.md §5.4).
	handler := rpc.DedupDeadlineFenced(stm.DeadlineHandler(participant), rpc.EpochFence(r.Epoch))
	if err := rpc.ServeWithDeadline(s.trans, ServerAddr, handler); err != nil {
		site.notifier.Close()
		if site.sender != nil {
			r.Log().SetShipper(nil)
			plog.SetShipper(nil)
			site.sender.Close()
		}
		r.Close()
		return err
	}
	stm.StartLeaseReaper()
	if dir != "" && !s.opts.NoCheckpoint {
		site.ckptStop = make(chan struct{})
		site.ckptDone = make(chan struct{})
		go s.checkpointer(site)
	}
	s.mu.Lock()
	s.server = site
	s.mu.Unlock()
	return nil
}

// checkpointer is the background compaction loop: whenever the repository
// log has grown CheckpointLogBytes past its low-water mark, it snapshots the
// repository and compacts both server logs, keeping restart time and disk
// usage bounded by live state instead of history length.
func (s *System) checkpointer(site *serverSite) {
	defer close(site.ckptDone)
	threshold := s.opts.CheckpointLogBytes
	if threshold <= 0 {
		threshold = DefaultCheckpointLogBytes
	}
	tick := time.NewTicker(checkpointPollInterval)
	defer tick.Stop()
	for {
		select {
		case <-site.ckptStop:
			return
		case <-tick.C:
		}
		if site.repo.LogSize()-int64(site.repo.LowWater()) < threshold {
			continue
		}
		if err := checkpointSite(site); err != nil {
			// A failed checkpoint is not fatal to the running server: the
			// log simply keeps growing until the next attempt (or an
			// operator notices the fail-stop underneath, which every
			// regular operation reports too).
			continue //nolint:staticcheck // keep polling
		}
	}
}

// checkpointPollInterval is how often the background checkpointer samples
// the log size. A variable so tests can tighten it.
var checkpointPollInterval = 250 * time.Millisecond

// checkpointSite runs one checkpoint over the server's durable state.
func checkpointSite(site *serverSite) error {
	if err := site.repo.Checkpoint(); err != nil {
		return err
	}
	return site.participant.Checkpoint()
}

// Checkpoint snapshots the repository and compacts the server logs now,
// regardless of the background threshold. It returns an error when the
// server is down.
func (s *System) Checkpoint() error {
	site := s.activeSite()
	if site == nil {
		return errors.New("core: server is down")
	}
	return checkpointSite(site)
}

// Catalog returns the shared DOT catalog.
func (s *System) Catalog() *catalog.Catalog { return s.cat }

// activeSite resolves the server site currently in charge: the promoted
// standby once a failover happened (it holds the highest fencing epoch),
// otherwise the primary. Nil when no site serves.
func (s *System) activeSite() *serverSite {
	s.mu.Lock()
	sb, site := s.standby, s.server
	s.mu.Unlock()
	if sb != nil {
		if psite := sb.promotedSite(); psite != nil {
			return psite
		}
	}
	return site
}

// CM returns the cooperation manager (centralized at the server site).
func (s *System) CM() *coop.CM {
	return s.activeSite().cm
}

// Repo returns the active server repository (the promoted standby's after a
// failover).
func (s *System) Repo() *repo.Repository {
	return s.activeSite().repo
}

// Scopes returns the active server scope table.
func (s *System) Scopes() *lock.ScopeTable {
	return s.activeSite().scopes
}

// ServerTM returns the active server transaction manager.
func (s *System) ServerTM() *txn.ServerTM {
	return s.activeSite().stm
}

// CacheNotifier returns the server's cache-invalidation channel (nil when
// the server is down).
func (s *System) CacheNotifier() *rpc.Notifier {
	site := s.activeSite()
	if site == nil {
		return nil
	}
	return site.notifier
}

// NotifierStats reports the cache-invalidation channel's delivery counters
// (sent, dropped, failed) for scenario oracles: a reaped workstation's
// callback deregistration must stop the failed counter from climbing. Zeros
// when the server is down.
func (s *System) NotifierStats() (sent, dropped, failed uint64) {
	site := s.activeSite()
	if site == nil || site.notifier == nil {
		return 0, 0, 0
	}
	return site.notifier.Stats()
}

// Health reports the active server repository's degradation mode ("ok",
// "degraded" or "failstop") and latched cause; "down" when no site serves.
// ReplHealth carries the replication facet (role, epoch, lag).
func (s *System) Health() (mode, cause string) {
	site := s.activeSite()
	if site == nil {
		return "down", "server crashed"
	}
	h := site.repo.Health()
	return h.Mode, h.Cause
}

// Registry returns the feature-tool registry used by Evaluate.
func (s *System) Registry() *feature.Registry {
	return s.activeSite().reg
}

// Transport exposes the in-process LAN (fault injection, partitions).
func (s *System) Transport() *rpc.InProc { return s.trans }

// Close shuts the system down cleanly.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.ws {
		w.tm.Close()
	}
	var err error
	if s.server != nil {
		err = s.server.shutdown()
	}
	if s.standby != nil {
		s.standby.shutdown()
	}
	s.trans.Close()
	return err
}

// Workstation is one designer's machine: a client-TM for DOP processing and
// design managers (one per DA worked on here).
type Workstation struct {
	id        string
	sys       *System
	tm        *txn.ClientTM
	recovered []*txn.DOP

	mu  sync.Mutex
	dms map[string]*script.DesignManager
}

// AddWorkstation boots a workstation site. If the directory holds state from
// a crashed incarnation, DOP contexts are recovered at their most recent
// recovery points (retrievable via RecoveredDOPs).
func (s *System) AddWorkstation(id string) (*Workstation, error) {
	s.mu.Lock()
	if _, dup := s.ws[id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: workstation %s already attached", id)
	}
	s.epochs[id]++
	epoch := s.epochs[id]
	s.mu.Unlock()
	client := rpc.NewClient(s.trans, fmt.Sprintf("%s@%d", id, epoch))
	client.Backoff = 0
	var dir string
	if s.opts.Dir != "" && !s.opts.VolatileWorkstations {
		dir = filepath.Join(s.opts.Dir, id)
	}
	tm, recovered, err := txn.NewClientTM(id, client, ServerAddr, dir)
	if err != nil {
		return nil, err
	}
	tm.Coordinator().Faults = s.opts.Faults
	if s.opts.Replicated {
		// The workstation knows its failover target: when the primary falls
		// silent (or answers ErrStaleEpoch), the heartbeat loop promotes the
		// standby and moves the session over.
		tm.SetStandbyAddr(StandbyAddr)
	}
	// Serve the cache-invalidation callback endpoint for this workstation
	// and heal it in case a previous incarnation's crash partitioned it.
	// The cache epoch (bumped by NewClientTM) retires stale registrations.
	cbAddr := callbackAddr(id)
	if err := s.trans.Serve(cbAddr, rpc.Dedup(tm.Cache().Handler())); err != nil {
		tm.Close()
		return nil, err
	}
	s.trans.Heal(cbAddr)
	tm.SetCallbackAddr(cbAddr)
	ttl := s.opts.LeaseTTL
	if ttl <= 0 {
		ttl = txn.DefaultLeaseTTL
	}
	hb := s.opts.HeartbeatEvery
	if hb <= 0 {
		hb = ttl / txn.DefaultHeartbeatDivisor
	}
	tm.StartHeartbeat(hb)
	w := &Workstation{id: id, sys: s, tm: tm, recovered: recovered, dms: make(map[string]*script.DesignManager)}
	for _, d := range recovered {
		if err := tm.Reattach(d); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.ws[id] = w
	s.mu.Unlock()
	return w, nil
}

// ID returns the workstation identifier.
func (w *Workstation) ID() string { return w.id }

// TM returns the workstation's client-TM.
func (w *Workstation) TM() *txn.ClientTM { return w.tm }

// RecoveredDOPs returns DOP contexts recovered at boot (empty on a fresh
// workstation).
func (w *Workstation) RecoveredDOPs() []*txn.DOP { return w.recovered }

// Begin starts a DOP for a DA on this workstation.
func (w *Workstation) Begin(dopID, da string) (*txn.DOP, error) {
	return w.tm.Begin(dopID, da)
}

// NewDesignManager builds (or recovers) the design manager of a DA on this
// workstation and subscribes it to the DA's cooperation events. The
// persistent script and journal live in the server repository, mirroring the
// paper's placement of all level-specific context data there.
func (w *Workstation) NewDesignManager(cfg script.Config) (*script.DesignManager, error) {
	cfg.Store = w.sys.Repo()
	dm, err := script.NewDesignManager(cfg)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.dms[cfg.DA] = dm
	w.mu.Unlock()
	w.sys.CM().Subscribe(cfg.DA, dm.PostEvent)
	return dm, nil
}

// DesignManager returns the DM of a DA, if present on this workstation.
func (w *Workstation) DesignManager(da string) (*script.DesignManager, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	dm, ok := w.dms[da]
	return dm, ok
}

// CrashWorkstation simulates a workstation crash (Fig. 8): all volatile
// state of the client-TM and the DMs is lost; the persistent DOP contexts,
// scripts and journals survive for the next incarnation (AddWorkstation with
// the same id).
func (s *System) CrashWorkstation(id string) error {
	s.mu.Lock()
	w, ok := s.ws[id]
	if ok {
		delete(s.ws, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown workstation %s", id)
	}
	for da := range w.dms {
		s.CM().Subscribe(da, nil)
	}
	// The callback endpoint dies with the workstation; invalidations pushed
	// at it are dropped by the transport until the next incarnation heals
	// the address (and re-registers under a fresh cache epoch).
	s.trans.Partition(callbackAddr(id))
	w.tm.Crash()
	return nil
}

// CrashServer simulates a server crash: the repository closes, the transport
// partitions the server address, and all volatile server state (lock tables,
// scope table, staged checkins in memory) vanishes. In a replicated system
// the standby keeps running — it exists for exactly this moment.
func (s *System) CrashServer() error {
	s.mu.Lock()
	site := s.server
	s.server = nil
	s.mu.Unlock()
	if site == nil {
		return errors.New("core: server already down")
	}
	s.trans.Partition(ServerAddr)
	return site.shutdown()
}

// RestartServer recovers the server site from its durable state: the
// repository replays its redo log, the CM rebuilds the DA hierarchy and
// scope table, the server-TM reloads prepared checkins, and in-doubt
// checkin transactions are resolved against the workstation coordinators
// (presumed abort for unknown outcomes).
func (s *System) RestartServer() error {
	s.mu.Lock()
	if s.server != nil {
		s.mu.Unlock()
		return errors.New("core: server still running")
	}
	s.mu.Unlock()
	if err := s.startServer(); err != nil {
		return err
	}
	s.trans.Heal(ServerAddr)
	// Resolve in-doubt checkins against all known coordinators.
	s.mu.Lock()
	site := s.server
	wss := make([]*Workstation, 0, len(s.ws))
	for _, w := range s.ws {
		wss = append(wss, w)
	}
	s.mu.Unlock()
	return site.participant.Resolve(func(txid string) rpc.Outcome {
		for _, w := range wss {
			if w.tm.Coordinator().Outcome(txid) == rpc.OutcomeCommitted {
				return rpc.OutcomeCommitted
			}
		}
		return rpc.OutcomeAborted
	})
}
