package core

import (
	"errors"
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/feature"
	"concord/internal/script"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// rulesHarness builds a root DA with supporter/requirer children and a
// supporter DM running StandardRules.
type rulesHarness struct {
	sys *System
	ws  *Workstation
	dm  *script.DesignManager
	// delivered signals each event arrival at the DM.
	delivered chan script.Event
}

func newRulesHarness(t *testing.T) *rulesHarness {
	t.Helper()
	sys := newSystem(t, "")
	startDA(t, sys, "root", areaSpec(10000))
	for _, id := range []string{"supporter", "requirer"} {
		if err := sys.CM().CreateSubDA("root", coop.Config{ID: id, DOT: vlsi.DOTFloorplan, Spec: areaSpec(100), Designer: id}); err != nil {
			t.Fatal(err)
		}
		if err := sys.CM().Start(id); err != nil {
			t.Fatal(err)
		}
	}
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	// Idle-loop script so the DM can be run repeatedly to process events.
	idle := script.Seq{Steps: []script.Node{script.Op{Name: "idle"}}}
	runner := func(*script.Ctx, script.Op, map[string]string) (string, error) { return "", nil }
	dm, err := ws.NewDesignManager(script.Config{
		DA: "supporter", Script: idle, Runner: runner,
		Rules: StandardRules(sys, "supporter"),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &rulesHarness{sys: sys, ws: ws, dm: dm, delivered: make(chan script.Event, 16)}
	sys.CM().Subscribe("supporter", func(ev script.Event) {
		dm.PostEvent(ev)
		h.delivered <- ev
	})
	return h
}

func (h *rulesHarness) waitEvent(t *testing.T, name string) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-h.delivered:
			if ev.Name == name {
				return
			}
		case <-deadline:
			t.Fatalf("timeout waiting for %s", name)
		}
	}
}

func TestStandardRuleAutoPropagate(t *testing.T) {
	h := newRulesHarness(t)
	// The supporter has an unevaluated version that would qualify.
	v0 := planOnce(t, h.ws, "supporter", 60, "")
	// Require goes pending (nothing propagated yet).
	if _, ok, err := h.sys.CM().Require("requirer", "supporter", []string{"area-limit"}); err != nil || ok {
		t.Fatalf("require = %t, %v", ok, err)
	}
	h.waitEvent(t, coop.EventRequire)
	if err := h.dm.Run(); err != nil {
		t.Fatal(err)
	}
	// The rule evaluated + propagated v0 and satisfied the pending request.
	if !h.sys.Scopes().InScope("requirer", string(v0)) {
		t.Fatal("auto-propagate rule did not satisfy the pending require")
	}
	pend, _ := h.sys.CM().PendingRequires("supporter")
	if len(pend) != 0 {
		t.Fatalf("pending = %v", pend)
	}
}

func TestStandardRuleWithdrawalAnalysis(t *testing.T) {
	h := newRulesHarness(t)
	sys := h.sys
	// requirer consumes a propagated version from a third DA and derives
	// from it; then the grant is withdrawn.
	if err := sys.CM().CreateSubDA("root", coop.Config{ID: "third", DOT: vlsi.DOTFloorplan, Spec: areaSpec(100), Designer: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CM().Start("third"); err != nil {
		t.Fatal(err)
	}
	// Build a supporter DM watching withdrawals — here the *supporter* of
	// the rule set is the consuming DA, so rebuild the harness around the
	// consuming side: use the existing "supporter" DA as consumer.
	shared := planOnce(t, h.ws, "third", 50, "")
	if _, err := sys.CM().Evaluate("third", shared); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CM().Propagate("third", shared); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := sys.CM().Require("supporter", "third", []string{"area-limit"}); err != nil || !ok {
		t.Fatalf("require = %t, %v", ok, err)
	}
	// The consumer derives from the shared version within a local DOP.
	dop, err := h.ws.Begin("", "supporter")
	if err != nil {
		t.Fatal(err)
	}
	in, err := dop.Checkout(shared, false)
	if err != nil {
		t.Fatal(err)
	}
	in.Set("area", catalog.Float(45))
	dop.SetWorkspace(in) //nolint:errcheck
	derived, err := dop.Checkin(version.StatusWorking, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := dop.Commit(); err != nil {
		t.Fatal(err)
	}
	// Withdraw: third's spec changes so area-limit vanishes.
	newSpec := feature.MustSpec(feature.Range("power-limit", "power", 0, 5))
	if err := sys.CM().ModifySubDASpec("root", "third", newSpec); err != nil {
		t.Fatal(err)
	}
	h.waitEvent(t, coop.EventWithdraw)
	err = h.dm.Run()
	if !errors.Is(err, script.ErrStopped) {
		t.Fatalf("dm.Run = %v, want ErrStopped (designer must decide)", err)
	}
	ctxVar := h.dm.Engine().Var("rule:withdraw-affected")
	if ctxVar == "" {
		t.Fatal("affected versions not recorded")
	}
	if ctxVar != string(derived) {
		t.Fatalf("affected = %q, want %q", ctxVar, derived)
	}
}

func TestStandardRuleSpecModifiedStops(t *testing.T) {
	h := newRulesHarness(t)
	if err := h.sys.CM().ModifySubDASpec("root", "supporter", areaSpec(50)); err != nil {
		t.Fatal(err)
	}
	h.waitEvent(t, coop.EventSpecModified)
	if err := h.dm.Run(); !errors.Is(err, script.ErrStopped) {
		t.Fatalf("dm.Run = %v, want ErrStopped", err)
	}
	if h.dm.Engine().Var("rule:spec-modified") != "root" {
		t.Fatal("spec-modified not recorded")
	}
	// Restart from the beginning: reset the journal and run to completion.
	if err := h.dm.ResetJournal(); err != nil {
		t.Fatal(err)
	}
	if err := h.dm.Run(); err != nil {
		t.Fatalf("restart after spec change: %v", err)
	}
}

func TestStandardRuleNegotiationSuspends(t *testing.T) {
	h := newRulesHarness(t)
	if err := h.sys.CM().Propose("requirer", "supporter", map[string]string{"ask": "area"}); err != nil {
		t.Fatal(err)
	}
	h.waitEvent(t, coop.EventPropose)
	if err := h.dm.Run(); !errors.Is(err, script.ErrStopped) {
		t.Fatalf("dm.Run = %v, want ErrStopped while negotiating", err)
	}
	if h.dm.Engine().Var("rule:negotiating") != "requirer" {
		t.Fatal("negotiation partner not recorded")
	}
	// Agreement resumes processing.
	if err := h.sys.CM().Agree("supporter", "requirer"); err != nil {
		t.Fatal(err)
	}
	if err := h.dm.Run(); err != nil {
		t.Fatalf("resume after agree: %v", err)
	}
}
