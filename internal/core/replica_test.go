package core

import (
	"errors"
	"testing"
	"time"

	"concord/internal/catalog"
	"concord/internal/rpc"
	"concord/internal/version"
	"concord/internal/vlsi"
)

// newReplicatedSystem boots a warm-standby deployment with a fast heartbeat
// so failover tests converge quickly.
func newReplicatedSystem(t *testing.T, sync bool) *System {
	t.Helper()
	sys, err := NewSystem(Options{
		Dir:             t.TempDir(),
		RegisterTypes:   vlsi.RegisterCatalog,
		Replicated:      true,
		SyncReplication: sync,
		LeaseTTL:        time.Second,
		HeartbeatEvery:  15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// awaitf polls cond until it holds or the deadline passes.
func awaitf(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSyncReplicationShipsCommitsLive(t *testing.T) {
	sys := newReplicatedSystem(t, true)
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the sender has caught the standby up and entered sync mode:
	// from here on every commit is acknowledged by the standby before the
	// workstation sees it succeed.
	awaitf(t, 5*time.Second, "sync mode", func() bool { return sys.ReplHealth().Mode == "sync" })

	v0 := planOnce(t, ws, "da1", 80, "")
	// No polling: synchronous shipping means the standby already applied the
	// commit to its live follower state.
	sb := sys.StandbyRepo()
	if sb == nil {
		t.Fatal("no standby repository")
	}
	got, err := sb.Get(v0)
	if err != nil {
		t.Fatalf("synchronously committed version not at the standby: %v", err)
	}
	if a := catalog.NumAttr(got.Object, "area"); a != 80 {
		t.Fatalf("standby copy area = %g, want 80", a)
	}
	if !sb.Follower() {
		t.Fatal("standby repository should still be a follower")
	}
	if st := sys.StandbyReceiverStats(); st.Batches == 0 {
		t.Fatal("receiver ingested nothing")
	}
	h := sys.ReplHealth()
	if h.Role != "primary" || h.Mode != "sync" || h.StandbyPromoted {
		t.Fatalf("ReplHealth = %+v", h)
	}
}

func TestHeartbeatFailoverPromotesStandbyWithoutLosingWork(t *testing.T) {
	sys := newReplicatedSystem(t, true)
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	awaitf(t, 5*time.Second, "sync mode", func() bool { return sys.ReplHealth().Mode == "sync" })
	v0 := planOnce(t, ws, "da1", 150, "")

	// The health RPC reports the primary's role and epoch pre-failover.
	h0, err := ws.TM().ServerHealthFull()
	if err != nil {
		t.Fatal(err)
	}
	if h0.Role != "primary" || h0.Epoch != 0 {
		t.Fatalf("pre-failover health = %+v", h0)
	}

	// The primary dies. The workstation's heartbeat loop notices, promotes
	// the standby and moves its session over — no designer intervention.
	if err := sys.CrashServer(); err != nil {
		t.Fatal(err)
	}
	awaitf(t, 5*time.Second, "client failover", func() bool {
		return ws.TM().ServerAddr() == StandbyAddr
	})

	rh := sys.ReplHealth()
	if !rh.StandbyPromoted || rh.Epoch != 1 {
		t.Fatalf("post-failover ReplHealth = %+v", rh)
	}
	// Nothing committed was lost: the replicated repository holds v0 and now
	// serves as the active repository.
	if _, err := sys.Repo().Get(v0); err != nil {
		t.Fatalf("committed version lost across failover: %v", err)
	}
	// The designer keeps working: derive from v0 at the new primary, then
	// evaluate through the rebuilt cooperation manager.
	v1 := planOnce(t, ws, "da1", 80, v0)
	q, err := sys.CM().Evaluate("da1", v1)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Final() {
		t.Fatalf("evaluation at promoted standby: %+v", q)
	}
	h1, err := ws.TM().ServerHealthFull()
	if err != nil {
		t.Fatal(err)
	}
	if h1.Role != "primary" || h1.Epoch != 1 {
		t.Fatalf("post-failover health = %+v", h1)
	}
	g, err := sys.Repo().Graph("da1")
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := g.IsAncestor(v0, v1); err != nil || !ok {
		t.Fatalf("derivation lost across failover: %t, %v", ok, err)
	}
}

func TestDeposedPrimaryIsFencedOut(t *testing.T) {
	sys := newReplicatedSystem(t, true)
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	awaitf(t, 5*time.Second, "sync mode", func() bool { return sys.ReplHealth().Mode == "sync" })
	planOnce(t, ws, "da1", 80, "")

	// A partition separates the workstations from the primary — which stays
	// alive. The heartbeat loop promotes the standby: split brain, both
	// "primaries" running.
	sys.Transport().Partition(ServerAddr)
	awaitf(t, 5*time.Second, "client failover", func() bool {
		return ws.TM().ServerAddr() == StandbyAddr
	})
	sys.Transport().Heal(ServerAddr)

	// The deposed primary cannot commit anything: its next WAL batch is
	// refused by the promoted standby's epoch fence, which fail-stops the
	// repository before a split-brain write is acknowledged.
	sys.mu.Lock()
	deposed := sys.server
	sys.mu.Unlock()
	v := &version.DOV{
		DOT: vlsi.DOTFloorplan, DA: "da1",
		Object: catalog.NewObject(vlsi.DOTFloorplan).Set("cell", catalog.Str("X")).Set("area", catalog.Float(9)),
		Status: version.StatusWorking,
	}
	v.ID = deposed.repo.NextID()
	err = deposed.repo.Checkin(v, false)
	if !errors.Is(err, rpc.ErrStaleEpoch) {
		t.Fatalf("deposed primary checkin error = %v, want ErrStaleEpoch", err)
	}
	// The promoted side keeps serving.
	if _, err := planVersionErr(ws, "da1", 70); err != nil {
		t.Fatalf("checkin at promoted standby: %v", err)
	}
}

// planVersionErr is a minimal root-less checkin that returns its error
// instead of failing the test (split-brain assertions want both outcomes).
func planVersionErr(ws *Workstation, da string, area float64) (version.ID, error) {
	dop, err := ws.Begin("", da)
	if err != nil {
		return "", err
	}
	obj := catalog.NewObject(vlsi.DOTFloorplan).
		Set("cell", catalog.Str("O")).
		Set("area", catalog.Float(area))
	if err := dop.SetWorkspace(obj); err != nil {
		return "", err
	}
	id, err := dop.Checkin(version.StatusWorking, true)
	if err != nil {
		return "", err
	}
	return id, dop.Commit()
}

func TestStandbyCrashDegradesSyncAndRecovers(t *testing.T) {
	sys := newReplicatedSystem(t, true)
	startDA(t, sys, "da1", areaSpec(100))
	ws, err := sys.AddWorkstation("ws1")
	if err != nil {
		t.Fatal(err)
	}
	awaitf(t, 5*time.Second, "sync mode", func() bool { return sys.ReplHealth().Mode == "sync" })

	// The standby dies. Synchronous replication degrades to trailing mode:
	// the primary keeps committing instead of blocking the designers.
	if err := sys.CrashStandby(); err != nil {
		t.Fatal(err)
	}
	v1 := planOnce(t, ws, "da1", 80, "")
	h := sys.ReplHealth()
	if h.Mode != "trailing" || h.Degrades == 0 || !h.SyncConfigured {
		t.Fatalf("ReplHealth during standby outage = %+v", h)
	}

	// The standby restarts from its durable state; the sender reconnects,
	// catches it up and returns to sync mode.
	if err := sys.RestartStandby(); err != nil {
		t.Fatal(err)
	}
	awaitf(t, 10*time.Second, "resync after standby restart", func() bool {
		return sys.ReplHealth().Mode == "sync"
	})
	awaitf(t, 5*time.Second, "standby caught up", func() bool {
		sb := sys.StandbyRepo()
		if sb == nil {
			return false
		}
		_, err := sb.Get(v1)
		return err == nil
	})
}

func TestReplicationConfigAndLifecycleErrors(t *testing.T) {
	if _, err := NewSystem(Options{RegisterTypes: vlsi.RegisterCatalog, Replicated: true}); err == nil {
		t.Fatal("replication without a data directory accepted")
	}
	plain := newSystem(t, "")
	if _, err := plain.Promote(); err == nil {
		t.Fatal("promote on unreplicated system accepted")
	}
	if err := plain.CrashStandby(); err == nil {
		t.Fatal("standby crash on unreplicated system accepted")
	}
	if err := plain.RestartStandby(); err == nil {
		t.Fatal("standby restart on unreplicated system accepted")
	}

	sys := newReplicatedSystem(t, false)
	if err := sys.RestartStandby(); err == nil {
		t.Fatal("restart of running standby accepted")
	}
	e1, err := sys.Promote()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sys.Promote()
	if err != nil || e2 != e1 {
		t.Fatalf("second promote = (%d, %v), want idempotent (%d, nil)", e2, err, e1)
	}
	if err := sys.CrashStandby(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RestartStandby(); err == nil {
		t.Fatal("promoted standby restarted as follower")
	}
}
