package repl

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"concord/internal/binenc"
	"concord/internal/rpc"
	"concord/internal/wal"
)

// fuzzFrames builds genuine WAL frames by appending through a real log and
// reading the raw bytes back, so the fuzzer starts from the true framing.
func fuzzFrames(f *testing.F) []byte {
	f.Helper()
	log, err := wal.Open(f.TempDir(), wal.Options{SyncOnAppend: true})
	if err != nil {
		f.Fatal(err)
	}
	defer log.Close()
	for i := 0; i < 3; i++ {
		if _, err := log.Append(wal.RecordType(i+1), "owner", []byte("payload")); err != nil {
			f.Fatal(err)
		}
	}
	frames, _, err := log.ReadRaw(0, 1<<20)
	if err != nil {
		f.Fatal(err)
	}
	return frames
}

// FuzzReplFrameDecode throws arbitrary bytes at the replication wire
// decoders and the receiver's ship path: nothing may panic, a decodable
// batch must apply exactly its (whole-frame-validated) content, and any
// batch stamped below the standby's epoch must be refused with
// ErrStaleEpoch.
func FuzzReplFrameDecode(f *testing.F) {
	frames := fuzzFrames(f)
	seed := func(m shipMsg) {
		w := binenc.NewWriter(64 + len(m.Frames))
		encodeShip(w, m)
		f.Add(w.Bytes())
	}
	seed(shipMsg{Stream: StreamRepo, Epoch: 5, Start: 0, Records: 3, Frames: frames})
	seed(shipMsg{Stream: StreamPart, Epoch: 0, Start: 128, Records: 1, Frames: frames[:len(frames)/2]})
	seed(shipMsg{Stream: StreamRepo, Epoch: 1, Start: 0, Records: 0, Frames: nil})
	mut := bytes.Clone(frames)
	mut[len(mut)/2] ^= 0x20
	seed(shipMsg{Stream: StreamRepo, Epoch: 2, Start: 0, Records: 3, Frames: mut})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The sibling decoders must never panic on arbitrary input.
		decodeAck(data)   //nolint:errcheck
		decodeHello(data) //nolint:errcheck

		m, err := decodeShip(data)
		if err != nil {
			return
		}
		// Round trip: decode∘encode∘decode is the identity.
		w := binenc.NewWriter(64 + len(m.Frames))
		encodeShip(w, m)
		m2, err := decodeShip(w.Bytes())
		if err != nil || m2.Stream != m.Stream || m2.Epoch != m.Epoch ||
			m2.Start != m.Start || m2.Records != m.Records || !bytes.Equal(m2.Frames, m.Frames) {
			t.Fatalf("ship message round trip changed the message: %v", err)
		}
		// Frame validation is a projection and never reads past the buffer.
		valid, _ := wal.ValidFrames(m.Frames)
		if valid < 0 || valid > len(m.Frames) {
			t.Fatalf("ValidFrames returned %d of %d bytes", valid, len(m.Frames))
		}

		// Epoch fencing: a standby on a higher epoch refuses the batch.
		if m.Epoch < math.MaxUint64 {
			fol := &fakeFollower{follower: true, epoch: m.Epoch + 1}
			rec := NewReceiver(fol, nil, ReceiverOptions{})
			if _, err := rec.Handler()(MethodShip, data); !errors.Is(err, rpc.ErrStaleEpoch) {
				t.Fatalf("batch below the standby epoch not fenced: %v", err)
			}
			if fol.ReplTail() != 0 {
				t.Fatal("fenced batch mutated the standby")
			}
		}

		// Same epoch: the handler must not panic; if it ingested anything,
		// the batch was wholly valid frames landing exactly at the tail.
		fol := &fakeFollower{follower: true, epoch: m.Epoch}
		rec := NewReceiver(fol, nil, ReceiverOptions{})
		resp, err := rec.Handler()(MethodShip, data)
		if err == nil {
			if _, aerr := decodeAck(resp); aerr != nil {
				t.Fatalf("undecodable ack: %v", aerr)
			}
		}
		if got := int(fol.ReplTail()); got != 0 {
			if m.Start != 0 || valid != len(m.Frames) || got != len(m.Frames) {
				t.Fatalf("partial/misplaced batch ingested: tail %d, start %d, %d/%d valid",
					got, m.Start, valid, len(m.Frames))
			}
		}
	})
}
