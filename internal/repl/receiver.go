package repl

import (
	"fmt"
	"sync"

	"concord/internal/binenc"
	"concord/internal/fault"
	"concord/internal/rpc"
	"concord/internal/wal"
)

// Follower is the standby-side repository surface the Receiver drives:
// ingest of shipped batches into live state, the replication cursor, and the
// durable epoch used for fencing. *repo.Repository implements it in follower
// mode.
type Follower interface {
	// ApplyShipped lands one batch of raw frames at LSN start and applies
	// its records to the live state.
	ApplyShipped(start wal.LSN, frames []byte) error
	// ReplTail reports the LSN the next shipped batch must start at.
	ReplTail() wal.LSN
	// Epoch reports the durably persisted replication epoch.
	Epoch() uint64
	// BumpEpoch durably raises the replication epoch.
	BumpEpoch(e uint64) error
	// Promote ends follower mode, accepting direct mutations.
	Promote()
}

// ReceiverOptions configures a Receiver.
type ReceiverOptions struct {
	// Faults is the registry traversed at FaultApplyDrop and FaultPromote
	// (nil-safe).
	Faults *fault.Registry
	// OnPromote runs after the follower's epoch is durably bumped and
	// follower mode ended, with the new epoch: the embedding server
	// assembles its primary role here (locks, server-TM, 2PC participant
	// from the replicated vote log). A failure leaves the promotion
	// retryable.
	OnPromote func(epoch uint64) error
}

// Receiver is the standby half of WAL shipping: it serves MethodHello,
// MethodShip and MethodPromote, ingesting the repository stream through the
// Follower (live apply) and the participant stream into a raw log whose
// replay at promotion recovers in-doubt 2PC branches.
type Receiver struct {
	follower Follower
	plog     *wal.Log // participant stream store; nil when not replicated
	opts     ReceiverOptions

	mu       sync.Mutex
	promoted bool
	batches  uint64
	records  uint64
	bytes    uint64
}

// NewReceiver returns a receiver applying the repository stream through
// follower and storing the participant stream in plog (nil to serve only
// the repository stream).
func NewReceiver(follower Follower, plog *wal.Log, opts ReceiverOptions) *Receiver {
	return &Receiver{follower: follower, plog: plog, opts: opts}
}

// Handler returns the transport handler serving the replication protocol.
// Register it behind the deduplication layer like any other endpoint.
func (rc *Receiver) Handler() rpc.Handler {
	return func(method string, payload []byte) ([]byte, error) {
		switch method {
		case MethodHello:
			return rc.handleHello(payload)
		case MethodShip:
			return rc.handleShip(payload)
		case MethodPromote:
			epoch, err := rc.Promote()
			if err != nil {
				return nil, err
			}
			w := binenc.GetWriter(16)
			w.U64(epoch)
			return w.Detach(), nil
		default:
			return nil, fmt.Errorf("repl: unknown method %q", method)
		}
	}
}

// fence compares a sender's epoch stamp against the standby's own term:
// lower terms are deposed primaries and refused; higher terms are adopted
// durably (the sender witnessed a failover this standby missed).
func (rc *Receiver) fence(senderEpoch uint64) error {
	own := rc.follower.Epoch()
	if senderEpoch < own {
		return fmt.Errorf("%w: ship epoch %d, standby epoch %d", rpc.ErrStaleEpoch, senderEpoch, own)
	}
	rc.mu.Lock()
	promoted := rc.promoted
	rc.mu.Unlock()
	if promoted {
		return fmt.Errorf("%w: standby promoted at epoch %d", rpc.ErrStaleEpoch, own)
	}
	if senderEpoch > own {
		if err := rc.follower.BumpEpoch(senderEpoch); err != nil {
			return err
		}
	}
	return nil
}

// handleHello answers the handshake with the standby's epoch and stream
// tails.
func (rc *Receiver) handleHello(payload []byte) ([]byte, error) {
	r := binenc.NewReader(payload)
	senderEpoch := r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("repl: hello: %w", err)
	}
	if err := rc.fence(senderEpoch); err != nil {
		return nil, err
	}
	h := helloResp{Epoch: rc.follower.Epoch(), Tails: map[uint8]wal.LSN{StreamRepo: rc.follower.ReplTail()}}
	if rc.plog != nil {
		h.Tails[StreamPart] = wal.LSN(rc.plog.Size())
	}
	w := binenc.GetWriter(64)
	encodeHello(w, h)
	return w.Detach(), nil
}

// handleShip ingests one shipped batch. Duplicates (bytes at or below the
// stream tail — the sender and its pump may race) are trimmed or
// acknowledged outright. A batch starting past the tail (the standby
// restarted behind the sender's cursor) is not ingested; the ack's
// authoritative tail tells the sender where to resume catch-up.
func (rc *Receiver) handleShip(payload []byte) ([]byte, error) {
	m, err := decodeShip(payload)
	if err != nil {
		return nil, err
	}
	if err := rc.opts.Faults.At(FaultApplyDrop); err != nil {
		return nil, err
	}
	if err := rc.fence(m.Epoch); err != nil {
		return nil, err
	}
	tail, apply, err := rc.stream(m.Stream)
	if err != nil {
		return nil, err
	}
	start, frames := m.Start, m.Frames
	end := start + wal.LSN(len(frames))
	switch {
	case end <= tail:
		// Pure duplicate: everything already ingested.
	case start > tail:
		// Gap: refuse silently; the ack's tail steers the sender back.
	default:
		if start < tail {
			frames = frames[tail-start:]
			start = tail
		}
		if err := apply(start, frames); err != nil {
			return nil, err
		}
		rc.mu.Lock()
		rc.batches++
		rc.records += uint64(m.Records)
		rc.bytes += uint64(len(frames))
		rc.mu.Unlock()
		tail, _, _ = rc.stream(m.Stream)
	}
	w := binenc.GetWriter(24)
	encodeAck(w, ackMsg{Epoch: rc.follower.Epoch(), Tail: tail})
	return w.Detach(), nil
}

// stream resolves a stream ID to its current tail and ingest function.
func (rc *Receiver) stream(id uint8) (wal.LSN, func(wal.LSN, []byte) error, error) {
	switch id {
	case StreamRepo:
		return rc.follower.ReplTail(), rc.follower.ApplyShipped, nil
	case StreamPart:
		if rc.plog == nil {
			return 0, nil, fmt.Errorf("repl: participant stream not replicated here")
		}
		return wal.LSN(rc.plog.Size()), rc.plog.AppendRaw, nil
	default:
		return 0, nil, fmt.Errorf("repl: unknown stream %d", id)
	}
}

// Promote performs the epoch-fenced takeover: the epoch is durably bumped
// past every term the deposed primary could stamp, follower mode ends, and
// OnPromote assembles the primary role. Idempotent — a retry after success
// returns the promoted epoch without re-running OnPromote; a failure (fault
// point, durable bump error, OnPromote error) leaves the promotion
// retryable.
func (rc *Receiver) Promote() (uint64, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.promoted {
		return rc.follower.Epoch(), nil
	}
	if err := rc.opts.Faults.At(FaultPromote); err != nil {
		return 0, err
	}
	epoch := rc.follower.Epoch() + 1
	if err := rc.follower.BumpEpoch(epoch); err != nil {
		return 0, fmt.Errorf("repl: promote: %w", err)
	}
	rc.follower.Promote()
	if rc.opts.OnPromote != nil {
		if err := rc.opts.OnPromote(epoch); err != nil {
			// Epoch moved and follower mode ended, but the server role is
			// not up; the next attempt bumps the epoch again and retries.
			return 0, fmt.Errorf("repl: promote: %w", err)
		}
	}
	rc.promoted = true
	return epoch, nil
}

// Promoted reports whether this receiver has taken over as primary.
func (rc *Receiver) Promoted() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.promoted
}

// ReceiverStats is a snapshot of ingest counters.
type ReceiverStats struct {
	// Batches counts applied (non-duplicate) shipped batches.
	Batches uint64
	// Records counts records in applied batches.
	Records uint64
	// Bytes counts applied shipped bytes (after duplicate trimming).
	Bytes uint64
}

// Stats returns a snapshot of the receiver.
func (rc *Receiver) Stats() ReceiverStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ReceiverStats{Batches: rc.batches, Records: rc.records, Bytes: rc.bytes}
}
