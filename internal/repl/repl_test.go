package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"concord/internal/fault"
	"concord/internal/rpc"
	"concord/internal/wal"
)

// fakeFollower is an in-memory Follower: it tracks the stream tail, counts
// applied records and implements the epoch contract, without dragging the
// repository into unit tests.
type fakeFollower struct {
	mu       sync.Mutex
	tail     wal.LSN
	epoch    uint64
	follower bool
	records  int
}

func (f *fakeFollower) ApplyShipped(start wal.LSN, frames []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.follower {
		return errors.New("fake: not a follower")
	}
	valid, records := wal.ValidFrames(frames)
	if valid != len(frames) {
		return fmt.Errorf("fake: %d/%d bytes valid", valid, len(frames))
	}
	if start != f.tail {
		return fmt.Errorf("fake: gap: tail %d, start %d", f.tail, start)
	}
	f.tail += wal.LSN(len(frames))
	f.records += records
	return nil
}

func (f *fakeFollower) ReplTail() wal.LSN {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tail
}

func (f *fakeFollower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeFollower) BumpEpoch(e uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e < f.epoch {
		return fmt.Errorf("fake: epoch backwards (%d -> %d)", f.epoch, e)
	}
	f.epoch = e
	return nil
}

func (f *fakeFollower) Promote() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.follower = false
}

func (f *fakeFollower) appliedRecords() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.records
}

// pair is one primary log replicating to one fake standby.
type pair struct {
	log      *wal.Log
	sender   *Sender
	follower *fakeFollower
	receiver *Receiver
	faults   *fault.Registry // sender-side
	epoch    atomic.Uint64   // primary's epoch
}

func newPair(t *testing.T, opts SenderOptions) *pair {
	t.Helper()
	p := &pair{follower: &fakeFollower{follower: true}, faults: fault.New()}
	tr := rpc.NewInProc(rpc.FaultPlan{})
	t.Cleanup(func() { tr.Close() })
	p.receiver = NewReceiver(p.follower, nil, ReceiverOptions{})
	if err := tr.Serve("standby", rpc.Dedup(p.receiver.Handler())); err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(t.TempDir(), wal.Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	p.log = log
	t.Cleanup(func() { log.Close() })
	client := rpc.NewClient(tr, "primary")
	client.Retries, client.Backoff = 2, 0
	opts.Faults = p.faults
	opts.Epoch = p.epoch.Load
	if opts.RetryEvery == 0 {
		opts.RetryEvery = 2 * time.Millisecond
	}
	p.sender = NewSender(client, "standby", []Stream{{ID: StreamRepo, Log: log}}, opts)
	t.Cleanup(func() { p.sender.Close() })
	log.SetShipper(p.sender.Shipper(StreamRepo))
	return p
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSyncShipReachesStandbyBeforeCommitReturns pins the synchronous
// guarantee: once Append returns, the standby holds the batch.
func TestSyncShipReachesStandbyBeforeCommitReturns(t *testing.T) {
	p := newPair(t, SenderOptions{Sync: true})
	waitFor(t, "sync mode", func() bool { return p.sender.Stats().Mode == ModeSync })
	for i := 0; i < 5; i++ {
		if _, err := p.log.Append(1, "o", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if got, want := int64(p.follower.ReplTail()), p.log.Size(); got != want {
			t.Fatalf("append %d returned with standby at %d, primary at %d", i, got, want)
		}
	}
	if p.follower.appliedRecords() != 5 {
		t.Fatalf("standby applied %d records, want 5", p.follower.appliedRecords())
	}
	st := p.sender.Stats()
	if st.LagBytes != 0 || st.LagRecords != 0 {
		t.Fatalf("sync sender reports lag %d bytes / %d records", st.LagBytes, st.LagRecords)
	}
}

// TestDegradeToTrailingAndCatchUp arms a one-shot ship drop: the commit
// proceeds locally (availability), the sender degrades, and the pump closes
// the gap and restores sync mode.
func TestDegradeToTrailingAndCatchUp(t *testing.T) {
	p := newPair(t, SenderOptions{Sync: true})
	waitFor(t, "sync mode", func() bool { return p.sender.Stats().Mode == ModeSync })
	p.faults.ArmOnce(FaultShipDrop, errors.New("standby vanished"))
	if _, err := p.log.Append(1, "o", []byte("during-outage")); err != nil {
		t.Fatalf("commit must proceed during standby outage: %v", err)
	}
	if st := p.sender.Stats(); st.Degrades == 0 {
		t.Fatal("sender did not degrade on ship drop")
	}
	waitFor(t, "catch-up", func() bool {
		st := p.sender.Stats()
		return st.Mode == ModeSync && st.LagBytes == 0
	})
	if got, want := int64(p.follower.ReplTail()), p.log.Size(); got != want {
		t.Fatalf("standby at %d after catch-up, primary at %d", got, want)
	}
}

// TestStaleEpochFencesDeposedPrimary promotes the standby and checks the
// full fencing chain: the next ship is refused with ErrStaleEpoch, the
// sender latches deposed, and the primary's WAL fail-stops so no further
// commit can be acknowledged.
func TestStaleEpochFencesDeposedPrimary(t *testing.T) {
	p := newPair(t, SenderOptions{Sync: true})
	waitFor(t, "sync mode", func() bool { return p.sender.Stats().Mode == ModeSync })
	if _, err := p.log.Append(1, "o", []byte("before")); err != nil {
		t.Fatal(err)
	}
	epoch, err := p.receiver.Promote()
	if err != nil || epoch != 1 {
		t.Fatalf("promote: epoch %d, err %v", epoch, err)
	}
	_, err = p.log.Append(1, "o", []byte("split-brain"))
	if !errors.Is(err, rpc.ErrStaleEpoch) {
		t.Fatalf("deposed primary's commit succeeded: %v", err)
	}
	if p.sender.Stats().Mode != ModeDeposed {
		t.Fatalf("sender mode = %v, want deposed", p.sender.Stats().Mode)
	}
	if _, err := p.log.Append(1, "o", []byte("again")); err == nil {
		t.Fatal("WAL accepted an append after the fencing failure")
	}
	if got := p.follower.appliedRecords(); got != 1 {
		t.Fatalf("standby applied %d records, want only the pre-promotion one", got)
	}
}

// TestAsyncBoundedLag runs an asynchronous sender whose standby refuses
// applies for a while: lag accumulates, and once the standby recovers the
// pump drains it without any commit having blocked on an acknowledgement.
func TestAsyncBoundedLag(t *testing.T) {
	p := newPair(t, SenderOptions{Sync: false, LagMax: 1 << 20})
	waitFor(t, "handshake", func() bool { return p.sender.Stats().LagBytes == 0 })
	for i := 0; i < 10; i++ {
		if _, err := p.log.Append(1, "o", []byte("async")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "async drain", func() bool { return p.sender.Stats().LagBytes == 0 })
	if got, want := int64(p.follower.ReplTail()), p.log.Size(); got != want {
		t.Fatalf("standby at %d, primary at %d", got, want)
	}
	if p.sender.Stats().Mode != ModeTrailing {
		t.Fatalf("async sender mode = %v, want trailing", p.sender.Stats().Mode)
	}
}

// TestPromoteIdempotentAndRetryable checks the promotion contract: a faulted
// attempt changes nothing and is retryable; success runs OnPromote exactly
// once; repeats return the promoted epoch without side effects.
func TestPromoteIdempotentAndRetryable(t *testing.T) {
	fol := &fakeFollower{follower: true}
	faults := fault.New()
	var assembled atomic.Int64
	rec := NewReceiver(fol, nil, ReceiverOptions{
		Faults:    faults,
		OnPromote: func(epoch uint64) error { assembled.Add(1); return nil },
	})
	faults.ArmOnce(FaultPromote, errors.New("crash before takeover"))
	if _, err := rec.Promote(); err == nil {
		t.Fatal("faulted promotion succeeded")
	}
	if fol.Epoch() != 0 || assembled.Load() != 0 {
		t.Fatal("faulted promotion left side effects")
	}
	epoch, err := rec.Promote()
	if err != nil || epoch != 1 {
		t.Fatalf("promote retry: epoch %d, err %v", epoch, err)
	}
	if fol.follower {
		t.Fatal("follower mode survived promotion")
	}
	epoch2, err := rec.Promote()
	if err != nil || epoch2 != 1 {
		t.Fatalf("repeat promote: epoch %d, err %v", epoch2, err)
	}
	if assembled.Load() != 1 {
		t.Fatalf("OnPromote ran %d times, want 1", assembled.Load())
	}
}

// TestParticipantStreamRawReplication replicates a second stream into a raw
// standby log and checks the shipped bytes replay to identical records.
func TestParticipantStreamRawReplication(t *testing.T) {
	tr := rpc.NewInProc(rpc.FaultPlan{})
	defer tr.Close()
	fol := &fakeFollower{follower: true}
	standbyPlog, err := wal.Open(t.TempDir(), wal.Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer standbyPlog.Close()
	rec := NewReceiver(fol, standbyPlog, ReceiverOptions{})
	if err := tr.Serve("standby", rpc.Dedup(rec.Handler())); err != nil {
		t.Fatal(err)
	}
	plog, err := wal.Open(t.TempDir(), wal.Options{SyncOnAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer plog.Close()
	client := rpc.NewClient(tr, "primary")
	client.Retries, client.Backoff = 2, 0
	s := NewSender(client, "standby", []Stream{{ID: StreamPart, Log: plog}}, SenderOptions{Sync: true, RetryEvery: 2 * time.Millisecond})
	defer s.Close()
	plog.SetShipper(s.Shipper(StreamPart))
	waitFor(t, "sync mode", func() bool { return s.Stats().Mode == ModeSync })
	for i := 0; i < 4; i++ {
		if _, err := plog.Append(0x31, "tx", []byte(fmt.Sprintf("tx-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if standbyPlog.Size() != plog.Size() {
		t.Fatalf("standby plog at %d, primary at %d", standbyPlog.Size(), plog.Size())
	}
	var got []string
	if err := standbyPlog.Replay(func(r wal.Record) error {
		got = append(got, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != "tx-0" || got[3] != "tx-3" {
		t.Fatalf("replicated participant records = %v", got)
	}
}

// TestSenderSurvivesStandbyRestartGap simulates a standby that lost its
// in-memory state (new receiver, same address): the sender's ship hits a
// gap, re-handshakes and re-ships from the standby's actual tail.
func TestSenderSurvivesStandbyRestartGap(t *testing.T) {
	p := newPair(t, SenderOptions{Sync: true})
	waitFor(t, "sync mode", func() bool { return p.sender.Stats().Mode == ModeSync })
	if _, err := p.log.Append(1, "o", []byte("first")); err != nil {
		t.Fatal(err)
	}
	// "Restart" the standby empty: its tail regresses to zero. The next
	// ship is refused with an authoritative tail of 0; the sender adopts
	// it, degrades, and the pump re-ships everything.
	p.follower.mu.Lock()
	p.follower.tail, p.follower.records = 0, 0
	p.follower.mu.Unlock()
	if _, err := p.log.Append(1, "o", []byte("after-restart")); err != nil {
		t.Fatalf("commit must survive a standby restart: %v", err)
	}
	waitFor(t, "re-sync after standby restart", func() bool {
		st := p.sender.Stats()
		return st.Mode == ModeSync && st.LagBytes == 0 && int64(p.follower.ReplTail()) == p.log.Size()
	})
	if p.follower.appliedRecords() != 2 {
		t.Fatalf("standby replayed %d records after restart, want 2", p.follower.appliedRecords())
	}
}
