package repl

import (
	"os"
	"testing"

	"concord/internal/leakcheck"
)

// TestMain guards the package against leaked background goroutines: the
// sender's catch-up pump must terminate when the sender is closed or
// deposed.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
