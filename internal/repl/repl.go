// Package repl implements warm-standby server replication (DESIGN.md §5.4):
// synchronous WAL shipping from a primary to a standby, epoch-fenced
// failover, and client-driven takeover.
//
// The primary's write-ahead logs hand every durable group-commit batch to a
// Sender (via the wal.Shipper hook) in its exact on-disk framing; the Sender
// forwards the bytes over the ordinary RPC substrate to the standby's
// Receiver, which lands them in its own logs at identical LSNs and — for the
// repository stream — applies each record to the live MVCC state, keeping
// the standby hot so promotion is O(shipped tail), not O(history).
//
// Modes. With synchronous replication the commit path waits for the
// standby's acknowledgement before group-commit waiters are released: a
// commit acknowledged to a workstation is durable on two machines. When the
// standby is unreachable the Sender degrades to trailing mode — commits
// proceed locally, a background pump retries and catches the standby up from
// the primary's log (wal.ReadRaw), and the Sender flips back to synchronous
// once the gap closes. Asynchronous configurations run in trailing mode
// permanently with a bounded lag window: once the standby falls more than
// LagMax bytes behind, contiguous batches ship inline again until the lag
// drains.
//
// Fencing. Every shipped batch and hello carries the primary's replication
// epoch (a monotonic term persisted in the repository's snapshot manifest).
// Promotion bumps the standby's epoch durably before it accepts its first
// write; from then on the deposed primary's batches arrive with a lower term
// and are refused with rpc.ErrStaleEpoch, which the Sender latches as
// terminal — the primary's own WAL fail-stops on the next commit, so no
// split-brain write is ever acknowledged.
package repl

import (
	"fmt"

	"concord/internal/binenc"
	"concord/internal/wal"
)

// RPC methods served by a standby's Receiver.
const (
	// MethodHello is the catch-up handshake: the sender learns the
	// receiver's epoch and per-stream tails.
	MethodHello = "repl/hello"
	// MethodShip delivers one batch of raw WAL frames.
	MethodShip = "repl/ship"
	// MethodPromote asks the standby to take over as primary (client-driven
	// takeover; also invoked by operators via concordd -promote).
	MethodPromote = "repl/promote"
)

// Replication stream identifiers. Each stream is one WAL replicated
// independently at its own LSN cursor.
const (
	// StreamRepo is the repository's log: shipped records are applied live
	// to the follower's MVCC state.
	StreamRepo uint8 = 0
	// StreamPart is the 2PC participant's vote log: shipped records are
	// stored raw; promotion replays them to recover in-doubt branches.
	StreamPart uint8 = 1
)

// Fault points traversed by the replication layer (armed by the scenario
// harness).
const (
	// FaultShipDrop fires in the Sender before a batch is sent; when armed
	// the batch is not transmitted and the sender degrades to trailing mode,
	// simulating a standby that stopped acknowledging.
	FaultShipDrop = "repl:ship-drop"
	// FaultApplyDrop fires in the Receiver before a shipped batch is
	// applied; when armed the batch is refused, simulating a standby crash
	// mid-apply.
	FaultApplyDrop = "repl:standby-apply"
	// FaultPromote fires at the start of promotion; when armed (typically
	// ArmOnce) the takeover attempt fails before any state changes,
	// exercising promote retry and idempotence.
	FaultPromote = "repl:promote"
)

// FaultPoints lists every fault point owned by this package, for coverage
// reports.
var FaultPoints = []string{FaultShipDrop, FaultApplyDrop, FaultPromote}

// shipMsg is the wire form of one shipped batch: raw WAL frames starting at
// LSN Start on one stream, stamped with the sender's replication epoch.
type shipMsg struct {
	Stream  uint8
	Epoch   uint64
	Start   wal.LSN
	Records uint32
	Frames  []byte
}

// encodeShip appends m's wire form to w.
func encodeShip(w *binenc.Writer, m shipMsg) {
	w.Byte(m.Stream)
	w.U64(m.Epoch)
	w.U64(uint64(m.Start))
	w.U64(uint64(m.Records))
	w.Blob(m.Frames)
}

// decodeShip parses a shipped batch. It never panics on arbitrary input and
// refuses trailing garbage (a length mismatch means a framing bug, not a
// torn write — the RPC layer already delivers whole messages).
func decodeShip(data []byte) (shipMsg, error) {
	r := binenc.NewReader(data)
	m := shipMsg{
		Stream:  r.Byte(),
		Epoch:   r.U64(),
		Start:   wal.LSN(r.U64()),
		Records: uint32(r.U64()),
		Frames:  r.Blob(),
	}
	if err := r.Err(); err != nil {
		return shipMsg{}, fmt.Errorf("repl: ship message: %w", err)
	}
	if r.Remaining() != 0 {
		return shipMsg{}, fmt.Errorf("repl: ship message: %d trailing bytes", r.Remaining())
	}
	return m, nil
}

// ackMsg acknowledges a shipped batch (or answers a hello for one stream):
// the receiver's current epoch and the stream's tail after ingest. A tail
// ahead of the shipped range tells the sender the batch was a duplicate of
// already-ingested bytes — still a success.
type ackMsg struct {
	Epoch uint64
	Tail  wal.LSN
}

// encodeAck appends m's wire form to w.
func encodeAck(w *binenc.Writer, m ackMsg) {
	w.U64(m.Epoch)
	w.U64(uint64(m.Tail))
}

// decodeAck parses a batch acknowledgement.
func decodeAck(data []byte) (ackMsg, error) {
	r := binenc.NewReader(data)
	m := ackMsg{Epoch: r.U64(), Tail: wal.LSN(r.U64())}
	if err := r.Err(); err != nil {
		return ackMsg{}, fmt.Errorf("repl: ack message: %w", err)
	}
	return m, nil
}

// helloResp is the handshake answer: the receiver's epoch and the tail of
// every stream it serves, from which the sender derives its catch-up
// cursors.
type helloResp struct {
	Epoch uint64
	Tails map[uint8]wal.LSN
}

// encodeHello appends h's wire form to w.
func encodeHello(w *binenc.Writer, h helloResp) {
	w.U64(h.Epoch)
	w.U64(uint64(len(h.Tails)))
	for id := 0; id < 256; id++ { // deterministic order
		if tail, ok := h.Tails[uint8(id)]; ok {
			w.Byte(uint8(id))
			w.U64(uint64(tail))
		}
	}
}

// decodeHello parses a handshake answer.
func decodeHello(data []byte) (helloResp, error) {
	r := binenc.NewReader(data)
	h := helloResp{Epoch: r.U64(), Tails: make(map[uint8]wal.LSN)}
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		id := r.Byte()
		h.Tails[id] = wal.LSN(r.U64())
	}
	if err := r.Err(); err != nil {
		return helloResp{}, fmt.Errorf("repl: hello message: %w", err)
	}
	return h, nil
}
