package repl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"concord/internal/binenc"
	"concord/internal/fault"
	"concord/internal/rpc"
	"concord/internal/wal"
)

// Mode is a Sender's replication mode.
type Mode uint8

// Sender modes.
const (
	// ModeSync ships every batch inline on the commit path: group-commit
	// waiters are not released until the standby acknowledged.
	ModeSync Mode = iota + 1
	// ModeTrailing ships in the background: commits proceed locally while
	// the pump catches the standby up. Synchronous configurations return to
	// ModeSync once the gap closes; asynchronous ones live here.
	ModeTrailing
	// ModeDeposed is terminal: the standby (or its successor) has a higher
	// replication epoch, so this node lost a failover it has not witnessed.
	// Every subsequent Ship returns rpc.ErrStaleEpoch, fail-stopping the
	// local WAL before a split-brain write can be acknowledged.
	ModeDeposed
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeTrailing:
		return "trailing"
	case ModeDeposed:
		return "deposed"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Stream declares one WAL to replicate under a stream ID.
type Stream struct {
	// ID identifies the stream on the wire (StreamRepo, StreamPart).
	ID uint8
	// Log is the primary-side log whose batches are shipped.
	Log *wal.Log
}

// SenderOptions configures a Sender.
type SenderOptions struct {
	// Sync selects synchronous replication: commits wait for the standby's
	// acknowledgement (degrading to trailing when it is unreachable).
	Sync bool
	// LagMax bounds the trailing lag window in bytes: once the standby is
	// further behind, contiguous batches ship inline on the commit path
	// until the lag drains. 0 means unbounded.
	LagMax int64
	// RetryEvery paces the background pump's catch-up and reconnect
	// attempts (default 20ms).
	RetryEvery time.Duration
	// ChunkBytes bounds one catch-up read (default 256KiB).
	ChunkBytes int
	// Epoch supplies the primary's current replication epoch, stamped on
	// every batch. Nil means epoch 0.
	Epoch func() uint64
	// Faults is the registry traversed at FaultShipDrop (nil-safe).
	Faults *fault.Registry
}

// senderStream is a Stream plus its send serialization: the commit path and
// the pump may both ship on the same stream, and sendMu keeps their batches
// ordered. The lock is never held while reading the log (wal.ReadRaw briefly
// takes the log's write slot, which the commit path holds while shipping —
// holding sendMu across a read would deadlock the two).
type senderStream struct {
	Stream
	sendMu sync.Mutex
}

// Sender is the primary half of WAL shipping: it implements wal.Shipper for
// each declared stream and pushes batches to the standby's Receiver.
type Sender struct {
	client  *rpc.Client
	addr    string
	opts    SenderOptions
	streams []*senderStream

	mu        sync.Mutex
	mode      Mode
	needHello bool
	compacted bool
	acked     map[uint8]wal.LSN
	recsIn    map[uint8]uint64 // records appended locally (Ship calls)
	recsOut   map[uint8]uint64 // records acknowledged by the standby
	batches   uint64
	bytesOut  uint64
	degrades  uint64

	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewSender starts a sender replicating streams to the Receiver served at
// addr through client. It begins in trailing mode; the background pump
// performs the hello handshake, catches the standby up and — for synchronous
// configurations — flips to ModeSync once every stream is level.
func NewSender(client *rpc.Client, addr string, streams []Stream, opts SenderOptions) *Sender {
	if opts.RetryEvery <= 0 {
		opts.RetryEvery = 20 * time.Millisecond
	}
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = 256 << 10
	}
	s := &Sender{
		client:    client,
		addr:      addr,
		opts:      opts,
		mode:      ModeTrailing,
		needHello: true,
		acked:     make(map[uint8]wal.LSN),
		recsIn:    make(map[uint8]uint64),
		recsOut:   make(map[uint8]uint64),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, st := range streams {
		s.streams = append(s.streams, &senderStream{Stream: st})
	}
	go s.run()
	s.kickPump()
	return s
}

// Shipper returns the wal.Shipper for stream id, to be installed on the
// matching primary log with SetShipper. It panics on an undeclared id
// (wiring bug).
func (s *Sender) Shipper(id uint8) wal.Shipper {
	for _, st := range s.streams {
		if st.ID == id {
			return &streamShipper{s: s, st: st}
		}
	}
	panic(fmt.Sprintf("repl: no stream %d declared", id))
}

// streamShipper binds a Sender to one stream for the wal.Shipper hook.
type streamShipper struct {
	s  *Sender
	st *senderStream
}

// Ship implements wal.Shipper.
func (ss *streamShipper) Ship(start wal.LSN, frames []byte, records int) error {
	return ss.s.ship(ss.st, start, frames, records)
}

// Close stops the background pump. Installed Shippers keep functioning in
// degraded form (every batch trails and nothing drains it), so detach them
// (SetShipper(nil)) or close the logs first.
func (s *Sender) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// SenderStats is a snapshot of the sender for health reporting and tests.
type SenderStats struct {
	// Mode is the current replication mode.
	Mode Mode
	// SyncConfigured reports whether the sender aims for ModeSync.
	SyncConfigured bool
	// LagBytes is how many durable bytes the standby is behind, summed over
	// streams.
	LagBytes int64
	// LagRecords is how many records the standby is behind, summed over
	// streams (approximate across restarts).
	LagRecords int64
	// Batches counts acknowledged shipments.
	Batches uint64
	// BytesShipped counts acknowledged shipped bytes.
	BytesShipped uint64
	// Degrades counts sync→trailing transitions.
	Degrades uint64
	// Compacted reports that catch-up is impossible because the primary
	// reclaimed log bytes the standby still needs (full reseed required).
	Compacted bool
}

// Stats returns a snapshot of the sender.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	st := SenderStats{
		Mode:           s.mode,
		SyncConfigured: s.opts.Sync,
		Batches:        s.batches,
		BytesShipped:   s.bytesOut,
		Degrades:       s.degrades,
		Compacted:      s.compacted,
	}
	for _, str := range s.streams {
		if in, out := s.recsIn[str.ID], s.recsOut[str.ID]; in > out {
			st.LagRecords += int64(in - out)
		}
	}
	acked := make(map[uint8]wal.LSN, len(s.acked))
	for id, a := range s.acked {
		acked[id] = a
	}
	s.mu.Unlock()
	for _, str := range s.streams {
		if size := str.Log.Size(); size > int64(acked[str.ID]) {
			st.LagBytes += size - int64(acked[str.ID])
		}
	}
	return st
}

// ship is the Shipper hook body: inline send in sync mode (and for
// contiguous batches past the lag bound), otherwise hand off to the pump.
// It is called on the commit path holding the log's write slot, so it must
// never wait on the pump (which needs that slot to read the log).
func (s *Sender) ship(st *senderStream, start wal.LSN, frames []byte, records int) error {
	s.mu.Lock()
	if s.mode == ModeDeposed {
		s.mu.Unlock()
		return rpc.ErrStaleEpoch
	}
	s.recsIn[st.ID] += uint64(records)
	if err := s.opts.Faults.At(FaultShipDrop); err != nil {
		s.degradeLocked()
		s.mu.Unlock()
		s.kickPump()
		return nil
	}
	inline := s.mode == ModeSync && !s.needHello
	contiguous := s.acked[st.ID] == start
	s.mu.Unlock()
	if !inline && contiguous && s.opts.LagMax > 0 && s.lagBytes() > s.opts.LagMax {
		// Bounded async lag: the standby is reachable enough to have acked
		// up to this batch's start, but too far behind — ship inline until
		// the window drains.
		inline = true
	}
	if !inline {
		s.kickPump()
		return nil
	}
	err := s.send(st, start, frames, records)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, rpc.ErrStaleEpoch):
		return rpc.ErrStaleEpoch
	default:
		s.mu.Lock()
		s.degradeLocked()
		s.mu.Unlock()
		s.kickPump()
		return nil
	}
}

// lagBytes sums the durable bytes not yet acknowledged across streams.
func (s *Sender) lagBytes() int64 {
	s.mu.Lock()
	acked := make(map[uint8]wal.LSN, len(s.acked))
	for id, a := range s.acked {
		acked[id] = a
	}
	s.mu.Unlock()
	var lag int64
	for _, str := range s.streams {
		if size := str.Log.Size(); size > int64(acked[str.ID]) {
			lag += size - int64(acked[str.ID])
		}
	}
	return lag
}

// degradeLocked drops sync mode to trailing. Caller holds s.mu.
func (s *Sender) degradeLocked() {
	if s.mode == ModeSync {
		s.mode = ModeTrailing
		s.degrades++
	}
}

// depose latches the terminal deposed mode.
func (s *Sender) depose() {
	s.mu.Lock()
	if s.mode != ModeDeposed {
		s.mode = ModeDeposed
	}
	s.mu.Unlock()
}

// kickPump nudges the background pump without blocking.
func (s *Sender) kickPump() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// send transmits one batch on st and processes the acknowledgement. Batches
// already acknowledged (races between the commit path and the pump) are
// trimmed or skipped; a batch starting past the acknowledged tail is a gap
// the pump must fill first.
func (s *Sender) send(st *senderStream, start wal.LSN, frames []byte, records int) error {
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	s.mu.Lock()
	acked := s.acked[st.ID]
	deposed := s.mode == ModeDeposed
	s.mu.Unlock()
	if deposed {
		return rpc.ErrStaleEpoch
	}
	end := start + wal.LSN(len(frames))
	if end <= acked {
		return nil // the pump already shipped these bytes
	}
	if start < acked {
		// LSNs are byte offsets, so the already-acknowledged prefix can be
		// trimmed without reframing; recount the records that remain.
		frames = frames[acked-start:]
		start = acked
		_, records = wal.ValidFrames(frames)
	}
	if start > acked {
		return fmt.Errorf("repl: send gap on stream %d: acked %d, batch starts %d", st.ID, acked, start)
	}
	var epoch uint64
	if s.opts.Epoch != nil {
		epoch = s.opts.Epoch()
	}
	w := binenc.GetWriter(40 + len(frames))
	encodeShip(w, shipMsg{Stream: st.ID, Epoch: epoch, Start: start, Records: uint32(records), Frames: frames})
	resp, err := s.client.Call(s.addr, MethodShip, w.Bytes())
	w.Free()
	if err != nil {
		if errors.Is(err, rpc.ErrStaleEpoch) {
			s.depose()
			return rpc.ErrStaleEpoch
		}
		return err
	}
	ack, err := decodeAck(resp)
	if err != nil {
		return err
	}
	if ack.Epoch > epoch {
		s.depose()
		return rpc.ErrStaleEpoch
	}
	s.mu.Lock()
	// The ack's tail is authoritative in both directions: forward when the
	// pump raced ahead, backward when the standby restarted behind our
	// cursor and refused the batch.
	s.acked[st.ID] = ack.Tail
	if ack.Tail >= end {
		s.recsOut[st.ID] += uint64(records)
		s.batches++
		s.bytesOut += uint64(len(frames))
	}
	s.mu.Unlock()
	if ack.Tail < end {
		return fmt.Errorf("repl: standby behind on stream %d (tail %d, batch ended %d)", st.ID, ack.Tail, end)
	}
	return nil
}

// run is the background pump: it performs the hello handshake, drains the
// catch-up backlog, and flips trailing → sync when configured and level.
func (s *Sender) run() {
	defer close(s.done)
	t := time.NewTicker(s.opts.RetryEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-t.C:
		}
		s.tick()
		s.mu.Lock()
		deposed := s.mode == ModeDeposed
		s.mu.Unlock()
		if deposed {
			return
		}
	}
}

// tick is one pump round.
func (s *Sender) tick() {
	s.mu.Lock()
	if s.mode == ModeDeposed {
		s.mu.Unlock()
		return
	}
	needHello := s.needHello
	s.mu.Unlock()
	if needHello && !s.hello() {
		return
	}
	for _, st := range s.streams {
		if !s.catchUp(st) {
			return
		}
	}
	s.mu.Lock()
	if s.mode == ModeTrailing && s.opts.Sync && !s.compacted {
		s.mode = ModeSync
	}
	s.mu.Unlock()
}

// hello performs the handshake, adopting the receiver's tails as the
// catch-up cursors. A receiver on a higher epoch deposes this sender.
func (s *Sender) hello() bool {
	var epoch uint64
	if s.opts.Epoch != nil {
		epoch = s.opts.Epoch()
	}
	w := binenc.GetWriter(16)
	w.U64(epoch)
	resp, err := s.client.Call(s.addr, MethodHello, w.Bytes())
	w.Free()
	if err != nil {
		if errors.Is(err, rpc.ErrStaleEpoch) {
			s.depose()
		}
		return false
	}
	h, err := decodeHello(resp)
	if err != nil {
		return false
	}
	if h.Epoch > epoch {
		s.depose()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compacted = false
	for _, st := range s.streams {
		tail := h.Tails[st.ID]
		if int64(tail) > st.Log.Size() {
			// The standby holds bytes this log never wrote: divergent
			// histories (it belongs to a different lineage). Catch-up cannot
			// reconcile that; a full reseed is required.
			s.compacted = true
			continue
		}
		s.acked[st.ID] = tail
	}
	s.needHello = false
	return true
}

// catchUp drains st's backlog, returning true when the stream is level with
// its log's durable tail.
func (s *Sender) catchUp(st *senderStream) bool {
	for {
		s.mu.Lock()
		acked := s.acked[st.ID]
		compacted := s.compacted
		s.mu.Unlock()
		if compacted {
			return false
		}
		if int64(acked) >= st.Log.Size() {
			return true
		}
		buf, records, err := st.Log.ReadRaw(acked, s.opts.ChunkBytes)
		if errors.Is(err, wal.ErrCompacted) {
			s.mu.Lock()
			s.compacted = true
			s.mu.Unlock()
			return false
		}
		if err != nil {
			return false
		}
		if len(buf) == 0 {
			return true // durable tail reached (reservations may be in flight)
		}
		if err := s.send(st, acked, buf, records); err != nil {
			return false
		}
	}
}
