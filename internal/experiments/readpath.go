package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"concord/internal/catalog"
	"concord/internal/coop"
	"concord/internal/core"
	"concord/internal/txn"
	"concord/internal/version"
)

// ReadPathMode selects what one RunCheckoutScaling configuration measures.
type ReadPathMode int

// Read-path measurement modes.
const (
	// ModeServer drives the server-TM checkout path directly (admission,
	// scope check, short S lock, repository read, canonical encoding) —
	// the layer the MVCC read index changes.
	ModeServer ReadPathMode = iota + 1
	// ModeE2EHot runs full workstation checkouts over the in-process wire
	// with warm caches (NotModified handshakes, E14 protocol).
	ModeE2EHot
	// ModeE2ECold runs full workstation checkouts with the cache entry
	// dropped after every round, so each checkout transfers the complete
	// payload.
	ModeE2ECold
)

// String names the mode for report rows.
func (m ReadPathMode) String() string {
	switch m {
	case ModeServer:
		return "server"
	case ModeE2EHot:
		return "e2e-hot"
	case ModeE2ECold:
		return "e2e-cold"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ReadScalingResult is the outcome of one RunCheckoutScaling configuration.
type ReadScalingResult struct {
	// Readers is the concurrent reader (workstation) count.
	Readers int
	// Checkouts is the total checkout count across all readers.
	Checkouts int
	// Elapsed is the wall-clock time of the parallel phase.
	Elapsed time.Duration
	// AllocsPerOp is the process-wide heap allocation count per checkout
	// during the parallel phase (runtime.MemStats delta), covering the
	// whole read path the mode exercises.
	AllocsPerOp float64
}

// OpsPerSec reports aggregate checkout throughput.
func (r ReadScalingResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Checkouts) / r.Elapsed.Seconds()
}

// e15RegisterTypes declares the E15 catalog: a part-heavy library DOT so
// payload copies (the cost MVCC removes) are realistically expensive.
func e15RegisterTypes(c *catalog.Catalog) error {
	if err := c.Register(&catalog.DOT{
		Name: "e15cell",
		Attrs: []catalog.AttrDef{
			{Name: "name", Kind: catalog.KindString, Required: true},
			{Name: "data", Kind: catalog.KindString},
		},
	}); err != nil {
		return err
	}
	return c.Register(&catalog.DOT{
		Name:       "e15lib",
		Attrs:      []catalog.AttrDef{{Name: "title", Kind: catalog.KindString, Required: true}},
		Components: []catalog.ComponentDef{{Name: "cells", DOT: "e15cell"}},
	})
}

// e15Parts sizes the shared design object (cells × bytes of payload each):
// big enough that a deep clone is real work, small enough that every
// configuration runs in milliseconds.
const (
	e15Parts     = 96
	e15PartBytes = 48
)

func e15Object(da string) *catalog.Object {
	lib := catalog.NewObject("e15lib").Set("title", catalog.Str(da))
	for i := 0; i < e15Parts; i++ {
		data := make([]byte, e15PartBytes)
		for j := range data {
			data[j] = 'a' + byte((i+j)%26)
		}
		cell := catalog.NewObject("e15cell").
			Set("name", catalog.Str(fmt.Sprintf("c%04d", i))).
			Set("data", catalog.Str(string(data)))
		lib.AddPart("cells", cell)
	}
	return lib
}

// RunCheckoutScaling boots one durable server and n readers, seeds one
// part-heavy version per reader's DA, then has every reader perform `rounds`
// checkouts of its version in parallel. serializedReads selects the pre-MVCC
// repository read path (repository lock + deep payload clone per Get) as the
// baseline; the default is the lock-free, clone-free MVCC index. Used by E15
// and the read-path benchmarks.
func RunCheckoutScaling(serializedReads bool, n, rounds int, mode ReadPathMode) (ReadScalingResult, error) {
	res := ReadScalingResult{Readers: n}
	dir, err := os.MkdirTemp("", "concord-e15")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	sys, err := core.NewSystem(core.Options{
		Dir:                  dir,
		RegisterTypes:        e15RegisterTypes,
		SerializedReads:      serializedReads,
		VolatileWorkstations: true,
	})
	if err != nil {
		return res, err
	}
	defer sys.Close()

	sites := make([]*site15, n)
	for i := range sites {
		da := fmt.Sprintf("da-%d", i)
		if err := sys.CM().InitDesign(coop.Config{ID: da, DOT: "e15lib", Designer: fmt.Sprintf("designer-%d", i)}); err != nil {
			return res, err
		}
		if err := sys.CM().Start(da); err != nil {
			return res, err
		}
		ws, err := sys.AddWorkstation(fmt.Sprintf("ws-%d", i))
		if err != nil {
			return res, err
		}
		dop, err := ws.Begin("", da)
		if err != nil {
			return res, err
		}
		if err := dop.SetWorkspace(e15Object(da)); err != nil {
			return res, err
		}
		root, err := dop.Checkin(version.StatusWorking, true)
		if err != nil {
			return res, err
		}
		if err := dop.Commit(); err != nil {
			return res, err
		}
		sites[i] = &site15{ws: ws, da: da, dov: root}
	}

	run, err := readLoop(sys, sites, rounds, mode)
	if err != nil {
		return res, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := run(); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	res.Checkouts = n * rounds
	res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Checkouts)
	return res, nil
}

// readLoop prepares the parallel checkout phase for the mode and returns a
// closure executing it (so the caller can bracket just the measured region
// with MemStats reads).
func readLoop(sys *core.System, sites []*site15, rounds int, mode ReadPathMode) (func() error, error) {
	switch mode {
	case ModeServer:
		stm := sys.ServerTM()
		for i, s := range sites {
			if err := stm.Begin(fmt.Sprintf("e15-reader-%d", i), s.da); err != nil {
				return nil, err
			}
		}
		return func() error {
			return eachSite(sites, func(i int, s *site15) error {
				reader := fmt.Sprintf("e15-reader-%d", i)
				for r := 0; r < rounds; r++ {
					if _, err := stm.Checkout(reader, s.dov, false); err != nil {
						return fmt.Errorf("%s round %d: %w", s.da, r, err)
					}
				}
				return nil
			})
		}, nil
	case ModeE2EHot, ModeE2ECold:
		dops := make([]*txn.DOP, len(sites))
		for i, s := range sites {
			d, err := s.ws.Begin("", s.da)
			if err != nil {
				return nil, err
			}
			if mode == ModeE2ECold {
				// Forget the bytes the seeding checkin left behind so the
				// first round is a genuine full transfer.
				s.ws.TM().Cache().Drop(s.dov)
			}
			dops[i] = d
		}
		return func() error {
			return eachSite(sites, func(i int, s *site15) error {
				for r := 0; r < rounds; r++ {
					if _, err := dops[i].Checkout(s.dov, false); err != nil {
						return fmt.Errorf("%s round %d: %w", s.da, r, err)
					}
					if mode == ModeE2ECold {
						s.ws.TM().Cache().Drop(s.dov)
					}
				}
				return nil
			})
		}, nil
	default:
		return nil, fmt.Errorf("e15: unknown mode %d", mode)
	}
}

// eachSite runs fn concurrently over all sites and joins the first error.
func eachSite(sites []*site15, fn func(int, *site15) error) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(sites))
	for i, s := range sites {
		wg.Add(1)
		go func(i int, s *site15) {
			defer wg.Done()
			if err := fn(i, s); err != nil {
				errs <- err
			}
		}(i, s)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// E15ReadPath measures aggregate checkout throughput of N concurrent readers
// against one server, comparing the pre-MVCC repository read path (lock +
// deep clone per Get, the PR 3 design) with the lock-free, clone-free MVCC
// index (DESIGN.md §3.6), at the server-TM layer and end-to-end over the
// wire with hot and cold workstation caches. The paper's Sect. 5.1
// architecture makes checkout the dominant operation of parallel DOP
// processing; this experiment quantifies how far the read path scales with
// readers.
func E15ReadPath() (Report, error) {
	return e15ReadPath([]int{1, 2, 4, 8, 16}, 1500, 120)
}

// e15ReadPath parameterizes E15 so CI can run a reduced configuration.
func e15ReadPath(readerCounts []int, serverRounds, e2eRounds int) (Report, error) {
	rep := Report{
		ID:     "E15",
		Title:  "read-heavy multi-workstation checkout scaling (Sect. 5.1, DESIGN.md §3.6)",
		Header: []string{"path", "readers", "checkouts", "locked+clone ops/s", "mvcc ops/s", "speedup", "locked+clone allocs/op", "mvcc allocs/op"},
	}
	for _, mode := range []ReadPathMode{ModeServer, ModeE2EHot, ModeE2ECold} {
		rounds := serverRounds
		if mode != ModeServer {
			rounds = e2eRounds
		}
		for _, n := range readerCounts {
			base, err := RunCheckoutScaling(true, n, rounds, mode)
			if err != nil {
				return rep, fmt.Errorf("E15 %s baseline N=%d: %w", mode, n, err)
			}
			mvcc, err := RunCheckoutScaling(false, n, rounds, mode)
			if err != nil {
				return rep, fmt.Errorf("E15 %s mvcc N=%d: %w", mode, n, err)
			}
			speedup := 0.0
			if base.OpsPerSec() > 0 {
				speedup = mvcc.OpsPerSec() / base.OpsPerSec()
			}
			rep.Rows = append(rep.Rows, []string{
				mode.String(), d(n), d(mvcc.Checkouts),
				f(base.OpsPerSec()), f(mvcc.OpsPerSec()),
				fmt.Sprintf("%.2fx", speedup),
				f(base.AllocsPerOp), f(mvcc.AllocsPerOp),
			})
			rep.Metrics = append(rep.Metrics,
				Metric{Name: fmt.Sprintf("checkout_ops_per_sec/path=%s/readers=%d/design=locked-clone", mode, n), Value: base.OpsPerSec(), Unit: "ops/s"},
				Metric{Name: fmt.Sprintf("checkout_ops_per_sec/path=%s/readers=%d/design=mvcc", mode, n), Value: mvcc.OpsPerSec(), Unit: "ops/s"},
				Metric{Name: fmt.Sprintf("checkout_allocs_per_op/path=%s/readers=%d/design=locked-clone", mode, n), Value: base.AllocsPerOp, Unit: "allocs/op"},
				Metric{Name: fmt.Sprintf("checkout_allocs_per_op/path=%s/readers=%d/design=mvcc", mode, n), Value: mvcc.AllocsPerOp, Unit: "allocs/op"},
			)
		}
	}
	rep.Notes = append(rep.Notes,
		"locked+clone = pre-MVCC read path (repository RWMutex + deep payload clone per Get), the PR 3 design",
		"mvcc = lock-free copy-on-write index, immutable DOV records, memoized canonical encoding (DESIGN.md §3.6)",
		fmt.Sprintf("object: %d parts x %d B (payload the baseline clones on every read)", e15Parts, e15PartBytes),
		"server = server-TM checkout (admission, scope check, S lock, repository read); e2e = full wire checkout with hot (NotModified) or cold (full transfer) workstation cache",
		"allocs/op = process-wide heap allocations per checkout during the parallel phase",
	)
	return rep, nil
}

// site15 is one reader's workstation site in E15.
type site15 struct {
	ws  *core.Workstation
	da  string
	dov version.ID
}
