package experiments

import "testing"

// TestE16WriteScalingBounds is the CI gate on the concurrent write path
// (acceptance bounds of the E16 experiment, run at a reduced size): at 8
// concurrent writer DAs the sharded checkin pipeline must at least double
// the aggregate throughput of the SerializedWrites baseline, and the
// pipelined replay must beat record-at-a-time serial replay on a 64k-op
// history. The committed BENCH_E16.json records the full-size numbers.
func TestE16WriteScalingBounds(t *testing.T) {
	if raceEnabled {
		// Race instrumentation slows the CPU side of a checkin ~10x, so the
		// fsync-amortization ratios the bounds assert no longer describe the
		// shipped binary. Correctness under -race is covered by the repo/wal
		// stress and replay-equivalence tests; the perf gate runs unraced.
		t.Skip("perf bounds are not meaningful under the race detector")
	}
	const writers, rounds = 8, 150
	// Perf gates on shared single-CPU runners see CPU theft from sibling
	// processes (e.g. the remaining test binaries still compiling); one
	// retry separates a genuinely regressed write path from a noisy run.
	const attempts = 2
	var lastBase, lastShard WriteScalingResult
	pass := false
	for a := 0; a < attempts && !pass; a++ {
		base, err := RunCheckinScaling(true, writers, rounds)
		if err != nil {
			t.Fatal(err)
		}
		shard, err := RunCheckinScaling(false, writers, rounds)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: baseline %.0f ops/s (group factor %.1f); sharded %.0f ops/s (group factor %.1f); speedup %.2fx",
			a+1, base.OpsPerSec(), base.GroupFactor(), shard.OpsPerSec(), shard.GroupFactor(),
			shard.OpsPerSec()/base.OpsPerSec())
		lastBase, lastShard = base, shard
		pass = shard.OpsPerSec() >= 2*base.OpsPerSec()
	}
	if !pass {
		t.Fatalf("sharded write path %.0f ops/s vs serialized %.0f ops/s: below the 2x floor at %d writers",
			lastShard.OpsPerSec(), lastBase.OpsPerSec(), writers)
	}

	rr, err := RunReplayComparison(64*1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replay %d ops: serial %v, pipelined %v (speedup %.2fx)",
		rr.History, rr.Serial, rr.Pipelined, rr.Speedup())
	if rr.Pipelined >= rr.Serial {
		t.Fatalf("pipelined replay %v is not faster than serial replay %v on a %d-op history",
			rr.Pipelined, rr.Serial, rr.History)
	}
}

// TestE16SmallSmoke keeps the full experiment path (report rows, metrics)
// exercised at a tiny size in the regular test run.
func TestE16SmallSmoke(t *testing.T) {
	rep, err := e16WritePath([]int{2}, 20, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 || len(rep.Metrics) != 6 {
		t.Fatalf("unexpected report shape: %d rows, %d metrics", len(rep.Rows), len(rep.Metrics))
	}
}
